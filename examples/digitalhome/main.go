// Digital home — the paper's §6 deployment. An office instrumented with
// two RFID readers, three sound-sensing motes, and three X10 motion
// detectors becomes a virtual "person detector": per-type pipelines clean
// each low-level stream and a Virtualize voting query (Query 6) fuses
// them.
//
// Run with: go run ./examples/digitalhome
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"esp/internal/core"
	"esp/internal/receptor"
	"esp/internal/sim"
	"esp/internal/stream"
)

func main() {
	cfg := sim.DefaultHomeConfig()
	sc, err := sim.NewHomeScenario(cfg)
	if err != nil {
		log.Fatal(err)
	}
	var recs []receptor.Receptor
	for _, r := range sc.Readers {
		recs = append(recs, r)
	}
	for _, m := range sc.Motes {
		recs = append(recs, m)
	}
	for _, d := range sc.Detectors {
		recs = append(recs, d)
	}

	// The static relation of expected tags: antenna 1's errant reads are
	// filtered by joining against it (§6.1).
	expectedTags := stream.MustTable(
		stream.MustSchema(stream.Field{Name: "expected_tag", Kind: stream.KindString}),
		[]stream.Tuple{stream.NewTuple(time.Time{}, stream.String(sim.BadgeTagID))},
	)

	granule := 10 * time.Second
	dep := &core.Deployment{
		Epoch:     cfg.Epoch,
		Receptors: recs,
		Groups:    sc.Groups,
		Tables:    map[string]*stream.Table{"expected_tags": expectedTags},
		Pipelines: map[receptor.Type]*core.Pipeline{
			// Reused from the shelf deployment, with Merge instead of
			// Arbitrate (both readers watch the same granule) — the
			// paper's point about pipeline reuse.
			receptor.TypeRFID: {
				Type: receptor.TypeRFID,
				Point: core.Compose(
					core.PointChecksum("checksum_ok"),
					core.PointExpectedTags("tag_id", "expected_tags", "expected_tag"),
				),
				Smooth: core.SmoothTagCount(granule),
				Merge:  core.MergeUnion(),
			},
			// Reused from the redwood deployment, sensing sound instead
			// of temperature: "only a small change in each query".
			receptor.TypeMote: {
				Type:   receptor.TypeMote,
				Smooth: core.SmoothAvg("noise", granule),
				Merge:  core.MergeAvg("noise", cfg.Epoch),
			},
			receptor.TypeMotion: {
				Type:   receptor.TypeMotion,
				Smooth: core.SmoothEvents(granule, 1),
				Merge:  core.MergeVote(cfg.Epoch, 2),
			},
		},
		Virtualize: &core.VirtualizeSpec{
			Query: core.PersonDetectorQuery(525, 2),
			Bind: map[string]receptor.Type{
				"sensors_input": receptor.TypeMote,
				"rfid_input":    receptor.TypeRFID,
				"motion_input":  receptor.TypeMotion,
			},
		},
	}
	p, err := core.NewProcessor(dep)
	if err != nil {
		log.Fatal(err)
	}

	detected := false
	p.OnVirtualize(func(stream.Tuple) { detected = true })

	// Render a Figure 9(e)-style strip chart: one character per 5 s.
	var truthRow, espRow strings.Builder
	agree, total := 0, 0
	start := time.Unix(0, 0).UTC()
	for now := start.Add(cfg.Epoch); !now.After(start.Add(600 * time.Second)); now = now.Add(cfg.Epoch) {
		detected = false
		if err := p.Step(now); err != nil {
			log.Fatal(err)
		}
		truth := sc.Present(now)
		if detected == truth {
			agree++
		}
		total++
		if now.Sub(start)%(5*time.Second) == 0 {
			truthRow.WriteByte(mark(truth))
			espRow.WriteByte(mark(detected))
		}
	}
	fmt.Println("person in room, one mark per 5 s (# = present):")
	fmt.Printf("truth: %s\n", truthRow.String())
	fmt.Printf("ESP:   %s\n", espRow.String())
	fmt.Printf("\naccuracy: %.1f%% (paper: 92%%)\n", 100*float64(agree)/float64(total))
}

func mark(b bool) byte {
	if b {
		return '#'
	}
	return '.'
}
