// Quickstart: clean one noisy, lossy temperature stream with a two-stage
// ESP pipeline (Point range filter + Smooth temporal average).
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"esp/internal/core"
	"esp/internal/receptor"
	"esp/internal/sim"
	"esp/internal/stream"
)

func main() {
	// A simulated mote: true temperature 21 °C, noisy readings, 50 % of
	// messages lost, and a fail-dirty episode after t = 60 s.
	mote := sim.NewMote(42, "kitchen-mote", 0.5, sim.SensorModel{
		Name:     "temp",
		Truth:    func(time.Time) float64 { return 21 },
		NoiseStd: 0.3,
	})
	mote.Fail = &sim.FailDirty{
		Sensor:      "temp",
		Start:       time.Unix(60, 0).UTC(),
		RampPerHour: 7200, // rockets upward: an obvious fail-dirty device
	}

	// Every receptor belongs to a proximity group — the spatial granule.
	groups := receptor.NewGroups()
	groups.MustAdd(receptor.Group{
		Name: "kitchen", Type: receptor.TypeMote, Members: []string{mote.ID()},
	})

	// The pipeline: drop readings outside a sane range (Point), then
	// average over a 10-second temporal granule (Smooth) to paper over
	// the lost messages.
	dep := &core.Deployment{
		Epoch:     time.Second,
		Receptors: []receptor.Receptor{mote},
		Groups:    groups,
		Pipelines: map[receptor.Type]*core.Pipeline{
			receptor.TypeMote: {
				Type:   receptor.TypeMote,
				Point:  core.PointBelow("temp", 50),
				Smooth: core.SmoothAvg("temp", 10*time.Second),
			},
		},
	}
	p, err := core.NewProcessor(dep)
	if err != nil {
		log.Fatal(err)
	}

	schema, _ := p.TypeSchema(receptor.TypeMote)
	fmt.Printf("cleaned stream schema: %s\n\n", schema)
	tempIx := schema.MustIndex("temp")

	p.OnType(receptor.TypeMote, func(t stream.Tuple) {
		if t.Ts.Unix()%10 == 0 { // print every 10th second
			fmt.Printf("t=%3ds  cleaned temp = %.2f °C\n", t.Ts.Unix(), t.Values[tempIx].AsFloat())
		}
	})

	// Drive two minutes of data. The cleaned stream stays near 21 °C
	// even through 50 % message loss. Once the mote fails dirty at t=60s
	// its readings ramp past the Point filter's 50 °C bound and the
	// cleaned stream goes silent instead of reporting garbage.
	start := time.Unix(0, 0).UTC()
	if err := p.Run(start, start.Add(2*time.Minute)); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n(the climb after t=60s is the failure onset inside the smoothing")
	fmt.Println(" window; output stops once every reading exceeds the 50 °C Point")
	fmt.Println(" bound — better than reporting a kitchen at 100 °C)")
}
