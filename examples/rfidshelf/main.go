// RFID shelf monitoring — the paper's §4 deployment. Two shelves, each
// watched by one error-prone RFID reader; the application asks "how many
// items are on each shelf?" (Query 1). Raw answers are near-meaningless;
// the Smooth + Arbitrate pipeline fixes them.
//
// Run with: go run ./examples/rfidshelf
package main

import (
	"fmt"
	"log"
	"time"

	"esp/internal/core"
	"esp/internal/cql"
	"esp/internal/receptor"
	"esp/internal/sim"
	"esp/internal/stream"
)

func main() {
	cfg := sim.DefaultShelfConfig()
	sc, err := sim.NewShelfScenario(cfg)
	if err != nil {
		log.Fatal(err)
	}
	recs := make([]receptor.Receptor, len(sc.Readers))
	for i, r := range sc.Readers {
		recs[i] = r
	}

	// The §4 pipeline. The checksum filter is the Point functionality the
	// Alien reader ships with; Smooth is the paper's Query 2; Arbitrate
	// is Query 3, with ties calibrated toward the weaker antenna
	// (§4.3.1). Merge is unused: one reader per proximity group.
	dep := &core.Deployment{
		Epoch:     cfg.PollPeriod, // 5 Hz reader polls
		Receptors: recs,
		Groups:    sc.Groups,
		Pipelines: map[receptor.Type]*core.Pipeline{
			receptor.TypeRFID: {
				Type:      receptor.TypeRFID,
				Point:     core.PointChecksum("checksum_ok"),
				Smooth:    core.SmoothTagCount(5 * time.Second),
				Arbitrate: core.ArbitrateMaxSum("tag_id", "n"),
			},
		},
		TieBreak: func(a, b stream.Tuple) bool {
			return a.Values[0] == stream.String("shelf1")
		},
	}
	p, err := core.NewProcessor(dep)
	if err != nil {
		log.Fatal(err)
	}

	// The application: the paper's Query 1 over the *cleaned* stream.
	cleanSchema, _ := p.TypeSchema(receptor.TypeRFID)
	counter, err := cql.PlanString(
		`SELECT spatial_granule, count(distinct tag_id) AS cnt
		 FROM clean [Range By 'NOW'] GROUP BY spatial_granule`,
		cql.Catalog{"clean": cleanSchema},
		cql.PlanConfig{Slide: cfg.PollPeriod},
	)
	if err != nil {
		log.Fatal(err)
	}
	var pending []stream.Tuple
	p.OnType(receptor.TypeRFID, func(t stream.Tuple) { pending = append(pending, t) })

	fmt.Println("t(s)   shelf0 reported/truth   shelf1 reported/truth")
	start := time.Unix(0, 0).UTC()
	for now := start.Add(cfg.PollPeriod); !now.After(start.Add(2 * time.Minute)); now = now.Add(cfg.PollPeriod) {
		if err := p.Step(now); err != nil {
			log.Fatal(err)
		}
		for _, t := range pending {
			if _, err := counter.Push("clean", t); err != nil {
				log.Fatal(err)
			}
		}
		pending = pending[:0]
		rows, err := counter.Advance(now)
		if err != nil {
			log.Fatal(err)
		}
		// Print once per 10 s.
		if now.Sub(start)%(10*time.Second) != 0 {
			continue
		}
		counts := map[string]int64{}
		for _, r := range rows {
			counts[r.Values[0].AsString()] = r.Values[1].AsInt()
		}
		fmt.Printf("%4.0f   %6d / %d          %6d / %d\n",
			now.Sub(start).Seconds(),
			counts["shelf0"], sc.TrueCount(0, now),
			counts["shelf1"], sc.TrueCount(1, now))
	}
	fmt.Println("\nNote how the cleaned counts track the truth through the")
	fmt.Println("40-second tag relocations; run `espbench -exp fig3` for the")
	fmt.Println("full 700 s experiment and error metrics.")
}
