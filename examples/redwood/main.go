// Environmental monitoring — the paper's §5 deployment. 33 motes on a
// redwood trunk report temperature every 5 minutes over a network that
// delivers only ~40 % of readings; one mote is configured to fail dirty.
// The Point + Smooth + Merge pipeline raises the epoch yield to ~95 %
// while rejecting the fail-dirty readings.
//
// Run with: go run ./examples/redwood
package main

import (
	"fmt"
	"log"
	"time"

	"esp/internal/core"
	"esp/internal/receptor"
	"esp/internal/sim"
	"esp/internal/stream"
)

func main() {
	cfg := sim.DefaultRedwoodConfig()
	cfg.FailDirty = 1 // one Sonoma-style fail-dirty mote
	cfg.FailStart = 6 * time.Hour
	// A 2-mote proximity group cannot single out an outlier by ±1σ (that
	// needs 3+ devices, as in §5.1's room), so make the failure fast
	// enough for the Point range filter to catch within the hour.
	cfg.FailRampPerHour = 40
	sc, err := sim.NewRedwoodScenario(cfg)
	if err != nil {
		log.Fatal(err)
	}
	recs := make([]receptor.Receptor, len(sc.Motes))
	for i, m := range sc.Motes {
		recs[i] = m
	}

	// §5's pipeline: range-filter obvious garbage (Query 4), temporally
	// aggregate each mote over an expanded 30-minute window (§5.2.1),
	// then spatially aggregate each 2-mote proximity group with ±1σ
	// outlier rejection (Query 5).
	dep := &core.Deployment{
		Epoch:     cfg.Epoch,
		Receptors: recs,
		Groups:    sc.Groups,
		Pipelines: map[receptor.Type]*core.Pipeline{
			receptor.TypeMote: {
				Type:   receptor.TypeMote,
				Point:  core.PointBelow("temp", 50),
				Smooth: core.SmoothAvg("temp", 30*time.Minute),
				Merge:  core.MergeOutlierAvg("temp", cfg.Epoch, 1.0),
			},
		},
	}
	p, err := core.NewProcessor(dep)
	if err != nil {
		log.Fatal(err)
	}

	schema, _ := p.TypeSchema(receptor.TypeMote)
	granIx := schema.MustIndex(core.ColGranule)
	tempIx := schema.MustIndex("temp")

	// Follow two granules: the one containing the fail-dirty mote
	// (height00) and a healthy one.
	watch := map[string]bool{"height00": true, "height08": true}
	latest := map[string]float64{}
	p.OnType(receptor.TypeMote, func(t stream.Tuple) {
		g := t.Values[granIx].AsString()
		if watch[g] {
			latest[g] = t.Values[tempIx].AsFloat()
		}
	})

	fmt.Println("hour   height00 (has fail-dirty mote)   height08 (healthy)   truth@h00")
	start := time.Unix(0, 0).UTC()
	for now := start.Add(cfg.Epoch); !now.After(start.Add(24 * time.Hour)); now = now.Add(cfg.Epoch) {
		if err := p.Step(now); err != nil {
			log.Fatal(err)
		}
		if now.Sub(start)%(2*time.Hour) != 0 {
			continue
		}
		truth, _ := sc.Motes[0].Truth("temp", now)
		fmt.Printf("%4.0f   %8.2f °C                     %8.2f °C          %6.2f °C\n",
			now.Sub(start).Hours(), latest["height00"], latest["height08"], truth)
	}
	fmt.Println("\nheight00 keeps tracking the true micro-climate even after its")
	fmt.Println("mote fails dirty at hour 6: the Point filter drops the insane")
	fmt.Println("readings and the group's healthy partner carries the granule.")
	fmt.Println("Run `espbench -exp yield` for the 3.5-day epoch-yield experiment")
	fmt.Println("and `espbench -exp fig7` for 3-mote ±1σ outlier rejection.")
}
