package main

import (
	"fmt"
	"io"
	"log/slog"
	"runtime"
	"runtime/debug"
	"strings"
)

// buildLogger assembles the daemon's slog.Logger from the -log-format
// and -log-level flags. Unknown values are flag errors, not silent
// defaults — a typo in a service file should fail loudly at boot.
func buildLogger(w io.Writer, format, level string) (*slog.Logger, error) {
	var lvl slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lvl = slog.LevelDebug
	case "info":
		lvl = slog.LevelInfo
	case "warn", "warning":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("-log-level %q: want debug, info, warn, or error", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch strings.ToLower(format) {
	case "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("-log-format %q: want text or json", format)
	}
}

// logBuildInfo emits one boot line identifying the binary: module
// version and VCS revision when the build carries them, plus the
// toolchain — the line an operator greps first when a host misbehaves.
func logBuildInfo(log *slog.Logger) {
	version, revision, modified := "unknown", "", false
	if bi, ok := debug.ReadBuildInfo(); ok {
		if bi.Main.Version != "" {
			version = bi.Main.Version
		}
		for _, kv := range bi.Settings {
			switch kv.Key {
			case "vcs.revision":
				revision = kv.Value
			case "vcs.modified":
				modified = kv.Value == "true"
			}
		}
	}
	log.Info("espd build",
		"version", version, "revision", revision, "modified", modified,
		"go", runtime.Version())
}
