package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestBuildLogger(t *testing.T) {
	var buf bytes.Buffer
	log, err := buildLogger(&buf, "json", "warn")
	if err != nil {
		t.Fatal(err)
	}
	log.Info("hidden")
	log.Warn("visible", "k", "v")
	out := buf.String()
	if strings.Contains(out, "hidden") {
		t.Errorf("info line leaked past -log-level warn:\n%s", out)
	}
	if !strings.Contains(out, `"msg":"visible"`) || !strings.Contains(out, `"k":"v"`) {
		t.Errorf("json handler output wrong:\n%s", out)
	}

	buf.Reset()
	log, err = buildLogger(&buf, "text", "debug")
	if err != nil {
		t.Fatal(err)
	}
	log.Debug("fine")
	if !strings.Contains(buf.String(), "msg=fine") {
		t.Errorf("text handler output wrong:\n%s", buf.String())
	}

	for _, bad := range [][2]string{{"yaml", "info"}, {"text", "loud"}} {
		if _, err := buildLogger(&buf, bad[0], bad[1]); err == nil {
			t.Errorf("buildLogger(%q, %q) accepted", bad[0], bad[1])
		}
	}
}

func TestLogBuildInfo(t *testing.T) {
	var buf bytes.Buffer
	log, err := buildLogger(&buf, "json", "info")
	if err != nil {
		t.Fatal(err)
	}
	logBuildInfo(log)
	out := buf.String()
	for _, want := range []string{`"msg":"espd build"`, `"version"`, `"go":"go`} {
		if !strings.Contains(out, want) {
			t.Errorf("build line missing %s:\n%s", want, out)
		}
	}
}
