// Command espd is the ESP serving daemon: it hosts many independent
// cleaning pipelines (one per tenant) behind a length-prefixed binary
// wire protocol (with a JSON debug fallback) on TCP.
//
// Clients create or alter pipelines by submitting a spec — the same
// deployment JSON espclean accepts (CQL stage queries plus granule
// groups) wrapped with receptor declarations and quotas — then publish
// readings, advance the epoch clock, and subscribe to cleaned output
// streams. See internal/server for the spec and protocol.
//
//	espd -addr :5599 -metrics :9131
//	espd -spec acme=deploy.json               # preload a tenant at boot
//	espd -wal-dir /var/lib/espd/wal           # durable: journal + recovery
//	espd -trace-sample 64 -slow-epoch 50ms    # trace 1/64 epochs, flag slow ones
//	espd -log-format json -log-level debug    # structured logs for a collector
//
// With -metrics the endpoint also serves the ops surfaces: /healthz
// (liveness + WAL writability), /statusz (per-tenant table; add
// ?format=json for machines), /traces (recent spans when -trace-sample
// is on), and /metrics.json (the poll target of cmd/esptop).
//
// With -wal-dir every tenant journals its publishes and epoch barriers
// to <wal-dir>/<tenant>/ (fsync at each committed epoch), archives its
// cleaned output beside the journal, and a restart replays each
// journal's committed history through a fresh pipeline before serving
// — exactly-once resume from the last committed epoch. Readings
// published after the last committed epoch are discarded at recovery
// (they were never acked as durable); clients re-send them.
//
// On SIGINT/SIGTERM espd drains gracefully: in-flight epochs are
// committed and flushed, subscribers receive a Drain frame carrying the
// final committed epoch, and the telemetry endpoint stays up until
// everything else is down. A drained journal's catalog is stamped
// completed, so the next boot skips replay.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"esp/internal/server"
)

func main() {
	addr := flag.String("addr", ":5599", "wire protocol listen address")
	metrics := flag.String("metrics", "", "telemetry exposition address (empty = disabled)")
	maxTenants := flag.Int("max-tenants", server.DefaultMaxTenants, "maximum hosted pipelines")
	walDir := flag.String("wal-dir", "", "write-ahead log root: journal publishes, fsync epoch barriers, recover tenants at boot (empty = in-memory only)")
	idleTimeout := flag.Duration("idle-timeout", 5*time.Minute, "kill control connections silent for this long (0 = never)")
	writeTimeout := flag.Duration("write-timeout", 30*time.Second, "disconnect clients whose sockets stop draining for this long (0 = never)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "graceful shutdown budget")
	logFormat := flag.String("log-format", "text", "structured log encoding: text or json")
	logLevel := flag.String("log-level", "info", "minimum log level: debug, info, warn, error")
	traceSample := flag.Int("trace-sample", 0, "trace one in N advance-driven epochs and every client-traced frame (0 = tracing off)")
	traceSeed := flag.Int64("trace-seed", 0, "trace-ID minting seed (deterministic per sample+seed)")
	slowEpoch := flag.Duration("slow-epoch", 0, "log a slow-epoch warning with an exemplar trace when a commit exceeds this (0 = never)")
	var preloads []string
	flag.Func("spec", "preload a tenant at boot as name=specfile (repeatable)", func(v string) error {
		preloads = append(preloads, v)
		return nil
	})
	flag.Parse()

	log, err := buildLogger(os.Stderr, *logFormat, *logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "espd:", err)
		os.Exit(2)
	}
	logBuildInfo(log)
	s, err := server.Listen(server.Config{
		Addr:         *addr,
		MetricsAddr:  *metrics,
		MaxTenants:   *maxTenants,
		WALDir:       *walDir,
		IdleTimeout:  *idleTimeout,
		WriteTimeout: *writeTimeout,
		Logger:       log,
		TraceSampleN: *traceSample,
		TraceSeed:    *traceSeed,
		SlowEpoch:    *slowEpoch,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "espd:", err)
		os.Exit(1)
	}
	reports, err := s.Engine().Recover()
	if err != nil {
		// Tenants that recovered cleanly keep running; the failures are
		// fatal so an operator never silently serves with lost history.
		fmt.Fprintln(os.Stderr, "espd: recovery:", err)
		os.Exit(1)
	}
	for _, rep := range reports {
		log.Info("tenant recovered", "tenant", rep.Tenant,
			"epochs", rep.Epochs, "last", rep.Last.Format(time.RFC3339Nano),
			"discarded_publishes", rep.TailPublishes, "discarded_bytes", rep.Discarded,
			"corruption", rep.Corruption)
	}
	for _, pl := range preloads {
		name, file, ok := strings.Cut(pl, "=")
		if !ok {
			fmt.Fprintf(os.Stderr, "espd: -spec %q: want name=specfile\n", pl)
			os.Exit(2)
		}
		spec, err := os.ReadFile(file)
		if err != nil {
			fmt.Fprintln(os.Stderr, "espd:", err)
			os.Exit(1)
		}
		if _, ok := s.Engine().Tenant(name); ok {
			// Creating over a recovered tenant would reset its journal;
			// a boot-time preload must never cost recovered history.
			log.Info("tenant already recovered; skipping preload", "tenant", name, "spec", file)
			continue
		}
		if _, err := s.Engine().Create(name, spec); err != nil {
			fmt.Fprintf(os.Stderr, "espd: preload %q: %v\n", name, err)
			os.Exit(1)
		}
		log.Info("tenant preloaded", "tenant", name, "spec", file)
	}
	log.Info("espd listening", "addr", s.Addr(), "metrics", s.MetricsURL())

	errc := make(chan error, 1)
	go func() { errc <- s.Serve() }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case got := <-sig:
		log.Info("draining", "signal", got.String(), "timeout", drainTimeout.String())
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "espd: drain:", err)
			os.Exit(1)
		}
		log.Info("drained")
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "espd:", err)
		os.Exit(1)
	}
}
