// Command espclean runs a configured ESP cleaning pipeline over a raw
// receptor trace (CSV, as written by espsim) and emits the cleaned stream
// as CSV on stdout. Stages are given as CQL queries — the paper's
// deployment story: configure a pipeline declaratively, point it at the
// receptors, get clean data.
//
// Example — clean a shelf trace with the paper's Query 2 + Query 3:
//
//	espsim -scenario shelf > raw.csv
//	espclean -in raw.csv \
//	  -schema 'tag_id:string,checksum_ok:bool' -type rfid \
//	  -groups 'shelf0=reader0;shelf1=reader1' -epoch 200ms \
//	  -point  'SELECT tag_id FROM point_input WHERE checksum_ok = TRUE' \
//	  -smooth 'SELECT tag_id, count(*) AS n FROM smooth_input [Range By ''5 sec''] GROUP BY tag_id' \
//	  -arbitrate "SELECT spatial_granule, tag_id FROM arb ai1 [Range By 'NOW'] GROUP BY spatial_granule, tag_id HAVING sum(n) >= ALL(SELECT sum(n) FROM arb ai2 [Range By 'NOW'] WHERE ai1.tag_id = ai2.tag_id GROUP BY spatial_granule)"
package main

import (
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"strings"
	"time"

	"esp/internal/core"
	"esp/internal/receptor"
	"esp/internal/stream"
	"esp/internal/telemetry"
	"esp/internal/trace"
)

// obs holds the observability flags; zero values mean fully off (the
// per-tuple hot path stays allocation-free). Package-level so
// cleanTrace sees them without threading extra parameters through
// every run variant.
var obs struct {
	metrics     string // exposition endpoint addr ("" = off, ":0" = any port)
	lineage     int    // sample ~1/N readings for lineage (0 = off)
	lineageSeed int64
}

func main() {
	in := flag.String("in", "", "input trace CSV (required)")
	schemaSpec := flag.String("schema", "", "trace schema, e.g. 'tag_id:string,checksum_ok:bool' (required)")
	typName := flag.String("type", "rfid", "receptor type label")
	groupSpec := flag.String("groups", "", "proximity groups, e.g. 'shelf0=reader0;shelf1=reader1,reader2' (required)")
	epoch := flag.Duration("epoch", time.Second, "processing epoch")
	pointQ := flag.String("point", "", "Point stage CQL (optional)")
	smoothQ := flag.String("smooth", "", "Smooth stage CQL (optional)")
	mergeQ := flag.String("merge", "", "Merge stage CQL (optional)")
	arbQ := flag.String("arbitrate", "", "Arbitrate stage CQL (optional)")
	configPath := flag.String("config", "", "deployment config JSON (alternative to -groups/-epoch/stage flags)")
	flag.StringVar(&obs.metrics, "metrics", "", "serve telemetry on this addr during the run (e.g. ':9090'; ':0' picks a free port)")
	flag.IntVar(&obs.lineage, "lineage", 0, "sample ~1/N readings for tuple lineage; dump traces as JSON on stderr after the run (0 = off)")
	flag.Int64Var(&obs.lineageSeed, "lineage-seed", 1, "lineage sampler seed")
	flag.Parse()

	var err error
	if *configPath != "" {
		err = runWithConfig(os.Stdout, *in, *schemaSpec, receptor.Type(*typName), *configPath)
	} else {
		err = run(os.Stdout, *in, *schemaSpec, receptor.Type(*typName), *groupSpec, *epoch, *pointQ, *smoothQ, *mergeQ, *arbQ)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "espclean:", err)
		os.Exit(1)
	}
}

// runWithConfig cleans a trace using a JSON deployment config: the
// config supplies the epoch, proximity groups, tables, and stage queries;
// the trace supplies the receptors.
func runWithConfig(out io.Writer, in, schemaSpec string, typ receptor.Type, configPath string) error {
	if in == "" || schemaSpec == "" {
		return fmt.Errorf("-in and -schema are required (see -h)")
	}
	data, err := os.ReadFile(configPath)
	if err != nil {
		return err
	}
	dep, err := core.ParseDeploymentConfig(data)
	if err != nil {
		return err
	}
	schema, err := parseSchema(schemaSpec)
	if err != nil {
		return err
	}
	f, err := os.Open(in)
	if err != nil {
		return err
	}
	defer f.Close()
	records, err := trace.Read(f, schema)
	if err != nil {
		return err
	}
	if len(records) == 0 {
		return fmt.Errorf("trace %s is empty", in)
	}
	dep.Receptors = trace.Replays(records, typ, schema)
	return cleanTrace(out, dep, typ, records)
}

func run(out io.Writer, in, schemaSpec string, typ receptor.Type, groupSpec string, epoch time.Duration,
	pointQ, smoothQ, mergeQ, arbQ string) error {
	if in == "" || schemaSpec == "" || groupSpec == "" {
		return fmt.Errorf("-in, -schema and -groups are required (see -h)")
	}
	schema, err := parseSchema(schemaSpec)
	if err != nil {
		return err
	}
	groups, err := parseGroups(groupSpec, typ)
	if err != nil {
		return err
	}
	f, err := os.Open(in)
	if err != nil {
		return err
	}
	defer f.Close()
	records, err := trace.Read(f, schema)
	if err != nil {
		return err
	}
	if len(records) == 0 {
		return fmt.Errorf("trace %s is empty", in)
	}
	recs := trace.Replays(records, typ, schema)

	pl := &core.Pipeline{Type: typ}
	if pointQ != "" {
		pl.Point = core.CQLStage{Query: pointQ}
	}
	if smoothQ != "" {
		pl.Smooth = core.CQLStage{Query: smoothQ}
	}
	if mergeQ != "" {
		pl.Merge = core.CQLStage{Query: mergeQ}
	}
	if arbQ != "" {
		pl.Arbitrate = core.CQLStage{Query: arbQ}
	}
	dep := &core.Deployment{
		Epoch:     epoch,
		Receptors: recs,
		Groups:    groups,
		Pipelines: map[receptor.Type]*core.Pipeline{typ: pl},
	}
	return cleanTrace(out, dep, typ, records)
}

// cleanTrace runs the deployment over the trace's time span and writes
// the cleaned stream as CSV. Observability (obs flags): -metrics serves
// the live exposition endpoint for the duration of the run; -lineage N
// samples ~1/N readings and dumps their stage-by-stage traces on stderr
// afterwards.
func cleanTrace(out io.Writer, dep *core.Deployment, typ receptor.Type, records []trace.Record) error {
	p, err := core.NewProcessor(dep)
	if err != nil {
		return err
	}
	if obs.metrics != "" || obs.lineage > 0 {
		p.EnableTelemetry()
		p.SetLogger(slog.New(slog.NewTextHandler(os.Stderr, nil)))
	}
	var lin *telemetry.Lineage
	if obs.lineage > 0 {
		lin = p.EnableLineage(obs.lineage, obs.lineageSeed)
	}
	if obs.metrics != "" {
		srv, err := telemetry.Serve(obs.metrics, telemetry.ServerConfig{Registry: p.Telemetry(), Lineage: lin})
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintln(os.Stderr, "espclean: telemetry on", srv.URL())
	}
	outSchema, _ := p.TypeSchema(typ)
	w, err := trace.NewWriter(out, outSchema)
	if err != nil {
		return err
	}
	var writeErr error
	p.OnType(typ, func(tu stream.Tuple) {
		if writeErr == nil {
			writeErr = w.Write(trace.Record{Receptor: "esp", Tuple: tu})
		}
	})

	epoch := dep.Epoch
	start := records[0].Tuple.Ts.Add(-epoch).Truncate(epoch)
	end := records[len(records)-1].Tuple.Ts
	for _, r := range records {
		if r.Tuple.Ts.After(end) {
			end = r.Tuple.Ts
		}
	}
	if err := p.Run(start, end.Add(epoch)); err != nil {
		return err
	}
	if writeErr != nil {
		return writeErr
	}
	if lin != nil {
		fmt.Fprintf(os.Stderr, "espclean: %d lineage traces:\n", lin.Len())
		if err := lin.DumpJSON(os.Stderr); err != nil {
			return err
		}
		fmt.Fprintln(os.Stderr)
	}
	return w.Flush()
}

// parseSchema parses "name:kind,name:kind".
func parseSchema(spec string) (*stream.Schema, error) {
	return stream.ParseSchemaSpec(spec)
}

// parseGroups parses "group=member,member;group=member".
func parseGroups(spec string, typ receptor.Type) (*receptor.Groups, error) {
	groups := receptor.NewGroups()
	for _, part := range strings.Split(spec, ";") {
		gv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(gv) != 2 {
			return nil, fmt.Errorf("bad group entry %q (want name=member,member)", part)
		}
		var members []string
		for _, m := range strings.Split(gv[1], ",") {
			members = append(members, strings.TrimSpace(m))
		}
		if err := groups.Add(receptor.Group{Name: gv[0], Type: typ, Members: members}); err != nil {
			return nil, err
		}
	}
	return groups, nil
}
