package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"esp/internal/receptor"
	"esp/internal/stream"
	"esp/internal/trace"
)

// TestEndToEndCleaning writes a small raw RFID trace, runs the paper's
// Point + Smooth + Arbitrate queries over it, and checks the cleaned
// output attributes the tag to the stronger shelf.
func TestEndToEndCleaning(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "raw.csv")

	schema := stream.MustSchema(
		stream.Field{Name: "tag_id", Kind: stream.KindString},
		stream.Field{Name: "checksum_ok", Kind: stream.KindBool},
	)
	f, err := os.Create(in)
	if err != nil {
		t.Fatal(err)
	}
	w, err := trace.NewWriter(f, schema)
	if err != nil {
		t.Fatal(err)
	}
	at := func(sec float64) time.Time {
		return time.Unix(0, int64(sec*float64(time.Second))).UTC()
	}
	// reader0 reads tag X three times (one corrupt), reader1 once.
	recs := []trace.Record{
		{Receptor: "reader0", Tuple: stream.NewTuple(at(0.2), stream.String("X"), stream.Bool(true))},
		{Receptor: "reader0", Tuple: stream.NewTuple(at(0.4), stream.String("X"), stream.Bool(false))},
		{Receptor: "reader0", Tuple: stream.NewTuple(at(0.6), stream.String("X"), stream.Bool(true))},
		{Receptor: "reader1", Tuple: stream.NewTuple(at(0.5), stream.String("X"), stream.Bool(true))},
	}
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	f.Close()

	var out bytes.Buffer
	err = run(&out, in,
		"tag_id:string,checksum_ok:bool",
		receptor.TypeRFID,
		"shelf0=reader0;shelf1=reader1",
		time.Second,
		"SELECT tag_id FROM point_input WHERE checksum_ok = TRUE",
		"SELECT tag_id, count(*) AS n FROM smooth_input [Range By '2 sec'] GROUP BY tag_id",
		"",
		`SELECT spatial_granule, tag_id FROM arb ai1 [Range By 'NOW']
		 GROUP BY spatial_granule, tag_id
		 HAVING sum(n) >= ALL(SELECT sum(n) FROM arb ai2 [Range By 'NOW']
		                      WHERE ai1.tag_id = ai2.tag_id GROUP BY spatial_granule)`,
	)
	if err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "shelf0,X") {
		t.Errorf("cleaned output missing shelf0 attribution:\n%s", text)
	}
	if strings.Contains(text, "shelf1,X") {
		t.Errorf("tag attributed to both shelves:\n%s", text)
	}
}

// TestEndToEndConfigFile cleans the same trace via a JSON deployment
// config instead of per-stage flags.
func TestEndToEndConfigFile(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "raw.csv")
	content := "receptor_id,ts,tag_id,checksum_ok\n" +
		"reader0,1970-01-01T00:00:00.2Z,X,true\n" +
		"reader0,1970-01-01T00:00:00.4Z,X,true\n" +
		"reader1,1970-01-01T00:00:00.5Z,X,true\n"
	if err := os.WriteFile(in, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg := filepath.Join(dir, "deploy.json")
	cfgJSON := `{
	  "epoch": "1s",
	  "groups": {
	    "shelf0": {"type": "rfid", "members": ["reader0"]},
	    "shelf1": {"type": "rfid", "members": ["reader1"]}
	  },
	  "pipelines": {
	    "rfid": {
	      "point": "SELECT tag_id FROM point_input WHERE checksum_ok = TRUE",
	      "smooth": "SELECT tag_id, count(*) AS n FROM smooth_input [Range By '2 sec'] GROUP BY tag_id",
	      "arbitrate": "SELECT spatial_granule, tag_id FROM arb ai1 [Range By 'NOW'] GROUP BY spatial_granule, tag_id HAVING sum(n) >= ALL(SELECT sum(n) FROM arb ai2 [Range By 'NOW'] WHERE ai1.tag_id = ai2.tag_id GROUP BY spatial_granule)"
	    }
	  }
	}`
	if err := os.WriteFile(cfg, []byte(cfgJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := runWithConfig(&out, in, "tag_id:string,checksum_ok:bool", receptor.TypeRFID, cfg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "shelf0,X") {
		t.Errorf("config-driven cleaning output:\n%s", out.String())
	}
}

func TestRunRejectsEmptyTrace(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "empty.csv")
	if err := os.WriteFile(in, []byte("receptor_id,ts,tag_id,checksum_ok\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	err := run(&out, in, "tag_id:string,checksum_ok:bool", receptor.TypeRFID,
		"shelf0=reader0", time.Second, "", "", "", "")
	if err == nil {
		t.Error("empty trace: want error")
	}
}

func TestRunRejectsBadQuery(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "raw.csv")
	content := "receptor_id,ts,tag_id,checksum_ok\nreader0,1970-01-01T00:00:00.2Z,X,true\n"
	if err := os.WriteFile(in, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	err := run(&out, in, "tag_id:string,checksum_ok:bool", receptor.TypeRFID,
		"shelf0=reader0", time.Second, "NOT A QUERY", "", "", "")
	if err == nil {
		t.Error("bad stage query: want error")
	}
}

// TestObservabilityFlags reruns the end-to-end cleaning with -metrics
// and -lineage enabled and checks the lineage dump on stderr lists the
// five pipeline stages in order.
func TestObservabilityFlags(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "raw.csv")
	content := "receptor_id,ts,tag_id,checksum_ok\n" +
		"reader0,1970-01-01T00:00:00.2Z,X,true\n" +
		"reader0,1970-01-01T00:00:00.4Z,X,true\n" +
		"reader1,1970-01-01T00:00:00.5Z,X,true\n"
	if err := os.WriteFile(in, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}

	obs.metrics = ":0"
	obs.lineage = 1
	obs.lineageSeed = 1
	defer func() { obs.metrics = ""; obs.lineage = 0 }()

	// Capture stderr: cleanTrace prints the endpoint URL and the
	// lineage dump there.
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	oldStderr := os.Stderr
	os.Stderr = w
	var out bytes.Buffer
	runErr := run(&out, in, "tag_id:string,checksum_ok:bool", receptor.TypeRFID,
		"shelf0=reader0;shelf1=reader1", time.Second,
		"SELECT tag_id FROM point_input WHERE checksum_ok = TRUE",
		"SELECT tag_id, count(*) AS n FROM smooth_input [Range By '2 sec'] GROUP BY tag_id",
		"", "")
	w.Close()
	os.Stderr = oldStderr
	var errOut bytes.Buffer
	if _, err := errOut.ReadFrom(r); err != nil {
		t.Fatal(err)
	}
	if runErr != nil {
		t.Fatalf("run with observability flags: %v\nstderr:\n%s", runErr, errOut.String())
	}

	text := errOut.String()
	if !strings.Contains(text, "telemetry on http://") {
		t.Errorf("stderr missing endpoint URL:\n%s", text)
	}
	if !strings.Contains(text, "lineage traces:") {
		t.Errorf("stderr missing lineage dump:\n%s", text)
	}
	// Spans appear per-trace in pipeline order.
	last := -1
	for _, stage := range []string{`"Point"`, `"Smooth"`, `"Merge"`, `"Arbitrate"`, `"Virtualize"`} {
		i := strings.Index(text, stage)
		if i < 0 {
			t.Fatalf("lineage dump missing %s span:\n%s", stage, text)
		}
		if i < last {
			t.Errorf("%s span out of order", stage)
		}
		last = i
	}
}
