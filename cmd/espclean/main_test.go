package main

import (
	"testing"

	"esp/internal/receptor"
)

func TestParseSchema(t *testing.T) {
	s, err := parseSchema("tag_id:string, shelf:int, temp:float, ok:bool, when:time")
	if err != nil {
		t.Fatal(err)
	}
	want := "(tag_id string, shelf int, temp float, ok bool, when time)"
	if s.String() != want {
		t.Errorf("schema = %s, want %s", s, want)
	}
}

func TestParseSchemaErrors(t *testing.T) {
	for _, spec := range []string{
		"tag_id",        // no kind
		"tag_id:blob",   // unknown kind
		"a:int,a:int",   // duplicate
		"a:int,:string", // empty name
	} {
		if _, err := parseSchema(spec); err == nil {
			t.Errorf("parseSchema(%q): want error", spec)
		}
	}
}

func TestParseGroups(t *testing.T) {
	g, err := parseGroups("shelf0=reader0;shelf1=reader1,reader2", receptor.TypeRFID)
	if err != nil {
		t.Fatal(err)
	}
	gr, ok := g.Group("shelf1")
	if !ok || len(gr.Members) != 2 || gr.Members[1] != "reader2" {
		t.Errorf("shelf1 = %+v", gr)
	}
	if got := g.Of("reader0"); len(got) != 1 || got[0] != "shelf0" {
		t.Errorf("Of(reader0) = %v", got)
	}
}

func TestParseGroupsErrors(t *testing.T) {
	for _, spec := range []string{
		"noequals",
		"a=;b=x",  // empty members
		"a=x;a=y", // duplicate group
		"a=x,x",   // duplicate member
	} {
		if _, err := parseGroups(spec, receptor.TypeRFID); err == nil {
			t.Errorf("parseGroups(%q): want error", spec)
		}
	}
}

func TestRunRequiresFlags(t *testing.T) {
	if err := run(nil, "", "", receptor.TypeRFID, "", 0, "", "", "", ""); err == nil {
		t.Error("missing flags: want error")
	}
}
