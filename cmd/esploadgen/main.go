// Command esploadgen replays a simulated sensor-network deployment —
// by default 1000 motes with lossy radios — against a live espd and
// measures serving throughput. The identical workload is also driven
// through an in-process Engine (no sockets), and the two output streams
// must be byte-identical: the serving layer adds framing, not
// semantics.
//
//	esploadgen                       # self-hosted espd on a loopback port
//	esploadgen -addr host:5599       # replay against an external espd
//	esploadgen -out BENCH_serve.json
//
// The self-hosted run finishes with a graceful Shutdown, so the
// subscriber's Drain frame (final committed epoch) is part of what is
// verified.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sync"
	"time"

	"esp/internal/exp"
	"esp/internal/server"
)

type options struct {
	addr       string
	motes      int
	groupSize  int
	epochs     int
	epoch      time.Duration
	publishers int
	delivery   float64
	faultEvery int
	seed       int64
	tenant     string
	out        string
	skipOracle bool
}

type report struct {
	Experiment      string  `json:"experiment"`
	Motes           int     `json:"motes"`
	Groups          int     `json:"groups"`
	Epochs          int     `json:"epochs"`
	Epoch           string  `json:"epoch"`
	Publishers      int     `json:"publishers"`
	TuplesPublished int     `json:"tuples_published"`
	TuplesDropped   int64   `json:"tuples_dropped"`
	WallNs          int64   `json:"wall_ns"`
	TuplesPerSec    float64 `json:"tuples_per_sec"`
	NsPerEpoch      int64   `json:"ns_per_epoch"`
	DataFrames      int     `json:"data_frames"`
	OutputTuples    int     `json:"output_tuples"`
	FinalEpoch      int64   `json:"final_epoch"`
	Fingerprint     string  `json:"fingerprint"`
	OracleMatch     *bool   `json:"oracle_match,omitempty"`
}

func main() {
	var o options
	flag.StringVar(&o.addr, "addr", "", "espd address (empty = self-host on a loopback port)")
	flag.IntVar(&o.motes, "motes", 1000, "simulated motes (concurrent receptors)")
	flag.IntVar(&o.groupSize, "group-size", 8, "motes per spatial granule")
	flag.IntVar(&o.epochs, "epochs", 30, "epochs to replay")
	flag.DurationVar(&o.epoch, "epoch", time.Second, "epoch length (simulated time)")
	flag.IntVar(&o.publishers, "publishers", 8, "concurrent publisher connections")
	flag.Float64Var(&o.delivery, "delivery", 0.9, "per-epoch radio delivery probability")
	flag.IntVar(&o.faultEvery, "fault-every", 10, "give every Nth mote a fault schedule (0 = none)")
	flag.Int64Var(&o.seed, "seed", 1, "workload RNG seed")
	flag.StringVar(&o.tenant, "tenant", "loadgen", "tenant name to create")
	flag.StringVar(&o.out, "out", "", "write the JSON report here (empty = stdout)")
	flag.BoolVar(&o.skipOracle, "skip-oracle", false, "skip the in-process differential check")
	flag.Parse()

	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "esploadgen:", err)
		os.Exit(1)
	}
}

func run(o options) error {
	lo := exp.LoadgenOptions{
		Motes: o.motes, GroupSize: o.groupSize, Epochs: o.epochs,
		Epoch: o.epoch, Delivery: o.delivery, FaultEvery: o.faultEvery,
		Seed: o.seed,
	}
	spec := exp.LoadgenSpec(lo)
	steps, published := exp.LoadgenWorkload(lo)

	// Oracle first: the same spec and workload through an in-process
	// Engine, no sockets. Its fingerprint is what the served run must hit.
	var oracle *server.Fingerprint
	if !o.skipOracle {
		var err error
		if oracle, err = runOracle(o, spec, steps); err != nil {
			return fmt.Errorf("oracle run: %w", err)
		}
	}

	rep, fp, err := runServed(o, spec, steps)
	if err != nil {
		return err
	}
	rep.Experiment = "serve"
	rep.Motes = o.motes
	rep.Groups = (o.motes + o.groupSize - 1) / o.groupSize
	rep.Epochs = o.epochs
	rep.Epoch = o.epoch.String()
	rep.Publishers = o.publishers
	rep.TuplesPublished = published
	rep.TuplesPerSec = float64(published) / (float64(rep.WallNs) / float64(time.Second))
	rep.NsPerEpoch = rep.WallNs / int64(o.epochs)
	rep.DataFrames = fp.Frames()
	rep.OutputTuples = fp.Tuples()
	rep.Fingerprint = fmt.Sprintf("%016x", fp.Sum())
	if oracle != nil {
		match := fp.Sum() == oracle.Sum() && fp.Frames() == oracle.Frames()
		rep.OracleMatch = &match
		if !match {
			return fmt.Errorf("served output %v diverged from in-process oracle %v", fp, oracle)
		}
	}

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if o.out == "" {
		_, err = os.Stdout.Write(out)
		return err
	}
	return os.WriteFile(o.out, out, 0o644)
}

// runOracle drives the workload through an in-process Engine and
// digests the merged output stream.
func runOracle(o options, spec []byte, steps []exp.Step) (*server.Fingerprint, error) {
	eng := server.NewEngine(0)
	ten, err := eng.Create(o.tenant, spec)
	if err != nil {
		return nil, err
	}
	sub, err := ten.Subscribe("mote")
	if err != nil {
		return nil, err
	}
	fp := server.NewFingerprint()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for d := range sub.C() {
			fp.Add(d)
		}
	}()
	for _, st := range steps {
		for rec, ts := range st.Pubs {
			if _, err := ten.Publish(rec, ts); err != nil {
				return nil, err
			}
		}
		if err := ten.Advance(st.Now); err != nil {
			return nil, err
		}
	}
	if err := eng.DrainAll(); err != nil {
		return nil, err
	}
	wg.Wait()
	return fp, nil
}

// runServed replays the workload over TCP: publisher connections fan
// the motes out, a control connection drives the epoch clock, and a
// subscriber digests the output stream.
func runServed(o options, spec []byte, steps []exp.Step) (report, *server.Fingerprint, error) {
	var rep report

	addr := o.addr
	var hosted *server.Server
	if addr == "" {
		s, err := server.Listen(server.Config{Addr: "127.0.0.1:0"})
		if err != nil {
			return rep, nil, err
		}
		go s.Serve() //nolint:errcheck
		hosted = s
		addr = s.Addr()
	}

	ctl, err := server.Dial(addr)
	if err != nil {
		return rep, nil, err
	}
	defer ctl.Close()
	if err := ctl.Create(o.tenant, spec); err != nil {
		return rep, nil, err
	}

	subc, err := server.Dial(addr)
	if err != nil {
		return rep, nil, err
	}
	defer subc.Close()
	if err := subc.Subscribe(o.tenant, "mote"); err != nil {
		return rep, nil, err
	}
	final := steps[len(steps)-1].Now.UnixNano()
	fp := server.NewFingerprint()
	subErr := make(chan error, 1)
	go func() {
		subErr <- collect(subc, fp, final, hosted != nil, &rep)
	}()

	// Publisher fan-out: each connection owns a stable slice of the
	// mote population.
	pubs := make([]*server.Client, o.publishers)
	for i := range pubs {
		c, err := server.Dial(addr)
		if err != nil {
			return rep, nil, err
		}
		defer c.Close()
		if err := c.Hello(o.tenant, "pub"); err != nil {
			return rep, nil, err
		}
		pubs[i] = c
	}

	start := time.Now()
	for _, st := range steps {
		recs := make([]string, 0, len(st.Pubs))
		for rec := range st.Pubs {
			recs = append(recs, rec)
		}
		var wg sync.WaitGroup
		errs := make([]error, len(pubs))
		for w := range pubs {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for ri, rec := range recs {
					if ri%len(pubs) != w {
						continue
					}
					if _, err := pubs[w].Publish(rec, st.Pubs[rec]); err != nil {
						errs[w] = err
						return
					}
				}
			}(w)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return rep, nil, err
			}
		}
		if err := ctl.Advance(st.Now); err != nil {
			return rep, nil, err
		}
	}
	rep.WallNs = time.Since(start).Nanoseconds()

	st, err := ctl.Stats()
	if err != nil {
		return rep, nil, err
	}
	rep.TuplesDropped = st.Dropped

	if hosted != nil {
		// Graceful drain: flushes the subscriber's Drain frame (final
		// committed epoch) before its socket closes.
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := hosted.Shutdown(ctx); err != nil {
			return rep, nil, err
		}
	} else {
		// An external daemon keeps running; bound the tail read instead.
		_ = subc.SetReadDeadline(time.Now().Add(10 * time.Second))
	}
	if err := <-subErr; err != nil {
		return rep, nil, err
	}
	return rep, fp, nil
}

// collect digests Data frames until the stream drains (self-hosted) or
// the final workload epoch has been seen (external daemon).
func collect(subc *server.Client, fp *server.Fingerprint, final int64, wantDrain bool, rep *report) error {
	for {
		d, f, done, err := subc.Next()
		if err != nil {
			return fmt.Errorf("subscriber: %w", err)
		}
		if done {
			rep.FinalEpoch = f
			return nil
		}
		fp.Add(d)
		if !wantDrain && d.Epoch >= final {
			rep.FinalEpoch = d.Epoch
			return nil
		}
	}
}
