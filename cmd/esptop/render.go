package main

import (
	"fmt"
	"sort"
	"strings"
	"text/tabwriter"
	"time"
)

// render draws one dashboard frame: a daemon header followed by the
// per-tenant SLO table. prev is the previous poll (zero value on the
// first frame) and elapsed the wall time between the two — rates render
// as "-" until a second poll provides a delta.
func render(cur, prev pollResult, elapsed time.Duration) string {
	var b strings.Builder
	base := cur.snaps[""]
	fmt.Fprintf(&b, "esptop  %s  conns=%d active=%d tenants=%d\n\n",
		cur.at.Format("15:04:05"),
		base.Counters["server_conns"],
		base.Gauges["server_conns_active"],
		base.Gauges["server_tenants"])

	var tenants []string
	for name := range cur.snaps {
		if name != "" {
			tenants = append(tenants, name)
		}
	}
	sort.Strings(tenants)
	if len(tenants) == 0 {
		b.WriteString("no tenants\n")
		return b.String()
	}

	tw := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "TENANT\tEPOCHS\tTUP/S\tEP/S\tBACKLOG\tSTALE\tSTEP p99\tINGEST p99\tDELIVER p99\tERRS")
	for _, name := range tenants {
		s := cur.snaps[name]
		p, hadPrev := prev.snaps[name]
		rate := func(counter string) string {
			if !hadPrev || elapsed <= 0 {
				return "-"
			}
			d := s.Counters[counter] - p.Counters[counter]
			return fmt.Sprintf("%.1f", float64(d)/elapsed.Seconds())
		}
		fmt.Fprintf(tw, "%s\t%d\t%s\t%s\t%d\t%s\t%s\t%s\t%s\t%d\n",
			strings.TrimPrefix(name, "tenant_"),
			s.Counters["serve_epochs"],
			rate("serve_tuples_in"),
			rate("serve_epochs"),
			s.Gauges["serve_backlog"],
			staleness(s.Gauges["slo_staleness_ns"]),
			ns(s.Histograms["serve_step_ns"].P99),
			ns(s.Histograms["slo_ingest_commit_ns"].P99),
			ns(s.Histograms["slo_commit_delivery_ns"].P99),
			s.Counters["rpc_errors"])
	}
	_ = tw.Flush()
	return b.String()
}

// ns renders a nanosecond quantity compactly ("-" when unobserved).
func ns(v int64) string {
	if v == 0 {
		return "-"
	}
	return time.Duration(v).Round(time.Microsecond).String()
}

// staleness renders the time-since-last-commit gauge ("-" before the
// first commit).
func staleness(v int64) string {
	if v == 0 {
		return "-"
	}
	return time.Duration(v).Round(time.Millisecond).String()
}
