// Command esptop is a live terminal dashboard for a running espd: it
// polls the daemon's /metrics.json endpoint and renders a per-tenant
// table of the serving SLOs — epoch watermark, ingest/commit/delivery
// latency quantiles, throughput rates (counter deltas between polls),
// backlog, and staleness.
//
//	esptop -addr http://localhost:9131
//	esptop -addr http://localhost:9131 -interval 2s
//	esptop -addr http://localhost:9131 -once        # one frame, no clear
//
// esptop is read-only and needs nothing but the metrics endpoint; it
// works against any espd regardless of whether tracing is enabled.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"
)

func main() {
	addr := flag.String("addr", "http://localhost:9131", "espd telemetry endpoint base URL")
	interval := flag.Duration("interval", time.Second, "poll and redraw period")
	once := flag.Bool("once", false, "render one frame and exit (no screen clearing)")
	flag.Parse()

	var prev pollResult
	first := true
	for {
		cur, err := poll(*addr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "esptop:", err)
			os.Exit(1)
		}
		if !*once {
			fmt.Print("\x1b[2J\x1b[H") // clear + home
		}
		elapsed := time.Duration(0)
		if !first {
			elapsed = cur.at.Sub(prev.at)
		}
		os.Stdout.WriteString(render(cur, prev, elapsed))
		if *once {
			return
		}
		prev, first = cur, false
		time.Sleep(*interval)
	}
}

// pollResult is one scrape of /metrics.json: the daemon registry under
// "" plus one registry snapshot per tenant, stamped with scrape time.
type pollResult struct {
	at    time.Time
	snaps map[string]registrySnap
}

// registrySnap mirrors telemetry.Snapshot's JSON shape (decoded here
// rather than imported so esptop stays a pure wire-level consumer).
type registrySnap struct {
	Counters   map[string]int64    `json:"counters"`
	Gauges     map[string]int64    `json:"gauges"`
	Histograms map[string]histSnap `json:"histograms"`
}

type histSnap struct {
	Count int64 `json:"count"`
	Sum   int64 `json:"sum_ns"`
	Max   int64 `json:"max_ns"`
	P50   int64 `json:"p50_ns"`
	P90   int64 `json:"p90_ns"`
	P99   int64 `json:"p99_ns"`
}

func poll(base string) (pollResult, error) {
	resp, err := http.Get(base + "/metrics.json")
	if err != nil {
		return pollResult{}, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return pollResult{}, err
	}
	if resp.StatusCode != http.StatusOK {
		return pollResult{}, fmt.Errorf("GET /metrics.json: %s", resp.Status)
	}
	snaps := make(map[string]registrySnap)
	if err := json.Unmarshal(body, &snaps); err != nil {
		// A daemon with no More() registries serves a bare snapshot.
		// The failed multi-registry decode may have left partial
		// entries behind — start over.
		var single registrySnap
		if err2 := json.Unmarshal(body, &single); err2 != nil {
			return pollResult{}, fmt.Errorf("decode /metrics.json: %w", err)
		}
		snaps = map[string]registrySnap{"": single}
	}
	return pollResult{at: time.Now(), snaps: snaps}, nil
}
