package main

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// metricsJSON is a captured /metrics.json shape: daemon registry under
// "", one tenant registry keyed by name.
const metricsJSON = `{
  "": {
    "enabled": true,
    "counters": {"server_conns": 7},
    "gauges": {"server_conns_active": 2, "server_tenants": 1},
    "histograms": {}
  },
  "tenant_acme": {
    "enabled": true,
    "counters": {"serve_epochs": 10, "serve_tuples_in": 5000, "rpc_errors": 1},
    "gauges": {"serve_backlog": 3, "slo_staleness_ns": 250000000},
    "histograms": {
      "serve_step_ns": {"count": 10, "sum_ns": 1000000, "max_ns": 200000, "p50_ns": 90000, "p90_ns": 150000, "p99_ns": 200000},
      "slo_ingest_commit_ns": {"count": 10, "sum_ns": 9000000, "max_ns": 1200000, "p50_ns": 800000, "p90_ns": 1000000, "p99_ns": 1200000},
      "slo_commit_delivery_ns": {"count": 10, "sum_ns": 400000, "max_ns": 70000, "p50_ns": 30000, "p90_ns": 50000, "p99_ns": 70000}
    }
  }
}`

func servedPoll(t *testing.T, body string) pollResult {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/metrics.json" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(body)) //nolint:errcheck
	}))
	defer srv.Close()
	pr, err := poll(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	return pr
}

func TestPollAndRenderFirstFrame(t *testing.T) {
	cur := servedPoll(t, metricsJSON)
	out := render(cur, pollResult{}, 0)
	for _, want := range []string{
		"conns=7", "active=2", "tenants=1",
		"TENANT", "acme",
		"250ms",  // staleness
		"200µs",  // step p99
		"1.2ms",  // ingest p99
		"70µs",   // delivery p99
	} {
		if !strings.Contains(out, want) {
			t.Errorf("frame missing %q:\n%s", want, out)
		}
	}
	// No previous poll: rates are unknown, not zero.
	if !strings.Contains(out, "-") {
		t.Errorf("first frame should render '-' rates:\n%s", out)
	}
	// The registry key carries the exposition prefix; the table shows
	// the tenant's own name, matching /statusz.
	if strings.Contains(out, "tenant_acme") {
		t.Errorf("registry prefix leaked into the table:\n%s", out)
	}
}

func TestRenderRates(t *testing.T) {
	prev := servedPoll(t, metricsJSON)
	next := strings.Replace(metricsJSON, `"serve_epochs": 10`, `"serve_epochs": 12`, 1)
	next = strings.Replace(next, `"serve_tuples_in": 5000`, `"serve_tuples_in": 6000`, 1)
	cur := servedPoll(t, next)
	out := render(cur, prev, 2*time.Second)
	if !strings.Contains(out, "500.0") { // (6000-5000)/2s
		t.Errorf("tuple rate missing:\n%s", out)
	}
	if !strings.Contains(out, "1.0") { // (12-10)/2s
		t.Errorf("epoch rate missing:\n%s", out)
	}
}

func TestPollBareSnapshot(t *testing.T) {
	// A daemon with no tenant registries serves one bare snapshot
	// object; poll must accept it under the "" key.
	cur := servedPoll(t, `{"enabled":true,"counters":{"server_conns":3},"gauges":{},"histograms":{}}`)
	if cur.snaps[""].Counters["server_conns"] != 3 {
		t.Fatalf("bare snapshot not decoded: %+v", cur.snaps)
	}
	out := render(cur, pollResult{}, 0)
	if !strings.Contains(out, "no tenants") {
		t.Errorf("bare frame should say no tenants:\n%s", out)
	}
}
