// Command espsim emits simulated raw receptor traces as CSV on stdout,
// for feeding into espclean or external tools:
//
//	espsim -scenario shelf   -duration 700s          # RFID shelf readers (§4)
//	espsim -scenario redwood -duration 84h           # redwood motes (§5.2)
//	espsim -scenario outlier -duration 48h           # fail-dirty room (§5.1)
//	espsim -scenario home    -duration 600s -type rfid|mote|motion  (§6)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"esp/internal/receptor"
	"esp/internal/sim"
	"esp/internal/telemetry"
	"esp/internal/trace"
)

// metricsAddr, when non-empty, serves generator telemetry (per-receptor
// tuple counters, poll-latency histograms) over HTTP during the run.
var metricsAddr string

func main() {
	scenario := flag.String("scenario", "shelf", "shelf, redwood, outlier, or home")
	duration := flag.Duration("duration", 700*time.Second, "trace length")
	seed := flag.Int64("seed", 1, "simulation seed")
	typ := flag.String("type", "", "receptor type for multi-type scenarios (rfid, mote, motion)")
	flag.StringVar(&metricsAddr, "metrics", "", "serve generator telemetry on this addr (e.g. ':9090'; ':0' picks a free port)")
	flag.Parse()

	if err := run(os.Stdout, *scenario, *duration, *seed, receptor.Type(*typ)); err != nil {
		fmt.Fprintln(os.Stderr, "espsim:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, scenario string, duration time.Duration, seed int64, typ receptor.Type) error {
	var recs []receptor.Receptor
	var epoch time.Duration
	switch scenario {
	case "shelf":
		cfg := sim.DefaultShelfConfig()
		cfg.Seed = seed
		sc, err := sim.NewShelfScenario(cfg)
		if err != nil {
			return err
		}
		for _, r := range sc.Readers {
			recs = append(recs, r)
		}
		epoch = cfg.PollPeriod
	case "redwood":
		cfg := sim.DefaultRedwoodConfig()
		cfg.Seed = seed
		sc, err := sim.NewRedwoodScenario(cfg)
		if err != nil {
			return err
		}
		for _, m := range sc.Motes {
			recs = append(recs, m)
		}
		epoch = cfg.Epoch
	case "outlier":
		cfg := sim.DefaultOutlierConfig()
		cfg.Seed = seed
		sc, err := sim.NewOutlierScenario(cfg)
		if err != nil {
			return err
		}
		for _, m := range sc.Motes {
			recs = append(recs, m)
		}
		epoch = cfg.Epoch
	case "home":
		cfg := sim.DefaultHomeConfig()
		cfg.Seed = seed
		sc, err := sim.NewHomeScenario(cfg)
		if err != nil {
			return err
		}
		if typ == "" {
			typ = receptor.TypeRFID
		}
		for _, r := range sc.Readers {
			recs = append(recs, r)
		}
		for _, m := range sc.Motes {
			recs = append(recs, m)
		}
		for _, d := range sc.Detectors {
			recs = append(recs, d)
		}
		epoch = cfg.Epoch
	default:
		return fmt.Errorf("unknown scenario %q", scenario)
	}

	// Filter to one type (traces are single-schema files).
	var chosen []receptor.Receptor
	for _, r := range recs {
		if typ == "" || r.Type() == typ {
			chosen = append(chosen, r)
		}
	}
	if len(chosen) == 0 {
		return fmt.Errorf("no receptors of type %q in scenario %q", typ, scenario)
	}
	for _, r := range chosen[1:] {
		if !r.Schema().Equal(chosen[0].Schema()) {
			return fmt.Errorf("mixed schemas; pass -type to select one receptor type")
		}
	}

	tw, err := trace.NewWriter(w, chosen[0].Schema())
	if err != nil {
		return err
	}

	// Optional live telemetry: per-receptor tuple counters, a wall-clock
	// poll-latency histogram, and an epochs-generated counter, served on
	// the standard exposition endpoint while the trace is written.
	reg := telemetry.NewRegistry()
	reg.SetEnabled(metricsAddr != "")
	if metricsAddr != "" {
		srv, err := telemetry.Serve(metricsAddr, telemetry.ServerConfig{Registry: reg, ExpvarName: "espsim"})
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintln(os.Stderr, "espsim: telemetry on", srv.URL())
	}
	epochs := reg.Counter("sim.epochs")
	pollLat := reg.Histogram("sim.poll_ns")
	perRec := make(map[string]*telemetry.Counter, len(recs))
	for _, r := range recs {
		perRec[r.ID()] = reg.Counter("sim." + r.ID() + ".tuples")
	}

	start := time.Unix(0, 0).UTC()
	for now := start.Add(epoch); !now.After(start.Add(duration)); now = now.Add(epoch) {
		for _, r := range recs { // poll all receptors to keep RNG streams aligned
			t0 := time.Now()
			tuples := r.Poll(now)
			if reg.Enabled() {
				pollLat.Observe(time.Since(t0))
				perRec[r.ID()].Add(int64(len(tuples)))
			}
			if typ != "" && r.Type() != typ {
				continue
			}
			for _, t := range tuples {
				if err := tw.Write(trace.Record{Receptor: r.ID(), Tuple: t}); err != nil {
					return err
				}
			}
		}
		epochs.Add(1)
	}
	return tw.Flush()
}
