package main

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"esp/internal/receptor"
	"esp/internal/sim"
	"esp/internal/trace"
)

func TestRunShelfTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "shelf", 10*time.Second, 1, ""); err != nil {
		t.Fatal(err)
	}
	records, err := trace.Read(&buf, sim.RFIDSchema)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) == 0 {
		t.Fatal("empty shelf trace")
	}
	readers := map[string]bool{}
	for _, r := range records {
		readers[r.Receptor] = true
	}
	if !readers["reader0"] || !readers["reader1"] {
		t.Errorf("readers in trace: %v", readers)
	}
}

func TestRunDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := run(&a, "outlier", time.Hour, 5, ""); err != nil {
		t.Fatal(err)
	}
	if err := run(&b, "outlier", time.Hour, 5, ""); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("same seed produced different traces")
	}
	var c bytes.Buffer
	if err := run(&c, "outlier", time.Hour, 6, ""); err != nil {
		t.Fatal(err)
	}
	if a.String() == c.String() {
		t.Error("different seeds produced identical traces")
	}
}

func TestRunHomeRequiresTypeFiltering(t *testing.T) {
	// Without -type, home defaults to RFID.
	var buf bytes.Buffer
	if err := run(&buf, "home", 30*time.Second, 1, ""); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "receptor_id,ts,tag_id,checksum_ok") {
		t.Errorf("home default header = %q", strings.SplitN(buf.String(), "\n", 2)[0])
	}
	// Motion type selects the X10 stream.
	buf.Reset()
	if err := run(&buf, "home", 30*time.Second, 1, receptor.TypeMotion); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "receptor_id,ts,detector_id,value") {
		t.Errorf("motion header = %q", strings.SplitN(buf.String(), "\n", 2)[0])
	}
}

func TestRunErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "marsrover", time.Second, 1, ""); err == nil {
		t.Error("unknown scenario: want error")
	}
	if err := run(&buf, "shelf", time.Second, 1, receptor.TypeMote); err == nil {
		t.Error("type with no receptors: want error")
	}
}

// TestRunWithMetrics exercises the -metrics wiring: the exposition
// endpoint binds, serves during generation, and the run completes.
func TestRunWithMetrics(t *testing.T) {
	metricsAddr = ":0"
	defer func() { metricsAddr = "" }()
	var buf bytes.Buffer
	if err := run(&buf, "shelf", 10*time.Second, 1, ""); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "reader0") {
		t.Errorf("metrics-enabled run produced no trace:\n%s", buf.String())
	}
}
