package main

import (
	"fmt"
	"time"

	"esp/internal/exp"
)

// runNetChaos drives the 1000-mote served workload through the
// network-chaos proxy with resilient session clients, verifies
// exactly-once resume end to end, and writes BENCH_netchaos.json.
func runNetChaos(bool) error {
	fmt.Println("== netchaos: resilient sessions under link faults ==")
	cfg := exp.DefaultNetChaosConfig()
	if seedOverride != 0 {
		cfg.Seed = seedOverride
	}
	res, err := exp.RunNetChaos(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("   %d motes × %d epochs via %d resilient publishers, one fault per boundary\n",
		res.Motes, res.Epochs, res.Publishers)
	fmt.Printf("   faults %v   links opened %d killed %d\n",
		res.Faults, res.LinksOpened, res.LinksKilled)
	fmt.Printf("   reconnects: client %d server %d   resumes %d   dedup drops %d   idle kills %d\n",
		res.Reconnects, res.ServerReconn, res.Resumes, res.DedupDrops, res.IdleKills)
	fmt.Printf("   exactly-once %v (%d/%d tuples)   fingerprint match %v (%s)\n",
		res.ExactlyOnce, res.TuplesApplied, res.TuplesPublished, res.FingerprintMatch, res.FingerprintChaos)
	fmt.Printf("   resume latency p50 %s p99 %s max %s (%d faults recovered)\n",
		time.Duration(res.ResumeLatency.P50), time.Duration(res.ResumeLatency.P99),
		time.Duration(res.ResumeLatency.Max), res.ResumeLatency.Count)
	fmt.Printf("   deadline overhead %+.2f%% (off %s, on %s)   chaos wall %s\n",
		res.DeadlineOverheadPct,
		time.Duration(res.WallNsNoDeadlines), time.Duration(res.WallNsDeadlines),
		time.Duration(res.WallNsChaos))
	if err := writeJSON("BENCH_netchaos.json", res); err != nil {
		return err
	}
	fmt.Println("   wrote BENCH_netchaos.json")
	return nil
}
