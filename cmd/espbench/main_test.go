package main

import (
	"testing"
	"time"

	"esp/internal/exp"
)

// TestRunnersSmoke exercises the quick experiment runners end to end
// (the long ones are covered by internal/exp tests and the benchmarks).
func TestRunnersSmoke(t *testing.T) {
	for _, tc := range []struct {
		name string
		fn   func(bool) error
	}{
		{"fig9", runFig9},
		{"model", runModel},
		{"robust", runRobust},
	} {
		if err := tc.fn(false); err != nil {
			t.Errorf("%s: %v", tc.name, err)
		}
	}
}

func TestFig9TraceMode(t *testing.T) {
	if err := runFig9(true); err != nil {
		t.Fatal(err)
	}
}

func TestFig7Short(t *testing.T) {
	// Drive the fig7 runner's code path on a shortened scenario by
	// calling the exp layer directly with the runner's config shape.
	cfg := exp.DefaultOutlierConfig()
	cfg.Duration = 12 * time.Hour
	cfg.Sim.FailStart = 3 * time.Hour
	if _, err := exp.RunOutlier(cfg); err != nil {
		t.Fatal(err)
	}
}
