// Command espbench regenerates every table and figure of the paper's
// evaluation from the simulated deployments:
//
//	espbench -exp fig3     §4  shelf pipeline: raw vs Smooth vs Smooth+Arbitrate
//	espbench -exp fig5     §4  pipeline-configuration ablation
//	espbench -exp fig6     §4  temporal-granule sweep
//	espbench -exp fig7     §5.1 fail-dirty outlier detection
//	espbench -exp yield    §5.2 redwood epoch yield / accuracy ladder
//	espbench -exp spatial  §5.3.2 spatial-granule sweep
//	espbench -exp fig9     §6  digital-home person detector
//	espbench -exp sched    dataflow-scheduler comparison (seq vs parallel)
//	espbench -exp chaos    fault-injection harness (supervised runtime)
//	espbench -exp baseline telemetry-off wall-time profile (BENCH_baseline.json)
//	espbench -exp obs      runtime-telemetry overhead matrix (BENCH_obs.json)
//	espbench -exp batch    columnar-vs-tuple execution comparison (BENCH_batch.json)
//	espbench -exp wal      WAL append overhead + crash-recovery time (BENCH_wal.json)
//	espbench -exp netchaos resilient sessions under link faults (BENCH_netchaos.json)
//	espbench -exp obsserve serving observability overhead: tracing off/sampled/full (BENCH_obsserve.json)
//	espbench -exp all      everything above
//
// Add -trace to emit the per-epoch series behind the figure (CSV on
// stdout after the summary).
package main

import (
	"flag"
	"fmt"
	"os"

	"esp/internal/exp"
)

func main() {
	expName := flag.String("exp", "all", "experiment id: fig3, fig5, fig6, fig7, yield, spatial, fig9, actuation, model, robust, sched, chaos, baseline, obs, batch, wal, netchaos, obsserve, all")
	trace := flag.Bool("trace", false, "emit per-epoch trace CSV after the summary")
	seed := flag.Int64("seed", 0, "override the simulation seed (0 = calibrated defaults)")
	flag.Parse()
	seedOverride = *seed

	runners := map[string]func(bool) error{
		"fig3":      runFig3,
		"fig5":      runFig5,
		"fig6":      runFig6,
		"fig7":      runFig7,
		"yield":     runYield,
		"spatial":   runSpatial,
		"fig9":      runFig9,
		"actuation": runActuation,
		"model":     runModel,
		"robust":    runRobust,
		"sched":     runSched,
		"chaos":     runChaos,
		"baseline":  runBaseline,
		"obs":       runObs,
		"batch":     runBatch,
		"wal":       runWAL,
		"netchaos":  runNetChaos,
		"obsserve":  runObsServe,
	}
	order := []string{"fig3", "fig5", "fig6", "fig7", "yield", "spatial", "fig9", "actuation", "model", "robust", "sched", "chaos", "baseline", "obs", "batch", "wal", "netchaos", "obsserve"}

	if *expName == "all" {
		for _, name := range order {
			if err := runners[name](*trace); err != nil {
				fatal(err)
			}
			fmt.Println()
		}
		return
	}
	run, ok := runners[*expName]
	if !ok {
		fatal(fmt.Errorf("unknown experiment %q (have %v)", *expName, order))
	}
	if err := run(*trace); err != nil {
		fatal(err)
	}
}

// seedOverride, when non-zero, replaces every scenario's calibrated seed
// — for checking that the reproduction's shape is not seed-specific.
var seedOverride int64

func shelfCfg() exp.ShelfConfig {
	cfg := exp.DefaultShelfConfig()
	if seedOverride != 0 {
		cfg.Sim.Seed = seedOverride
	}
	return cfg
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "espbench:", err)
	os.Exit(1)
}

func runFig3(trace bool) error {
	fmt.Println("== fig3: §4 RFID shelf — Query 1 error through the pipeline ==")
	fmt.Println("   paper: raw 0.41 (2.3 restock alerts/s), Smooth 0.24, Smooth+Arbitrate 0.04 (~0 alerts)")
	for _, mode := range []exp.PipelineMode{exp.ModeRaw, exp.ModeSmoothOnly, exp.ModeSmoothArbitrate} {
		cfg := shelfCfg()
		cfg.Mode = mode
		cfg.KeepTrace = trace && mode == exp.ModeSmoothArbitrate
		res, err := exp.RunShelf(cfg)
		if err != nil {
			return err
		}
		fmt.Printf("   %-18s avg rel err %.3f   restock alerts %.2f/s\n", mode, res.AvgRelErr, res.AlertRate)
		if cfg.KeepTrace {
			fmt.Println("t_s,shelf0_reported,shelf0_truth,shelf1_reported,shelf1_truth")
			for _, row := range res.Trace {
				fmt.Printf("%.1f,%d,%d,%d,%d\n", row.T.Seconds(),
					row.Reported[0], row.Truth[0], row.Reported[1], row.Truth[1])
			}
		}
	}
	return nil
}

func runFig5(bool) error {
	fmt.Println("== fig5: §4 pipeline-configuration ablation (avg rel err) ==")
	fmt.Println("   paper: only Smooth followed by Arbitrate provides significant benefit")
	res, err := exp.RunShelfAblation(shelfCfg())
	if err != nil {
		return err
	}
	for _, r := range res {
		fmt.Printf("   %-18s %.3f\n", r.Mode, r.AvgRelErr)
	}
	return nil
}

func runFig6(bool) error {
	fmt.Println("== fig6: §4 temporal-granule sweep (avg rel err, Smooth+Arbitrate) ==")
	fmt.Println("   paper: U-shape bounded by device reliability below and data change rate above; best ≈ 5 s")
	points, err := exp.RunGranuleSweep(shelfCfg(), nil)
	if err != nil {
		return err
	}
	for _, p := range points {
		fmt.Printf("   granule %8s  %.3f\n", p.Granule, p.AvgRelErr)
	}
	return nil
}

func runFig7(trace bool) error {
	fmt.Println("== fig7: §5.1 fail-dirty outlier detection ==")
	fmt.Println("   paper: ESP tracks the functioning motes; Merge eliminates the outlier before Point's 50C filter")
	cfg := exp.DefaultOutlierConfig()
	if seedOverride != 0 {
		cfg.Sim.Seed = seedOverride
	}
	cfg.KeepTrace = trace
	res, err := exp.RunOutlier(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("   Merge first eliminates outlier at %v (failure onset %v)\n", res.FirstEliminated, cfg.Sim.FailStart)
	fmt.Printf("   Point first filters (>50C) at    %v\n", res.PointFirstFiltered)
	fmt.Printf("   post-failure: ESP within 1C %.1f%%, max err ESP %.1fC vs naive avg %.1fC\n",
		100*res.ESPWithin1C, res.ESPMaxErr, res.NaiveMaxErr)
	if trace {
		fmt.Println("t_days,mote1_failing,mote2,mote3,naive_avg,esp,truth")
		for _, row := range res.Trace {
			fmt.Printf("%.3f,%.2f,%.2f,%.2f,%.2f,%.2f,%.2f\n", row.T.Hours()/24,
				row.Motes[0], row.Motes[1], row.Motes[2], row.NaiveAvg, row.ESP, row.Truth)
		}
	}
	return nil
}

func runYield(bool) error {
	fmt.Println("== yield: §5.2 redwood epoch yield / accuracy ==")
	fmt.Println("   paper: raw 40% -> Smooth 77% (99% within 1C) -> Merge 92% (94% within 1C)")
	cfg := exp.DefaultRedwoodConfig()
	if seedOverride != 0 {
		cfg.Sim.Seed = seedOverride
	}
	res, err := exp.RunRedwoodYield(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("   raw            yield %4.1f%%\n", 100*res.RawYield)
	fmt.Printf("   after Smooth   yield %4.1f%%   within 1C %4.1f%%\n", 100*res.SmoothYield, 100*res.SmoothWithinTol)
	fmt.Printf("   after Merge    yield %4.1f%%   within 1C %4.1f%%\n", 100*res.MergeYield, 100*res.MergeWithinTol)
	return nil
}

func runSpatial(bool) error {
	fmt.Println("== spatial: §5.3.2 spatial-granule (proximity-group size) sweep ==")
	fmt.Println("   paper (discussion): larger granules raise yield at the expense of accuracy")
	scfg := exp.DefaultRedwoodConfig()
	if seedOverride != 0 {
		scfg.Sim.Seed = seedOverride
	}
	points, err := exp.RunSpatialSweep(scfg, nil)
	if err != nil {
		return err
	}
	for _, p := range points {
		fmt.Printf("   group size %d   yield %4.1f%%   within 1C %4.1f%%\n",
			p.GroupSize, 100*p.MergeYield, 100*p.WithinTol)
	}
	return nil
}

func runFig9(trace bool) error {
	fmt.Println("== fig9: §6 digital-home person detector ==")
	fmt.Println("   paper: ESP correctly indicates presence 92% of the time")
	cfg := exp.DefaultHomeConfig()
	if seedOverride != 0 {
		cfg.Sim.Seed = seedOverride
	}
	cfg.KeepTrace = trace
	res, err := exp.RunDigitalHome(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("   accuracy %.1f%%  (false positives %d, false negatives %d over %d s)\n",
		100*res.Accuracy, res.FalsePositives, res.FalseNegatives, res.Epochs)
	if trace {
		fmt.Println("t_s,detected,truth")
		for _, row := range res.Trace {
			fmt.Printf("%.0f,%d,%d\n", row.T.Seconds(), b2i(row.Detected), b2i(row.Truth))
		}
	}
	return nil
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

func runSched(bool) error {
	fmt.Println("== sched: dataflow-scheduler comparison (wide deployment) ==")
	fmt.Println("   SeqScheduler vs ParallelScheduler on 48 legs / 12 merges; identical output, wall time only")
	res, err := exp.RunSchedulerComparison(exp.DefaultSchedConfig())
	if err != nil {
		return err
	}
	fmt.Printf("   %d receptors, %d groups, %d epochs, %d worker(s)\n",
		res.Receptors, res.Groups, res.Epochs, res.Workers)
	fmt.Printf("   sequential %v   parallel %v   speedup %.2fx   (%d output tuples, identical=%v)\n",
		res.SeqWall, res.ParWall, res.Speedup, res.OutputTuples, res.Identical)
	return nil
}
