package main

import (
	"fmt"

	"esp/internal/exp"
)

func runActuation(bool) error {
	fmt.Println("== actuation: §5.3.1 receptor actuation (extension) ==")
	vs, err := exp.RunActuation(exp.DefaultActuationConfig())
	if err != nil {
		return err
	}
	for _, v := range vs {
		fmt.Printf("   %-28s smooth yield %5.1f%%   samples/mote/hour %5.1f   transitions %d\n",
			v.Name, 100*v.SmoothYield, v.SamplesPerMoteHour, v.Transitions)
	}
	return nil
}
