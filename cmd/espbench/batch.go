package main

import (
	"fmt"

	"esp/internal/exp"
)

// runBatch measures the columnar batch path + plan optimizer against the
// row-at-a-time tuple path on the wide scheduler workload and writes
// BENCH_batch.json.
func runBatch(bool) error {
	fmt.Println("== batch: columnar execution + plan optimizer vs tuple-at-a-time ==")
	fmt.Println("   same wide deployment, identical output required; wall time only")
	res, err := exp.RunBatchComparison(exp.DefaultBatchConfig())
	if err != nil {
		return err
	}
	fmt.Printf("   %d receptors, %d groups, %d epochs\n", res.Receptors, res.Groups, res.Epochs)
	for _, m := range res.Modes {
		fmt.Printf("   %-6s %10d ns/epoch\n", m.Mode, m.NsPerEpoch)
	}
	fmt.Printf("   speedup %.2fx   (%d output tuples, identical=%v)\n",
		res.Speedup, res.OutputTuples, res.Identical)
	if err := writeJSON("BENCH_batch.json", res); err != nil {
		return err
	}
	fmt.Println("   wrote BENCH_batch.json")
	return nil
}
