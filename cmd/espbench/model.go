package main

import (
	"fmt"

	"esp/internal/exp"
)

func runModel(bool) error {
	fmt.Println("== model: §6.3.1 BBQ-style model-based cleaning (extension) ==")
	cfg := exp.DefaultModelOutlierConfig()
	r, err := exp.RunModelOutlier(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("   temp~voltage model first rejects the failing sensor at %v (failure onset %v)\n",
		r.ModelFirstDrop, cfg.FailStart)
	fmt.Printf("   a naive temp<%.0fC Point filter would first fire at    %v\n",
		cfg.PointLimit, r.ThresholdFirstDrop)
	fmt.Printf("   post-failure readings rejected %.1f%%, pre-failure false positives %.2f%%\n",
		100*r.PostFailureRejected, 100*r.PreFailureRejected)
	return nil
}
