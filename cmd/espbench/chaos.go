package main

import (
	"fmt"
	"strings"

	"esp/internal/exp"
)

// runChaos executes the fault-injection harness: the shelf, lab, and
// digital-home deployments under seeded fault schedules with the
// supervised poller, asserting no crash, the scheduled quarantines and
// readmissions, and seed-deterministic output (each deployment runs
// twice and must fingerprint identically).
func runChaos(trace bool) error {
	fmt.Println("== chaos: supervised runtime under injected receptor faults (extension) ==")
	cfg := exp.DefaultChaosConfig()
	if seedOverride != 0 {
		cfg.Seed = seedOverride
	}
	res, err := exp.RunChaos(cfg)
	if err != nil {
		return err
	}
	for _, d := range res.Deployments {
		fmt.Printf("   %-6s %5d epochs  %6d outputs  quarantined [%s]  readmitted [%s]  still-out [%s]  node panics %d  fp %016x\n",
			d.Name, d.Epochs, d.Outputs,
			strings.Join(d.Quarantined, ","), strings.Join(d.Readmitted, ","),
			strings.Join(d.EndQuarantined, ","), d.NodePanics, d.Fingerprint)
		if trace {
			for _, tr := range d.Transitions {
				fmt.Printf("     %s\n", tr)
			}
		}
	}
	fmt.Println("   determinism: PASS (identical fingerprints across reruns)")
	return nil
}
