package main

import (
	"fmt"
	"time"

	"esp/internal/exp"
)

// runWAL measures write-ahead-log append overhead on the served sched
// workload and boot-recovery time of a large crashed journal, and
// writes BENCH_wal.json.
func runWAL(bool) error {
	fmt.Println("== wal: journalling overhead and crash-recovery time ==")
	cfg := exp.DefaultWALConfig()
	res, err := exp.RunWAL(cfg)
	if err != nil {
		return err
	}
	a := res.Append
	fmt.Printf("   append: %d receptors × %d epochs (%d tuples) served\n",
		a.Receptors, a.Epochs, a.TuplesPublished)
	fmt.Printf("     wal off %8d ns/epoch   append %8d ns/epoch   overhead %+.2f%%  (gate ≤ 15%%)\n",
		a.OffNsPerEpoch, a.AppendNsPerEpoch, 100*a.AppendOverhead)
	fmt.Printf("     durable %8d ns/epoch   overhead %+.2f%%  fsync/commit p50 %s p99 %s  duty %.5f%%\n",
		a.DurableNsPerEpoch, 100*a.DurableOverhead,
		time.Duration(a.Fsync.P50), time.Duration(a.Fsync.P99), 100*a.FsyncDutyCycle)
	fmt.Printf("     journal %0.1f MiB   identical %v\n",
		float64(a.JournalBytes)/(1<<20), a.Identical)
	r := res.Recovery
	fmt.Printf("   recovery: %d motes × %d epochs (%d tuples, %0.1f MiB, %d segments)\n",
		r.Motes, r.Epochs, r.TuplesJournaled, float64(r.JournalBytes)/(1<<20), r.JournalSegments)
	fmt.Printf("     replayed in %s (%d ns/epoch, %.0f tuples/s)   sub-second %v   identical %v\n",
		time.Duration(r.RecoverWallNs), r.NsPerEpoch, r.TuplesPerSec, r.SubSecond, r.Identical)
	if err := writeJSON("BENCH_wal.json", res); err != nil {
		return err
	}
	fmt.Println("   wrote BENCH_wal.json")
	return nil
}
