package main

import (
	"fmt"

	"esp/internal/exp"
)

func runRobust(bool) error {
	fmt.Println("== robust: Merge-stage estimator ablation (extension) ==")
	rs, err := exp.RunRobustMerge(exp.DefaultOutlierConfig())
	if err != nil {
		return err
	}
	for _, r := range rs {
		fmt.Printf("   %-28s within 1C %5.1f%%   max err %6.1fC   coverage %5.1f%%\n",
			r.Name, 100*r.Within1C, r.MaxErr, 100*r.Coverage)
	}
	return nil
}
