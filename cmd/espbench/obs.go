package main

import (
	"encoding/json"
	"fmt"
	"os"

	"esp/internal/exp"
)

// writeJSON marshals v indented into path (committed at the repo root
// by `make bench-json`).
func writeJSON(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// runObs measures the telemetry overhead matrix (off vs counters vs
// counters+lineage) on the three paper deployments and writes
// BENCH_obs.json.
func runObs(bool) error {
	fmt.Println("== obs: runtime-telemetry overhead (off vs counters vs counters+lineage) ==")
	cfg := exp.DefaultObsConfig()
	if seedOverride != 0 {
		cfg.Seed = seedOverride
	}
	res, err := exp.RunObs(cfg)
	if err != nil {
		return err
	}
	for _, d := range res.Deployments {
		fmt.Printf("   %-6s %d receptors, %d epochs   disabled overhead %+.2f%%\n",
			d.Name, d.Receptors, d.Epochs, 100*d.DisabledOverhead)
		for _, m := range d.Modes {
			extra := ""
			if m.Mode == "lineage" {
				extra = fmt.Sprintf("   (%d traces)", m.LineageTraces)
			}
			fmt.Printf("     %-9s %8d ns/epoch   overhead %+.2f%%%s\n",
				m.Mode, m.NsPerEpoch, 100*m.Overhead, extra)
		}
	}
	if err := writeJSON("BENCH_obs.json", res); err != nil {
		return err
	}
	fmt.Println("   wrote BENCH_obs.json")
	return nil
}

// runBaseline measures the telemetry-off reference profile and writes
// BENCH_baseline.json.
func runBaseline(bool) error {
	fmt.Println("== baseline: telemetry-off wall-time profile of the paper deployments ==")
	cfg := exp.DefaultObsConfig()
	if seedOverride != 0 {
		cfg.Seed = seedOverride
	}
	res, err := exp.RunObsBaseline(cfg)
	if err != nil {
		return err
	}
	for _, d := range res.Deployments {
		fmt.Printf("   %-6s %d receptors, %d epochs   %8d ns/epoch\n",
			d.Name, d.Receptors, d.Epochs, d.NsPerEpoch)
	}
	if err := writeJSON("BENCH_baseline.json", res); err != nil {
		return err
	}
	fmt.Println("   wrote BENCH_baseline.json")
	return nil
}
