package main

import (
	"fmt"
	"time"

	"esp/internal/exp"
)

// runObsServe measures what the serving observability plane costs: the
// 1000-mote workload over live TCP with tracing off (twice — the noise
// floor), server-sampled, and fully traced, hard-gating that the
// disabled path is allocation-free and within noise, that tracing never
// changes output, and that a trace ID survives client → server →
// delivery. Writes BENCH_obsserve.json.
func runObsServe(bool) error {
	fmt.Println("== obsserve: serving observability overhead ==")
	cfg := exp.DefaultObsServeConfig()
	if seedOverride != 0 {
		cfg.Seed = seedOverride
	}
	res, err := exp.RunObsServe(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("   %d motes × %d epochs via %d publishers, min of %d repeats per leg\n",
		res.Motes, res.Epochs, res.Publishers, res.Repeats)
	for _, l := range res.Legs {
		tracing := "off"
		if l.TraceSampleN > 0 {
			tracing = fmt.Sprintf("server 1/%d", l.TraceSampleN)
		}
		if l.ClientTracing {
			tracing += " + client 1/1"
		}
		fmt.Printf("   %-8s %-22s wall %10s  %+6.2f%%  spans %6d  traces %4d\n",
			l.Mode, tracing, time.Duration(l.WallNs), l.OverheadPct, l.Spans, l.Traces)
	}
	fmt.Printf("   disabled path: %.4f allocs/frame, off-leg spread %.2f%%\n",
		res.DisabledAllocsPerFrame, res.DisabledSpreadPct)
	fmt.Printf("   fingerprint match %v   trace ID end-to-end %v\n",
		res.FingerprintMatch, res.TraceIDEndToEnd)
	if err := writeJSON("BENCH_obsserve.json", res); err != nil {
		return err
	}
	fmt.Println("   wrote BENCH_obsserve.json")
	return nil
}
