module esp

go 1.22
