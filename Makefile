GO ?= go

# FUZZTIME bounds each fuzz target's round: short for the smoke pass
# `make check` runs, longer via `make fuzz FUZZTIME=5m`.
FUZZTIME ?= 10s

.PHONY: check vet build test race diff chaos serve-smoke wal-smoke netchaos-smoke obsserve-smoke fuzz-smoke fuzz bench bench-json

## check: everything CI needs — vet, build, full tests, race-detector pass
## over the concurrent executor, the differential oracle suite, the chaos
## (fault-injection) harness, the serving-layer smoke (loadgen vs the
## in-process oracle), the WAL crash-recovery smoke, the network-chaos
## resilient-session smoke, the observability smoke (tracing, ops
## surfaces, metrics-doc drift, overhead gates), and a short fuzz round
## per target.
check: vet build test race diff chaos serve-smoke wal-smoke netchaos-smoke obsserve-smoke fuzz-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/core/...

## diff: the differential correctness suite (internal/oracle) — every
## generated case executed several ways, zero divergence required.
diff:
	$(GO) test ./internal/oracle -run 'TestDifferential|TestInjectedBugCaught' -count=1

## chaos: the fault-injection harness — all three deployments under
## seeded fault schedules with the supervised poller, run twice each,
## asserting scheduled quarantine/readmission and deterministic output.
chaos:
	$(GO) test ./internal/exp -run 'TestChaos' -count=1

## serve-smoke: replay simulated motes through a self-hosted espd over
## TCP and require byte-identical output to the in-process oracle run,
## ending with a graceful drain (see cmd/esploadgen).
serve-smoke:
	$(GO) run ./cmd/esploadgen -motes 200 -epochs 10 -out /dev/null
	$(GO) test ./internal/server -race -count=1

## wal-smoke: the torn-write/corruption battery (crash injection across
## the three example deployments) and the recovery-replay-commute
## differential, both under -race.
wal-smoke:
	$(GO) test ./internal/wal/... -race -count=1
	$(GO) test ./internal/oracle -race -run 'TestRecoveryCaseClean' -count=1

## netchaos-smoke: the resilient-session battery under -race — the
## network-chaos proxy's own tests, the session/resume/deadline server
## tests, and a scaled-down end-to-end chaos run (resilient clients
## through the fault-injecting proxy, byte-identical resumed output
## required; see internal/exp/netchaos.go).
netchaos-smoke:
	$(GO) test ./internal/netchaos -race -count=1
	$(GO) test ./internal/server -race -count=1 -run 'TestSession|TestSubscribeResume|TestIdleKill|TestSlowSubscriber|TestHalfOpen|TestResilientBackoff'
	$(GO) test ./internal/exp -race -count=1 -run 'TestNetChaosSmoke'

## obsserve-smoke: the observability battery under -race — the
## telemetry registry/tracer conformance tests, the end-to-end trace and
## ops-surface tests, the metrics-doc drift gate, and a scaled-down
## serving-overhead run (allocation-free disabled path, fingerprint
## identity across tracing modes, one trace ID end to end; see
## internal/exp/obsserve.go).
obsserve-smoke:
	$(GO) test ./internal/telemetry -race -count=1
	$(GO) test ./internal/server -race -count=1 -run 'TestTrace|TestHealthz|TestStatusz|TestMetricsDocDrift|TestFamilyOf'
	$(GO) test ./internal/exp -race -count=1 -run 'TestObsServeSmoke'
	$(GO) test ./cmd/esptop ./cmd/espd -count=1

## fuzz-smoke: one short coverage-guided round per fuzz target, seeded
## from the committed corpora under testdata/fuzz.
fuzz-smoke:
	$(GO) test ./internal/cql -run '^$$' -fuzz FuzzLexer -fuzztime $(FUZZTIME)
	$(GO) test ./internal/cql -run '^$$' -fuzz FuzzParser -fuzztime $(FUZZTIME)
	$(GO) test ./internal/stream -run '^$$' -fuzz FuzzCompileExpr -fuzztime $(FUZZTIME)
	$(GO) test ./internal/oracle -run '^$$' -fuzz FuzzWindowAlgebra -fuzztime $(FUZZTIME)
	$(GO) test ./internal/wire -run '^$$' -fuzz FuzzFrame -fuzztime $(FUZZTIME)
	$(GO) test ./internal/wal -run '^$$' -fuzz FuzzSegment -fuzztime $(FUZZTIME)

## fuzz: longer fuzz rounds (override FUZZTIME, e.g. make fuzz FUZZTIME=10m).
fuzz:
	$(MAKE) fuzz-smoke FUZZTIME=$(if $(filter 10s,$(FUZZTIME)),2m,$(FUZZTIME))

## bench: the full benchmark suite (one testing.B per experiment).
bench:
	$(GO) test -bench=. -benchmem ./...

## bench-json: regenerate the committed perf snapshots at the repo root —
## BENCH_baseline.json (telemetry-off wall-time profile), BENCH_obs.json
## (telemetry overhead matrix), BENCH_batch.json (columnar-vs-tuple
## execution comparison), BENCH_wal.json (journalling overhead +
## crash-recovery time), BENCH_netchaos.json (resilient sessions under
## link faults) and BENCH_obsserve.json (serving observability overhead;
## see EXPERIMENTS.md).
bench-json:
	$(GO) run ./cmd/espbench -exp baseline
	$(GO) run ./cmd/espbench -exp obs
	$(GO) run ./cmd/espbench -exp batch
	$(GO) run ./cmd/espbench -exp wal
	$(GO) run ./cmd/espbench -exp netchaos
	$(GO) run ./cmd/espbench -exp obsserve
