GO ?= go

.PHONY: check vet build test race bench

## check: everything CI needs — vet, build, full tests, race-detector pass
## over the concurrent executor.
check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/core/...

## bench: the full benchmark suite (one testing.B per experiment).
bench:
	$(GO) test -bench=. -benchmem ./...
