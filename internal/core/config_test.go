package core

import (
	"strings"
	"testing"
	"time"

	"esp/internal/receptor"
	"esp/internal/stream"
)

const shelfConfigJSON = `{
  "epoch": "1s",
  "groups": {
    "shelf0": {"type": "rfid", "members": ["reader0"]},
    "shelf1": {"type": "rfid", "members": ["reader1"]}
  },
  "pipelines": {
    "rfid": {
      "point": "SELECT tag_id FROM point_input WHERE checksum_ok = TRUE",
      "smooth": "SELECT tag_id, count(*) AS n FROM smooth_input [Range By '5 sec'] GROUP BY tag_id",
      "arbitrate": "SELECT spatial_granule, tag_id FROM arb ai1 [Range By 'NOW'] GROUP BY spatial_granule, tag_id HAVING sum(n) >= ALL(SELECT sum(n) FROM arb ai2 [Range By 'NOW'] WHERE ai1.tag_id = ai2.tag_id GROUP BY spatial_granule)"
    }
  }
}`

func TestParseDeploymentConfig(t *testing.T) {
	dep, err := ParseDeploymentConfig([]byte(shelfConfigJSON))
	if err != nil {
		t.Fatal(err)
	}
	if dep.Epoch != time.Second {
		t.Errorf("epoch = %v", dep.Epoch)
	}
	if got := dep.Groups.Names(); len(got) != 2 || got[0] != "shelf0" {
		t.Errorf("groups = %v", got)
	}
	pl := dep.Pipelines[receptor.TypeRFID]
	if pl == nil || pl.Point == nil || pl.Smooth == nil || pl.Arbitrate == nil || pl.Merge != nil {
		t.Fatalf("pipeline = %+v", pl)
	}

	// The parsed deployment must actually run.
	dep.Receptors = []receptor.Receptor{
		&fakeReceptor{id: "reader0", typ: receptor.TypeRFID, schema: rfidRaw, queue: []stream.Tuple{
			rfidRead(0.1, "X", true), rfidRead(0.3, "X", true),
		}},
		&fakeReceptor{id: "reader1", typ: receptor.TypeRFID, schema: rfidRaw, queue: []stream.Tuple{
			rfidRead(0.2, "X", true),
		}},
	}
	p, err := NewProcessor(dep)
	if err != nil {
		t.Fatal(err)
	}
	var got []stream.Tuple
	p.OnType(receptor.TypeRFID, func(tu stream.Tuple) { got = append(got, tu) })
	if err := p.Run(at(0), at(1)); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Values[0] != stream.String("shelf0") {
		t.Errorf("arbitrated output = %v, want X -> shelf0", got)
	}
}

func TestParseDeploymentConfigWithTablesAndVirtualize(t *testing.T) {
	src := `{
	  "epoch": "1s",
	  "groups": {
	    "office-rfid":   {"type": "rfid", "members": ["r0"]},
	    "office-sound":  {"type": "mote", "members": ["m1"]},
	    "office-motion": {"type": "motion", "members": ["x1"]}
	  },
	  "tables": {
	    "expected_tags": {
	      "columns": {"expected_tag": "string"},
	      "rows": [{"expected_tag": "badge-1"}]
	    }
	  },
	  "pipelines": {
	    "rfid": {"point": "SELECT * FROM point_input, expected_tags WHERE tag_id = expected_tag"}
	  },
	  "virtualize": {
	    "query": "SELECT 'Person-in-room' AS event FROM (SELECT 1 AS cnt FROM sensors_input [Range By 'NOW'] WHERE noise > 525) AS a, (SELECT 1 AS cnt FROM rfid_input [Range By 'NOW'] HAVING count(distinct tag_id) >= 1) AS b, (SELECT 1 AS cnt FROM motion_input [Range By 'NOW'] WHERE value = 'ON') AS c WHERE a.cnt + b.cnt + c.cnt >= 2",
	    "bind": {"sensors_input": "mote", "rfid_input": "rfid", "motion_input": "motion"}
	  }
	}`
	dep, err := ParseDeploymentConfig([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if dep.Tables["expected_tags"].Len() != 1 {
		t.Errorf("table rows = %d", dep.Tables["expected_tags"].Len())
	}
	if dep.Virtualize == nil || dep.Virtualize.Bind["sensors_input"] != receptor.TypeMote {
		t.Errorf("virtualize = %+v", dep.Virtualize)
	}
	// Wire minimal receptors and ensure it builds.
	dep.Receptors = []receptor.Receptor{
		&fakeReceptor{id: "r0", typ: receptor.TypeRFID, schema: rfidRaw},
		&fakeReceptor{id: "m1", typ: receptor.TypeMote, schema: stream.MustSchema(
			stream.Field{Name: "mote_id", Kind: stream.KindString},
			stream.Field{Name: "noise", Kind: stream.KindFloat})},
		&fakeReceptor{id: "x1", typ: receptor.TypeMotion, schema: stream.MustSchema(
			stream.Field{Name: "detector_id", Kind: stream.KindString},
			stream.Field{Name: "value", Kind: stream.KindString})},
	}
	if _, err := NewProcessor(dep); err != nil {
		t.Fatal(err)
	}
}

func TestParseDeploymentConfigErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"bad json", `{`},
		{"unknown field", `{"epoch": "1s", "groups": {"g": {"type": "rfid", "members": ["r"]}}, "oops": 1}`},
		{"bad epoch", `{"epoch": "fast", "groups": {"g": {"type": "rfid", "members": ["r"]}}}`},
		{"zero epoch", `{"epoch": "0s", "groups": {"g": {"type": "rfid", "members": ["r"]}}}`},
		{"no groups", `{"epoch": "1s"}`},
		{"empty members", `{"epoch": "1s", "groups": {"g": {"type": "rfid", "members": []}}}`},
		{"bad table kind", `{"epoch": "1s", "groups": {"g": {"type": "rfid", "members": ["r"]}},
			"tables": {"t": {"columns": {"c": "blob"}, "rows": []}}}`},
		{"bad table cell", `{"epoch": "1s", "groups": {"g": {"type": "rfid", "members": ["r"]}},
			"tables": {"t": {"columns": {"c": "int"}, "rows": [{"c": "abc"}]}}}`},
		{"table without columns", `{"epoch": "1s", "groups": {"g": {"type": "rfid", "members": ["r"]}},
			"tables": {"t": {"columns": {}, "rows": []}}}`},
		{"order names unknown column", `{"epoch": "1s", "groups": {"g": {"type": "rfid", "members": ["r"]}},
			"tables": {"t": {"columns": {"c": "int"}, "order": ["d"], "rows": []}}}`},
	}
	for _, tc := range cases {
		if _, err := ParseDeploymentConfig([]byte(tc.src)); err == nil {
			t.Errorf("%s: want error", tc.name)
		}
	}
}

func TestTableConfigMissingCellIsNull(t *testing.T) {
	dep, err := ParseDeploymentConfig([]byte(`{
	  "epoch": "1s",
	  "groups": {"g": {"type": "rfid", "members": ["r"]}},
	  "tables": {"t": {"columns": {"a": "int", "b": "string"}, "rows": [{"a": "1"}]}}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	row := dep.Tables["t"].Rows()[0]
	if !strings.Contains(dep.Tables["t"].Schema().String(), "a int") {
		t.Errorf("schema = %s", dep.Tables["t"].Schema())
	}
	if row.Values[0] != stream.Int(1) || !row.Values[1].IsNull() {
		t.Errorf("row = %v", row)
	}
}
