// Package core implements ESP — Extensible receptor Stream Processing —
// the paper's primary contribution: a programmable pipeline of five
// stream-processing stages that cleans physical-device data online, before
// it reaches the application.
//
//	Point     → tuple-level filters and transforms
//	Smooth    → temporal-granule aggregation per receptor stream
//	Merge     → spatial-granule aggregation per proximity group
//	Arbitrate → conflict resolution between spatial granules
//	Virtualize→ cross-receptor-type, application-level cleaning
//
// Stages are programmed declaratively (CQL, see internal/cql), as Go
// functions over operator chains, or picked from the prebuilt toolkit
// (toolkit.go). A Processor instantiates Point/Smooth once per
// (receptor, proximity-group) pair, Merge once per proximity group,
// Arbitrate once per receptor type, and Virtualize once per deployment,
// then drives data through the pipeline epoch by epoch.
package core

import (
	"fmt"
	"strings"
	"time"

	"esp/internal/cql"
	"esp/internal/stream"
)

// StageKind identifies one of the five ESP stages.
type StageKind uint8

// The five ESP processing stages, in pipeline order.
const (
	StagePoint StageKind = iota
	StageSmooth
	StageMerge
	StageArbitrate
	StageVirtualize
)

// String returns the paper's stage name.
func (k StageKind) String() string {
	switch k {
	case StagePoint:
		return "Point"
	case StageSmooth:
		return "Smooth"
	case StageMerge:
		return "Merge"
	case StageArbitrate:
		return "Arbitrate"
	case StageVirtualize:
		return "Virtualize"
	default:
		return fmt.Sprintf("Stage(%d)", uint8(k))
	}
}

// Annotation column names the processor attaches to receptor streams —
// the paper's "ESP automatically adds a spatial granule attribute to each
// stream" (§4, footnote 2).
const (
	// ColReceptorID is the device identifier column.
	ColReceptorID = "receptor_id"
	// ColGranule is the spatial granule (proximity group name) column.
	ColGranule = "spatial_granule"
)

// BuildEnv carries deployment-level context into stage builders.
type BuildEnv struct {
	// Epoch is the processor's punctuation period: the slide of every
	// windowed stage and the width of `[Range By 'NOW']` windows.
	Epoch time.Duration
	// Tables are static relations available to CQL stages (inventory
	// lists, expected-tag relations).
	Tables map[string]*stream.Table
	// TieBreak resolves ties in Arbitrate's `>= ALL` rewrite — the
	// paper's §4.3.1 weaker-antenna calibration.
	TieBreak func(a, b stream.Tuple) bool
	// Group is the proximity group a Merge stage instance serves (empty
	// for Point/Smooth/Arbitrate/Virtualize instances).
	Group string
	// Live reports group live membership under receptor supervision —
	// see Processor.EnableSupervision and MergeVoteLive.
	Live LiveView
	// NoOptimize disables the CQL plan-rewrite pass for stages built in
	// this deployment (Deployment.DisableOptimizer; the oracle's
	// optimized-vs-unoptimized differential runs both settings).
	NoOptimize bool
}

// Stage builds the operator implementing one pipeline stage for one
// instance (one receptor stream, one proximity group, or one type,
// depending on where the stage sits). Implementations must be reusable:
// Build is called once per instance and each returned operator must be
// independent.
type Stage interface {
	// Build returns a fresh operator bound to nothing; the processor
	// Opens it with the instance's input schema.
	Build(in *stream.Schema, env BuildEnv) (stream.Operator, error)
	// Describe returns a short human-readable summary.
	Describe() string
}

// CQLStage programs a stage with a declarative continuous query — the
// paper's primary programming model. The query must read from a single
// base stream; whatever name it uses is bound to the stage's input.
type CQLStage struct {
	Query string
}

// Build implements Stage.
func (s CQLStage) Build(in *stream.Schema, env BuildEnv) (stream.Operator, error) {
	stmt, err := cql.Parse(s.Query)
	if err != nil {
		return nil, err
	}
	inputs := baseStreams(stmt, env.Tables)
	if len(inputs) != 1 {
		return nil, fmt.Errorf("core: stage query must read one stream, found %v", inputs)
	}
	g, err := cql.Plan(stmt, cql.Catalog{inputs[0]: in}, cql.PlanConfig{
		Slide:      env.Epoch,
		Tables:     env.Tables,
		TieBreak:   env.TieBreak,
		NoOptimize: env.NoOptimize,
	})
	if err != nil {
		return nil, err
	}
	return &graphOp{g: g, input: inputs[0]}, nil
}

// Describe implements Stage.
func (s CQLStage) Describe() string {
	q := strings.Join(strings.Fields(s.Query), " ")
	if len(q) > 60 {
		q = q[:57] + "..."
	}
	return "cql: " + q
}

// FuncStage programs a stage with arbitrary Go code — the paper's
// UDF/arbitrary-code extensibility path.
type FuncStage struct {
	Name string
	Fn   func(in *stream.Schema, env BuildEnv) (stream.Operator, error)
}

// Build implements Stage.
func (s FuncStage) Build(in *stream.Schema, env BuildEnv) (stream.Operator, error) {
	return s.Fn(in, env)
}

// Describe implements Stage.
func (s FuncStage) Describe() string { return "func: " + s.Name }

// baseStreams lists the distinct base stream names a statement reads
// (ignoring static tables), depth-first.
func baseStreams(stmt *cql.SelectStmt, tables map[string]*stream.Table) []string {
	seen := make(map[string]bool)
	var names []string
	var walk func(s *cql.SelectStmt)
	walk = func(s *cql.SelectStmt) {
		for _, f := range s.From {
			if f.Sub != nil {
				walk(f.Sub)
				continue
			}
			if _, isTable := tables[f.Stream]; isTable {
				continue
			}
			if !seen[f.Stream] {
				seen[f.Stream] = true
				names = append(names, f.Stream)
			}
		}
		if ac, ok := s.Having.(*cql.AllCompare); ok && ac.Sub != nil {
			walk(ac.Sub)
		}
	}
	walk(stmt)
	return names
}

// graphOp adapts a single-input cql Graph to the Operator interface so
// planned queries compose with hand-built operators in one chain.
type graphOp struct {
	g     *stream.Graph
	input string
}

// Open implements Operator. The graph is already opened by the planner
// against the stage's input schema; Open just validates compatibility.
func (o *graphOp) Open(in *stream.Schema) error {
	want, ok := o.g.InputSchema(o.input)
	if !ok {
		return fmt.Errorf("core: planned graph lost its input %q", o.input)
	}
	if !want.Equal(in) {
		return fmt.Errorf("core: stage input schema %s does not match planned %s", in, want)
	}
	return nil
}

// Schema implements Operator.
func (o *graphOp) Schema() *stream.Schema { return o.g.Schema() }

// Process implements Operator.
func (o *graphOp) Process(t stream.Tuple) ([]stream.Tuple, error) {
	return o.g.Push(o.input, t)
}

// ProcessBatch implements stream.BatchOperator: the batch stays columnar
// through the planned graph as far as its operators allow.
func (o *graphOp) ProcessBatch(b *stream.Batch) (*stream.Batch, []stream.Tuple, error) {
	return o.g.PushBatch(o.input, b)
}

// LastBatchDegraded implements stream.BatchDegradeReporter, surfacing the
// planned graph's internal degradations to the node fallback accounting.
func (o *graphOp) LastBatchDegraded() bool { return o.g.LastBatchDegraded() }

// Advance implements Operator.
func (o *graphOp) Advance(now time.Time) ([]stream.Tuple, error) {
	return o.g.Advance(now)
}

// Close implements Operator.
func (o *graphOp) Close() ([]stream.Tuple, error) { return o.g.Close() }
