package core

import (
	"fmt"
	"sort"
	"strings"

	"esp/internal/receptor"
)

// Stats is a snapshot of tuple counts through the pipeline, keyed
// "type/stage" (e.g. "rfid/Smooth") plus "virtualize" — the operational
// visibility a deployment needs to see where readings are produced,
// dropped, and condensed.
type Stats map[string]int64

// String renders the snapshot sorted by key.
func (s Stats) String() string {
	keys := make([]string, 0, len(s))
	for k := range s {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	for i, k := range keys {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "%s=%d", k, s[k])
	}
	return sb.String()
}

// EnableStats turns on stage accounting (a view over the unified
// telemetry registry — see telemetry.go) and returns a live snapshot
// function. Must be called before Run; the snapshot function may be
// called from any goroutine, including concurrently with a run (the
// counters are atomics). The same counts appear in Telemetry() under
// "stage.<type>/<Stage>.tuples" and "stage.virtualize.tuples".
func (p *Processor) EnableStats() func() Stats {
	p.EnableTelemetry()
	stages := []StageKind{StagePoint, StageSmooth, StageMerge, StageArbitrate}
	return func() Stats {
		out := make(Stats, len(p.typeOrder)*len(stages)+1)
		for _, t := range p.typeOrder {
			sc := p.typeStage[t]
			for _, stage := range stages {
				out[fmt.Sprintf("%s/%s", t, stage)] = sc.out[stage].Load()
			}
		}
		if p.virt != nil {
			out["virtualize"] = p.virtOut.Load()
		}
		return out
	}
}

// Describe renders the deployment's pipeline configuration — which stages
// are installed for which types, group membership counts, and the
// Virtualize bindings — for logs and operator inspection.
func (p *Processor) Describe() string {
	var sb strings.Builder
	byType := make(map[receptor.Type][]string)
	legCount := 0
	for _, n := range p.graph.nodes {
		leg, ok := n.(*legNode)
		if !ok {
			continue
		}
		legCount++
		byType[leg.typ] = append(byType[leg.typ], fmt.Sprintf("%s@%s", leg.rec.ID(), leg.group))
	}
	fmt.Fprintf(&sb, "ESP deployment: epoch %v, %d receptor(s), %d leg(s)\n",
		p.dep.Epoch, len(p.dep.Receptors), legCount)
	types := make([]string, 0, len(byType))
	for t := range byType {
		types = append(types, string(t))
	}
	sort.Strings(types)
	for _, ts := range types {
		t := receptor.Type(ts)
		fmt.Fprintf(&sb, "  type %s: %s\n", t, strings.Join(byType[t], ", "))
		pl := p.pipelineFor(t)
		if pl == nil {
			sb.WriteString("    (pass-through: no pipeline)\n")
			continue
		}
		describeStage(&sb, "Point", pl.Point)
		describeStage(&sb, "Smooth", pl.Smooth)
		describeStage(&sb, "Merge", pl.Merge)
		describeStage(&sb, "Arbitrate", pl.Arbitrate)
		if sch, ok := p.TypeSchema(t); ok {
			fmt.Fprintf(&sb, "    output %s\n", sch)
		}
	}
	if p.dep.Virtualize != nil {
		binds := make([]string, 0, len(p.dep.Virtualize.Bind))
		for name, t := range p.dep.Virtualize.Bind {
			binds = append(binds, fmt.Sprintf("%s<-%s", name, t))
		}
		sort.Strings(binds)
		fmt.Fprintf(&sb, "  Virtualize: %s\n", strings.Join(binds, ", "))
		if p.virt != nil {
			fmt.Fprintf(&sb, "    output %s\n", p.virt.g.Schema())
		}
	}
	return sb.String()
}

func describeStage(sb *strings.Builder, name string, s Stage) {
	if s == nil {
		return
	}
	fmt.Fprintf(sb, "    %-9s %s\n", name, s.Describe())
}
