package core

import (
	"sync"
	"testing"
	"time"
)

// TestStatsConcurrentWithRun polls EnableStats snapshots and NodeStats
// while a run is in flight under the ParallelScheduler. Before the
// counters became atomics this was a data race (the snapshot closure
// read plain int64s that pool workers were incrementing) — run with
// -race, as the Makefile check target does, to enforce the fix.
func TestStatsConcurrentWithRun(t *testing.T) {
	dep := shelfSchedDeployment(t)
	p, err := NewProcessor(dep)
	if err != nil {
		t.Fatal(err)
	}
	sched := NewParallelScheduler(4)
	defer sched.Close()
	p.SetScheduler(sched)
	snap := p.EnableStats()

	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			for _, st := range p.NodeStats() {
				if st.TuplesIn < 0 || st.Advances < 0 {
					t.Error("negative counter in concurrent NodeStats snapshot")
					return
				}
			}
			for _, n := range snap() {
				if n < 0 {
					t.Error("negative counter in concurrent stats snapshot")
					return
				}
			}
		}
	}()

	start := time.Unix(0, 0).UTC()
	if err := p.Run(start, start.Add(20*time.Second)); err != nil {
		t.Fatal(err)
	}
	close(done)
	wg.Wait()

	// The run is quiesced: the final snapshots must agree with a
	// sequential reading of the pipeline's activity.
	final := snap()
	if final["rfid/Smooth"] == 0 {
		t.Fatalf("final stats snapshot saw no Smooth output: %v", final)
	}
	var advanced bool
	for _, st := range p.NodeStats() {
		if st.Advances > 0 {
			advanced = true
		}
	}
	if !advanced {
		t.Fatal("no node recorded an advance")
	}
}
