package core

import (
	"context"
	"runtime"
	"time"

	"esp/internal/stream"
)

// RunConcurrent drives the deployment like Run, but polls the receptors
// concurrently each epoch — the Fjord-style push model the paper's ESP
// Processor uses, where sensors deliver data asynchronously and the
// processor merges them at epoch boundaries. Polling fan-out is bounded
// by a worker pool sized to GOMAXPROCS (capped at the receptor count),
// reused across epochs, rather than one goroutine per receptor per
// epoch.
//
// Output is guaranteed identical to Run: batches are injected in
// receptor order regardless of completion order (asserted by
// TestRunConcurrentMatchesRun and exercised by BenchmarkAblationRunner).
// Receptors must not share mutable state for concurrent polling to be
// safe; all simulators in internal/sim satisfy this (per-device RNGs).
// Supervision applies as in Run: each worker polls through the
// supervisor, whose per-receptor state is independently locked.
func (p *Processor) RunConcurrent(start, end time.Time) error {
	return p.RunConcurrentContext(context.Background(), start, end)
}

// RunConcurrentContext is RunConcurrent with cancellation, checked at
// every epoch boundary like RunContext.
func (p *Processor) RunConcurrentContext(ctx context.Context, start, end time.Time) error {
	n := len(p.dep.Receptors)
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	type polled struct {
		idx    int
		tuples []stream.Tuple
	}
	type job struct {
		idx int
		now time.Time
	}
	// Both channels are allocated once and reused for every epoch; the
	// result buffer holds a full epoch so workers never block on send.
	jobs := make(chan job, n)
	results := make(chan polled, n)
	defer close(jobs)
	for w := 0; w < workers; w++ {
		go func() {
			for j := range jobs {
				results <- polled{idx: j.idx, tuples: p.poll(j.idx, j.now)}
			}
		}()
	}
	batches := make([][]stream.Tuple, n)
	for now := start.Add(p.dep.Epoch); !now.After(end); now = now.Add(p.dep.Epoch) {
		if err := ctx.Err(); err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			jobs <- job{idx: i, now: now}
		}
		for i := 0; i < n; i++ {
			b := <-results
			batches[b.idx] = b.tuples
		}
		if err := p.stepBatches(now, batches); err != nil {
			return err
		}
	}
	return nil
}
