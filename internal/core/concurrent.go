package core

import (
	"time"

	"esp/internal/stream"
)

// RunConcurrent drives the deployment like Run, but polls every receptor
// in its own goroutine each epoch — the Fjord-style push model the
// paper's ESP Processor uses, where sensors deliver data asynchronously
// and the processor merges them at epoch boundaries.
//
// Output is guaranteed identical to Run: batches are injected in receptor
// order regardless of goroutine completion order (asserted by
// TestRunConcurrentMatchesRun and exercised by BenchmarkAblationRunner).
// Receptors must not share mutable state for concurrent polling to be
// safe; all simulators in internal/sim satisfy this (per-device RNGs).
func (p *Processor) RunConcurrent(start, end time.Time) error {
	n := len(p.dep.Receptors)
	type polled struct {
		idx    int
		tuples []stream.Tuple
	}
	for now := start.Add(p.dep.Epoch); !now.After(end); now = now.Add(p.dep.Epoch) {
		ch := make(chan polled, n)
		for i, rec := range p.dep.Receptors {
			go func() {
				ch <- polled{idx: i, tuples: rec.Poll(now)}
			}()
		}
		batches := make([][]stream.Tuple, n)
		for range p.dep.Receptors {
			b := <-ch
			batches[b.idx] = b.tuples
		}
		if err := p.step(now, batches); err != nil {
			return err
		}
	}
	return nil
}
