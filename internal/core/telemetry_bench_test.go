package core

import (
	"fmt"
	"testing"
	"time"

	"esp/internal/receptor"
	"esp/internal/stream"
)

// genReceptor synthesises a fixed number of readings per poll — a
// steady-state load source for benchmarking the epoch loop.
type genReceptor struct {
	id  string
	per int
	seq int
}

func (g *genReceptor) ID() string             { return g.id }
func (g *genReceptor) Type() receptor.Type    { return receptor.TypeRFID }
func (g *genReceptor) Schema() *stream.Schema { return rfidRaw }

func (g *genReceptor) Poll(now time.Time) []stream.Tuple {
	out := make([]stream.Tuple, g.per)
	for i := range out {
		g.seq++
		tag := fmt.Sprintf("tag%02d", g.seq%8)
		out[i] = stream.NewTuple(now.Add(-time.Millisecond*time.Duration(i+1)),
			stream.String(tag), stream.Bool(g.seq%16 != 0))
	}
	return out
}

// benchmarkStep measures one epoch of the RFID pipeline at 32 readings
// per poll under the given telemetry mode. The off/on pair quantifies
// the instrumentation overhead (see also espbench -exp obs, which
// measures it end-to-end on the paper deployments).
func benchmarkStep(b *testing.B, mode string) {
	rec := &genReceptor{id: "r0", per: 32}
	p, err := NewProcessor(&Deployment{
		Epoch:     time.Second,
		Receptors: []receptor.Receptor{rec},
		Groups:    singleGroup("shelf0", receptor.TypeRFID, "r0"),
		Pipelines: map[receptor.Type]*Pipeline{
			receptor.TypeRFID: {
				Type:      receptor.TypeRFID,
				Point:     PointChecksum("checksum_ok"),
				Smooth:    SmoothTagCount(2 * time.Second),
				Arbitrate: ArbitrateMaxSum("tag_id", "n"),
			},
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	switch mode {
	case "on":
		p.EnableTelemetry()
	case "lineage":
		p.EnableLineage(8, 1)
	}
	now := at(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.Step(now); err != nil {
			b.Fatal(err)
		}
		now = now.Add(time.Second)
	}
}

func BenchmarkStepTelemetryOff(b *testing.B)     { benchmarkStep(b, "off") }
func BenchmarkStepTelemetryOn(b *testing.B)      { benchmarkStep(b, "on") }
func BenchmarkStepTelemetryLineage(b *testing.B) { benchmarkStep(b, "lineage") }
