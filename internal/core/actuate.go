package core

import (
	"fmt"
	"time"

	"esp/internal/receptor"
	"esp/internal/stream"
)

// ActuationPolicy configures the §5.3.1 receptor-actuation control loop:
// when a receptor's Smooth stage produces output in fewer than Target of
// the last Horizon epochs, the actuator asks the device to sample at the
// Fast interval; once the stream recovers it restores the Slow interval.
//
// This closes the loop the paper leaves as future work: "ideally, ESP
// should be able to actuate the sensors to increase the number of
// readings within a temporal granule such that it can effectively smooth
// with a window the same size as the temporal granule".
type ActuationPolicy struct {
	// Target is the desired fraction of epochs with Smooth output.
	Target float64
	// Horizon is the evaluation window, in epochs.
	Horizon int
	// Fast and Slow are the sample intervals commanded below and at/above
	// Target (Slow zero = one sample per poll).
	Fast, Slow time.Duration
}

// Actuator watches per-receptor Smooth output and adjusts sampling rates.
// Attach exactly once, before the processor runs.
//
// The policy is bang-bang with periodic probing: a device commanded fast
// is restored to the slow rate as soon as its stream meets the target, so
// the actuator re-discovers whether the cheap rate suffices (outages end;
// energy is precious). A device that starves again is re-actuated one
// horizon later. The Transitions counter exposes the oscillation cost.
type Actuator struct {
	policy  ActuationPolicy
	devices map[string]receptor.Actuatable
	emitted map[string]bool // receptor emitted this epoch
	history map[string][]bool
	fast    map[string]bool
	// Transitions counts actuation commands issued (both directions), an
	// energy-budget proxy for experiments.
	Transitions int
}

// NewActuator attaches an actuation control loop for the given type's
// actuatable receptors to the processor.
func NewActuator(p *Processor, typ receptor.Type, policy ActuationPolicy) (*Actuator, error) {
	if policy.Horizon <= 0 {
		return nil, fmt.Errorf("core: actuation horizon must be positive")
	}
	if policy.Target <= 0 || policy.Target > 1 {
		return nil, fmt.Errorf("core: actuation target %v out of (0,1]", policy.Target)
	}
	if policy.Fast <= 0 {
		return nil, fmt.Errorf("core: actuation Fast interval must be positive")
	}
	a := &Actuator{
		policy:  policy,
		devices: make(map[string]receptor.Actuatable),
		emitted: make(map[string]bool),
		history: make(map[string][]bool),
		fast:    make(map[string]bool),
	}
	for _, rec := range p.dep.Receptors {
		if rec.Type() != typ {
			continue
		}
		if act, ok := rec.(receptor.Actuatable); ok {
			a.devices[rec.ID()] = act
		}
	}
	if len(a.devices) == 0 {
		return nil, fmt.Errorf("core: no actuatable receptors of type %s", typ)
	}
	// Smooth-stage output carries the receptor_id annotation at position
	// 0 (the processor re-attaches it after the per-receptor stages).
	if _, ok := p.TypeSchema(typ); !ok {
		return nil, fmt.Errorf("core: type %s has no schema", typ)
	}
	p.Tap(typ, StageSmooth, func(t stream.Tuple) {
		if len(t.Values) == 0 {
			return
		}
		id := t.Values[0]
		if id.Kind() != stream.KindString {
			return
		}
		a.emitted[id.AsString()] = true
	})
	p.OnEpoch(a.tick)
	return a, nil
}

// tick records this epoch's emissions and re-evaluates rates at horizon
// boundaries.
func (a *Actuator) tick(time.Time) {
	for id := range a.devices {
		a.history[id] = append(a.history[id], a.emitted[id])
		delete(a.emitted, id)
	}
	for id, dev := range a.devices {
		h := a.history[id]
		if len(h) < a.policy.Horizon {
			continue
		}
		n := 0
		for _, ok := range h {
			if ok {
				n++
			}
		}
		frac := float64(n) / float64(len(h))
		a.history[id] = h[:0]
		wantFast := frac < a.policy.Target
		if wantFast == a.fast[id] {
			continue
		}
		a.fast[id] = wantFast
		if wantFast {
			dev.SetSampleInterval(a.policy.Fast)
		} else {
			dev.SetSampleInterval(a.policy.Slow)
		}
		a.Transitions++
	}
}

// FastCount reports how many devices are currently commanded fast.
func (a *Actuator) FastCount() int {
	n := 0
	for _, f := range a.fast {
		if f {
			n++
		}
	}
	return n
}
