package core

import (
	"testing"
	"time"

	"esp/internal/receptor"
	"esp/internal/stream"
)

var tempRaw = stream.MustSchema(
	stream.Field{Name: "mote_id", Kind: stream.KindString},
	stream.Field{Name: "temp", Kind: stream.KindFloat},
)

func TestPointScale(t *testing.T) {
	rec := &fakeReceptor{id: "m1", typ: receptor.TypeMote, schema: tempRaw, queue: []stream.Tuple{
		stream.NewTuple(at(0.5), stream.String("m1"), stream.Float(70)), // Fahrenheit
	}}
	p, err := NewProcessor(&Deployment{
		Epoch:     time.Second,
		Receptors: []receptor.Receptor{rec},
		Groups:    singleGroup("room", receptor.TypeMote, "m1"),
		Pipelines: map[receptor.Type]*Pipeline{
			receptor.TypeMote: {
				Type:  receptor.TypeMote,
				Point: PointScale("temp", 5.0/9.0, -160.0/9.0), // F -> C
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	var got []stream.Tuple
	p.OnType(receptor.TypeMote, func(tu stream.Tuple) { got = append(got, tu) })
	if err := p.Run(at(0), at(1)); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("got %v", got)
	}
	sch, _ := p.TypeSchema(receptor.TypeMote)
	c := got[0].Values[sch.MustIndex("temp")].AsFloat()
	if c < 21.1 || c > 21.2 { // 70F = 21.11C
		t.Errorf("converted temp = %v, want ~21.11", c)
	}
}

func TestPointScaleValidation(t *testing.T) {
	if _, err := PointScale("nope", 1, 0).Build(tempRaw, BuildEnv{}); err == nil {
		t.Error("unknown field: want error")
	}
	if _, err := PointScale("mote_id", 1, 0).Build(tempRaw, BuildEnv{}); err == nil {
		t.Error("non-numeric field: want error")
	}
}

func TestPointCalibrateTable(t *testing.T) {
	calTable := stream.MustTable(
		stream.MustSchema(
			stream.Field{Name: "device", Kind: stream.KindString},
			stream.Field{Name: "scale", Kind: stream.KindFloat},
			stream.Field{Name: "offset", Kind: stream.KindFloat},
		),
		[]stream.Tuple{
			stream.NewTuple(time.Time{}, stream.String("m1"), stream.Float(1.0), stream.Float(-2.0)),
		},
	)
	calibrated := &fakeReceptor{id: "m1", typ: receptor.TypeMote, schema: tempRaw, queue: []stream.Tuple{
		stream.NewTuple(at(0.5), stream.String("m1"), stream.Float(22)),
	}}
	uncalibrated := &fakeReceptor{id: "m2", typ: receptor.TypeMote, schema: tempRaw, queue: []stream.Tuple{
		stream.NewTuple(at(0.5), stream.String("m2"), stream.Float(22)),
	}}
	groups := receptor.NewGroups()
	groups.MustAdd(receptor.Group{Name: "room", Type: receptor.TypeMote, Members: []string{"m1", "m2"}})
	p, err := NewProcessor(&Deployment{
		Epoch:     time.Second,
		Receptors: []receptor.Receptor{calibrated, uncalibrated},
		Groups:    groups,
		Tables:    map[string]*stream.Table{"calibration": calTable},
		Pipelines: map[receptor.Type]*Pipeline{
			receptor.TypeMote: {
				Type:  receptor.TypeMote,
				Point: PointCalibrateTable("temp", "calibration", "device", "scale", "offset"),
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	sch, _ := p.TypeSchema(receptor.TypeMote)
	tempIx := sch.MustIndex("temp")
	byID := map[string]float64{}
	p.OnType(receptor.TypeMote, func(tu stream.Tuple) {
		byID[tu.Values[0].AsString()] = tu.Values[tempIx].AsFloat()
	})
	if err := p.Run(at(0), at(1)); err != nil {
		t.Fatal(err)
	}
	if byID["m1"] != 20 {
		t.Errorf("calibrated m1 = %v, want 20 (22 - 2)", byID["m1"])
	}
	if byID["m2"] != 22 {
		t.Errorf("uncalibrated m2 = %v, want pass-through 22", byID["m2"])
	}
}

func TestPointCalibrateTableValidation(t *testing.T) {
	annotSchema, _ := annotated(tempRaw)
	env := BuildEnv{Tables: map[string]*stream.Table{}}
	if _, err := PointCalibrateTable("temp", "missing", "k", "s", "o").Build(annotSchema, env); err == nil {
		t.Error("missing table: want error")
	}
	calTable := stream.MustTable(
		stream.MustSchema(
			stream.Field{Name: "device", Kind: stream.KindString},
			stream.Field{Name: "scale", Kind: stream.KindFloat},
			stream.Field{Name: "offset", Kind: stream.KindFloat},
		), nil)
	env = BuildEnv{Tables: map[string]*stream.Table{"cal": calTable}}
	if _, err := PointCalibrateTable("nope", "cal", "device", "scale", "offset").Build(annotSchema, env); err == nil {
		t.Error("missing field: want error")
	}
	if _, err := PointCalibrateTable("temp", "cal", "nope", "scale", "offset").Build(annotSchema, env); err == nil {
		t.Error("missing key column: want error")
	}
	// Input without the receptor_id annotation.
	if _, err := PointCalibrateTable("temp", "cal", "device", "scale", "offset").Build(tempRaw, env); err == nil {
		t.Error("unannotated input: want error")
	}
}
