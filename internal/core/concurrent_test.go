package core

import (
	"testing"
	"time"

	"esp/internal/receptor"
	"esp/internal/sim"
	"esp/internal/stream"
)

// buildShelfProcessor wires a small version of the §4 shelf deployment
// off the simulator.
func buildShelfProcessor(t *testing.T) (*Processor, *sim.ShelfScenario) {
	t.Helper()
	cfg := sim.DefaultShelfConfig()
	sc, err := sim.NewShelfScenario(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var recs []receptor.Receptor
	for _, r := range sc.Readers {
		recs = append(recs, r)
	}
	p, err := NewProcessor(&Deployment{
		Epoch:     cfg.PollPeriod,
		Receptors: recs,
		Groups:    sc.Groups,
		Pipelines: map[receptor.Type]*Pipeline{
			receptor.TypeRFID: {
				Type:      receptor.TypeRFID,
				Point:     PointChecksum("checksum_ok"),
				Smooth:    SmoothTagCount(5 * time.Second),
				Arbitrate: ArbitrateMaxSum("tag_id", "n"),
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return p, sc
}

// TestRunConcurrentMatchesRun is the processor-design ablation promised
// in DESIGN.md: the channel-based concurrent runner must produce exactly
// the synchronous runner's output.
func TestRunConcurrentMatchesRun(t *testing.T) {
	collect := func(concurrent bool) []stream.Tuple {
		p, _ := buildShelfProcessor(t)
		var out []stream.Tuple
		p.OnType(receptor.TypeRFID, func(tu stream.Tuple) { out = append(out, tu) })
		var err error
		if concurrent {
			err = p.RunConcurrent(at(0), at(30))
		} else {
			err = p.Run(at(0), at(30))
		}
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	sync := collect(false)
	conc := collect(true)
	if len(sync) == 0 {
		t.Fatal("no output from shelf pipeline")
	}
	if len(sync) != len(conc) {
		t.Fatalf("sync %d tuples, concurrent %d", len(sync), len(conc))
	}
	for i := range sync {
		if !sync[i].Ts.Equal(conc[i].Ts) {
			t.Fatalf("tuple %d Ts: %v vs %v", i, sync[i].Ts, conc[i].Ts)
		}
		for j := range sync[i].Values {
			if sync[i].Values[j] != conc[i].Values[j] {
				t.Fatalf("tuple %d value %d: %v vs %v", i, j, sync[i].Values[j], conc[i].Values[j])
			}
		}
	}
}
