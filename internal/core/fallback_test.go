package core

import (
	"testing"
	"time"

	"esp/internal/receptor"
	"esp/internal/stream"
)

// copyOp is a deliberately batch-incapable identity operator: deliveries
// reaching it columnar must run the row-at-a-time shim and count exactly
// one batch fallback per delivery.
type copyOp struct{ out *stream.Schema }

func (o *copyOp) Open(in *stream.Schema) error { o.out = in; return nil }
func (o *copyOp) Schema() *stream.Schema       { return o.out }
func (o *copyOp) Process(t stream.Tuple) ([]stream.Tuple, error) {
	return []stream.Tuple{t}, nil
}
func (o *copyOp) Advance(time.Time) ([]stream.Tuple, error) { return nil, nil }
func (o *copyOp) Close() ([]stream.Tuple, error)            { return nil, nil }

// absorbOp swallows every tuple (batch-incapable). Chained after a
// degradation it reproduces the degrade-then-absorb blind spot: the
// composite returns (nil, nil, nil) as if it had stayed columnar.
type absorbOp struct{ out *stream.Schema }

func (o *absorbOp) Open(in *stream.Schema) error                 { o.out = in; return nil }
func (o *absorbOp) Schema() *stream.Schema                       { return o.out }
func (o *absorbOp) Process(stream.Tuple) ([]stream.Tuple, error) { return nil, nil }
func (o *absorbOp) Advance(time.Time) ([]stream.Tuple, error)    { return nil, nil }
func (o *absorbOp) Close() ([]stream.Tuple, error)               { return nil, nil }

func plainStage(name string, mk func() stream.Operator) Stage {
	return FuncStage{Name: name, Fn: func(in *stream.Schema, env BuildEnv) (stream.Operator, error) {
		op := mk()
		return op, nil
	}}
}

// fallbackCounts sums BatchFallbacks per node kind.
func fallbackCounts(p *Processor) map[string]int64 {
	out := make(map[string]int64)
	for _, st := range p.NodeStats() {
		out[st.Kind] += st.BatchFallbacks
	}
	return out
}

// TestBatchFallbackExactCounts pins the fallback accounting rule: a
// columnar delivery that leaves the batch path counts exactly once, at
// the node where it degrades, and never again downstream — under both
// schedulers.
func TestBatchFallbackExactCounts(t *testing.T) {
	schedulers := map[string]func() Scheduler{
		"seq":      func() Scheduler { return SeqScheduler{} },
		"parallel": func() Scheduler { return NewParallelScheduler(4) },
	}
	cases := []struct {
		name  string
		merge Stage
		arb   Stage
		want  map[string]int64 // expected fallbacks per node kind
	}{
		{
			// Merge has no batch implementation: both columnar deliveries
			// degrade there and count once each. Arbitrate is equally
			// batch-incapable but receives the already-degraded tuples, so
			// it must NOT count them again.
			name:  "shim-at-merge-not-recounted-at-arbitrate",
			merge: plainStage("copy", func() stream.Operator { return &copyOp{} }),
			arb:   plainStage("copy", func() stream.Operator { return &copyOp{} }),
			want:  map[string]int64{"leg": 0, "merge": 2, "arbitrate": 0, "output": 0},
		},
		{
			// Merge stays columnar (empty Chain is a batch-capable
			// identity); the degradation happens at Arbitrate and counts
			// there, once per delivery.
			name:  "columnar-merge-shim-at-arbitrate",
			merge: plainStage("chain", func() stream.Operator { return stream.NewChain() }),
			arb:   plainStage("copy", func() stream.Operator { return &copyOp{} }),
			want:  map[string]int64{"leg": 0, "merge": 0, "arbitrate": 2, "output": 0},
		},
		{
			// Degrade-then-absorb: the Merge chain degrades at its
			// batch-incapable head, then the tail swallows every tuple, so
			// the composite returns (nil, nil, nil) — indistinguishable
			// from a fully-columnar absorption without the degrade
			// reporter. The counter must still see both degradations.
			name: "degrade-then-absorb-at-merge",
			merge: plainStage("degrade-absorb", func() stream.Operator {
				return stream.NewChain(&copyOp{}, &absorbOp{})
			}),
			arb:  plainStage("copy", func() stream.Operator { return &copyOp{} }),
			want: map[string]int64{"leg": 0, "merge": 2, "arbitrate": 0, "output": 0},
		},
		{
			// Fully columnar pipeline: nothing may count.
			name:  "no-degradation",
			merge: plainStage("chain", func() stream.Operator { return stream.NewChain() }),
			arb:   plainStage("chain", func() stream.Operator { return stream.NewChain() }),
			want:  map[string]int64{"leg": 0, "merge": 0, "arbitrate": 0, "output": 0},
		},
	}
	for _, tc := range cases {
		for sname, mk := range schedulers {
			t.Run(tc.name+"/"+sname, func(t *testing.T) {
				got := runFallbackCase(t, mk(), tc.merge, tc.arb)
				for kind, want := range tc.want {
					if got[kind] != want {
						t.Errorf("%s fallbacks = %d, want %d (all: %v)", kind, got[kind], want, got)
					}
				}
			})
		}
	}
}

// TestBatchFallbackVirtualizeAbsorbNotCounted pins the other half of the
// rule for the Virtualize node: a windowed CQL graph that absorbs its
// columnar input (releasing on punctuation) has NOT degraded, so the
// counter stays zero — absorption and degradation are different things.
func TestBatchFallbackVirtualizeAbsorbNotCounted(t *testing.T) {
	rec := &fakeReceptor{id: "r0", typ: receptor.TypeRFID, schema: rfidRaw,
		queue: []stream.Tuple{
			rfidRead(0.2, "A", true),
			rfidRead(1.2, "B", true),
		}}
	p, err := NewProcessor(&Deployment{
		Epoch:     time.Second,
		Receptors: []receptor.Receptor{rec},
		Groups:    singleGroup("shelf0", receptor.TypeRFID, "r0"),
		Virtualize: &VirtualizeSpec{
			Query: "SELECT count(*) AS n FROM cleaned [Range By 'NOW']",
			Bind:  map[string]receptor.Type{"cleaned": receptor.TypeRFID},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	var emitted int
	p.OnVirtualize(func(stream.Tuple) { emitted++ })
	if err := p.Run(at(0), at(2)); err != nil {
		t.Fatal(err)
	}
	for _, st := range p.NodeStats() {
		if st.Kind == "virtualize" {
			if st.BatchesIn != 2 {
				t.Errorf("virtualize BatchesIn = %d, want 2 (columnar deliveries)", st.BatchesIn)
			}
			if st.BatchFallbacks != 0 {
				t.Errorf("virtualize BatchFallbacks = %d, want 0 (absorb is not degrade)", st.BatchFallbacks)
			}
		}
	}
	if emitted != 2 {
		t.Errorf("virtualize emitted %d tuples, want 2", emitted)
	}
}

// runFallbackCase is runFallbackDeployment flattened to per-kind totals.
func runFallbackCase(t *testing.T, sched Scheduler, merge, arb Stage) map[string]int64 {
	t.Helper()
	rec := &fakeReceptor{id: "r0", typ: receptor.TypeRFID, schema: rfidRaw,
		queue: []stream.Tuple{
			rfidRead(0.2, "A", true),
			rfidRead(0.4, "B", true),
			rfidRead(1.2, "C", true),
		}}
	p, err := NewProcessor(&Deployment{
		Epoch:     time.Second,
		Receptors: []receptor.Receptor{rec},
		Groups:    singleGroup("shelf0", receptor.TypeRFID, "r0"),
		Pipelines: map[receptor.Type]*Pipeline{
			receptor.TypeRFID: {Type: receptor.TypeRFID, Merge: merge, Arbitrate: arb},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if sched != nil {
		p.SetScheduler(sched)
	}
	if err := p.Run(at(0), at(3)); err != nil {
		t.Fatal(err)
	}
	// Sanity: both data epochs really arrived columnar at the merge node.
	for _, st := range p.NodeStats() {
		if st.Kind == "merge" && st.BatchesIn != 2 {
			t.Fatalf("merge BatchesIn = %d, want 2 columnar deliveries (%s)", st.BatchesIn, st.Label)
		}
	}
	return fallbackCounts(p)
}
