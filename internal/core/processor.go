package core

import (
	"fmt"
	"time"

	"esp/internal/receptor"
	"esp/internal/stream"
)

// Pipeline configures the cleaning stages for one receptor type. Any
// stage may be nil (skipped): the RFID deployment uses Smooth+Arbitrate,
// the redwood deployment Point+Smooth+Merge, etc.
type Pipeline struct {
	Type receptor.Type
	// Point and Smooth are instantiated once per (receptor, group) pair
	// and see the receptor's annotated stream.
	Point, Smooth Stage
	// Merge is instantiated once per proximity group and sees the union
	// of the group members' Point/Smooth outputs.
	Merge Stage
	// Arbitrate is instantiated once per type and sees the union of all
	// the type's group streams.
	Arbitrate Stage
}

// VirtualizeSpec configures the cross-type Virtualize stage as a CQL
// query whose base stream names are bound to receptor types: each name
// reads that type's cleaned output stream.
type VirtualizeSpec struct {
	Query string
	Bind  map[string]receptor.Type
}

// Deployment describes a complete ESP installation: the devices, their
// proximity groups, a pipeline per receptor type, and the processing
// epoch (the temporal granule of punctuation).
type Deployment struct {
	// Epoch is the punctuation period: stage windows slide once per
	// epoch and NOW windows cover one epoch.
	Epoch time.Duration
	// Receptors are the physical devices; every receptor must belong to
	// at least one proximity group.
	Receptors []receptor.Receptor
	// Groups is the proximity-group registry.
	Groups *receptor.Groups
	// Pipelines maps receptor types to their cleaning pipelines. Types
	// without a pipeline pass through annotated but uncleaned.
	Pipelines map[receptor.Type]*Pipeline
	// Virtualize, if set, combines the per-type outputs.
	Virtualize *VirtualizeSpec
	// Tables are static relations available to CQL stages.
	Tables map[string]*stream.Table
	// TieBreak resolves Arbitrate ties (paper §4.3.1).
	TieBreak func(a, b stream.Tuple) bool
}

// Processor executes a Deployment: it polls receptors once per epoch,
// pushes readings through the per-receptor, per-group, per-type, and
// cross-type stages, and punctuates everything in pipeline order so
// results are deterministic.
type Processor struct {
	dep *Deployment
	env BuildEnv

	legs     []*procLeg
	merges   []*procMerge
	arbs     map[receptor.Type]*procArb
	arbOrder []receptor.Type

	virt        *stream.Graph
	virtInputOf map[receptor.Type]string

	typeSchema map[receptor.Type]*stream.Schema
	taps       map[tapKey][]func(stream.Tuple)
	typeSinks  map[receptor.Type][]func(stream.Tuple)
	virtSinks  []func(stream.Tuple)
	epochSinks []func(time.Time)
}

type tapKey struct {
	typ   receptor.Type
	stage StageKind
}

// procLeg is one (receptor, proximity group) processing instance.
type procLeg struct {
	rec    receptor.Receptor
	group  string
	typ    receptor.Type
	inSch  *stream.Schema
	point  stream.Operator // nil if skipped
	smooth stream.Operator // nil if skipped
	fix    *annotFix       // re-annotation after the per-receptor stages
	out    *stream.Schema
	merge  *procMerge // destination, nil if type has no Merge stage
}

// procMerge is one proximity group's Merge instance.
type procMerge struct {
	group string
	typ   receptor.Type
	op    stream.Operator
	fix   *annotFix
	out   *stream.Schema
}

// procArb is one type's Arbitrate instance.
type procArb struct {
	typ receptor.Type
	op  stream.Operator
	out *stream.Schema
}

// annotFix re-attaches constant annotation columns a stage projected
// away, so downstream stages always see receptor_id / spatial_granule.
type annotFix struct {
	prepend []stream.Value // values to prepend (possibly empty)
	schema  *stream.Schema
}

func (f *annotFix) apply(ts []stream.Tuple) []stream.Tuple {
	if len(f.prepend) == 0 || len(ts) == 0 {
		return ts
	}
	out := make([]stream.Tuple, len(ts))
	for i, t := range ts {
		vals := make([]stream.Value, 0, len(f.prepend)+len(t.Values))
		vals = append(vals, f.prepend...)
		vals = append(vals, t.Values...)
		out[i] = stream.Tuple{Ts: t.Ts, Values: vals}
	}
	return out
}

// newAnnotFix builds the fix-up for a stage output: any of the wanted
// (name, value) pairs missing from the schema are prepended as constants.
func newAnnotFix(out *stream.Schema, want []stream.Field, vals []stream.Value) (*annotFix, error) {
	fix := &annotFix{}
	var fields []stream.Field
	for i, f := range want {
		if _, ok := out.Index(f.Name); ok {
			continue
		}
		fields = append(fields, f)
		fix.prepend = append(fix.prepend, vals[i])
	}
	schema, err := stream.NewSchema(append(fields, out.Fields()...)...)
	if err != nil {
		return nil, err
	}
	fix.schema = schema
	return fix, nil
}

// annotated builds the schema of a receptor stream with the processor's
// annotation columns prepended.
func annotated(device *stream.Schema) (*stream.Schema, error) {
	fields := []stream.Field{
		{Name: ColReceptorID, Kind: stream.KindString},
		{Name: ColGranule, Kind: stream.KindString},
	}
	return stream.NewSchema(append(fields, device.Fields()...)...)
}

// StripAnnotation removes the processor's annotation columns from a
// cleaned output schema and returns the stripped schema plus a projector
// for tuples. Use it when feeding one processor's output into another as
// a receptor stream (hierarchical, HiFi-style composition): the parent
// re-annotates with its own receptor IDs and granules.
func StripAnnotation(sch *stream.Schema) (*stream.Schema, func(stream.Tuple) stream.Tuple, error) {
	var keep []int
	var fields []stream.Field
	for i := 0; i < sch.Len(); i++ {
		f := sch.Field(i)
		if f.Name == ColReceptorID || f.Name == ColGranule {
			continue
		}
		keep = append(keep, i)
		fields = append(fields, f)
	}
	stripped, err := stream.NewSchema(fields...)
	if err != nil {
		return nil, nil, fmt.Errorf("core: StripAnnotation: %w", err)
	}
	project := func(t stream.Tuple) stream.Tuple {
		vals := make([]stream.Value, len(keep))
		for j, i := range keep {
			vals[j] = t.Values[i]
		}
		return stream.Tuple{Ts: t.Ts, Values: vals}
	}
	return stripped, project, nil
}

// NewProcessor validates and builds a deployment: every stage instance is
// constructed and opened, and all schema compatibility is checked, before
// any data flows.
func NewProcessor(dep *Deployment) (*Processor, error) {
	if dep.Epoch <= 0 {
		return nil, fmt.Errorf("core: deployment epoch must be positive")
	}
	if len(dep.Receptors) == 0 {
		return nil, fmt.Errorf("core: deployment has no receptors")
	}
	if dep.Groups == nil {
		return nil, fmt.Errorf("core: deployment has no proximity groups")
	}
	p := &Processor{
		dep: dep,
		env: BuildEnv{Epoch: dep.Epoch, Tables: dep.Tables, TieBreak: dep.TieBreak},

		arbs:        make(map[receptor.Type]*procArb),
		virtInputOf: make(map[receptor.Type]string),
		typeSchema:  make(map[receptor.Type]*stream.Schema),
		taps:        make(map[tapKey][]func(stream.Tuple)),
		typeSinks:   make(map[receptor.Type][]func(stream.Tuple)),
	}
	if err := p.buildLegs(); err != nil {
		return nil, err
	}
	if err := p.buildMerges(); err != nil {
		return nil, err
	}
	if err := p.buildArbitrates(); err != nil {
		return nil, err
	}
	if err := p.buildVirtualize(); err != nil {
		return nil, err
	}
	return p, nil
}

func (p *Processor) pipelineFor(t receptor.Type) *Pipeline {
	if p.dep.Pipelines == nil {
		return nil
	}
	return p.dep.Pipelines[t]
}

func (p *Processor) buildLegs() error {
	seen := make(map[string]bool)
	for _, rec := range p.dep.Receptors {
		if seen[rec.ID()] {
			return fmt.Errorf("core: duplicate receptor %q", rec.ID())
		}
		seen[rec.ID()] = true
		groups := p.dep.Groups.Of(rec.ID())
		if len(groups) == 0 {
			return fmt.Errorf("core: receptor %q belongs to no proximity group", rec.ID())
		}
		inSch, err := annotated(rec.Schema())
		if err != nil {
			return fmt.Errorf("core: receptor %q: %w", rec.ID(), err)
		}
		pl := p.pipelineFor(rec.Type())
		for _, g := range groups {
			leg := &procLeg{rec: rec, group: g, typ: rec.Type(), inSch: inSch}
			cur := inSch
			if pl != nil && pl.Point != nil {
				op, err := pl.Point.Build(cur, p.env)
				if err != nil {
					return fmt.Errorf("core: %s Point for %q: %w", rec.Type(), rec.ID(), err)
				}
				if err := op.Open(cur); err != nil {
					return fmt.Errorf("core: %s Point for %q: %w", rec.Type(), rec.ID(), err)
				}
				leg.point = op
				cur = op.Schema()
			}
			if pl != nil && pl.Smooth != nil {
				op, err := pl.Smooth.Build(cur, p.env)
				if err != nil {
					return fmt.Errorf("core: %s Smooth for %q: %w", rec.Type(), rec.ID(), err)
				}
				if err := op.Open(cur); err != nil {
					return fmt.Errorf("core: %s Smooth for %q: %w", rec.Type(), rec.ID(), err)
				}
				leg.smooth = op
				cur = op.Schema()
			}
			fix, err := newAnnotFix(cur,
				[]stream.Field{
					{Name: ColReceptorID, Kind: stream.KindString},
					{Name: ColGranule, Kind: stream.KindString},
				},
				[]stream.Value{stream.String(rec.ID()), stream.String(g)},
			)
			if err != nil {
				return fmt.Errorf("core: %s leg %q/%q: %w", rec.Type(), rec.ID(), g, err)
			}
			leg.fix = fix
			leg.out = fix.schema
			p.legs = append(p.legs, leg)
		}
	}
	// All legs of one type must agree on their output schema (their
	// streams are unioned downstream).
	byType := make(map[receptor.Type]*stream.Schema)
	for _, leg := range p.legs {
		if prev, ok := byType[leg.typ]; ok {
			if !prev.Equal(leg.out) {
				return fmt.Errorf("core: %s legs produce differing schemas: %s vs %s", leg.typ, prev, leg.out)
			}
			continue
		}
		byType[leg.typ] = leg.out
	}
	return nil
}

func (p *Processor) buildMerges() error {
	merged := make(map[string]*procMerge)
	for _, leg := range p.legs {
		pl := p.pipelineFor(leg.typ)
		if pl == nil || pl.Merge == nil {
			continue
		}
		m, ok := merged[leg.group]
		if !ok {
			op, err := pl.Merge.Build(leg.out, p.env)
			if err != nil {
				return fmt.Errorf("core: %s Merge for group %q: %w", leg.typ, leg.group, err)
			}
			if err := op.Open(leg.out); err != nil {
				return fmt.Errorf("core: %s Merge for group %q: %w", leg.typ, leg.group, err)
			}
			fix, err := newAnnotFix(op.Schema(),
				[]stream.Field{{Name: ColGranule, Kind: stream.KindString}},
				[]stream.Value{stream.String(leg.group)},
			)
			if err != nil {
				return fmt.Errorf("core: %s Merge for group %q: %w", leg.typ, leg.group, err)
			}
			m = &procMerge{group: leg.group, typ: leg.typ, op: op, fix: fix, out: fix.schema}
			merged[leg.group] = m
			p.merges = append(p.merges, m)
		}
		leg.merge = m
	}
	// Merge outputs of one type must agree (unioned into Arbitrate).
	byType := make(map[receptor.Type]*stream.Schema)
	for _, m := range p.merges {
		if prev, ok := byType[m.typ]; ok {
			if !prev.Equal(m.out) {
				return fmt.Errorf("core: %s Merge groups produce differing schemas: %s vs %s", m.typ, prev, m.out)
			}
			continue
		}
		byType[m.typ] = m.out
	}
	return nil
}

// typeStageOut reports the schema flowing out of the last per-group stage
// of a type (Merge output if present, else leg output).
func (p *Processor) typeStageOut(t receptor.Type) *stream.Schema {
	for _, m := range p.merges {
		if m.typ == t {
			return m.out
		}
	}
	for _, leg := range p.legs {
		if leg.typ == t {
			return leg.out
		}
	}
	return nil
}

func (p *Processor) buildArbitrates() error {
	for _, leg := range p.legs {
		t := leg.typ
		if _, done := p.typeSchema[t]; done {
			continue
		}
		in := p.typeStageOut(t)
		pl := p.pipelineFor(t)
		if pl == nil || pl.Arbitrate == nil {
			p.typeSchema[t] = in
			p.arbOrder = append(p.arbOrder, t)
			continue
		}
		op, err := pl.Arbitrate.Build(in, p.env)
		if err != nil {
			return fmt.Errorf("core: %s Arbitrate: %w", t, err)
		}
		if err := op.Open(in); err != nil {
			return fmt.Errorf("core: %s Arbitrate: %w", t, err)
		}
		arb := &procArb{typ: t, op: op, out: op.Schema()}
		p.arbs[t] = arb
		p.typeSchema[t] = arb.out
		p.arbOrder = append(p.arbOrder, t)
	}
	return nil
}

func (p *Processor) buildVirtualize() error {
	spec := p.dep.Virtualize
	if spec == nil {
		return nil
	}
	cat := make(map[string]*stream.Schema, len(spec.Bind))
	for name, t := range spec.Bind {
		sch, ok := p.typeSchema[t]
		if !ok {
			return fmt.Errorf("core: Virtualize binds %q to type %s, which has no receptors", name, t)
		}
		cat[name] = sch
		p.virtInputOf[t] = name
	}
	g, err := planVirtualize(spec.Query, cat, p.env)
	if err != nil {
		return fmt.Errorf("core: Virtualize: %w", err)
	}
	p.virt = g
	return nil
}

// TypeSchema reports the cleaned output schema of a receptor type.
func (p *Processor) TypeSchema(t receptor.Type) (*stream.Schema, bool) {
	s, ok := p.typeSchema[t]
	return s, ok
}

// VirtualizeSchema reports the Virtualize output schema (nil if the
// deployment has no Virtualize stage).
func (p *Processor) VirtualizeSchema() *stream.Schema {
	if p.virt == nil {
		return nil
	}
	return p.virt.Schema()
}

// OnType registers a sink for a type's cleaned output stream.
func (p *Processor) OnType(t receptor.Type, fn func(stream.Tuple)) {
	p.typeSinks[t] = append(p.typeSinks[t], fn)
}

// OnVirtualize registers a sink for the Virtualize output stream.
func (p *Processor) OnVirtualize(fn func(stream.Tuple)) {
	p.virtSinks = append(p.virtSinks, fn)
}

// OnEpoch registers a hook invoked at the end of every Step, after all
// stage punctuation — the place for control loops such as receptor
// actuation (see Actuator).
func (p *Processor) OnEpoch(fn func(now time.Time)) {
	p.epochSinks = append(p.epochSinks, fn)
}

// Tap registers an observer on a stage's output within a type's pipeline
// (for tracing and the paper's per-stage analyses). Point and Smooth taps
// see per-leg annotated outputs; Merge taps see per-group outputs.
func (p *Processor) Tap(t receptor.Type, stage StageKind, fn func(stream.Tuple)) {
	k := tapKey{typ: t, stage: stage}
	p.taps[k] = append(p.taps[k], fn)
}

func (p *Processor) tap(t receptor.Type, stage StageKind, ts []stream.Tuple) {
	fns := p.taps[tapKey{typ: t, stage: stage}]
	if len(fns) == 0 {
		return
	}
	for _, tu := range ts {
		for _, fn := range fns {
			fn(tu)
		}
	}
}
