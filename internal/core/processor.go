package core

import (
	"fmt"
	"log/slog"
	"time"

	"esp/internal/receptor"
	"esp/internal/stream"
	"esp/internal/telemetry"
)

// Pipeline configures the cleaning stages for one receptor type. Any
// stage may be nil (skipped): the RFID deployment uses Smooth+Arbitrate,
// the redwood deployment Point+Smooth+Merge, etc.
type Pipeline struct {
	Type receptor.Type
	// Point and Smooth are instantiated once per (receptor, group) pair
	// and see the receptor's annotated stream.
	Point, Smooth Stage
	// Merge is instantiated once per proximity group and sees the union
	// of the group members' Point/Smooth outputs.
	Merge Stage
	// Arbitrate is instantiated once per type and sees the union of all
	// the type's group streams.
	Arbitrate Stage
}

// VirtualizeSpec configures the cross-type Virtualize stage as a CQL
// query whose base stream names are bound to receptor types: each name
// reads that type's cleaned output stream.
type VirtualizeSpec struct {
	Query string
	Bind  map[string]receptor.Type
}

// Deployment describes a complete ESP installation: the devices, their
// proximity groups, a pipeline per receptor type, and the processing
// epoch (the temporal granule of punctuation).
type Deployment struct {
	// Epoch is the punctuation period: stage windows slide once per
	// epoch and NOW windows cover one epoch.
	Epoch time.Duration
	// Receptors are the physical devices; every receptor must belong to
	// at least one proximity group.
	Receptors []receptor.Receptor
	// Groups is the proximity-group registry.
	Groups *receptor.Groups
	// Pipelines maps receptor types to their cleaning pipelines. Types
	// without a pipeline pass through annotated but uncleaned.
	Pipelines map[receptor.Type]*Pipeline
	// Virtualize, if set, combines the per-type outputs.
	Virtualize *VirtualizeSpec
	// Tables are static relations available to CQL stages.
	Tables map[string]*stream.Table
	// TieBreak resolves Arbitrate ties (paper §4.3.1).
	TieBreak func(a, b stream.Tuple) bool
	// DisableBatching pins every leg to the row-at-a-time path. Columnar
	// batches originate only at legs, so this single gate disables batch
	// execution deployment-wide; the oracle's batched-vs-tuple
	// differential runs both settings and demands identical output.
	DisableBatching bool
	// DisableOptimizer turns off the CQL plan-rewrite pass for every
	// stage built in this deployment (the optimizer's kill switch; the
	// oracle's optimized-vs-unoptimized differential runs both settings).
	DisableOptimizer bool
}

// Processor executes a Deployment. At construction it compiles the
// deployment into an explicit dataflow DAG of uniform nodes (node.go) —
// one leg per (receptor, proximity group), one Merge per group, one
// Arbitrate and one output fan-out per type, one Virtualize — and each
// epoch it polls the receptors and hands the batches to the configured
// Scheduler, which pushes them through the graph and punctuates every
// node in pipeline order so results are deterministic.
type Processor struct {
	dep *Deployment
	env BuildEnv

	graph *dag
	sched Scheduler
	sup   *supervisor // nil until EnableSupervision

	// typeOrder lists receptor types in first-leg order — the order
	// type-level nodes are constructed and punctuated in.
	typeOrder  []receptor.Type
	typeSchema map[receptor.Type]*stream.Schema

	virt        *virtNode // nil if the deployment has no Virtualize stage
	virtInputOf map[receptor.Type]string

	taps       map[tapKey][]func(stream.Tuple)
	typeSinks  map[receptor.Type][]func(stream.Tuple)
	virtSinks  []func(stream.Tuple)
	epochSinks []func(time.Time)

	// Unified telemetry (telemetry.go): the registry holds every node
	// counter, stage counter, latency histogram, and gauge; lin records
	// sampled tuple lineage; logger receives structured runtime events.
	tel       *telemetry.Registry
	lin       *telemetry.Lineage
	logger    *slog.Logger
	typeStage map[receptor.Type]*stageCounters
	virtOut   *telemetry.Counter
	recTypes  []receptor.Type
}

type tapKey struct {
	typ   receptor.Type
	stage StageKind
}

// annotFix re-attaches constant annotation columns a stage projected
// away, so downstream stages always see receptor_id / spatial_granule.
type annotFix struct {
	prepend []stream.Value // values to prepend (possibly empty)
	schema  *stream.Schema
}

func (f *annotFix) apply(ts []stream.Tuple) []stream.Tuple {
	if len(f.prepend) == 0 || len(ts) == 0 {
		return ts
	}
	out := make([]stream.Tuple, len(ts))
	for i, t := range ts {
		vals := make([]stream.Value, 0, len(f.prepend)+len(t.Values))
		vals = append(vals, f.prepend...)
		vals = append(vals, t.Values...)
		out[i] = stream.Tuple{Ts: t.Ts, Values: vals}
	}
	return out
}

// newAnnotFix builds the fix-up for a stage output: any of the wanted
// (name, value) pairs missing from the schema are prepended as constants.
func newAnnotFix(out *stream.Schema, want []stream.Field, vals []stream.Value) (*annotFix, error) {
	fix := &annotFix{}
	var fields []stream.Field
	for i, f := range want {
		if _, ok := out.Index(f.Name); ok {
			continue
		}
		fields = append(fields, f)
		fix.prepend = append(fix.prepend, vals[i])
	}
	schema, err := stream.NewSchema(append(fields, out.Fields()...)...)
	if err != nil {
		return nil, err
	}
	fix.schema = schema
	return fix, nil
}

// annotated builds the schema of a receptor stream with the processor's
// annotation columns prepended.
func annotated(device *stream.Schema) (*stream.Schema, error) {
	fields := []stream.Field{
		{Name: ColReceptorID, Kind: stream.KindString},
		{Name: ColGranule, Kind: stream.KindString},
	}
	return stream.NewSchema(append(fields, device.Fields()...)...)
}

// StripAnnotation removes the processor's annotation columns from a
// cleaned output schema and returns the stripped schema plus a projector
// for tuples. Use it when feeding one processor's output into another as
// a receptor stream (hierarchical, HiFi-style composition): the parent
// re-annotates with its own receptor IDs and granules.
func StripAnnotation(sch *stream.Schema) (*stream.Schema, func(stream.Tuple) stream.Tuple, error) {
	var keep []int
	var fields []stream.Field
	for i := 0; i < sch.Len(); i++ {
		f := sch.Field(i)
		if f.Name == ColReceptorID || f.Name == ColGranule {
			continue
		}
		keep = append(keep, i)
		fields = append(fields, f)
	}
	stripped, err := stream.NewSchema(fields...)
	if err != nil {
		return nil, nil, fmt.Errorf("core: StripAnnotation: %w", err)
	}
	project := func(t stream.Tuple) stream.Tuple {
		vals := make([]stream.Value, len(keep))
		for j, i := range keep {
			vals[j] = t.Values[i]
		}
		return stream.Tuple{Ts: t.Ts, Values: vals}
	}
	return stripped, project, nil
}

// dagBuilder accumulates nodes during deployment compilation. Nodes are
// appended in topological order — legs, merges, arbitrates, outputs,
// virtualize — which is also the punctuation order schedulers honour.
type dagBuilder struct {
	nodes []node
	// legs and merges are node indices in construction order.
	legs         []int
	merges       []int
	mergeOfGroup map[string]int
	arbOf        map[receptor.Type]int
	outOf        map[receptor.Type]int
}

func (b *dagBuilder) add(n node) int {
	b.nodes = append(b.nodes, n)
	return len(b.nodes) - 1
}

func (b *dagBuilder) leg(i int) *legNode     { return b.nodes[i].(*legNode) }
func (b *dagBuilder) merge(i int) *mergeNode { return b.nodes[i].(*mergeNode) }

// typeFeed reports the nodes feeding a type's type-level stage (the
// type's Merge nodes if any, else its legs) and their shared schema.
func (b *dagBuilder) typeFeed(t receptor.Type) ([]upEdge, *stream.Schema) {
	var ups []upEdge
	var sch *stream.Schema
	for _, mi := range b.merges {
		if m := b.merge(mi); m.typ == t {
			ups = append(ups, upEdge{from: mi})
			if sch == nil {
				sch = m.out
			}
		}
	}
	if ups != nil {
		return ups, sch
	}
	for _, li := range b.legs {
		if leg := b.leg(li); leg.typ == t {
			ups = append(ups, upEdge{from: li})
			if sch == nil {
				sch = leg.out
			}
		}
	}
	return ups, sch
}

// NewProcessor validates and compiles a deployment: every stage instance
// is constructed and opened, all schema compatibility is checked, and
// the dataflow graph is assembled, before any data flows.
func NewProcessor(dep *Deployment) (*Processor, error) {
	if dep.Epoch <= 0 {
		return nil, fmt.Errorf("core: deployment epoch must be positive")
	}
	if len(dep.Receptors) == 0 {
		return nil, fmt.Errorf("core: deployment has no receptors")
	}
	if dep.Groups == nil {
		return nil, fmt.Errorf("core: deployment has no proximity groups")
	}
	p := &Processor{
		dep:   dep,
		sched: SeqScheduler{},
		tel:   telemetry.NewRegistry(),

		typeSchema:  make(map[receptor.Type]*stream.Schema),
		virtInputOf: make(map[receptor.Type]string),
		taps:        make(map[tapKey][]func(stream.Tuple)),
		typeSinks:   make(map[receptor.Type][]func(stream.Tuple)),
	}
	// Live resolves through the processor at call time, so stages built
	// now still see supervision enabled later.
	p.env = BuildEnv{Epoch: dep.Epoch, Tables: dep.Tables, TieBreak: dep.TieBreak, Live: liveView{p: p}, NoOptimize: dep.DisableOptimizer}
	b := &dagBuilder{
		mergeOfGroup: make(map[string]int),
		arbOf:        make(map[receptor.Type]int),
		outOf:        make(map[receptor.Type]int),
	}
	if err := p.buildLegs(b); err != nil {
		return nil, err
	}
	if err := p.buildMerges(b); err != nil {
		return nil, err
	}
	if err := p.buildArbitrates(b); err != nil {
		return nil, err
	}
	p.buildOutputs(b)
	if err := p.buildVirtualize(b); err != nil {
		return nil, err
	}
	g, err := compileDag(p, b.nodes)
	if err != nil {
		return nil, err
	}
	p.graph = g
	p.initTelemetry()
	return p, nil
}

// SetScheduler selects the execution strategy for subsequent epochs (the
// default is SeqScheduler). Only swap schedulers between Steps, never
// while one is executing.
func (p *Processor) SetScheduler(s Scheduler) {
	if s != nil {
		p.sched = s
	}
}

func (p *Processor) pipelineFor(t receptor.Type) *Pipeline {
	if p.dep.Pipelines == nil {
		return nil
	}
	return p.dep.Pipelines[t]
}

func (p *Processor) buildLegs(b *dagBuilder) error {
	seen := make(map[string]bool)
	for _, rec := range p.dep.Receptors {
		if seen[rec.ID()] {
			return fmt.Errorf("core: duplicate receptor %q", rec.ID())
		}
		seen[rec.ID()] = true
		groups := p.dep.Groups.Of(rec.ID())
		if len(groups) == 0 {
			return fmt.Errorf("core: receptor %q belongs to no proximity group", rec.ID())
		}
		inSch, err := annotated(rec.Schema())
		if err != nil {
			return fmt.Errorf("core: receptor %q: %w", rec.ID(), err)
		}
		pl := p.pipelineFor(rec.Type())
		for _, g := range groups {
			leg := &legNode{
				rec: rec, group: g, typ: rec.Type(), inSch: inSch,
				prefix:  []stream.Value{stream.String(rec.ID()), stream.String(g)},
				noBatch: p.dep.DisableBatching,
			}
			cur := inSch
			if pl != nil && pl.Point != nil {
				op, err := pl.Point.Build(cur, p.env)
				if err != nil {
					return fmt.Errorf("core: %s Point for %q: %w", rec.Type(), rec.ID(), err)
				}
				if err := op.Open(cur); err != nil {
					return fmt.Errorf("core: %s Point for %q: %w", rec.Type(), rec.ID(), err)
				}
				leg.point = op
				cur = op.Schema()
			}
			if pl != nil && pl.Smooth != nil {
				op, err := pl.Smooth.Build(cur, p.env)
				if err != nil {
					return fmt.Errorf("core: %s Smooth for %q: %w", rec.Type(), rec.ID(), err)
				}
				if err := op.Open(cur); err != nil {
					return fmt.Errorf("core: %s Smooth for %q: %w", rec.Type(), rec.ID(), err)
				}
				leg.smooth = op
				cur = op.Schema()
			}
			fix, err := newAnnotFix(cur,
				[]stream.Field{
					{Name: ColReceptorID, Kind: stream.KindString},
					{Name: ColGranule, Kind: stream.KindString},
				},
				[]stream.Value{stream.String(rec.ID()), stream.String(g)},
			)
			if err != nil {
				return fmt.Errorf("core: %s leg %q/%q: %w", rec.Type(), rec.ID(), g, err)
			}
			leg.fix = fix
			leg.out = fix.schema
			b.legs = append(b.legs, b.add(leg))
		}
	}
	// All legs of one type must agree on their output schema (their
	// streams are unioned downstream).
	byType := make(map[receptor.Type]*stream.Schema)
	for _, li := range b.legs {
		leg := b.leg(li)
		if prev, ok := byType[leg.typ]; ok {
			if !prev.Equal(leg.out) {
				return fmt.Errorf("core: %s legs produce differing schemas: %s vs %s", leg.typ, prev, leg.out)
			}
			continue
		}
		byType[leg.typ] = leg.out
	}
	return nil
}

func (p *Processor) buildMerges(b *dagBuilder) error {
	for _, li := range b.legs {
		leg := b.leg(li)
		pl := p.pipelineFor(leg.typ)
		if pl == nil || pl.Merge == nil {
			continue
		}
		mi, ok := b.mergeOfGroup[leg.group]
		if !ok {
			env := p.env
			env.Group = leg.group
			op, err := pl.Merge.Build(leg.out, env)
			if err != nil {
				return fmt.Errorf("core: %s Merge for group %q: %w", leg.typ, leg.group, err)
			}
			if err := op.Open(leg.out); err != nil {
				return fmt.Errorf("core: %s Merge for group %q: %w", leg.typ, leg.group, err)
			}
			fix, err := newAnnotFix(op.Schema(),
				[]stream.Field{{Name: ColGranule, Kind: stream.KindString}},
				[]stream.Value{stream.String(leg.group)},
			)
			if err != nil {
				return fmt.Errorf("core: %s Merge for group %q: %w", leg.typ, leg.group, err)
			}
			m := &mergeNode{group: leg.group, typ: leg.typ, op: op, fix: fix, out: fix.schema, noBatch: p.dep.DisableBatching}
			mi = b.add(m)
			b.mergeOfGroup[leg.group] = mi
			b.merges = append(b.merges, mi)
		}
		m := b.merge(mi)
		m.ups = append(m.ups, upEdge{from: li})
	}
	// Merge outputs of one type must agree (unioned into Arbitrate).
	byType := make(map[receptor.Type]*stream.Schema)
	for _, mi := range b.merges {
		m := b.merge(mi)
		if prev, ok := byType[m.typ]; ok {
			if !prev.Equal(m.out) {
				return fmt.Errorf("core: %s Merge groups produce differing schemas: %s vs %s", m.typ, prev, m.out)
			}
			continue
		}
		byType[m.typ] = m.out
	}
	return nil
}

func (p *Processor) buildArbitrates(b *dagBuilder) error {
	for _, li := range b.legs {
		t := b.leg(li).typ
		if _, done := p.typeSchema[t]; done {
			continue
		}
		ups, in := b.typeFeed(t)
		pl := p.pipelineFor(t)
		if pl == nil || pl.Arbitrate == nil {
			p.typeSchema[t] = in
			p.typeOrder = append(p.typeOrder, t)
			continue
		}
		op, err := pl.Arbitrate.Build(in, p.env)
		if err != nil {
			return fmt.Errorf("core: %s Arbitrate: %w", t, err)
		}
		if err := op.Open(in); err != nil {
			return fmt.Errorf("core: %s Arbitrate: %w", t, err)
		}
		arb := &arbNode{typ: t, op: op, out: op.Schema(), ups: ups}
		b.arbOf[t] = b.add(arb)
		p.typeSchema[t] = arb.out
		p.typeOrder = append(p.typeOrder, t)
	}
	return nil
}

// buildOutputs adds the terminal per-type fan-out nodes, fed by the
// type's Arbitrate when present and by its Merge nodes or legs otherwise.
func (p *Processor) buildOutputs(b *dagBuilder) {
	for _, t := range p.typeOrder {
		var ups []upEdge
		if ai, ok := b.arbOf[t]; ok {
			ups = []upEdge{{from: ai}}
		} else {
			ups, _ = b.typeFeed(t)
		}
		b.outOf[t] = b.add(&outNode{typ: t, ups: ups})
	}
}

func (p *Processor) buildVirtualize(b *dagBuilder) error {
	spec := p.dep.Virtualize
	if spec == nil {
		return nil
	}
	cat := make(map[string]*stream.Schema, len(spec.Bind))
	for name, t := range spec.Bind {
		sch, ok := p.typeSchema[t]
		if !ok {
			return fmt.Errorf("core: Virtualize binds %q to type %s, which has no receptors", name, t)
		}
		cat[name] = sch
		p.virtInputOf[t] = name
	}
	g, err := planVirtualize(spec.Query, cat, p.env)
	if err != nil {
		return fmt.Errorf("core: Virtualize: %w", err)
	}
	var ups []upEdge
	for _, t := range p.typeOrder {
		name, ok := p.virtInputOf[t]
		if !ok {
			continue
		}
		ups = append(ups, upEdge{from: b.outOf[t], port: name})
	}
	p.virt = &virtNode{g: g, ups: ups}
	b.add(p.virt)
	return nil
}

// TypeSchema reports the cleaned output schema of a receptor type.
func (p *Processor) TypeSchema(t receptor.Type) (*stream.Schema, bool) {
	s, ok := p.typeSchema[t]
	return s, ok
}

// VirtualizeSchema reports the Virtualize output schema (nil if the
// deployment has no Virtualize stage).
func (p *Processor) VirtualizeSchema() *stream.Schema {
	if p.virt == nil {
		return nil
	}
	return p.virt.g.Schema()
}

// OnType registers a sink for a type's cleaned output stream.
func (p *Processor) OnType(t receptor.Type, fn func(stream.Tuple)) {
	p.typeSinks[t] = append(p.typeSinks[t], fn)
}

// OnVirtualize registers a sink for the Virtualize output stream.
func (p *Processor) OnVirtualize(fn func(stream.Tuple)) {
	p.virtSinks = append(p.virtSinks, fn)
}

// OnEpoch registers a hook invoked at the end of every Step, after all
// stage punctuation — the place for control loops such as receptor
// actuation (see Actuator).
func (p *Processor) OnEpoch(fn func(now time.Time)) {
	p.epochSinks = append(p.epochSinks, fn)
}

// Tap registers an observer on a stage's output within a type's pipeline
// (for tracing and the paper's per-stage analyses). Point and Smooth taps
// see per-leg annotated outputs; Merge taps see per-group outputs.
func (p *Processor) Tap(t receptor.Type, stage StageKind, fn func(stream.Tuple)) {
	k := tapKey{typ: t, stage: stage}
	p.taps[k] = append(p.taps[k], fn)
}

func (p *Processor) tap(t receptor.Type, stage StageKind, ts []stream.Tuple) {
	fns := p.taps[tapKey{typ: t, stage: stage}]
	if len(fns) == 0 {
		return
	}
	for _, tu := range ts {
		for _, fn := range fns {
			fn(tu)
		}
	}
}
