package core

import (
	"testing"
	"time"

	"esp/internal/receptor"
	"esp/internal/stream"
)

// TestHierarchicalComposition chains two ESP processors HiFi-style: edge
// processors smooth their own motes, publish cleaned streams into
// Channels, and a parent processor merges the channels as if they were
// devices — the paper's "entire pipelines for processing low-level data
// can be reused as input to application-level cleaning".
func TestHierarchicalComposition(t *testing.T) {
	moteSchema := stream.MustSchema(
		stream.Field{Name: "mote_id", Kind: stream.KindString},
		stream.Field{Name: "temp", Kind: stream.KindFloat},
	)
	mkEdge := func(name string, temps []float64) (*Processor, *receptor.Channel) {
		rec := &fakeReceptor{id: name + "-mote", typ: receptor.TypeMote, schema: moteSchema}
		for i, v := range temps {
			rec.queue = append(rec.queue, stream.NewTuple(at(float64(i)+0.5), stream.String(rec.id), stream.Float(v)))
		}
		p, err := NewProcessor(&Deployment{
			Epoch:     time.Second,
			Receptors: []receptor.Receptor{rec},
			Groups:    singleGroup(name, receptor.TypeMote, rec.ID()),
			Pipelines: map[receptor.Type]*Pipeline{
				receptor.TypeMote: {Type: receptor.TypeMote, Smooth: SmoothAvg("temp", 2*time.Second)},
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		// Strip the edge's annotations so the parent can attach its own.
		edgeOut, _ := p.TypeSchema(receptor.TypeMote)
		stripped, project, err := StripAnnotation(edgeOut)
		if err != nil {
			t.Fatal(err)
		}
		ch := receptor.NewChannel(name, receptor.TypeMote, stripped)
		p.OnType(receptor.TypeMote, func(tu stream.Tuple) { ch.Publish(project(tu)) })
		return p, ch
	}

	edgeA, chA := mkEdge("edgeA", []float64{20, 20, 20})
	edgeB, chB := mkEdge("edgeB", []float64{24, 24, 24})

	// The parent treats the two edges' cleaned streams as its receptors
	// and spatially merges them.
	groups := receptor.NewGroups()
	groups.MustAdd(receptor.Group{Name: "building", Type: receptor.TypeMote, Members: []string{"edgeA", "edgeB"}})
	parent, err := NewProcessor(&Deployment{
		Epoch:     time.Second,
		Receptors: []receptor.Receptor{chA, chB},
		Groups:    groups,
		Pipelines: map[receptor.Type]*Pipeline{
			receptor.TypeMote: {Type: receptor.TypeMote, Merge: MergeAvg("temp", time.Second)},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	var merged []float64
	parentSchema, _ := parent.TypeSchema(receptor.TypeMote)
	tempIx := parentSchema.MustIndex("temp")
	parent.OnType(receptor.TypeMote, func(tu stream.Tuple) {
		merged = append(merged, tu.Values[tempIx].AsFloat())
	})

	// Drive the hierarchy level by level, epoch by epoch.
	for i := 1; i <= 4; i++ {
		now := at(float64(i))
		if err := edgeA.Step(now); err != nil {
			t.Fatal(err)
		}
		if err := edgeB.Step(now); err != nil {
			t.Fatal(err)
		}
		if err := parent.Step(now); err != nil {
			t.Fatal(err)
		}
	}
	if len(merged) == 0 {
		t.Fatal("parent produced no merged output")
	}
	for _, v := range merged {
		if v != 22 {
			t.Errorf("building average = %v, want 22 (mean of 20 and 24)", v)
		}
	}
	if chA.Pending() != 0 || chB.Pending() != 0 {
		t.Errorf("channels not drained: %d, %d", chA.Pending(), chB.Pending())
	}
}

func TestChannelHoldsFutureTuples(t *testing.T) {
	ch := receptor.NewChannel("c", receptor.TypeMote, stream.MustSchema(
		stream.Field{Name: "v", Kind: stream.KindInt}))
	ch.Publish(stream.NewTuple(at(5), stream.Int(1)))
	ch.Publish(stream.NewTuple(at(1), stream.Int(2)))
	out := ch.Poll(at(2))
	if len(out) != 1 || out[0].Values[0] != stream.Int(2) {
		t.Errorf("poll = %v, want only the arrived tuple", out)
	}
	if ch.Pending() != 1 {
		t.Errorf("pending = %d", ch.Pending())
	}
	out = ch.Poll(at(6))
	if len(out) != 1 || out[0].Values[0] != stream.Int(1) {
		t.Errorf("second poll = %v", out)
	}
}
