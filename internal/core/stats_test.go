package core

import (
	"strings"
	"testing"
	"time"

	"esp/internal/receptor"
	"esp/internal/stream"
)

func TestEnableStatsCountsStages(t *testing.T) {
	rec := &fakeReceptor{id: "r0", typ: receptor.TypeRFID, schema: rfidRaw,
		queue: []stream.Tuple{
			rfidRead(0.2, "A", true),
			rfidRead(0.4, "B", false), // dropped by Point
		}}
	p, err := NewProcessor(&Deployment{
		Epoch:     time.Second,
		Receptors: []receptor.Receptor{rec},
		Groups:    singleGroup("shelf0", receptor.TypeRFID, "r0"),
		Pipelines: map[receptor.Type]*Pipeline{
			receptor.TypeRFID: {
				Type:   receptor.TypeRFID,
				Point:  PointChecksum("checksum_ok"),
				Smooth: SmoothTagCount(time.Second),
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	snapshot := p.EnableStats()
	if err := p.Run(at(0), at(1)); err != nil {
		t.Fatal(err)
	}
	s := snapshot()
	if s["rfid/Point"] != 1 {
		t.Errorf("Point count = %d, want 1 (corrupt read dropped)", s["rfid/Point"])
	}
	if s["rfid/Smooth"] != 1 {
		t.Errorf("Smooth count = %d, want 1", s["rfid/Smooth"])
	}
	if s["rfid/Arbitrate"] != 1 { // type output tap
		t.Errorf("type output count = %d, want 1", s["rfid/Arbitrate"])
	}
	if !strings.Contains(s.String(), "rfid/Point=1") {
		t.Errorf("Stats.String = %q", s.String())
	}
}

func TestDescribeDeployment(t *testing.T) {
	rec := &fakeReceptor{id: "r0", typ: receptor.TypeRFID, schema: rfidRaw}
	p, err := NewProcessor(&Deployment{
		Epoch:     time.Second,
		Receptors: []receptor.Receptor{rec},
		Groups:    singleGroup("shelf0", receptor.TypeRFID, "r0"),
		Pipelines: map[receptor.Type]*Pipeline{
			receptor.TypeRFID: {
				Type:      receptor.TypeRFID,
				Point:     PointChecksum("checksum_ok"),
				Smooth:    SmoothTagCount(5 * time.Second),
				Arbitrate: ArbitrateMaxSum("tag_id", "n"),
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	d := p.Describe()
	for _, want := range []string{
		"epoch 1s", "type rfid", "r0@shelf0",
		"Point", "point-checksum", "Smooth", "cql:", "Arbitrate",
		"output (spatial_granule", // arbitrate output schema
	} {
		if !strings.Contains(d, want) {
			t.Errorf("Describe missing %q:\n%s", want, d)
		}
	}
}

func TestDescribePassThroughAndVirtualize(t *testing.T) {
	moteSchema := stream.MustSchema(
		stream.Field{Name: "mote_id", Kind: stream.KindString},
		stream.Field{Name: "noise", Kind: stream.KindFloat},
	)
	mote := &fakeReceptor{id: "m1", typ: receptor.TypeMote, schema: moteSchema}
	x10 := &fakeReceptor{id: "x1", typ: receptor.TypeMotion, schema: stream.MustSchema(
		stream.Field{Name: "detector_id", Kind: stream.KindString},
		stream.Field{Name: "value", Kind: stream.KindString},
	)}
	rfid := &fakeReceptor{id: "r0", typ: receptor.TypeRFID, schema: rfidRaw}
	groups := receptor.NewGroups()
	groups.MustAdd(receptor.Group{Name: "sound", Type: receptor.TypeMote, Members: []string{"m1"}})
	groups.MustAdd(receptor.Group{Name: "motion", Type: receptor.TypeMotion, Members: []string{"x1"}})
	groups.MustAdd(receptor.Group{Name: "badge", Type: receptor.TypeRFID, Members: []string{"r0"}})
	p, err := NewProcessor(&Deployment{
		Epoch:     time.Second,
		Receptors: []receptor.Receptor{mote, x10, rfid},
		Groups:    groups,
		Virtualize: &VirtualizeSpec{
			Query: PersonDetectorQuery(525, 2),
			Bind: map[string]receptor.Type{
				"sensors_input": receptor.TypeMote,
				"rfid_input":    receptor.TypeRFID,
				"motion_input":  receptor.TypeMotion,
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	d := p.Describe()
	for _, want := range []string{"pass-through", "Virtualize:", "sensors_input<-mote", "(event string)"} {
		if !strings.Contains(d, want) {
			t.Errorf("Describe missing %q:\n%s", want, d)
		}
	}
}
