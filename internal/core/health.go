package core

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"esp/internal/telemetry"
)

// HealthState is one receptor's position in the supervision state
// machine. Transitions (see DESIGN.md §6):
//
//	Healthy --failure--> Suspect --SuspectAfter consecutive failures--> Quarantined
//	Suspect --success--> Healthy
//	Quarantined --backoff elapsed, probe succeeds--> Healthy (readmitted)
//	Quarantined --probe fails--> Quarantined (backoff doubles, capped)
type HealthState int32

const (
	// Healthy receptors are polled every epoch.
	Healthy HealthState = iota
	// Suspect receptors have failed recently but are still polled; a
	// success clears them, further failures quarantine them.
	Suspect
	// Quarantined receptors are skipped (their proximity groups' live
	// membership shrinks) until an exponential-backoff probe readmits
	// them.
	Quarantined
)

// String names the state.
func (s HealthState) String() string {
	switch s {
	case Healthy:
		return "healthy"
	case Suspect:
		return "suspect"
	case Quarantined:
		return "quarantined"
	default:
		return fmt.Sprintf("state(%d)", int32(s))
	}
}

// HealthTransition is one state-machine edge, delivered to the
// SupervisorConfig.OnTransition callback and recorded by chaos
// harnesses. At is the simulation (epoch) time of the poll that caused
// the transition.
type HealthTransition struct {
	ReceptorID string
	From, To   HealthState
	At         time.Time
	// Cause is "panic", "timeout", "stuck" (abandoned poll still in
	// flight), "error", "probe-ok" or "poll-ok".
	Cause string
}

// pollOutcome classifies one guarded poll attempt.
type pollOutcome int

const (
	pollOK pollOutcome = iota
	pollPanic
	pollTimeout
	pollStuck // previous timed-out poll still in flight; attempt skipped
)

func (o pollOutcome) cause() string {
	switch o {
	case pollPanic:
		return "panic"
	case pollTimeout:
		return "timeout"
	case pollStuck:
		return "stuck"
	default:
		return "poll-ok"
	}
}

// receptorHealth is the live supervision state of one receptor. The
// mutex guards the state machine (poll decisions may come from
// RunConcurrent worker goroutines); the counters are registry handles
// (atomics inside) so HealthStats and Telemetry snapshots can read
// concurrently with a run. The handles are nil in bare FSM unit tests —
// every telemetry method is a nil-safe no-op.
type receptorHealth struct {
	mu      sync.Mutex
	state   HealthState
	streak  int           // consecutive failures
	backoff time.Duration // current quarantine backoff (0 = none yet)
	retryAt time.Time     // next probe time while quarantined
	rng     *rand.Rand    // jitter source, seeded per receptor

	inflight atomic.Bool // an abandoned timed-out poll is still running

	polls, failures, timeouts, panics *telemetry.Counter
	skipped                           *telemetry.Counter // polls suppressed by quarantine or in-flight guard
	quarantines, readmits             *telemetry.Counter
	pollLat                           *telemetry.Histogram // guarded-poll wall latency (telemetry enabled only)
}

// newReceptorHealth wires a health record's counters into the registry
// under the given prefix ("receptor.<id>.").
func newReceptorHealth(tel *telemetry.Registry, pfx string) *receptorHealth {
	return &receptorHealth{
		polls:       tel.Counter(pfx + "polls"),
		failures:    tel.Counter(pfx + "failures"),
		timeouts:    tel.Counter(pfx + "timeouts"),
		panics:      tel.Counter(pfx + "panics"),
		skipped:     tel.Counter(pfx + "skipped"),
		quarantines: tel.Counter(pfx + "quarantines"),
		readmits:    tel.Counter(pfx + "readmits"),
		pollLat:     tel.Histogram(pfx + "poll_ns"),
	}
}

// healthRules bundles the FSM tuning so transitions are testable
// without a supervisor or processor.
type healthRules struct {
	suspectAfter int
	backoffBase  time.Duration
	backoffMax   time.Duration
	jitterFrac   float64
}

// onSuccess advances the machine after a successful poll; it returns
// the transition taken, if any. Caller holds h.mu.
func (h *receptorHealth) onSuccess(now time.Time) (HealthTransition, bool) {
	h.streak = 0
	from := h.state
	if from == Healthy {
		return HealthTransition{}, false
	}
	h.state = Healthy
	h.backoff = 0
	h.retryAt = time.Time{}
	cause := "poll-ok"
	if from == Quarantined {
		cause = "probe-ok"
		h.readmits.Add(1)
	}
	return HealthTransition{From: from, To: Healthy, At: now, Cause: cause}, true
}

// onFailure advances the machine after a failed poll attempt (panic,
// timeout, stuck in-flight guard, or failed probe); it returns the
// transition taken, if any. Caller holds h.mu.
func (h *receptorHealth) onFailure(now time.Time, rules healthRules, cause string) (HealthTransition, bool) {
	h.streak++
	switch h.state {
	case Healthy:
		h.state = Suspect
		if h.streak >= rules.suspectAfter {
			// Degenerate config (SuspectAfter <= 1): straight to quarantine.
			h.enterQuarantine(now, rules)
			return HealthTransition{From: Healthy, To: Quarantined, At: now, Cause: cause}, true
		}
		return HealthTransition{From: Healthy, To: Suspect, At: now, Cause: cause}, true
	case Suspect:
		if h.streak < rules.suspectAfter {
			return HealthTransition{}, false
		}
		h.enterQuarantine(now, rules)
		return HealthTransition{From: Suspect, To: Quarantined, At: now, Cause: cause}, true
	default: // Quarantined: failed probe — double the backoff, stay put.
		h.extendQuarantine(now, rules)
		return HealthTransition{From: Quarantined, To: Quarantined, At: now, Cause: cause}, true
	}
}

func (h *receptorHealth) enterQuarantine(now time.Time, rules healthRules) {
	h.state = Quarantined
	h.quarantines.Add(1)
	h.backoff = rules.backoffBase
	h.retryAt = now.Add(h.jittered(h.backoff, rules))
}

func (h *receptorHealth) extendQuarantine(now time.Time, rules healthRules) {
	h.backoff *= 2
	if h.backoff > rules.backoffMax {
		h.backoff = rules.backoffMax
	}
	if h.backoff <= 0 {
		h.backoff = rules.backoffBase
	}
	h.retryAt = now.Add(h.jittered(h.backoff, rules))
}

// jittered stretches a backoff by up to jitterFrac, drawn from the
// receptor's seeded RNG — deterministic per seed, decorrelated across
// receptors so readmission probes do not stampede.
func (h *receptorHealth) jittered(d time.Duration, rules healthRules) time.Duration {
	if rules.jitterFrac <= 0 || h.rng == nil {
		return d
	}
	return d + time.Duration(float64(d)*rules.jitterFrac*h.rng.Float64())
}

// ReceptorHealth is a snapshot of one receptor's supervision state,
// reported by Processor.HealthStats in deployment receptor order.
type ReceptorHealth struct {
	ID    string
	State HealthState
	// Polls counts completed poll attempts (successful or failed);
	// Skipped counts epochs suppressed by quarantine or by the
	// in-flight guard after an abandoned timeout.
	Polls, Skipped int64
	// Failures counts failed attempts, split into Timeouts and Panics
	// (the remainder are stuck-in-flight attempts).
	Failures, Timeouts, Panics int64
	// Quarantines counts Healthy/Suspect→Quarantined edges; Readmits
	// counts successful probes.
	Quarantines, Readmits int64
	// NextProbe is the pending probe time while quarantined.
	NextProbe time.Time
}
