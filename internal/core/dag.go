package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"esp/internal/stream"
	"esp/internal/telemetry"
)

// dag is the compiled dataflow graph of a Deployment: the nodes in a
// fixed topological order (legs, merges, arbitrates, type outputs,
// virtualize — the order every scheduler's determinism guarantee is
// stated against), the downstream adjacency derived from the nodes'
// declared upstream edges, the depth levels parallel execution exploits,
// and the receptor→leg fan-out index.
type dag struct {
	p     *Processor
	nodes []node
	// down[i] lists node i's downstream edges in node-index order.
	down [][]downEdge
	// level[i] is node i's DAG depth; levels[d] lists the node indices at
	// depth d in ascending order. Every edge goes from a lower level to a
	// strictly higher one, so the nodes within one level are mutually
	// independent — the invariant ParallelScheduler relies on.
	level  []int
	levels [][]int
	// legsByReceptor[r] indexes the leg nodes fed by dep.Receptors[r], in
	// leg construction order — built once at compile time so the per-epoch
	// fan-out is O(legs) instead of O(receptors × legs).
	legsByReceptor [][]int
	stats          []nodeCounters
	// quarantined[i] marks node i as permanently out of service after a
	// panic under supervision: its input is dropped and it is no longer
	// punctuated. Unlike receptors — external devices that may recover —
	// a panicked node has corrupt operator state, so it never readmits.
	quarantined []atomic.Bool
	// fxPool recycles effects buffers across node invocations (the graph
	// runs tens of thousands per second; steady state their event and
	// emission slices reach capacity and the hot path stops allocating).
	fxPool sync.Pool
}

// getFx returns an empty effects buffer, reusing a pooled one.
func (g *dag) getFx() *effects {
	if v := g.fxPool.Get(); v != nil {
		return v.(*effects)
	}
	return &effects{}
}

// putFx resets and pools an effects buffer. Callers must be done with
// its emissions: delivered slices and batches are safe (reset only drops
// the buffer's own references), but the buffer itself must not be read
// again.
func (g *dag) putFx(fx *effects) {
	fx.reset()
	g.fxPool.Put(fx)
}

// downEdge routes a node's emitted tuples to a downstream input port.
type downEdge struct {
	to   int
	port string
}

// nodeCounters is the live instrumentation state of one node: handles
// into the processor's telemetry registry, resolved once at wiring time
// so the hot path never does a name lookup. Within an epoch each entry
// is written by a single goroutine (the scheduler, or the one worker
// running the node's level task), but snapshots may be taken from other
// goroutines while a run is in flight — the handles are atomics inside.
// The advance histogram doubles as the per-stage latency distribution
// (p50/p90/p99/max) in the unified snapshot.
type nodeCounters struct {
	tuplesIn, tuplesOut *telemetry.Counter
	panics              *telemetry.Counter
	advance             *telemetry.Histogram
	// batchesIn/batchRows count columnar deliveries (rows also count in
	// tuplesIn, so tuple totals stay representation-independent);
	// batchFallbacks counts deliveries that degraded to the tuple path.
	batchesIn, batchRows *telemetry.Counter
	batchFallbacks       *telemetry.Counter
}

// compileDag inverts the nodes' upstream declarations into the runnable
// graph. The node slice must already be topologically ordered (the
// builder constructs legs, then merges, then arbitrates, then outputs,
// then virtualize, which guarantees it).
func compileDag(p *Processor, nodes []node) (*dag, error) {
	g := &dag{
		p:     p,
		nodes: nodes,
		down:  make([][]downEdge, len(nodes)),
		level: make([]int, len(nodes)),
		stats: make([]nodeCounters, len(nodes)),

		quarantined: make([]atomic.Bool, len(nodes)),
	}
	maxLevel := 0
	for i, n := range nodes {
		lvl := 0
		for _, e := range n.upstream() {
			if e.from < 0 || e.from >= i {
				return nil, fmt.Errorf("core: dataflow graph is not topologically ordered: node %d (%s) reads node %d", i, n.label(), e.from)
			}
			g.down[e.from] = append(g.down[e.from], downEdge{to: i, port: e.port})
			if g.level[e.from]+1 > lvl {
				lvl = g.level[e.from] + 1
			}
		}
		g.level[i] = lvl
		if lvl > maxLevel {
			maxLevel = lvl
		}
	}
	g.levels = make([][]int, maxLevel+1)
	for i := range nodes {
		g.levels[g.level[i]] = append(g.levels[g.level[i]], i)
	}
	// Receptor fan-out index: receptor IDs are unique (buildLegs checks),
	// and a receptor's legs appear consecutively in construction order.
	byID := make(map[string]int, len(p.dep.Receptors))
	for r, rec := range p.dep.Receptors {
		byID[rec.ID()] = r
	}
	g.legsByReceptor = make([][]int, len(p.dep.Receptors))
	for i, n := range nodes {
		leg, ok := n.(*legNode)
		if !ok {
			continue
		}
		r, ok := byID[leg.rec.ID()]
		if !ok {
			return nil, fmt.Errorf("core: leg %s has no deployment receptor", leg.label())
		}
		g.legsByReceptor[r] = append(g.legsByReceptor[r], i)
	}
	return g, nil
}

// processInto delivers a batch to node i's input port and cascades its
// effects and emissions depth-first — the sequential execution strategy,
// which reproduces the classic Processor's call sequence exactly.
// Quarantined nodes swallow their input.
func (g *dag) processInto(i int, port string, ts []stream.Tuple) error {
	if g.quarantined[i].Load() {
		return nil
	}
	g.stats[i].tuplesIn.Add(int64(len(ts)))
	fx := g.getFx()
	ok, err := g.guard(i, func() error { return g.nodes[i].process(port, ts, fx) })
	if err != nil {
		return err
	}
	if !ok {
		g.putFx(fx)
		return nil // panicked under supervision: partial effects discarded
	}
	err = g.flushCascade(i, fx)
	g.putFx(fx)
	return err
}

// processIntoB delivers a columnar batch to node i's input port and
// cascades like processInto. The batch is owned by the upstream operator
// that produced it; the depth-first cascade completes before that
// operator can be invoked again, so no copy is needed.
func (g *dag) processIntoB(i int, port string, b *stream.Batch) error {
	if g.quarantined[i].Load() {
		return nil
	}
	st := &g.stats[i]
	st.batchesIn.Add(1)
	st.batchRows.Add(int64(b.Len()))
	st.tuplesIn.Add(int64(b.Len()))
	fx := g.getFx()
	ok, err := g.guard(i, func() error { return g.nodes[i].processBatch(port, b, fx) })
	if err != nil {
		return err
	}
	if !ok {
		g.putFx(fx)
		return nil
	}
	err = g.flushCascade(i, fx)
	g.putFx(fx)
	return err
}

// advanceNode punctuates node i and cascades the released output.
// Quarantined nodes are no longer punctuated.
func (g *dag) advanceNode(i int, now time.Time) error {
	if g.quarantined[i].Load() {
		return nil
	}
	st := &g.stats[i]
	fx := g.getFx()
	t0 := time.Now()
	ok, err := g.guard(i, func() error { return g.nodes[i].advance(now, fx) })
	st.advance.Observe(time.Since(t0))
	if err != nil {
		return err
	}
	if !ok {
		g.putFx(fx)
		return nil
	}
	err = g.flushCascade(i, fx)
	g.putFx(fx)
	return err
}

// guard runs one node call with panic isolation. A panic increments the
// node's panic counter; under supervision the node is quarantined and
// the epoch continues (ok=false, nil error), otherwise the panic is
// converted into a labelled error that aborts the Step.
func (g *dag) guard(i int, fn func() error) (ok bool, err error) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		g.stats[i].panics.Add(1)
		if g.p.sup != nil {
			g.quarantined[i].Store(true)
			ok, err = false, nil
			return
		}
		ok, err = false, fmt.Errorf("core: node %s panicked: %v", g.nodes[i].label(), r)
	}()
	return true, fn()
}

// flushCascade runs node i's buffered effects (taps, sinks) and feeds
// its emissions — columnar or tuple-form, in emission order — to every
// downstream edge, recursively.
func (g *dag) flushCascade(i int, fx *effects) error {
	g.flushEvents(fx)
	st := &g.stats[i]
	if fx.fallbacks != 0 {
		st.batchFallbacks.Add(fx.fallbacks)
	}
	for _, e := range fx.outs {
		rows := e.rows()
		if rows == 0 {
			continue
		}
		st.tuplesOut.Add(int64(rows))
		for _, d := range g.down[i] {
			var err error
			if e.b != nil {
				err = g.processIntoB(d.to, d.port, e.b)
			} else {
				err = g.processInto(d.to, d.port, e.ts)
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// flushEvents invokes the buffered taps and sink deliveries in emission
// order. Always called on the scheduler goroutine: user callbacks never
// observe node concurrency.
func (g *dag) flushEvents(fx *effects) {
	for i := range fx.events {
		ev := &fx.events[i]
		if !ev.sink {
			// Stage accounting keys off the non-sink (tap) event only:
			// outNode and virtNode fire both a tap and a sink event for
			// the same tuples, and counting both would double-count.
			g.p.countStage(ev.typ, ev.stage, ev.rows())
			if ev.b != nil {
				// Materialize the columnar event lazily: only when a tap is
				// actually registered for this (type, stage).
				if len(g.p.taps[tapKey{typ: ev.typ, stage: ev.stage}]) == 0 {
					continue
				}
				ev.ts, ev.b = ev.b.Tuples(), nil
			}
			g.p.tap(ev.typ, ev.stage, ev.ts)
			continue
		}
		if ev.stage == StageVirtualize {
			if len(g.p.virtSinks) == 0 {
				continue
			}
			if ev.b != nil {
				ev.ts, ev.b = ev.b.Tuples(), nil
			}
			for _, t := range ev.ts {
				for _, fn := range g.p.virtSinks {
					fn(t)
				}
			}
			continue
		}
		fns := g.p.typeSinks[ev.typ]
		if len(fns) == 0 {
			continue
		}
		if ev.b != nil {
			ev.ts, ev.b = ev.b.Tuples(), nil
		}
		for _, t := range ev.ts {
			for _, fn := range fns {
				fn(t)
			}
		}
	}
}

// NodeStats is a snapshot of one dataflow node's instrumentation
// counters — the hook later observability layers attach to.
type NodeStats struct {
	// Label names the node instance; Kind is "leg", "merge", "arbitrate",
	// "output", or "virtualize"; Level is the node's DAG depth.
	Label string
	Kind  string
	Level int
	// TuplesIn counts tuples delivered to the node (receptor batches for
	// legs); TuplesOut counts tuples the node emitted downstream.
	TuplesIn, TuplesOut int64
	// BatchesIn counts columnar deliveries, BatchRows their summed rows
	// (those rows are also in TuplesIn), and BatchFallbacks deliveries
	// that degraded to the tuple path (column-heterogeneous input).
	BatchesIn, BatchRows, BatchFallbacks int64
	// Advances counts epoch punctuations; AdvanceTime is their summed
	// latency and AdvanceP99 the 99th-percentile single-punctuation
	// latency (upper log-bucket bound, clamped to the observed max).
	Advances    int64
	AdvanceTime time.Duration
	AdvanceP99  time.Duration
	// Panics counts recovered panics in the node's process/advance
	// calls; Quarantined reports whether a panic under supervision has
	// taken the node permanently out of service.
	Panics      int64
	Quarantined bool
}

// NodeStats reports per-node instrumentation in the graph's topological
// node order. Safe to call from any goroutine, including while a Step is
// executing: each counter is read atomically, so the snapshot is a
// consistent point-in-time view of every individual counter (counters
// may be mid-epoch relative to one another).
func (p *Processor) NodeStats() []NodeStats {
	g := p.graph
	out := make([]NodeStats, len(g.nodes))
	for i, n := range g.nodes {
		st := &g.stats[i]
		adv := st.advance.Snapshot()
		out[i] = NodeStats{
			Label:          n.label(),
			Kind:           n.kindName(),
			Level:          g.level[i],
			TuplesIn:       st.tuplesIn.Load(),
			TuplesOut:      st.tuplesOut.Load(),
			BatchesIn:      st.batchesIn.Load(),
			BatchRows:      st.batchRows.Load(),
			BatchFallbacks: st.batchFallbacks.Load(),
			Advances:       adv.Count,
			AdvanceTime:    time.Duration(adv.Sum),
			AdvanceP99:     time.Duration(adv.P99),
			Panics:         st.panics.Load(),
			Quarantined:    g.quarantined[i].Load(),
		}
	}
	return out
}
