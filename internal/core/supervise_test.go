package core

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"esp/internal/receptor"
	"esp/internal/stream"
)

var moteTempSchema = stream.MustSchema(stream.Field{Name: "temp", Kind: stream.KindFloat})

// tempTrace builds one reading per second at 1..n s.
func tempTrace(n, base int) []stream.Tuple {
	out := make([]stream.Tuple, n)
	for i := range out {
		out[i] = stream.NewTuple(at(float64(i+1)), stream.Float(float64(base+i)))
	}
	return out
}

// fakeClock is a virtual wall clock shared between the supervisor's Now
// and receptor.Faulty's SleepFn, making slow-poll faults and deadline
// decisions fully deterministic.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Sleep(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func healthOf(hs []ReceptorHealth, id string) ReceptorHealth {
	for _, h := range hs {
		if h.ID == id {
			return h
		}
	}
	return ReceptorHealth{}
}

// TestSupervisedPanicAndHangDeployment is the issue's acceptance
// scenario: one receptor panics permanently, one hangs past the Poll
// deadline for a bounded window. The run must complete every epoch,
// quarantine both receptors, readmit the one that recovers, and produce
// identical output on a rerun.
func TestSupervisedPanicAndHangDeployment(t *testing.T) {
	const epochs = 40
	run := func() (string, []ReceptorHealth, []HealthTransition) {
		clock := &fakeClock{t: at(0)}
		dead := receptor.NewFaulty(
			receptor.NewReplay("m0", receptor.TypeMote, moteTempSchema, tempTrace(epochs, 0)), 1,
			receptor.Fault{Kind: receptor.FaultDie, From: at(5)})
		hung := receptor.NewFaulty(
			receptor.NewReplay("m1", receptor.TypeMote, moteTempSchema, tempTrace(epochs, 100)), 2,
			receptor.Fault{Kind: receptor.FaultSlowPoll, Sleep: 100 * time.Millisecond, From: at(8), Until: at(12)})
		hung.SleepFn = clock.Sleep
		ok := receptor.NewReplay("m2", receptor.TypeMote, moteTempSchema, tempTrace(epochs, 200))

		p, err := NewProcessor(&Deployment{
			Epoch:     time.Second,
			Receptors: []receptor.Receptor{dead, hung, ok},
			Groups:    singleGroup("room", receptor.TypeMote, "m0", "m1", "m2"),
			Pipelines: map[receptor.Type]*Pipeline{
				receptor.TypeMote: {
					Type:   receptor.TypeMote,
					Smooth: SmoothAvg("temp", time.Second),
					Merge:  MergeAvg("temp", time.Second),
				},
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		var transitions []HealthTransition
		p.EnableSupervision(SupervisorConfig{
			PollTimeout:  50 * time.Millisecond,
			SuspectAfter: 2,
			BackoffBase:  4 * time.Second,
			BackoffMax:   16 * time.Second,
			VirtualTime:  true,
			Now:          clock.Now,
			OnTransition: func(tr HealthTransition) { transitions = append(transitions, tr) },
		})
		var sb strings.Builder
		p.OnType(receptor.TypeMote, func(tu stream.Tuple) {
			fmt.Fprintf(&sb, "%d|%v\n", tu.Ts.Unix(), tu.Values)
		})
		stepped := 0
		p.OnEpoch(func(time.Time) { stepped++ })
		if err := p.Run(at(0), at(epochs)); err != nil {
			t.Fatalf("supervised run failed: %v", err)
		}
		if stepped != epochs {
			t.Fatalf("completed %d epochs, want %d", stepped, epochs)
		}
		return sb.String(), p.HealthStats(), transitions
	}

	out1, hs, trs := run()
	out2, _, _ := run()
	if out1 != out2 {
		t.Fatalf("supervised chaos run is not deterministic per seed")
	}
	if out1 == "" {
		t.Fatalf("run produced no output")
	}

	m0 := healthOf(hs, "m0")
	if m0.State != Quarantined || m0.Quarantines != 1 || m0.Readmits != 0 {
		t.Fatalf("m0 (dead) = %+v, want quarantined with no readmission", m0)
	}
	if m0.Panics < 2 {
		t.Fatalf("m0 panics = %d, want >= 2 (initial failures plus probes)", m0.Panics)
	}
	m1 := healthOf(hs, "m1")
	if m1.State != Healthy || m1.Quarantines != 1 || m1.Readmits != 1 {
		t.Fatalf("m1 (hung) = %+v, want readmitted to healthy", m1)
	}
	if m1.Timeouts != 2 {
		t.Fatalf("m1 timeouts = %d, want 2 (suspect then quarantine)", m1.Timeouts)
	}
	m2 := healthOf(hs, "m2")
	if m2.State != Healthy || m2.Failures != 0 || m2.Polls != epochs {
		t.Fatalf("m2 (healthy) = %+v, want %d clean polls", m2, epochs)
	}

	// The hung receptor's walk: healthy → suspect → quarantined → healthy.
	var m1Walk []string
	for _, tr := range trs {
		if tr.ReceptorID == "m1" {
			m1Walk = append(m1Walk, tr.From.String()+">"+tr.To.String())
		}
	}
	want := []string{"healthy>suspect", "suspect>quarantined", "quarantined>healthy"}
	if strings.Join(m1Walk, " ") != strings.Join(want, " ") {
		t.Fatalf("m1 transitions = %v, want %v", m1Walk, want)
	}
}

// blockingReceptor hangs its first Poll until released — the
// device-wedged-forever case the production watchdog must survive.
type blockingReceptor struct {
	id      string
	release chan struct{}
	calls   atomic.Int32
}

func (r *blockingReceptor) ID() string             { return r.id }
func (r *blockingReceptor) Type() receptor.Type    { return receptor.TypeMote }
func (r *blockingReceptor) Schema() *stream.Schema { return moteTempSchema }
func (r *blockingReceptor) Poll(now time.Time) []stream.Tuple {
	if r.calls.Add(1) == 1 {
		<-r.release
	}
	return nil
}

// TestWatchdogTimeoutLiveness exercises the real (wall-clock) watchdog:
// a receptor that never returns must not stall the run — the poll is
// abandoned at the deadline, later epochs skip the receptor while the
// abandoned goroutine is in flight, and the receptor quarantines.
func TestWatchdogTimeoutLiveness(t *testing.T) {
	stuck := &blockingReceptor{id: "m0", release: make(chan struct{})}
	defer close(stuck.release)
	ok := receptor.NewReplay("m1", receptor.TypeMote, moteTempSchema, tempTrace(6, 0))
	p, err := NewProcessor(&Deployment{
		Epoch:     time.Second,
		Receptors: []receptor.Receptor{stuck, ok},
		Groups:    singleGroup("room", receptor.TypeMote, "m0", "m1"),
	})
	if err != nil {
		t.Fatal(err)
	}
	p.EnableSupervision(SupervisorConfig{
		PollTimeout:  10 * time.Millisecond,
		SuspectAfter: 2,
		BackoffBase:  time.Hour, // no probes within the run
	})
	done := make(chan error, 1)
	go func() { done <- p.Run(at(0), at(6)) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run failed: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("supervised run deadlocked on a hung receptor")
	}
	h := healthOf(p.HealthStats(), "m0")
	if h.State != Quarantined {
		t.Fatalf("stuck receptor state = %s, want quarantined", h.State)
	}
	if h.Timeouts != 1 {
		t.Fatalf("timeouts = %d, want 1 (single-flight: later epochs skip)", h.Timeouts)
	}
	if h.Skipped == 0 {
		t.Fatalf("no skipped polls recorded while the abandoned poll was in flight")
	}
	if healthOf(p.HealthStats(), "m1").Failures != 0 {
		t.Fatalf("healthy receptor reported failures")
	}
}

// panicStage is a Merge stage whose operator panics at every advance
// from a given sim-time on — a corrupt-operator-state stand-in.
func panicStage(from time.Time) Stage {
	return FuncStage{
		Name: "panic-at",
		Fn: func(in *stream.Schema, env BuildEnv) (stream.Operator, error) {
			return &panicOp{from: from}, nil
		},
	}
}

type panicOp struct {
	in   *stream.Schema
	from time.Time
}

func (o *panicOp) Open(in *stream.Schema) error { o.in = in; return nil }
func (o *panicOp) Schema() *stream.Schema       { return o.in }
func (o *panicOp) Process(t stream.Tuple) ([]stream.Tuple, error) {
	return []stream.Tuple{t}, nil
}
func (o *panicOp) Advance(now time.Time) ([]stream.Tuple, error) {
	if !now.Before(o.from) {
		panic("operator state corrupted")
	}
	return nil, nil
}
func (o *panicOp) Close() ([]stream.Tuple, error) { return nil, nil }

func panickingDeployment(t *testing.T) *Processor {
	t.Helper()
	p, err := NewProcessor(&Deployment{
		Epoch:     time.Second,
		Receptors: []receptor.Receptor{receptor.NewReplay("m0", receptor.TypeMote, moteTempSchema, tempTrace(8, 0))},
		Groups:    singleGroup("room", receptor.TypeMote, "m0"),
		Pipelines: map[receptor.Type]*Pipeline{
			receptor.TypeMote: {Type: receptor.TypeMote, Merge: panicStage(at(3))},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestNodePanicIsolation: under supervision a panicking dataflow node is
// quarantined and the run continues; unsupervised, the panic surfaces as
// a labelled Step error.
func TestNodePanicIsolation(t *testing.T) {
	sup := panickingDeployment(t)
	sup.EnableSupervision(SupervisorConfig{})
	if err := sup.Run(at(0), at(8)); err != nil {
		t.Fatalf("supervised run failed: %v", err)
	}
	var merge NodeStats
	for _, ns := range sup.NodeStats() {
		if ns.Kind == "merge" {
			merge = ns
		}
	}
	if merge.Panics != 1 || !merge.Quarantined {
		t.Fatalf("merge node = %+v, want 1 panic and quarantined", merge)
	}
	// Quarantined at the epoch-3 advance: punctuation stops afterwards.
	if merge.Advances != 3 {
		t.Fatalf("merge advances = %d, want 3 (no punctuation after quarantine)", merge.Advances)
	}

	unsup := panickingDeployment(t)
	err := unsup.Run(at(0), at(8))
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("unsupervised run error = %v, want node panic error", err)
	}
}

// TestNodePanicIsolationParallel is the same scenario on the parallel
// scheduler: the panic happens on a pool worker and must quarantine the
// node without corrupting the barrier protocol.
func TestNodePanicIsolationParallel(t *testing.T) {
	p := panickingDeployment(t)
	s := NewParallelScheduler(4)
	defer s.Close()
	p.SetScheduler(s)
	p.EnableSupervision(SupervisorConfig{})
	if err := p.Run(at(0), at(8)); err != nil {
		t.Fatalf("supervised parallel run failed: %v", err)
	}
	for _, ns := range p.NodeStats() {
		if ns.Kind == "merge" && (ns.Panics != 1 || !ns.Quarantined) {
			t.Fatalf("merge node = %+v, want 1 panic and quarantined", ns)
		}
	}
}

// TestMergeVoteLiveDegradation: as group members die and quarantine, the
// live quorum rescales where a fixed MergeVote threshold under-reports.
func TestMergeVoteLiveDegradation(t *testing.T) {
	const epochs = 10
	onSchema := stream.MustSchema(stream.Field{Name: "value", Kind: stream.KindString})
	onTrace := func() []stream.Tuple {
		out := make([]stream.Tuple, epochs)
		for i := range out {
			out[i] = stream.NewTuple(at(float64(i+1)), stream.String("ON"))
		}
		return out
	}
	build := func(merge Stage) *Processor {
		a := receptor.NewFaulty(
			receptor.NewReplay("x0", receptor.TypeMotion, onSchema, onTrace()), 1,
			receptor.Fault{Kind: receptor.FaultDie, From: at(3)})
		b := receptor.NewReplay("x1", receptor.TypeMotion, onSchema, onTrace())
		c := receptor.NewFaulty(
			receptor.NewReplay("x2", receptor.TypeMotion, onSchema, onTrace()), 2,
			receptor.Fault{Kind: receptor.FaultDie, From: at(6)})
		p, err := NewProcessor(&Deployment{
			Epoch:     time.Second,
			Receptors: []receptor.Receptor{a, b, c},
			Groups:    singleGroup("hall", receptor.TypeMotion, "x0", "x1", "x2"),
			Pipelines: map[receptor.Type]*Pipeline{
				receptor.TypeMotion: {Type: receptor.TypeMotion, Merge: merge},
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		p.EnableSupervision(SupervisorConfig{SuspectAfter: 1, BackoffBase: time.Hour})
		return p
	}
	countOn := func(p *Processor) int {
		n := 0
		p.OnType(receptor.TypeMotion, func(stream.Tuple) { n++ })
		if err := p.Run(at(0), at(epochs)); err != nil {
			t.Fatal(err)
		}
		return n
	}
	// Live quorum: 3 devices need 2 votes, 2 need 2, 1 needs 1 — the
	// group keeps reporting as members die.
	if got := countOn(build(MergeVoteLive(time.Second, 0.6))); got != epochs {
		t.Fatalf("MergeVoteLive fired %d of %d epochs", got, epochs)
	}
	// The fixed threshold goes silent once fewer than 2 voters remain.
	if got := countOn(build(MergeVote(time.Second, 2))); got >= epochs {
		t.Fatalf("fixed MergeVote fired %d epochs; expected under-reporting after deaths", got)
	}
}

// TestRunContextCancel: both run loops stop at the next epoch boundary
// once the context is cancelled and report ctx.Err().
func TestRunContextCancel(t *testing.T) {
	build := func() *Processor {
		p, err := NewProcessor(&Deployment{
			Epoch:     time.Second,
			Receptors: []receptor.Receptor{receptor.NewReplay("m0", receptor.TypeMote, moteTempSchema, tempTrace(100, 0))},
			Groups:    singleGroup("room", receptor.TypeMote, "m0"),
		})
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	for name, run := range map[string]func(*Processor, context.Context) error{
		"run":        func(p *Processor, ctx context.Context) error { return p.RunContext(ctx, at(0), at(100)) },
		"concurrent": func(p *Processor, ctx context.Context) error { return p.RunConcurrentContext(ctx, at(0), at(100)) },
	} {
		t.Run(name, func(t *testing.T) {
			p := build()
			ctx, cancel := context.WithCancel(context.Background())
			epochs := 0
			p.OnEpoch(func(time.Time) {
				epochs++
				if epochs == 3 {
					cancel()
				}
			})
			if err := run(p, ctx); err != context.Canceled {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
			if epochs != 3 {
				t.Fatalf("ran %d epochs after cancel, want exactly 3", epochs)
			}
		})
	}
}

// TestConcurrentQuarantineRace hammers health and node snapshots while a
// supervised parallel run quarantines a panicking receptor — the -race
// exercise of the supervisor's locking (run via `make race`).
func TestConcurrentQuarantineRace(t *testing.T) {
	const epochs = 30
	bad := receptor.NewFaulty(
		receptor.NewReplay("m0", receptor.TypeMote, moteTempSchema, tempTrace(epochs, 0)), 1,
		receptor.Fault{Kind: receptor.FaultPanic, From: at(5), Until: at(12)})
	ok := receptor.NewReplay("m1", receptor.TypeMote, moteTempSchema, tempTrace(epochs, 100))
	p, err := NewProcessor(&Deployment{
		Epoch:     time.Second,
		Receptors: []receptor.Receptor{bad, ok},
		Groups:    singleGroup("room", receptor.TypeMote, "m0", "m1"),
		Pipelines: map[receptor.Type]*Pipeline{
			receptor.TypeMote: {
				Type:   receptor.TypeMote,
				Smooth: SmoothAvg("temp", time.Second),
				Merge:  MergeAvg("temp", time.Second),
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	s := NewParallelScheduler(4)
	defer s.Close()
	p.SetScheduler(s)
	p.EnableSupervision(SupervisorConfig{SuspectAfter: 2, BackoffBase: 3 * time.Second, JitterFrac: 0.2, Seed: 9})

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		live := p.Live()
		for {
			select {
			case <-stop:
				return
			default:
				p.HealthStats()
				p.NodeStats()
				live.LiveCount("room")
			}
		}
	}()
	err = p.RunConcurrent(at(0), at(epochs))
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}
	h := healthOf(p.HealthStats(), "m0")
	if h.Quarantines == 0 {
		t.Fatalf("panicking receptor was never quarantined: %+v", h)
	}
	if h.Readmits == 0 {
		t.Fatalf("recovered receptor was never readmitted: %+v", h)
	}
}
