package core

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
	"time"

	"esp/internal/receptor"
	"esp/internal/stream"
	"esp/internal/telemetry"
)

// rfidTelemetryProcessor builds the one-receptor RFID deployment used by
// the stats tests (Point drops the corrupt read, Smooth counts tags).
func rfidTelemetryProcessor(t *testing.T) *Processor {
	t.Helper()
	rec := &fakeReceptor{id: "r0", typ: receptor.TypeRFID, schema: rfidRaw,
		queue: []stream.Tuple{
			rfidRead(0.2, "A", true),
			rfidRead(0.4, "B", false), // dropped by Point
		}}
	p, err := NewProcessor(&Deployment{
		Epoch:     time.Second,
		Receptors: []receptor.Receptor{rec},
		Groups:    singleGroup("shelf0", receptor.TypeRFID, "r0"),
		Pipelines: map[receptor.Type]*Pipeline{
			receptor.TypeRFID: {
				Type:   receptor.TypeRFID,
				Point:  PointChecksum("checksum_ok"),
				Smooth: SmoothTagCount(time.Second),
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestTelemetryUnifiedSnapshot(t *testing.T) {
	p := rfidTelemetryProcessor(t)
	statsSnap := p.EnableStats() // implies EnableTelemetry
	if !p.Telemetry().Enabled() {
		t.Fatal("EnableStats did not enable telemetry")
	}
	if err := p.Run(at(0), at(1)); err != nil {
		t.Fatal(err)
	}
	s := p.Telemetry().Snapshot()

	// Per-node counters and advance-latency histograms.
	if got := s.Counters["node.leg rfid r0@shelf0.tuples_in"]; got != 2 {
		t.Errorf("leg tuples_in = %d, want 2", got)
	}
	if got := s.Counters["node.output rfid.tuples_in"]; got != 1 {
		t.Errorf("output tuples_in = %d, want 1", got)
	}
	h, ok := s.Histograms["node.leg rfid r0@shelf0.advance_ns"]
	if !ok || h.Count != 1 {
		t.Errorf("leg advance histogram = %+v ok=%v, want 1 observation", h, ok)
	}

	// Stage accounting: polled input plus per-stage released counts.
	if got := s.Counters["poll.rfid.tuples"]; got != 2 {
		t.Errorf("polled = %d, want 2", got)
	}
	if got := s.Counters["stage.rfid/Point.tuples"]; got != 1 {
		t.Errorf("Point stage = %d, want 1 (corrupt read dropped)", got)
	}
	if got := s.Counters["stage.rfid/Smooth.tuples"]; got != 1 {
		t.Errorf("Smooth stage = %d, want 1", got)
	}

	// NodeStats and EnableStats are views over the same registry.
	stats := statsSnap()
	for key, want := range map[string]int64{
		"rfid/Point":     s.Counters["stage.rfid/Point.tuples"],
		"rfid/Smooth":    s.Counters["stage.rfid/Smooth.tuples"],
		"rfid/Arbitrate": s.Counters["stage.rfid/Arbitrate.tuples"],
	} {
		if stats[key] != want {
			t.Errorf("Stats[%q] = %d, registry says %d", key, stats[key], want)
		}
	}
	var legStats *NodeStats
	for i, ns := range p.NodeStats() {
		if ns.Label == "leg rfid r0@shelf0" {
			legStats = &p.NodeStats()[i]
		}
	}
	if legStats == nil || legStats.TuplesIn != 2 || legStats.Advances != 1 {
		t.Errorf("NodeStats leg = %+v, want TuplesIn=2 Advances=1", legStats)
	}
}

func TestChannelDroppedSurfacedInSnapshot(t *testing.T) {
	sch := stream.MustSchema(stream.Field{Name: "v", Kind: stream.KindFloat})
	ch := receptor.NewChannel("edge0", receptor.TypeMote, sch)
	ch.SetCap(2)
	for i := 0; i < 5; i++ { // 3 evicted
		ch.Publish(stream.NewTuple(at(float64(i)*0.1), stream.Float(float64(i))))
	}
	p, err := NewProcessor(&Deployment{
		Epoch:     time.Second,
		Receptors: []receptor.Receptor{ch},
		Groups:    singleGroup("room", receptor.TypeMote, "edge0"),
	})
	if err != nil {
		t.Fatal(err)
	}
	s := p.Telemetry().Snapshot()
	if got := s.Gauges["receptor.edge0.channel_dropped"]; got != 3 {
		t.Errorf("channel_dropped gauge = %d, want 3", got)
	}
	if got := s.Gauges["receptor.edge0.channel_pending"]; got != 2 {
		t.Errorf("channel_pending gauge = %d, want 2", got)
	}
	if err := p.Step(at(1)); err != nil {
		t.Fatal(err)
	}
	if got := p.Telemetry().Snapshot().Gauges["receptor.edge0.channel_pending"]; got != 0 {
		t.Errorf("channel_pending after drain = %d, want 0", got)
	}
}

func TestLineageFiveSpansInOrder(t *testing.T) {
	p := rfidTelemetryProcessor(t)
	lin := p.EnableLineage(1, 42) // sample every reading
	if err := p.Run(at(0), at(1)); err != nil {
		t.Fatal(err)
	}
	traces := lin.Traces()
	if len(traces) != 2 {
		t.Fatalf("traces = %d, want 2 (sampleN=1, two readings)", len(traces))
	}
	wantStages := []string{"Point", "Smooth", "Merge", "Arbitrate", "Virtualize"}
	for _, tr := range traces {
		if tr.Receptor != "r0" || tr.Type != "rfid" {
			t.Errorf("trace identity = %s/%s", tr.Receptor, tr.Type)
		}
		if len(tr.Spans) != len(wantStages) {
			t.Fatalf("trace has %d spans, want 5: %+v", len(tr.Spans), tr.Spans)
		}
		for i, span := range tr.Spans {
			if span.Stage != wantStages[i] {
				t.Errorf("span %d = %q, want %q", i, span.Stage, wantStages[i])
			}
			if !span.Epoch.Equal(at(1)) {
				t.Errorf("span %d epoch = %v, want %v", i, span.Epoch, at(1))
			}
		}
	}
	// Both readings share the epoch cohort: 2 polled, Point released 1.
	point := traces[0].Spans[0]
	if point.In != 2 || point.Out != 1 || point.Decision != "merge" {
		t.Errorf("Point span = %+v, want In=2 Out=1 merge", point)
	}
	// Merge and Virtualize are not configured here: pass-through spans.
	if d := traces[0].Spans[2].Decision; d != "pass-through" {
		t.Errorf("Merge span decision = %q, want pass-through", d)
	}
	if d := traces[0].Spans[4].Decision; d != "pass-through" {
		t.Errorf("Virtualize span decision = %q, want pass-through", d)
	}

	var buf bytes.Buffer
	if err := lin.DumpJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded []telemetry.Trace
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("lineage dump is not valid JSON: %v", err)
	}
	if len(decoded) != 2 || decoded[0].Spans[4].Stage != "Virtualize" {
		t.Fatalf("decoded dump = %+v", decoded)
	}
}

func TestLineageVirtualizeSpan(t *testing.T) {
	// Pass-through deployment with a bound Virtualize query: the fifth
	// span must reflect the virtualize output for bound types.
	moteSchema := stream.MustSchema(
		stream.Field{Name: "mote_id", Kind: stream.KindString},
		stream.Field{Name: "noise", Kind: stream.KindFloat},
	)
	x10Schema := stream.MustSchema(
		stream.Field{Name: "detector_id", Kind: stream.KindString},
		stream.Field{Name: "value", Kind: stream.KindString},
	)
	mote := &fakeReceptor{id: "m1", typ: receptor.TypeMote, schema: moteSchema, queue: []stream.Tuple{
		stream.NewTuple(at(0.2), stream.String("m1"), stream.Float(800)),
	}}
	x10 := &fakeReceptor{id: "x1", typ: receptor.TypeMotion, schema: x10Schema, queue: []stream.Tuple{
		stream.NewTuple(at(0.4), stream.String("x1"), stream.String("ON")),
	}}
	rfid := &fakeReceptor{id: "r0", typ: receptor.TypeRFID, schema: rfidRaw}
	groups := receptor.NewGroups()
	groups.MustAdd(receptor.Group{Name: "sound", Type: receptor.TypeMote, Members: []string{"m1"}})
	groups.MustAdd(receptor.Group{Name: "motion", Type: receptor.TypeMotion, Members: []string{"x1"}})
	groups.MustAdd(receptor.Group{Name: "badge", Type: receptor.TypeRFID, Members: []string{"r0"}})
	p, err := NewProcessor(&Deployment{
		Epoch:     time.Second,
		Receptors: []receptor.Receptor{mote, x10, rfid},
		Groups:    groups,
		Virtualize: &VirtualizeSpec{
			Query: PersonDetectorQuery(525, 2),
			Bind: map[string]receptor.Type{
				"sensors_input": receptor.TypeMote,
				"rfid_input":    receptor.TypeRFID,
				"motion_input":  receptor.TypeMotion,
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	lin := p.EnableLineage(1, 7)
	if err := p.Run(at(0), at(1)); err != nil {
		t.Fatal(err)
	}
	traces := lin.Traces()
	if len(traces) != 2 { // one mote reading + one motion reading
		t.Fatalf("traces = %d, want 2", len(traces))
	}
	for _, tr := range traces {
		virt := tr.Spans[4]
		if virt.Stage != "Virtualize" {
			t.Fatalf("span 4 = %q", virt.Stage)
		}
		// Loud noise + motion = 2 votes: the detector fires this epoch.
		if virt.Out != 1 {
			t.Errorf("%s virtualize span out = %d, want 1 detection", tr.Type, virt.Out)
		}
		if virt.Decision == "pass-through" {
			t.Errorf("%s virtualize span decision = pass-through, want configured", tr.Type)
		}
	}
}

// TestTelemetryDisabledZeroAlloc pins the disabled-path cost: the stage
// accounting a node event triggers must be a single atomic load and no
// allocations when telemetry is off.
func TestTelemetryDisabledZeroAlloc(t *testing.T) {
	p := rfidTelemetryProcessor(t)
	if p.Telemetry().Enabled() {
		t.Fatal("telemetry must start disabled")
	}
	allocs := testing.AllocsPerRun(1000, func() {
		p.countStage(receptor.TypeRFID, StagePoint, 1)
		p.countStage("", StageVirtualize, 1)
	})
	if allocs != 0 {
		t.Fatalf("disabled countStage allocates %v per run, want 0", allocs)
	}
	if got := p.Telemetry().Snapshot().Counters["stage.rfid/Point.tuples"]; got != 0 {
		t.Fatalf("disabled countStage recorded %d tuples", got)
	}
}

// TestTelemetrySnapshotRaceWithRunConcurrent hammers the unified
// snapshot (and the lineage dump) while RunConcurrent is polling on
// worker goroutines — run under -race via the Makefile check target.
func TestTelemetrySnapshotRaceWithRunConcurrent(t *testing.T) {
	dep := shelfSchedDeployment(t)
	p, err := NewProcessor(dep)
	if err != nil {
		t.Fatal(err)
	}
	sched := NewParallelScheduler(4)
	defer sched.Close()
	p.SetScheduler(sched)
	lin := p.EnableLineage(4, 99)

	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		var buf bytes.Buffer
		for {
			select {
			case <-done:
				return
			default:
			}
			s := p.Telemetry().Snapshot()
			for k, v := range s.Counters {
				if v < 0 {
					t.Errorf("negative counter %s in concurrent snapshot", k)
					return
				}
			}
			buf.Reset()
			if err := lin.DumpJSON(&buf); err != nil {
				t.Errorf("concurrent lineage dump: %v", err)
				return
			}
		}
	}()

	start := time.Unix(0, 0).UTC()
	if err := p.RunConcurrent(start, start.Add(20*time.Second)); err != nil {
		t.Fatal(err)
	}
	close(done)
	wg.Wait()
	if lin.Len() == 0 {
		t.Error("no lineage traces recorded at 1/4 sampling over a 20s shelf run")
	}
}
