package core

import (
	"strings"
	"testing"
	"time"

	"esp/internal/receptor"
	"esp/internal/stream"
)

func at(sec float64) time.Time {
	return time.Unix(0, int64(sec*float64(time.Second))).UTC()
}

// fakeReceptor replays scripted tuples: each Poll(now) returns the queued
// tuples with Ts <= now.
type fakeReceptor struct {
	id     string
	typ    receptor.Type
	schema *stream.Schema
	queue  []stream.Tuple
}

func (f *fakeReceptor) ID() string             { return f.id }
func (f *fakeReceptor) Type() receptor.Type    { return f.typ }
func (f *fakeReceptor) Schema() *stream.Schema { return f.schema }
func (f *fakeReceptor) Poll(now time.Time) []stream.Tuple {
	var out []stream.Tuple
	for len(f.queue) > 0 && !f.queue[0].Ts.After(now) {
		out = append(out, f.queue[0])
		f.queue = f.queue[1:]
	}
	return out
}

var rfidRaw = stream.MustSchema(
	stream.Field{Name: "tag_id", Kind: stream.KindString},
	stream.Field{Name: "checksum_ok", Kind: stream.KindBool},
)

func rfidRead(sec float64, tag string, ok bool) stream.Tuple {
	return stream.NewTuple(at(sec), stream.String(tag), stream.Bool(ok))
}

func singleGroup(name string, typ receptor.Type, members ...string) *receptor.Groups {
	g := receptor.NewGroups()
	g.MustAdd(receptor.Group{Name: name, Type: typ, Members: members})
	return g
}

func TestProcessorAnnotatesStreams(t *testing.T) {
	rec := &fakeReceptor{id: "r0", typ: receptor.TypeRFID, schema: rfidRaw,
		queue: []stream.Tuple{rfidRead(0.5, "A", true)}}
	p, err := NewProcessor(&Deployment{
		Epoch:     time.Second,
		Receptors: []receptor.Receptor{rec},
		Groups:    singleGroup("shelf0", receptor.TypeRFID, "r0"),
	})
	if err != nil {
		t.Fatal(err)
	}
	sch, ok := p.TypeSchema(receptor.TypeRFID)
	if !ok {
		t.Fatal("no type schema")
	}
	if sch.String() != "(receptor_id string, spatial_granule string, tag_id string, checksum_ok bool)" {
		t.Errorf("schema = %s", sch)
	}
	var got []stream.Tuple
	p.OnType(receptor.TypeRFID, func(tu stream.Tuple) { got = append(got, tu) })
	if err := p.Run(at(0), at(1)); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("got %v", got)
	}
	if got[0].Values[0] != stream.String("r0") || got[0].Values[1] != stream.String("shelf0") {
		t.Errorf("annotation = %v", got[0])
	}
}

func TestProcessorPointStage(t *testing.T) {
	rec := &fakeReceptor{id: "r0", typ: receptor.TypeRFID, schema: rfidRaw,
		queue: []stream.Tuple{
			rfidRead(0.2, "A", true),
			rfidRead(0.4, "B", false), // corrupt: dropped by Point
		}}
	p, err := NewProcessor(&Deployment{
		Epoch:     time.Second,
		Receptors: []receptor.Receptor{rec},
		Groups:    singleGroup("shelf0", receptor.TypeRFID, "r0"),
		Pipelines: map[receptor.Type]*Pipeline{
			receptor.TypeRFID: {Type: receptor.TypeRFID, Point: PointChecksum("checksum_ok")},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	var got []stream.Tuple
	p.OnType(receptor.TypeRFID, func(tu stream.Tuple) { got = append(got, tu) })
	if err := p.Run(at(0), at(1)); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Values[2] != stream.String("A") {
		t.Fatalf("got %v, want only tag A", got)
	}
	// checksum_ok projected away; annotations intact.
	sch, _ := p.TypeSchema(receptor.TypeRFID)
	if sch.String() != "(receptor_id string, spatial_granule string, tag_id string)" {
		t.Errorf("schema = %s", sch)
	}
}

// TestProcessorSmoothArbitrate wires the paper's §4 RFID pipeline in
// miniature: two shelves, Smooth (Query 2) then Arbitrate (Query 3).
func TestProcessorSmoothArbitrate(t *testing.T) {
	r0 := &fakeReceptor{id: "r0", typ: receptor.TypeRFID, schema: rfidRaw, queue: []stream.Tuple{
		rfidRead(0.1, "X", true), rfidRead(0.3, "X", true), rfidRead(0.5, "X", true),
	}}
	r1 := &fakeReceptor{id: "r1", typ: receptor.TypeRFID, schema: rfidRaw, queue: []stream.Tuple{
		rfidRead(0.2, "X", true), // reads X once: loses arbitration
		rfidRead(0.4, "Y", true),
	}}
	groups := receptor.NewGroups()
	groups.MustAdd(receptor.Group{Name: "shelf0", Type: receptor.TypeRFID, Members: []string{"r0"}})
	groups.MustAdd(receptor.Group{Name: "shelf1", Type: receptor.TypeRFID, Members: []string{"r1"}})
	p, err := NewProcessor(&Deployment{
		Epoch:     time.Second,
		Receptors: []receptor.Receptor{r0, r1},
		Groups:    groups,
		Pipelines: map[receptor.Type]*Pipeline{
			receptor.TypeRFID: {
				Type:      receptor.TypeRFID,
				Smooth:    SmoothTagCount(2 * time.Second),
				Arbitrate: ArbitrateMaxSum("tag_id", "n"),
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	var got []stream.Tuple
	p.OnType(receptor.TypeRFID, func(tu stream.Tuple) { got = append(got, tu) })
	if err := p.Run(at(0), at(1)); err != nil {
		t.Fatal(err)
	}
	attribution := map[string]string{}
	for _, tu := range got {
		attribution[tu.Values[1].AsString()] = tu.Values[0].AsString()
	}
	if attribution["X"] != "shelf0" || attribution["Y"] != "shelf1" {
		t.Errorf("attribution = %v", attribution)
	}
}

// TestProcessorPointSmoothMerge wires the redwood pipeline: range filter,
// temporal average per mote, outlier-rejecting spatial average per group.
func TestProcessorPointSmoothMerge(t *testing.T) {
	moteSchema := stream.MustSchema(
		stream.Field{Name: "mote_id", Kind: stream.KindString},
		stream.Field{Name: "temp", Kind: stream.KindFloat},
	)
	mk := func(id string, temps ...float64) *fakeReceptor {
		f := &fakeReceptor{id: id, typ: receptor.TypeMote, schema: moteSchema}
		for i, v := range temps {
			f.queue = append(f.queue, stream.NewTuple(at(float64(i)+0.5), stream.String(id), stream.Float(v)))
		}
		return f
	}
	m1 := mk("m1", 20, 20.5)
	m2 := mk("m2", 21, 21.5)
	m3 := mk("m3", 30, 120) // drifts hot; 120 removed by Point, 30 by Merge
	p, err := NewProcessor(&Deployment{
		Epoch:     time.Second,
		Receptors: []receptor.Receptor{m1, m2, m3},
		Groups:    singleGroup("room", receptor.TypeMote, "m1", "m2", "m3"),
		Pipelines: map[receptor.Type]*Pipeline{
			receptor.TypeMote: {
				Type:   receptor.TypeMote,
				Point:  PointBelow("temp", 50),
				Smooth: SmoothAvg("temp", 2*time.Second),
				Merge:  MergeOutlierAvg("temp", 2*time.Second, 1.0),
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	var got []stream.Tuple
	p.OnType(receptor.TypeMote, func(tu stream.Tuple) { got = append(got, tu) })
	if err := p.Run(at(0), at(2)); err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Fatal("no merged output")
	}
	sch, _ := p.TypeSchema(receptor.TypeMote)
	ti := sch.MustIndex("temp")
	last := got[len(got)-1]
	avg := last.Values[ti].AsFloat()
	if avg < 20 || avg > 22 {
		t.Errorf("merged avg = %v, want ~20.75 (outlier mote rejected)", avg)
	}
	if gi := sch.MustIndex("spatial_granule"); last.Values[gi] != stream.String("room") {
		t.Errorf("granule = %v", last.Values[gi])
	}
}

func TestProcessorVirtualize(t *testing.T) {
	moteSchema := stream.MustSchema(
		stream.Field{Name: "mote_id", Kind: stream.KindString},
		stream.Field{Name: "noise", Kind: stream.KindFloat},
	)
	x10Schema := stream.MustSchema(
		stream.Field{Name: "detector_id", Kind: stream.KindString},
		stream.Field{Name: "value", Kind: stream.KindString},
	)
	mote := &fakeReceptor{id: "m1", typ: receptor.TypeMote, schema: moteSchema, queue: []stream.Tuple{
		stream.NewTuple(at(0.2), stream.String("m1"), stream.Float(800)), // loud
		stream.NewTuple(at(1.2), stream.String("m1"), stream.Float(400)), // quiet
	}}
	x10 := &fakeReceptor{id: "x1", typ: receptor.TypeMotion, schema: x10Schema, queue: []stream.Tuple{
		stream.NewTuple(at(0.4), stream.String("x1"), stream.String("ON")),
	}}
	rfid := &fakeReceptor{id: "r0", typ: receptor.TypeRFID, schema: rfidRaw}
	groups := receptor.NewGroups()
	groups.MustAdd(receptor.Group{Name: "office-sound", Type: receptor.TypeMote, Members: []string{"m1"}})
	groups.MustAdd(receptor.Group{Name: "office-motion", Type: receptor.TypeMotion, Members: []string{"x1"}})
	groups.MustAdd(receptor.Group{Name: "office-rfid", Type: receptor.TypeRFID, Members: []string{"r0"}})
	p, err := NewProcessor(&Deployment{
		Epoch:     time.Second,
		Receptors: []receptor.Receptor{mote, x10, rfid},
		Groups:    groups,
		Virtualize: &VirtualizeSpec{
			Query: PersonDetectorQuery(525, 2),
			Bind: map[string]receptor.Type{
				"sensors_input": receptor.TypeMote,
				"rfid_input":    receptor.TypeRFID,
				"motion_input":  receptor.TypeMotion,
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	var events []stream.Tuple
	p.OnVirtualize(func(tu stream.Tuple) { events = append(events, tu) })
	if err := p.Run(at(0), at(2)); err != nil {
		t.Fatal(err)
	}
	// Epoch 1: loud + motion = 2 votes -> detected. Epoch 2: quiet only.
	if len(events) != 1 || !events[0].Ts.Equal(at(1)) {
		t.Fatalf("events = %v, want one detection at t=1", events)
	}
	if p.VirtualizeSchema().String() != "(event string)" {
		t.Errorf("virtualize schema = %s", p.VirtualizeSchema())
	}
}

func TestProcessorTaps(t *testing.T) {
	rec := &fakeReceptor{id: "r0", typ: receptor.TypeRFID, schema: rfidRaw,
		queue: []stream.Tuple{rfidRead(0.2, "A", true), rfidRead(0.4, "B", false)}}
	p, err := NewProcessor(&Deployment{
		Epoch:     time.Second,
		Receptors: []receptor.Receptor{rec},
		Groups:    singleGroup("shelf0", receptor.TypeRFID, "r0"),
		Pipelines: map[receptor.Type]*Pipeline{
			receptor.TypeRFID: {
				Type:   receptor.TypeRFID,
				Point:  PointChecksum("checksum_ok"),
				Smooth: SmoothTagCount(time.Second),
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	var pointOut, smoothOut int
	p.Tap(receptor.TypeRFID, StagePoint, func(stream.Tuple) { pointOut++ })
	p.Tap(receptor.TypeRFID, StageSmooth, func(stream.Tuple) { smoothOut++ })
	if err := p.Run(at(0), at(1)); err != nil {
		t.Fatal(err)
	}
	if pointOut != 1 {
		t.Errorf("point tap saw %d tuples, want 1 (corrupt read dropped)", pointOut)
	}
	if smoothOut != 1 {
		t.Errorf("smooth tap saw %d tuples, want 1 (tag A count)", smoothOut)
	}
}

func TestProcessorMultiGroupReceptor(t *testing.T) {
	// A mote watching two rooms feeds both groups' pipelines.
	moteSchema := stream.MustSchema(
		stream.Field{Name: "mote_id", Kind: stream.KindString},
		stream.Field{Name: "temp", Kind: stream.KindFloat},
	)
	m := &fakeReceptor{id: "m1", typ: receptor.TypeMote, schema: moteSchema, queue: []stream.Tuple{
		stream.NewTuple(at(0.5), stream.String("m1"), stream.Float(20)),
	}}
	groups := receptor.NewGroups()
	groups.MustAdd(receptor.Group{Name: "roomA", Type: receptor.TypeMote, Members: []string{"m1"}})
	groups.MustAdd(receptor.Group{Name: "roomB", Type: receptor.TypeMote, Members: []string{"m1"}})
	p, err := NewProcessor(&Deployment{
		Epoch:     time.Second,
		Receptors: []receptor.Receptor{m},
		Groups:    groups,
	})
	if err != nil {
		t.Fatal(err)
	}
	granules := map[string]int{}
	p.OnType(receptor.TypeMote, func(tu stream.Tuple) {
		granules[tu.Values[1].AsString()]++
	})
	if err := p.Run(at(0), at(1)); err != nil {
		t.Fatal(err)
	}
	if granules["roomA"] != 1 || granules["roomB"] != 1 {
		t.Errorf("granule fan-out = %v", granules)
	}
}

func TestProcessorValidation(t *testing.T) {
	rec := &fakeReceptor{id: "r0", typ: receptor.TypeRFID, schema: rfidRaw}
	good := singleGroup("shelf0", receptor.TypeRFID, "r0")
	cases := []struct {
		name string
		dep  *Deployment
	}{
		{"zero epoch", &Deployment{Receptors: []receptor.Receptor{rec}, Groups: good}},
		{"no receptors", &Deployment{Epoch: time.Second, Groups: good}},
		{"no groups", &Deployment{Epoch: time.Second, Receptors: []receptor.Receptor{rec}}},
		{"ungrouped receptor", &Deployment{Epoch: time.Second, Receptors: []receptor.Receptor{rec},
			Groups: singleGroup("other", receptor.TypeRFID, "someone-else")}},
		{"duplicate receptor", &Deployment{Epoch: time.Second,
			Receptors: []receptor.Receptor{rec, rec}, Groups: good}},
		{"bad stage query", &Deployment{Epoch: time.Second, Receptors: []receptor.Receptor{rec}, Groups: good,
			Pipelines: map[receptor.Type]*Pipeline{
				receptor.TypeRFID: {Point: CQLStage{Query: "NOT SQL"}},
			}}},
		{"stage over missing column", &Deployment{Epoch: time.Second, Receptors: []receptor.Receptor{rec}, Groups: good,
			Pipelines: map[receptor.Type]*Pipeline{
				receptor.TypeRFID: {Point: PointBelow("temp", 50)},
			}}},
		{"virtualize unknown type", &Deployment{Epoch: time.Second, Receptors: []receptor.Receptor{rec}, Groups: good,
			Virtualize: &VirtualizeSpec{
				Query: PersonDetectorQuery(525, 2),
				Bind: map[string]receptor.Type{
					"sensors_input": receptor.TypeMote,
					"rfid_input":    receptor.TypeRFID,
					"motion_input":  receptor.TypeMotion,
				},
			}}},
	}
	for _, tc := range cases {
		rec.queue = nil
		if _, err := NewProcessor(tc.dep); err == nil {
			t.Errorf("%s: want error", tc.name)
		}
	}
}

func TestStageDescribe(t *testing.T) {
	long := CQLStage{Query: "SELECT " + strings.Repeat("tag_id, ", 20) + "tag_id FROM x"}
	if d := long.Describe(); len(d) > 70 {
		t.Errorf("Describe did not truncate: %q", d)
	}
	if d := (FuncStage{Name: "f"}).Describe(); d != "func: f" {
		t.Errorf("FuncStage describe = %q", d)
	}
	if d := SmoothTagCount(5 * time.Second).Describe(); !strings.Contains(d, "cql:") {
		t.Errorf("toolkit stage describe = %q", d)
	}
}

func TestCQLStageRejectsMultiStream(t *testing.T) {
	s := CQLStage{Query: `SELECT 'x' AS v FROM
		(SELECT 1 AS a FROM one [Range By 'NOW']) AS p,
		(SELECT 1 AS b FROM two [Range By 'NOW']) AS q
		WHERE p.a + q.b >= 2`}
	if _, err := s.Build(rfidRaw, BuildEnv{Epoch: time.Second}); err == nil {
		t.Error("multi-stream stage query: want error")
	}
}

func TestStageKindString(t *testing.T) {
	names := map[StageKind]string{
		StagePoint: "Point", StageSmooth: "Smooth", StageMerge: "Merge",
		StageArbitrate: "Arbitrate", StageVirtualize: "Virtualize",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
}
