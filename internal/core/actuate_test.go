package core

import (
	"testing"
	"time"

	"esp/internal/receptor"
	"esp/internal/sim"
	"esp/internal/stream"
)

// actuationDeployment builds a two-mote deployment with one starved mote.
func actuationDeployment(t *testing.T) (*Processor, []*sim.Mote) {
	t.Helper()
	good := sim.NewMote(1, "good", 0.9, sim.SensorModel{
		Name: "temp", Truth: func(time.Time) float64 { return 20 },
	})
	starved := sim.NewMote(1, "starved", 0.05, sim.SensorModel{
		Name: "temp", Truth: func(time.Time) float64 { return 20 },
	})
	groups := receptor.NewGroups()
	groups.MustAdd(receptor.Group{Name: "g0", Type: receptor.TypeMote, Members: []string{"good"}})
	groups.MustAdd(receptor.Group{Name: "g1", Type: receptor.TypeMote, Members: []string{"starved"}})
	p, err := NewProcessor(&Deployment{
		Epoch:     time.Minute,
		Receptors: []receptor.Receptor{good, starved},
		Groups:    groups,
		Pipelines: map[receptor.Type]*Pipeline{
			receptor.TypeMote: {Type: receptor.TypeMote, Smooth: SmoothAvg("temp", time.Minute)},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return p, []*sim.Mote{good, starved}
}

func TestActuatorSpeedsUpStarvedReceptor(t *testing.T) {
	p, motes := actuationDeployment(t)
	act, err := NewActuator(p, receptor.TypeMote, ActuationPolicy{
		Target: 0.5, Horizon: 5, Fast: 10 * time.Second, Slow: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Step epoch by epoch: the first horizon must actuate the starved
	// mote and leave the healthy one alone.
	start := time.Unix(0, 0).UTC()
	for i := 1; i <= 5; i++ {
		if err := p.Step(start.Add(time.Duration(i) * time.Minute)); err != nil {
			t.Fatal(err)
		}
	}
	if motes[1].SampleInterval() != 10*time.Second {
		t.Errorf("starved mote interval = %v, want actuated to 10s", motes[1].SampleInterval())
	}
	if motes[0].SampleInterval() != 0 {
		t.Errorf("healthy mote interval = %v, want untouched", motes[0].SampleInterval())
	}
	if act.Transitions != 1 || act.FastCount() != 1 {
		t.Errorf("transitions=%d fastCount=%d", act.Transitions, act.FastCount())
	}
}

func TestActuatorProbesSlowRate(t *testing.T) {
	// The actuator is bang-bang with probing: at a Fast rate generous
	// enough to satisfy the target, the next horizon restores the slow
	// rate to re-test whether the cheap rate suffices.
	p, motes := actuationDeployment(t)
	act, err := NewActuator(p, receptor.TypeMote, ActuationPolicy{
		Target: 0.5, Horizon: 5, Fast: time.Second, Slow: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Unix(0, 0).UTC()
	for i := 1; i <= 5; i++ {
		if err := p.Step(start.Add(time.Duration(i) * time.Minute)); err != nil {
			t.Fatal(err)
		}
	}
	if motes[1].SampleInterval() != time.Second {
		t.Fatalf("expected starved mote actuated, got %v", motes[1].SampleInterval())
	}
	// At 60 samples/epoch and 5% delivery the stream recovers, so the
	// second horizon restores the slow rate (the probe).
	for i := 6; i <= 10; i++ {
		if err := p.Step(start.Add(time.Duration(i) * time.Minute)); err != nil {
			t.Fatal(err)
		}
	}
	if motes[1].SampleInterval() != 0 {
		t.Errorf("recovered mote interval = %v, want restored to per-poll", motes[1].SampleInterval())
	}
	if act.Transitions != 2 {
		t.Errorf("transitions = %d, want 2 (fast, then probe back)", act.Transitions)
	}
}

func TestActuatorValidation(t *testing.T) {
	p, _ := actuationDeployment(t)
	bad := []ActuationPolicy{
		{Target: 0.5, Horizon: 0, Fast: time.Second},
		{Target: 0, Horizon: 5, Fast: time.Second},
		{Target: 1.5, Horizon: 5, Fast: time.Second},
		{Target: 0.5, Horizon: 5, Fast: 0},
	}
	for i, pol := range bad {
		if _, err := NewActuator(p, receptor.TypeMote, pol); err == nil {
			t.Errorf("policy %d: want error", i)
		}
	}
	if _, err := NewActuator(p, receptor.TypeRFID, ActuationPolicy{Target: 0.5, Horizon: 5, Fast: time.Second}); err == nil {
		t.Error("no actuatable receptors of type: want error")
	}
}

func TestMoteActuationSampling(t *testing.T) {
	m := sim.NewMote(1, "m", 1.0, sim.SensorModel{
		Name: "temp", Truth: func(time.Time) float64 { return 20 },
	})
	base := time.Unix(0, 0).UTC()
	// First poll: one sample regardless.
	if got := len(m.Poll(base.Add(time.Minute))); got != 1 {
		t.Fatalf("first poll = %d samples", got)
	}
	m.SetSampleInterval(15 * time.Second)
	out := m.Poll(base.Add(2 * time.Minute))
	if len(out) != 4 {
		t.Fatalf("actuated poll = %d samples, want 4 (every 15s in a 1m epoch)", len(out))
	}
	for i, tu := range out {
		want := base.Add(time.Minute + time.Duration(i+1)*15*time.Second)
		if !tu.Ts.Equal(want) {
			t.Errorf("sample %d at %v, want %v", i, tu.Ts, want)
		}
	}
	// Restore per-poll sampling.
	m.SetSampleInterval(0)
	if got := len(m.Poll(base.Add(3 * time.Minute))); got != 1 {
		t.Errorf("restored poll = %d samples", got)
	}
	// Negative interval clamps to 0.
	m.SetSampleInterval(-time.Second)
	if m.SampleInterval() != 0 {
		t.Errorf("negative interval = %v", m.SampleInterval())
	}
}

func TestModelStageRejectsDecoupledSensor(t *testing.T) {
	schema := stream.MustSchema(
		stream.Field{Name: "voltage", Kind: stream.KindFloat},
		stream.Field{Name: "temp", Kind: stream.KindFloat},
	)
	stage := PointModelOutlier("voltage", "temp", 4, 0.1, 10, 1)
	op, err := stage.Build(schema, BuildEnv{Epoch: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if err := op.Open(schema); err != nil {
		t.Fatal(err)
	}
	// Teach a clean correlation: temp = 100*(3 - voltage).
	for i := 0; i < 50; i++ {
		v := 2.7 + float64(i%10)*0.01
		tu := stream.NewTuple(at(float64(i)), stream.Float(v), stream.Float(100*(3-v)))
		out, err := op.Process(tu)
		if err != nil || len(out) != 1 {
			t.Fatalf("clean reading %d rejected: %v, %v", i, out, err)
		}
	}
	// A decoupled reading: voltage says ~25C, temp claims 80C.
	out, err := op.Process(stream.NewTuple(at(100), stream.Float(2.75), stream.Float(80)))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Errorf("decoupled reading passed: %v", out)
	}
	// NULLs pass through unjudged.
	out, _ = op.Process(stream.NewTuple(at(101), stream.Null(), stream.Float(80)))
	if len(out) != 1 {
		t.Error("NULL-x reading should pass through")
	}
}

func TestModelStageValidation(t *testing.T) {
	schema := stream.MustSchema(
		stream.Field{Name: "voltage", Kind: stream.KindFloat},
		stream.Field{Name: "label", Kind: stream.KindString},
	)
	cases := []Stage{
		PointModelOutlier("nope", "voltage", 4, 0.1, 10, 1),
		PointModelOutlier("voltage", "nope", 4, 0.1, 10, 1),
		PointModelOutlier("voltage", "label", 4, 0.1, 10, 1), // non-numeric
		PointModelOutlier("voltage", "voltage", 0, 0.1, 10, 1),
		PointModelOutlier("voltage", "voltage", 4, 0.1, 1, 1),
	}
	for i, s := range cases {
		op, err := s.Build(schema, BuildEnv{Epoch: time.Second})
		if err == nil {
			err = op.Open(schema)
		}
		if err == nil {
			t.Errorf("case %d: want error", i)
		}
	}
}
