package core

import (
	"math/rand"
	"time"

	"esp/internal/receptor"
	"esp/internal/stream"
)

// SupervisorConfig tunes receptor supervision (EnableSupervision). The
// zero value of every field has a sensible default, so
// EnableSupervision(SupervisorConfig{}) yields panic isolation with no
// poll deadline.
type SupervisorConfig struct {
	// PollTimeout is the per-receptor Poll deadline; zero disables the
	// deadline (panics are still isolated).
	PollTimeout time.Duration
	// SuspectAfter is how many consecutive failures quarantine a
	// receptor (default 2: first failure marks it suspect, the next
	// quarantines).
	SuspectAfter int
	// BackoffBase is the first quarantine duration (default 4 epochs);
	// each failed readmission probe doubles it up to BackoffMax
	// (default 16 × BackoffBase).
	BackoffBase, BackoffMax time.Duration
	// JitterFrac stretches each backoff by up to this fraction, drawn
	// from a per-receptor RNG seeded with Seed, so probes across
	// receptors decorrelate without losing per-seed determinism.
	JitterFrac float64
	Seed       int64
	// Now is the wall clock used to measure poll latency in VirtualTime
	// mode (default time.Now). Tests and the chaos harness inject a fake
	// clock shared with receptor.Faulty's SleepFn.
	Now func() time.Time
	// VirtualTime selects the deterministic guard: polls run inline
	// (panic-isolated), latency is measured with Now, and late results
	// are discarded after the fact. Without it the production watchdog
	// runs each poll on a goroutine and abandons it at the deadline —
	// protecting liveness, but leaving quarantine timing dependent on
	// real scheduling. Chaos runs that assert byte-identical output must
	// set VirtualTime.
	VirtualTime bool
	// OnTransition, if set, observes every health-state edge. Called on
	// the polling goroutine with no supervisor locks held.
	OnTransition func(HealthTransition)
}

// supervisor guards every receptor poll of one Processor: deadlines,
// panic isolation, and the per-receptor health state machine.
type supervisor struct {
	p      *Processor
	cfg    SupervisorConfig
	rules  healthRules
	health []*receptorHealth // parallel to dep.Receptors
	index  map[string]int    // receptor ID -> health index
}

// EnableSupervision turns on the fault-tolerant poll path: Poll panics
// and deadline overruns no longer crash or stall the run — the failing
// receptor walks the healthy → suspect → quarantined state machine and
// is readmitted by exponential-backoff probes (DESIGN.md §6). Node
// panics likewise quarantine the node instead of aborting the Step.
// Call before Run; calling again replaces the supervisor and resets all
// health state.
func (p *Processor) EnableSupervision(cfg SupervisorConfig) {
	if cfg.SuspectAfter <= 0 {
		cfg.SuspectAfter = 2
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = 4 * p.dep.Epoch
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = 16 * cfg.BackoffBase
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	s := &supervisor{
		p:   p,
		cfg: cfg,
		rules: healthRules{
			suspectAfter: cfg.SuspectAfter,
			backoffBase:  cfg.BackoffBase,
			backoffMax:   cfg.BackoffMax,
			jitterFrac:   cfg.JitterFrac,
		},
		index: make(map[string]int, len(p.dep.Receptors)),
	}
	for i, rec := range p.dep.Receptors {
		pfx := "receptor." + rec.ID() + "."
		h := newReceptorHealth(p.tel, pfx)
		if cfg.JitterFrac > 0 {
			h.rng = rand.New(rand.NewSource(cfg.Seed + int64(i)))
		}
		// Health-FSM state as a gauge (0 healthy, 1 suspect, 2
		// quarantined). Re-registering on a second EnableSupervision
		// rebinds the gauge to the fresh health object.
		hh := h
		p.tel.GaugeFunc(pfx+"state", func() int64 {
			hh.mu.Lock()
			defer hh.mu.Unlock()
			return int64(hh.state)
		})
		s.health = append(s.health, h)
		s.index[rec.ID()] = i
	}
	p.sup = s
}

// Supervised reports whether EnableSupervision has been called.
func (p *Processor) Supervised() bool { return p.sup != nil }

// poll is the supervised poll path for receptor r at sim-time now.
func (s *supervisor) poll(r int, now time.Time) []stream.Tuple {
	h := s.health[r]
	h.mu.Lock()
	if h.state == Quarantined && now.Before(h.retryAt) {
		h.mu.Unlock()
		h.skipped.Add(1)
		return nil
	}
	h.mu.Unlock()
	if h.inflight.Load() {
		// An abandoned timed-out poll is still running; issuing another
		// could violate the receptor's single-caller assumption.
		h.skipped.Add(1)
		s.record(h, r, now, pollStuck)
		return nil
	}
	// Poll latency is extended telemetry: timed only when the gate is on,
	// so the disabled path stays clock-call-free.
	timed := s.p.tel.Enabled()
	var t0 time.Time
	if timed {
		t0 = s.cfg.Now()
	}
	out, outcome := s.guardedPoll(r, now)
	if timed {
		h.pollLat.Observe(s.cfg.Now().Sub(t0))
	}
	h.polls.Add(1)
	if got := s.record(h, r, now, outcome); !got {
		return nil
	}
	return out
}

// record applies one poll outcome to the state machine and fires the
// transition callback; it reports whether the poll's data may be used.
func (s *supervisor) record(h *receptorHealth, r int, now time.Time, outcome pollOutcome) bool {
	var tr HealthTransition
	var fired bool
	h.mu.Lock()
	if outcome == pollOK {
		tr, fired = h.onSuccess(now)
	} else {
		h.failures.Add(1)
		switch outcome {
		case pollTimeout:
			h.timeouts.Add(1)
		case pollPanic:
			h.panics.Add(1)
		}
		tr, fired = h.onFailure(now, s.rules, outcome.cause())
	}
	h.mu.Unlock()
	if fired {
		tr.ReceptorID = s.p.dep.Receptors[r].ID()
		if s.cfg.OnTransition != nil {
			s.cfg.OnTransition(tr)
		}
	}
	if lg := s.p.logger; lg != nil {
		id := s.p.dep.Receptors[r].ID()
		if outcome == pollTimeout {
			lg.Warn("esp: poll deadline missed",
				"receptor", id, "timeout", s.cfg.PollTimeout, "epoch", now)
		}
		if fired {
			lg.Info("esp: receptor health transition",
				"receptor", id, "from", tr.From.String(), "to", tr.To.String(),
				"cause", tr.Cause, "epoch", now)
		}
	}
	return outcome == pollOK
}

// guardedPoll executes one Poll under the configured guard.
func (s *supervisor) guardedPoll(r int, now time.Time) ([]stream.Tuple, pollOutcome) {
	rec := s.p.dep.Receptors[r]
	if s.cfg.VirtualTime || s.cfg.PollTimeout <= 0 {
		// Inline, panic-isolated; in virtual mode a late result is
		// discarded after the fact — same data loss as the watchdog, but
		// decided by the injected clock, hence deterministic.
		var t0 time.Time
		deadline := s.cfg.VirtualTime && s.cfg.PollTimeout > 0
		if deadline {
			t0 = s.cfg.Now()
		}
		out, panicked := pollIsolated(rec, now)
		if panicked {
			return nil, pollPanic
		}
		if deadline && s.cfg.Now().Sub(t0) > s.cfg.PollTimeout {
			return nil, pollTimeout
		}
		return out, pollOK
	}
	// Production watchdog: run the poll on its own goroutine and abandon
	// it at the deadline. The abandoned goroutine keeps running until the
	// receptor returns; the inflight flag stops further polls from piling
	// up behind it, and is cleared when it finally finishes.
	h := s.health[r]
	type result struct {
		ts       []stream.Tuple
		panicked bool
	}
	done := make(chan result, 1)
	h.inflight.Store(true)
	go func() {
		ts, panicked := pollIsolated(rec, now)
		done <- result{ts: ts, panicked: panicked}
	}()
	select {
	case res := <-done:
		h.inflight.Store(false)
		if res.panicked {
			return nil, pollPanic
		}
		return res.ts, pollOK
	case <-time.After(s.cfg.PollTimeout):
		go func() {
			<-done
			h.inflight.Store(false)
		}()
		return nil, pollTimeout
	}
}

// pollIsolated calls rec.Poll with recover-based panic isolation.
func pollIsolated(rec receptor.Receptor, now time.Time) (ts []stream.Tuple, panicked bool) {
	defer func() {
		if r := recover(); r != nil {
			ts, panicked = nil, true
		}
	}()
	return rec.Poll(now), false
}

// HealthStats snapshots every receptor's supervision state in deployment
// receptor order. Safe from any goroutine; nil when the processor is not
// supervised.
func (p *Processor) HealthStats() []ReceptorHealth {
	s := p.sup
	if s == nil {
		return nil
	}
	out := make([]ReceptorHealth, len(s.health))
	for i, h := range s.health {
		h.mu.Lock()
		state, retryAt := h.state, h.retryAt
		h.mu.Unlock()
		out[i] = ReceptorHealth{
			ID:          p.dep.Receptors[i].ID(),
			State:       state,
			Polls:       h.polls.Load(),
			Skipped:     h.skipped.Load(),
			Failures:    h.failures.Load(),
			Timeouts:    h.timeouts.Load(),
			Panics:      h.panics.Load(),
			Quarantines: h.quarantines.Load(),
			Readmits:    h.readmits.Load(),
			NextProbe:   retryAt,
		}
	}
	return out
}

// LiveView exposes a proximity group's live membership — all members,
// minus those the supervisor currently holds in quarantine. Stages that
// scale thresholds to group size (MergeVoteLive) consult it at each
// punctuation so denominators track device health (paper §3.1.2 spatial
// granules, degraded per DESIGN.md §6).
type LiveView interface {
	// LiveCount reports the number of live members of the group.
	LiveCount(group string) int
	// LiveMembers lists the live members in registration order.
	LiveMembers(group string) []string
}

// liveView implements LiveView against the processor, resolving the
// supervisor at call time so EnableSupervision after NewProcessor (the
// normal order) is still honoured. Unsupervised processors report full
// membership.
type liveView struct {
	p *Processor
}

// LiveCount implements LiveView.
func (v liveView) LiveCount(group string) int { return len(v.LiveMembers(group)) }

// LiveMembers implements LiveView.
func (v liveView) LiveMembers(group string) []string {
	gr, ok := v.p.dep.Groups.Group(group)
	if !ok {
		return nil
	}
	s := v.p.sup
	if s == nil {
		return append([]string(nil), gr.Members...)
	}
	out := make([]string, 0, len(gr.Members))
	for _, id := range gr.Members {
		i, tracked := s.index[id]
		if tracked {
			h := s.health[i]
			h.mu.Lock()
			quarantined := h.state == Quarantined
			h.mu.Unlock()
			if quarantined {
				continue
			}
		}
		out = append(out, id)
	}
	return out
}

// Live returns the processor's live-membership view.
func (p *Processor) Live() LiveView { return liveView{p: p} }
