package core

import (
	"math/rand"
	"testing"
	"time"

	"esp/internal/telemetry"
)

var testRules = healthRules{
	suspectAfter: 2,
	backoffBase:  4 * time.Second,
	backoffMax:   16 * time.Second,
}

// TestHealthTransitions drives the state machine through every edge with
// a table of (event, expected transition) steps.
func TestHealthTransitions(t *testing.T) {
	type step struct {
		fail       bool
		wantFired  bool
		wantFrom   HealthState
		wantTo     HealthState
		wantState  HealthState
		wantStreak int
	}
	cases := []struct {
		name  string
		steps []step
	}{
		{
			name: "recover-from-suspect",
			steps: []step{
				{fail: true, wantFired: true, wantFrom: Healthy, wantTo: Suspect, wantState: Suspect, wantStreak: 1},
				{fail: false, wantFired: true, wantFrom: Suspect, wantTo: Healthy, wantState: Healthy},
				{fail: false, wantState: Healthy},
			},
		},
		{
			name: "quarantine-then-readmit",
			steps: []step{
				{fail: true, wantFired: true, wantFrom: Healthy, wantTo: Suspect, wantState: Suspect, wantStreak: 1},
				{fail: true, wantFired: true, wantFrom: Suspect, wantTo: Quarantined, wantState: Quarantined, wantStreak: 2},
				{fail: true, wantFired: true, wantFrom: Quarantined, wantTo: Quarantined, wantState: Quarantined, wantStreak: 3},
				{fail: false, wantFired: true, wantFrom: Quarantined, wantTo: Healthy, wantState: Healthy},
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h := &receptorHealth{}
			for i, s := range tc.steps {
				var tr HealthTransition
				var fired bool
				if s.fail {
					tr, fired = h.onFailure(at(float64(i)), testRules, "error")
				} else {
					tr, fired = h.onSuccess(at(float64(i)))
				}
				if fired != s.wantFired {
					t.Fatalf("step %d: fired=%v, want %v", i, fired, s.wantFired)
				}
				if fired && (tr.From != s.wantFrom || tr.To != s.wantTo) {
					t.Fatalf("step %d: transition %s→%s, want %s→%s", i, tr.From, tr.To, s.wantFrom, s.wantTo)
				}
				if h.state != s.wantState {
					t.Fatalf("step %d: state %s, want %s", i, h.state, s.wantState)
				}
				if h.streak != s.wantStreak {
					t.Fatalf("step %d: streak %d, want %d", i, h.streak, s.wantStreak)
				}
			}
		})
	}
}

// TestHealthSuspectAfterOne checks the degenerate config: with
// suspectAfter 1 the first failure quarantines directly.
func TestHealthSuspectAfterOne(t *testing.T) {
	rules := testRules
	rules.suspectAfter = 1
	h := &receptorHealth{}
	tr, fired := h.onFailure(at(0), rules, "panic")
	if !fired || tr.From != Healthy || tr.To != Quarantined {
		t.Fatalf("got %v fired=%v, want Healthy→Quarantined", tr, fired)
	}
}

// TestHealthBackoffDoubling walks quarantine probes on a virtual clock
// and checks the exponential schedule with its cap.
func TestHealthBackoffDoubling(t *testing.T) {
	// Wired counters so the readmit assertion below sees the increment;
	// the other FSM tests use bare records (nil-safe handles).
	h := newReceptorHealth(telemetry.NewRegistry(), "receptor.test.")
	h.onFailure(at(0), testRules, "timeout")
	h.onFailure(at(1), testRules, "timeout") // quarantined at t=1
	if h.state != Quarantined {
		t.Fatalf("state %s, want quarantined", h.state)
	}
	if want := at(1).Add(4 * time.Second); !h.retryAt.Equal(want) {
		t.Fatalf("first probe at %v, want %v", h.retryAt, want)
	}
	// Failed probes: backoff 8s, 16s, then capped at 16s.
	wantBackoffs := []time.Duration{8 * time.Second, 16 * time.Second, 16 * time.Second}
	for i, want := range wantBackoffs {
		probeAt := h.retryAt
		h.onFailure(probeAt, testRules, "timeout")
		if h.backoff != want {
			t.Fatalf("probe %d: backoff %v, want %v", i, h.backoff, want)
		}
		if wantAt := probeAt.Add(want); !h.retryAt.Equal(wantAt) {
			t.Fatalf("probe %d: retryAt %v, want %v", i, h.retryAt, wantAt)
		}
	}
	// A successful probe resets everything.
	tr, fired := h.onSuccess(h.retryAt)
	if !fired || tr.Cause != "probe-ok" {
		t.Fatalf("readmit transition %v fired=%v", tr, fired)
	}
	if h.backoff != 0 || !h.retryAt.IsZero() || h.readmits.Load() != 1 {
		t.Fatalf("readmit did not reset: backoff=%v retryAt=%v readmits=%d", h.backoff, h.retryAt, h.readmits.Load())
	}
}

// TestHealthJitterDeterministicAndBounded checks that jitter stretches
// the backoff by at most jitterFrac and is reproducible per seed.
func TestHealthJitterDeterministicAndBounded(t *testing.T) {
	rules := testRules
	rules.jitterFrac = 0.5
	probe := func(seed int64) time.Time {
		h := &receptorHealth{rng: rand.New(rand.NewSource(seed))}
		h.onFailure(at(0), rules, "timeout")
		h.onFailure(at(1), rules, "timeout")
		return h.retryAt
	}
	a, b := probe(7), probe(7)
	if !a.Equal(b) {
		t.Fatalf("jitter not deterministic per seed: %v vs %v", a, b)
	}
	lo, hi := at(1).Add(4*time.Second), at(1).Add(6*time.Second)
	if a.Before(lo) || a.After(hi) {
		t.Fatalf("jittered probe %v outside [%v, %v]", a, lo, hi)
	}
	if probe(8).Equal(a) {
		t.Fatalf("different seeds produced identical jitter (suspicious)")
	}
}
