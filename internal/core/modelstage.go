package core

import (
	"fmt"
	"time"

	"esp/internal/model"
	"esp/internal/stream"
)

// PointModelOutlier is a BBQ-style model-based cleaning stage (paper
// §6.3.1): it learns an online linear model of yField as a function of a
// correlated xField on the *same device* (e.g. temperature vs. battery
// voltage) and drops readings whose residual exceeds sigma standard
// deviations. Unlike the Merge stage's cross-device rejection, it detects
// a fail-dirty sensor with no neighbours at all, because a failed sensor
// breaks the physical correlation between its own channels.
//
// Readings are only folded into the model while they conform *tightly*
// (score ≤ sigma/2): without that gate a slowly drifting sensor boils the
// frog — each reading stays within the threshold, the pollution inflates
// the residual variance, and the growing threshold outruns the drift
// forever. Readings between sigma/2 and sigma pass through unlearned;
// beyond sigma they are dropped. warmup is the minimum effective
// observation weight before the stage starts rejecting; minStd floors the
// residual scale; lambda is the forgetting factor (see
// model.OnlineLinear).
func PointModelOutlier(xField, yField string, sigma, minStd, warmup, lambda float64) Stage {
	return FuncStage{
		Name: fmt.Sprintf("point-model-outlier(%s ~ %s, %.3gσ)", yField, xField, sigma),
		Fn: func(in *stream.Schema, env BuildEnv) (stream.Operator, error) {
			if sigma <= 0 {
				return nil, fmt.Errorf("core: PointModelOutlier: sigma must be positive")
			}
			if warmup < 2 {
				return nil, fmt.Errorf("core: PointModelOutlier: warmup must be at least 2")
			}
			return &modelOutlierOp{
				xField: xField, yField: yField,
				sigma: sigma, minStd: minStd, warmup: warmup,
				m: model.OnlineLinear{Lambda: lambda},
			}, nil
		},
	}
}

// modelOutlierOp is the per-receptor operator behind PointModelOutlier.
type modelOutlierOp struct {
	xField, yField        string
	sigma, minStd, warmup float64
	m                     model.OnlineLinear

	in     *stream.Schema
	xi, yi int
	// Dropped counts rejected readings (exposed for diagnostics).
	Dropped int64
}

// Open implements stream.Operator.
func (o *modelOutlierOp) Open(in *stream.Schema) error {
	xi, ok := in.Index(o.xField)
	if !ok {
		return fmt.Errorf("core: PointModelOutlier: no field %q in %s", o.xField, in)
	}
	yi, ok := in.Index(o.yField)
	if !ok {
		return fmt.Errorf("core: PointModelOutlier: no field %q in %s", o.yField, in)
	}
	if !in.Field(xi).Kind.Numeric() || !in.Field(yi).Kind.Numeric() {
		return fmt.Errorf("core: PointModelOutlier: %q and %q must be numeric", o.xField, o.yField)
	}
	o.in, o.xi, o.yi = in, xi, yi
	return nil
}

// Schema implements stream.Operator.
func (o *modelOutlierOp) Schema() *stream.Schema { return o.in }

// Process implements stream.Operator.
func (o *modelOutlierOp) Process(t stream.Tuple) ([]stream.Tuple, error) {
	xv, yv := t.Values[o.xi], t.Values[o.yi]
	if xv.IsNull() || yv.IsNull() {
		return []stream.Tuple{t}, nil // nothing to judge
	}
	x, y := xv.AsFloat(), yv.AsFloat()
	if o.m.Weight() >= o.warmup {
		if score, ok := o.m.Score(x, y, o.minStd); ok {
			if score > o.sigma {
				o.Dropped++
				return nil, nil // reject, and do not learn from it
			}
			if score > o.sigma/2 {
				return []stream.Tuple{t}, nil // pass, but do not learn
			}
		}
	}
	o.m.Update(x, y)
	return []stream.Tuple{t}, nil
}

// Advance implements stream.Operator.
func (o *modelOutlierOp) Advance(time.Time) ([]stream.Tuple, error) { return nil, nil }

// Close implements stream.Operator.
func (o *modelOutlierOp) Close() ([]stream.Tuple, error) { return nil, nil }
