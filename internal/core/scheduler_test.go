package core

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"esp/internal/receptor"
	"esp/internal/sim"
	"esp/internal/stream"
)

// schedCase builds one example deployment for the scheduler-equivalence
// table. Each call must construct a fresh, deterministic deployment (the
// simulators are seeded) so two runs see identical receptor streams.
type schedCase struct {
	name  string
	epoch time.Duration
	dur   time.Duration
	build func(t *testing.T) *Deployment
}

func shelfSchedDeployment(t *testing.T) *Deployment {
	t.Helper()
	cfg := sim.DefaultShelfConfig()
	sc, err := sim.NewShelfScenario(cfg)
	if err != nil {
		t.Fatal(err)
	}
	recs := make([]receptor.Receptor, len(sc.Readers))
	for i, r := range sc.Readers {
		recs[i] = r
	}
	return &Deployment{
		Epoch:     cfg.PollPeriod,
		Receptors: recs,
		Groups:    sc.Groups,
		Pipelines: map[receptor.Type]*Pipeline{
			receptor.TypeRFID: {
				Type:      receptor.TypeRFID,
				Point:     PointChecksum("checksum_ok"),
				Smooth:    SmoothTagCount(5 * time.Second),
				Arbitrate: ArbitrateMaxSum("tag_id", "n"),
			},
		},
		TieBreak: func(a, b stream.Tuple) bool {
			return a.Values[0] == stream.String("shelf1")
		},
	}
}

func redwoodSchedDeployment(t *testing.T) *Deployment {
	t.Helper()
	cfg := sim.DefaultRedwoodConfig()
	cfg.Motes = 8
	sc, err := sim.NewRedwoodScenario(cfg)
	if err != nil {
		t.Fatal(err)
	}
	recs := make([]receptor.Receptor, len(sc.Motes))
	for i, m := range sc.Motes {
		recs[i] = m
	}
	return &Deployment{
		Epoch:     cfg.Epoch,
		Receptors: recs,
		Groups:    sc.Groups,
		Pipelines: map[receptor.Type]*Pipeline{
			receptor.TypeMote: {
				Type:   receptor.TypeMote,
				Smooth: SmoothAvg("temp", 30*time.Minute),
				Merge:  MergeAvg("temp", cfg.Epoch),
			},
		},
	}
}

func homeSchedDeployment(t *testing.T) *Deployment {
	t.Helper()
	cfg := sim.DefaultHomeConfig()
	sc, err := sim.NewHomeScenario(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var recs []receptor.Receptor
	for _, r := range sc.Readers {
		recs = append(recs, r)
	}
	for _, m := range sc.Motes {
		recs = append(recs, m)
	}
	for _, d := range sc.Detectors {
		recs = append(recs, d)
	}
	expectedTags := stream.MustTable(
		stream.MustSchema(stream.Field{Name: "expected_tag", Kind: stream.KindString}),
		[]stream.Tuple{stream.NewTuple(time.Time{}, stream.String(sim.BadgeTagID))},
	)
	granule := 10 * time.Second
	return &Deployment{
		Epoch:     cfg.Epoch,
		Receptors: recs,
		Groups:    sc.Groups,
		Tables:    map[string]*stream.Table{"expected_tags": expectedTags},
		Pipelines: map[receptor.Type]*Pipeline{
			receptor.TypeRFID: {
				Type:   receptor.TypeRFID,
				Point:  Compose(PointChecksum("checksum_ok"), PointExpectedTags("tag_id", "expected_tags", "expected_tag")),
				Smooth: SmoothTagCount(granule),
				Merge:  MergeUnion(),
			},
			receptor.TypeMote: {
				Type:   receptor.TypeMote,
				Smooth: SmoothAvg("noise", granule),
				Merge:  MergeAvg("noise", cfg.Epoch),
			},
			receptor.TypeMotion: {
				Type:   receptor.TypeMotion,
				Smooth: SmoothEvents(granule, 1),
				Merge:  MergeVote(cfg.Epoch, 2),
			},
		},
		Virtualize: &VirtualizeSpec{
			Query: PersonDetectorQuery(525, 2),
			Bind: map[string]receptor.Type{
				"sensors_input": receptor.TypeMote,
				"rfid_input":    receptor.TypeRFID,
				"motion_input":  receptor.TypeMotion,
			},
		},
	}
}

func schedCases() []schedCase {
	return []schedCase{
		{name: "rfidshelf", epoch: 200 * time.Millisecond, dur: 60 * time.Second, build: shelfSchedDeployment},
		{name: "redwood", epoch: 5 * time.Minute, dur: 6 * time.Hour, build: redwoodSchedDeployment},
		{name: "digitalhome", epoch: time.Second, dur: 120 * time.Second, build: homeSchedDeployment},
	}
}

// schedOutput is everything one run emitted: the sink stream (per-type
// sinks plus Virtualize, in emission order) and each tap stream keyed by
// type/stage. Sink output must be byte-identical across schedulers; tap
// streams must each be identical, though their interleaving across
// stages may differ (sequential execution cascades depth-first, parallel
// execution flushes level by level).
type schedOutput struct {
	sinks string
	taps  map[string]string
}

// runSchedCase executes one deployment under the given scheduler and
// records every observable output.
func runSchedCase(t *testing.T, c schedCase, sched Scheduler) schedOutput {
	t.Helper()
	dep := c.build(t)
	p, err := NewProcessor(dep)
	if err != nil {
		t.Fatal(err)
	}
	p.SetScheduler(sched)
	var sinks strings.Builder
	tapStreams := make(map[string]*strings.Builder)
	record := func(sb *strings.Builder, label string) func(stream.Tuple) {
		return func(tu stream.Tuple) {
			fmt.Fprintf(sb, "%s|%d|%v\n", label, tu.Ts.UnixNano(), tu.Values)
		}
	}
	tapRecord := func(label string) func(stream.Tuple) {
		sb := &strings.Builder{}
		tapStreams[label] = sb
		return record(sb, label)
	}
	types := make(map[receptor.Type]bool)
	for _, rec := range dep.Receptors {
		if types[rec.Type()] {
			continue
		}
		types[rec.Type()] = true
		typ := rec.Type()
		p.OnType(typ, record(&sinks, "out/"+string(typ)))
		for _, stage := range []StageKind{StagePoint, StageSmooth, StageMerge, StageArbitrate} {
			p.Tap(typ, stage, tapRecord(fmt.Sprintf("tap/%s/%s", typ, stage)))
		}
	}
	p.OnVirtualize(record(&sinks, "virtualize"))
	start := time.Unix(0, 0).UTC()
	if err := p.Run(start, start.Add(c.dur)); err != nil {
		t.Fatal(err)
	}
	out := schedOutput{sinks: sinks.String(), taps: make(map[string]string, len(tapStreams))}
	for label, sb := range tapStreams {
		out.taps[label] = sb.String()
	}
	return out
}

// TestSchedulerEquivalence asserts the tentpole determinism guarantee:
// ParallelScheduler produces byte-identical sink and tap output to
// SeqScheduler on all three example deployments. Run with -race to
// exercise the concurrent path under the race detector (the Makefile
// check target does).
func TestSchedulerEquivalence(t *testing.T) {
	for _, c := range schedCases() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			seq := runSchedCase(t, c, SeqScheduler{})
			if seq.sinks == "" {
				t.Fatalf("%s produced no sink output under SeqScheduler", c.name)
			}
			for _, workers := range []int{1, 4} {
				par := NewParallelScheduler(workers)
				got := runSchedCase(t, c, par)
				par.Close()
				if got.sinks != seq.sinks {
					t.Fatalf("%s: ParallelScheduler(%d) sink output differs from SeqScheduler\nseq %d bytes, parallel %d bytes\nfirst divergence: %s",
						c.name, workers, len(seq.sinks), len(got.sinks), firstDiff(seq.sinks, got.sinks))
				}
				for label, want := range seq.taps {
					if got.taps[label] != want {
						t.Fatalf("%s: ParallelScheduler(%d) tap stream %s differs\nfirst divergence: %s",
							c.name, workers, label, firstDiff(want, got.taps[label]))
					}
				}
			}
		})
	}
}

// TestParallelSchedulerDeterminism runs the parallel path twice and
// requires identical output — the per-level buffering must merge node
// output in deterministic node order regardless of goroutine timing.
func TestParallelSchedulerDeterminism(t *testing.T) {
	c := schedCases()[0]
	s1 := NewParallelScheduler(4)
	defer s1.Close()
	s2 := NewParallelScheduler(4)
	defer s2.Close()
	a := runSchedCase(t, c, s1)
	b := runSchedCase(t, c, s2)
	if a.sinks != b.sinks {
		t.Fatalf("parallel runs diverged on sinks: %s", firstDiff(a.sinks, b.sinks))
	}
	for label, want := range a.taps {
		if b.taps[label] != want {
			t.Fatalf("parallel runs diverged on tap stream %s: %s", label, firstDiff(want, b.taps[label]))
		}
	}
}

// TestNodeStats checks the instrumentation hook: every node reports its
// label, kind, level, and advance count, and the leg→merge→output chain
// moves tuples.
func TestNodeStats(t *testing.T) {
	dep := redwoodSchedDeployment(t)
	p, err := NewProcessor(dep)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Unix(0, 0).UTC()
	epochs := 24
	if err := p.Run(start, start.Add(time.Duration(epochs)*dep.Epoch)); err != nil {
		t.Fatal(err)
	}
	stats := p.NodeStats()
	if len(stats) == 0 {
		t.Fatal("no node stats")
	}
	kinds := make(map[string]int)
	var moved int64
	for _, st := range stats {
		kinds[st.Kind]++
		if st.Label == "" {
			t.Fatalf("node with empty label: %+v", st)
		}
		if st.Advances != int64(epochs) {
			t.Fatalf("node %s advanced %d times, want %d", st.Label, st.Advances, epochs)
		}
		moved += st.TuplesOut
	}
	if kinds["leg"] != 8 || kinds["merge"] == 0 || kinds["output"] != 1 {
		t.Fatalf("unexpected node census: %v", kinds)
	}
	if moved == 0 {
		t.Fatal("no tuples flowed through the graph")
	}
	// Levels must be topological: every merge sits above every leg.
	for _, st := range stats {
		if st.Kind == "merge" && st.Level == 0 {
			t.Fatalf("merge node %s at level 0", st.Label)
		}
	}
}

// firstDiff locates the first differing line of two outputs.
func firstDiff(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(al) && i < len(bl); i++ {
		if al[i] != bl[i] {
			return fmt.Sprintf("line %d: %q vs %q", i, al[i], bl[i])
		}
	}
	return fmt.Sprintf("length: %d vs %d lines", len(al), len(bl))
}
