package core

import (
	"fmt"
	"log/slog"
	"time"

	"esp/internal/receptor"
	"esp/internal/stream"
	"esp/internal/telemetry"
)

// This file wires the unified telemetry layer (internal/telemetry)
// through the processor: every dataflow node's counters and stage-latency
// histogram live in one per-processor registry, the supervised poll path
// and receptor channels report into it, and the sampled tuple-lineage
// recorder derives per-stage spans from the registry's epoch deltas.
// NodeStats, EnableStats, and HealthStats are all views over this one
// counter source (DESIGN.md §7).

// Telemetry returns the processor's metric registry — always non-nil;
// extended accounting (stage totals, poll latency, lineage) activates
// with EnableTelemetry.
func (p *Processor) Telemetry() *telemetry.Registry { return p.tel }

// EnableTelemetry turns on extended runtime telemetry: per-type stage
// tuple accounting at every punctuation, supervised poll latency
// histograms, and lineage sampling (when EnableLineage is also called).
// The per-tuple hot path is unaffected when disabled — the gate is a
// single atomic load, and the disabled path performs no extra work and
// no allocations (asserted by TestTelemetryDisabledZeroAlloc).
func (p *Processor) EnableTelemetry() { p.tel.SetEnabled(true) }

// EnableLineage turns on sampled tuple-lineage tracing: a deterministic
// seeded sampler tags ~1/sampleN polled readings, and each tagged
// reading gets an epoch-stamped span per pipeline stage
// (Point→Smooth→Merge→Arbitrate→Virtualize) recording what the stage
// did to the reading's epoch cohort. Implies EnableTelemetry. Returns
// the recorder for dumping (see telemetry.Lineage.DumpJSON). Call
// before Run.
func (p *Processor) EnableLineage(sampleN int, seed int64) *telemetry.Lineage {
	p.EnableTelemetry()
	p.lin = telemetry.NewLineage(sampleN, seed)
	return p.lin
}

// Lineage returns the lineage recorder (nil until EnableLineage).
func (p *Processor) Lineage() *telemetry.Lineage { return p.lin }

// stageCounters is one receptor type's per-stage tuple accounting:
// polled input plus each stage's released-tuple counter. Populated only
// while telemetry is enabled.
type stageCounters struct {
	polled *telemetry.Counter
	out    [StageVirtualize]*telemetry.Counter // indexed by StageKind, Point..Arbitrate
}

// initTelemetry registers the processor's metrics after the graph is
// compiled: per-node counters and latency histograms (the NodeStats
// backing store), per-type stage counters (the EnableStats backing
// store), channel-receptor buffer gauges, and window occupancy gauges.
func (p *Processor) initTelemetry() {
	g := p.graph
	for i, n := range g.nodes {
		prefix := "node." + n.label() + "."
		st := &g.stats[i]
		st.tuplesIn = p.tel.Counter(prefix + "tuples_in")
		st.tuplesOut = p.tel.Counter(prefix + "tuples_out")
		st.batchesIn = p.tel.Counter(prefix + "batches_in")
		st.batchRows = p.tel.Counter(prefix + "batch_rows")
		st.batchFallbacks = p.tel.Counter(prefix + "batch_fallbacks")
		st.panics = p.tel.Counter(prefix + "panics")
		st.advance = p.tel.Histogram(prefix + "advance_ns")
		q := &g.quarantined[i]
		p.tel.GaugeFunc(prefix+"quarantined", func() int64 {
			if q.Load() {
				return 1
			}
			return 0
		})
		// Window machinery inside the node: pane occupancy and late-drop
		// counts, summed over the node's operators (WindowAgg keeps the
		// mirrors as atomics, so snapshot-time reads are race-free).
		if srcs := n.windowSources(); len(srcs) > 0 {
			p.tel.GaugeFunc(prefix+"window_panes", func() int64 {
				var panes int64
				for _, s := range srcs {
					ps, _ := s.WindowTelemetry()
					panes += ps
				}
				return panes
			})
			p.tel.GaugeFunc(prefix+"window_late_drops", func() int64 {
				var drops int64
				for _, s := range srcs {
					_, d := s.WindowTelemetry()
					drops += d
				}
				return drops
			})
		}
	}
	// Per-type stage accounting (EnableStats / lineage backing store).
	p.typeStage = make(map[receptor.Type]*stageCounters, len(p.typeOrder))
	for _, t := range p.typeOrder {
		sc := &stageCounters{polled: p.tel.Counter(fmt.Sprintf("poll.%s.tuples", t))}
		for _, stage := range []StageKind{StagePoint, StageSmooth, StageMerge, StageArbitrate} {
			sc.out[stage] = p.tel.Counter(fmt.Sprintf("stage.%s/%s.tuples", t, stage))
		}
		p.typeStage[t] = sc
	}
	p.virtOut = p.tel.Counter("stage.virtualize.tuples")
	// Receptor index → type, for polled accounting and lineage tagging.
	p.recTypes = make([]receptor.Type, len(p.dep.Receptors))
	for i, rec := range p.dep.Receptors {
		p.recTypes[i] = rec.Type()
		// Bounded channel receptors (hierarchical composition) surface
		// their buffer occupancy and eviction counter in the unified
		// snapshot — previously only readable on the channel itself.
		if ch, ok := rec.(channelTelemetry); ok {
			id := rec.ID()
			p.tel.GaugeFunc(fmt.Sprintf("receptor.%s.channel_pending", id), func() int64 {
				return int64(ch.Pending())
			})
			p.tel.GaugeFunc(fmt.Sprintf("receptor.%s.channel_dropped", id), func() int64 {
				return ch.Dropped()
			})
		}
	}
}

// channelTelemetry is satisfied by receptor.Channel (and any other
// buffered receptor that wants its backlog surfaced in telemetry).
type channelTelemetry interface {
	Pending() int
	Dropped() int64
}

// countStage accounts one flushed stage event. Called from flushEvents
// on the scheduler goroutine; a single atomic-load gate keeps the
// disabled path free.
func (p *Processor) countStage(typ receptor.Type, stage StageKind, n int) {
	if !p.tel.Enabled() {
		return
	}
	if stage == StageVirtualize {
		p.virtOut.Add(int64(n))
		return
	}
	if sc := p.typeStage[typ]; sc != nil {
		sc.out[stage].Add(int64(n))
	}
}

// countPolled accounts one epoch's polled batches per receptor type.
func (p *Processor) countPolled(batches [][]stream.Tuple) {
	for i, ts := range batches {
		if len(ts) == 0 {
			continue
		}
		if sc := p.typeStage[p.recTypes[i]]; sc != nil {
			sc.polled.Add(int64(len(ts)))
		}
	}
}

// maxLineagePerEpoch bounds how many sampled readings one epoch may
// trace, so a hot sampler setting cannot balloon an epoch's work.
const maxLineagePerEpoch = 8

// lineageStep is the in-flight lineage state of one epoch: the tagged
// readings plus the pre-step counter values their spans diff against.
type lineageStep struct {
	now     time.Time
	tagged  []taggedReading
	before  map[receptor.Type]stageDelta
	virtPre int64
}

type taggedReading struct {
	receptor string
	typ      receptor.Type
	ts       time.Time
	value    string
}

// stageDelta is a point-in-time reading of one type's stage counters.
type stageDelta struct {
	polled, point, smooth, merge, arb int64
}

func (p *Processor) readStageCounters(t receptor.Type) stageDelta {
	sc := p.typeStage[t]
	if sc == nil {
		return stageDelta{}
	}
	return stageDelta{
		polled: sc.polled.Load(),
		point:  sc.out[StagePoint].Load(),
		smooth: sc.out[StageSmooth].Load(),
		merge:  sc.out[StageMerge].Load(),
		arb:    sc.out[StageArbitrate].Load(),
	}
}

// beginLineage samples this epoch's polled readings and snapshots the
// stage counters the spans will diff against. Returns nil when nothing
// was tagged.
func (p *Processor) beginLineage(now time.Time, batches [][]stream.Tuple) *lineageStep {
	var ls *lineageStep
	for i, ts := range batches {
		if len(ts) == 0 {
			continue
		}
		id := p.dep.Receptors[i].ID()
		for seq, tu := range ts {
			if !p.lin.Sample(id, tu.Ts, seq) {
				continue
			}
			if ls == nil {
				ls = &lineageStep{now: now, before: make(map[receptor.Type]stageDelta)}
			}
			if len(ls.tagged) >= maxLineagePerEpoch {
				break
			}
			typ := p.recTypes[i]
			ls.tagged = append(ls.tagged, taggedReading{
				receptor: id, typ: typ, ts: tu.Ts, value: tu.String(),
			})
			if _, ok := ls.before[typ]; !ok {
				ls.before[typ] = p.readStageCounters(typ)
			}
		}
	}
	if ls != nil {
		ls.virtPre = p.virtOut.Load()
	}
	return ls
}

// finishLineage turns the epoch's counter deltas into one five-span
// trace per tagged reading. Runs on the epoch-driving goroutine after
// the scheduler's step completes, so the deltas cover exactly this
// epoch's injection and punctuation.
func (p *Processor) finishLineage(ls *lineageStep) {
	virtDelta := p.virtOut.Load() - ls.virtPre
	for _, tr := range ls.tagged {
		pre := ls.before[tr.typ]
		post := p.readStageCounters(tr.typ)
		d := stageDelta{
			polled: post.polled - pre.polled,
			point:  post.point - pre.point,
			smooth: post.smooth - pre.smooth,
			merge:  post.merge - pre.merge,
			arb:    post.arb - pre.arb,
		}
		pl := p.pipelineFor(tr.typ)
		pointCfg := pl != nil && pl.Point != nil
		smoothCfg := pl != nil && pl.Smooth != nil
		mergeCfg := pl != nil && pl.Merge != nil
		arbCfg := pl != nil && pl.Arbitrate != nil
		_, virtBound := p.virtInputOf[tr.typ]

		// The stage chain's in/out: each stage's input is its
		// predecessor's released count. Stages not configured pass
		// their input through unchanged (the leg's StageSmooth tap
		// fires on the leg output either way, so the measured smooth
		// count is authoritative).
		pointOut := d.polled
		if pointCfg {
			pointOut = d.point
		}
		smoothOut := d.smooth
		mergeOut := smoothOut
		if mergeCfg {
			mergeOut = d.merge
		}
		arbOut := d.arb
		virtOut := int64(0)
		if virtBound {
			virtOut = virtDelta
		}

		trace := telemetry.Trace{
			Receptor: tr.receptor,
			Type:     string(tr.typ),
			Ts:       tr.ts,
			Epoch:    ls.now,
			Value:    tr.value,
			Spans: []telemetry.Span{
				{Stage: "Point", Epoch: ls.now, In: d.polled, Out: pointOut,
					Decision: telemetry.Decide(pointCfg, d.polled, pointOut)},
				{Stage: "Smooth", Epoch: ls.now, In: pointOut, Out: smoothOut,
					Decision: telemetry.Decide(smoothCfg, pointOut, smoothOut)},
				{Stage: "Merge", Epoch: ls.now, In: smoothOut, Out: mergeOut,
					Decision: telemetry.Decide(mergeCfg, smoothOut, mergeOut)},
				{Stage: "Arbitrate", Epoch: ls.now, In: mergeOut, Out: arbOut,
					Decision: telemetry.Decide(arbCfg, mergeOut, arbOut)},
				{Stage: "Virtualize", Epoch: ls.now, In: arbOut, Out: virtOut,
					Decision: telemetry.Decide(virtBound, arbOut, virtOut)},
			},
		}
		p.lin.Record(trace)
	}
}

// SetLogger installs a structured logger for runtime events (health-FSM
// transitions, poll deadline misses). Nil disables event logging (the
// default: telemetry counters still record).
func (p *Processor) SetLogger(l *slog.Logger) { p.logger = l }
