package core

import (
	"runtime"
	"sync"
	"time"

	"esp/internal/stream"
)

// Scheduler is the pluggable execution strategy that drives one epoch of
// the compiled dataflow graph: it must deliver each receptor's polled
// batch to that receptor's leg nodes, then advance every node in an
// order consistent with the DAG's topology. The interface is sealed —
// the package's determinism guarantees (delivery in node order, user
// callbacks on the calling goroutine) are invariants implementations
// must uphold, so only SeqScheduler and ParallelScheduler exist.
type Scheduler interface {
	step(g *dag, now time.Time, batches [][]stream.Tuple) error
}

// SeqScheduler executes the whole graph on the calling goroutine:
// injection in receptor order, then punctuation in topological node
// order (legs, merges, arbitrates, outputs, virtualize), with every
// emission cascading depth-first into its downstream nodes immediately.
// This reproduces the classic hand-rolled Processor loop bit for bit and
// is the default.
type SeqScheduler struct{}

func (SeqScheduler) step(g *dag, now time.Time, batches [][]stream.Tuple) error {
	for r, ts := range batches {
		if len(ts) == 0 {
			continue
		}
		for _, li := range g.legsByReceptor[r] {
			if err := g.processInto(li, "", ts); err != nil {
				return err
			}
		}
	}
	for i := range g.nodes {
		if err := g.advanceNode(i, now); err != nil {
			return err
		}
	}
	return nil
}

// ParallelScheduler executes the graph level by level on a bounded
// worker pool: all nodes of one DAG depth (all legs, then all merges,
// then all arbitrates, …) run concurrently, each buffering its effects
// privately; at the level barrier the scheduler flushes those buffers in
// node order — taps and sinks fire on the calling goroutine, and
// downstream input queues are filled in a deterministic order. Output is
// therefore deterministic run to run, and identical to SeqScheduler for
// epoch-punctuated (windowed) pipelines — asserted for all three example
// deployments by TestSchedulerEquivalence. The difference from
// sequential execution is only internal batching: a node receives its
// upstream epoch output as one queue of batches per upstream node
// instead of interleaved cascades, which windowed stages cannot observe.
type ParallelScheduler struct {
	workers int

	start sync.Once
	stop  sync.Once
	tasks chan func()
	// Per-step state, sized to the graph on first use.
	in   [][]delivery
	fx   []*effects
	errs []error
}

// delivery is one queued input for a node: a columnar batch (b non-nil)
// or a tuple run.
type delivery struct {
	port string
	b    *stream.Batch
	ts   []stream.Tuple
}

// NewParallelScheduler returns a scheduler running at most workers node
// tasks concurrently; workers <= 0 selects GOMAXPROCS. Close it when the
// processor is done to release the pool.
func NewParallelScheduler(workers int) *ParallelScheduler {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &ParallelScheduler{workers: workers}
}

// Workers reports the pool bound.
func (s *ParallelScheduler) Workers() int { return s.workers }

// Close stops the worker pool. The scheduler must not be used afterwards.
func (s *ParallelScheduler) Close() {
	s.stop.Do(func() {
		if s.tasks != nil {
			close(s.tasks)
		}
	})
}

func (s *ParallelScheduler) startPool() {
	s.tasks = make(chan func(), s.workers)
	for i := 0; i < s.workers; i++ {
		go func() {
			for f := range s.tasks {
				f()
			}
		}()
	}
}

func (s *ParallelScheduler) step(g *dag, now time.Time, batches [][]stream.Tuple) error {
	s.start.Do(s.startPool)
	if len(s.in) < len(g.nodes) {
		s.in = make([][]delivery, len(g.nodes))
		s.fx = make([]*effects, len(g.nodes))
		s.errs = make([]error, len(g.nodes))
	}
	// Inject the polled batches into the legs' input queues, receptor
	// order first so a leg's queue order matches sequential delivery.
	for r, ts := range batches {
		if len(ts) == 0 {
			continue
		}
		for _, li := range g.legsByReceptor[r] {
			s.in[li] = append(s.in[li], delivery{ts: ts})
		}
	}
	for _, level := range g.levels {
		var wg sync.WaitGroup
		for _, i := range level {
			i := i
			wg.Add(1)
			s.tasks <- func() {
				defer wg.Done()
				s.errs[i] = s.runNode(g, i, now)
			}
		}
		wg.Wait()
		for _, i := range level {
			if err := s.errs[i]; err != nil {
				s.reset(g)
				return err
			}
		}
		// Barrier passed: flush effects in node order — user callbacks on
		// this goroutine, downstream queues filled deterministically.
		for _, i := range level {
			fx := s.fx[i]
			s.fx[i] = nil
			s.in[i] = s.in[i][:0]
			if fx == nil {
				continue
			}
			g.flushEvents(fx)
			for _, e := range fx.outs {
				if e.rows() == 0 {
					continue
				}
				for _, d := range g.down[i] {
					s.in[d.to] = append(s.in[d.to], delivery{port: d.port, b: e.b, ts: e.ts})
				}
			}
			// The emissions are copied into downstream queues; the buffer
			// itself is done.
			g.putFx(fx)
		}
	}
	return nil
}

// runNode executes one node's full epoch work: drain the input queue in
// arrival order, then punctuate. Runs on a pool worker; it touches only
// the node's own state, its private effects buffer, and its own stats
// entry.
func (s *ParallelScheduler) runNode(g *dag, i int, now time.Time) error {
	if g.quarantined[i].Load() {
		return nil // fx[i] stays nil: nothing flushes at the barrier
	}
	fx := g.getFx()
	s.fx[i] = fx
	n := g.nodes[i]
	st := &g.stats[i]
	for di, d := range s.in[i] {
		d := d
		if di > 0 {
			// Batches buffered from earlier deliveries are owned by
			// operators this delivery may reinvoke: materialize them
			// before they can be invalidated.
			fx.materialize()
		}
		var ok bool
		var err error
		if d.b != nil {
			st.batchesIn.Add(1)
			st.batchRows.Add(int64(d.b.Len()))
			st.tuplesIn.Add(int64(d.b.Len()))
			ok, err = g.guard(i, func() error { return n.processBatch(d.port, d.b, fx) })
		} else {
			st.tuplesIn.Add(int64(len(d.ts)))
			ok, err = g.guard(i, func() error { return n.process(d.port, d.ts, fx) })
		}
		if err != nil {
			return err
		}
		if !ok {
			// Panicked under supervision: quarantine the node and discard
			// the whole epoch's buffered effects (the sequential path has
			// already cascaded earlier deliveries by this point — the two
			// strategies only agree while no node panics mid-epoch).
			s.fx[i] = nil
			return nil
		}
	}
	t0 := time.Now()
	ok, err := g.guard(i, func() error { return n.advance(now, fx) })
	st.advance.Observe(time.Since(t0))
	if err != nil {
		return err
	}
	if !ok {
		s.fx[i] = nil
		return nil
	}
	var outRows int64
	for j := range fx.outs {
		outRows += int64(fx.outs[j].rows())
	}
	st.tuplesOut.Add(outRows)
	if fx.fallbacks != 0 {
		st.batchFallbacks.Add(fx.fallbacks)
	}
	return nil
}

// reset clears the per-step state after a failed epoch so a later Step
// does not replay stale deliveries.
func (s *ParallelScheduler) reset(g *dag) {
	for i := range g.nodes {
		s.in[i] = s.in[i][:0]
		s.fx[i] = nil
		s.errs[i] = nil
	}
}
