package core

import (
	"context"
	"fmt"
	"time"

	"esp/internal/cql"
	"esp/internal/stream"
)

// Run drives the deployment from start (exclusive) to end (inclusive):
// one Step per epoch. Sinks and taps must be registered before Run.
func (p *Processor) Run(start, end time.Time) error {
	return p.RunContext(context.Background(), start, end)
}

// RunContext is Run with cancellation: ctx is checked at every epoch
// boundary, so a long run stops within one epoch's work of
// cancellation and returns ctx.Err(). Cancellation granularity is the
// epoch — a Step in flight always completes, keeping every stage's
// window state consistent (see DESIGN.md §3).
func (p *Processor) RunContext(ctx context.Context, start, end time.Time) error {
	for now := start.Add(p.dep.Epoch); !now.After(end); now = now.Add(p.dep.Epoch) {
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := p.Step(now); err != nil {
			return err
		}
	}
	return nil
}

// Step executes one epoch ending at now: it polls every receptor and
// hands the batches to the configured Scheduler, which pushes them
// through the dataflow graph and punctuates every node in an order
// consistent with the pipeline (legs, then merges, then arbitrates, then
// virtualize) so windowed results cascade deterministically.
func (p *Processor) Step(now time.Time) error {
	batches := make([][]stream.Tuple, len(p.dep.Receptors))
	for i := range p.dep.Receptors {
		batches[i] = p.poll(i, now)
	}
	return p.stepBatches(now, batches)
}

// poll gathers one receptor's epoch batch, through the supervisor when
// one is enabled (deadlines, panic isolation, quarantine) and directly
// otherwise.
func (p *Processor) poll(i int, now time.Time) []stream.Tuple {
	if p.sup != nil {
		return p.sup.poll(i, now)
	}
	return p.dep.Receptors[i].Poll(now)
}

// stepBatches injects one epoch's polled batches (indexed like
// dep.Receptors) through the scheduler and fires the epoch hooks.
// Injection order is the receptor order, so output is deterministic
// regardless of how the batches were gathered.
func (p *Processor) stepBatches(now time.Time, batches [][]stream.Tuple) error {
	var ls *lineageStep
	if p.tel.Enabled() {
		// Lineage snapshots the stage counters before this epoch's polled
		// tuples are accounted, so span deltas cover the whole epoch.
		if p.lin != nil {
			ls = p.beginLineage(now, batches)
		}
		p.countPolled(batches)
	}
	if err := p.sched.step(p.graph, now, batches); err != nil {
		return err
	}
	if ls != nil {
		p.finishLineage(ls)
	}
	for _, fn := range p.epochSinks {
		fn(now)
	}
	return nil
}

// planVirtualize plans the Virtualize query against the per-type output
// schemas.
func planVirtualize(query string, cat map[string]*stream.Schema, env BuildEnv) (*stream.Graph, error) {
	stmt, err := cql.Parse(query)
	if err != nil {
		return nil, err
	}
	catalog := cql.Catalog{}
	for name, sch := range cat {
		catalog[name] = sch
	}
	g, err := cql.Plan(stmt, catalog, cql.PlanConfig{
		Slide:      env.Epoch,
		Tables:     env.Tables,
		NoOptimize: env.NoOptimize,
	})
	if err != nil {
		return nil, err
	}
	// Every bound input must actually be read by the plan.
	have := make(map[string]bool)
	for _, n := range g.Inputs() {
		have[n] = true
	}
	for name := range cat {
		if !have[name] {
			return nil, fmt.Errorf("core: Virtualize query does not read bound input %q", name)
		}
	}
	return g, nil
}
