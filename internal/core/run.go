package core

import (
	"fmt"
	"time"

	"esp/internal/cql"
	"esp/internal/receptor"
	"esp/internal/stream"
)

// Run drives the deployment from start (exclusive) to end (inclusive):
// one Step per epoch. Sinks and taps must be registered before Run.
func (p *Processor) Run(start, end time.Time) error {
	for now := start.Add(p.dep.Epoch); !now.After(end); now = now.Add(p.dep.Epoch) {
		if err := p.Step(now); err != nil {
			return err
		}
	}
	return nil
}

// Step executes one epoch ending at now: it polls every receptor, pushes
// the readings through the pipeline, and punctuates every stage in
// pipeline order (legs, then merges, then arbitrates, then virtualize) so
// windowed results cascade deterministically.
func (p *Processor) Step(now time.Time) error {
	batches := make([][]stream.Tuple, len(p.dep.Receptors))
	for i, rec := range p.dep.Receptors {
		batches[i] = rec.Poll(now)
	}
	return p.step(now, batches)
}

// step injects one epoch's polled batches (indexed like dep.Receptors)
// and punctuates the pipeline. Injection order is the receptor order, so
// output is deterministic regardless of how the batches were gathered.
func (p *Processor) step(now time.Time, batches [][]stream.Tuple) error {
	// Fan each receptor's readings out to its legs (a receptor in several
	// proximity groups feeds several legs).
	for i, rec := range p.dep.Receptors {
		tuples := batches[i]
		if len(tuples) == 0 {
			continue
		}
		for _, leg := range p.legs {
			if leg.rec != rec {
				continue
			}
			for _, t := range tuples {
				annot := make([]stream.Value, 0, 2+len(t.Values))
				annot = append(annot, stream.String(rec.ID()), stream.String(leg.group))
				annot = append(annot, t.Values...)
				if err := p.legProcess(leg, stream.Tuple{Ts: t.Ts, Values: annot}); err != nil {
					return err
				}
			}
		}
	}
	// Punctuate, cascading stage by stage.
	for _, leg := range p.legs {
		if err := p.legAdvance(leg, now); err != nil {
			return err
		}
	}
	for _, m := range p.merges {
		released, err := m.op.Advance(now)
		if err != nil {
			return fmt.Errorf("core: %s Merge %q: %w", m.typ, m.group, err)
		}
		if err := p.mergeEmit(m, released); err != nil {
			return err
		}
	}
	for _, t := range p.arbOrder {
		arb := p.arbs[t]
		if arb == nil {
			continue
		}
		released, err := arb.op.Advance(now)
		if err != nil {
			return fmt.Errorf("core: %s Arbitrate: %w", t, err)
		}
		if err := p.emitType(t, released); err != nil {
			return err
		}
	}
	if p.virt != nil {
		out, err := p.virt.Advance(now)
		if err != nil {
			return fmt.Errorf("core: Virtualize: %w", err)
		}
		p.emitVirtualize(out)
	}
	for _, fn := range p.epochSinks {
		fn(now)
	}
	return nil
}

// legProcess pushes one annotated tuple through a leg's Point and Smooth
// stages and routes whatever comes out.
func (p *Processor) legProcess(leg *procLeg, t stream.Tuple) error {
	cur := []stream.Tuple{t}
	var err error
	if leg.point != nil {
		cur, err = processAll(leg.point, cur)
		if err != nil {
			return fmt.Errorf("core: %s Point %q: %w", leg.typ, leg.rec.ID(), err)
		}
		p.tap(leg.typ, StagePoint, cur)
	}
	if leg.smooth != nil {
		cur, err = processAll(leg.smooth, cur)
		if err != nil {
			return fmt.Errorf("core: %s Smooth %q: %w", leg.typ, leg.rec.ID(), err)
		}
	}
	return p.legEmit(leg, cur)
}

// legAdvance punctuates a leg: Point's released tuples are processed by
// Smooth before Smooth sees the same punctuation.
func (p *Processor) legAdvance(leg *procLeg, now time.Time) error {
	var pending []stream.Tuple
	if leg.point != nil {
		released, err := leg.point.Advance(now)
		if err != nil {
			return fmt.Errorf("core: %s Point %q: %w", leg.typ, leg.rec.ID(), err)
		}
		p.tap(leg.typ, StagePoint, released)
		pending = released
	}
	if leg.smooth != nil {
		if len(pending) > 0 {
			out, err := processAll(leg.smooth, pending)
			if err != nil {
				return fmt.Errorf("core: %s Smooth %q: %w", leg.typ, leg.rec.ID(), err)
			}
			if err := p.legEmit(leg, out); err != nil {
				return err
			}
		}
		released, err := leg.smooth.Advance(now)
		if err != nil {
			return fmt.Errorf("core: %s Smooth %q: %w", leg.typ, leg.rec.ID(), err)
		}
		return p.legEmit(leg, released)
	}
	return p.legEmit(leg, pending)
}

// legEmit re-annotates the per-receptor output and routes it to the
// group's Merge (or onward when the type has no Merge stage).
func (p *Processor) legEmit(leg *procLeg, ts []stream.Tuple) error {
	if len(ts) == 0 {
		return nil
	}
	fixed := leg.fix.apply(ts)
	p.tap(leg.typ, StageSmooth, fixed)
	if leg.merge != nil {
		out, err := processAll(leg.merge.op, fixed)
		if err != nil {
			return fmt.Errorf("core: %s Merge %q: %w", leg.typ, leg.group, err)
		}
		return p.mergeEmit(leg.merge, out)
	}
	return p.routeType(leg.typ, fixed)
}

// mergeEmit re-annotates a Merge output and routes it onward.
func (p *Processor) mergeEmit(m *procMerge, ts []stream.Tuple) error {
	if len(ts) == 0 {
		return nil
	}
	fixed := m.fix.apply(ts)
	p.tap(m.typ, StageMerge, fixed)
	return p.routeType(m.typ, fixed)
}

// routeType feeds a type's per-group stream into its Arbitrate stage, or
// straight to the type output if there is none.
func (p *Processor) routeType(t receptor.Type, ts []stream.Tuple) error {
	if arb := p.arbs[t]; arb != nil {
		out, err := processAll(arb.op, ts)
		if err != nil {
			return fmt.Errorf("core: %s Arbitrate: %w", t, err)
		}
		return p.emitType(t, out)
	}
	return p.emitType(t, ts)
}

// emitType delivers a type's cleaned output to sinks and the Virtualize
// stage.
func (p *Processor) emitType(t receptor.Type, ts []stream.Tuple) error {
	if len(ts) == 0 {
		return nil
	}
	p.tap(t, StageArbitrate, ts)
	for _, tu := range ts {
		for _, fn := range p.typeSinks[t] {
			fn(tu)
		}
	}
	if p.virt != nil {
		input, ok := p.virtInputOf[t]
		if ok {
			for _, tu := range ts {
				out, err := p.virt.Push(input, tu)
				if err != nil {
					return fmt.Errorf("core: Virtualize: %w", err)
				}
				p.emitVirtualize(out)
			}
		}
	}
	return nil
}

func (p *Processor) emitVirtualize(ts []stream.Tuple) {
	if len(ts) == 0 {
		return
	}
	p.tap("", StageVirtualize, ts)
	for _, tu := range ts {
		for _, fn := range p.virtSinks {
			fn(tu)
		}
	}
}

func processAll(op stream.Operator, ts []stream.Tuple) ([]stream.Tuple, error) {
	var out []stream.Tuple
	for _, t := range ts {
		got, err := op.Process(t)
		if err != nil {
			return nil, err
		}
		out = append(out, got...)
	}
	return out, nil
}

// planVirtualize plans the Virtualize query against the per-type output
// schemas.
func planVirtualize(query string, cat map[string]*stream.Schema, env BuildEnv) (*stream.Graph, error) {
	stmt, err := cql.Parse(query)
	if err != nil {
		return nil, err
	}
	catalog := cql.Catalog{}
	for name, sch := range cat {
		catalog[name] = sch
	}
	g, err := cql.Plan(stmt, catalog, cql.PlanConfig{
		Slide:  env.Epoch,
		Tables: env.Tables,
	})
	if err != nil {
		return nil, err
	}
	// Every bound input must actually be read by the plan.
	have := make(map[string]bool)
	for _, n := range g.Inputs() {
		have[n] = true
	}
	for name := range cat {
		if !have[name] {
			return nil, fmt.Errorf("core: Virtualize query does not read bound input %q", name)
		}
	}
	return g, nil
}
