package core

import (
	"fmt"
	"time"

	"esp/internal/receptor"
	"esp/internal/stream"
)

// This file defines the dataflow-node abstraction the Processor compiles
// a Deployment into. Every pipeline instance — a (receptor, proximity
// group) leg, a group's Merge, a type's Arbitrate, a type's output
// fan-out, and the cross-type Virtualize query — is one uniform vertex
// in a DAG (dag.go); a Scheduler (scheduler.go) decides how the graph
// executes. Adding a new stage kind means adding one node type, not
// another hand-written loop in the epoch driver.

// upEdge declares one of a node's upstream inputs: tuples emitted by the
// node at index from arrive on this node's input port port. Ports only
// matter for multi-input nodes (Virtualize binds one port per receptor
// type); single-input nodes use "".
type upEdge struct {
	from int
	port string
}

// node is one vertex of the compiled dataflow graph. Nodes never invoke
// user callbacks (taps, sinks) or downstream nodes directly: they record
// every externally observable side effect in the effects buffer, and the
// scheduler flushes it on its own goroutine — immediately for
// SeqScheduler, after the level barrier in deterministic node order for
// ParallelScheduler. That contract is what lets independent nodes run
// concurrently without user code ever seeing concurrency.
type node interface {
	// label names the node for instrumentation, e.g. "leg rfid r0@shelf0".
	label() string
	// kindName classifies the node for instrumentation.
	kindName() string
	// upstream declares the node's input edges; the compiler inverts them
	// into the downstream adjacency and the DAG depth levels.
	upstream() []upEdge
	// process consumes a batch of tuples arriving on an input port.
	process(port string, ts []stream.Tuple, fx *effects) error
	// processBatch consumes a columnar batch arriving on an input port —
	// the hot path between stages. Implementations fall back to the tuple
	// representation internally whenever an operator is not batch-capable
	// (stream.ProcessBatchOp), so every node accepts both forms.
	processBatch(port string, b *stream.Batch, fx *effects) error
	// advance punctuates the node at the end of an epoch. Schedulers must
	// advance a node only after all of its upstream nodes' epoch output
	// has been delivered to it.
	advance(now time.Time, fx *effects) error
	// windowSources lists the node's window-state telemetry sources, for
	// pane-occupancy and late-drop gauges. nil for windowless nodes.
	windowSources() []stream.WindowTelemetrySource
}

// probeWindows collects the window-telemetry sources among ops (nil
// operators are skipped).
func probeWindows(ops ...stream.Operator) []stream.WindowTelemetrySource {
	var out []stream.WindowTelemetrySource
	for _, op := range ops {
		if op == nil {
			continue
		}
		if src, ok := op.(stream.WindowTelemetrySource); ok {
			out = append(out, src)
		}
	}
	return out
}

// effects buffers the externally observable side effects of one node
// invocation: tap events, sink deliveries, and the tuples or batches
// emitted toward downstream nodes.
type effects struct {
	events []effectEvent
	outs   []emission
	// fallbacks counts batch-path degradations inside this invocation
	// (a polled batch that was not column-homogeneous); the scheduler
	// folds it into the node's batch_fallbacks counter.
	fallbacks int64
}

// emission is one downstream hand-off: either a columnar batch or a
// tuple run, never both. Emission order is preserved — it is the
// delivery order downstream nodes observe.
type emission struct {
	b  *stream.Batch
	ts []stream.Tuple
}

// rows reports the tuple count of the emission.
func (e *emission) rows() int {
	if e.b != nil {
		return e.b.Len()
	}
	return len(e.ts)
}

// effectEvent is one buffered tap call or sink delivery. The tuples may
// be carried columnar (b non-nil) and are only materialized at flush
// time, and only when a matching tap or sink is actually registered.
type effectEvent struct {
	typ   receptor.Type
	stage StageKind
	sink  bool // deliver to sinks instead of taps
	ts    []stream.Tuple
	b     *stream.Batch
}

// rows reports the event's tuple count without materializing a batch.
func (ev *effectEvent) rows() int {
	if ev.b != nil {
		return ev.b.Len()
	}
	return len(ev.ts)
}

func (fx *effects) tap(typ receptor.Type, stage StageKind, ts []stream.Tuple) {
	if len(ts) == 0 {
		return
	}
	fx.events = append(fx.events, effectEvent{typ: typ, stage: stage, ts: ts})
}

func (fx *effects) tapBatch(typ receptor.Type, stage StageKind, b *stream.Batch) {
	if b == nil || b.Len() == 0 {
		return
	}
	fx.events = append(fx.events, effectEvent{typ: typ, stage: stage, b: b})
}

func (fx *effects) sink(typ receptor.Type, stage StageKind, ts []stream.Tuple) {
	if len(ts) == 0 {
		return
	}
	fx.events = append(fx.events, effectEvent{typ: typ, stage: stage, sink: true, ts: ts})
}

func (fx *effects) sinkBatch(typ receptor.Type, stage StageKind, b *stream.Batch) {
	if b == nil || b.Len() == 0 {
		return
	}
	fx.events = append(fx.events, effectEvent{typ: typ, stage: stage, sink: true, b: b})
}

func (fx *effects) emit(ts []stream.Tuple) {
	if len(ts) == 0 {
		return
	}
	// Consecutive tuple emissions coalesce, preserving the classic
	// single-delivery cascade whenever no batch is interleaved.
	if n := len(fx.outs); n > 0 && fx.outs[n-1].b == nil {
		fx.outs[n-1].ts = append(fx.outs[n-1].ts, ts...)
		return
	}
	fx.outs = append(fx.outs, emission{ts: ts})
}

func (fx *effects) emitBatch(b *stream.Batch) {
	if b == nil || b.Len() == 0 {
		return
	}
	fx.outs = append(fx.outs, emission{b: b})
}

// reset empties the buffers for reuse, dropping element references so a
// pooled effects never pins tuple or batch memory.
func (fx *effects) reset() {
	clear(fx.events)
	fx.events = fx.events[:0]
	clear(fx.outs)
	fx.outs = fx.outs[:0]
	fx.fallbacks = 0
}

// materialize converts every buffered batch (events and emissions) into
// owned tuples. The parallel scheduler calls it between deliveries to a
// multi-input node: a queued batch is owned by the operator that
// produced it and would be invalidated by that operator's next
// invocation.
func (fx *effects) materialize() {
	for i := range fx.events {
		if ev := &fx.events[i]; ev.b != nil {
			ev.ts, ev.b = ev.b.Tuples(), nil
		}
	}
	for i := range fx.outs {
		if e := &fx.outs[i]; e.b != nil {
			e.ts, e.b = e.b.Tuples(), nil
		}
	}
}

// legNode is one (receptor, proximity group) processing instance: the
// per-receptor Point and Smooth stages plus the annotation fix-up. It is
// a source node — the scheduler feeds its input port with the receptor's
// polled batch each epoch, annotation columns not yet attached.
type legNode struct {
	rec    receptor.Receptor
	group  string
	typ    receptor.Type
	inSch  *stream.Schema
	point  stream.Operator // nil if skipped
	smooth stream.Operator // nil if skipped
	fix    *annotFix       // re-annotation after the per-receptor stages
	out    *stream.Schema

	// prefix holds the constant annotation values [receptor_id, granule]
	// prepended to every polled tuple; inBatch is the reused columnar
	// batch the polled epoch is packed into, and advBatch the reused
	// batch the punctuation output is re-annotated into (separate
	// buffers: process emissions may still be queued when advance runs).
	// noBatch pins the leg to the tuple path (Deployment.DisableBatching
	// — batches originate only at leg and merge nodes, all gated by it).
	prefix   []stream.Value
	inBatch  *stream.Batch
	advBatch *stream.Batch
	noBatch  bool
}

func (n *legNode) label() string {
	return fmt.Sprintf("leg %s %s@%s", n.typ, n.rec.ID(), n.group)
}
func (n *legNode) kindName() string   { return "leg" }
func (n *legNode) upstream() []upEdge { return nil }
func (n *legNode) windowSources() []stream.WindowTelemetrySource {
	return probeWindows(n.point, n.smooth)
}

func (n *legNode) process(_ string, ts []stream.Tuple, fx *effects) error {
	if n.noBatch || len(n.prefix) == 0 || len(ts) == 0 {
		return n.processTuples(ts, fx)
	}
	if n.inBatch == nil {
		n.inBatch = stream.NewBatch(n.inSch)
	} else {
		n.inBatch.Reset(n.inSch)
	}
	if !n.inBatch.AppendRun(n.prefix, ts) {
		// The polled epoch is not column-homogeneous: degrade the whole
		// delivery to the tuple path (the batch was left unmodified).
		fx.fallbacks++
		return n.processTuples(ts, fx)
	}
	cur, curT := n.inBatch, []stream.Tuple(nil)
	var err error
	if n.point != nil {
		cur, curT, err = stream.ProcessBatchOp(n.point, cur)
		if err != nil {
			return fmt.Errorf("core: %s Point %q: %w", n.typ, n.rec.ID(), err)
		}
		if cur != nil {
			fx.tapBatch(n.typ, StagePoint, cur)
		} else {
			fx.tap(n.typ, StagePoint, curT)
		}
	}
	if n.smooth != nil {
		if cur != nil {
			cur, curT, err = stream.ProcessBatchOp(n.smooth, cur)
		} else if len(curT) > 0 {
			curT, err = processAll(n.smooth, curT)
		}
		if err != nil {
			return fmt.Errorf("core: %s Smooth %q: %w", n.typ, n.rec.ID(), err)
		}
	}
	if cur != nil {
		n.emitB(cur, fx)
	} else {
		n.emit(curT, fx)
	}
	return nil
}

// processBatch implements node. Legs are source nodes — the scheduler
// injects polled tuples, never batches — so this only exists to satisfy
// the interface and simply materializes.
func (n *legNode) processBatch(_ string, b *stream.Batch, fx *effects) error {
	return n.process("", b.Tuples(), fx)
}

// processTuples is the classic row-at-a-time path, kept bit-compatible
// with the pre-columnar processor: it is the fallback for disabled
// batching and for polled epochs that cannot be packed columnar.
func (n *legNode) processTuples(ts []stream.Tuple, fx *effects) error {
	for _, t := range ts {
		annot := make([]stream.Value, 0, 2+len(t.Values))
		annot = append(annot, stream.String(n.rec.ID()), stream.String(n.group))
		annot = append(annot, t.Values...)
		cur := []stream.Tuple{{Ts: t.Ts, Values: annot}}
		var err error
		if n.point != nil {
			cur, err = processAll(n.point, cur)
			if err != nil {
				return fmt.Errorf("core: %s Point %q: %w", n.typ, n.rec.ID(), err)
			}
			fx.tap(n.typ, StagePoint, cur)
		}
		if n.smooth != nil {
			cur, err = processAll(n.smooth, cur)
			if err != nil {
				return fmt.Errorf("core: %s Smooth %q: %w", n.typ, n.rec.ID(), err)
			}
		}
		n.emit(cur, fx)
	}
	return nil
}

// advance punctuates the leg: Point's released tuples are processed by
// Smooth before Smooth sees the same punctuation.
func (n *legNode) advance(now time.Time, fx *effects) error {
	var pending []stream.Tuple
	if n.point != nil {
		released, err := n.point.Advance(now)
		if err != nil {
			return fmt.Errorf("core: %s Point %q: %w", n.typ, n.rec.ID(), err)
		}
		fx.tap(n.typ, StagePoint, released)
		pending = released
	}
	if n.smooth != nil {
		var out []stream.Tuple
		if len(pending) > 0 {
			processed, err := processAll(n.smooth, pending)
			if err != nil {
				return fmt.Errorf("core: %s Smooth %q: %w", n.typ, n.rec.ID(), err)
			}
			out = processed
		}
		released, err := n.smooth.Advance(now)
		if err != nil {
			return fmt.Errorf("core: %s Smooth %q: %w", n.typ, n.rec.ID(), err)
		}
		if len(out) == 0 {
			out = released
		} else {
			out = append(out, released...)
		}
		n.emitAdv(out, fx)
		return nil
	}
	n.emitAdv(pending, fx)
	return nil
}

// emit re-annotates the per-receptor output and hands it downstream.
func (n *legNode) emit(ts []stream.Tuple, fx *effects) {
	if len(ts) == 0 {
		return
	}
	fixed := n.fix.apply(ts)
	fx.tap(n.typ, StageSmooth, fixed)
	fx.emit(fixed)
}

// emitAdv is emit for the punctuation output: the re-annotation is
// packed columnar into a reused batch instead of allocating annotated
// tuples. Called at most once per advance, so the emitted batch stays
// valid until the leg's next invocation.
func (n *legNode) emitAdv(ts []stream.Tuple, fx *effects) {
	if len(ts) == 0 {
		return
	}
	if n.noBatch || len(n.fix.prepend) == 0 {
		n.emit(ts, fx)
		return
	}
	if n.advBatch == nil {
		n.advBatch = stream.NewBatch(n.fix.schema)
	} else {
		n.advBatch.Reset(n.fix.schema)
	}
	if !n.advBatch.AppendRun(n.fix.prepend, ts) {
		fx.fallbacks++
		n.emit(ts, fx)
		return
	}
	fx.tapBatch(n.typ, StageSmooth, n.advBatch)
	fx.emitBatch(n.advBatch)
}

// emitB is emit for a still-columnar output. When re-annotation would
// change the row arity the batch is materialized and takes the tuple
// path; otherwise it is handed downstream columnar.
func (n *legNode) emitB(b *stream.Batch, fx *effects) {
	if b == nil || b.Len() == 0 {
		return
	}
	if len(n.fix.prepend) != 0 {
		n.emit(b.Tuples(), fx)
		return
	}
	fx.tapBatch(n.typ, StageSmooth, b)
	fx.emitBatch(b)
}

// mergeNode is one proximity group's Merge instance; its upstream edges
// are the group members' legs.
type mergeNode struct {
	group string
	typ   receptor.Type
	op    stream.Operator
	fix   *annotFix
	out   *stream.Schema
	ups   []upEdge

	// advBatch re-annotates the punctuation output columnar (see
	// legNode.emitAdv); noBatch mirrors Deployment.DisableBatching.
	advBatch *stream.Batch
	noBatch  bool
}

func (n *mergeNode) label() string {
	return fmt.Sprintf("merge %s %s", n.typ, n.group)
}
func (n *mergeNode) kindName() string   { return "merge" }
func (n *mergeNode) upstream() []upEdge { return n.ups }
func (n *mergeNode) windowSources() []stream.WindowTelemetrySource {
	return probeWindows(n.op)
}

func (n *mergeNode) process(_ string, ts []stream.Tuple, fx *effects) error {
	out, err := processAll(n.op, ts)
	if err != nil {
		return fmt.Errorf("core: %s Merge %q: %w", n.typ, n.group, err)
	}
	n.emit(out, fx)
	return nil
}

func (n *mergeNode) processBatch(_ string, b *stream.Batch, fx *effects) error {
	ob, ot, err := stream.ProcessBatchOp(n.op, b)
	if err != nil {
		return fmt.Errorf("core: %s Merge %q: %w", n.typ, n.group, err)
	}
	if shimDegraded(n.op, ot) {
		fx.fallbacks++
	}
	if ob != nil {
		n.emitB(ob, fx)
		return nil
	}
	n.emit(ot, fx)
	return nil
}

func (n *mergeNode) advance(now time.Time, fx *effects) error {
	released, err := n.op.Advance(now)
	if err != nil {
		return fmt.Errorf("core: %s Merge %q: %w", n.typ, n.group, err)
	}
	n.emitAdv(released, fx)
	return nil
}

// emitAdv packs the punctuation output's re-annotation columnar into a
// reused batch. Called at most once per advance (see legNode.emitAdv).
func (n *mergeNode) emitAdv(ts []stream.Tuple, fx *effects) {
	if len(ts) == 0 {
		return
	}
	if n.noBatch || len(n.fix.prepend) == 0 {
		n.emit(ts, fx)
		return
	}
	if n.advBatch == nil {
		n.advBatch = stream.NewBatch(n.fix.schema)
	} else {
		n.advBatch.Reset(n.fix.schema)
	}
	if !n.advBatch.AppendRun(n.fix.prepend, ts) {
		fx.fallbacks++
		n.emit(ts, fx)
		return
	}
	fx.tapBatch(n.typ, StageMerge, n.advBatch)
	fx.emitBatch(n.advBatch)
}

// emit re-annotates the Merge output and hands it downstream.
func (n *mergeNode) emit(ts []stream.Tuple, fx *effects) {
	if len(ts) == 0 {
		return
	}
	fixed := n.fix.apply(ts)
	fx.tap(n.typ, StageMerge, fixed)
	fx.emit(fixed)
}

// emitB is emit for a still-columnar Merge output; re-annotation forces
// the tuple path (it changes the row arity).
func (n *mergeNode) emitB(b *stream.Batch, fx *effects) {
	if b == nil || b.Len() == 0 {
		return
	}
	if len(n.fix.prepend) != 0 {
		n.emit(b.Tuples(), fx)
		return
	}
	fx.tapBatch(n.typ, StageMerge, b)
	fx.emitBatch(b)
}

// arbNode is one type's Arbitrate instance; its upstream edges are the
// type's Merge nodes (or its legs when the type has no Merge stage).
type arbNode struct {
	typ receptor.Type
	op  stream.Operator
	out *stream.Schema
	ups []upEdge
}

func (n *arbNode) label() string      { return fmt.Sprintf("arbitrate %s", n.typ) }
func (n *arbNode) kindName() string   { return "arbitrate" }
func (n *arbNode) upstream() []upEdge { return n.ups }
func (n *arbNode) windowSources() []stream.WindowTelemetrySource {
	return probeWindows(n.op)
}

func (n *arbNode) process(_ string, ts []stream.Tuple, fx *effects) error {
	out, err := processAll(n.op, ts)
	if err != nil {
		return fmt.Errorf("core: %s Arbitrate: %w", n.typ, err)
	}
	fx.emit(out)
	return nil
}

func (n *arbNode) processBatch(_ string, b *stream.Batch, fx *effects) error {
	ob, ot, err := stream.ProcessBatchOp(n.op, b)
	if err != nil {
		return fmt.Errorf("core: %s Arbitrate: %w", n.typ, err)
	}
	if shimDegraded(n.op, ot) {
		fx.fallbacks++
	}
	fx.emitBatch(ob)
	fx.emit(ot)
	return nil
}

func (n *arbNode) advance(now time.Time, fx *effects) error {
	released, err := n.op.Advance(now)
	if err != nil {
		return fmt.Errorf("core: %s Arbitrate: %w", n.typ, err)
	}
	fx.emit(released)
	return nil
}

// outNode is the terminal per-type vertex: it fans the type's cleaned
// stream out to the registered sinks and forwards it to the Virtualize
// node when the type is bound there. StageArbitrate taps fire here even
// for types with no Arbitrate stage, preserving the classic emitType
// contract.
type outNode struct {
	typ receptor.Type
	ups []upEdge
}

func (n *outNode) label() string                                 { return fmt.Sprintf("output %s", n.typ) }
func (n *outNode) kindName() string                              { return "output" }
func (n *outNode) upstream() []upEdge                            { return n.ups }
func (n *outNode) windowSources() []stream.WindowTelemetrySource { return nil }

func (n *outNode) process(_ string, ts []stream.Tuple, fx *effects) error {
	fx.tap(n.typ, StageArbitrate, ts)
	fx.sink(n.typ, StageArbitrate, ts)
	fx.emit(ts)
	return nil
}

func (n *outNode) processBatch(_ string, b *stream.Batch, fx *effects) error {
	fx.tapBatch(n.typ, StageArbitrate, b)
	fx.sinkBatch(n.typ, StageArbitrate, b)
	fx.emitBatch(b)
	return nil
}

func (n *outNode) advance(time.Time, *effects) error { return nil }

// virtNode executes the deployment's Virtualize query; its upstream
// edges are the output nodes of the bound types, one input port per
// bound stream name.
type virtNode struct {
	g   *stream.Graph
	ups []upEdge
}

func (n *virtNode) label() string      { return "virtualize" }
func (n *virtNode) kindName() string   { return "virtualize" }
func (n *virtNode) upstream() []upEdge { return n.ups }
func (n *virtNode) windowSources() []stream.WindowTelemetrySource {
	return []stream.WindowTelemetrySource{n.g}
}

func (n *virtNode) process(port string, ts []stream.Tuple, fx *effects) error {
	for _, t := range ts {
		out, err := n.g.Push(port, t)
		if err != nil {
			return fmt.Errorf("core: Virtualize: %w", err)
		}
		n.emit(out, fx)
	}
	return nil
}

func (n *virtNode) processBatch(port string, b *stream.Batch, fx *effects) error {
	ob, ot, err := n.g.PushBatch(port, b)
	if err != nil {
		return fmt.Errorf("core: Virtualize: %w", err)
	}
	if ot != nil || n.g.LastBatchDegraded() {
		fx.fallbacks++
	}
	if ob != nil && ob.Len() > 0 {
		fx.tapBatch("", StageVirtualize, ob)
		fx.sinkBatch("", StageVirtualize, ob)
		fx.emitBatch(ob)
		return nil
	}
	n.emit(ot, fx)
	return nil
}

func (n *virtNode) advance(now time.Time, fx *effects) error {
	out, err := n.g.Advance(now)
	if err != nil {
		return fmt.Errorf("core: Virtualize: %w", err)
	}
	n.emit(out, fx)
	return nil
}

func (n *virtNode) emit(ts []stream.Tuple, fx *effects) {
	if len(ts) == 0 {
		return
	}
	fx.tap("", StageVirtualize, ts)
	fx.sink("", StageVirtualize, ts)
	fx.emit(ts)
}

// shimDegraded reports whether one columnar delivery to op left the
// batch path: op has no batch implementation at all (the row-at-a-time
// ProcessBatchOp shim ran), the delivery's output came back in tuple
// form, or a composite op latched an internal degradation (degrade-then-
// absorb, invisible in the return values). Callers increment the
// fallback counter AT MOST ONCE per delivery off this single predicate —
// the operators themselves never touch the counter, so a chain that
// degrades once cannot be counted again by the node that owns it, and a
// delivery that degrades at one node is never re-counted downstream
// (downstream sees a tuple delivery, which takes the tuple path).
func shimDegraded(op stream.Operator, ot []stream.Tuple) bool {
	if _, ok := op.(stream.BatchOperator); !ok {
		return true
	}
	if ot != nil {
		return true
	}
	r, ok := op.(stream.BatchDegradeReporter)
	return ok && r.LastBatchDegraded()
}

func processAll(op stream.Operator, ts []stream.Tuple) ([]stream.Tuple, error) {
	var out []stream.Tuple
	for _, t := range ts {
		got, err := op.Process(t)
		if err != nil {
			return nil, err
		}
		out = append(out, got...)
	}
	return out, nil
}
