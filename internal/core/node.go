package core

import (
	"fmt"
	"time"

	"esp/internal/receptor"
	"esp/internal/stream"
)

// This file defines the dataflow-node abstraction the Processor compiles
// a Deployment into. Every pipeline instance — a (receptor, proximity
// group) leg, a group's Merge, a type's Arbitrate, a type's output
// fan-out, and the cross-type Virtualize query — is one uniform vertex
// in a DAG (dag.go); a Scheduler (scheduler.go) decides how the graph
// executes. Adding a new stage kind means adding one node type, not
// another hand-written loop in the epoch driver.

// upEdge declares one of a node's upstream inputs: tuples emitted by the
// node at index from arrive on this node's input port port. Ports only
// matter for multi-input nodes (Virtualize binds one port per receptor
// type); single-input nodes use "".
type upEdge struct {
	from int
	port string
}

// node is one vertex of the compiled dataflow graph. Nodes never invoke
// user callbacks (taps, sinks) or downstream nodes directly: they record
// every externally observable side effect in the effects buffer, and the
// scheduler flushes it on its own goroutine — immediately for
// SeqScheduler, after the level barrier in deterministic node order for
// ParallelScheduler. That contract is what lets independent nodes run
// concurrently without user code ever seeing concurrency.
type node interface {
	// label names the node for instrumentation, e.g. "leg rfid r0@shelf0".
	label() string
	// kindName classifies the node for instrumentation.
	kindName() string
	// upstream declares the node's input edges; the compiler inverts them
	// into the downstream adjacency and the DAG depth levels.
	upstream() []upEdge
	// process consumes a batch of tuples arriving on an input port.
	process(port string, ts []stream.Tuple, fx *effects) error
	// advance punctuates the node at the end of an epoch. Schedulers must
	// advance a node only after all of its upstream nodes' epoch output
	// has been delivered to it.
	advance(now time.Time, fx *effects) error
	// windowSources lists the node's window-state telemetry sources, for
	// pane-occupancy and late-drop gauges. nil for windowless nodes.
	windowSources() []stream.WindowTelemetrySource
}

// probeWindows collects the window-telemetry sources among ops (nil
// operators are skipped).
func probeWindows(ops ...stream.Operator) []stream.WindowTelemetrySource {
	var out []stream.WindowTelemetrySource
	for _, op := range ops {
		if op == nil {
			continue
		}
		if src, ok := op.(stream.WindowTelemetrySource); ok {
			out = append(out, src)
		}
	}
	return out
}

// effects buffers the externally observable side effects of one node
// invocation: tap events, sink deliveries, and the tuples emitted toward
// downstream nodes.
type effects struct {
	events []effectEvent
	out    []stream.Tuple
}

// effectEvent is one buffered tap call or sink delivery.
type effectEvent struct {
	typ   receptor.Type
	stage StageKind
	sink  bool // deliver to sinks instead of taps
	ts    []stream.Tuple
}

func (fx *effects) tap(typ receptor.Type, stage StageKind, ts []stream.Tuple) {
	if len(ts) == 0 {
		return
	}
	fx.events = append(fx.events, effectEvent{typ: typ, stage: stage, ts: ts})
}

func (fx *effects) sink(typ receptor.Type, stage StageKind, ts []stream.Tuple) {
	if len(ts) == 0 {
		return
	}
	fx.events = append(fx.events, effectEvent{typ: typ, stage: stage, sink: true, ts: ts})
}

func (fx *effects) emit(ts []stream.Tuple) {
	if len(ts) == 0 {
		return
	}
	fx.out = append(fx.out, ts...)
}

// legNode is one (receptor, proximity group) processing instance: the
// per-receptor Point and Smooth stages plus the annotation fix-up. It is
// a source node — the scheduler feeds its input port with the receptor's
// polled batch each epoch, annotation columns not yet attached.
type legNode struct {
	rec    receptor.Receptor
	group  string
	typ    receptor.Type
	inSch  *stream.Schema
	point  stream.Operator // nil if skipped
	smooth stream.Operator // nil if skipped
	fix    *annotFix       // re-annotation after the per-receptor stages
	out    *stream.Schema
}

func (n *legNode) label() string {
	return fmt.Sprintf("leg %s %s@%s", n.typ, n.rec.ID(), n.group)
}
func (n *legNode) kindName() string   { return "leg" }
func (n *legNode) upstream() []upEdge { return nil }
func (n *legNode) windowSources() []stream.WindowTelemetrySource {
	return probeWindows(n.point, n.smooth)
}

func (n *legNode) process(_ string, ts []stream.Tuple, fx *effects) error {
	for _, t := range ts {
		annot := make([]stream.Value, 0, 2+len(t.Values))
		annot = append(annot, stream.String(n.rec.ID()), stream.String(n.group))
		annot = append(annot, t.Values...)
		cur := []stream.Tuple{{Ts: t.Ts, Values: annot}}
		var err error
		if n.point != nil {
			cur, err = processAll(n.point, cur)
			if err != nil {
				return fmt.Errorf("core: %s Point %q: %w", n.typ, n.rec.ID(), err)
			}
			fx.tap(n.typ, StagePoint, cur)
		}
		if n.smooth != nil {
			cur, err = processAll(n.smooth, cur)
			if err != nil {
				return fmt.Errorf("core: %s Smooth %q: %w", n.typ, n.rec.ID(), err)
			}
		}
		n.emit(cur, fx)
	}
	return nil
}

// advance punctuates the leg: Point's released tuples are processed by
// Smooth before Smooth sees the same punctuation.
func (n *legNode) advance(now time.Time, fx *effects) error {
	var pending []stream.Tuple
	if n.point != nil {
		released, err := n.point.Advance(now)
		if err != nil {
			return fmt.Errorf("core: %s Point %q: %w", n.typ, n.rec.ID(), err)
		}
		fx.tap(n.typ, StagePoint, released)
		pending = released
	}
	if n.smooth != nil {
		if len(pending) > 0 {
			out, err := processAll(n.smooth, pending)
			if err != nil {
				return fmt.Errorf("core: %s Smooth %q: %w", n.typ, n.rec.ID(), err)
			}
			n.emit(out, fx)
		}
		released, err := n.smooth.Advance(now)
		if err != nil {
			return fmt.Errorf("core: %s Smooth %q: %w", n.typ, n.rec.ID(), err)
		}
		n.emit(released, fx)
		return nil
	}
	n.emit(pending, fx)
	return nil
}

// emit re-annotates the per-receptor output and hands it downstream.
func (n *legNode) emit(ts []stream.Tuple, fx *effects) {
	if len(ts) == 0 {
		return
	}
	fixed := n.fix.apply(ts)
	fx.tap(n.typ, StageSmooth, fixed)
	fx.emit(fixed)
}

// mergeNode is one proximity group's Merge instance; its upstream edges
// are the group members' legs.
type mergeNode struct {
	group string
	typ   receptor.Type
	op    stream.Operator
	fix   *annotFix
	out   *stream.Schema
	ups   []upEdge
}

func (n *mergeNode) label() string {
	return fmt.Sprintf("merge %s %s", n.typ, n.group)
}
func (n *mergeNode) kindName() string   { return "merge" }
func (n *mergeNode) upstream() []upEdge { return n.ups }
func (n *mergeNode) windowSources() []stream.WindowTelemetrySource {
	return probeWindows(n.op)
}

func (n *mergeNode) process(_ string, ts []stream.Tuple, fx *effects) error {
	out, err := processAll(n.op, ts)
	if err != nil {
		return fmt.Errorf("core: %s Merge %q: %w", n.typ, n.group, err)
	}
	n.emit(out, fx)
	return nil
}

func (n *mergeNode) advance(now time.Time, fx *effects) error {
	released, err := n.op.Advance(now)
	if err != nil {
		return fmt.Errorf("core: %s Merge %q: %w", n.typ, n.group, err)
	}
	n.emit(released, fx)
	return nil
}

// emit re-annotates the Merge output and hands it downstream.
func (n *mergeNode) emit(ts []stream.Tuple, fx *effects) {
	if len(ts) == 0 {
		return
	}
	fixed := n.fix.apply(ts)
	fx.tap(n.typ, StageMerge, fixed)
	fx.emit(fixed)
}

// arbNode is one type's Arbitrate instance; its upstream edges are the
// type's Merge nodes (or its legs when the type has no Merge stage).
type arbNode struct {
	typ receptor.Type
	op  stream.Operator
	out *stream.Schema
	ups []upEdge
}

func (n *arbNode) label() string     { return fmt.Sprintf("arbitrate %s", n.typ) }
func (n *arbNode) kindName() string  { return "arbitrate" }
func (n *arbNode) upstream() []upEdge { return n.ups }
func (n *arbNode) windowSources() []stream.WindowTelemetrySource {
	return probeWindows(n.op)
}

func (n *arbNode) process(_ string, ts []stream.Tuple, fx *effects) error {
	out, err := processAll(n.op, ts)
	if err != nil {
		return fmt.Errorf("core: %s Arbitrate: %w", n.typ, err)
	}
	fx.emit(out)
	return nil
}

func (n *arbNode) advance(now time.Time, fx *effects) error {
	released, err := n.op.Advance(now)
	if err != nil {
		return fmt.Errorf("core: %s Arbitrate: %w", n.typ, err)
	}
	fx.emit(released)
	return nil
}

// outNode is the terminal per-type vertex: it fans the type's cleaned
// stream out to the registered sinks and forwards it to the Virtualize
// node when the type is bound there. StageArbitrate taps fire here even
// for types with no Arbitrate stage, preserving the classic emitType
// contract.
type outNode struct {
	typ receptor.Type
	ups []upEdge
}

func (n *outNode) label() string     { return fmt.Sprintf("output %s", n.typ) }
func (n *outNode) kindName() string  { return "output" }
func (n *outNode) upstream() []upEdge { return n.ups }
func (n *outNode) windowSources() []stream.WindowTelemetrySource { return nil }

func (n *outNode) process(_ string, ts []stream.Tuple, fx *effects) error {
	fx.tap(n.typ, StageArbitrate, ts)
	fx.sink(n.typ, StageArbitrate, ts)
	fx.emit(ts)
	return nil
}

func (n *outNode) advance(time.Time, *effects) error { return nil }

// virtNode executes the deployment's Virtualize query; its upstream
// edges are the output nodes of the bound types, one input port per
// bound stream name.
type virtNode struct {
	g   *stream.Graph
	ups []upEdge
}

func (n *virtNode) label() string     { return "virtualize" }
func (n *virtNode) kindName() string  { return "virtualize" }
func (n *virtNode) upstream() []upEdge { return n.ups }
func (n *virtNode) windowSources() []stream.WindowTelemetrySource {
	return []stream.WindowTelemetrySource{n.g}
}

func (n *virtNode) process(port string, ts []stream.Tuple, fx *effects) error {
	for _, t := range ts {
		out, err := n.g.Push(port, t)
		if err != nil {
			return fmt.Errorf("core: Virtualize: %w", err)
		}
		n.emit(out, fx)
	}
	return nil
}

func (n *virtNode) advance(now time.Time, fx *effects) error {
	out, err := n.g.Advance(now)
	if err != nil {
		return fmt.Errorf("core: Virtualize: %w", err)
	}
	n.emit(out, fx)
	return nil
}

func (n *virtNode) emit(ts []stream.Tuple, fx *effects) {
	if len(ts) == 0 {
		return
	}
	fx.tap("", StageVirtualize, ts)
	fx.sink("", StageVirtualize, ts)
	fx.emit(ts)
}

func processAll(op stream.Operator, ts []stream.Tuple) ([]stream.Tuple, error) {
	var out []stream.Tuple
	for _, t := range ts {
		got, err := op.Process(t)
		if err != nil {
			return nil, err
		}
		out = append(out, got...)
	}
	return out, nil
}
