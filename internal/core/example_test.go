package core_test

import (
	"fmt"
	"time"

	"esp/internal/core"
	"esp/internal/cql"
	"esp/internal/receptor"
	"esp/internal/stream"
)

// scripted is a minimal receptor for the examples.
type scripted struct {
	id     string
	typ    receptor.Type
	schema *stream.Schema
	queue  []stream.Tuple
}

func (s *scripted) ID() string             { return s.id }
func (s *scripted) Type() receptor.Type    { return s.typ }
func (s *scripted) Schema() *stream.Schema { return s.schema }
func (s *scripted) Poll(now time.Time) []stream.Tuple {
	var out []stream.Tuple
	for len(s.queue) > 0 && !s.queue[0].Ts.After(now) {
		out = append(out, s.queue[0])
		s.queue = s.queue[1:]
	}
	return out
}

// Example builds the smallest complete deployment: one RFID reader, a
// checksum Point filter, and a Smooth stage written as a CQL query.
func Example() {
	schema := stream.MustSchema(
		stream.Field{Name: "tag_id", Kind: stream.KindString},
		stream.Field{Name: "checksum_ok", Kind: stream.KindBool},
	)
	t0 := time.Unix(0, 0).UTC()
	reader := &scripted{id: "reader0", typ: receptor.TypeRFID, schema: schema, queue: []stream.Tuple{
		stream.NewTuple(t0.Add(200*time.Millisecond), stream.String("milk-42"), stream.Bool(true)),
		stream.NewTuple(t0.Add(400*time.Millisecond), stream.String("milk-42"), stream.Bool(false)),
		stream.NewTuple(t0.Add(600*time.Millisecond), stream.String("milk-42"), stream.Bool(true)),
	}}
	groups := receptor.NewGroups()
	groups.MustAdd(receptor.Group{Name: "shelf0", Type: receptor.TypeRFID, Members: []string{"reader0"}})

	p, err := core.NewProcessor(&core.Deployment{
		Epoch:     time.Second,
		Receptors: []receptor.Receptor{reader},
		Groups:    groups,
		Pipelines: map[receptor.Type]*core.Pipeline{
			receptor.TypeRFID: {
				Type:  receptor.TypeRFID,
				Point: core.PointChecksum("checksum_ok"),
				Smooth: core.CQLStage{Query: `
					SELECT tag_id, count(*) AS n
					FROM smooth_input [Range By '5 sec'] GROUP BY tag_id`},
			},
		},
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	p.OnType(receptor.TypeRFID, func(t stream.Tuple) {
		// (receptor_id, spatial_granule, tag_id, n)
		fmt.Printf("%s saw %s %d times\n", t.Values[1], t.Values[2], t.Values[3].AsInt())
	})
	if err := p.Run(t0, t0.Add(time.Second)); err != nil {
		fmt.Println("error:", err)
	}
	// Output:
	// shelf0 saw milk-42 2 times
}

// ExampleProcessor_Describe prints a deployment summary.
func ExampleProcessor_Describe() {
	schema := stream.MustSchema(stream.Field{Name: "tag_id", Kind: stream.KindString})
	reader := &scripted{id: "r0", typ: receptor.TypeRFID, schema: schema}
	groups := receptor.NewGroups()
	groups.MustAdd(receptor.Group{Name: "shelf0", Type: receptor.TypeRFID, Members: []string{"r0"}})
	p, err := core.NewProcessor(&core.Deployment{
		Epoch:     time.Second,
		Receptors: []receptor.Receptor{reader},
		Groups:    groups,
		Pipelines: map[receptor.Type]*core.Pipeline{
			receptor.TypeRFID: {Type: receptor.TypeRFID, Smooth: core.SmoothTagCount(5 * time.Second)},
		},
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Print(p.Describe())
	// Output:
	// ESP deployment: epoch 1s, 1 receptor(s), 1 leg(s)
	//   type rfid: r0@shelf0
	//     Smooth    cql: SELECT tag_id, count(*) AS n FROM smooth_input [Range By ...
	//     output (receptor_id string, spatial_granule string, tag_id string, n int)
}

// ExamplePlan shows the declarative layer on its own: planning and
// executing the paper's shelf-count query against a stream.
func ExamplePlan() {
	cat := cql.Catalog{"rfid_data": stream.MustSchema(
		stream.Field{Name: "tag_id", Kind: stream.KindString},
		stream.Field{Name: "shelf", Kind: stream.KindInt},
	)}
	g, err := cql.PlanString(
		`SELECT shelf, count(distinct tag_id) AS cnt
		 FROM rfid_data [Range By '5 sec'] GROUP BY shelf`,
		cat, cql.PlanConfig{Slide: time.Second})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	t0 := time.Unix(0, 0).UTC()
	g.Push("rfid_data", stream.NewTuple(t0.Add(300*time.Millisecond), stream.String("A"), stream.Int(0)))
	g.Push("rfid_data", stream.NewTuple(t0.Add(600*time.Millisecond), stream.String("B"), stream.Int(0)))
	rows, _ := g.Advance(t0.Add(time.Second))
	for _, r := range rows {
		fmt.Printf("shelf %d has %d tags\n", r.Values[0].AsInt(), r.Values[1].AsInt())
	}
	// Output:
	// shelf 0 has 2 tags
}
