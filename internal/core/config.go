package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"time"

	"esp/internal/receptor"
	"esp/internal/stream"
)

// DeploymentConfig is the JSON form of a deployment: the paper's "easy to
// setup and configure for each receptor deployment" promise as a file a
// deployment engineer edits. Receptors themselves are runtime objects;
// the config carries everything else — epoch, proximity groups, per-type
// stage queries, static tables, and the Virtualize query.
//
//	{
//	  "epoch": "200ms",
//	  "groups": {"shelf0": {"type": "rfid", "members": ["reader0"]}},
//	  "pipelines": {
//	    "rfid": {
//	      "point":     "SELECT tag_id FROM point_input WHERE checksum_ok = TRUE",
//	      "smooth":    "SELECT tag_id, count(*) AS n FROM smooth_input [Range By '5 sec'] GROUP BY tag_id",
//	      "arbitrate": "SELECT ... HAVING sum(n) >= ALL(...)"
//	    }
//	  },
//	  "tables": {"expected_tags": {"columns": {"expected_tag": "string"},
//	             "rows": [{"expected_tag": "badge-1"}]}},
//	  "virtualize": {"query": "SELECT ...", "bind": {"rfid_input": "rfid"}}
//	}
type DeploymentConfig struct {
	Epoch     string                    `json:"epoch"`
	Groups    map[string]GroupConfig    `json:"groups"`
	Pipelines map[string]PipelineConfig `json:"pipelines,omitempty"`
	Tables    map[string]TableConfig    `json:"tables,omitempty"`
	Virtual   *VirtualizeConfig         `json:"virtualize,omitempty"`
}

// GroupConfig declares one proximity group.
type GroupConfig struct {
	Type    string   `json:"type"`
	Members []string `json:"members"`
}

// PipelineConfig carries the CQL text of each stage (empty = skipped).
type PipelineConfig struct {
	Point     string `json:"point,omitempty"`
	Smooth    string `json:"smooth,omitempty"`
	Merge     string `json:"merge,omitempty"`
	Arbitrate string `json:"arbitrate,omitempty"`
}

// TableConfig declares a static relation inline.
type TableConfig struct {
	// Columns maps column names to kinds (string, int, float, bool, time).
	Columns map[string]string `json:"columns"`
	// Order fixes the column order; if empty, columns sort by name.
	Order []string `json:"order,omitempty"`
	// Rows are the relation's tuples, keyed by column name.
	Rows []map[string]string `json:"rows"`
}

// VirtualizeConfig mirrors VirtualizeSpec with string-typed bindings.
type VirtualizeConfig struct {
	Query string            `json:"query"`
	Bind  map[string]string `json:"bind"`
}

// ParseDeploymentConfig decodes a JSON deployment description into a
// Deployment missing only its Receptors (and optional TieBreak), which
// the caller supplies at runtime.
func ParseDeploymentConfig(data []byte) (*Deployment, error) {
	var cfg DeploymentConfig
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&cfg); err != nil {
		return nil, fmt.Errorf("core: config: %w", err)
	}
	epoch, err := time.ParseDuration(cfg.Epoch)
	if err != nil {
		return nil, fmt.Errorf("core: config: bad epoch %q: %w", cfg.Epoch, err)
	}
	if epoch <= 0 {
		return nil, fmt.Errorf("core: config: epoch must be positive")
	}
	if len(cfg.Groups) == 0 {
		return nil, fmt.Errorf("core: config: no proximity groups")
	}
	dep := &Deployment{Epoch: epoch, Groups: receptor.NewGroups()}

	// Deterministic group registration order.
	names := make([]string, 0, len(cfg.Groups))
	for n := range cfg.Groups {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		g := cfg.Groups[n]
		if err := dep.Groups.Add(receptor.Group{
			Name: n, Type: receptor.Type(g.Type), Members: g.Members,
		}); err != nil {
			return nil, fmt.Errorf("core: config: %w", err)
		}
	}

	if len(cfg.Pipelines) > 0 {
		dep.Pipelines = make(map[receptor.Type]*Pipeline, len(cfg.Pipelines))
		for tn, pc := range cfg.Pipelines {
			t := receptor.Type(tn)
			pl := &Pipeline{Type: t}
			if pc.Point != "" {
				pl.Point = CQLStage{Query: pc.Point}
			}
			if pc.Smooth != "" {
				pl.Smooth = CQLStage{Query: pc.Smooth}
			}
			if pc.Merge != "" {
				pl.Merge = CQLStage{Query: pc.Merge}
			}
			if pc.Arbitrate != "" {
				pl.Arbitrate = CQLStage{Query: pc.Arbitrate}
			}
			dep.Pipelines[t] = pl
		}
	}

	if len(cfg.Tables) > 0 {
		dep.Tables = make(map[string]*stream.Table, len(cfg.Tables))
		for name, tc := range cfg.Tables {
			tbl, err := buildTable(tc)
			if err != nil {
				return nil, fmt.Errorf("core: config: table %q: %w", name, err)
			}
			dep.Tables[name] = tbl
		}
	}

	if cfg.Virtual != nil {
		v := &VirtualizeSpec{Query: cfg.Virtual.Query, Bind: make(map[string]receptor.Type, len(cfg.Virtual.Bind))}
		for input, tn := range cfg.Virtual.Bind {
			v.Bind[input] = receptor.Type(tn)
		}
		dep.Virtualize = v
	}
	return dep, nil
}

func buildTable(tc TableConfig) (*stream.Table, error) {
	if len(tc.Columns) == 0 {
		return nil, fmt.Errorf("no columns")
	}
	order := tc.Order
	if len(order) == 0 {
		for c := range tc.Columns {
			order = append(order, c)
		}
		sort.Strings(order)
	}
	fields := make([]stream.Field, len(order))
	for i, c := range order {
		kindName, ok := tc.Columns[c]
		if !ok {
			return nil, fmt.Errorf("order lists unknown column %q", c)
		}
		k, err := parseKind(kindName)
		if err != nil {
			return nil, err
		}
		fields[i] = stream.Field{Name: c, Kind: k}
	}
	schema, err := stream.NewSchema(fields...)
	if err != nil {
		return nil, err
	}
	rows := make([]stream.Tuple, len(tc.Rows))
	for ri, rowMap := range tc.Rows {
		vals := make([]stream.Value, len(order))
		for ci, c := range order {
			cell, ok := rowMap[c]
			if !ok {
				vals[ci] = stream.Null()
				continue
			}
			v, err := stream.ParseValue(fields[ci].Kind, cell)
			if err != nil {
				return nil, fmt.Errorf("row %d, column %q: %w", ri, c, err)
			}
			vals[ci] = v
		}
		rows[ri] = stream.Tuple{Values: vals}
	}
	return stream.NewTable(schema, rows)
}

func parseKind(name string) (stream.Kind, error) {
	switch name {
	case "string":
		return stream.KindString, nil
	case "int":
		return stream.KindInt, nil
	case "float":
		return stream.KindFloat, nil
	case "bool":
		return stream.KindBool, nil
	case "time":
		return stream.KindTime, nil
	default:
		return stream.KindNull, fmt.Errorf("unknown kind %q", name)
	}
}
