package core

import (
	"fmt"
	"math"
	"strconv"
	"time"

	"esp/internal/stream"
)

// This file is the toolkit of prebuilt ESP Operators the paper's
// conclusion anticipates: "a suite of ESP Operators, implementing
// different ESP stages or entire pipelines, that can be used to configure
// and deploy cleaning pipelines". Most are defined as declarative queries
// (dogfooding the CQL planner); the rest are Go operators.

// durText renders a duration for a CQL window clause.
func durText(d time.Duration) string {
	return strconv.FormatInt(int64(d/time.Millisecond), 10) + " ms"
}

func floatText(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// Compose chains several stages into one stage slot — e.g. a checksum
// filter followed by an expected-tag join in Point, or the reversed
// Arbitrate-then-Smooth ordering of the paper's Figure 5 ablation packed
// into the Arbitrate slot.
func Compose(stages ...Stage) Stage {
	name := "compose("
	for i, s := range stages {
		if i > 0 {
			name += "; "
		}
		name += s.Describe()
	}
	name += ")"
	return FuncStage{
		Name: name,
		Fn: func(in *stream.Schema, env BuildEnv) (stream.Operator, error) {
			var ops []stream.Operator
			cur := in
			for i, s := range stages {
				op, err := s.Build(cur, env)
				if err != nil {
					return nil, fmt.Errorf("core: compose stage %d: %w", i, err)
				}
				// Open now to learn the output schema for the next stage;
				// the chain's Open re-opens, which is harmless pre-data.
				if err := op.Open(cur); err != nil {
					return nil, fmt.Errorf("core: compose stage %d: %w", i, err)
				}
				ops = append(ops, op)
				cur = op.Schema()
			}
			return stream.NewChain(ops...), nil
		},
	}
}

// PointChecksum drops readings whose named boolean field is false and
// projects the field away — the Alien reader's built-in checksum filter
// (paper §4: Point functionality "out of the box").
func PointChecksum(field string) Stage {
	return FuncStage{
		Name: "point-checksum(" + field + ")",
		Fn: func(in *stream.Schema, env BuildEnv) (stream.Operator, error) {
			if _, ok := in.Index(field); !ok {
				return nil, fmt.Errorf("core: PointChecksum: no field %q in %s", field, in)
			}
			var keep []stream.NamedExpr
			for _, f := range in.Fields() {
				if f.Name == field {
					continue
				}
				keep = append(keep, stream.NamedExpr{Name: f.Name, Expr: stream.NewCol(f.Name)})
			}
			return stream.NewChain(
				stream.NewFilter(stream.NewBinary(stream.OpEq, stream.NewCol(field), stream.NewConst(stream.Bool(true)))),
				stream.NewProject(keep...),
			), nil
		},
	}
}

// PointBelow filters readings where field < limit — the paper's Query 4
// (`SELECT * FROM point_input WHERE temp < 50`).
func PointBelow(field string, limit float64) Stage {
	return CQLStage{Query: fmt.Sprintf(
		"SELECT * FROM point_input WHERE %s < %s", field, floatText(limit))}
}

// PointExpectedTags keeps only readings whose tag field appears in the
// named static relation — the digital-home Point stage's "join with a
// static relation containing expected tag IDs" (§6.1).
func PointExpectedTags(tagField, table, tableField string) Stage {
	return CQLStage{Query: fmt.Sprintf(
		"SELECT * FROM point_input, %s WHERE %s = %s", table, tagField, tableField)}
}

// PointScale applies a fixed linear calibration to one field:
// field ← field*scale + offset (unit conversion, fixed sensor bias).
func PointScale(field string, scale, offset float64) Stage {
	return FuncStage{
		Name: fmt.Sprintf("point-scale(%s*%s%+g)", field, floatText(scale), offset),
		Fn: func(in *stream.Schema, env BuildEnv) (stream.Operator, error) {
			ix, ok := in.Index(field)
			if !ok {
				return nil, fmt.Errorf("core: PointScale: no field %q in %s", field, in)
			}
			if !in.Field(ix).Kind.Numeric() {
				return nil, fmt.Errorf("core: PointScale: field %q is %s, want numeric", field, in.Field(ix).Kind)
			}
			var exprs []stream.NamedExpr
			for _, f := range in.Fields() {
				if f.Name == field {
					exprs = append(exprs, stream.NamedExpr{Name: f.Name, Expr: stream.NewBinary(stream.OpAdd,
						stream.NewBinary(stream.OpMul, stream.NewCol(field), stream.NewConst(stream.Float(scale))),
						stream.NewConst(stream.Float(offset)))})
					continue
				}
				exprs = append(exprs, stream.NamedExpr{Name: f.Name, Expr: stream.NewCol(f.Name)})
			}
			return stream.NewProject(exprs...), nil
		},
	}
}

// PointCalibrateTable applies per-device linear calibration from a static
// relation — the paper's §4.3.1 "calibration functions or static table
// joins (e.g., for inventory lookups) to be defined and inserted in a
// pipeline". The table must have (keyCol, scaleCol, offsetCol) rows keyed
// by receptor ID; devices without a row are passed through uncalibrated.
// The stage preserves the input schema.
func PointCalibrateTable(field, table, keyCol, scaleCol, offsetCol string) Stage {
	return FuncStage{
		Name: fmt.Sprintf("point-calibrate(%s via %s)", field, table),
		Fn: func(in *stream.Schema, env BuildEnv) (stream.Operator, error) {
			tbl, ok := env.Tables[table]
			if !ok {
				return nil, fmt.Errorf("core: PointCalibrateTable: no table %q in deployment", table)
			}
			ix, ok := in.Index(field)
			if !ok {
				return nil, fmt.Errorf("core: PointCalibrateTable: no field %q in %s", field, in)
			}
			if _, ok := in.Index(ColReceptorID); !ok {
				return nil, fmt.Errorf("core: PointCalibrateTable: input %s has no %s column", in, ColReceptorID)
			}
			// Index the calibration rows once.
			ki, ok := tbl.Schema().Index(keyCol)
			if !ok {
				return nil, fmt.Errorf("core: PointCalibrateTable: table has no column %q", keyCol)
			}
			si, ok := tbl.Schema().Index(scaleCol)
			if !ok {
				return nil, fmt.Errorf("core: PointCalibrateTable: table has no column %q", scaleCol)
			}
			oi, ok := tbl.Schema().Index(offsetCol)
			if !ok {
				return nil, fmt.Errorf("core: PointCalibrateTable: table has no column %q", offsetCol)
			}
			type cal struct{ scale, offset float64 }
			cals := make(map[string]cal, tbl.Len())
			for _, row := range tbl.Rows() {
				k := row.Values[ki]
				if k.IsNull() || row.Values[si].IsNull() || row.Values[oi].IsNull() {
					continue
				}
				cals[k.AsString()] = cal{scale: row.Values[si].AsFloat(), offset: row.Values[oi].AsFloat()}
			}
			ridIx, _ := in.Index(ColReceptorID)
			return &stream.MapFunc{Fn: func(t stream.Tuple) ([]stream.Tuple, error) {
				id := t.Values[ridIx]
				v := t.Values[ix]
				if id.IsNull() || v.IsNull() {
					return []stream.Tuple{t}, nil
				}
				c, ok := cals[id.AsString()]
				if !ok {
					return []stream.Tuple{t}, nil
				}
				out := t.Clone()
				out.Values[ix] = stream.Float(v.AsFloat()*c.scale + c.offset)
				return []stream.Tuple{out}, nil
			}}, nil
		},
	}
}

// PointSample sheds load by passing only every n-th reading — the
// paper's note that Point "may also be used to improve performance
// through early elimination of data" (§3.2).
func PointSample(n int) Stage {
	return FuncStage{
		Name: fmt.Sprintf("point-sample(1/%d)", n),
		Fn: func(in *stream.Schema, env BuildEnv) (stream.Operator, error) {
			if n < 1 {
				return nil, fmt.Errorf("core: PointSample: n must be at least 1")
			}
			return &stream.Sample{EveryN: n}, nil
		},
	}
}

// SmoothTagCount is the paper's Query 2: within the temporal granule,
// count each tag's reads, interpolating for polls that missed it.
// Output: (tag_id, n).
func SmoothTagCount(granule time.Duration) Stage {
	return CQLStage{Query: fmt.Sprintf(
		"SELECT tag_id, count(*) AS n FROM smooth_input [Range By '%s'] GROUP BY tag_id",
		durText(granule))}
}

// SmoothAvg averages one sensor field over the temporal granule — the
// redwood Smooth stage (§5.2.1). Emits once per epoch while the window
// holds at least one reading, masking lost messages. Output: (field).
func SmoothAvg(field string, granule time.Duration) Stage {
	return CQLStage{Query: fmt.Sprintf(
		"SELECT avg(%s) AS %s FROM smooth_input [Range By '%s']",
		field, field, durText(granule))}
}

// SmoothEvents interpolates ON events from a single detector (§6.1, X10):
// if the detector fired at least minCount times within the granule, the
// stage reports an ON for the epoch. Output: (value).
func SmoothEvents(granule time.Duration, minCount int) Stage {
	return CQLStage{Query: fmt.Sprintf(
		"SELECT 'ON' AS value FROM smooth_input [Range By '%s'] HAVING count(*) >= %d",
		durText(granule), minCount)}
}

// MergeAvg spatially averages one field across a proximity group's
// streams over the granule (§5.2.2). Output: (field); the processor
// re-annotates the granule.
func MergeAvg(field string, granule time.Duration) Stage {
	return CQLStage{Query: fmt.Sprintf(
		"SELECT avg(%s) AS %s FROM merge_input [Range By '%s']",
		field, field, durText(granule))}
}

// MergeOutlierAvg is the paper's Query 5: average a field across the
// group after discarding readings more than sigma standard deviations
// from the group mean — the fail-dirty outlier rejection of §5.1.
// Output: (spatial_granule, field).
func MergeOutlierAvg(field string, granule time.Duration, sigma float64) Stage {
	g := durText(granule)
	// The small epsilon keeps boundary readings: with exactly two
	// survivors, |x - mean| equals the standard deviation to within
	// floating-point rounding, and without the slack both would be
	// discarded at random.
	return CQLStage{Query: fmt.Sprintf(`
		SELECT s.spatial_granule AS spatial_granule, avg(s.%[1]s) AS %[1]s
		FROM merge_input s [Range By '%[2]s'],
		     (SELECT spatial_granule, avg(%[1]s) AS a, stdev(%[1]s) AS sd
		      FROM merge_input [Range By '%[2]s'] GROUP BY spatial_granule) AS m
		WHERE m.spatial_granule = s.spatial_granule
		  AND s.%[1]s <= m.a + %[3]s * m.sd + 0.000001
		  AND s.%[1]s >= m.a - %[3]s * m.sd - 0.000001
		GROUP BY s.spatial_granule`, field, g, floatText(sigma))}
}

// MergeMedian takes the median of a field across the proximity group —
// the robust-statistics alternative to MergeOutlierAvg: in a group of
// three or more devices, a single fail-dirty device cannot move the
// median at all, whereas it can shift the ±σ-filtered average (compare
// with `espbench -exp robust`). Output: (field).
func MergeMedian(field string, granule time.Duration) Stage {
	return CQLStage{Query: fmt.Sprintf(
		"SELECT median(%s) AS %s FROM merge_input [Range By '%s']",
		field, field, durText(granule))}
}

// MergeVote reports an ON when at least threshold distinct devices in the
// group reported within the granule — the digital-home X10 Merge (§6.1).
// Output: (value).
func MergeVote(granule time.Duration, threshold int) Stage {
	return CQLStage{Query: fmt.Sprintf(
		"SELECT 'ON' AS value FROM merge_input [Range By '%s'] HAVING count(distinct receptor_id) >= %d",
		durText(granule), threshold)}
}

// MergeVoteLive is MergeVote with a health-aware denominator: instead
// of a fixed device count, the ON threshold is max(1, ceil(quorumFrac ×
// live members)) recomputed at every punctuation from the supervisor's
// live membership (BuildEnv.Live). When a device is quarantined the
// quorum rescales — a group of three at frac 0.6 needs 2 of 3 votes
// while whole, 2 of 2 with one device down, 1 of 1 with two down —
// rather than silently under-reporting against dead voters. Without
// supervision every member counts as live and (for frac ≈ k/n) the
// stage behaves like MergeVote(granule, k). Output: (value).
func MergeVoteLive(granule time.Duration, quorumFrac float64) Stage {
	return FuncStage{
		Name: fmt.Sprintf("merge-vote-live(%s)", floatText(quorumFrac)),
		Fn: func(in *stream.Schema, env BuildEnv) (stream.Operator, error) {
			if quorumFrac <= 0 || quorumFrac > 1 {
				return nil, fmt.Errorf("core: MergeVoteLive: quorumFrac %v outside (0, 1]", quorumFrac)
			}
			if _, ok := in.Index(ColReceptorID); !ok {
				return nil, fmt.Errorf("core: MergeVoteLive: input %s has no %s column", in, ColReceptorID)
			}
			if env.Live == nil || env.Group == "" {
				return nil, fmt.Errorf("core: MergeVoteLive must run as a Merge stage (no group/live view in env)")
			}
			return &voteLiveOp{granule: granule, frac: quorumFrac, group: env.Group, live: env.Live}, nil
		},
	}
}

// voteLiveOp implements MergeVoteLive: a sliding distinct-receptor
// counter over (b−granule, b] windows (the same boundaries WindowAgg
// uses) whose HAVING threshold is re-derived from live membership at
// each emission.
type voteLiveOp struct {
	granule time.Duration
	frac    float64
	group   string
	live    LiveView

	ridIx int
	out   *stream.Schema
	buf   []voteRead
}

// voteRead is one buffered (timestamp, receptor) observation.
type voteRead struct {
	ts  time.Time
	rid string
}

// Open implements Operator.
func (o *voteLiveOp) Open(in *stream.Schema) error {
	ix, ok := in.Index(ColReceptorID)
	if !ok {
		return fmt.Errorf("core: MergeVoteLive: input %s has no %s column", in, ColReceptorID)
	}
	o.ridIx = ix
	out, err := stream.NewSchema(stream.Field{Name: "value", Kind: stream.KindString})
	if err != nil {
		return err
	}
	o.out = out
	return nil
}

// Schema implements Operator.
func (o *voteLiveOp) Schema() *stream.Schema { return o.out }

// Process implements Operator.
func (o *voteLiveOp) Process(t stream.Tuple) ([]stream.Tuple, error) {
	rid := t.Values[o.ridIx]
	if rid.IsNull() {
		return nil, nil
	}
	o.buf = append(o.buf, voteRead{ts: t.Ts, rid: rid.AsString()})
	return nil, nil
}

// Advance implements Operator: the processor punctuates once per epoch,
// and like WindowAgg with Slide = epoch the operator emits one window
// (now−granule, now] per punctuation when the in-window
// distinct-receptor count reaches the live quorum.
func (o *voteLiveOp) Advance(now time.Time) ([]stream.Tuple, error) {
	return o.emit(now), nil
}

// Close implements Operator.
func (o *voteLiveOp) Close() ([]stream.Tuple, error) { return nil, nil }

// emit evaluates the window (b−granule, b].
func (o *voteLiveOp) emit(b time.Time) []stream.Tuple {
	lo := b.Add(-o.granule)
	live := o.buf[:0]
	distinct := make(map[string]bool)
	for _, r := range o.buf {
		if !r.ts.After(lo) {
			continue // slid out of every future window
		}
		live = append(live, r)
		if !r.ts.After(b) {
			distinct[r.rid] = true
		}
	}
	o.buf = live
	quorum := int(math.Ceil(o.frac * float64(o.live.LiveCount(o.group))))
	if quorum < 1 {
		quorum = 1
	}
	if len(distinct) < quorum {
		return nil
	}
	return []stream.Tuple{{Ts: b, Values: []stream.Value{stream.String("ON")}}}
}

// MergeUnion passes the group's streams through unchanged (the
// digital-home RFID Merge, which just unions the two readers' smoothed
// streams — §6.1).
func MergeUnion() Stage {
	return FuncStage{
		Name: "merge-union",
		Fn: func(in *stream.Schema, env BuildEnv) (stream.Operator, error) {
			return stream.NewChain(), nil
		},
	}
}

// ArbitrateMaxSum is the paper's Query 3 generalised: attribute each key
// (tag) to the spatial granule with the greatest total score in the
// epoch; ties go to BuildEnv.TieBreak (§4.3.1's weaker-antenna
// calibration). scoreField "" scores by row count — the literal Query 3,
// for use directly on raw readings. Output: (spatial_granule, key).
func ArbitrateMaxSum(keyField, scoreField string) Stage {
	score := "count(*)"
	if scoreField != "" {
		score = "sum(" + scoreField + ")"
	}
	return CQLStage{Query: fmt.Sprintf(`
		SELECT spatial_granule, %[1]s FROM arbitrate_input ai1 [Range By 'NOW']
		GROUP BY spatial_granule, %[1]s
		HAVING %[2]s >= ALL(SELECT %[2]s FROM arbitrate_input ai2 [Range By 'NOW']
		                    WHERE ai1.%[1]s = ai2.%[1]s GROUP BY spatial_granule)`,
		keyField, score)}
}

// PersonDetectorQuery is the paper's Query 6: one vote per receptor type
// per epoch (sound above noiseThreshold, any expected RFID tag, any ON
// motion report), detecting a person when votes reach threshold. Bind the
// base stream names sensors_input/rfid_input/motion_input to the mote,
// RFID, and motion type outputs.
func PersonDetectorQuery(noiseThreshold float64, votes int) string {
	return fmt.Sprintf(`
		SELECT 'Person-in-room' AS event
		FROM (SELECT 1 AS cnt FROM sensors_input [Range By 'NOW'] WHERE noise > %s) AS sensor_count,
		     (SELECT 1 AS cnt FROM rfid_input [Range By 'NOW'] HAVING count(distinct tag_id) >= 1) AS rfid_count,
		     (SELECT 1 AS cnt FROM motion_input [Range By 'NOW'] WHERE value = 'ON') AS motion_count
		WHERE sensor_count.cnt + rfid_count.cnt + motion_count.cnt >= %d`,
		floatText(noiseThreshold), votes)
}
