// Package netchaos is an in-process TCP fault injector: a proxy that
// pipes client connections to a target address and breaks them on
// command — connection resets, byte-level truncation (torn frames),
// half-open stalls, and full partitions — so resilience harnesses can
// exercise real sockets dying at controlled points without kernel
// privileges or external tooling. All fault injection is explicit and
// synchronous: the harness decides exactly when links die, which keeps
// chaos runs reproducible.
package netchaos

import (
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// noTruncate is the per-link byte budget meaning "unlimited".
const noTruncate = int64(1) << 62

// Proxy is one chaos proxy instance. Faults apply to the links live at
// the moment of the call; connections made afterwards are clean (until
// the next fault), except under Partition, which also refuses new
// connections until Heal.
type Proxy struct {
	ln     net.Listener
	target string

	mu          sync.Mutex
	links       map[*link]struct{}
	partitioned bool
	stall       chan struct{} // non-nil while stalled; closed by Resume
	closed      bool

	latency  atomic.Int64 // added delay per forwarded chunk, ns
	accepted atomic.Int64
	killed   atomic.Int64 // links killed by fault injection

	wg sync.WaitGroup
}

// Stats is a snapshot of the proxy's fault accounting.
type Stats struct {
	Accepted int64 // connections accepted
	Killed   int64 // links killed by fault injection
	Live     int   // links currently forwarding
}

// Listen starts a proxy on a free loopback port, forwarding to target.
func Listen(target string) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &Proxy{ln: ln, target: target, links: make(map[*link]struct{})}
	p.wg.Add(1)
	go p.accept()
	return p, nil
}

// Addr is the proxy's listen address — what clients dial instead of
// the target.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Stats snapshots the fault accounting.
func (p *Proxy) Stats() Stats {
	p.mu.Lock()
	live := len(p.links)
	p.mu.Unlock()
	return Stats{Accepted: p.accepted.Load(), Killed: p.killed.Load(), Live: live}
}

// Close kills every link and stops accepting. The proxy is done when
// Close returns.
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	if p.stall != nil {
		close(p.stall)
		p.stall = nil
	}
	links := p.snapshotLocked()
	p.mu.Unlock()
	err := p.ln.Close()
	for _, l := range links {
		l.kill()
	}
	p.wg.Wait()
	return err
}

func (p *Proxy) snapshotLocked() []*link {
	out := make([]*link, 0, len(p.links))
	for l := range p.links {
		out = append(out, l)
	}
	return out
}

// KillAll resets every live link — both sockets close mid-whatever
// they were doing, the bluntest fault a network can deal.
func (p *Proxy) KillAll() {
	p.mu.Lock()
	links := p.snapshotLocked()
	p.mu.Unlock()
	for _, l := range links {
		if l.kill() {
			p.killed.Add(1)
		}
	}
}

// TruncateAll lets each live link forward at most n more bytes in each
// direction, then kills it — a frame torn mid-payload, the fault the
// wire decoder's diagnostics exist for.
func (p *Proxy) TruncateAll(n int64) {
	p.mu.Lock()
	links := p.snapshotLocked()
	p.mu.Unlock()
	for _, l := range links {
		l.c2t.Store(n)
		l.t2c.Store(n)
	}
}

// Stall freezes forwarding on every link, current and future, without
// closing any socket — the half-open failure: peers see an open
// connection that never delivers. Resume unfreezes; a killed link
// stops waiting.
func (p *Proxy) Stall() {
	p.mu.Lock()
	if p.stall == nil {
		p.stall = make(chan struct{})
	}
	p.mu.Unlock()
}

// Resume lifts a Stall.
func (p *Proxy) Resume() {
	p.mu.Lock()
	if p.stall != nil {
		close(p.stall)
		p.stall = nil
	}
	p.mu.Unlock()
}

// Partition kills every live link and refuses new connections until
// Heal — the network is simply gone.
func (p *Proxy) Partition() {
	p.mu.Lock()
	p.partitioned = true
	p.mu.Unlock()
	p.KillAll()
}

// Heal lifts a Partition.
func (p *Proxy) Heal() {
	p.mu.Lock()
	p.partitioned = false
	p.mu.Unlock()
}

// SetLatency adds a fixed delay to every forwarded chunk (0 clears).
func (p *Proxy) SetLatency(d time.Duration) { p.latency.Store(int64(d)) }

func (p *Proxy) accept() {
	defer p.wg.Done()
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.accepted.Add(1)
		p.mu.Lock()
		refuse := p.partitioned || p.closed
		p.mu.Unlock()
		if refuse {
			conn.Close()
			continue
		}
		up, err := net.Dial("tcp", p.target)
		if err != nil {
			conn.Close()
			continue
		}
		l := &link{p: p, client: conn, upstream: up, dead: make(chan struct{})}
		l.c2t.Store(noTruncate)
		l.t2c.Store(noTruncate)
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			conn.Close()
			up.Close()
			continue
		}
		p.links[l] = struct{}{}
		p.mu.Unlock()
		p.wg.Add(2)
		go l.pipe(up, conn, &l.c2t)
		go l.pipe(conn, up, &l.t2c)
	}
}

// link is one proxied connection: the client-side socket, the
// upstream socket, and per-direction truncation budgets.
type link struct {
	p        *Proxy
	client   net.Conn
	upstream net.Conn
	c2t      atomic.Int64 // client→target byte budget
	t2c      atomic.Int64 // target→client byte budget
	dead     chan struct{}
	killOnce sync.Once
}

// kill closes both sockets; reports whether this call was the one that
// did it (for fault accounting).
func (l *link) kill() bool {
	did := false
	l.killOnce.Do(func() {
		did = true
		close(l.dead)
		l.client.Close()
		l.upstream.Close()
	})
	return did
}

// pipe forwards src→dst, honoring stalls, latency, and the direction's
// truncation budget. Either direction ending ends the link: the wire
// protocol is request/reply or server-push, and a half-dead link is a
// dead link for both.
func (l *link) pipe(dst, src net.Conn, budget *atomic.Int64) {
	defer l.p.wg.Done()
	defer l.finish()
	buf := make([]byte, 32<<10)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			if !l.waitStall() {
				return
			}
			if d := time.Duration(l.p.latency.Load()); d > 0 {
				select {
				case <-time.After(d):
				case <-l.dead:
					return
				}
			}
			chunk := buf[:n]
			rem := budget.Add(-int64(n))
			if rem < 0 {
				// Budget exhausted mid-chunk: forward the allowed prefix
				// (tearing the frame), then die.
				keep := int64(n) + rem
				if keep > 0 {
					_, _ = dst.Write(chunk[:keep])
				}
				if l.kill() {
					l.p.killed.Add(1)
				}
				return
			}
			if _, werr := dst.Write(chunk); werr != nil {
				return
			}
		}
		if err != nil {
			return
		}
	}
}

// waitStall blocks while the proxy is stalled; false means the link
// died while waiting.
func (l *link) waitStall() bool {
	l.p.mu.Lock()
	ch := l.p.stall
	l.p.mu.Unlock()
	if ch == nil {
		return true
	}
	select {
	case <-ch:
		return true
	case <-l.dead:
		return false
	}
}

// finish closes the link (idempotent) and removes it from the proxy.
func (l *link) finish() {
	l.kill()
	l.p.mu.Lock()
	delete(l.p.links, l)
	l.p.mu.Unlock()
}
