package netchaos

import (
	"bytes"
	"io"
	"net"
	"testing"
	"time"
)

// echoServer accepts connections and echoes bytes back until closed.
func echoServer(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func() { io.Copy(c, c); c.Close() }() //nolint:errcheck
		}
	}()
	t.Cleanup(func() { ln.Close() })
	return ln
}

func proxyFor(t *testing.T, ln net.Listener) *Proxy {
	t.Helper()
	p, err := Listen(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

func dialEcho(t *testing.T, p *Proxy) net.Conn {
	t.Helper()
	c, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestPassthrough(t *testing.T) {
	p := proxyFor(t, echoServer(t))
	c := dialEcho(t, p)
	msg := []byte("hello through the proxy")
	if _, err := c.Write(msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(c, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("echoed %q, want %q", got, msg)
	}
	if st := p.Stats(); st.Accepted != 1 || st.Killed != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestKillAll(t *testing.T) {
	p := proxyFor(t, echoServer(t))
	c := dialEcho(t, p)
	if _, err := c.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadFull(c, make([]byte, 1)); err != nil {
		t.Fatal(err)
	}
	p.KillAll()
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := c.Read(make([]byte, 1)); err == nil {
		t.Fatal("read succeeded on a killed link")
	}
	if st := p.Stats(); st.Killed != 1 {
		t.Fatalf("killed = %d, want 1", st.Killed)
	}
	// The next connection is clean.
	c2 := dialEcho(t, p)
	if _, err := c2.Write([]byte("y")); err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadFull(c2, make([]byte, 1)); err != nil {
		t.Fatalf("fresh link after kill: %v", err)
	}
}

func TestPartitionAndHeal(t *testing.T) {
	p := proxyFor(t, echoServer(t))
	c := dialEcho(t, p)
	p.Partition()
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := c.Read(make([]byte, 1)); err == nil {
		t.Fatal("read succeeded across a partition")
	}
	// New connections are refused (accepted then immediately closed).
	c2 := dialEcho(t, p)
	c2.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := c2.Read(make([]byte, 1)); err == nil {
		t.Fatal("read succeeded on a partitioned dial")
	}
	p.Heal()
	c3 := dialEcho(t, p)
	if _, err := c3.Write([]byte("z")); err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadFull(c3, make([]byte, 1)); err != nil {
		t.Fatalf("healed link: %v", err)
	}
}

func TestTruncateTearsMidChunk(t *testing.T) {
	p := proxyFor(t, echoServer(t))
	c := dialEcho(t, p)
	p.TruncateAll(3)
	if _, err := c.Write([]byte("abcdefgh")); err != nil {
		t.Fatal(err)
	}
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	got, _ := io.ReadAll(c) // reads until the killed link closes
	if len(got) > 3 {
		t.Fatalf("read %q past the 3-byte budget", got)
	}
	if st := p.Stats(); st.Killed != 1 {
		t.Fatalf("killed = %d, want 1", st.Killed)
	}
}

func TestStallIsHalfOpen(t *testing.T) {
	p := proxyFor(t, echoServer(t))
	c := dialEcho(t, p)
	p.Stall()
	if _, err := c.Write([]byte("q")); err != nil {
		t.Fatal(err) // write lands in kernel buffers; the socket is open
	}
	c.SetReadDeadline(time.Now().Add(300 * time.Millisecond))
	if _, err := c.Read(make([]byte, 1)); err == nil {
		t.Fatal("stalled link delivered data")
	} else if ne, ok := err.(net.Error); !ok || !ne.Timeout() {
		t.Fatalf("stalled read failed with %v, want timeout (socket must stay open)", err)
	}
	p.Resume()
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := io.ReadFull(c, make([]byte, 1)); err != nil {
		t.Fatalf("resumed link: %v", err)
	}
}
