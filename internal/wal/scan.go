package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"esp/internal/stream"
)

// Segment filename prefixes. Sequence numbers are contiguous from 1; a
// gap is treated as corruption (the scan stops before it).
const (
	journalPrefix = "wal-"
	archivePrefix = "arc-"
	segSuffix     = ".seg"
)

func segName(prefix string, seq int) string {
	return fmt.Sprintf("%s%08d%s", prefix, seq, segSuffix)
}

// Publish is one journalled publish: the receptor it targeted and its
// readings, in append order.
type Publish struct {
	Receptor string
	Tuples   []stream.Tuple
}

// Epoch is one committed epoch: its barrier boundary and every publish
// journalled since the previous barrier, in order.
type Epoch struct {
	Boundary  time.Time
	Publishes []Publish
}

// Recovery is what a scan of an existing log directory found: the
// committed history to replay, plus diagnostics about what the crash
// (if any) cost. Open returns it alongside the reopened log.
type Recovery struct {
	// Epochs is the committed history in commit order. Replaying these
	// publishes and boundaries through the tenant's processor rebuilds
	// its state exactly (the replay-commute property).
	Epochs []Epoch
	// Last is the last committed barrier (zero when none committed).
	Last time.Time
	// Tail is the valid publishes journalled after the last barrier.
	// They were never acked as durable (durability is the commit
	// fsync), so recovery discards them: clients re-send everything
	// after the last committed epoch.
	Tail []Publish
	// ArchivedThrough is the last epoch whose cleaned output survived
	// in the archive; replay regenerates output for later committed
	// epochs (the archive is synced lazily, so it may trail the
	// journal after a crash).
	ArchivedThrough time.Time
	// Corruption describes why the journal scan stopped before the
	// physical end of the log ("" when the log was clean). The scan
	// stops at the last valid record; everything after — including any
	// later segments — is discarded by truncation.
	Corruption string
	// Discarded is how many journal bytes truncation dropped (torn
	// tail, corrupt records, uncommitted publishes, later segments).
	Discarded int64
}

// Empty reports whether the scan found no committed history.
func (r *Recovery) Empty() bool { return r == nil || len(r.Epochs) == 0 }

// segFile is one on-disk segment.
type segFile struct {
	path string
	seq  int
	size int64
}

// listSegs returns dir's prefix-matching segments in sequence order.
func listSegs(dir, prefix string) ([]segFile, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []segFile
	for _, ent := range ents {
		name := ent.Name()
		var seq int
		if _, err := fmt.Sscanf(name, prefix+"%08d"+segSuffix, &seq); err != nil || segName(prefix, seq) != name {
			continue
		}
		info, err := ent.Info()
		if err != nil {
			return nil, err
		}
		segs = append(segs, segFile{path: filepath.Join(dir, name), seq: seq, size: info.Size()})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].seq < segs[j].seq })
	return segs, nil
}

// scanPos is a valid resume point: the segment and offset right after
// the last good barrier.
type scanPos struct {
	seq int   // 0 = no barrier anywhere (truncate to nothing)
	end int64 // offset just past the barrier record
}

// journalScan is the raw result of scanning the journal segments.
type journalScan struct {
	segs    []segFile
	rec     Recovery
	good    scanPos // last commit barrier
	total   int64   // total journal bytes on disk
	counts  Catalog // publish/epoch counts of the surviving history
	lastSeq int     // highest surviving segment sequence (0 = none)
}

// scanJournal reads every journal segment in order, stopping at the
// first invalid byte and collecting the committed history before it.
func scanJournal(dir string) (*journalScan, error) {
	segs, err := listSegs(dir, journalPrefix)
	if err != nil {
		return nil, err
	}
	js := &journalScan{segs: segs}
	var pending []Publish
	var pendingTuples int64
	expect := 1
	hasCommit := false
scan:
	for _, seg := range segs {
		js.total += seg.size
		if seg.seq != expect {
			js.rec.Corruption = fmt.Sprintf("journal segment gap: found seq %d, want %d", seg.seq, expect)
			break
		}
		expect++
		b, err := os.ReadFile(seg.path)
		if err != nil {
			return nil, err
		}
		if len(b) < len(segHeader) || !bytes.Equal(b[:len(segHeader)], segHeader[:]) {
			js.rec.Corruption = fmt.Sprintf("%s: bad segment header", filepath.Base(seg.path))
			break
		}
		off := int64(len(segHeader))
		for int(off) < len(b) {
			r, n, err := DecodeRecord(b[off:])
			if err != nil {
				js.rec.Corruption = fmt.Sprintf("%s@%d: %v", filepath.Base(seg.path), off, err)
				break scan
			}
			switch r.Kind {
			case KindPublish:
				pending = append(pending, Publish{Receptor: r.Receptor, Tuples: r.Tuples})
				pendingTuples += int64(len(r.Tuples))
			case KindCommit:
				if hasCommit && !r.Epoch.After(js.rec.Last) {
					js.rec.Corruption = fmt.Sprintf("%s@%d: non-monotonic commit %v (last %v)",
						filepath.Base(seg.path), off, r.Epoch, js.rec.Last)
					break scan
				}
				hasCommit = true
				js.rec.Epochs = append(js.rec.Epochs, Epoch{Boundary: r.Epoch, Publishes: pending})
				js.rec.Last = r.Epoch
				js.counts.Epochs++
				js.counts.PublishRecords += int64(len(pending))
				js.counts.PublishTuples += pendingTuples
				pending, pendingTuples = nil, 0
				js.good = scanPos{seq: seg.seq, end: off + int64(n)}
			default:
				js.rec.Corruption = fmt.Sprintf("%s@%d: unexpected %v record in journal",
					filepath.Base(seg.path), off, r.Kind)
				break scan
			}
			off += int64(n)
		}
	}
	js.rec.Tail = pending
	if js.good.seq > 0 {
		js.counts.StartEpoch = js.rec.Epochs[0].Boundary.UnixNano()
		js.counts.EndEpoch = js.rec.Last.UnixNano()
		js.lastSeq = js.good.seq
	}
	return js, nil
}

// archiveScan is the raw result of scanning the archive segments
// against an already-scanned journal.
type archiveScan struct {
	good    scanPos
	counts  Catalog // output record/tuple counts of the surviving archive
	through time.Time
	lastSeq int
}

// scanArchive validates the archive against the journal's last
// committed barrier: output records past journalLast belong to an
// uncommitted epoch and are dropped, as is anything after the first
// invalid byte. An epoch's outputs only count once its own archive
// barrier is seen — a crash mid-epoch drops the partial outputs and
// replay regenerates them.
func scanArchive(dir string, journalLast time.Time, hasJournal bool) (*archiveScan, error) {
	segs, err := listSegs(dir, archivePrefix)
	if err != nil {
		return nil, err
	}
	as := &archiveScan{}
	var pendRecs, pendTuples int64
	expect := 1
	hasCommit := false
scan:
	for _, seg := range segs {
		if seg.seq != expect {
			break
		}
		expect++
		b, err := os.ReadFile(seg.path)
		if err != nil {
			return nil, err
		}
		if len(b) < len(segHeader) || !bytes.Equal(b[:len(segHeader)], segHeader[:]) {
			break
		}
		off := int64(len(segHeader))
		for int(off) < len(b) {
			r, n, err := DecodeRecord(b[off:])
			if err != nil {
				break scan
			}
			switch r.Kind {
			case KindOutput:
				pendRecs++
				pendTuples += int64(len(r.Tuples))
			case KindCommit:
				if hasCommit && !r.Epoch.After(as.through) {
					break scan
				}
				if !hasJournal || r.Epoch.After(journalLast) {
					break scan
				}
				hasCommit = true
				as.through = r.Epoch
				as.counts.OutputRecords += pendRecs
				as.counts.OutputTuples += pendTuples
				pendRecs, pendTuples = 0, 0
				as.good = scanPos{seq: seg.seq, end: off + int64(n)}
			default:
				break scan
			}
			off += int64(n)
		}
	}
	if as.good.seq > 0 {
		as.lastSeq = as.good.seq
	}
	return as, nil
}

// truncate drops everything after pos: later segments are removed and
// the segment holding pos is cut at pos.end. pos.seq == 0 removes all
// prefix-matching segments. Returns the byte count dropped.
func truncate(dir, prefix string, pos scanPos) (int64, error) {
	segs, err := listSegs(dir, prefix)
	if err != nil {
		return 0, err
	}
	var dropped int64
	for _, seg := range segs {
		switch {
		case seg.seq < pos.seq:
		case seg.seq == pos.seq:
			if seg.size > pos.end {
				if err := os.Truncate(seg.path, pos.end); err != nil {
					return dropped, err
				}
				dropped += seg.size - pos.end
			}
		default:
			if err := os.Remove(seg.path); err != nil {
				return dropped, err
			}
			dropped += seg.size
		}
	}
	if dropped > 0 {
		if err := syncDir(dir); err != nil {
			return dropped, err
		}
	}
	return dropped, nil
}

// Segment names one on-disk journal segment (test support).
type Segment struct {
	Name string // filename (not path)
	Seq  int
	Size int64
}

// JournalSegments lists dir's journal segments in sequence order. Test
// support for crash-injection harnesses.
func JournalSegments(dir string) ([]Segment, error) {
	segs, err := listSegs(dir, journalPrefix)
	if err != nil {
		return nil, err
	}
	out := make([]Segment, len(segs))
	for i, s := range segs {
		out[i] = Segment{Name: filepath.Base(s.path), Seq: s.seq, Size: s.size}
	}
	return out, nil
}

// JournalSegmentName builds the filename of journal segment seq — what a
// duplicated-segment injector names its copy.
func JournalSegmentName(seq int) string { return segName(journalPrefix, seq) }

// RecordPos locates one record inside a segment file (test support).
type RecordPos struct {
	Start, End int64 // byte extent within the file
	Kind       Kind
}

// SegmentRecords walks one segment file, listing its valid records in
// order and stopping quietly at the first invalid byte. Test support
// for injectors that need record boundaries to aim a mutation at.
func SegmentRecords(path string) ([]RecordPos, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(b) < len(segHeader) || !bytes.Equal(b[:len(segHeader)], segHeader[:]) {
		return nil, nil
	}
	var out []RecordPos
	off := int64(len(segHeader))
	for int(off) < len(b) {
		r, n, err := DecodeRecord(b[off:])
		if err != nil {
			break
		}
		out = append(out, RecordPos{Start: off, End: off + int64(n), Kind: r.Kind})
		off += int64(n)
	}
	return out, nil
}

// CommitPos locates one commit barrier in a journal: the segment file
// holding it, the offset just past its record, and its boundary. Test
// support for crash-injection harnesses that need to predict how much
// history survives a mutation at a given byte position.
type CommitPos struct {
	Segment string // segment filename (not path)
	End     int64  // offset just past the commit record
	Epoch   time.Time
}

// Commits scans a journal and lists its commit barriers in order,
// stopping quietly at the first invalid byte.
func Commits(dir string) ([]CommitPos, error) {
	js, err := scanJournal(dir)
	if err != nil {
		return nil, err
	}
	out := make([]CommitPos, 0, len(js.rec.Epochs))
	// Re-derive positions: walk again recording each barrier. Cheaper
	// to carry them out of scanJournal, but this keeps the scanner's
	// hot path free of test-only bookkeeping.
	segs := js.segs
	for _, seg := range segs {
		b, err := os.ReadFile(seg.path)
		if err != nil {
			return nil, err
		}
		if len(b) < len(segHeader) || !bytes.Equal(b[:len(segHeader)], segHeader[:]) {
			break
		}
		off := int64(len(segHeader))
		for int(off) < len(b) {
			r, n, err := DecodeRecord(b[off:])
			if err != nil {
				break
			}
			if r.Kind == KindCommit {
				out = append(out, CommitPos{Segment: filepath.Base(seg.path), End: off + int64(n), Epoch: r.Epoch})
			}
			off += int64(n)
		}
	}
	if len(out) > len(js.rec.Epochs) {
		out = out[:len(js.rec.Epochs)] // barriers past the corruption point don't count
	}
	return out, nil
}
