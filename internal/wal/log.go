package wal

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"esp/internal/stream"
	"esp/internal/telemetry"
	"esp/internal/wire"
)

// DefaultSegmentBytes is the rotation threshold: a segment that crosses
// it is closed at the next commit barrier. A variable so crash-injection
// harnesses can force multi-segment journals out of small workloads.
var DefaultSegmentBytes int64 = 4 << 20

// Options configures a Log.
type Options struct {
	// Dir is the log directory (created if missing). One directory
	// per producer.
	Dir string
	// Source names the producer in the catalog (the tenant name).
	Source string
	// SegmentBytes is the rotation threshold (default
	// DefaultSegmentBytes). Rotation happens only at commit barriers,
	// keeping segments epoch-aligned.
	SegmentBytes int64
	// NoSync skips the fdatasync at commit barriers. Only for tests
	// and the bench's overhead decomposition — it voids the
	// durability contract.
	NoSync bool
	// Registry, when non-nil, receives the wal_* counters and the
	// fsync latency histogram.
	Registry *telemetry.Registry
	// OnFsync, when non-nil, is called after each commit-barrier
	// fdatasync with its duration — the hook the serving layer uses to
	// attribute fsync time to a traced request. Never called under
	// NoSync. Runs on the committing goroutine; keep it cheap.
	OnFsync func(time.Duration)
}

// Log is one producer's journal + archive + catalog. Journal is safe
// for concurrent use; Commit, ReplayCommit, and Close are expected
// from a single owner (the tenant actor) but are serialized anyway.
type Log struct {
	// immutable after Open
	dir      string
	segBytes int64
	noSync   bool
	onFsync  func(time.Duration)

	// telemetry (nil-safe when no registry was given)
	mRecords   *telemetry.Counter
	mTuples    *telemetry.Counter
	mCommits   *telemetry.Counter
	mBytes     *telemetry.Counter
	mOutputs   *telemetry.Counter
	mRotations *telemetry.Counter
	mFsync     *telemetry.Histogram

	mu       sync.Mutex
	closed   bool
	journal  *segWriter
	archive  *segWriter
	cat      Catalog
	last     time.Time // last committed barrier
	hasLast  bool
	archived time.Time // last epoch with archived output
	hasArch  bool
	scratch  []byte // record body scratch, reused
}

// segWriter appends framed records to a sequence of segment files.
type segWriter struct {
	dir    string
	prefix string
	seq    int
	f      *os.File
	w      *bufio.Writer
	size   int64
}

// openSeg opens segment seq for append, creating it (with header) when
// missing. size must be the current on-disk size (0 for new).
func openSeg(dir, prefix string, seq int, size int64) (*segWriter, error) {
	path := filepath.Join(dir, segName(prefix, seq))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	sw := &segWriter{dir: dir, prefix: prefix, seq: seq, f: f, w: bufio.NewWriterSize(f, 1<<16), size: size}
	if size == 0 {
		if _, err := sw.w.Write(segHeader[:]); err != nil {
			f.Close()
			return nil, err
		}
		sw.size = int64(len(segHeader))
	}
	return sw, nil
}

func (sw *segWriter) write(rec []byte) error {
	n, err := sw.w.Write(rec)
	sw.size += int64(n)
	return err
}

func (sw *segWriter) sync() error {
	if err := sw.w.Flush(); err != nil {
		return err
	}
	return datasync(sw.f)
}

// rotate syncs and closes the current segment and opens the next.
func (sw *segWriter) rotate() error {
	if err := sw.sync(); err != nil {
		return err
	}
	if err := sw.f.Close(); err != nil {
		return err
	}
	next, err := openSeg(sw.dir, sw.prefix, sw.seq+1, 0)
	if err != nil {
		return err
	}
	*sw = *next
	return syncDir(sw.dir)
}

func (sw *segWriter) close() error {
	if err := sw.sync(); err != nil {
		sw.f.Close()
		return err
	}
	return sw.f.Close()
}

// syncDir fsyncs a directory so renames, creates, and removes in it are
// durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// Open scans an existing log directory (truncating any invalid or
// uncommitted tail back to the last commit barrier), reopens it for
// append, and returns the committed history for replay. On a fresh
// directory the returned Recovery is empty. The caller owns Close.
func Open(opts Options) (*Log, *Recovery, error) {
	if opts.Dir == "" {
		return nil, nil, fmt.Errorf("wal: Options.Dir required")
	}
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, nil, err
	}
	js, err := scanJournal(opts.Dir)
	if err != nil {
		return nil, nil, err
	}
	as, err := scanArchive(opts.Dir, js.rec.Last, js.good.seq > 0)
	if err != nil {
		return nil, nil, err
	}
	dropped, err := truncate(opts.Dir, journalPrefix, js.good)
	if err != nil {
		return nil, nil, err
	}
	js.rec.Discarded = dropped
	if _, err := truncate(opts.Dir, archivePrefix, as.good); err != nil {
		return nil, nil, err
	}
	js.rec.ArchivedThrough = as.through

	l := &Log{
		dir:      opts.Dir,
		segBytes: opts.SegmentBytes,
		noSync:   opts.NoSync,
		onFsync:  opts.OnFsync,
		last:     js.rec.Last,
		hasLast:  js.good.seq > 0,
		archived: as.through,
		hasArch:  as.lastSeq > 0,
	}
	if reg := opts.Registry; reg != nil {
		l.mRecords = reg.Counter("wal_publish_records")
		l.mTuples = reg.Counter("wal_publish_tuples")
		l.mCommits = reg.Counter("wal_commits")
		l.mBytes = reg.Counter("wal_bytes")
		l.mOutputs = reg.Counter("wal_output_records")
		l.mRotations = reg.Counter("wal_rotations")
		l.mFsync = reg.Histogram("wal_fsync_ns")
	}

	jseq, jsize := 1, int64(0)
	if js.lastSeq > 0 {
		jseq, jsize = js.lastSeq, js.good.end
	}
	aseq, asize := 1, int64(0)
	if as.lastSeq > 0 {
		aseq, asize = as.lastSeq, as.good.end
	}
	if l.journal, err = openSeg(opts.Dir, journalPrefix, jseq, jsize); err != nil {
		return nil, nil, err
	}
	if l.archive, err = openSeg(opts.Dir, archivePrefix, aseq, asize); err != nil {
		l.journal.f.Close()
		return nil, nil, err
	}

	l.cat = js.counts
	l.cat.OutputRecords = as.counts.OutputRecords
	l.cat.OutputTuples = as.counts.OutputTuples
	l.cat.Source = opts.Source
	l.cat.JournalSegments = jseq
	l.cat.ArchiveSegments = aseq
	// Mark the catalog live (Completed=false) immediately: a crash
	// from here on is detectable from the catalog alone.
	if err := writeCatalog(opts.Dir, l.cat); err != nil {
		l.journal.f.Close()
		l.archive.f.Close()
		return nil, nil, err
	}
	if err := syncDir(opts.Dir); err != nil {
		l.journal.f.Close()
		l.archive.f.Close()
		return nil, nil, err
	}
	return l, &js.rec, nil
}

// Journal appends one publish record. The record is buffered — durable
// at the next Commit, which is the ack contract: a publish ack means
// "journalled", an advance ack means "durable through this epoch".
// When then is non-nil it runs under the log's lock after a successful
// append, letting the caller order an in-memory publish identically to
// the journal (concurrent publishers to one receptor would otherwise
// race journal order vs. channel order, and replay would not be
// byte-identical).
func (l *Log) Journal(receptor string, ts []stream.Tuple, then func()) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("wal: log is closed")
	}
	l.scratch = l.scratch[:0]
	l.scratch = append(l.scratch, byte(KindPublish))
	l.scratch = appendName(l.scratch, receptor)
	l.scratch = wire.AppendTuples(l.scratch, ts)
	if err := l.writeBody(l.journal, l.scratch); err != nil {
		return err
	}
	l.cat.PublishRecords++
	l.cat.PublishTuples += int64(len(ts))
	l.mRecords.Add(1)
	l.mTuples.Add(int64(len(ts)))
	if then != nil {
		then()
	}
	return nil
}

// Commit writes the epoch's cleaned output to the archive, appends the
// commit barrier to the journal, and makes the journal durable
// (fdatasync) — the durability point the advance ack stands on.
// Segments that crossed the size threshold rotate afterwards, so
// segment boundaries are always epoch boundaries. outputs maps stream
// name → the epoch's cleaned tuples; empty streams are skipped.
func (l *Log) Commit(epoch time.Time, outputs map[string][]stream.Tuple) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("wal: log is closed")
	}
	if l.hasLast && !epoch.After(l.last) {
		return fmt.Errorf("wal: commit %v is not after last barrier %v", epoch, l.last)
	}
	if err := l.archiveEpochLocked(epoch, outputs); err != nil {
		return err
	}
	l.scratch = l.scratch[:0]
	l.scratch = append(l.scratch, byte(KindCommit))
	l.scratch = binary.BigEndian.AppendUint64(l.scratch, uint64(epoch.UnixNano()))
	if err := l.writeBody(l.journal, l.scratch); err != nil {
		return err
	}
	if !l.noSync {
		t0 := time.Now()
		if err := l.journal.sync(); err != nil {
			return err
		}
		d := time.Since(t0)
		l.mFsync.Observe(d)
		if l.onFsync != nil {
			l.onFsync(d)
		}
	}
	l.last, l.hasLast = epoch, true
	l.archived, l.hasArch = epoch, true
	if l.cat.Epochs == 0 {
		l.cat.StartEpoch = epoch.UnixNano()
	}
	l.cat.Epochs++
	l.cat.EndEpoch = epoch.UnixNano()
	l.mCommits.Add(1)
	return l.maybeRotateLocked()
}

// ReplayCommit re-records one recovered epoch's regenerated output in
// the archive when the crash lost it. The journal is untouched (its
// barrier already exists) and nothing is fsynced — the archive is
// derivable, so its durability is restored lazily.
func (l *Log) ReplayCommit(epoch time.Time, outputs map[string][]stream.Tuple) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("wal: log is closed")
	}
	if l.hasArch && !epoch.After(l.archived) {
		return nil // survived the crash; already archived
	}
	if err := l.archiveEpochLocked(epoch, outputs); err != nil {
		return err
	}
	l.archived, l.hasArch = epoch, true
	return nil
}

// archiveEpochLocked appends one epoch's output records and its archive
// barrier, in sorted stream order for determinism.
func (l *Log) archiveEpochLocked(epoch time.Time, outputs map[string][]stream.Tuple) error {
	names := make([]string, 0, len(outputs))
	for name, ts := range outputs {
		if len(ts) > 0 {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		l.scratch = l.scratch[:0]
		l.scratch = append(l.scratch, byte(KindOutput))
		l.scratch = appendName(l.scratch, name)
		l.scratch = binary.BigEndian.AppendUint64(l.scratch, uint64(epoch.UnixNano()))
		l.scratch = wire.AppendTuples(l.scratch, outputs[name])
		if err := l.writeBody(l.archive, l.scratch); err != nil {
			return err
		}
		l.cat.OutputRecords++
		l.cat.OutputTuples += int64(len(outputs[name]))
		l.mOutputs.Add(1)
	}
	l.scratch = l.scratch[:0]
	l.scratch = append(l.scratch, byte(KindCommit))
	l.scratch = binary.BigEndian.AppendUint64(l.scratch, uint64(epoch.UnixNano()))
	return l.writeBody(l.archive, l.scratch)
}

// writeBody frames and appends a prepared record body.
func (l *Log) writeBody(sw *segWriter, body []byte) error {
	if len(body) > MaxRecord {
		return fmt.Errorf("wal: record body %d bytes exceeds %d", len(body), MaxRecord)
	}
	var hdr [recHeaderLen]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	binary.BigEndian.PutUint32(hdr[4:], crc32.Checksum(body, crcTable))
	if err := sw.write(hdr[:]); err != nil {
		return err
	}
	if err := sw.write(body); err != nil {
		return err
	}
	l.mBytes.Add(int64(recHeaderLen + len(body)))
	return nil
}

// maybeRotateLocked rotates any segment past the size threshold. Called
// only at commit barriers.
func (l *Log) maybeRotateLocked() error {
	rotated := false
	if l.journal.size >= l.segBytes {
		if err := l.journal.rotate(); err != nil {
			return err
		}
		l.cat.JournalSegments = l.journal.seq
		l.mRotations.Add(1)
		rotated = true
	}
	if l.archive.size >= l.segBytes {
		if err := l.archive.rotate(); err != nil {
			return err
		}
		l.cat.ArchiveSegments = l.archive.seq
		l.mRotations.Add(1)
		rotated = true
	}
	if rotated {
		return writeCatalog(l.dir, l.cat)
	}
	return nil
}

// Close flushes and syncs both files and marks the catalog completed —
// the clean-shutdown stamp a later Open distinguishes from a crash.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	err := l.journal.close()
	if err2 := l.archive.close(); err == nil {
		err = err2
	}
	if err != nil {
		return err
	}
	l.cat.Completed = true
	if err := writeCatalog(l.dir, l.cat); err != nil {
		return err
	}
	return syncDir(l.dir)
}

// Crash abandons the log the way a process kill would: file handles
// close without flushing the userspace buffers, and the catalog keeps
// its live (Completed=false) stamp. Everything fsynced — committed
// epochs — survives; buffered tail bytes are lost. Test support for
// the crash-recovery harnesses.
func (l *Log) Crash() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	l.closed = true
	l.journal.f.Close()
	l.archive.f.Close()
}

// Catalog snapshots the live catalog.
func (l *Log) Catalog() Catalog {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.cat
}

// Last reports the last committed barrier (zero time when none).
func (l *Log) Last() time.Time {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.last
}

// Dir reports the log directory.
func (l *Log) Dir() string { return l.dir }
