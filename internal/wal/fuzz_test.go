package wal

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"esp/internal/stream"
)

// FuzzSegment throws arbitrary bytes at the record decoder — the same
// code path recovery scans a crashed journal with, so it must never
// panic and never mis-frame. Invariants, mirroring FuzzFrame:
//
//  1. no panic on any input;
//  2. a record that decodes re-encodes to the exact bytes it was
//     decoded from, or — for inputs with redundant (non-minimal)
//     varints the tuple codec tolerates — re-decodes structurally
//     equal (canonical fixed point);
//  3. the re-encoded record always decodes, byte-equal under
//     re-encoding (so the canonical form really is a fixed point).
func FuzzSegment(f *testing.F) {
	seed := func(r Record) {
		b, err := AppendRecord(nil, r)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	ts := func(sec int64, vals ...stream.Value) stream.Tuple {
		return stream.Tuple{Ts: time.Unix(sec, 0).UTC(), Values: vals}
	}
	seed(Record{Kind: KindPublish, Receptor: "reader0", Tuples: []stream.Tuple{
		ts(1, stream.String("tag-1"), stream.Bool(true)),
		ts(2, stream.String("tag-2"), stream.Bool(false)),
	}})
	seed(Record{Kind: KindPublish, Receptor: "m0", Tuples: []stream.Tuple{
		ts(3, stream.String("m0"), stream.Float(20.5)),
		ts(4, stream.Value{}, stream.Int(-7), stream.Time(time.Unix(9, 0).UTC())),
	}})
	seed(Record{Kind: KindPublish})
	seed(Record{Kind: KindCommit, Epoch: time.Unix(5, 0).UTC()})
	seed(Record{Kind: KindCommit, Epoch: time.Unix(0, -1).UTC()})
	seed(Record{Kind: KindOutput, Stream: "mote", Epoch: time.Unix(5, 0).UTC(), Tuples: []stream.Tuple{
		ts(4, stream.String("m0"), stream.Float(20.75)),
	}})
	seed(Record{Kind: KindOutput, Stream: "virtualize", Epoch: time.Unix(6, 0).UTC()})
	// Hostile shapes: torn header, huge length, bad crc, unknown kind.
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0, 1})
	f.Add(appendFrame(nil, []byte{0x7f, 1, 2, 3}))
	f.Add(segHeader[:])

	f.Fuzz(func(t *testing.T, b []byte) {
		r, n, err := DecodeRecord(b)
		if err != nil {
			return
		}
		re, err := AppendRecord(nil, r)
		if err != nil {
			t.Fatalf("decoded record does not re-encode: %v", err)
		}
		if !bytes.Equal(re, b[:n]) {
			// The tuple codec tolerates redundant varint encodings, so
			// re-encoding may legally shrink; the decoded structures
			// must then agree exactly.
			r2, n2, err := DecodeRecord(re)
			if err != nil {
				t.Fatalf("re-encoded record does not decode: %v", err)
			}
			if n2 != len(re) || !recordsEqual(r, r2) {
				t.Fatalf("round trip drifted:\nin  %+v\nout %+v", r, r2)
			}
		}
		// Canonical form is a fixed point.
		r3, _, err := DecodeRecord(re)
		if err != nil {
			t.Fatalf("canonical form does not decode: %v", err)
		}
		re2, err := AppendRecord(nil, r3)
		if err != nil || !bytes.Equal(re, re2) {
			t.Fatalf("canonical form is not a fixed point (%v)", err)
		}
	})
}

func recordsEqual(a, b Record) bool {
	if a.Kind != b.Kind || a.Receptor != b.Receptor || a.Stream != b.Stream || !a.Epoch.Equal(b.Epoch) {
		return false
	}
	if len(a.Tuples) != len(b.Tuples) {
		return false
	}
	for i := range a.Tuples {
		if !a.Tuples[i].Ts.Equal(b.Tuples[i].Ts) || !reflect.DeepEqual(a.Tuples[i].Values, b.Tuples[i].Values) {
			return false
		}
	}
	return true
}
