//go:build linux

package wal

import (
	"os"
	"syscall"
)

// datasync flushes f's data without forcing a metadata (inode) write
// where the platform allows it — on this ext4-class path it roughly
// halves the commit barrier's latency versus a full fsync.
func datasync(f *os.File) error {
	return syscall.Fdatasync(int(f.Fd()))
}
