package wal

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// catalogFile is the catalog's filename inside a log directory.
const catalogFile = "catalog.json"

// Catalog summarises what a log directory holds: which source produced
// it, the committed epoch range, record counts, and whether the writer
// closed cleanly. It is advisory — the segments are ground truth and a
// recovery scan rebuilds it — but it lets an operator (or a future
// historical-query planner) answer "what is in here?" without reading
// the segments. Completed=false on disk means the writer is live or
// died: the recovery path.
type Catalog struct {
	// Source names the producer (the tenant name).
	Source string `json:"source"`
	// StartEpoch and EndEpoch bound the committed epochs (UnixNano;
	// zero when no epoch has committed).
	StartEpoch int64 `json:"start_epoch"`
	EndEpoch   int64 `json:"end_epoch"`
	// Epochs counts committed barriers.
	Epochs int64 `json:"epochs"`
	// PublishRecords/PublishTuples count journalled raw readings.
	PublishRecords int64 `json:"publish_records"`
	PublishTuples  int64 `json:"publish_tuples"`
	// OutputRecords/OutputTuples count archived cleaned output.
	OutputRecords int64 `json:"output_records"`
	OutputTuples  int64 `json:"output_tuples"`
	// JournalSegments and ArchiveSegments count segment files.
	JournalSegments int `json:"journal_segments"`
	ArchiveSegments int `json:"archive_segments"`
	// Completed reports a clean close (drain): false on disk while the
	// writer is live, and after a crash.
	Completed bool `json:"completed"`
}

// ReadCatalog loads a log directory's catalog.
func ReadCatalog(dir string) (Catalog, error) {
	var c Catalog
	b, err := os.ReadFile(filepath.Join(dir, catalogFile))
	if err != nil {
		return c, err
	}
	if err := json.Unmarshal(b, &c); err != nil {
		return c, fmt.Errorf("wal: catalog: %w", err)
	}
	return c, nil
}

// writeCatalog atomically replaces the catalog file (write to a temp
// name, then rename), so a crash mid-write never leaves a torn catalog.
func writeCatalog(dir string, c Catalog) error {
	b, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return err
	}
	tmp := filepath.Join(dir, catalogFile+".tmp")
	if err := os.WriteFile(tmp, append(b, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(dir, catalogFile))
}
