package wal

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"esp/internal/stream"
)

func at(sec int) time.Time { return time.Unix(int64(sec), 0).UTC() }

func reading(sec int, id string, v float64) stream.Tuple {
	return stream.Tuple{Ts: at(sec), Values: []stream.Value{stream.String(id), stream.Float(v)}}
}

func TestRecordRoundTrip(t *testing.T) {
	cases := []Record{
		{Kind: KindPublish, Receptor: "m0", Tuples: []stream.Tuple{reading(1, "m0", 20.5), reading(2, "m0", 21)}},
		{Kind: KindPublish, Receptor: "", Tuples: nil},
		{Kind: KindCommit, Epoch: at(5)},
		{Kind: KindOutput, Stream: "mote", Epoch: at(5), Tuples: []stream.Tuple{reading(4, "m0", 20.75)}},
	}
	var buf []byte
	for _, r := range cases {
		var err error
		if buf, err = AppendRecord(buf, r); err != nil {
			t.Fatalf("append %v: %v", r.Kind, err)
		}
	}
	for i, want := range cases {
		got, n, err := DecodeRecord(buf)
		if err != nil {
			t.Fatalf("decode %d: %v", i, err)
		}
		re, err := AppendRecord(nil, got)
		if err != nil {
			t.Fatalf("re-encode %d: %v", i, err)
		}
		if !bytes.Equal(re, buf[:n]) {
			t.Fatalf("record %d re-encode differs", i)
		}
		if got.Kind != want.Kind || got.Receptor != want.Receptor || got.Stream != want.Stream ||
			!got.Epoch.Equal(want.Epoch) || len(got.Tuples) != len(want.Tuples) {
			t.Fatalf("record %d: got %+v want %+v", i, got, want)
		}
		buf = buf[n:]
	}
	if len(buf) != 0 {
		t.Fatalf("%d trailing bytes", len(buf))
	}
}

func TestDecodeRecordHostileInputs(t *testing.T) {
	valid, _ := AppendRecord(nil, Record{Kind: KindCommit, Epoch: at(1)})
	cases := map[string][]byte{
		"empty":            {},
		"short header":     valid[:5],
		"torn body":        valid[:len(valid)-3],
		"zero length":      {0, 0, 0, 0, 0, 0, 0, 0},
		"huge length":      {0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0},
		"flipped crc":      append(append([]byte{}, valid[:4]...), append([]byte{valid[4] ^ 0x40}, valid[5:]...)...),
		"flipped payload":  append(append([]byte{}, valid[:len(valid)-1]...), valid[len(valid)-1]^0x01),
		"unknown kind":     mustRecord(t, 0x7f, nil),
		"commit too short": mustRecord(t, byte(KindCommit), []byte{1, 2, 3}),
	}
	for name, b := range cases {
		if _, _, err := DecodeRecord(b); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
}

// mustRecord frames an arbitrary body (kind + payload) with a valid CRC.
func mustRecord(t *testing.T, kind byte, payload []byte) []byte {
	t.Helper()
	return appendFrame(nil, append([]byte{kind}, payload...))
}

func openTestLog(t *testing.T, dir string, opts Options) (*Log, *Recovery) {
	t.Helper()
	opts.Dir = dir
	if opts.Source == "" {
		opts.Source = "test"
	}
	l, rec, err := Open(opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return l, rec
}

// writeEpochs journals pubsPerEpoch publishes then commits, for epochs
// 1..n (boundaries at(1)..at(n)).
func writeEpochs(t *testing.T, l *Log, n, pubsPerEpoch int) {
	t.Helper()
	for e := 1; e <= n; e++ {
		for p := 0; p < pubsPerEpoch; p++ {
			if err := l.Journal("m0", []stream.Tuple{reading(e, "m0", float64(e*10+p))}, nil); err != nil {
				t.Fatalf("journal epoch %d: %v", e, err)
			}
		}
		out := map[string][]stream.Tuple{"mote": {reading(e, "m0", float64(e))}}
		if err := l.Commit(at(e), out); err != nil {
			t.Fatalf("commit epoch %d: %v", e, err)
		}
	}
}

func TestLogWriteRecoverClean(t *testing.T) {
	dir := t.TempDir()
	l, rec := openTestLog(t, dir, Options{})
	if !rec.Empty() {
		t.Fatalf("fresh dir recovered %d epochs", len(rec.Epochs))
	}
	writeEpochs(t, l, 5, 2)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	cat, err := ReadCatalog(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !cat.Completed || cat.Epochs != 5 || cat.PublishRecords != 10 || cat.PublishTuples != 10 ||
		cat.OutputRecords != 5 || cat.StartEpoch != at(1).UnixNano() || cat.EndEpoch != at(5).UnixNano() {
		t.Fatalf("catalog = %+v", cat)
	}

	l2, rec2 := openTestLog(t, dir, Options{})
	defer l2.Close()
	if len(rec2.Epochs) != 5 || !rec2.Last.Equal(at(5)) || rec2.Corruption != "" || len(rec2.Tail) != 0 {
		t.Fatalf("recovery = last %v, %d epochs, tail %d, corruption %q",
			rec2.Last, len(rec2.Epochs), len(rec2.Tail), rec2.Corruption)
	}
	for i, ep := range rec2.Epochs {
		if !ep.Boundary.Equal(at(i+1)) || len(ep.Publishes) != 2 {
			t.Fatalf("epoch %d = %v with %d publishes", i, ep.Boundary, len(ep.Publishes))
		}
		if ep.Publishes[0].Receptor != "m0" || len(ep.Publishes[0].Tuples) != 1 {
			t.Fatalf("epoch %d publish 0 = %+v", i, ep.Publishes[0])
		}
	}
	if !rec2.ArchivedThrough.Equal(at(5)) {
		t.Fatalf("archived through %v", rec2.ArchivedThrough)
	}
}

func TestLogCrashDiscardsUncommittedTail(t *testing.T) {
	dir := t.TempDir()
	l, _ := openTestLog(t, dir, Options{})
	writeEpochs(t, l, 3, 1)
	// Journal two publishes past the last barrier, then crash: they
	// were never fsynced as part of a commit, so recovery must resume
	// at epoch 3 and report (not replay) the tail.
	if err := l.Journal("m0", []stream.Tuple{reading(4, "m0", 40)}, nil); err != nil {
		t.Fatal(err)
	}
	l.Crash()

	l2, rec := openTestLog(t, dir, Options{})
	defer l2.Close()
	if len(rec.Epochs) != 3 || !rec.Last.Equal(at(3)) {
		t.Fatalf("recovered %d epochs, last %v", len(rec.Epochs), rec.Last)
	}
	// The tail publish lived in the bufio buffer the crash dropped, so
	// here it is simply gone; a tail that reached the OS would surface
	// in rec.Tail and be truncated. Either way it must not be replayed.
	for _, ep := range rec.Epochs {
		for _, p := range ep.Publishes {
			for _, tu := range p.Tuples {
				if tu.Ts.After(at(3)) {
					t.Fatalf("uncommitted reading replayed: %v", tu)
				}
			}
		}
	}
	// Resume exactly once: the next commit is epoch 4.
	if err := l2.Commit(at(3), nil); err == nil {
		t.Fatal("re-committing epoch 3 succeeded")
	}
	if err := l2.Commit(at(4), nil); err != nil {
		t.Fatalf("commit epoch 4 after recovery: %v", err)
	}
}

func TestLogRecoverTruncatesFlippedByte(t *testing.T) {
	dir := t.TempDir()
	l, _ := openTestLog(t, dir, Options{})
	writeEpochs(t, l, 6, 2)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	commits, err := Commits(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(commits) != 6 {
		t.Fatalf("%d commits", len(commits))
	}
	// Flip one byte just after the 4th barrier: epochs 5-6 must be
	// dropped, 1-4 preserved.
	path := filepath.Join(dir, commits[3].Segment)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[commits[3].End+recHeaderLen+3] ^= 0x20
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}

	l2, rec := openTestLog(t, dir, Options{})
	defer l2.Close()
	if len(rec.Epochs) != 4 || !rec.Last.Equal(at(4)) {
		t.Fatalf("recovered %d epochs, last %v", len(rec.Epochs), rec.Last)
	}
	if rec.Corruption == "" {
		t.Fatal("corruption not reported")
	}
	if rec.Discarded == 0 {
		t.Fatal("no bytes discarded")
	}
	// The file must physically end at the 4th barrier now.
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() != commits[3].End {
		t.Fatalf("journal is %d bytes, want %d", info.Size(), commits[3].End)
	}
}

func TestLogRotationEpochAligned(t *testing.T) {
	dir := t.TempDir()
	// Tiny threshold: every commit rotates.
	l, _ := openTestLog(t, dir, Options{SegmentBytes: 64})
	writeEpochs(t, l, 4, 1)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := listSegs(dir, journalPrefix)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("%d journal segments, want >= 3 (rotation never fired)", len(segs))
	}
	// Every rotated (non-tail) segment must end exactly at a barrier.
	commits, err := Commits(dir)
	if err != nil {
		t.Fatal(err)
	}
	ends := map[string]int64{}
	for _, c := range commits {
		ends[c.Segment] = c.End
	}
	for _, seg := range segs[:len(segs)-1] {
		if end, ok := ends[filepath.Base(seg.path)]; !ok || end != seg.size {
			t.Fatalf("segment %s (size %d) does not end at a barrier (%d)", seg.path, seg.size, end)
		}
	}
	l2, rec := openTestLog(t, dir, Options{SegmentBytes: 64})
	defer l2.Close()
	if len(rec.Epochs) != 4 {
		t.Fatalf("recovered %d epochs across segments", len(rec.Epochs))
	}
}

func TestLogRecoverDuplicatedSegment(t *testing.T) {
	dir := t.TempDir()
	l, _ := openTestLog(t, dir, Options{SegmentBytes: 64})
	writeEpochs(t, l, 3, 1)
	l.Crash()
	// Duplicate segment 1 as the (next) segment 4: its commits repeat
	// earlier epochs, which the monotonicity check must reject.
	src, err := os.ReadFile(filepath.Join(dir, segName(journalPrefix, 1)))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, segName(journalPrefix, 4)), src, 0o644); err != nil {
		t.Fatal(err)
	}
	l2, rec := openTestLog(t, dir, Options{SegmentBytes: 64})
	defer l2.Close()
	if len(rec.Epochs) != 3 || !rec.Last.Equal(at(3)) {
		t.Fatalf("recovered %d epochs, last %v", len(rec.Epochs), rec.Last)
	}
	if rec.Corruption == "" {
		t.Fatal("duplicated segment not reported as corruption")
	}
	if _, err := os.Stat(filepath.Join(dir, segName(journalPrefix, 4))); !os.IsNotExist(err) {
		t.Fatal("duplicated segment survived truncation")
	}
}

func TestLogArchiveRegeneratedOnReplay(t *testing.T) {
	dir := t.TempDir()
	l, _ := openTestLog(t, dir, Options{})
	writeEpochs(t, l, 3, 1)
	l.Crash()
	// Simulate the archive lagging the journal: drop the whole archive
	// (it is derivable, so this must be recoverable).
	segs, err := listSegs(dir, archivePrefix)
	if err != nil {
		t.Fatal(err)
	}
	for _, seg := range segs {
		if err := os.Remove(seg.path); err != nil {
			t.Fatal(err)
		}
	}
	l2, rec := openTestLog(t, dir, Options{})
	if len(rec.Epochs) != 3 {
		t.Fatalf("recovered %d epochs", len(rec.Epochs))
	}
	if !rec.ArchivedThrough.IsZero() {
		t.Fatalf("archived through %v, want zero", rec.ArchivedThrough)
	}
	// Replay regenerates the archive without touching the journal.
	for e := 1; e <= 3; e++ {
		out := map[string][]stream.Tuple{"mote": {reading(e, "m0", float64(e))}}
		if err := l2.ReplayCommit(at(e), out); err != nil {
			t.Fatalf("replay commit %d: %v", e, err)
		}
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	l3, rec3 := openTestLog(t, dir, Options{})
	defer l3.Close()
	if !rec3.ArchivedThrough.Equal(at(3)) {
		t.Fatalf("regenerated archive reaches %v, want %v", rec3.ArchivedThrough, at(3))
	}
	cat := l3.Catalog()
	if cat.OutputRecords != 3 {
		t.Fatalf("catalog output records = %d", cat.OutputRecords)
	}
}

func TestLogRecoveryEquivalence(t *testing.T) {
	// The same history written with and without a crash+reopen cycle
	// must scan identically: recovery is invisible to later readers.
	a, b := t.TempDir(), t.TempDir()
	la, _ := openTestLog(t, a, Options{})
	writeEpochs(t, la, 6, 2)
	if err := la.Close(); err != nil {
		t.Fatal(err)
	}

	lb, _ := openTestLog(t, b, Options{})
	writeEpochs(t, lb, 4, 2)
	lb.Crash()
	lb2, rec := openTestLog(t, b, Options{})
	if len(rec.Epochs) != 4 {
		t.Fatalf("recovered %d epochs", len(rec.Epochs))
	}
	for e := 5; e <= 6; e++ {
		for p := 0; p < 2; p++ {
			if err := lb2.Journal("m0", []stream.Tuple{reading(e, "m0", float64(e*10+p))}, nil); err != nil {
				t.Fatal(err)
			}
		}
		if err := lb2.Commit(at(e), map[string][]stream.Tuple{"mote": {reading(e, "m0", float64(e))}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := lb2.Close(); err != nil {
		t.Fatal(err)
	}

	_, recA := openTestLog(t, a, Options{})
	_, recB := openTestLog(t, b, Options{})
	if !reflect.DeepEqual(recA.Epochs, recB.Epochs) {
		t.Fatal("crash+resume history diverges from uninterrupted history")
	}
}
