package wal

import (
	"testing"
	"time"

	"esp/internal/stream"
)

// TestOutputsSince covers the resume read-back: committed epochs after
// the cursor are returned in order with their stream outputs, the
// uncommitted tail is invisible, and the read sees epochs still
// sitting in the archive's userspace buffer (no rotation needed).
func TestOutputsSince(t *testing.T) {
	dir := t.TempDir()
	l, rec, err := Open(Options{Dir: dir, Source: "t", NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if !rec.Empty() {
		t.Fatalf("fresh dir recovered %+v", rec)
	}

	epoch := func(i int) time.Time { return time.Unix(int64(i), 0).UTC() }
	tup := func(i int) stream.Tuple {
		return stream.NewTuple(epoch(i), stream.Float(float64(i)))
	}
	for i := 1; i <= 5; i++ {
		if err := l.Journal("r0", []stream.Tuple{tup(i)}, nil); err != nil {
			t.Fatal(err)
		}
		outs := map[string][]stream.Tuple{"mote": {tup(i)}}
		if i == 4 {
			outs = nil // epoch with no output: no resume entry
		}
		if err := l.Commit(epoch(i), outs); err != nil {
			t.Fatal(err)
		}
	}

	got, err := l.OutputsSince(epoch(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || !got[0].Epoch.Equal(epoch(3)) || !got[1].Epoch.Equal(epoch(5)) {
		t.Fatalf("OutputsSince(2) = %+v, want epochs 3 and 5", got)
	}
	for _, ae := range got {
		if len(ae.Outputs) != 1 || ae.Outputs[0].Stream != "mote" || len(ae.Outputs[0].Tuples) != 1 {
			t.Fatalf("epoch %v outputs = %+v", ae.Epoch, ae.Outputs)
		}
	}

	// From zero: every committed epoch with output.
	all, err := l.OutputsSince(time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 4 {
		t.Fatalf("OutputsSince(0) returned %d epochs, want 4", len(all))
	}

	// Nothing after the last barrier.
	none, err := l.OutputsSince(epoch(5))
	if err != nil {
		t.Fatal(err)
	}
	if len(none) != 0 {
		t.Fatalf("OutputsSince(last) = %+v, want empty", none)
	}
}
