package waltest

import (
	"math/rand"
	"path/filepath"
	"testing"

	"esp/internal/server"
	"esp/internal/wal"
)

// trials is how many randomized offsets each (deployment, injector)
// cell runs.
const trials = 3

// smallSegments forces multi-segment journals out of the battery's toy
// workloads so injectors hit middle segments, not just the tail.
func smallSegments(t *testing.T) {
	t.Helper()
	old := wal.DefaultSegmentBytes
	wal.DefaultSegmentBytes = 512
	t.Cleanup(func() { wal.DefaultSegmentBytes = old })
}

// TestCrashRecoveryFingerprint is the battery's core contract, run for
// every (deployment, corruption, seed) cell:
//
//  1. recovery never panics and never errors — corruption is truncated,
//     not fatal;
//  2. the recovered clock stands exactly at the last barrier the
//     injector's cut left intact (recovery stops at the last valid
//     record);
//  3. the recovered epoch cannot be re-committed (exactly-once resume);
//  4. re-sending the discarded epochs yields output byte-identical
//     (fingerprint, frame and tuple counts) to the uninterrupted
//     reference run — window state spanning the cut was rebuilt
//     exactly.
func TestCrashRecoveryFingerprint(t *testing.T) {
	smallSegments(t)
	injectors := []struct {
		name string
		fn   Injector
	}{
		{"torn-tail", TornTail},
		{"truncated-length-prefix", TruncateLengthPrefix},
		{"flipped-crc-byte", FlipCRCByte},
		{"duplicated-segment", DuplicateSegment},
	}
	for _, d := range Deployments() {
		d := d
		t.Run(d.Name, func(t *testing.T) {
			in := d.Workload(42)
			ref, err := Reference(d, in)
			if err != nil {
				t.Fatal(err)
			}
			if Fold(ref).Frames() == 0 {
				t.Fatal("reference run produced no output")
			}

			pristine := t.TempDir()
			crashed, err := RunCrashed(d, in, pristine)
			if err != nil {
				t.Fatal(err)
			}
			if got, want := Fold(crashed).Sum(), Fold(ref).Sum(); got != want {
				t.Fatalf("journalled run diverged before any crash: %016x != %016x", got, want)
			}
			jdir := filepath.Join(pristine, d.Name)
			commits, err := wal.Commits(jdir)
			if err != nil {
				t.Fatal(err)
			}
			if len(commits) != d.Epochs {
				t.Fatalf("pristine journal has %d barriers, want %d", len(commits), d.Epochs)
			}
			if segs, err := wal.JournalSegments(jdir); err != nil || len(segs) < 3 {
				t.Fatalf("want a multi-segment journal, got %d segments (err=%v)", len(segs), err)
			}

			for _, inj := range injectors {
				inj := inj
				t.Run(inj.name, func(t *testing.T) {
					for trial := 0; trial < trials; trial++ {
						r := rand.New(rand.NewSource(int64(trial)<<8 + int64(len(d.Name)+len(inj.name))))
						root := t.TempDir()
						if err := CopyDir(pristine, root); err != nil {
							t.Fatal(err)
						}
						cut, desc, err := inj.fn(filepath.Join(root, d.Name), r)
						if err != nil {
							t.Fatal(err)
						}

						// Predict the surviving history from the pristine
						// barrier positions and the injector's cut.
						survive := 0
						for _, c := range commits {
							if cut.Survives(c) {
								survive++
							} else {
								break
							}
						}
						t.Logf("trial %d: %s -> expect %d/%d epochs", trial, desc, survive, d.Epochs)

						eng := server.NewEngine(0)
						eng.SetWALDir(root)
						reports, err := eng.Recover()
						if err != nil {
							t.Fatalf("%s: recover: %v", desc, err)
						}
						if len(reports) != 1 {
							t.Fatalf("%s: %d recovery reports", desc, len(reports))
						}
						rep := reports[0]
						if rep.Epochs != survive {
							t.Fatalf("%s: recovered %d epochs, want %d (corruption=%q)",
								desc, rep.Epochs, survive, rep.Corruption)
						}
						ten, ok := eng.Tenant(d.Name)
						if !ok {
							t.Fatalf("%s: tenant missing after recovery", desc)
						}
						if survive > 0 && !ten.Last().Equal(d.Boundary(survive)) {
							t.Fatalf("%s: clock at %v, want %v", desc, ten.Last(), d.Boundary(survive))
						}

						// Exactly-once: re-advancing to the recovered barrier
						// commits nothing.
						before := ten.Stats().Epochs
						if err := ten.Advance(d.Boundary(survive)); err != nil {
							t.Fatal(err)
						}
						if ten.Stats().Epochs != before {
							t.Fatalf("%s: recovered epoch was re-committed", desc)
						}

						// Re-send the discarded epochs; their output must be
						// byte-identical to the reference run's.
						got, err := Resume(ten, d, in, survive)
						if err != nil {
							t.Fatalf("%s: resume: %v", desc, err)
						}
						gfp, rfp := Fold(got), Fold(ref[survive:])
						if gfp.Sum() != rfp.Sum() || gfp.Frames() != rfp.Frames() || gfp.Tuples() != rfp.Tuples() {
							t.Fatalf("%s: recovered output %v diverges from reference %v", desc, gfp, rfp)
						}
						if err := ten.Drain(); err != nil {
							t.Fatal(err)
						}
					}
				})
			}
		})
	}
}

// TestBatteryDeploymentsDiffer guards the battery against silently
// degenerating: each deployment must produce distinct output shapes.
func TestBatteryDeploymentsDiffer(t *testing.T) {
	sums := map[uint64]string{}
	for _, d := range Deployments() {
		ref, err := Reference(d, d.Workload(7))
		if err != nil {
			t.Fatalf("%s: %v", d.Name, err)
		}
		fp := Fold(ref)
		if fp.Frames() == 0 {
			t.Errorf("%s: no output", d.Name)
		}
		if prev, dup := sums[fp.Sum()]; dup {
			t.Errorf("%s and %s fingerprint identically", d.Name, prev)
		}
		sums[fp.Sum()] = d.Name
	}
}
