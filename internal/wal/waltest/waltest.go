// Package waltest is the crash-recovery battery harness for the
// write-ahead log: example deployments with seeded workload generators,
// runners that produce pristine crashed journals, and corruption
// injectors (torn tail, truncated length prefix, flipped CRC byte,
// duplicated segment) that each predict exactly how much committed
// history must survive recovery.
package waltest

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"time"

	"esp/internal/server"
	"esp/internal/stream"
	"esp/internal/wal"
	"esp/internal/wire"
)

// EpochInput is one epoch's publishes: receptor id → readings.
type EpochInput map[string][]stream.Tuple

// Deployment is one battery deployment: a tenant spec, its output
// streams (the fingerprint fold order), and a seeded workload shape.
type Deployment struct {
	Name    string
	Spec    []byte
	Streams []string
	Epochs  int
	Epoch   time.Duration

	gen func(r *rand.Rand, epoch int) EpochInput
}

// Workload builds the deployment's deterministic input: out[e] holds
// epoch e+1's publishes. The same seed always yields the same readings,
// so a reference run, a crashed run, and a post-recovery re-send all
// see identical input.
func (d Deployment) Workload(seed int64) []EpochInput {
	r := rand.New(rand.NewSource(seed))
	out := make([]EpochInput, d.Epochs)
	for e := range out {
		out[e] = d.gen(r, e+1)
	}
	return out
}

// Boundary is epoch e's commit barrier (the tenant clock starts at Unix
// zero — the specs set no explicit start).
func (d Deployment) Boundary(e int) time.Time {
	return time.Unix(0, 0).UTC().Add(time.Duration(e) * d.Epoch)
}

func at(epoch time.Duration, e int, frac float64) time.Time {
	off := time.Duration(float64(e-1)*float64(epoch) + frac*float64(epoch))
	return time.Unix(0, 0).UTC().Add(off)
}

// Deployments returns the battery's three example deployments: the
// paper's RFID shelf (§4), a redwood-style environmental lab (§5), and
// the digital home with a static relation and a Virtualize detector
// (§6).
func Deployments() []Deployment {
	return []Deployment{shelf(), lab(), home()}
}

// shelf is the two-reader RFID shelf: Point drops bad checksums, Smooth
// counts per tag over 5 s, Arbitrate attributes each tag to one shelf.
func shelf() Deployment {
	spec := []byte(`{
	  "deployment": {
	    "epoch": "1s",
	    "groups": {
	      "shelf0": {"type": "rfid", "members": ["reader0"]},
	      "shelf1": {"type": "rfid", "members": ["reader1"]}
	    },
	    "pipelines": {
	      "rfid": {
	        "point": "SELECT tag_id FROM point_input WHERE checksum_ok = TRUE",
	        "smooth": "SELECT tag_id, count(*) AS n FROM smooth_input [Range By '5 sec'] GROUP BY tag_id",
	        "arbitrate": "SELECT spatial_granule, tag_id FROM arb ai1 [Range By 'NOW'] GROUP BY spatial_granule, tag_id HAVING sum(n) >= ALL(SELECT sum(n) FROM arb ai2 [Range By 'NOW'] WHERE ai1.tag_id = ai2.tag_id GROUP BY spatial_granule)"
	      }
	    }
	  },
	  "receptors": [
	    {"id": "reader0", "type": "rfid", "schema": "tag_id:string,checksum_ok:bool"},
	    {"id": "reader1", "type": "rfid", "schema": "tag_id:string,checksum_ok:bool"}
	  ]
	}`)
	tags := []string{"book-a", "book-b", "book-c", "book-d"}
	d := Deployment{Name: "shelf", Spec: spec, Streams: []string{"rfid"}, Epochs: 12, Epoch: time.Second}
	d.gen = func(r *rand.Rand, e int) EpochInput {
		in := EpochInput{}
		for _, reader := range []string{"reader0", "reader1"} {
			n := 1 + r.Intn(3)
			var ts []stream.Tuple
			for i := 0; i < n; i++ {
				ts = append(ts, stream.Tuple{
					Ts: at(d.Epoch, e, float64(i+1)/float64(n+1)),
					Values: []stream.Value{
						stream.String(tags[r.Intn(len(tags))]),
						stream.Bool(r.Float64() < 0.85),
					},
				})
			}
			in[reader] = ts
		}
		return in
	}
	return d
}

// lab is a redwood-style environmental deployment: two 3-mote proximity
// groups, Point range filter, Smooth temporal average over an expanded
// window, Merge spatial average per granule.
func lab() Deployment {
	spec := []byte(`{
	  "deployment": {
	    "epoch": "1s",
	    "groups": {
	      "bench0": {"type": "mote", "members": ["m0", "m1", "m2"]},
	      "bench1": {"type": "mote", "members": ["m3", "m4", "m5"]}
	    },
	    "pipelines": {
	      "mote": {
	        "point": "SELECT * FROM point_input WHERE temp < 50",
	        "smooth": "SELECT avg(temp) AS temp FROM smooth_input [Range By '4 sec']",
	        "merge": "SELECT avg(temp) AS temp FROM merge_input [Range By '1 sec']"
	      }
	    }
	  },
	  "receptors": [
	    {"id": "m0", "type": "mote", "schema": "mote_id:string,temp:float"},
	    {"id": "m1", "type": "mote", "schema": "mote_id:string,temp:float"},
	    {"id": "m2", "type": "mote", "schema": "mote_id:string,temp:float"},
	    {"id": "m3", "type": "mote", "schema": "mote_id:string,temp:float"},
	    {"id": "m4", "type": "mote", "schema": "mote_id:string,temp:float"},
	    {"id": "m5", "type": "mote", "schema": "mote_id:string,temp:float"}
	  ]
	}`)
	d := Deployment{Name: "lab", Spec: spec, Streams: []string{"mote"}, Epochs: 12, Epoch: time.Second}
	d.gen = func(r *rand.Rand, e int) EpochInput {
		in := EpochInput{}
		for i := 0; i < 6; i++ {
			if r.Float64() > 0.7 { // lossy radio: ~70 % delivery
				continue
			}
			id := fmt.Sprintf("m%d", i)
			temp := 18 + 4*math.Sin(float64(e)/3) + r.NormFloat64()*0.3
			if r.Float64() < 0.05 {
				temp = 120 // fail-dirty spike for the Point filter
			}
			in[id] = []stream.Tuple{{
				Ts:     at(d.Epoch, e, 0.5),
				Values: []stream.Value{stream.String(id), stream.Float(temp)},
			}}
		}
		return in
	}
	return d
}

// home is the digital-home office: RFID readers joined against a static
// expected-tags relation, sound motes, an X10 motion detector, and a
// Virtualize person-detector voting across all three cleaned streams.
func home() Deployment {
	spec := []byte(`{
	  "deployment": {
	    "epoch": "1s",
	    "groups": {
	      "office-rfid":   {"type": "rfid", "members": ["r0", "r1"]},
	      "office-sound":  {"type": "mote", "members": ["s0", "s1", "s2"]},
	      "office-motion": {"type": "motion", "members": ["x0"]}
	    },
	    "tables": {
	      "expected_tags": {
	        "columns": {"expected_tag": "string"},
	        "rows": [{"expected_tag": "badge-1"}, {"expected_tag": "badge-2"}]
	      }
	    },
	    "pipelines": {
	      "rfid": {
	        "point": "SELECT tag_id FROM point_input, expected_tags WHERE checksum_ok = TRUE AND tag_id = expected_tag",
	        "smooth": "SELECT tag_id, count(*) AS n FROM smooth_input [Range By '2 sec'] GROUP BY tag_id"
	      },
	      "mote": {
	        "smooth": "SELECT avg(noise) AS noise FROM smooth_input [Range By '2 sec']",
	        "merge": "SELECT avg(noise) AS noise FROM merge_input [Range By '1 sec']"
	      },
	      "motion": {
	        "smooth": "SELECT 'ON' AS value FROM smooth_input [Range By '2 sec'] HAVING count(*) >= 1"
	      }
	    },
	    "virtualize": {
	      "query": "SELECT 'Person-in-room' AS event FROM (SELECT 1 AS cnt FROM sensors_input [Range By 'NOW'] WHERE noise > 525) AS a, (SELECT 1 AS cnt FROM rfid_input [Range By 'NOW'] HAVING count(distinct tag_id) >= 1) AS b, (SELECT 1 AS cnt FROM motion_input [Range By 'NOW'] WHERE value = 'ON') AS c WHERE a.cnt + b.cnt + c.cnt >= 2",
	      "bind": {"sensors_input": "mote", "rfid_input": "rfid", "motion_input": "motion"}
	    }
	  },
	  "receptors": [
	    {"id": "r0", "type": "rfid", "schema": "tag_id:string,checksum_ok:bool"},
	    {"id": "r1", "type": "rfid", "schema": "tag_id:string,checksum_ok:bool"},
	    {"id": "s0", "type": "mote", "schema": "mote_id:string,noise:float"},
	    {"id": "s1", "type": "mote", "schema": "mote_id:string,noise:float"},
	    {"id": "s2", "type": "mote", "schema": "mote_id:string,noise:float"},
	    {"id": "x0", "type": "motion", "schema": "detector_id:string,value:string"}
	  ]
	}`)
	d := Deployment{
		Name:    "home",
		Spec:    spec,
		Streams: []string{"mote", "motion", "rfid", server.VirtualizeStream},
		Epochs:  12,
		Epoch:   time.Second,
	}
	d.gen = func(r *rand.Rand, e int) EpochInput {
		in := EpochInput{}
		present := e%4 != 0 // the person leaves every fourth epoch
		for _, reader := range []string{"r0", "r1"} {
			if !present || r.Float64() > 0.8 {
				continue
			}
			tag := "badge-1"
			if r.Float64() < 0.3 {
				tag = "stray-" + reader // errant read, filtered by the join
			}
			in[reader] = []stream.Tuple{{
				Ts:     at(d.Epoch, e, r.Float64()),
				Values: []stream.Value{stream.String(tag), stream.Bool(r.Float64() < 0.9)},
			}}
		}
		for i := 0; i < 3; i++ {
			noise := 480 + r.NormFloat64()*10
			if present {
				noise = 560 + r.NormFloat64()*15
			}
			id := fmt.Sprintf("s%d", i)
			in[id] = []stream.Tuple{{
				Ts:     at(d.Epoch, e, 0.4),
				Values: []stream.Value{stream.String(id), stream.Float(noise)},
			}}
		}
		if present && r.Float64() < 0.9 {
			in["x0"] = []stream.Tuple{{
				Ts:     at(d.Epoch, e, 0.6),
				Values: []stream.Value{stream.String("x0"), stream.String("ON")},
			}}
		}
		return in
	}
	return d
}

// EpochFrames is one epoch's delivered output frames, in subscribe
// order (0 or 1 frames per stream per epoch).
type EpochFrames []wire.Data

// Fold digests per-epoch frames into one fingerprint — fold the same
// epochs of two runs and equal sums mean byte-identical output.
func Fold(frames []EpochFrames) *server.Fingerprint {
	fp := server.NewFingerprint()
	for _, ef := range frames {
		for _, d := range ef {
			fp.Add(d)
		}
	}
	return fp
}

// run drives epochs (from, to] of the workload through ten, draining
// each epoch's output from the subscriptions after its advance.
func run(ten *server.Tenant, d Deployment, in []EpochInput, from, to int, subs []*server.Subscription) ([]EpochFrames, error) {
	var out []EpochFrames
	for e := from + 1; e <= to; e++ {
		recs := make([]string, 0, len(in[e-1]))
		for rec := range in[e-1] {
			recs = append(recs, rec)
		}
		sort.Strings(recs)
		for _, rec := range recs {
			if _, err := ten.Publish(rec, in[e-1][rec]); err != nil {
				return nil, err
			}
		}
		if err := ten.Advance(d.Boundary(e)); err != nil {
			return nil, err
		}
		var ef EpochFrames
		for _, sub := range subs {
			select {
			case f := <-sub.C():
				ef = append(ef, f)
			default:
			}
		}
		out = append(out, ef)
	}
	return out, nil
}

// start creates the tenant (journalled when walRoot != "") with one
// subscription per output stream.
func start(eng *server.Engine, d Deployment) (*server.Tenant, []*server.Subscription, error) {
	ten, err := eng.Create(d.Name, d.Spec)
	if err != nil {
		return nil, nil, err
	}
	subs, err := subscribe(ten, d)
	if err != nil {
		return nil, nil, err
	}
	return ten, subs, nil
}

func subscribe(ten *server.Tenant, d Deployment) ([]*server.Subscription, error) {
	subs := make([]*server.Subscription, len(d.Streams))
	for i, s := range d.Streams {
		sub, err := ten.Subscribe(s)
		if err != nil {
			return nil, err
		}
		subs[i] = sub
	}
	return subs, nil
}

// Reference runs the full workload uninterrupted with no WAL and
// returns per-epoch output — the oracle every recovery is checked
// against.
func Reference(d Deployment, in []EpochInput) ([]EpochFrames, error) {
	eng := server.NewEngine(0)
	ten, subs, err := start(eng, d)
	if err != nil {
		return nil, err
	}
	defer ten.Drain() //nolint:errcheck
	return run(ten, d, in, 0, d.Epochs, subs)
}

// RunCrashed runs the full workload journalled under walRoot and then
// crashes the tenant — no drain, no catalog completion. The directory
// left behind is the pristine crashed journal the injectors mutate
// copies of.
func RunCrashed(d Deployment, in []EpochInput, walRoot string) ([]EpochFrames, error) {
	return RunCrashedAt(d, in, walRoot, d.Epochs)
}

// RunCrashedAt runs epochs 1..k journalled under walRoot, then crashes
// the tenant mid-workload.
func RunCrashedAt(d Deployment, in []EpochInput, walRoot string, k int) ([]EpochFrames, error) {
	eng := server.NewEngine(0)
	eng.SetWALDir(walRoot)
	ten, subs, err := start(eng, d)
	if err != nil {
		return nil, err
	}
	frames, err := run(ten, d, in, 0, k, subs)
	ten.Crash()
	return frames, err
}

// Resume re-sends epochs (from, Epochs] through a recovered tenant and
// returns their delivered output.
func Resume(ten *server.Tenant, d Deployment, in []EpochInput, from int) ([]EpochFrames, error) {
	subs, err := subscribe(ten, d)
	if err != nil {
		return nil, err
	}
	return run(ten, d, in, from, d.Epochs, subs)
}

// Cut is the first journal byte a corruption invalidates. Commit
// barriers wholly before the cut survive recovery; everything at or
// after it is truncated. The zero Cut means the mutation left all
// committed history intact.
type Cut struct {
	Segment string // "" = nothing invalidated
	Off     int64
}

// Survives reports whether the barrier at p outlives the cut.
func (c Cut) Survives(p wal.CommitPos) bool {
	if c.Segment == "" {
		return true
	}
	return p.Segment < c.Segment || (p.Segment == c.Segment && p.End <= c.Off)
}

// Injector mutates one journal directory and predicts the cut.
type Injector func(dir string, r *rand.Rand) (Cut, string, error)

// segments lists dir's journal segments, failing on an empty journal.
func segments(dir string) ([]wal.Segment, error) {
	segs, err := wal.JournalSegments(dir)
	if err != nil {
		return nil, err
	}
	if len(segs) == 0 {
		return nil, fmt.Errorf("waltest: no journal segments in %s", dir)
	}
	return segs, nil
}

// pickRecorded picks a random segment that holds at least one record
// (a freshly rotated tail can be header-only).
func pickRecorded(dir string, segs []wal.Segment, r *rand.Rand) (wal.Segment, []wal.RecordPos, error) {
	for _, i := range r.Perm(len(segs)) {
		recs, err := wal.SegmentRecords(filepath.Join(dir, segs[i].Name))
		if err != nil {
			return wal.Segment{}, nil, err
		}
		if len(recs) > 0 {
			return segs[i], recs, nil
		}
	}
	return wal.Segment{}, nil, fmt.Errorf("waltest: no segment with records in %s", dir)
}

// TornTail truncates the last journal segment at a uniformly random
// byte offset — the classic torn write: the machine died with the tail
// partially flushed.
func TornTail(dir string, r *rand.Rand) (Cut, string, error) {
	segs, err := segments(dir)
	if err != nil {
		return Cut{}, "", err
	}
	last := segs[len(segs)-1]
	if last.Size <= wal.SegHeaderLen {
		last = segs[len(segs)-2] // header-only tail: tear the one before
	}
	off := wal.SegHeaderLen + r.Int63n(last.Size-wal.SegHeaderLen)
	if err := os.Truncate(filepath.Join(dir, last.Name), off); err != nil {
		return Cut{}, "", err
	}
	return Cut{Segment: last.Name, Off: off},
		fmt.Sprintf("torn %s at %d/%d", last.Name, off, last.Size), nil
}

// TruncateLengthPrefix cuts a random record's length prefix in half —
// the scan sees a frame header it cannot even size.
func TruncateLengthPrefix(dir string, r *rand.Rand) (Cut, string, error) {
	segs, err := segments(dir)
	if err != nil {
		return Cut{}, "", err
	}
	seg, recs, err := pickRecorded(dir, segs, r)
	if err != nil {
		return Cut{}, "", err
	}
	rec := recs[r.Intn(len(recs))]
	off := rec.Start + 1 + r.Int63n(3) // 1..3 bytes into the u32 length
	if err := os.Truncate(filepath.Join(dir, seg.Name), off); err != nil {
		return Cut{}, "", err
	}
	return Cut{Segment: seg.Name, Off: rec.Start},
		fmt.Sprintf("length prefix of %s@%d cut at +%d", seg.Name, rec.Start, off-rec.Start), nil
}

// FlipCRCByte flips one random byte inside a random record's CRC field
// — silent media corruption the checksum must catch.
func FlipCRCByte(dir string, r *rand.Rand) (Cut, string, error) {
	segs, err := segments(dir)
	if err != nil {
		return Cut{}, "", err
	}
	seg, recs, err := pickRecorded(dir, segs, r)
	if err != nil {
		return Cut{}, "", err
	}
	rec := recs[r.Intn(len(recs))]
	path := filepath.Join(dir, seg.Name)
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return Cut{}, "", err
	}
	defer f.Close()
	pos := rec.Start + 4 + r.Int63n(4) // the CRC32C field
	var b [1]byte
	if _, err := f.ReadAt(b[:], pos); err != nil {
		return Cut{}, "", err
	}
	b[0] ^= byte(1 + r.Intn(255))
	if _, err := f.WriteAt(b[:], pos); err != nil {
		return Cut{}, "", err
	}
	return Cut{Segment: seg.Name, Off: rec.Start},
		fmt.Sprintf("crc byte of %s@%d flipped", seg.Name, rec.Start), nil
}

// DuplicateSegment copies a random segment to the next sequence number
// — a botched copy-restore. Its commits are non-monotonic (or its
// publishes an unacked tail), so recovery must drop the duplicate and
// keep every original barrier.
func DuplicateSegment(dir string, r *rand.Rand) (Cut, string, error) {
	segs, err := segments(dir)
	if err != nil {
		return Cut{}, "", err
	}
	src := segs[r.Intn(len(segs))]
	dupName := wal.JournalSegmentName(segs[len(segs)-1].Seq + 1)
	if err := copyFile(filepath.Join(dir, src.Name), filepath.Join(dir, dupName)); err != nil {
		return Cut{}, "", err
	}
	return Cut{}, fmt.Sprintf("%s duplicated as %s", src.Name, dupName), nil
}

// CopyDir clones a journal tree so each injector mutates a private
// copy of the pristine crashed run.
func CopyDir(src, dst string) error {
	return filepath.Walk(src, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if info.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		return copyFile(path, target)
	})
}

func copyFile(src, dst string) error {
	in, err := os.Open(src)
	if err != nil {
		return err
	}
	defer in.Close()
	out, err := os.Create(dst)
	if err != nil {
		return err
	}
	if _, err := io.Copy(out, in); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}
