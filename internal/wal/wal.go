// Package wal is the durability layer under the serving daemon: an
// epoch-aligned write-ahead log of raw readings, an archive of cleaned
// output, and a catalog of what was processed.
//
// Layout (one directory per tenant):
//
//	wal-00000001.seg   journal: publish records + commit barriers
//	arc-00000001.seg   archive: cleaned-output records + commit barriers
//	catalog.json       source, epoch range, record counts, completed flag
//
// Every segment file is a fixed 8-byte header followed by
// length-prefixed, CRC-32C-framed records:
//
//	header = "ESPW" | version(1) | reserved(3)
//	record = length(u32 BE, over body) | crc32c(u32 BE, over body) | body
//	body   = kind(1) | payload
//
// Record payloads reuse the canonical tuple encoding from
// internal/wire (equal tuples encode to equal bytes), so a journal is
// replayable byte-for-byte:
//
//	publish = receptor(uvarint len | bytes) | tuples
//	commit  = epoch(8, UnixNano big-endian)
//	output  = stream(uvarint len | bytes) | epoch(8, UnixNano BE) | tuples
//
// The journal is the source of truth: publish records are buffered and
// become durable at the next commit barrier (fsync on commit — the
// epoch is the durability unit). The archive is derivable from the
// journal by replay (the pipeline is deterministic), so it is synced
// lazily on rotation and close; recovery regenerates any archive tail a
// crash lost. Segments rotate only at commit barriers, which keeps
// every segment epoch-aligned: a segment boundary is always an epoch
// boundary.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"time"

	"esp/internal/stream"
	"esp/internal/wire"
)

// Segment header: magic, format version, reserved padding.
var segHeader = [8]byte{'E', 'S', 'P', 'W', 1, 0, 0, 0}

// SegHeaderLen is the byte length of the segment header — the offset of
// a segment's first record (test support for crash injectors).
const SegHeaderLen = int64(len(segHeader))

// Record framing constants.
const (
	recHeaderLen = 8 // length(4) + crc(4)
	// MaxRecord bounds one record's body, mirroring the wire layer's
	// frame cap: a hostile length prefix is rejected before allocation.
	MaxRecord = 8 << 20
	// maxName bounds receptor/stream name lengths inside records.
	maxName = 1 << 12
)

// crcTable is the Castagnoli polynomial — hardware-accelerated on
// amd64/arm64, and the conventional choice for storage framing.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Kind discriminates record bodies.
type Kind uint8

const (
	// KindPublish is a raw-reading batch appended by one publish.
	KindPublish Kind = 0x01
	// KindCommit is an epoch barrier: everything before it belongs to
	// epochs at or before its boundary.
	KindCommit Kind = 0x02
	// KindOutput is one stream's cleaned output for one epoch
	// (archive segments only).
	KindOutput Kind = 0x03
)

func (k Kind) String() string {
	switch k {
	case KindPublish:
		return "publish"
	case KindCommit:
		return "commit"
	case KindOutput:
		return "output"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Record is one decoded journal or archive entry.
type Record struct {
	Kind Kind
	// Receptor is the ingest channel a publish targeted (KindPublish).
	Receptor string
	// Stream is the output stream an archive record holds (KindOutput).
	Stream string
	// Epoch is the barrier boundary (KindCommit) or the epoch the
	// output belongs to (KindOutput).
	Epoch time.Time
	// Tuples are the readings (KindPublish) or cleaned output
	// (KindOutput).
	Tuples []stream.Tuple
}

// Decode errors. ErrShort means the buffer ends mid-record — a torn
// tail, not necessarily corruption.
var (
	ErrShort    = errors.New("wal: short record")
	ErrChecksum = errors.New("wal: record checksum mismatch")
)

// appendFrame frames a prepared body: length, CRC-32C, body.
func appendFrame(dst, body []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(body)))
	dst = binary.BigEndian.AppendUint32(dst, crc32.Checksum(body, crcTable))
	return append(dst, body...)
}

// appendName appends a uvarint-length-prefixed name.
func appendName(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// decodeName decodes a length-prefixed name, guarding the length
// before any allocation.
func decodeName(b []byte) (string, int, error) {
	n, used := binary.Uvarint(b)
	if used <= 0 {
		return "", 0, ErrShort
	}
	if n > maxName {
		return "", 0, fmt.Errorf("wal: name length %d exceeds %d", n, maxName)
	}
	if uint64(len(b)-used) < n {
		return "", 0, ErrShort
	}
	return string(b[used : used+int(n)]), used + int(n), nil
}

// appendBody appends r's body (kind byte + payload) without framing.
func appendBody(dst []byte, r Record) ([]byte, error) {
	dst = append(dst, byte(r.Kind))
	switch r.Kind {
	case KindPublish:
		dst = appendName(dst, r.Receptor)
		dst = wire.AppendTuples(dst, r.Tuples)
	case KindCommit:
		dst = binary.BigEndian.AppendUint64(dst, uint64(r.Epoch.UnixNano()))
	case KindOutput:
		dst = appendName(dst, r.Stream)
		dst = binary.BigEndian.AppendUint64(dst, uint64(r.Epoch.UnixNano()))
		dst = wire.AppendTuples(dst, r.Tuples)
	default:
		return dst, fmt.Errorf("wal: cannot encode %v record", r.Kind)
	}
	return dst, nil
}

// AppendRecord appends the framed encoding of r.
func AppendRecord(dst []byte, r Record) ([]byte, error) {
	body, err := appendBody(nil, r)
	if err != nil {
		return dst, err
	}
	if len(body) > MaxRecord {
		return dst, fmt.Errorf("wal: record body %d bytes exceeds %d", len(body), MaxRecord)
	}
	return appendFrame(dst, body), nil
}

// DecodeRecord decodes one framed record from the front of b, returning
// it and the bytes consumed. ErrShort reports a torn tail (the buffer
// ends mid-record); any other error is corruption. The decoder is
// strict: a body with trailing bytes its kind does not account for is
// corrupt, which keeps valid records canonically re-encodable.
func DecodeRecord(b []byte) (Record, int, error) {
	if len(b) < recHeaderLen {
		return Record{}, 0, ErrShort
	}
	n := binary.BigEndian.Uint32(b)
	if n < 1 || n > MaxRecord {
		return Record{}, 0, fmt.Errorf("wal: record length %d out of range", n)
	}
	if uint32(len(b)-recHeaderLen) < n {
		return Record{}, 0, ErrShort
	}
	body := b[recHeaderLen : recHeaderLen+int(n)]
	if crc32.Checksum(body, crcTable) != binary.BigEndian.Uint32(b[4:]) {
		return Record{}, 0, ErrChecksum
	}
	r := Record{Kind: Kind(body[0])}
	p := body[1:]
	switch r.Kind {
	case KindPublish:
		name, used, err := decodeName(p)
		if err != nil {
			return Record{}, 0, err
		}
		r.Receptor = name
		ts, used2, err := wire.DecodeTuples(p[used:])
		if err != nil {
			return Record{}, 0, err
		}
		if used+used2 != len(p) {
			return Record{}, 0, fmt.Errorf("wal: %d trailing bytes in publish record", len(p)-used-used2)
		}
		r.Tuples = ts
	case KindCommit:
		if len(p) != 8 {
			return Record{}, 0, fmt.Errorf("wal: commit record body is %d bytes, want 8", len(p))
		}
		r.Epoch = time.Unix(0, int64(binary.BigEndian.Uint64(p))).UTC()
	case KindOutput:
		name, used, err := decodeName(p)
		if err != nil {
			return Record{}, 0, err
		}
		r.Stream = name
		if len(p[used:]) < 8 {
			return Record{}, 0, ErrShort
		}
		r.Epoch = time.Unix(0, int64(binary.BigEndian.Uint64(p[used:]))).UTC()
		ts, used2, err := wire.DecodeTuples(p[used+8:])
		if err != nil {
			return Record{}, 0, err
		}
		if used+8+used2 != len(p) {
			return Record{}, 0, fmt.Errorf("wal: %d trailing bytes in output record", len(p)-used-8-used2)
		}
		r.Tuples = ts
	default:
		return Record{}, 0, fmt.Errorf("wal: unknown record kind %d", body[0])
	}
	return r, recHeaderLen + int(n), nil
}
