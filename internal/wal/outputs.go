package wal

import (
	"bytes"
	"os"
	"time"

	"esp/internal/stream"
)

// ArchivedOutput is one stream's cleaned output for one committed
// epoch, in the archive's (sorted-stream) record order.
type ArchivedOutput struct {
	Stream string
	Tuples []stream.Tuple
}

// ArchivedEpoch is one committed epoch's archived output.
type ArchivedEpoch struct {
	Epoch   time.Time
	Outputs []ArchivedOutput
}

// OutputsSince reads the archived cleaned output of every committed
// epoch strictly after `after`, in epoch order — the deep path of
// subscriber resume: a reconnecting subscriber whose last delivered
// epoch has aged out of the tenant's in-memory retention ring is
// caught up from the archive segments instead.
//
// The archive's userspace buffer is flushed first (no fsync — the
// archive is derivable, so its durability stays lazy), which makes
// every committed epoch visible to the read-back. Epochs with no
// output produce no entry, matching what a live subscriber would have
// seen. Safe to call concurrently with Journal/Commit; the log's lock
// serializes it against appends.
func (l *Log) OutputsSince(after time.Time) ([]ArchivedEpoch, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.closed {
		if err := l.archive.w.Flush(); err != nil {
			return nil, err
		}
	}
	segs, err := listSegs(l.dir, archivePrefix)
	if err != nil {
		return nil, err
	}
	var out []ArchivedEpoch
	var pending []ArchivedOutput
	for _, seg := range segs {
		b, err := os.ReadFile(seg.path)
		if err != nil {
			return nil, err
		}
		if len(b) < len(segHeader) || !bytes.Equal(b[:len(segHeader)], segHeader[:]) {
			break
		}
		off := int64(len(segHeader))
		for int(off) < len(b) {
			r, n, err := DecodeRecord(b[off:])
			if err != nil {
				// A torn or corrupt tail is everything past the last
				// barrier — exactly what resume must not deliver.
				return out, nil
			}
			switch r.Kind {
			case KindOutput:
				pending = append(pending, ArchivedOutput{Stream: r.Stream, Tuples: r.Tuples})
			case KindCommit:
				if r.Epoch.After(after) && len(pending) > 0 {
					out = append(out, ArchivedEpoch{Epoch: r.Epoch, Outputs: pending})
				}
				pending = nil
			}
			off += int64(n)
		}
	}
	return out, nil
}
