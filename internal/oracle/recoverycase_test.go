package oracle

import "testing"

// TestRecoveryCaseClean runs the crash-recovery differential directly
// over a seed spread wide enough to hit every battery deployment and a
// variety of crash epochs.
func TestRecoveryCaseClean(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		if d := CheckRecoveryCase(seed); d != nil {
			t.Fatalf("seed %d:\n%v", seed, d)
		}
	}
}
