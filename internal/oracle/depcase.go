package oracle

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"time"

	"esp/internal/core"
	"esp/internal/receptor"
	"esp/internal/sim"
	"esp/internal/stream"
)

// Deployment archetypes. The kind is derived from the seed so a
// Divergence's seed alone rebuilds the identical case.
const (
	// depMote is the redwood-style family: motes with optional
	// Point/Smooth/Merge stages. The only kind with a full reference
	// interpretation (refpipeline.go).
	depMote = iota
	// depShelf is the RFID-shelf family: readers with checksum Point,
	// tag-count Smooth and optionally the >= ALL Arbitrate rewrite.
	depShelf
	// depVirt is the mote family plus a windowed Virtualize query.
	depVirt
	depKinds
)

// DeploymentCase is one generated end-to-end deployment with its receptor
// traces pre-materialised: Build always constructs replay receptors over
// the same recorded tuples, so repeated runs (and runs under different
// schedulers, or with hand-built stage variants) see identical inputs.
type DeploymentCase struct {
	Seed   int64
	Kind   int
	Epoch  time.Duration
	Epochs int

	// Mote-family pipeline knobs (zero value = stage skipped).
	PointLimit float64
	SmoothG    time.Duration
	MergeKind  int // 0 none, 1 avg, 2 median
	MergeG     time.Duration
	VirtG      time.Duration // depVirt only

	// Shelf-family pipeline knobs.
	TagG      time.Duration
	Arbitrate bool

	// Receptors: parallel slices in receptor order.
	IDs     []string
	GroupOf []string
	Traces  [][]stream.Tuple
}

func (c *DeploymentCase) typ() receptor.Type {
	if c.Kind == depShelf {
		return receptor.TypeRFID
	}
	return receptor.TypeMote
}

// groupOrder lists distinct groups in first-appearance (receptor) order —
// the order the processor constructs Merge nodes in.
func (c *DeploymentCase) groupOrder() []string {
	seen := make(map[string]bool)
	var order []string
	for _, g := range c.GroupOf {
		if !seen[g] {
			seen[g] = true
			order = append(order, g)
		}
	}
	return order
}

// GenDeploymentCase deterministically builds the deployment for a seed:
// the kind cycles with seed%3, everything else (device count, grouping,
// stage selection, window widths, and the full polled traces) comes from
// the seed's RNG.
func GenDeploymentCase(seed int64) DeploymentCase {
	r := rand.New(rand.NewSource(seed))
	c := DeploymentCase{
		Seed:   seed,
		Kind:   int(((seed % depKinds) + depKinds) % depKinds),
		Epoch:  time.Second,
		Epochs: 5 + r.Intn(4),
	}
	if c.Kind == depShelf {
		genShelfCase(&c, r)
	} else {
		genMoteCase(&c, r)
	}
	return c
}

func genMoteCase(c *DeploymentCase, r *rand.Rand) {
	n := 2 + r.Intn(4)
	ng := 1 + r.Intn(3)
	if ng > n {
		ng = n
	}
	if r.Intn(2) == 0 {
		c.PointLimit = 28
	}
	c.SmoothG = []time.Duration{0, c.Epoch, 2 * c.Epoch, 4 * c.Epoch}[r.Intn(4)]
	c.MergeKind = r.Intn(3)
	c.MergeG = []time.Duration{c.Epoch, 2 * c.Epoch}[r.Intn(2)]
	if c.Kind == depVirt {
		c.VirtG = []time.Duration{c.Epoch, 2 * c.Epoch}[r.Intn(2)]
	}
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("m%02d", i)
		base := 20 + r.Float64()*10
		amp := r.Float64() * 6
		phase := r.Float64() * 2 * math.Pi
		m := sim.NewMote(c.Seed, id, 0.5+0.5*r.Float64(), sim.SensorModel{
			Name: "temp",
			Truth: func(now time.Time) float64 {
				return base + amp*math.Sin(phase+now.Sub(epoch0).Seconds()/7)
			},
			Bias:     r.Float64()*2 - 1,
			NoiseStd: 2,
		})
		c.IDs = append(c.IDs, id)
		c.GroupOf = append(c.GroupOf, fmt.Sprintf("g%d", i%ng))
		c.Traces = append(c.Traces, recordTrace(m, c.Epoch, c.Epochs))
	}
}

func genShelfCase(c *DeploymentCase, r *rand.Rand) {
	n := 2 + r.Intn(2)
	c.TagG = []time.Duration{c.Epoch, 2 * c.Epoch, 4 * c.Epoch}[r.Intn(3)]
	c.Arbitrate = r.Intn(2) == 0
	// One tag sits in every reader's view so Arbitrate has a real
	// contention to resolve; the rest are private per shelf.
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("reader%d", i)
		view := []sim.TagInView{{ID: "shared-t0", Detect: 0.3 + 0.5*r.Float64()}}
		for j, nt := 0, 1+r.Intn(3); j < nt; j++ {
			view = append(view, sim.TagInView{
				ID:     fmt.Sprintf("s%d-t%d", i, j),
				Detect: 0.4 + 0.6*r.Float64(),
			})
		}
		rd := sim.NewRFIDReader(c.Seed, id, func(time.Time) []sim.TagInView { return view })
		rd.ChecksumFailP = 0.15
		rd.GhostP = 0.1
		c.IDs = append(c.IDs, id)
		c.GroupOf = append(c.GroupOf, fmt.Sprintf("shelf%d", i))
		c.Traces = append(c.Traces, recordTrace(rd, c.Epoch, c.Epochs))
	}
}

// recordTrace polls a simulated device once per epoch and records the
// delivered tuples — the deterministic input every execution path replays.
func recordTrace(rec receptor.Receptor, epoch time.Duration, epochs int) []stream.Tuple {
	var trace []stream.Tuple
	for k := 1; k <= epochs; k++ {
		trace = append(trace, rec.Poll(epoch0.Add(time.Duration(k)*epoch))...)
	}
	return trace
}

// build assembles the deployment from the recorded traces. hand selects
// the hand-built operator variants of the CQL toolkit stages (the
// cql-vs-handbuilt cross-check); both variants see byte-identical inputs.
func (c *DeploymentCase) build(hand bool) (*core.Deployment, error) {
	typ := c.typ()
	var schema *stream.Schema
	if c.Kind == depShelf {
		schema = sim.RFIDSchema
	} else {
		schema = sim.MoteSchemaFor("temp")
	}
	dep := &core.Deployment{Epoch: c.Epoch, Groups: receptor.NewGroups()}
	members := make(map[string][]string)
	for i, id := range c.IDs {
		dep.Receptors = append(dep.Receptors, receptor.NewReplay(id, typ, schema, c.Traces[i]))
		members[c.GroupOf[i]] = append(members[c.GroupOf[i]], id)
	}
	for _, g := range c.groupOrder() {
		if err := dep.Groups.Add(receptor.Group{Name: g, Type: typ, Members: members[g]}); err != nil {
			return nil, err
		}
	}

	pl := &core.Pipeline{Type: typ}
	used := false
	if c.Kind == depShelf {
		pl.Point = core.PointChecksum("checksum_ok")
		if hand {
			pl.Smooth = handTagCount(c.TagG)
		} else {
			pl.Smooth = core.SmoothTagCount(c.TagG)
		}
		if c.Arbitrate {
			pl.Arbitrate = core.ArbitrateMaxSum("tag_id", "n")
		}
		used = true
		dep.TieBreak = func(a, b stream.Tuple) bool {
			return fmt.Sprint(a.Values) < fmt.Sprint(b.Values)
		}
	} else {
		if c.PointLimit != 0 {
			if hand {
				pl.Point = handPointBelow("temp", c.PointLimit)
			} else {
				pl.Point = core.PointBelow("temp", c.PointLimit)
			}
			used = true
		}
		if c.SmoothG > 0 {
			if hand {
				pl.Smooth = handWindowAgg("smooth-avg", stream.AggAvg, "temp", c.SmoothG)
			} else {
				pl.Smooth = core.SmoothAvg("temp", c.SmoothG)
			}
			used = true
		}
		switch c.MergeKind {
		case 1:
			if hand {
				pl.Merge = handWindowAgg("merge-avg", stream.AggAvg, "temp", c.MergeG)
			} else {
				pl.Merge = core.MergeAvg("temp", c.MergeG)
			}
			used = true
		case 2:
			if hand {
				pl.Merge = handWindowAgg("merge-median", stream.AggMedian, "temp", c.MergeG)
			} else {
				pl.Merge = core.MergeMedian("temp", c.MergeG)
			}
			used = true
		}
	}
	if used {
		dep.Pipelines = map[receptor.Type]*core.Pipeline{typ: pl}
	}
	if c.Kind == depVirt {
		dep.Virtualize = &core.VirtualizeSpec{
			Query: fmt.Sprintf("SELECT avg(temp) AS vtemp FROM sensors_input [Range By '%d ms']",
				c.VirtG/time.Millisecond),
			Bind: map[string]receptor.Type{"sensors_input": typ},
		}
	}
	return dep, nil
}

// handPointBelow is the hand-built twin of core.PointBelow: a bare filter
// operator instead of a compiled WHERE clause.
func handPointBelow(field string, limit float64) core.Stage {
	return core.FuncStage{
		Name: "hand-point-below",
		Fn: func(in *stream.Schema, env core.BuildEnv) (stream.Operator, error) {
			return stream.NewFilter(stream.NewBinary(stream.OpLt,
				stream.NewCol(field), stream.NewConst(stream.Float(limit)))), nil
		},
	}
}

// handWindowAgg is the hand-built twin of the single-aggregate windowed
// toolkit queries (SmoothAvg, MergeAvg, MergeMedian): a WindowAgg
// constructed directly instead of planned from CQL.
func handWindowAgg(name string, fn stream.AggFunc, field string, g time.Duration) core.Stage {
	return core.FuncStage{
		Name: "hand-" + name,
		Fn: func(in *stream.Schema, env core.BuildEnv) (stream.Operator, error) {
			return &stream.WindowAgg{
				Aggs:  []stream.AggSpec{{Name: field, Func: fn, Arg: stream.NewCol(field)}},
				Range: g,
				Slide: env.Epoch,
			}, nil
		},
	}
}

// handTagCount is the hand-built twin of core.SmoothTagCount.
func handTagCount(g time.Duration) core.Stage {
	return core.FuncStage{
		Name: "hand-tag-count",
		Fn: func(in *stream.Schema, env core.BuildEnv) (stream.Operator, error) {
			return &stream.WindowAgg{
				GroupBy: []stream.NamedExpr{{Name: "tag_id", Expr: stream.NewCol("tag_id")}},
				Aggs:    []stream.AggSpec{{Name: "n", Func: stream.AggCount}},
				Range:   g,
				Slide:   env.Epoch,
			}, nil
		},
	}
}

// depOutput captures everything externally observable from one run: the
// type sink stream (structurally, for reference comparison) and a byte
// rendering of every labelled stream — sinks, per-stage taps, Virtualize.
type depOutput struct {
	sink     []stream.Tuple
	rendered string
}

// runWith builds and executes the case under one scheduler and collects
// its observable output.
func (c *DeploymentCase) runWith(sched core.Scheduler, hand bool) (*depOutput, error) {
	dep, err := c.build(hand)
	if err != nil {
		return nil, err
	}
	return c.runDep(dep, sched)
}

// runDep executes an already-built deployment (possibly with wrapped
// receptors — the chaos check injects fault wrappers) and collects its
// observable output.
func (c *DeploymentCase) runDep(dep *core.Deployment, sched core.Scheduler) (*depOutput, error) {
	p, err := core.NewProcessor(dep)
	if err != nil {
		return nil, err
	}
	p.SetScheduler(sched)
	streams := make(map[string][]stream.Tuple)
	collect := func(label string) func(stream.Tuple) {
		return func(t stream.Tuple) { streams[label] = append(streams[label], t) }
	}
	typ := c.typ()
	sinkLabel := "sink/" + string(typ)
	p.OnType(typ, collect(sinkLabel))
	for _, st := range []core.StageKind{core.StagePoint, core.StageSmooth, core.StageMerge, core.StageArbitrate} {
		p.Tap(typ, st, collect(fmt.Sprintf("tap/%s/%s", typ, st)))
	}
	if c.Kind == depVirt {
		p.OnVirtualize(collect("virtualize"))
	}
	err = p.Run(epoch0, epoch0.Add(time.Duration(c.Epochs)*c.Epoch))
	if ps, ok := sched.(*core.ParallelScheduler); ok {
		ps.Close()
	}
	if err != nil {
		return nil, err
	}
	labels := make([]string, 0, len(streams))
	for l := range streams {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	var sb strings.Builder
	for _, l := range labels {
		fmt.Fprintf(&sb, "== %s ==\n%s", l, renderTuples(streams[l]))
	}
	return &depOutput{sink: streams[sinkLabel], rendered: sb.String()}, nil
}

// CheckDeploymentCase cross-checks one deployment: SeqScheduler against
// ParallelScheduler at 1 and 4 workers byte-level on every observable
// stream, and (mote family) the sink stream against the straight-line
// five-stage reference within float tolerance.
func CheckDeploymentCase(c DeploymentCase) *Divergence {
	if d := checkSchedulers(c); d != nil {
		return minimizeDeployment(c, d, checkSchedulers)
	}
	if c.Kind == depMote {
		if d := checkPipelineVsRef(c); d != nil {
			return minimizeDeployment(c, d, checkPipelineVsRef)
		}
	}
	return nil
}

func checkSchedulers(c DeploymentCase) *Divergence {
	fail := func(diff string) *Divergence {
		return &Divergence{Check: "seq-vs-parallel", Seed: c.Seed, Case: c.String(), Diff: diff}
	}
	seq, err := c.runWith(core.SeqScheduler{}, false)
	if err != nil {
		return fail(fmt.Sprintf("seq error: %v", err))
	}
	for _, workers := range []int{1, 4} {
		par, err := c.runWith(core.NewParallelScheduler(workers), false)
		if err != nil {
			return fail(fmt.Sprintf("parallel(%d) error: %v", workers, err))
		}
		if par.rendered != seq.rendered {
			return fail(fmt.Sprintf("workers=%d: %s", workers, firstDiff(seq.rendered, par.rendered)))
		}
	}
	return nil
}

func checkPipelineVsRef(c DeploymentCase) *Divergence {
	got, err := c.runWith(core.SeqScheduler{}, false)
	if err != nil {
		return &Divergence{Check: "pipeline-vs-reference", Seed: c.Seed, Case: c.String(),
			Diff: fmt.Sprintf("error: %v", err)}
	}
	ref := refMotePipeline(c)
	if diff := compareToRef(got.sink, ref); diff != "" {
		return &Divergence{Check: "pipeline-vs-reference", Seed: c.Seed, Case: c.String(), Diff: diff}
	}
	return nil
}

// CheckPlanCase runs the CQL-compiled and hand-built variants of the same
// deployment over the same traces and demands byte-identical output. Only
// kinds whose toolkit stages have hand twins participate (shelf Arbitrate
// has none — its >= ALL rewrite exists only in the planner).
func CheckPlanCase(c DeploymentCase) *Divergence {
	check := func(t DeploymentCase) *Divergence {
		fail := func(diff string) *Divergence {
			return &Divergence{Check: "cql-vs-handbuilt", Seed: t.Seed, Case: t.String(), Diff: diff}
		}
		planned, err := t.runWith(core.SeqScheduler{}, false)
		if err != nil {
			return fail(fmt.Sprintf("cql error: %v", err))
		}
		handmade, err := t.runWith(core.SeqScheduler{}, true)
		if err != nil {
			return fail(fmt.Sprintf("hand error: %v", err))
		}
		if planned.rendered != handmade.rendered {
			return fail(firstDiff(planned.rendered, handmade.rendered))
		}
		return nil
	}
	if d := check(c); d != nil {
		return minimizeDeployment(c, d, check)
	}
	return nil
}

// runToggled builds the CQL-compiled variant of the case, applies adjust
// to the built deployment (the execution-mode toggles: DisableBatching,
// DisableOptimizer), and runs it under the sequential scheduler.
func (c *DeploymentCase) runToggled(adjust func(*core.Deployment)) (*depOutput, error) {
	dep, err := c.build(false)
	if err != nil {
		return nil, err
	}
	adjust(dep)
	return c.runDep(dep, core.SeqScheduler{})
}

// CheckBatchCase runs the same deployment with columnar batch exchange on
// (the default) and off (Deployment.DisableBatching) and demands
// byte-identical output on every observable stream: batching is an
// execution-layer representation change and must never alter results.
func CheckBatchCase(c DeploymentCase) *Divergence {
	check := func(t DeploymentCase) *Divergence {
		fail := func(diff string) *Divergence {
			return &Divergence{Check: "batched-vs-tuple", Seed: t.Seed, Case: t.String(), Diff: diff}
		}
		batched, err := t.runWith(core.SeqScheduler{}, false)
		if err != nil {
			return fail(fmt.Sprintf("batched error: %v", err))
		}
		tuple, err := t.runToggled(func(d *core.Deployment) { d.DisableBatching = true })
		if err != nil {
			return fail(fmt.Sprintf("tuple error: %v", err))
		}
		if batched.rendered != tuple.rendered {
			return fail(firstDiff(batched.rendered, tuple.rendered))
		}
		return nil
	}
	if d := check(c); d != nil {
		return minimizeDeployment(c, d, check)
	}
	return nil
}

// CheckOptCase runs the same deployment with the CQL plan-rewrite pass on
// (the default) and off (Deployment.DisableOptimizer) and demands
// byte-identical output: every rewrite in the catalog (predicate
// pushdown, projection pruning, operator fusion) must preserve semantics
// exactly, including fold order.
func CheckOptCase(c DeploymentCase) *Divergence {
	check := func(t DeploymentCase) *Divergence {
		fail := func(diff string) *Divergence {
			return &Divergence{Check: "optimized-vs-unoptimized", Seed: t.Seed, Case: t.String(), Diff: diff}
		}
		optimized, err := t.runWith(core.SeqScheduler{}, false)
		if err != nil {
			return fail(fmt.Sprintf("optimized error: %v", err))
		}
		plain, err := t.runToggled(func(d *core.Deployment) { d.DisableOptimizer = true })
		if err != nil {
			return fail(fmt.Sprintf("unoptimized error: %v", err))
		}
		if optimized.rendered != plain.rendered {
			return fail(firstDiff(optimized.rendered, plain.rendered))
		}
		return nil
	}
	if d := check(c); d != nil {
		return minimizeDeployment(c, d, check)
	}
	return nil
}

// GenPlanCase builds a deployment for the cql-vs-handbuilt check: the
// mote or shelf family with every hand-twinned stage forced on.
func GenPlanCase(seed int64) DeploymentCase {
	c := GenDeploymentCase(seed)
	switch c.Kind {
	case depShelf:
		c.Arbitrate = false
	case depVirt:
		c.Kind = depMote
		c.VirtG = 0
		fallthrough
	default:
		c.PointLimit = 28
		if c.SmoothG == 0 {
			c.SmoothG = 2 * c.Epoch
		}
		if c.MergeKind == 0 {
			c.MergeKind = 1 + int(seed%2)
		}
	}
	return c
}

// minimizeDeployment greedily drops trace tuples while the check keeps
// failing, and returns the divergence of the smallest still-failing case.
func minimizeDeployment(c DeploymentCase, orig *Divergence, check func(DeploymentCase) *Divergence) *Divergence {
	best := orig
	for changed := true; changed; {
		changed = false
		for ri := range c.Traces {
			for ti := 0; ti < len(c.Traces[ri]); ti++ {
				t := c
				t.Traces = append([][]stream.Tuple(nil), c.Traces...)
				t.Traces[ri] = append(append([]stream.Tuple(nil), c.Traces[ri][:ti]...), c.Traces[ri][ti+1:]...)
				if d := check(t); d != nil {
					c, best, changed = t, d, true
					ti--
				}
			}
		}
	}
	return best
}

// String renders the case for divergence reports: the configuration plus
// the full recorded traces.
func (c DeploymentCase) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "seed=%d kind=%d epoch=%v epochs=%d\n", c.Seed, c.Kind, c.Epoch, c.Epochs)
	if c.Kind == depShelf {
		fmt.Fprintf(&sb, "shelf: tagG=%v arbitrate=%v\n", c.TagG, c.Arbitrate)
	} else {
		fmt.Fprintf(&sb, "mote: pointLimit=%v smoothG=%v mergeKind=%d mergeG=%v virtG=%v\n",
			c.PointLimit, c.SmoothG, c.MergeKind, c.MergeG, c.VirtG)
	}
	for i, id := range c.IDs {
		fmt.Fprintf(&sb, "receptor %s group=%s trace:\n", id, c.GroupOf[i])
		for _, t := range c.Traces[i] {
			fmt.Fprintf(&sb, "  %d|%v\n", t.Ts.UnixNano(), t.Values)
		}
	}
	return sb.String()
}
