package oracle

import "testing"

// TestChaosDropCommute runs the chaos differential over a seed range —
// online injection must equal offline thinning on every case.
func TestChaosDropCommute(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		if d := CheckChaosCase(GenDeploymentCase(seed)); d != nil {
			t.Fatalf("seed %d: %v", seed, d)
		}
	}
}

// TestChaosDropCommuteHasTeeth thins with the WRONG injector seed and
// demands the comparison notices: if mismatched fault realisations
// still render identically for every probed seed, the check compares
// nothing.
func TestChaosDropCommuteHasTeeth(t *testing.T) {
	caught := false
	for seed := int64(1); seed <= 8 && !caught; seed++ {
		c := GenDeploymentCase(seed)
		faults := genChaosFaults(&c)
		online, err := runChaosOnline(c, faults)
		if err != nil {
			t.Fatal(err)
		}
		wrong, err := runChaosThinned(c, faults, func(i int) int64 { return chaosFaultSeed(&c, i) + 1 })
		if err != nil {
			t.Fatal(err)
		}
		if online.rendered != wrong.rendered {
			caught = true
		}
	}
	if !caught {
		t.Fatal("wrong-seed thinning was never distinguishable from online injection")
	}
}
