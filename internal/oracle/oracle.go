// Package oracle is the differential correctness harness for the ESP
// pipeline: small, obviously-correct reference implementations of
// windowed aggregation and the five-stage pipeline, seeded deterministic
// generators of random window programs and deployments (reusing
// internal/sim), and a runner that executes every generated case several
// ways and fails with a minimized, seed-reproducible counterexample on
// divergence.
//
// Cross-checks (see DESIGN.md, "Correctness harness"):
//
//   - pane-vs-naive: WindowAgg's pane-merge path against its
//     re-aggregating emitNaive path, byte-level.
//   - window-vs-reference: WindowAgg against a two-pass reference that
//     recomputes every window from the documented contract, within float
//     tolerance.
//   - seq-vs-parallel: a deployment under SeqScheduler against
//     ParallelScheduler(1) and ParallelScheduler(4), byte-level on sink
//     and tap streams.
//   - pipeline-vs-reference: a restricted deployment family against a
//     straight-line interpreter of the five-stage contract, within float
//     tolerance.
//   - cql-vs-handbuilt: stages compiled from CQL against hand-built
//     operator graphs over identical receptor traces, byte-level.
//   - batched-vs-tuple: a deployment with columnar batch exchange (the
//     default) against the same deployment pinned to the row-at-a-time
//     path (Deployment.DisableBatching), byte-level.
//   - optimized-vs-unoptimized: a deployment planned with the CQL
//     rewrite pass (the default) against the same deployment planned
//     naively (Deployment.DisableOptimizer), byte-level.
//   - chaos-drop-commute: online drop-fault injection (receptor.Faulty)
//     against offline trace thinning (receptor.ThinTrace), byte-level.
//   - recovery-replay-commute: a served deployment killed at a random
//     epoch and recovered from its write-ahead log against an
//     uninterrupted run, byte-level by output fingerprint.
//
// Byte-level comparison is sound only between execution paths that fold
// the same value multiset in the same order through the same accumulator
// code; reference comparisons tolerate last-ulp float differences
// (tolerance 1e-9 relative) because the reference deliberately uses
// different arithmetic (two-pass) than the production accumulators.
package oracle

import (
	"fmt"
	"math"
	"strings"

	"esp/internal/stream"
)

// Config parameterises a differential run.
type Config struct {
	// Seed is the base seed; case i of each check derives its own seed
	// from it, so any reported counterexample is reproducible from the
	// (check, seed) pair alone.
	Seed int64
	// WindowCases, SchedCases, PlanCases, BatchCases, OptCases,
	// ChaosCases and RecoveryCases size the case generators, one per
	// check family.
	WindowCases, SchedCases, PlanCases, BatchCases, OptCases, ChaosCases, RecoveryCases int
	// RefStdev, when non-nil, replaces the reference implementation's
	// standard-deviation finisher. The harness's own tests use it to
	// inject a deliberately wrong aggregate (the legacy catastrophically
	// cancelling sum-of-squares formula) and assert the runner catches it
	// with a seed-reproducible counterexample.
	RefStdev func(vals []float64) float64
}

// DefaultConfig sizes a run for `make check`: every check exercised,
// ≥ 50 cases total, a few seconds of wall clock.
func DefaultConfig() Config {
	return Config{Seed: 1, WindowCases: 40, SchedCases: 8, PlanCases: 10, BatchCases: 8, OptCases: 8, ChaosCases: 8, RecoveryCases: 6}
}

// Divergence is one caught disagreement between two execution paths of
// the same case. It is an error whose text is a full reproduction
// recipe.
type Divergence struct {
	// Check names the cross-check that tripped, e.g. "pane-vs-naive".
	Check string
	// Seed regenerates the case: the same (Check, Seed) pair always
	// rebuilds the identical case and inputs.
	Seed int64
	// Case renders the (minimized, where supported) failing case.
	Case string
	// Diff locates the first disagreement between the two paths.
	Diff string
}

// Error implements error: the report format documented in DESIGN.md.
func (d *Divergence) Error() string {
	return fmt.Sprintf("oracle: divergence in check %s (seed %d)\n--- case ---\n%s\n--- diff ---\n%s",
		d.Check, d.Seed, d.Case, d.Diff)
}

// renderTuples renders a tuple stream one line per tuple — the byte-level
// comparison form. Two paths that agree must render identically.
func renderTuples(ts []stream.Tuple) string {
	var sb strings.Builder
	for _, t := range ts {
		fmt.Fprintf(&sb, "%d|%v\n", t.Ts.UnixNano(), t.Values)
	}
	return sb.String()
}

// firstDiff locates the first differing line of two renderings.
func firstDiff(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(al) && i < len(bl); i++ {
		if al[i] != bl[i] {
			return fmt.Sprintf("line %d:\n  a: %q\n  b: %q", i+1, al[i], bl[i])
		}
	}
	return fmt.Sprintf("lengths differ: %d vs %d lines", len(al), len(bl))
}

// floatClose reports whether two floats agree within the reference
// tolerance (1e-9 relative, with an absolute floor for values near zero).
func floatClose(a, b float64) bool {
	if a == b {
		return true
	}
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.IsNaN(a) && math.IsNaN(b)
	}
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return math.Abs(a-b) <= 1e-9*scale
}

// valueClose compares two values: floats within tolerance, everything
// else exactly.
func valueClose(a, b stream.Value) bool {
	if a.Kind() == stream.KindFloat && b.Kind() == stream.KindFloat {
		return floatClose(a.AsFloat(), b.AsFloat())
	}
	return a == b
}

// compareToRef structurally compares an execution's tuples against the
// reference's, with float tolerance. Returns "" on agreement, else a
// description of the first disagreement.
func compareToRef(got, ref []stream.Tuple) string {
	n := len(got)
	if len(ref) < n {
		n = len(ref)
	}
	for i := 0; i < n; i++ {
		g, r := got[i], ref[i]
		if !g.Ts.Equal(r.Ts) {
			return fmt.Sprintf("tuple %d: ts %v vs reference %v", i, g.Ts, r.Ts)
		}
		if len(g.Values) != len(r.Values) {
			return fmt.Sprintf("tuple %d: %d values vs reference %d", i, len(g.Values), len(r.Values))
		}
		for j := range g.Values {
			if !valueClose(g.Values[j], r.Values[j]) {
				return fmt.Sprintf("tuple %d value %d: %v vs reference %v", i, j, g.Values[j], r.Values[j])
			}
		}
	}
	if len(got) != len(ref) {
		return fmt.Sprintf("tuple count: %d vs reference %d (first unmatched: %s)",
			len(got), len(ref), firstUnmatched(got, ref))
	}
	return ""
}

func firstUnmatched(got, ref []stream.Tuple) string {
	if len(got) > len(ref) {
		return fmt.Sprintf("extra %v", got[len(ref)])
	}
	return fmt.Sprintf("missing %v", ref[len(got)])
}
