package oracle

import (
	"fmt"
	"math/rand"
	"os"

	"esp/internal/server"
	"esp/internal/wal/waltest"
)

// recovery-replay-commute: a journalled tenant crashed at a random
// epoch and recovered from its WAL must finish the workload with output
// byte-identical to an uninterrupted run — the replay-commute property
// under an actual kill, not just a clean handoff. The fingerprint is
// order-sensitive over canonical frame bytes, so any divergence in
// window state rebuilt by replay (a lost reading, a reordered publish,
// a double-committed epoch) trips it.

// CheckRecoveryCase runs one crash-recovery differential: pick one of
// the battery deployments and a crash epoch from the seed, run the
// workload uninterrupted for reference, run it journalled and kill the
// tenant at the crash epoch, recover from the journal in a fresh
// engine, finish the workload, and compare fingerprints.
func CheckRecoveryCase(seed int64) *Divergence {
	r := rand.New(rand.NewSource(seed ^ 0x4a11))
	ds := waltest.Deployments()
	d := ds[r.Intn(len(ds))]
	crashAt := 1 + r.Intn(d.Epochs-1)
	caseText := fmt.Sprintf("deployment %s, %d epochs, crash after epoch %d", d.Name, d.Epochs, crashAt)
	fail := func(diff string) *Divergence {
		return &Divergence{Check: "recovery-replay-commute", Seed: seed, Case: caseText, Diff: diff}
	}

	in := d.Workload(seed)
	ref, err := waltest.Reference(d, in)
	if err != nil {
		return fail(fmt.Sprintf("reference error: %v", err))
	}

	dir, err := os.MkdirTemp("", "esp-oracle-wal-*")
	if err != nil {
		return fail(fmt.Sprintf("tempdir: %v", err))
	}
	defer os.RemoveAll(dir)

	before, err := waltest.RunCrashedAt(d, in, dir, crashAt)
	if err != nil {
		return fail(fmt.Sprintf("journalled run error: %v", err))
	}

	eng := server.NewEngine(0)
	eng.SetWALDir(dir)
	reports, err := eng.Recover()
	if err != nil {
		return fail(fmt.Sprintf("recover error: %v", err))
	}
	if len(reports) != 1 || reports[0].Epochs != crashAt {
		return fail(fmt.Sprintf("recovery reports %+v, want 1 report of %d epochs", reports, crashAt))
	}
	ten, ok := eng.Tenant(d.Name)
	if !ok {
		return fail("tenant missing after recovery")
	}
	if !ten.Last().Equal(d.Boundary(crashAt)) {
		return fail(fmt.Sprintf("recovered clock %v, want %v", ten.Last(), d.Boundary(crashAt)))
	}
	after, err := waltest.Resume(ten, d, in, crashAt)
	if err != nil {
		return fail(fmt.Sprintf("resume error: %v", err))
	}
	if err := ten.Drain(); err != nil {
		return fail(fmt.Sprintf("drain error: %v", err))
	}

	got := waltest.Fold(append(append([]waltest.EpochFrames{}, before...), after...))
	want := waltest.Fold(ref)
	if got.Sum() != want.Sum() || got.Frames() != want.Frames() || got.Tuples() != want.Tuples() {
		return fail(fmt.Sprintf("recovered output %v diverges from uninterrupted %v", got, want))
	}
	return nil
}
