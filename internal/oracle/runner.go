package oracle

// Run executes the full differential suite: WindowCases window-algebra
// programs (pane-vs-naive, window-vs-reference), SchedCases deployments
// (seq-vs-parallel, pipeline-vs-reference), PlanCases paired
// deployments (cql-vs-handbuilt), BatchCases execution-mode pairs
// (batched-vs-tuple), OptCases planning-mode pairs
// (optimized-vs-unoptimized), ChaosCases fault-injected deployments
// (chaos-drop-commute), and RecoveryCases crash-recovery differentials
// (recovery-replay-commute). It returns the number of cases
// executed and the first divergence found, minimized — or nil when every
// cross-check agreed. Case i of each family uses seed cfg.Seed+i, so a
// reported Divergence reproduces from its (Check, Seed) pair alone.
func Run(cfg Config) (int, *Divergence) {
	cases := 0
	for i := 0; i < cfg.WindowCases; i++ {
		cases++
		if d := CheckWindowCase(GenWindowCase(cfg.Seed+int64(i)), cfg); d != nil {
			return cases, d
		}
	}
	for i := 0; i < cfg.SchedCases; i++ {
		cases++
		if d := CheckDeploymentCase(GenDeploymentCase(cfg.Seed + int64(i))); d != nil {
			return cases, d
		}
	}
	for i := 0; i < cfg.PlanCases; i++ {
		cases++
		if d := CheckPlanCase(GenPlanCase(cfg.Seed + int64(i))); d != nil {
			return cases, d
		}
	}
	for i := 0; i < cfg.BatchCases; i++ {
		cases++
		if d := CheckBatchCase(GenDeploymentCase(cfg.Seed + int64(i))); d != nil {
			return cases, d
		}
	}
	for i := 0; i < cfg.OptCases; i++ {
		cases++
		if d := CheckOptCase(GenPlanCase(cfg.Seed + int64(i))); d != nil {
			return cases, d
		}
	}
	for i := 0; i < cfg.ChaosCases; i++ {
		cases++
		if d := CheckChaosCase(GenDeploymentCase(cfg.Seed + int64(i))); d != nil {
			return cases, d
		}
	}
	for i := 0; i < cfg.RecoveryCases; i++ {
		cases++
		if d := CheckRecoveryCase(cfg.Seed + int64(i)); d != nil {
			return cases, d
		}
	}
	return cases, nil
}
