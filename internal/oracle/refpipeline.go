package oracle

import (
	"time"

	"esp/internal/stream"
)

// This file is the reference implementation of the five-stage pipeline
// for the mote deployment family: a straight-line interpreter that
// recomputes every epoch's sink output from the recorded traces and the
// documented stage contracts — annotate, Point filter, per-leg Smooth
// window average, per-group Merge window aggregate — sharing no code
// with the Processor, its dataflow graph, or its schedulers. Timestamps
// in the traces coincide with epoch boundaries and every window width is
// a multiple of the epoch, so the reference never faces the late-arrival
// rule (refwindow.go covers that dimension independently).

// refMotePipeline returns the tuples the deployment's type sink must
// deliver, in order.
func refMotePipeline(c DeploymentCase) []stream.Tuple {
	boundary := func(k int) time.Time { return epoch0.Add(time.Duration(k) * c.Epoch) }

	// Stages 1+2 — annotate and Point-filter each receptor's trace. A
	// mote trace tuple is (mote_id, temp); annotation prepends the
	// receptor ID and spatial granule.
	type row struct {
		ts time.Time
		v  float64
	}
	filtered := make([][]row, len(c.IDs))
	annotated := make([][]stream.Tuple, len(c.IDs))
	for ri, trace := range c.Traces {
		for _, t := range trace {
			v := t.Values[1].AsFloat()
			if c.PointLimit != 0 && !(v < c.PointLimit) {
				continue
			}
			filtered[ri] = append(filtered[ri], row{ts: t.Ts, v: v})
			vals := append([]stream.Value{stream.String(c.IDs[ri]), stream.String(c.GroupOf[ri])}, t.Values...)
			annotated[ri] = append(annotated[ri], stream.Tuple{Ts: t.Ts, Values: vals})
		}
	}

	// Stage 3 — Smooth: the window (b−G, b] average of each leg's stream
	// at every epoch boundary b, emitted only when the window is non-empty.
	smooth := make([][]row, len(c.IDs))
	if c.SmoothG > 0 {
		for ri := range filtered {
			for k := 1; k <= c.Epochs; k++ {
				b := boundary(k)
				var vals []float64
				for _, rw := range filtered[ri] {
					if rw.ts.After(b.Add(-c.SmoothG)) && !rw.ts.After(b) {
						vals = append(vals, rw.v)
					}
				}
				if len(vals) > 0 {
					smooth[ri] = append(smooth[ri], row{ts: b, v: refSum(vals) / float64(len(vals))})
				}
			}
		}
	}

	// Stage 4 — Merge per proximity group, then sink assembly. The sink
	// order within an epoch follows the processor's node construction
	// order: merge nodes in group first-appearance order, else legs in
	// receptor order; raw pass-through tuples arrive during injection.
	groupOrder := c.groupOrder()
	var out []stream.Tuple
	for k := 1; k <= c.Epochs; k++ {
		b := boundary(k)
		switch {
		case c.MergeKind != 0:
			for _, g := range groupOrder {
				var vals []float64
				for ri := range c.IDs {
					if c.GroupOf[ri] != g {
						continue
					}
					src := filtered[ri]
					if c.SmoothG > 0 {
						src = smooth[ri]
					}
					for _, rw := range src {
						if rw.ts.After(b.Add(-c.MergeG)) && !rw.ts.After(b) {
							vals = append(vals, rw.v)
						}
					}
				}
				if len(vals) == 0 {
					continue
				}
				v := refSum(vals) / float64(len(vals))
				if c.MergeKind == 2 {
					v = refQuantile(vals, 0.5)
				}
				out = append(out, stream.Tuple{Ts: b, Values: []stream.Value{stream.String(g), stream.Float(v)}})
			}
		case c.SmoothG > 0:
			for ri := range c.IDs {
				for _, rw := range smooth[ri] {
					if rw.ts.Equal(b) {
						out = append(out, stream.Tuple{Ts: b, Values: []stream.Value{
							stream.String(c.IDs[ri]), stream.String(c.GroupOf[ri]), stream.Float(rw.v)}})
					}
				}
			}
		default:
			for ri := range c.IDs {
				for _, t := range annotated[ri] {
					if t.Ts.After(b.Add(-c.Epoch)) && !t.Ts.After(b) {
						out = append(out, t)
					}
				}
			}
		}
	}
	return out
}
