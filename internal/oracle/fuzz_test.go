package oracle

import (
	"testing"
	"time"

	"esp/internal/stream"
)

// decodeWindowCase derives a window program from raw fuzz bytes — the
// byte-driven counterpart of GenWindowCase, reaching event interleavings
// a uniform RNG rarely produces (bursts, duplicates, adversarial late
// arrivals). Values stay on the exact-arithmetic profiles so the
// pane-vs-naive byte comparison remains sound.
func decodeWindowCase(data []byte) WindowCase {
	pop := func() byte {
		if len(data) == 0 {
			return 0
		}
		b := data[0]
		data = data[1:]
		return b
	}
	c := WindowCase{Seed: -1}
	c.Slide = []time.Duration{500 * time.Millisecond, time.Second, 2 * time.Second}[int(pop())%3]
	switch int(pop()) % 5 {
	case 0:
		c.Range = 0
	case 1:
		c.Range = c.Slide
	case 2:
		c.Range = 3 * c.Slide
	case 3:
		c.Range = 2*c.Slide + c.Slide/2
	case 4:
		c.Range = c.Slide / 2
	}
	flags := pop()
	c.GroupBy = flags&1 != 0
	c.EmitEmpty = !c.GroupBy && flags&2 != 0
	c.HavingMinN = int64(pop()) % 3
	offset := 0.0
	if flags&4 != 0 {
		offset = 1e9
	}

	c.Aggs = append(c.Aggs, stream.AggSpec{Name: "n", Func: stream.AggCount})
	col := func() stream.Expr { return stream.NewCol("v") }
	pool := []stream.AggSpec{
		{Name: "s", Func: stream.AggSum, Arg: col()},
		{Name: "a", Func: stream.AggAvg, Arg: col()},
		{Name: "sd", Func: stream.AggStdev, Arg: col()},
		{Name: "mn", Func: stream.AggMin, Arg: col()},
		{Name: "mx", Func: stream.AggMax, Arg: col()},
		{Name: "md", Func: stream.AggMedian, Arg: col()},
		{Name: "p", Func: stream.AggPercentile, Arg: col(), Param: 0.25 + 0.5*float64(pop()%3)/2},
		{Name: "dn", Func: stream.AggCount, Arg: col(), Distinct: true},
		{Name: "ds", Func: stream.AggSum, Arg: col(), Distinct: true},
		{Name: "dsd", Func: stream.AggStdev, Arg: col(), Distinct: true},
		{Name: "dmd", Func: stream.AggMedian, Arg: col(), Distinct: true},
	}
	mask := int(pop()) | int(pop())<<8
	for i, a := range pool {
		if mask&(1<<i) != 0 {
			c.Aggs = append(c.Aggs, a)
		}
	}

	// Remaining bytes drive events in 3-byte chunks: kind, time, value.
	// Time quantises to sixteenths of a slide over an 8-slide horizon so
	// events land on and around boundaries.
	for len(data) >= 3 {
		k, at, v := pop(), pop(), pop()
		ev := WindowEvent{At: c.Slide / 16 * time.Duration(int(at)%129)}
		if k%4 == 0 {
			ev.Advance = true
		} else {
			ev.Group = []string{"a", "b", "c"}[int(k)%3]
			ev.V = offset + float64(int(v)-128)
			ev.Null = k%16 == 1
		}
		c.Events = append(c.Events, ev)
	}
	return c
}

// FuzzWindowAlgebra runs the full window cross-check (pane-vs-naive
// byte-level, window-vs-reference with tolerance) over byte-derived
// programs. Any divergence or panic is a finding.
func FuzzWindowAlgebra(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 255, 255, 0, 8, 10, 130, 1, 16, 140, 4, 32, 120, 2, 48, 131, 0, 64, 0})
	f.Add([]byte{0, 4, 5, 1, 255, 0, 0, 0, 200, 1, 0, 100, 0, 200, 0, 3, 3, 3, 17, 5, 129})
	f.Add([]byte{2, 3, 7, 2, 0, 8, 4, 64, 128, 5, 64, 128, 0, 64, 0, 9, 64, 127, 0, 128, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		c := decodeWindowCase(data)
		if d := CheckWindowCase(c, Config{}); d != nil {
			t.Fatalf("window algebra diverged:\n%v", d)
		}
	})
}
