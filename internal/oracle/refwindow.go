package oracle

import (
	"math"
	"sort"
	"time"

	"esp/internal/stream"
)

// This file is the reference implementation of windowed aggregation: a
// direct, two-pass transcription of the documented WindowAgg contract —
// boundaries at origin + k·Slide where origin is the first punctuation,
// the window at boundary b covering (b−Range, b], late tuples dropped
// once every window that could contain them has been emitted, one final
// window on Close. It shares no code with the pane or naive paths and
// recomputes every window from the full accepted-tuple list.

// refRow is one accepted observation.
type refRow struct {
	ts time.Time
	g  string
	v  stream.Value
}

// refWindow executes the case against the reference semantics and
// returns the emitted tuples and the dropped-tuple count.
func refWindow(c WindowCase, cfg Config) ([]stream.Tuple, int64) {
	rng := c.Range
	if rng == 0 { // NOW ≡ one slide
		rng = c.Slide
	}
	var (
		started  bool
		nextEmit time.Time
		pending  []refRow
		accepted []refRow
		dropped  int64
		out      []stream.Tuple
	)
	absorb := func(r refRow) {
		if !nextEmit.IsZero() && !r.ts.After(nextEmit.Add(-rng)) {
			dropped++
			return
		}
		accepted = append(accepted, r)
	}
	emit := func(b time.Time) {
		lo := b.Add(-rng)
		var rows []refRow
		for _, r := range accepted {
			if r.ts.After(lo) && !r.ts.After(b) {
				rows = append(rows, r)
			}
		}
		out = append(out, refFinish(c, b, rows, cfg)...)
	}
	for _, ev := range c.Events {
		if !ev.Advance {
			v := stream.Float(ev.V)
			if ev.Null {
				v = stream.Null()
			}
			r := refRow{ts: epoch0.Add(ev.At), g: ev.Group, v: v}
			if !started {
				pending = append(pending, r)
			} else {
				absorb(r)
			}
			continue
		}
		now := epoch0.Add(ev.At)
		if !started {
			started = true
			nextEmit = now
			for _, r := range pending {
				absorb(r)
			}
			pending = nil
		}
		for !nextEmit.After(now) {
			emit(nextEmit)
			nextEmit = nextEmit.Add(c.Slide)
		}
	}
	// Close: one final window at the next boundary, skipped when no live
	// state remains.
	if !started {
		if len(pending) == 0 {
			return out, dropped
		}
		started = true
		nextEmit = pending[len(pending)-1].ts
		for _, r := range pending {
			absorb(r)
		}
		pending = nil
	}
	lo := nextEmit.Add(-rng)
	live := false
	for _, r := range accepted {
		if r.ts.After(lo) {
			live = true
			break
		}
	}
	if live {
		emit(nextEmit)
	}
	return out, dropped
}

// refFinish computes the window result at boundary b over rows, honoring
// GROUP BY order, HAVING, and EmitEmpty exactly as documented.
func refFinish(c WindowCase, b time.Time, rows []refRow, cfg Config) []stream.Tuple {
	groups := make(map[string][]refRow)
	var order []string
	if c.GroupBy {
		for _, r := range rows {
			if _, ok := groups[r.g]; !ok {
				order = append(order, r.g)
			}
			groups[r.g] = append(groups[r.g], r)
		}
		sort.Strings(order) // finish sorts output rows by group values
	} else {
		if len(rows) > 0 || c.EmitEmpty {
			groups[""] = rows
			order = []string{""}
		}
	}
	var out []stream.Tuple
	for _, g := range order {
		grows := groups[g]
		vals := make([]stream.Value, 0, len(c.Aggs)+1)
		if c.GroupBy {
			vals = append(vals, stream.String(g))
		}
		var n stream.Value // the count agg output, for HAVING
		for _, spec := range c.Aggs {
			v := refAgg(spec, grows, cfg)
			if spec.Name == "n" {
				n = v
			}
			vals = append(vals, v)
		}
		if c.HavingMinN > 0 && (n.IsNull() || n.AsInt() < c.HavingMinN) {
			continue
		}
		out = append(out, stream.Tuple{Ts: b, Values: vals})
	}
	return out
}

// refAgg computes one aggregate over a group's rows, two-pass.
func refAgg(spec stream.AggSpec, rows []refRow, cfg Config) stream.Value {
	if spec.Func == stream.AggCount && spec.Arg == nil {
		return stream.Int(int64(len(rows)))
	}
	// Non-NULL argument values in arrival order.
	var vals []float64
	for _, r := range rows {
		if !r.v.IsNull() {
			vals = append(vals, r.v.AsFloat())
		}
	}
	if spec.Distinct {
		seen := make(map[float64]bool)
		var uniq []float64
		for _, v := range vals {
			if !seen[v] {
				seen[v] = true
				uniq = append(uniq, v)
			}
		}
		sort.Float64s(uniq)
		vals = uniq
	}
	if len(vals) == 0 {
		if spec.Func == stream.AggCount {
			return stream.Int(0)
		}
		return stream.Null()
	}
	switch spec.Func {
	case stream.AggCount:
		return stream.Int(int64(len(vals)))
	case stream.AggSum:
		return stream.Float(refSum(vals))
	case stream.AggAvg:
		return stream.Float(refSum(vals) / float64(len(vals)))
	case stream.AggStdev:
		if cfg.RefStdev != nil {
			return stream.Float(cfg.RefStdev(vals))
		}
		return stream.Float(refStdev(vals))
	case stream.AggMin:
		m := vals[0]
		for _, v := range vals[1:] {
			if v < m {
				m = v
			}
		}
		return stream.Float(m)
	case stream.AggMax:
		m := vals[0]
		for _, v := range vals[1:] {
			if v > m {
				m = v
			}
		}
		return stream.Float(m)
	case stream.AggMedian, stream.AggPercentile:
		q := 0.5
		if spec.Func == stream.AggPercentile {
			q = spec.Param
		}
		return stream.Float(refQuantile(vals, q))
	}
	return stream.Null()
}

func refSum(vals []float64) float64 {
	var s float64
	for _, v := range vals {
		s += v
	}
	return s
}

// refStdev is the two-pass population standard deviation — the textbook
// definition, immune to cancellation because it subtracts the mean
// before squaring.
func refStdev(vals []float64) float64 {
	mean := refSum(vals) / float64(len(vals))
	var ss float64
	for _, v := range vals {
		d := v - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(vals)))
}

// refQuantile is the nearest-rank quantile over a copy of vals.
func refQuantile(vals []float64, q float64) float64 {
	s := append([]float64(nil), vals...)
	sort.Float64s(s)
	rank := int(math.Ceil(q * float64(len(s))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(s) {
		rank = len(s)
	}
	return s[rank-1]
}
