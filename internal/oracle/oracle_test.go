package oracle

import (
	"math"
	"strings"
	"testing"
)

// TestDifferential is the `make check` differential suite: every
// cross-check over its generated case family, zero divergence expected.
func TestDifferential(t *testing.T) {
	cfg := DefaultConfig()
	n, d := Run(cfg)
	if d != nil {
		t.Fatalf("differential suite diverged after %d cases:\n%v", n, d)
	}
	if n < 50 {
		t.Fatalf("suite ran %d cases, want at least 50", n)
	}
}

// legacyStdev is the catastrophically cancelling sum-of-squares formula
// the pane accumulator used before the moments fix: sqrt(E[x²] − E[x]²).
// At timestamp-scale magnitudes the subtraction wipes out the signal.
func legacyStdev(vals []float64) float64 {
	var s, ss float64
	for _, v := range vals {
		s += v
		ss += v * v
	}
	n := float64(len(vals))
	m := s / n
	v := ss/n - m*m
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v)
}

// TestInjectedBugCaught proves the harness detects a deliberately wrong
// aggregate: with the legacy stdev formula injected into the reference,
// the window check must report a divergence whose seed reproduces the
// identical minimized counterexample on a fresh run.
func TestInjectedBugCaught(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RefStdev = legacyStdev
	var caught *Divergence
	for i := 0; i < 3*cfg.WindowCases && caught == nil; i++ {
		caught = CheckWindowCase(GenWindowCase(cfg.Seed+int64(i)), cfg)
	}
	if caught == nil {
		t.Fatal("injected stdev bug escaped the window cross-checks")
	}
	if caught.Check != "window-vs-reference" {
		t.Fatalf("injected bug caught by %q, want window-vs-reference", caught.Check)
	}
	if !strings.Contains(caught.Case, "stdev") {
		t.Fatalf("minimized case lost the faulty aggregate:\n%s", caught.Case)
	}
	// Seed-reproducibility: regenerate the case from the reported seed and
	// get the identical minimized counterexample.
	again := CheckWindowCase(GenWindowCase(caught.Seed), cfg)
	if again == nil {
		t.Fatalf("seed %d did not reproduce the divergence", caught.Seed)
	}
	if again.Error() != caught.Error() {
		t.Fatalf("counterexample not reproducible from seed %d:\nfirst:\n%v\nagain:\n%v",
			caught.Seed, caught, again)
	}
}

// TestDivergenceReportsMinimizedCase asserts the minimizer actually
// shrinks: the injected-bug counterexample must be far smaller than the
// generated case it came from.
func TestDivergenceReportsMinimizedCase(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RefStdev = legacyStdev
	var caught *Divergence
	for i := 0; i < 3*cfg.WindowCases && caught == nil; i++ {
		caught = CheckWindowCase(GenWindowCase(cfg.Seed+int64(i)), cfg)
	}
	if caught == nil {
		t.Fatal("injected stdev bug escaped the window cross-checks")
	}
	full := GenWindowCase(caught.Seed)
	fullLines := strings.Count(full.String(), "\n")
	minLines := strings.Count(caught.Case, "\n")
	if minLines >= fullLines {
		t.Fatalf("minimizer did not shrink the case: %d lines vs original %d", minLines, fullLines)
	}
}
