package oracle

import (
	"fmt"
	"math/rand"
	"time"

	"esp/internal/core"
	"esp/internal/receptor"
	"esp/internal/stream"
)

// chaos-drop-commute: drop faults gate on each tuple's timestamp and
// consume one RNG draw per in-window tuple in trace order, so injecting
// them online (receptor.Faulty wrapping the replay) must be
// indistinguishable from thinning the recorded trace offline
// (receptor.ThinTrace) and replaying the survivors — byte-identical on
// every sink, tap, and Virtualize stream. This is the property that
// makes chaos runs analysable: a faulty run IS a clean run on a thinner
// trace.

// chaosFaultSeed derives receptor i's injector seed from the case seed.
func chaosFaultSeed(c *DeploymentCase, i int) int64 {
	return c.Seed*7919 + int64(i)
}

// genChaosFaults derives a drop-only schedule per receptor from the case
// seed: one or two windows each, random placement and probability. It
// depends only on (Seed, receptor count, Epochs), so trace minimization
// leaves the schedule intact.
func genChaosFaults(c *DeploymentCase) [][]receptor.Fault {
	r := rand.New(rand.NewSource(c.Seed ^ 0x5eed))
	span := time.Duration(c.Epochs) * c.Epoch
	out := make([][]receptor.Fault, len(c.IDs))
	for i := range c.IDs {
		for j, nf := 0, 1+r.Intn(2); j < nf; j++ {
			from := time.Duration(r.Int63n(int64(span)))
			width := time.Duration(r.Int63n(int64(span-from) + 1))
			out[i] = append(out[i], receptor.Fault{
				Kind:  receptor.FaultDrop,
				P:     0.2 + 0.6*r.Float64(),
				From:  epoch0.Add(from),
				Until: epoch0.Add(from + width),
			})
		}
	}
	return out
}

// runChaosOnline runs the case with each replay receptor wrapped in its
// fault injector.
func runChaosOnline(c DeploymentCase, faults [][]receptor.Fault) (*depOutput, error) {
	dep, err := c.build(false)
	if err != nil {
		return nil, err
	}
	for i := range dep.Receptors {
		dep.Receptors[i] = receptor.NewFaulty(dep.Receptors[i], chaosFaultSeed(&c, i), faults[i]...)
	}
	return c.runDep(dep, core.SeqScheduler{})
}

// runChaosThinned thins every trace offline with the same (seed,
// schedule) pairs and runs the clean deployment on the survivors.
func runChaosThinned(c DeploymentCase, faults [][]receptor.Fault, seedOf func(i int) int64) (*depOutput, error) {
	thin := c
	thin.Traces = make([][]stream.Tuple, len(c.Traces))
	for i := range c.Traces {
		tt, err := receptor.ThinTrace(c.Traces[i], seedOf(i), faults[i]...)
		if err != nil {
			return nil, err
		}
		thin.Traces[i] = tt
	}
	return thin.runWith(core.SeqScheduler{}, false)
}

// CheckChaosCase cross-checks online fault injection against offline
// trace thinning, byte-level on every observable stream.
func CheckChaosCase(c DeploymentCase) *Divergence {
	check := func(t DeploymentCase) *Divergence {
		fail := func(diff string) *Divergence {
			return &Divergence{Check: "chaos-drop-commute", Seed: t.Seed, Case: t.String(), Diff: diff}
		}
		faults := genChaosFaults(&t)
		online, err := runChaosOnline(t, faults)
		if err != nil {
			return fail(fmt.Sprintf("online error: %v", err))
		}
		thinned, err := runChaosThinned(t, faults, func(i int) int64 { return chaosFaultSeed(&t, i) })
		if err != nil {
			return fail(fmt.Sprintf("thinned error: %v", err))
		}
		if online.rendered != thinned.rendered {
			return fail(firstDiff(online.rendered, thinned.rendered))
		}
		return nil
	}
	if d := check(c); d != nil {
		return minimizeDeployment(c, d, check)
	}
	return nil
}
