package oracle

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"esp/internal/stream"
)

// epoch0 anchors every generated case at a fixed instant so runs are
// reproducible from the seed alone.
var epoch0 = time.Unix(0, 0).UTC()

// WindowEvent is one step of a window program: either a tuple delivery
// or an epoch punctuation.
type WindowEvent struct {
	Advance bool
	// At is the event's offset from the case origin — the punctuation
	// instant, or the tuple's timestamp (tuples may arrive out of order,
	// exercising the late-arrival drop rule).
	At time.Duration
	// Group and V populate the tuple's (g, v) columns; Null makes v NULL.
	Group string
	V     float64
	Null  bool
}

// WindowCase is one generated window-aggregation program over the fixed
// schema (g string, v float).
type WindowCase struct {
	Seed       int64
	Range      time.Duration // 0 means NOW (Range = Slide)
	Slide      time.Duration
	GroupBy    bool
	EmitEmpty  bool
	HavingMinN int64 // when > 0: HAVING n >= HavingMinN on the count agg
	Aggs       []stream.AggSpec
	Events     []WindowEvent
}

// GenWindowCase deterministically builds the case for a seed. Values are
// integer-valued floats drawn from one of two profiles per case — small
// (±100) or timestamp-scale (1e9 ± 100) — so every accumulator operation
// is exact in float64 and the pane-vs-naive comparison can demand
// byte-level equality; the large profile is what exposes catastrophic
// cancellation in a wrong stdev.
func GenWindowCase(seed int64) WindowCase {
	r := rand.New(rand.NewSource(seed))
	c := WindowCase{Seed: seed}

	c.Slide = []time.Duration{500 * time.Millisecond, time.Second, 2 * time.Second}[r.Intn(3)]
	switch r.Intn(5) {
	case 0:
		c.Range = 0 // NOW
	case 1:
		c.Range = c.Slide
	case 2:
		c.Range = 3 * c.Slide
	case 3:
		c.Range = 2*c.Slide + c.Slide/2 // non-multiple of slide
	case 4:
		c.Range = c.Slide / 2 // sub-slide: gaps between windows, late drops
	}
	c.GroupBy = r.Intn(2) == 0
	if !c.GroupBy && r.Intn(3) == 0 {
		c.EmitEmpty = true
	}

	c.Aggs = append(c.Aggs, stream.AggSpec{Name: "n", Func: stream.AggCount})
	if r.Intn(2) == 0 {
		c.HavingMinN = int64(1 + r.Intn(2))
	}
	col := func() stream.Expr { return stream.NewCol("v") }
	pool := []stream.AggSpec{
		{Name: "s", Func: stream.AggSum, Arg: col()},
		{Name: "a", Func: stream.AggAvg, Arg: col()},
		{Name: "sd", Func: stream.AggStdev, Arg: col()},
		{Name: "mn", Func: stream.AggMin, Arg: col()},
		{Name: "mx", Func: stream.AggMax, Arg: col()},
		{Name: "md", Func: stream.AggMedian, Arg: col()},
		{Name: "p", Func: stream.AggPercentile, Arg: col(), Param: []float64{0.25, 0.5, 0.9}[r.Intn(3)]},
		{Name: "dn", Func: stream.AggCount, Arg: col(), Distinct: true},
		{Name: "ds", Func: stream.AggSum, Arg: col(), Distinct: true},
		{Name: "dsd", Func: stream.AggStdev, Arg: col(), Distinct: true},
		{Name: "dmd", Func: stream.AggMedian, Arg: col(), Distinct: true},
	}
	for _, a := range pool {
		if r.Intn(2) == 0 {
			c.Aggs = append(c.Aggs, a)
		}
	}

	offset := 0.0
	if r.Intn(2) == 0 {
		offset = 1e9
	}
	// A narrow value domain forces duplicate values for the DISTINCT aggs.
	domain := []int{200, 8}[r.Intn(2)]

	horizon := 8 * c.Slide
	nAdv := 3 + r.Intn(5)
	advAt := make([]time.Duration, 0, nAdv)
	at := time.Duration(0)
	for i := 0; i < nAdv; i++ {
		at += time.Duration(r.Intn(int(horizon/time.Duration(nAdv)))) + time.Millisecond
		advAt = append(advAt, at)
	}
	groups := []string{"a", "b", "c"}
	nTup := r.Intn(40)
	tuples := make([]WindowEvent, 0, nTup)
	for i := 0; i < nTup; i++ {
		ev := WindowEvent{
			At:    time.Duration(r.Intn(int(horizon))),
			Group: groups[r.Intn(len(groups))],
			V:     offset + float64(r.Intn(domain)-domain/2),
		}
		if r.Intn(12) == 0 {
			ev.Null = true
		}
		tuples = append(tuples, ev)
	}
	// Interleave: each tuple is delivered just before a random advance,
	// so some arrive late relative to already-emitted boundaries.
	slot := make([][]WindowEvent, nAdv+1)
	for _, ev := range tuples {
		i := r.Intn(nAdv + 1)
		slot[i] = append(slot[i], ev)
	}
	for i, a := range advAt {
		c.Events = append(c.Events, slot[i]...)
		c.Events = append(c.Events, WindowEvent{Advance: true, At: a})
	}
	c.Events = append(c.Events, slot[nAdv]...)
	return c
}

// window builds the production operator for the case.
func (c WindowCase) window(naive bool) (*stream.WindowAgg, error) {
	w := &stream.WindowAgg{
		Aggs:      append([]stream.AggSpec(nil), c.Aggs...),
		Range:     c.Range,
		Slide:     c.Slide,
		EmitEmpty: c.EmitEmpty,
		Naive:     naive,
	}
	if c.GroupBy {
		w.GroupBy = []stream.NamedExpr{{Name: "g", Expr: stream.NewCol("g")}}
	}
	if c.HavingMinN > 0 {
		w.Having = stream.NewBinary(stream.OpGe, stream.NewCol("n"), stream.NewConst(stream.Int(c.HavingMinN)))
	}
	sch := stream.MustSchema(
		stream.Field{Name: "g", Kind: stream.KindString},
		stream.Field{Name: "v", Kind: stream.KindFloat},
	)
	if err := w.Open(sch); err != nil {
		return nil, err
	}
	return w, nil
}

// run drives one mode of the case and returns every emitted tuple (in
// emission order, Close included) plus the Dropped counter.
func (c WindowCase) run(naive bool) ([]stream.Tuple, int64, error) {
	w, err := c.window(naive)
	if err != nil {
		return nil, 0, err
	}
	var out []stream.Tuple
	for _, ev := range c.Events {
		var got []stream.Tuple
		if ev.Advance {
			got, err = w.Advance(epoch0.Add(ev.At))
		} else {
			v := stream.Float(ev.V)
			if ev.Null {
				v = stream.Null()
			}
			got, err = w.Process(stream.NewTuple(epoch0.Add(ev.At), stream.String(ev.Group), v))
		}
		if err != nil {
			return nil, 0, err
		}
		out = append(out, got...)
	}
	got, err := w.Close()
	if err != nil {
		return nil, 0, err
	}
	return append(out, got...), w.Dropped, nil
}

// String renders the case for divergence reports.
func (c WindowCase) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "seed=%d range=%v slide=%v groupBy=%v emitEmpty=%v havingMinN=%d\n",
		c.Seed, c.Range, c.Slide, c.GroupBy, c.EmitEmpty, c.HavingMinN)
	specs := make([]string, len(c.Aggs))
	for i, a := range c.Aggs {
		specs[i] = fmt.Sprintf("%s AS %s", a, a.Name)
	}
	fmt.Fprintf(&sb, "aggs: %s\nevents:\n", strings.Join(specs, ", "))
	for _, ev := range c.Events {
		if ev.Advance {
			fmt.Fprintf(&sb, "  +%v advance\n", ev.At)
			continue
		}
		if ev.Null {
			fmt.Fprintf(&sb, "  +%v tuple g=%s v=NULL\n", ev.At, ev.Group)
			continue
		}
		fmt.Fprintf(&sb, "  +%v tuple g=%s v=%v\n", ev.At, ev.Group, ev.V)
	}
	return sb.String()
}

// CheckWindowCase cross-checks one case three ways: pane-merge vs
// emitNaive byte-level, and the pane path against the two-pass reference
// within float tolerance. A non-nil result carries a minimized case.
func CheckWindowCase(c WindowCase, cfg Config) *Divergence {
	if d := checkPaneVsNaive(c); d != nil {
		return minimizeWindow(c, d, cfg, func(t WindowCase) *Divergence { return checkPaneVsNaive(t) })
	}
	if d := checkWindowVsRef(c, cfg); d != nil {
		return minimizeWindow(c, d, cfg, func(t WindowCase) *Divergence { return checkWindowVsRef(t, cfg) })
	}
	return nil
}

func checkPaneVsNaive(c WindowCase) *Divergence {
	pane, dp, errP := c.run(false)
	naive, dn, errN := c.run(true)
	if errP != nil || errN != nil {
		return &Divergence{Check: "pane-vs-naive", Seed: c.Seed, Case: c.String(),
			Diff: fmt.Sprintf("errors: pane=%v naive=%v", errP, errN)}
	}
	rp, rn := renderTuples(pane), renderTuples(naive)
	if rp != rn {
		return &Divergence{Check: "pane-vs-naive", Seed: c.Seed, Case: c.String(), Diff: firstDiff(rp, rn)}
	}
	if dp != dn {
		return &Divergence{Check: "pane-vs-naive", Seed: c.Seed, Case: c.String(),
			Diff: fmt.Sprintf("Dropped: pane=%d naive=%d", dp, dn)}
	}
	return nil
}

func checkWindowVsRef(c WindowCase, cfg Config) *Divergence {
	pane, dp, err := c.run(false)
	if err != nil {
		return &Divergence{Check: "window-vs-reference", Seed: c.Seed, Case: c.String(),
			Diff: fmt.Sprintf("error: %v", err)}
	}
	ref, dr := refWindow(c, cfg)
	if diff := compareToRef(pane, ref); diff != "" {
		return &Divergence{Check: "window-vs-reference", Seed: c.Seed, Case: c.String(), Diff: diff}
	}
	if dp != dr {
		return &Divergence{Check: "window-vs-reference", Seed: c.Seed, Case: c.String(),
			Diff: fmt.Sprintf("Dropped: window=%d reference=%d", dp, dr)}
	}
	return nil
}

// minimizeWindow greedily shrinks a failing case — dropping events, then
// aggregates — while the given check keeps failing, and returns the
// divergence of the smallest still-failing case.
func minimizeWindow(c WindowCase, orig *Divergence, cfg Config, check func(WindowCase) *Divergence) *Divergence {
	best := orig
	for changed := true; changed; {
		changed = false
		for i := 0; i < len(c.Events); i++ {
			t := c
			t.Events = append(append([]WindowEvent(nil), c.Events[:i]...), c.Events[i+1:]...)
			if d := check(t); d != nil {
				c, best, changed = t, d, true
				i--
			}
		}
		for i := 0; i < len(c.Aggs); i++ {
			if c.HavingMinN > 0 && c.Aggs[i].Name == "n" {
				continue // HAVING references it
			}
			t := c
			t.Aggs = append(append([]stream.AggSpec(nil), c.Aggs[:i]...), c.Aggs[i+1:]...)
			if d := check(t); d != nil {
				c, best, changed = t, d, true
				i--
			}
		}
	}
	return best
}
