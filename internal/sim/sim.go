// Package sim provides deterministic simulators for the physical devices
// the paper deployed: Alien RFID readers with EPC tags, wireless sensor
// motes (Intel Lab / Sonoma redwood), and X10 motion detectors.
//
// The paper's experiments ran on real hardware and real traces we do not
// have; these simulators are the documented substitution (see DESIGN.md).
// They reproduce the error characteristics the ESP pipeline exists to
// clean — dropped readings, antenna imbalance, cross-granule duplicate
// reads, fail-dirty drift, lossy multi-hop delivery, and spurious motion
// events — with rates taken from the paper, while keeping every run
// reproducible from a seed.
package sim

import (
	"math/rand"

	"esp/internal/stream"
)

// Schemas of the raw streams the simulated receptors produce. The ESP
// processor prepends receptor metadata (device ID, spatial granule) when
// it routes these streams into a pipeline.

// RFIDSchema is the raw RFID reader stream: one tuple per tag read per
// poll. checksum_ok is false for reads corrupted in the air protocol; the
// real Alien reader filters these "out of the box" (paper §4), which ESP
// models as a built-in Point stage.
var RFIDSchema = stream.MustSchema(
	stream.Field{Name: "tag_id", Kind: stream.KindString},
	stream.Field{Name: "checksum_ok", Kind: stream.KindBool},
)

// MoteSchemaFor builds the schema of a mote stream with the given sensor
// field names (e.g. temp, noise, voltage), each a float.
func MoteSchemaFor(sensors ...string) *stream.Schema {
	fields := []stream.Field{{Name: "mote_id", Kind: stream.KindString}}
	for _, s := range sensors {
		fields = append(fields, stream.Field{Name: s, Kind: stream.KindFloat})
	}
	return stream.MustSchema(fields...)
}

// X10Schema is the motion detector stream: ON events only, like real X10
// hardware.
var X10Schema = stream.MustSchema(
	stream.Field{Name: "detector_id", Kind: stream.KindString},
	stream.Field{Name: "value", Kind: stream.KindString},
)

// newRng derives a deterministic per-device generator from a scenario
// seed and the device ID, so adding a device never perturbs the readings
// of existing ones.
func newRng(seed int64, deviceID string) *rand.Rand {
	h := int64(1469598103934665603) // FNV-1a offset basis
	for _, b := range []byte(deviceID) {
		h ^= int64(b)
		h *= 1099511628211
	}
	return rand.New(rand.NewSource(seed ^ h))
}
