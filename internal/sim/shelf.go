package sim

import (
	"fmt"
	"time"

	"esp/internal/receptor"
)

// ShelfConfig parameterises the paper's §4 retail-shelf experiment
// (Figure 2): two shelves, each with one reader and ten statically placed
// tags (five at 3 ft, five at 6 ft), plus five tags at 9 ft relocated
// between the shelves every 40 seconds, polled at 5 Hz for ~700 s.
type ShelfConfig struct {
	Seed int64
	// Shelves is the number of shelves/readers (the paper uses 2).
	Shelves int
	// NearTags and FarTags are static tags per shelf at 3 ft and 6 ft.
	NearTags, FarTags int
	// RelocatingTags move between shelves every RelocateEvery.
	RelocatingTags int
	RelocateEvery  time.Duration
	// PollPeriod is the reader sample period (200 ms = 5 Hz).
	PollPeriod time.Duration

	// Detection probabilities per poll at the three distances, before
	// antenna efficiency is applied. RFID readers typically capture only
	// 60–70 % of tags in view (paper §1).
	DetectNear, DetectFar, DetectReloc float64
	// AntennaEff scales each reader's detection rates — the paper's
	// antenna-port discrepancy that left shelf 0 over-counted after
	// Smooth (§4.1). Length must equal Shelves.
	AntennaEff []float64
	// CrossReloc is each reader's per-poll probability factor for reading
	// the *other* shelf's relocating tags (they sit between the shelves,
	// in view of both readers). It is per-reader and asymmetric: the
	// paper found that "the reader for shelf 0 read the tags on shelf 1
	// more than shelf 1's reader did" (§4.3.1). CrossStatic scales
	// cross-shelf reads of static tags.
	CrossReloc  []float64
	CrossStatic float64
	// ChecksumFailP corrupts a fraction of reads (filtered by Point).
	ChecksumFailP float64
}

// DefaultShelfConfig returns the configuration calibrated to reproduce
// the paper's Figure 3 numbers (raw avg rel err ≈ 0.41, Smooth ≈ 0.24,
// Smooth+Arbitrate ≈ 0.04).
func DefaultShelfConfig() ShelfConfig {
	return ShelfConfig{
		Seed:           1,
		Shelves:        2,
		NearTags:       5,
		FarTags:        5,
		RelocatingTags: 5,
		RelocateEvery:  40 * time.Second,
		PollPeriod:     200 * time.Millisecond,
		DetectNear:     0.88,
		DetectFar:      0.65,
		DetectReloc:    0.35,
		AntennaEff:     []float64{1.0, 0.62},
		CrossReloc:     []float64{0.06, 0.005},
		CrossStatic:    0.01,
		ChecksumFailP:  0.005,
	}
}

// ShelfScenario wires the shelf world: readers, proximity groups (one
// reader per shelf, so one reader per group), and ground truth.
type ShelfScenario struct {
	Config  ShelfConfig
	Readers []*RFIDReader
	Groups  *receptor.Groups
}

// NewShelfScenario builds the scenario.
func NewShelfScenario(cfg ShelfConfig) (*ShelfScenario, error) {
	if cfg.Shelves < 1 {
		return nil, fmt.Errorf("sim: shelf scenario needs at least one shelf")
	}
	if len(cfg.AntennaEff) != cfg.Shelves {
		return nil, fmt.Errorf("sim: AntennaEff has %d entries for %d shelves", len(cfg.AntennaEff), cfg.Shelves)
	}
	if len(cfg.CrossReloc) != cfg.Shelves {
		return nil, fmt.Errorf("sim: CrossReloc has %d entries for %d shelves", len(cfg.CrossReloc), cfg.Shelves)
	}
	if cfg.RelocateEvery <= 0 {
		return nil, fmt.Errorf("sim: RelocateEvery must be positive")
	}
	s := &ShelfScenario{Config: cfg, Groups: receptor.NewGroups()}
	for i := 0; i < cfg.Shelves; i++ {
		shelf := i
		reader := NewRFIDReader(cfg.Seed, fmt.Sprintf("reader%d", shelf), func(now time.Time) []TagInView {
			return s.view(shelf, now)
		})
		reader.ChecksumFailP = cfg.ChecksumFailP
		s.Readers = append(s.Readers, reader)
		s.Groups.MustAdd(receptor.Group{
			Name:    fmt.Sprintf("shelf%d", shelf),
			Type:    receptor.TypeRFID,
			Members: []string{reader.ID()},
		})
	}
	return s, nil
}

// StaticTagID names static tag t of a shelf.
func StaticTagID(shelf, t int) string { return fmt.Sprintf("s%d-t%d", shelf, t) }

// RelocTagID names relocating tag t.
func RelocTagID(t int) string { return fmt.Sprintf("reloc-t%d", t) }

// RelocHome reports which shelf the relocating tags sit on at now: they
// start on shelf 0 and switch every RelocateEvery.
func (s *ShelfScenario) RelocHome(now time.Time) int {
	period := int64(now.Sub(time.Unix(0, 0)) / s.Config.RelocateEvery)
	return int(period % int64(s.Config.Shelves))
}

// TrueCount is the ground-truth number of items on a shelf at now —
// what the paper's Figure 3(a) plots.
func (s *ShelfScenario) TrueCount(shelf int, now time.Time) int {
	n := s.Config.NearTags + s.Config.FarTags
	if s.RelocHome(now) == shelf {
		n += s.Config.RelocatingTags
	}
	return n
}

// view lists the tags reader `shelf` can see at now with detection
// probabilities.
func (s *ShelfScenario) view(shelf int, now time.Time) []TagInView {
	cfg := s.Config
	eff := cfg.AntennaEff[shelf]
	var tags []TagInView
	for sh := 0; sh < cfg.Shelves; sh++ {
		factor := eff
		if sh != shelf {
			factor = eff * cfg.CrossStatic
		}
		for t := 0; t < cfg.NearTags; t++ {
			tags = append(tags, TagInView{ID: StaticTagID(sh, t), Detect: factor * cfg.DetectNear})
		}
		for t := 0; t < cfg.FarTags; t++ {
			tags = append(tags, TagInView{ID: StaticTagID(sh, cfg.NearTags+t), Detect: factor * cfg.DetectFar})
		}
	}
	home := s.RelocHome(now)
	relocDetect := eff * cfg.DetectReloc
	if home != shelf {
		relocDetect = cfg.CrossReloc[shelf]
	}
	for t := 0; t < cfg.RelocatingTags; t++ {
		tags = append(tags, TagInView{ID: RelocTagID(t), Detect: relocDetect})
	}
	return tags
}
