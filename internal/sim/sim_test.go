package sim

import (
	"testing"
	"time"

	"esp/internal/receptor"
	"esp/internal/stream"
)

func at(sec float64) time.Time {
	return time.Unix(0, int64(sec*float64(time.Second))).UTC()
}

func TestRFIDReaderDetectionRate(t *testing.T) {
	r := NewRFIDReader(1, "r0", func(time.Time) []TagInView {
		return []TagInView{{ID: "A", Detect: 0.7}}
	})
	hits := 0
	const polls = 5000
	for i := 0; i < polls; i++ {
		if len(r.Poll(at(float64(i)*0.2))) > 0 {
			hits++
		}
	}
	rate := float64(hits) / polls
	if rate < 0.67 || rate > 0.73 {
		t.Errorf("detection rate = %v, want ~0.7", rate)
	}
}

func TestRFIDReaderChecksumAndGhost(t *testing.T) {
	r := NewRFIDReader(1, "r0", func(time.Time) []TagInView {
		return []TagInView{{ID: "A", Detect: 1.0}}
	})
	r.ChecksumFailP = 0.1
	r.GhostP = 0.05
	var reads, corrupt, ghosts int
	for i := 0; i < 10000; i++ {
		for _, tup := range r.Poll(at(float64(i) * 0.2)) {
			if tup.Values[0].AsString() == r.GhostID {
				ghosts++
				continue
			}
			reads++
			if !tup.Values[1].AsBool() {
				corrupt++
			}
		}
	}
	if frac := float64(corrupt) / float64(reads); frac < 0.07 || frac > 0.13 {
		t.Errorf("checksum failure rate = %v, want ~0.1", frac)
	}
	if frac := float64(ghosts) / 10000; frac < 0.03 || frac > 0.07 {
		t.Errorf("ghost rate = %v, want ~0.05", frac)
	}
}

func TestRFIDReaderDeterminism(t *testing.T) {
	mk := func() []stream.Tuple {
		r := NewRFIDReader(42, "r0", func(time.Time) []TagInView {
			return []TagInView{{ID: "A", Detect: 0.5}, {ID: "B", Detect: 0.5}}
		})
		var all []stream.Tuple
		for i := 0; i < 100; i++ {
			all = append(all, r.Poll(at(float64(i)*0.2))...)
		}
		return all
	}
	a, b := mk(), mk()
	if len(a) != len(b) {
		t.Fatalf("non-deterministic: %d vs %d tuples", len(a), len(b))
	}
	for i := range a {
		if a[i].Values[0] != b[i].Values[0] {
			t.Fatalf("tuple %d differs", i)
		}
	}
}

func TestMoteDeliveryAndValues(t *testing.T) {
	m := NewMote(3, "m1", 0.4, SensorModel{
		Name:     "temp",
		Truth:    func(time.Time) float64 { return 20 },
		Bias:     1.0,
		NoiseStd: 0.1,
	})
	delivered := 0
	var sum float64
	const epochs = 5000
	for i := 0; i < epochs; i++ {
		out := m.Poll(at(float64(i) * 300))
		if len(out) == 0 {
			continue
		}
		delivered++
		if out[0].Values[0] != stream.String("m1") {
			t.Fatalf("mote_id = %v", out[0].Values[0])
		}
		sum += out[0].Values[1].AsFloat()
	}
	yield := float64(delivered) / epochs
	if yield < 0.37 || yield > 0.43 {
		t.Errorf("epoch yield = %v, want ~0.40", yield)
	}
	mean := sum / float64(delivered)
	if mean < 20.9 || mean > 21.1 {
		t.Errorf("mean reading = %v, want ~21 (truth 20 + bias 1)", mean)
	}
}

func TestMoteFailDirtyRamp(t *testing.T) {
	m := NewMote(3, "m1", 1.0, SensorModel{
		Name:  "temp",
		Truth: func(time.Time) float64 { return 22 },
	})
	m.Fail = &FailDirty{Sensor: "temp", Start: at(3600), RampPerHour: 3}
	before := m.Poll(at(0))[0].Values[1].AsFloat()
	if before != 22 {
		t.Errorf("pre-failure reading = %v", before)
	}
	atFail := m.Poll(at(3600))[0].Values[1].AsFloat()
	tenHoursIn := m.Poll(at(3600 + 10*3600))[0].Values[1].AsFloat()
	if got := tenHoursIn - atFail; got < 29.9 || got > 30.1 {
		t.Errorf("ramp after 10h = %v, want 30", got)
	}
	// The failed sensor ignores the physical world entirely.
	if tenHoursIn < 50 {
		t.Errorf("fail-dirty mote still near room temperature: %v", tenHoursIn)
	}
}

func TestMoteTruthLookup(t *testing.T) {
	m := NewMote(3, "m1", 1.0, SensorModel{Name: "temp", Truth: func(time.Time) float64 { return 17 }})
	if v, ok := m.Truth("temp", at(0)); !ok || v != 17 {
		t.Errorf("Truth(temp) = %v, %v", v, ok)
	}
	if _, ok := m.Truth("humidity", at(0)); ok {
		t.Error("Truth of unknown sensor should miss")
	}
}

func TestX10DetectorRates(t *testing.T) {
	present := func(now time.Time) bool { return now.Unix()%120 < 60 }
	d := NewX10Detector(5, "x1", present)
	d.DetectP = 0.4
	d.FalseP = 0.02
	var onPresent, onAbsent, nPresent, nAbsent int
	for i := 0; i < 20000; i++ {
		now := at(float64(i))
		fired := len(d.Poll(now)) > 0
		if present(now) {
			nPresent++
			if fired {
				onPresent++
			}
		} else {
			nAbsent++
			if fired {
				onAbsent++
			}
		}
	}
	if r := float64(onPresent) / float64(nPresent); r < 0.37 || r > 0.43 {
		t.Errorf("detect rate = %v, want ~0.4", r)
	}
	if r := float64(onAbsent) / float64(nAbsent); r < 0.01 || r > 0.03 {
		t.Errorf("false rate = %v, want ~0.02", r)
	}
}

func TestLossModelStationaryYield(t *testing.T) {
	l := LossModel{PGood: 0.54, PBad: 0, GoodToBad: 0.0141, BadToGood: 0.04}
	want := l.StationaryYield()
	if want < 0.38 || want > 0.42 {
		t.Fatalf("stationary yield = %v, want ~0.40", want)
	}
	// Empirically: a long run's delivery fraction approaches it.
	m := NewMote(3, "m", 0, SensorModel{Name: "temp", Truth: func(time.Time) float64 { return 20 }})
	m.Loss = &l
	delivered := 0
	const epochs = 60000
	for i := 0; i < epochs; i++ {
		if len(m.Poll(at(float64(i)*300))) > 0 {
			delivered++
		}
	}
	got := float64(delivered) / epochs
	if got < want-0.03 || got > want+0.03 {
		t.Errorf("empirical yield = %v, stationary = %v", got, want)
	}
}

func TestLossModelBursty(t *testing.T) {
	// Losses must cluster: the number of delivery-state runs should be
	// far below what i.i.d. loss at the same rate would produce.
	l := LossModel{PGood: 0.9, PBad: 0, GoodToBad: 0.01, BadToGood: 0.02}
	m := NewMote(3, "m", 0, SensorModel{Name: "temp", Truth: func(time.Time) float64 { return 20 }})
	m.Loss = &l
	const epochs = 20000
	var outcomes []bool
	for i := 0; i < epochs; i++ {
		outcomes = append(outcomes, len(m.Poll(at(float64(i)*300))) > 0)
	}
	// Longest loss run should span many epochs (bad bursts ~50 epochs).
	longest, cur := 0, 0
	for _, ok := range outcomes {
		if ok {
			cur = 0
			continue
		}
		cur++
		if cur > longest {
			longest = cur
		}
	}
	if longest < 20 {
		t.Errorf("longest outage = %d epochs; loss is not bursty", longest)
	}
}

func TestShelfScenarioGroundTruth(t *testing.T) {
	s, err := NewShelfScenario(DefaultShelfConfig())
	if err != nil {
		t.Fatal(err)
	}
	// t=0: relocating tags on shelf 0.
	if got := s.TrueCount(0, at(0)); got != 15 {
		t.Errorf("TrueCount(0, t=0) = %d, want 15", got)
	}
	if got := s.TrueCount(1, at(0)); got != 10 {
		t.Errorf("TrueCount(1, t=0) = %d, want 10", got)
	}
	// After 40s they switch.
	if got := s.TrueCount(0, at(41)); got != 10 {
		t.Errorf("TrueCount(0, t=41) = %d, want 10", got)
	}
	if got := s.TrueCount(1, at(41)); got != 15 {
		t.Errorf("TrueCount(1, t=41) = %d, want 15", got)
	}
	// And back.
	if got := s.TrueCount(0, at(81)); got != 15 {
		t.Errorf("TrueCount(0, t=81) = %d, want 15", got)
	}
	if len(s.Readers) != 2 || len(s.Groups.Names()) != 2 {
		t.Errorf("readers = %d, groups = %v", len(s.Readers), s.Groups.Names())
	}
}

func TestShelfScenarioAntennaImbalance(t *testing.T) {
	s, err := NewShelfScenario(DefaultShelfConfig())
	if err != nil {
		t.Fatal(err)
	}
	counts := [2]int{}
	for i := 0; i < 5000; i++ {
		now := at(float64(i) * 0.2)
		for r := 0; r < 2; r++ {
			counts[r] += len(s.Readers[r].Poll(now))
		}
	}
	// Antenna 0 must read substantially more than antenna 1.
	if counts[0] <= counts[1] {
		t.Errorf("antenna imbalance missing: reader0=%d reader1=%d", counts[0], counts[1])
	}
	ratio := float64(counts[1]) / float64(counts[0])
	if ratio < 0.4 || ratio > 0.85 {
		t.Errorf("reader1/reader0 read ratio = %v, want imbalanced but overlapping", ratio)
	}
}

func TestShelfScenarioConfigErrors(t *testing.T) {
	cfg := DefaultShelfConfig()
	cfg.AntennaEff = []float64{1.0}
	if _, err := NewShelfScenario(cfg); err == nil {
		t.Error("mismatched AntennaEff: want error")
	}
	cfg = DefaultShelfConfig()
	cfg.Shelves = 0
	if _, err := NewShelfScenario(cfg); err == nil {
		t.Error("zero shelves: want error")
	}
	cfg = DefaultShelfConfig()
	cfg.RelocateEvery = 0
	if _, err := NewShelfScenario(cfg); err == nil {
		t.Error("zero RelocateEvery: want error")
	}
}

func TestRedwoodScenarioGroups(t *testing.T) {
	s, err := NewRedwoodScenario(DefaultRedwoodConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Motes) != 33 {
		t.Fatalf("motes = %d", len(s.Motes))
	}
	names := s.Groups.Names()
	if len(names) != 16 {
		t.Errorf("groups = %d (%v), want 16 (last absorbs the odd mote)", len(names), names)
	}
	total := 0
	for _, n := range names {
		g, _ := s.Groups.Group(n)
		if g.Type != receptor.TypeMote {
			t.Errorf("group %s type = %v", n, g.Type)
		}
		total += len(g.Members)
	}
	if total != 33 {
		t.Errorf("group membership covers %d motes, want 33", total)
	}
	// Last group has 3 members (32,33rd pair plus leftover).
	last, _ := s.Groups.Group("height15")
	if len(last.Members) != 3 {
		t.Errorf("last group = %v, want 3 members", last.Members)
	}
}

func TestRedwoodDiurnalTruth(t *testing.T) {
	cfg := DefaultRedwoodConfig()
	s, err := NewRedwoodScenario(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := s.Motes[0]
	noon, _ := m.Truth("temp", at(6*3600))      // sin peak at t=6h
	midnight, _ := m.Truth("temp", at(18*3600)) // sin trough at t=18h
	if noon-midnight < 10 {
		t.Errorf("diurnal swing = %v, want ~2*amp", noon-midnight)
	}
	// Height gradient: top mote warmer than bottom.
	top, _ := s.Motes[32].Truth("temp", at(0))
	bottom, _ := s.Motes[0].Truth("temp", at(0))
	if top <= bottom {
		t.Errorf("height gradient missing: top=%v bottom=%v", top, bottom)
	}
}

func TestOutlierScenario(t *testing.T) {
	s, err := NewOutlierScenario(DefaultOutlierConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Motes) != 3 {
		t.Fatalf("motes = %d", len(s.Motes))
	}
	if s.Motes[0].Fail == nil || s.Motes[1].Fail != nil || s.Motes[2].Fail != nil {
		t.Error("exactly mote1 should fail dirty")
	}
	// After two days the failed mote reads above 100C.
	twoDays := at(2 * 24 * 3600)
	vals := s.Motes[0].Sample(twoDays)
	if got := vals[1].AsFloat(); got < 100 {
		t.Errorf("failed mote at 2 days = %v, want > 100", got)
	}
	// Healthy motes stay near room temperature.
	vals = s.Motes[1].Sample(twoDays)
	if got := vals[1].AsFloat(); got < 15 || got > 30 {
		t.Errorf("healthy mote = %v", got)
	}
}

func TestHomeScenarioPresenceAndDevices(t *testing.T) {
	s, err := NewHomeScenario(DefaultHomeConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !s.Present(at(10)) || s.Present(at(70)) || !s.Present(at(130)) {
		t.Error("presence square wave wrong")
	}
	if len(s.Readers) != 2 || len(s.Motes) != 3 || len(s.Detectors) != 3 {
		t.Errorf("devices = %d/%d/%d", len(s.Readers), len(s.Motes), len(s.Detectors))
	}
	want := []string{"office-motion", "office-rfid", "office-sound"}
	got := s.Groups.Names()
	if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Errorf("groups = %v", got)
	}
}

func TestHomeScenarioSoundSeparation(t *testing.T) {
	s, err := NewHomeScenario(DefaultHomeConfig())
	if err != nil {
		t.Fatal(err)
	}
	m := s.Motes[0]
	present, _ := m.Truth("noise", at(10))
	absent, _ := m.Truth("noise", at(70))
	if present < 560 {
		t.Errorf("speech noise = %v, want well above 525 threshold", present)
	}
	if absent >= 525 {
		t.Errorf("quiet noise = %v, want below 525 threshold", absent)
	}
}

func TestHomeScenarioBadgeOnlyWhenPresent(t *testing.T) {
	s, err := NewHomeScenario(DefaultHomeConfig())
	if err != nil {
		t.Fatal(err)
	}
	// During an absent phase the readers may only report the ghost tag.
	for i := 0; i < 60; i++ {
		now := at(60 + float64(i))
		for _, r := range s.Readers {
			for _, tup := range r.Poll(now) {
				if tup.Values[0].AsString() == BadgeTagID {
					t.Fatalf("badge read while absent at %v", now)
				}
			}
		}
	}
}
