package sim

import (
	"testing"
	"time"
)

func TestRFIDInterferenceScalesDetection(t *testing.T) {
	mk := func(interf func(time.Time) float64) int {
		r := NewRFIDReader(9, "r0", func(time.Time) []TagInView {
			return []TagInView{{ID: "A", Detect: 0.8}}
		})
		r.Interference = interf
		hits := 0
		for i := 0; i < 4000; i++ {
			hits += len(r.Poll(at(float64(i) * 0.2)))
		}
		return hits
	}
	clean := mk(nil)
	halved := mk(func(time.Time) float64 { return 0.5 })
	if float64(halved) > 0.6*float64(clean) {
		t.Errorf("interference did not reduce reads: %d vs %d", halved, clean)
	}
	// Clamping: out-of-range factors behave as 0 and 1.
	dead := mk(func(time.Time) float64 { return -2 })
	if dead != 0 {
		t.Errorf("negative interference read %d tags, want 0", dead)
	}
	boosted := mk(func(time.Time) float64 { return 9 })
	if float64(boosted) < 0.9*float64(clean) {
		t.Errorf("clamped interference = %d, clean = %d", boosted, clean)
	}
}

func TestRFIDInterferenceTimeVarying(t *testing.T) {
	// A metal cart parks in front of the reader for the second half of
	// the run: reads must drop substantially during that period.
	r := NewRFIDReader(9, "r0", func(time.Time) []TagInView {
		return []TagInView{{ID: "A", Detect: 0.8}}
	})
	cartArrives := at(400)
	r.Interference = func(now time.Time) float64 {
		if now.Before(cartArrives) {
			return 1
		}
		return 0.2
	}
	var before, after int
	for i := 0; i < 4000; i++ {
		now := at(float64(i) * 0.2)
		n := len(r.Poll(now))
		if now.Before(cartArrives) {
			before += n
		} else {
			after += n
		}
	}
	if float64(after) > 0.45*float64(before) {
		t.Errorf("cart period reads %d vs %d before; want a sharp drop", after, before)
	}
}
