package sim

import (
	"fmt"
	"math"
	"time"

	"esp/internal/receptor"
)

// RedwoodConfig parameterises the §5.2 environmental-monitoring scenario:
// 33 motes along a redwood trunk sensing temperature every 5 minutes over
// a lossy multi-hop network (40 % epoch yield), grouped into 2-node
// proximity groups by height.
type RedwoodConfig struct {
	Seed  int64
	Motes int
	// GroupSize is the proximity-group size (2 in the paper; swept by the
	// spatial-granule experiment).
	GroupSize int
	// Epoch is the sensing interval (5 minutes).
	Epoch time.Duration
	// DeliveryP is the per-epoch delivery probability (0.40 in the trace).
	// Ignored when Loss is set.
	DeliveryP float64
	// Loss, if non-nil, uses bursty Markov loss instead of DeliveryP —
	// the realistic multi-hop failure mode (see LossModel).
	Loss *LossModel
	// BaseTemp, DiurnalAmp and HeightStep shape the micro-climate:
	// T(h, t) = BaseTemp + HeightStep·h + DiurnalAmp·sin(2πt/day).
	BaseTemp, DiurnalAmp, HeightStep float64
	// NoiseStd and BiasStd model per-reading noise and fixed per-mote
	// calibration offsets.
	NoiseStd, BiasStd float64
	// FailDirty, if positive, makes that many motes fail dirty at
	// FailStart with FailRampPerHour drift (the raw Sonoma trace had 8 of
	// 33; they were removed by hand before the paper's experiment).
	FailDirty       int
	FailStart       time.Duration // offset from scenario start
	FailRampPerHour float64
}

// DefaultRedwoodConfig matches the paper's trace parameters.
func DefaultRedwoodConfig() RedwoodConfig {
	return RedwoodConfig{
		Seed:      7,
		Motes:     33,
		GroupSize: 2,
		Epoch:     5 * time.Minute,
		DeliveryP: 0.40,
		// Bursty loss with a stationary yield of 0.40: links spend 26 %
		// of epochs in ~2-hour total outages and deliver 54 % of samples
		// otherwise.
		Loss: &LossModel{
			PGood: 0.54, PBad: 0,
			GoodToBad: 0.0141, BadToGood: 0.04,
		},
		BaseTemp:   12,
		DiurnalAmp: 6,
		HeightStep: 0.4,
		NoiseStd:   0.15,
		BiasStd:    0.45,
	}
}

// RedwoodScenario wires motes and proximity groups for the redwood tree.
type RedwoodScenario struct {
	Config RedwoodConfig
	Motes  []*Mote
	Groups *receptor.Groups
}

// MoteID names redwood mote i.
func MoteID(i int) string { return fmt.Sprintf("mote%02d", i) }

// NewRedwoodScenario builds the scenario. Motes at adjacent heights are
// grouped into non-overlapping proximity groups of GroupSize (a trailing
// smaller group absorbs the remainder).
func NewRedwoodScenario(cfg RedwoodConfig) (*RedwoodScenario, error) {
	if cfg.Motes < 1 {
		return nil, fmt.Errorf("sim: redwood scenario needs motes")
	}
	if cfg.GroupSize < 1 {
		return nil, fmt.Errorf("sim: GroupSize must be at least 1")
	}
	if cfg.Epoch <= 0 {
		return nil, fmt.Errorf("sim: Epoch must be positive")
	}
	s := &RedwoodScenario{Config: cfg, Groups: receptor.NewGroups()}
	day := float64(24 * time.Hour)
	for i := 0; i < cfg.Motes; i++ {
		height := i
		truth := func(now time.Time) float64 {
			t := float64(now.UnixNano())
			return cfg.BaseTemp + cfg.HeightStep*float64(height) +
				cfg.DiurnalAmp*math.Sin(2*math.Pi*t/day)
		}
		// Deterministic per-mote bias.
		bias := cfg.BiasStd * newRng(cfg.Seed, MoteID(i)+"-bias").NormFloat64()
		m := NewMote(cfg.Seed, MoteID(i), cfg.DeliveryP, SensorModel{
			Name:     "temp",
			Truth:    truth,
			Bias:     bias,
			NoiseStd: cfg.NoiseStd,
		})
		m.Loss = cfg.Loss
		if i < cfg.FailDirty {
			m.Fail = &FailDirty{
				Sensor:      "temp",
				Start:       time.Unix(0, 0).Add(cfg.FailStart),
				RampPerHour: cfg.FailRampPerHour,
			}
		}
		s.Motes = append(s.Motes, m)
	}
	for g := 0; g*cfg.GroupSize < cfg.Motes; g++ {
		lo := g * cfg.GroupSize
		hi := lo + cfg.GroupSize
		if hi > cfg.Motes {
			hi = cfg.Motes
		}
		// Absorb a dangling single mote into the previous group.
		if hi-lo == 1 && g > 0 && cfg.GroupSize > 1 {
			prev, _ := s.Groups.Group(fmt.Sprintf("height%02d", g-1))
			members := append(append([]string(nil), prev.Members...), MoteID(lo))
			s.Groups = rebuildGroups(s.Groups, prev.Name, members)
			break
		}
		var members []string
		for i := lo; i < hi; i++ {
			members = append(members, MoteID(i))
		}
		s.Groups.MustAdd(receptor.Group{
			Name:    fmt.Sprintf("height%02d", g),
			Type:    receptor.TypeMote,
			Members: members,
		})
	}
	return s, nil
}

// rebuildGroups replaces one group's member list (Groups has no update
// method by design — deployments are static once started).
func rebuildGroups(old *receptor.Groups, name string, members []string) *receptor.Groups {
	fresh := receptor.NewGroups()
	for _, n := range old.Names() {
		g, _ := old.Group(n)
		if n == name {
			fresh.MustAdd(receptor.Group{Name: n, Type: g.Type, Members: members})
		} else {
			fresh.MustAdd(*g)
		}
	}
	return fresh
}

// OutlierConfig parameterises the §5.1 fail-dirty outlier experiment:
// three motes in one room of the Intel Research Lab, one of which fails
// dirty and ramps past 100 °C over the 2-day window of Figure 7.
type OutlierConfig struct {
	Seed      int64
	Epoch     time.Duration
	DeliveryP float64
	// RoomTemp and DiurnalAmp shape the lab's true temperature.
	RoomTemp, DiurnalAmp float64
	NoiseStd             float64
	// FailStart/FailRampPerHour control the fail-dirty mote (mote 1).
	FailStart       time.Duration
	FailRampPerHour float64
}

// DefaultOutlierConfig matches Figure 7: failure begins around day 0.4
// and the reading passes 100 °C before day 2.
func DefaultOutlierConfig() OutlierConfig {
	return OutlierConfig{
		Seed:            11,
		Epoch:           5 * time.Minute,
		DeliveryP:       0.9,
		RoomTemp:        22,
		DiurnalAmp:      2.5,
		NoiseStd:        0.2,
		FailStart:       10 * time.Hour,
		FailRampPerHour: 3.0,
	}
}

// OutlierScenario wires the three-mote room.
type OutlierScenario struct {
	Config OutlierConfig
	Motes  []*Mote
	Groups *receptor.Groups
}

// NewOutlierScenario builds the scenario; mote1 fails dirty.
func NewOutlierScenario(cfg OutlierConfig) (*OutlierScenario, error) {
	if cfg.Epoch <= 0 {
		return nil, fmt.Errorf("sim: Epoch must be positive")
	}
	s := &OutlierScenario{Config: cfg, Groups: receptor.NewGroups()}
	day := float64(24 * time.Hour)
	truth := func(now time.Time) float64 {
		t := float64(now.UnixNano())
		return cfg.RoomTemp + cfg.DiurnalAmp*math.Sin(2*math.Pi*t/day)
	}
	var members []string
	for i := 1; i <= 3; i++ {
		id := fmt.Sprintf("mote%d", i)
		m := NewMote(cfg.Seed, id, cfg.DeliveryP, SensorModel{
			Name:     "temp",
			Truth:    truth,
			NoiseStd: cfg.NoiseStd,
		})
		if i == 1 {
			m.Fail = &FailDirty{
				Sensor:      "temp",
				Start:       time.Unix(0, 0).Add(cfg.FailStart),
				RampPerHour: cfg.FailRampPerHour,
			}
		}
		s.Motes = append(s.Motes, m)
		members = append(members, id)
	}
	s.Groups.MustAdd(receptor.Group{Name: "lab-room", Type: receptor.TypeMote, Members: members})
	return s, nil
}

// Truth returns the room's true temperature at now.
func (s *OutlierScenario) Truth(now time.Time) float64 {
	v, _ := s.Motes[1].Truth("temp", now) // any healthy mote's truth
	return v
}
