package sim

import (
	"math/rand"
	"time"

	"esp/internal/receptor"
	"esp/internal/stream"
)

// X10Detector simulates an X10 motion detector: a stream of "ON" events
// with limited sensing — it frequently fails to report motion and
// sometimes reports motion when there is none (paper §6, Figure 9(d)).
type X10Detector struct {
	id  string
	rng *rand.Rand
	// Present reports the ground truth: is someone moving in the room?
	Present func(now time.Time) bool
	// DetectP is the per-epoch probability of an ON event given presence.
	DetectP float64
	// FalseP is the per-epoch probability of a spurious ON event.
	FalseP float64
}

// NewX10Detector builds a detector with a deterministic per-device RNG.
func NewX10Detector(seed int64, id string, present func(time.Time) bool) *X10Detector {
	return &X10Detector{id: id, rng: newRng(seed, id), Present: present}
}

// ID implements receptor.Receptor.
func (d *X10Detector) ID() string { return d.id }

// Type implements receptor.Receptor.
func (d *X10Detector) Type() receptor.Type { return receptor.TypeMotion }

// Schema implements receptor.Receptor.
func (d *X10Detector) Schema() *stream.Schema { return X10Schema }

// Poll implements receptor.Receptor.
func (d *X10Detector) Poll(now time.Time) []stream.Tuple {
	p := d.FalseP
	if d.Present(now) {
		p = d.DetectP
	}
	if d.rng.Float64() >= p {
		return nil
	}
	return []stream.Tuple{stream.NewTuple(now, stream.String(d.id), stream.String("ON"))}
}
