package sim

import "esp/internal/receptor"

// Receptors flattens the scenario's devices into the deployment order
// used by every experiment: readers, then motes, then detectors. The
// chaos harness relies on this ordering to wrap individual devices in
// fault injectors by index.
func (s *HomeScenario) Receptors() []receptor.Receptor {
	var recs []receptor.Receptor
	for _, r := range s.Readers {
		recs = append(recs, r)
	}
	for _, m := range s.Motes {
		recs = append(recs, m)
	}
	for _, d := range s.Detectors {
		recs = append(recs, d)
	}
	return recs
}

// Receptors returns the shelf readers in scenario order.
func (s *ShelfScenario) Receptors() []receptor.Receptor {
	recs := make([]receptor.Receptor, len(s.Readers))
	for i, r := range s.Readers {
		recs[i] = r
	}
	return recs
}

// Receptors returns the lab motes in scenario order.
func (s *OutlierScenario) Receptors() []receptor.Receptor {
	recs := make([]receptor.Receptor, len(s.Motes))
	for i, m := range s.Motes {
		recs[i] = m
	}
	return recs
}

// Receptors returns the redwood motes in scenario order.
func (s *RedwoodScenario) Receptors() []receptor.Receptor {
	recs := make([]receptor.Receptor, len(s.Motes))
	for i, m := range s.Motes {
		recs[i] = m
	}
	return recs
}
