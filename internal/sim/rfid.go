package sim

import (
	"math/rand"
	"time"

	"esp/internal/receptor"
	"esp/internal/stream"
)

// TagInView is one tag visible to a reader at some instant, with its
// per-poll detection probability (distance, orientation, and antenna
// efficiency already folded in by the world model).
type TagInView struct {
	ID     string
	Detect float64
}

// RFIDReader simulates one RFID reader antenna. Each Poll models one
// inventory cycle: every tag in view is detected independently with its
// probability; detections occasionally fail the air-protocol checksum;
// and the reader sporadically reports an errant ("ghost") tag that is not
// part of the experiment — both behaviours the paper observed on Alien
// hardware.
type RFIDReader struct {
	id  string
	rng *rand.Rand
	// View reports the tags currently in this reader's field, with
	// detection probabilities.
	View func(now time.Time) []TagInView
	// ChecksumFailP is the probability a detection is corrupted.
	ChecksumFailP float64
	// GhostP is the per-poll probability of reporting GhostID.
	GhostP  float64
	GhostID string
	// Interference, if non-nil, scales every detection probability at
	// poll time — the paper's §1 observation that "RFID readers may drop
	// more readings in an environment with metal present" and that error
	// characteristics vary with the environment. Values are clamped to
	// [0, 1].
	Interference func(now time.Time) float64
}

// NewRFIDReader builds a reader with a deterministic per-device RNG.
func NewRFIDReader(seed int64, id string, view func(time.Time) []TagInView) *RFIDReader {
	return &RFIDReader{id: id, rng: newRng(seed, id), View: view, GhostID: "ghost-" + id}
}

// ID implements receptor.Receptor.
func (r *RFIDReader) ID() string { return r.id }

// Type implements receptor.Receptor.
func (r *RFIDReader) Type() receptor.Type { return receptor.TypeRFID }

// Schema implements receptor.Receptor.
func (r *RFIDReader) Schema() *stream.Schema { return RFIDSchema }

// Poll implements receptor.Receptor.
func (r *RFIDReader) Poll(now time.Time) []stream.Tuple {
	scale := 1.0
	if r.Interference != nil {
		scale = r.Interference(now)
		if scale < 0 {
			scale = 0
		} else if scale > 1 {
			scale = 1
		}
	}
	var out []stream.Tuple
	for _, tag := range r.View(now) {
		if r.rng.Float64() >= tag.Detect*scale {
			continue
		}
		ok := r.rng.Float64() >= r.ChecksumFailP
		out = append(out, stream.NewTuple(now, stream.String(tag.ID), stream.Bool(ok)))
	}
	if r.GhostP > 0 && r.rng.Float64() < r.GhostP {
		out = append(out, stream.NewTuple(now, stream.String(r.GhostID), stream.Bool(true)))
	}
	return out
}
