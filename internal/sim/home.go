package sim

import (
	"fmt"
	"math"
	"time"

	"esp/internal/receptor"
)

// HomeConfig parameterises the §6 digital-home scenario: an office with
// two RFID readers (one proximity group), three sound-sensing motes, and
// three X10 motion detectors, with one person — wearing an RFID badge and
// talking — moving in and out of the office at one-minute intervals for
// 600 seconds (Figure 9(a)).
type HomeConfig struct {
	Seed int64
	// Epoch is the processing epoch (1 s).
	Epoch time.Duration
	// PresencePeriod is how long each in/out phase lasts (60 s).
	PresencePeriod time.Duration

	// BadgeDetectP is the per-poll probability a reader reads the badge
	// of a present person; per reader (antenna imbalance again).
	BadgeDetectP []float64
	// GhostP is antenna 1's errant-tag rate (Figure 9(b) shows antenna 1
	// occasionally reading a tag not part of the experiment).
	GhostP float64

	// Sound model: present speech vs. quiet room (Figure 9(c)); the
	// Virtualize query thresholds noise at 525.
	QuietNoise, SpeechNoise, SpeechSwing, SoundNoiseStd float64
	// SoundDeliveryP is the motes' delivery rate (single hop, indoors).
	SoundDeliveryP float64

	// X10DetectP / X10FalseP are the motion detectors' per-epoch rates.
	X10DetectP, X10FalseP float64
}

// DefaultHomeConfig matches the paper's setup and its 92 % detection
// accuracy target.
func DefaultHomeConfig() HomeConfig {
	return HomeConfig{
		Seed:           23,
		Epoch:          time.Second,
		PresencePeriod: time.Minute,
		BadgeDetectP:   []float64{0.5, 0.35},
		GhostP:         0.02,
		QuietNoise:     500,
		SpeechNoise:    760,
		SpeechSwing:    140,
		SoundNoiseStd:  18,
		SoundDeliveryP: 0.85,
		X10DetectP:     0.4,
		X10FalseP:      0.01,
	}
}

// BadgeTagID is the tag the person wears.
const BadgeTagID = "badge-1"

// HomeScenario wires the digital-home office.
type HomeScenario struct {
	Config    HomeConfig
	Readers   []*RFIDReader
	Motes     []*Mote
	Detectors []*X10Detector
	Groups    *receptor.Groups
}

// NewHomeScenario builds the scenario.
func NewHomeScenario(cfg HomeConfig) (*HomeScenario, error) {
	if cfg.Epoch <= 0 || cfg.PresencePeriod <= 0 {
		return nil, fmt.Errorf("sim: home scenario needs positive Epoch and PresencePeriod")
	}
	if len(cfg.BadgeDetectP) == 0 {
		return nil, fmt.Errorf("sim: home scenario needs at least one reader")
	}
	s := &HomeScenario{Config: cfg, Groups: receptor.NewGroups()}

	var rfidMembers []string
	for i, p := range cfg.BadgeDetectP {
		detect := p
		r := NewRFIDReader(cfg.Seed, fmt.Sprintf("office-reader%d", i), func(now time.Time) []TagInView {
			if !s.Present(now) {
				return nil
			}
			return []TagInView{{ID: BadgeTagID, Detect: detect}}
		})
		if i == 1 {
			r.GhostP = cfg.GhostP
			r.GhostID = "errant-tag"
		}
		s.Readers = append(s.Readers, r)
		rfidMembers = append(rfidMembers, r.ID())
	}
	s.Groups.MustAdd(receptor.Group{Name: "office-rfid", Type: receptor.TypeRFID, Members: rfidMembers})

	var moteMembers []string
	for i := 0; i < 3; i++ {
		phase := float64(i) * 0.7
		m := NewMote(cfg.Seed, fmt.Sprintf("office-mote%d", i+1), cfg.SoundDeliveryP, SensorModel{
			Name: "noise",
			Truth: func(now time.Time) float64 {
				if !s.Present(now) {
					return cfg.QuietNoise
				}
				t := float64(now.UnixNano()) / float64(7*time.Second)
				return cfg.SpeechNoise + cfg.SpeechSwing*math.Sin(2*math.Pi*t+phase)
			},
			NoiseStd: cfg.SoundNoiseStd,
		})
		s.Motes = append(s.Motes, m)
		moteMembers = append(moteMembers, m.ID())
	}
	s.Groups.MustAdd(receptor.Group{Name: "office-sound", Type: receptor.TypeMote, Members: moteMembers})

	var x10Members []string
	for i := 0; i < 3; i++ {
		d := NewX10Detector(cfg.Seed, fmt.Sprintf("office-x10-%d", i+1), s.Present)
		d.DetectP = cfg.X10DetectP
		d.FalseP = cfg.X10FalseP
		s.Detectors = append(s.Detectors, d)
		x10Members = append(x10Members, d.ID())
	}
	s.Groups.MustAdd(receptor.Group{Name: "office-motion", Type: receptor.TypeMotion, Members: x10Members})
	return s, nil
}

// Present is the ground truth of Figure 9(a): the person is in the room
// during even PresencePeriod phases (starting present at t=0).
func (s *HomeScenario) Present(now time.Time) bool {
	phase := now.Sub(time.Unix(0, 0)) / s.Config.PresencePeriod
	return phase%2 == 0
}
