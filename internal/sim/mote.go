package sim

import (
	"math/rand"
	"sync"
	"time"

	"esp/internal/receptor"
	"esp/internal/stream"
)

// SensorModel describes one sensed quantity of a mote.
type SensorModel struct {
	// Name is the schema field ("temp", "noise", "voltage").
	Name string
	// Truth gives the physical ground-truth value at the mote's location.
	Truth func(now time.Time) float64
	// Bias is a fixed per-mote calibration offset.
	Bias float64
	// NoiseStd is the standard deviation of per-reading Gaussian noise.
	NoiseStd float64
}

// FailDirty makes a mote "fail dirty" (paper §5.1): from Start onward the
// affected sensor decouples from the physical world and ramps away —
// like the Sonoma motes whose temperature rose above 100 °C.
type FailDirty struct {
	// Sensor names the affected sensor field.
	Sensor string
	// Start is when the failure begins.
	Start time.Time
	// RampPerHour is the reported value's drift rate after Start.
	RampPerHour float64
}

// LossModel is a Gilbert–Elliott two-state Markov loss process modelling
// the bursty connectivity of real multi-hop sensor networks: delivery
// probability PGood while the link is up, PBad during outages, with
// per-epoch transition probabilities between the states. Bursty loss is
// what limits the Smooth stage's interpolation in §5.2 — independent
// Bernoulli loss would make a 30-minute window recover nearly every
// epoch, which the paper's 77 % post-Smooth yield contradicts.
type LossModel struct {
	PGood, PBad          float64
	GoodToBad, BadToGood float64
}

// StationaryYield is the model's long-run delivery probability.
func (l LossModel) StationaryYield() float64 {
	pGood := l.BadToGood / (l.GoodToBad + l.BadToGood)
	return l.PGood*pGood + l.PBad*(1-pGood)
}

// Mote simulates a wireless sensor mote: per-epoch sampling of one or
// more sensors, a lossy multi-hop network, and an optional fail-dirty
// mode. The Intel Lab deployment delivered on average only 42 % of
// requested data; the redwood trace yielded 40 % — set DeliveryP (or a
// bursty Loss model with that stationary yield) accordingly.
type Mote struct {
	id  string
	rng *rand.Rand
	// Sensors are the sensed quantities; the schema is derived from them.
	Sensors []SensorModel
	// DeliveryP is the per-epoch probability the sample reaches the base
	// station (1 = perfect network). Ignored when Loss is set.
	DeliveryP float64
	// Loss, if non-nil, replaces DeliveryP with bursty Markov loss.
	Loss *LossModel
	// Fail, if non-nil, makes the mote fail dirty.
	Fail *FailDirty

	schema     *stream.Schema
	failBase   float64
	failBased  bool
	lossBad    bool
	lossInited bool

	// sampleEvery, when positive, makes the mote sample at its own
	// (faster) interval rather than once per poll — the actuation knob
	// of paper §5.3.1. Guarded for concurrent actuation while a
	// processor polls.
	mu          sync.Mutex
	sampleEvery time.Duration
	lastPoll    time.Time
	polled      bool
}

// SetSampleInterval implements receptor.Actuatable: sample every d
// instead of once per poll (0 restores per-poll sampling).
func (m *Mote) SetSampleInterval(d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if d < 0 {
		d = 0
	}
	m.sampleEvery = d
}

// SampleInterval implements receptor.Actuatable.
func (m *Mote) SampleInterval() time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.sampleEvery
}

// NewMote builds a mote with a deterministic per-device RNG.
func NewMote(seed int64, id string, deliveryP float64, sensors ...SensorModel) *Mote {
	names := make([]string, len(sensors))
	for i, s := range sensors {
		names[i] = s.Name
	}
	return &Mote{
		id:        id,
		rng:       newRng(seed, id),
		Sensors:   sensors,
		DeliveryP: deliveryP,
		schema:    MoteSchemaFor(names...),
	}
}

// ID implements receptor.Receptor.
func (m *Mote) ID() string { return m.id }

// Type implements receptor.Receptor.
func (m *Mote) Type() receptor.Type { return receptor.TypeMote }

// Schema implements receptor.Receptor.
func (m *Mote) Schema() *stream.Schema { return m.schema }

// Truth returns the ground-truth (bias-free, noise-free, failure-free)
// value of the named sensor at the mote's location — what a perfect
// device would report. Used by experiment harnesses for error metrics.
func (m *Mote) Truth(sensor string, now time.Time) (float64, bool) {
	for _, s := range m.Sensors {
		if s.Name == sensor {
			return s.Truth(now), true
		}
	}
	return 0, false
}

// Sample returns the value the mote would report at now (including bias,
// noise, and fail-dirty drift), regardless of whether the network would
// deliver it. The paper's redwood experiment compares against exactly
// this local log, which every mote kept alongside the lossy radio path.
func (m *Mote) Sample(now time.Time) []stream.Value {
	vals := make([]stream.Value, 0, 1+len(m.Sensors))
	vals = append(vals, stream.String(m.id))
	for _, s := range m.Sensors {
		v := s.Truth(now) + s.Bias + m.rng.NormFloat64()*s.NoiseStd
		if m.Fail != nil && m.Fail.Sensor == s.Name && !now.Before(m.Fail.Start) {
			if !m.failBased {
				m.failBase = v
				m.failBased = true
			}
			elapsed := now.Sub(m.Fail.Start).Hours()
			v = m.failBase + m.Fail.RampPerHour*elapsed
		}
		vals = append(vals, stream.Float(v))
	}
	return vals
}

// delivered draws whether this epoch's sample survives the network.
func (m *Mote) delivered() bool {
	if m.Loss == nil {
		return m.rng.Float64() < m.DeliveryP
	}
	l := m.Loss
	if !m.lossInited {
		// Start in the stationary distribution.
		pGood := l.BadToGood / (l.GoodToBad + l.BadToGood)
		m.lossBad = m.rng.Float64() >= pGood
		m.lossInited = true
	} else if m.lossBad {
		if m.rng.Float64() < l.BadToGood {
			m.lossBad = false
		}
	} else {
		if m.rng.Float64() < l.GoodToBad {
			m.lossBad = true
		}
	}
	p := l.PGood
	if m.lossBad {
		p = l.PBad
	}
	return m.rng.Float64() < p
}

// PollLogged advances the mote one epoch and returns both the locally
// logged sample (which the real deployments kept on flash and the paper
// uses as accuracy ground truth) and whether the radio delivered it.
func (m *Mote) PollLogged(now time.Time) (stream.Tuple, bool) {
	t := stream.Tuple{Ts: now, Values: m.Sample(now)}
	return t, m.delivered()
}

// PollSamples advances the mote to now and returns every sample taken
// since the previous poll (one at now when per-poll sampling is active,
// several at SampleInterval spacing when actuated) plus per-sample
// delivery outcomes.
func (m *Mote) PollSamples(now time.Time) (logged []stream.Tuple, delivered []bool) {
	m.mu.Lock()
	every := m.sampleEvery
	last := m.lastPoll
	polled := m.polled
	m.lastPoll = now
	m.polled = true
	m.mu.Unlock()

	var times []time.Time
	if every <= 0 || !polled {
		times = []time.Time{now}
	} else {
		for t := last.Add(every); !t.After(now); t = t.Add(every) {
			times = append(times, t)
		}
		if len(times) == 0 {
			return nil, nil // polled faster than the sample interval
		}
	}
	for _, t := range times {
		tup, ok := m.PollLogged(t)
		logged = append(logged, tup)
		delivered = append(delivered, ok)
	}
	return logged, delivered
}

// Poll implements receptor.Receptor: the samples taken since the last
// poll, minus those the network lost.
func (m *Mote) Poll(now time.Time) []stream.Tuple {
	logged, delivered := m.PollSamples(now)
	var out []stream.Tuple
	for i, t := range logged {
		if delivered[i] {
			out = append(out, t)
		}
	}
	return out
}
