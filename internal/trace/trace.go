// Package trace records and replays receptor streams as CSV — the
// substrate for logging a deployment's raw data and re-running cleaning
// pipelines over it offline (espsim writes traces, espclean replays them).
//
// File format: a header row `receptor_id,ts,<field>...`, then one row per
// reading with ts in RFC3339Nano. NULL values are empty cells.
package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"time"

	"esp/internal/receptor"
	"esp/internal/stream"
)

// Record is one reading attributed to a receptor.
type Record struct {
	Receptor string
	Tuple    stream.Tuple
}

// Writer streams records of one schema to CSV.
type Writer struct {
	w      *csv.Writer
	schema *stream.Schema
}

// NewWriter writes the header for schema and returns a Writer.
func NewWriter(w io.Writer, schema *stream.Schema) (*Writer, error) {
	cw := csv.NewWriter(w)
	header := []string{"receptor_id", "ts"}
	for _, f := range schema.Fields() {
		header = append(header, f.Name)
	}
	if err := cw.Write(header); err != nil {
		return nil, fmt.Errorf("trace: write header: %w", err)
	}
	return &Writer{w: cw, schema: schema}, nil
}

// Write appends one record, validating it against the schema.
func (w *Writer) Write(rec Record) error {
	if err := stream.CheckTuple(w.schema, rec.Tuple); err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	row := make([]string, 0, 2+w.schema.Len())
	row = append(row, rec.Receptor, rec.Tuple.Ts.UTC().Format(time.RFC3339Nano))
	for _, v := range rec.Tuple.Values {
		if v.IsNull() {
			row = append(row, "")
			continue
		}
		row = append(row, v.String())
	}
	if err := w.w.Write(row); err != nil {
		return fmt.Errorf("trace: write record: %w", err)
	}
	return nil
}

// Flush flushes buffered rows and reports any write error.
func (w *Writer) Flush() error {
	w.w.Flush()
	return w.w.Error()
}

// Read parses a whole trace against the expected schema.
func Read(r io.Reader, schema *stream.Schema) ([]Record, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("trace: read header: %w", err)
	}
	if len(header) != 2+schema.Len() || header[0] != "receptor_id" || header[1] != "ts" {
		return nil, fmt.Errorf("trace: header %v does not match schema %s", header, schema)
	}
	for i, f := range schema.Fields() {
		if header[2+i] != f.Name {
			return nil, fmt.Errorf("trace: header column %q != schema field %q", header[2+i], f.Name)
		}
	}
	var records []Record
	for line := 2; ; line++ {
		row, err := cr.Read()
		if err == io.EOF {
			return records, nil
		}
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		ts, err := time.Parse(time.RFC3339Nano, row[1])
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad timestamp %q: %w", line, row[1], err)
		}
		vals := make([]stream.Value, schema.Len())
		for i := 0; i < schema.Len(); i++ {
			cell := row[2+i]
			if cell == "" {
				vals[i] = stream.Null()
				continue
			}
			v, err := stream.ParseValue(schema.Field(i).Kind, cell)
			if err != nil {
				return nil, fmt.Errorf("trace: line %d, column %s: %w", line, schema.Field(i).Name, err)
			}
			vals[i] = v
		}
		records = append(records, Record{Receptor: row[0], Tuple: stream.Tuple{Ts: ts, Values: vals}})
	}
}

// Replays groups a trace's records by receptor into Replay receptors of
// the given type, sorted by receptor ID for determinism. Records must be
// time-ordered per receptor (as written by Writer from a live run).
func Replays(records []Record, typ receptor.Type, schema *stream.Schema) []receptor.Receptor {
	byID := make(map[string][]stream.Tuple)
	for _, r := range records {
		byID[r.Receptor] = append(byID[r.Receptor], r.Tuple)
	}
	ids := make([]string, 0, len(byID))
	for id := range byID {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	out := make([]receptor.Receptor, 0, len(ids))
	for _, id := range ids {
		out = append(out, receptor.NewReplay(id, typ, schema, byID[id]))
	}
	return out
}
