package trace

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"esp/internal/receptor"
	"esp/internal/stream"
)

var schema = stream.MustSchema(
	stream.Field{Name: "tag_id", Kind: stream.KindString},
	stream.Field{Name: "rssi", Kind: stream.KindFloat},
	stream.Field{Name: "ok", Kind: stream.KindBool},
)

func at(sec float64) time.Time {
	return time.Unix(0, int64(sec*float64(time.Second))).UTC()
}

func TestRoundTrip(t *testing.T) {
	records := []Record{
		{Receptor: "r0", Tuple: stream.NewTuple(at(0.2), stream.String("A"), stream.Float(-54.5), stream.Bool(true))},
		{Receptor: "r1", Tuple: stream.NewTuple(at(0.4), stream.String("B"), stream.Null(), stream.Bool(false))},
	}
	var buf bytes.Buffer
	w, err := NewWriter(&buf, schema)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range records {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf, schema)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(records) {
		t.Fatalf("got %d records", len(got))
	}
	for i := range records {
		if got[i].Receptor != records[i].Receptor || !got[i].Tuple.Ts.Equal(records[i].Tuple.Ts) {
			t.Errorf("record %d = %+v", i, got[i])
		}
		for j := range records[i].Tuple.Values {
			if got[i].Tuple.Values[j] != records[i].Tuple.Values[j] {
				t.Errorf("record %d value %d = %v, want %v", i, j, got[i].Tuple.Values[j], records[i].Tuple.Values[j])
			}
		}
	}
}

func TestWriteValidates(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, schema)
	if err != nil {
		t.Fatal(err)
	}
	bad := Record{Receptor: "r0", Tuple: stream.NewTuple(at(0), stream.Int(5), stream.Float(1), stream.Bool(true))}
	if err := w.Write(bad); err == nil {
		t.Error("kind-mismatched record accepted")
	}
}

func TestReadErrors(t *testing.T) {
	cases := []string{
		"",                                 // no header
		"receptor_id,ts\n",                 // wrong arity
		"receptor_id,ts,tag_id,wrong,ok\n", // wrong field name
		"receptor_id,ts,tag_id,rssi,ok\nr0,not-a-time,A,1,true\n",
		"receptor_id,ts,tag_id,rssi,ok\nr0,1970-01-01T00:00:00Z,A,abc,true\n",
	}
	for _, src := range cases {
		if _, err := Read(strings.NewReader(src), schema); err == nil {
			t.Errorf("Read(%q): want error", src)
		}
	}
}

func TestReplays(t *testing.T) {
	records := []Record{
		{Receptor: "r1", Tuple: stream.NewTuple(at(0.2), stream.String("A"), stream.Float(1), stream.Bool(true))},
		{Receptor: "r0", Tuple: stream.NewTuple(at(0.1), stream.String("B"), stream.Float(2), stream.Bool(true))},
		{Receptor: "r1", Tuple: stream.NewTuple(at(0.6), stream.String("C"), stream.Float(3), stream.Bool(true))},
	}
	reps := Replays(records, receptor.TypeRFID, schema)
	if len(reps) != 2 {
		t.Fatalf("replays = %d", len(reps))
	}
	if reps[0].ID() != "r0" || reps[1].ID() != "r1" {
		t.Errorf("order = %s, %s", reps[0].ID(), reps[1].ID())
	}
	out := reps[1].Poll(at(0.5))
	if len(out) != 1 || out[0].Values[0] != stream.String("A") {
		t.Errorf("r1 poll = %v", out)
	}
	out = reps[1].Poll(at(1))
	if len(out) != 1 || out[0].Values[0] != stream.String("C") {
		t.Errorf("r1 second poll = %v", out)
	}
}

func TestQuickRoundTripRandom(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(20)
		var records []Record
		for i := 0; i < n; i++ {
			var rssi stream.Value
			if r.Intn(4) == 0 {
				rssi = stream.Null()
			} else {
				rssi = stream.Float(float64(r.Intn(1000)) / 7)
			}
			records = append(records, Record{
				Receptor: string(rune('a' + r.Intn(3))),
				Tuple: stream.NewTuple(at(float64(i)),
					stream.String(string(rune('A'+r.Intn(26)))), rssi, stream.Bool(r.Intn(2) == 0)),
			})
		}
		var buf bytes.Buffer
		w, err := NewWriter(&buf, schema)
		if err != nil {
			return false
		}
		for _, rec := range records {
			if err := w.Write(rec); err != nil {
				return false
			}
		}
		if err := w.Flush(); err != nil {
			return false
		}
		got, err := Read(&buf, schema)
		if err != nil || len(got) != len(records) {
			return false
		}
		for i := range records {
			if got[i].Receptor != records[i].Receptor {
				return false
			}
			for j := range records[i].Tuple.Values {
				if got[i].Tuple.Values[j] != records[i].Tuple.Values[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
