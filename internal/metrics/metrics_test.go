package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAvgRelativeError(t *testing.T) {
	got, err := AvgRelativeError([]float64{5, 15}, []float64{10, 10})
	if err != nil {
		t.Fatal(err)
	}
	if got != 0.5 {
		t.Errorf("err = %v, want 0.5", got)
	}
	perfect, err := AvgRelativeError([]float64{10, 15}, []float64{10, 15})
	if err != nil || perfect != 0 {
		t.Errorf("perfect = %v, %v", perfect, err)
	}
}

func TestAvgRelativeErrorErrors(t *testing.T) {
	if _, err := AvgRelativeError([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch: want error")
	}
	if _, err := AvgRelativeError(nil, nil); err == nil {
		t.Error("empty: want error")
	}
	if _, err := AvgRelativeError([]float64{1}, []float64{0}); err == nil {
		t.Error("zero truth: want error")
	}
}

func TestEpochYield(t *testing.T) {
	got, err := EpochYield(40, 100)
	if err != nil || got != 0.4 {
		t.Errorf("yield = %v, %v", got, err)
	}
	if _, err := EpochYield(1, 0); err == nil {
		t.Error("zero requested: want error")
	}
	if _, err := EpochYield(-1, 10); err == nil {
		t.Error("negative delivered: want error")
	}
	if _, err := EpochYield(11, 10); err == nil {
		t.Error("delivered > requested: want error")
	}
}

func TestWithinTolerance(t *testing.T) {
	got, err := WithinTolerance([]float64{20, 21.5, 25}, []float64{20.5, 21, 20}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-2.0/3.0) > 1e-12 {
		t.Errorf("within = %v, want 2/3", got)
	}
	if _, err := WithinTolerance([]float64{1}, []float64{1}, -1); err == nil {
		t.Error("negative tolerance: want error")
	}
}

func TestAlertRate(t *testing.T) {
	// 3 alerts over 10 seconds.
	got, err := AlertRate([]float64{4, 6, 3, 7, 2}, 5, 10)
	if err != nil || got != 0.3 {
		t.Errorf("rate = %v, %v", got, err)
	}
	if _, err := AlertRate(nil, 5, 0); err == nil {
		t.Error("zero duration: want error")
	}
	// Exactly at threshold is not an alert.
	got, _ = AlertRate([]float64{5}, 5, 1)
	if got != 0 {
		t.Errorf("threshold boundary alerted: %v", got)
	}
}

func TestBinaryAccuracy(t *testing.T) {
	got, err := BinaryAccuracy([]bool{true, false, true, true}, []bool{true, true, true, false})
	if err != nil || got != 0.5 {
		t.Errorf("accuracy = %v, %v", got, err)
	}
	if _, err := BinaryAccuracy(nil, nil); err == nil {
		t.Error("empty: want error")
	}
}

func TestMeanAbsError(t *testing.T) {
	got, err := MeanAbsError([]float64{1, 3}, []float64{2, 1})
	if err != nil || got != 1.5 {
		t.Errorf("mae = %v, %v", got, err)
	}
}

func TestQuickMetricsBounds(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(50)
		rep := make([]float64, n)
		tru := make([]float64, n)
		pb := make([]bool, n)
		tb := make([]bool, n)
		for i := range rep {
			rep[i] = r.Float64() * 100
			tru[i] = 1 + r.Float64()*100
			pb[i] = r.Intn(2) == 0
			tb[i] = r.Intn(2) == 0
		}
		are, err := AvgRelativeError(rep, tru)
		if err != nil || are < 0 {
			return false
		}
		wt, err := WithinTolerance(rep, tru, r.Float64()*10)
		if err != nil || wt < 0 || wt > 1 {
			return false
		}
		acc, err := BinaryAccuracy(pb, tb)
		if err != nil || acc < 0 || acc > 1 {
			return false
		}
		// WithinTolerance is monotone in the tolerance.
		w0, _ := WithinTolerance(rep, tru, 1)
		w1, _ := WithinTolerance(rep, tru, 10)
		return w1 >= w0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
