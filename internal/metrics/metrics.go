// Package metrics implements the evaluation metrics of the paper:
// average relative error (Eq. 1), epoch yield, tolerance fractions,
// restock-alert rate, and binary detector accuracy.
package metrics

import (
	"fmt"
	"math"
)

// AvgRelativeError is the paper's Equation 1: the mean over time steps of
// |reported - truth| / truth. Both series must be aligned per time step;
// truth values must be non-zero.
func AvgRelativeError(reported, truth []float64) (float64, error) {
	if len(reported) != len(truth) {
		return 0, fmt.Errorf("metrics: series lengths differ: %d vs %d", len(reported), len(truth))
	}
	if len(reported) == 0 {
		return 0, fmt.Errorf("metrics: empty series")
	}
	var sum float64
	for i := range reported {
		if truth[i] == 0 {
			return 0, fmt.Errorf("metrics: truth is zero at step %d", i)
		}
		sum += math.Abs(reported[i]-truth[i]) / math.Abs(truth[i])
	}
	return sum / float64(len(reported)), nil
}

// EpochYield is the fraction of requested readings that reached the
// application (paper §5.2): delivered / requested.
func EpochYield(delivered, requested int) (float64, error) {
	if requested <= 0 {
		return 0, fmt.Errorf("metrics: requested must be positive, got %d", requested)
	}
	if delivered < 0 || delivered > requested {
		return 0, fmt.Errorf("metrics: delivered %d out of range [0,%d]", delivered, requested)
	}
	return float64(delivered) / float64(requested), nil
}

// WithinTolerance is the fraction of aligned pairs with |a-b| <= tol —
// the paper's "% of readings within 1°C of the logged data".
func WithinTolerance(reported, truth []float64, tol float64) (float64, error) {
	if len(reported) != len(truth) {
		return 0, fmt.Errorf("metrics: series lengths differ: %d vs %d", len(reported), len(truth))
	}
	if len(reported) == 0 {
		return 0, fmt.Errorf("metrics: empty series")
	}
	if tol < 0 {
		return 0, fmt.Errorf("metrics: negative tolerance")
	}
	n := 0
	for i := range reported {
		if math.Abs(reported[i]-truth[i]) <= tol {
			n++
		}
	}
	return float64(n) / float64(len(reported)), nil
}

// AlertRate counts threshold crossings per second: the number of steps
// where value < threshold, divided by the series duration in seconds —
// the paper's "restock alerts 2.3 times per second".
func AlertRate(values []float64, threshold, durationSeconds float64) (float64, error) {
	if durationSeconds <= 0 {
		return 0, fmt.Errorf("metrics: duration must be positive")
	}
	alerts := 0
	for _, v := range values {
		if v < threshold {
			alerts++
		}
	}
	return float64(alerts) / durationSeconds, nil
}

// BinaryAccuracy is the fraction of aligned boolean pairs that agree —
// the paper's "correctly indicate that a person is in the room 92% of the
// time".
func BinaryAccuracy(pred, truth []bool) (float64, error) {
	if len(pred) != len(truth) {
		return 0, fmt.Errorf("metrics: series lengths differ: %d vs %d", len(pred), len(truth))
	}
	if len(pred) == 0 {
		return 0, fmt.Errorf("metrics: empty series")
	}
	n := 0
	for i := range pred {
		if pred[i] == truth[i] {
			n++
		}
	}
	return float64(n) / float64(len(pred)), nil
}

// MeanAbsError is the mean of |reported - truth| over aligned pairs.
func MeanAbsError(reported, truth []float64) (float64, error) {
	if len(reported) != len(truth) {
		return 0, fmt.Errorf("metrics: series lengths differ: %d vs %d", len(reported), len(truth))
	}
	if len(reported) == 0 {
		return 0, fmt.Errorf("metrics: empty series")
	}
	var sum float64
	for i := range reported {
		sum += math.Abs(reported[i] - truth[i])
	}
	return sum / float64(len(reported)), nil
}
