package stream

import (
	"testing"
	"time"
)

// arbSchema mirrors the Smooth-stage output feeding Arbitrate: per-granule
// per-tag read counts.
var arbSchema = MustSchema(
	Field{Name: "spatial_granule", Kind: KindInt},
	Field{Name: "tag_id", Kind: KindString},
	Field{Name: "n", Kind: KindInt},
)

func arbRead(granule int64, tag string, n int64) Tuple {
	return NewTuple(at(0.5), Int(granule), String(tag), Int(n))
}

func newArbMax() *ArgMax {
	return &ArgMax{
		PartitionBy: []NamedExpr{{Name: "tag_id", Expr: NewCol("tag_id")}},
		ChooseBy:    []NamedExpr{{Name: "spatial_granule", Expr: NewCol("spatial_granule")}},
		Score:       NamedExpr{Name: "n", Expr: NewCol("n")},
	}
}

func TestArgMaxAttributesTagToStrongestGranule(t *testing.T) {
	a := newArbMax()
	if err := a.Open(arbSchema); err != nil {
		t.Fatal(err)
	}
	push := func(tu Tuple) {
		t.Helper()
		if _, err := a.Process(tu); err != nil {
			t.Fatal(err)
		}
	}
	// Tag X read 9 times by shelf 0 and 3 times by shelf 1 — shelf 0 wins.
	push(arbRead(0, "X", 9))
	push(arbRead(1, "X", 3))
	// Tag Y read only by shelf 1.
	push(arbRead(1, "Y", 4))
	out, err := a.Advance(at(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("out = %v", out)
	}
	got := map[string]int64{}
	for _, o := range out {
		got[o.Values[1].AsString()] = o.Values[0].AsInt()
		if !o.Ts.Equal(at(1)) {
			t.Errorf("emission Ts = %v, want punctuation time", o.Ts)
		}
	}
	if got["X"] != 0 || got["Y"] != 1 {
		t.Errorf("attribution = %v, want X->0, Y->1", got)
	}
}

func TestArgMaxTieBreakDefaultAndCustom(t *testing.T) {
	// Default: lexicographically smaller granule wins ties.
	a := newArbMax()
	if err := a.Open(arbSchema); err != nil {
		t.Fatal(err)
	}
	a.Process(arbRead(1, "X", 5))
	a.Process(arbRead(0, "X", 5))
	out, _ := a.Advance(at(1))
	if len(out) != 1 || out[0].Values[0] != Int(0) {
		t.Errorf("default tie-break: %v, want granule 0", out)
	}

	// Custom: the paper's §4.3.1 calibration prefers the weaker antenna
	// (here: granule 1).
	b := newArbMax()
	b.Tie = func(x, y Tuple) bool { return x.Values[0].AsInt() == 1 }
	if err := b.Open(arbSchema); err != nil {
		t.Fatal(err)
	}
	b.Process(arbRead(0, "X", 5))
	b.Process(arbRead(1, "X", 5))
	out, _ = b.Advance(at(1))
	if len(out) != 1 || out[0].Values[0] != Int(1) {
		t.Errorf("custom tie-break: %v, want granule 1", out)
	}
}

func TestArgMaxEmitAllTies(t *testing.T) {
	a := newArbMax()
	a.EmitAllTies = true
	if err := a.Open(arbSchema); err != nil {
		t.Fatal(err)
	}
	a.Process(arbRead(0, "X", 5))
	a.Process(arbRead(1, "X", 5))
	a.Process(arbRead(2, "X", 3)) // loser, never emitted
	out, _ := a.Advance(at(1))
	if len(out) != 2 {
		t.Fatalf("EmitAllTies out = %v, want both tied granules", out)
	}
	if out[0].Values[0] != Int(0) || out[1].Values[0] != Int(1) {
		t.Errorf("tie emission order: %v", out)
	}
}

func TestArgMaxEpochsIndependent(t *testing.T) {
	a := newArbMax()
	if err := a.Open(arbSchema); err != nil {
		t.Fatal(err)
	}
	a.Process(arbRead(0, "X", 9))
	out, _ := a.Advance(at(1))
	if len(out) != 1 {
		t.Fatalf("epoch1 = %v", out)
	}
	// New epoch: shelf 1 now reads X more.
	a.Process(arbRead(0, "X", 2))
	a.Process(arbRead(1, "X", 7))
	out, _ = a.Advance(at(2))
	if len(out) != 1 || out[0].Values[0] != Int(1) {
		t.Errorf("epoch2 = %v, want X->1 (state must reset per epoch)", out)
	}
	// Empty epoch emits nothing.
	out, _ = a.Advance(at(3))
	if len(out) != 0 {
		t.Errorf("empty epoch emitted %v", out)
	}
}

func TestArgMaxNullScoreNeverWins(t *testing.T) {
	a := newArbMax()
	if err := a.Open(arbSchema); err != nil {
		t.Fatal(err)
	}
	a.Process(NewTuple(at(0.5), Int(0), String("X"), Null()))
	a.Process(arbRead(1, "X", 1))
	out, _ := a.Advance(at(1))
	if len(out) != 1 || out[0].Values[0] != Int(1) {
		t.Errorf("NULL score beat a real score: %v", out)
	}
}

func TestArgMaxOpenErrors(t *testing.T) {
	bad := []*ArgMax{
		{ChooseBy: []NamedExpr{{Name: "g", Expr: NewCol("spatial_granule")}}, Score: NamedExpr{Name: "n", Expr: NewCol("n")}},
		{PartitionBy: []NamedExpr{{Name: "t", Expr: NewCol("tag_id")}}, Score: NamedExpr{Name: "n", Expr: NewCol("n")}},
		{
			PartitionBy: []NamedExpr{{Name: "t", Expr: NewCol("tag_id")}},
			ChooseBy:    []NamedExpr{{Name: "g", Expr: NewCol("spatial_granule")}},
			Score:       NamedExpr{Name: "s", Expr: NewCol("tag_id")}, // non-numeric score
		},
	}
	for i, a := range bad {
		if err := a.Open(arbSchema); err == nil {
			t.Errorf("case %d: want Open error", i)
		}
	}
}

func TestDistinctWithinEpoch(t *testing.T) {
	d := &Distinct{On: []NamedExpr{{Name: "tag_id", Expr: NewCol("tag_id")}}}
	if err := d.Open(rfidSchema); err != nil {
		t.Fatal(err)
	}
	out1, _ := d.Process(read(0.1, "A", 0))
	out2, _ := d.Process(read(0.2, "A", 1)) // same tag, different shelf: dup
	out3, _ := d.Process(read(0.3, "B", 0))
	if len(out1) != 1 || len(out2) != 0 || len(out3) != 1 {
		t.Errorf("distinct within epoch: %v %v %v", out1, out2, out3)
	}
	d.Advance(at(1))
	out4, _ := d.Process(read(1.1, "A", 0))
	if len(out4) != 1 {
		t.Error("distinct state must reset at punctuation")
	}
}

func TestDistinctWholeTupleDefault(t *testing.T) {
	d := &Distinct{}
	if err := d.Open(rfidSchema); err != nil {
		t.Fatal(err)
	}
	a, _ := d.Process(read(0.1, "A", 0))
	b, _ := d.Process(read(0.2, "A", 0)) // same values: dup
	c, _ := d.Process(read(0.3, "A", 1)) // differs in shelf: kept
	if len(a) != 1 || len(b) != 0 || len(c) != 1 {
		t.Errorf("whole-tuple distinct: %v %v %v", a, b, c)
	}
}

func TestArgMaxCloseFlushes(t *testing.T) {
	a := newArbMax()
	if err := a.Open(arbSchema); err != nil {
		t.Fatal(err)
	}
	a.Process(arbRead(0, "X", 1))
	out, err := a.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Errorf("Close dropped pending winners: %v", out)
	}
	var zero time.Time
	_ = zero
}
