package stream

import (
	"errors"
	"testing"
	"time"
)

func TestFilterOperator(t *testing.T) {
	f := NewFilter(NewBinary(OpEq, NewCol("shelf"), NewConst(Int(0))))
	if err := f.Open(rfidSchema); err != nil {
		t.Fatal(err)
	}
	if !f.Schema().Equal(rfidSchema) {
		t.Error("filter must preserve schema")
	}
	keep, _ := f.Process(read(0.1, "A", 0))
	drop, _ := f.Process(read(0.2, "A", 1))
	if len(keep) != 1 || len(drop) != 0 {
		t.Errorf("filter: keep=%v drop=%v", keep, drop)
	}
}

func TestFilterNullDrops(t *testing.T) {
	f := NewFilter(NewBinary(OpLt, NewCol("shelf"), NewConst(Int(5))))
	if err := f.Open(rfidSchema); err != nil {
		t.Fatal(err)
	}
	out, _ := f.Process(NewTuple(at(0.1), String("A"), Null()))
	if len(out) != 0 {
		t.Error("NULL predicate must drop tuple (SQL WHERE semantics)")
	}
}

func TestFilterOpenErrors(t *testing.T) {
	if err := NewFilter(NewCol("tag_id")).Open(rfidSchema); err == nil {
		t.Error("non-boolean predicate: want error")
	}
	if err := NewFilter(NewCol("missing")).Open(rfidSchema); err == nil {
		t.Error("unknown column: want error")
	}
}

func TestProjectOperator(t *testing.T) {
	p := NewProject(
		NamedExpr{Name: "t", Expr: NewCol("tag_id")},
		NamedExpr{Name: "double", Expr: NewBinary(OpMul, NewCol("shelf"), NewConst(Int(2)))},
	)
	if err := p.Open(rfidSchema); err != nil {
		t.Fatal(err)
	}
	if p.Schema().String() != "(t string, double int)" {
		t.Errorf("schema = %s", p.Schema())
	}
	out, err := p.Process(read(0.5, "A", 3))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Values[1] != Int(6) {
		t.Errorf("out = %v", out)
	}
	if !out[0].Ts.Equal(at(0.5)) {
		t.Error("project must preserve tuple timestamp")
	}
}

func TestMapFuncOperator(t *testing.T) {
	m := &MapFunc{Fn: func(tu Tuple) ([]Tuple, error) {
		if tu.Values[0].AsString() == "boom" {
			return nil, errors.New("boom")
		}
		return []Tuple{tu, tu}, nil // duplicate each tuple
	}}
	if err := m.Open(rfidSchema); err != nil {
		t.Fatal(err)
	}
	if !m.Schema().Equal(rfidSchema) {
		t.Error("nil Out must default to input schema")
	}
	out, err := m.Process(read(0.1, "A", 0))
	if err != nil || len(out) != 2 {
		t.Errorf("map out = %v, %v", out, err)
	}
	if _, err := m.Process(read(0.2, "boom", 0)); err == nil {
		t.Error("map error must propagate")
	}
	bad := &MapFunc{}
	if err := bad.Open(rfidSchema); err == nil {
		t.Error("nil Fn: want Open error")
	}
}

// TestChainPunctuationCascade verifies the critical ordering property:
// tuples released by an upstream window's Advance must be Processed by a
// downstream window before the downstream window handles the same
// punctuation — otherwise boundary tuples miss the closing window.
func TestChainPunctuationCascade(t *testing.T) {
	smooth := &WindowAgg{
		GroupBy: []NamedExpr{{Name: "tag_id", Expr: NewCol("tag_id")}},
		Aggs:    []AggSpec{{Name: "n", Func: AggCount}},
		Range:   2 * time.Second,
		Slide:   time.Second,
	}
	// Downstream NOW-window count of smoothed tags (Query 1 shape).
	count := &WindowAgg{
		Aggs:  []AggSpec{{Name: "tags", Func: AggCount, Arg: NewCol("tag_id"), Distinct: true}},
		Slide: time.Second,
	}
	chain := NewChain(smooth, count)
	if err := chain.Open(rfidSchema); err != nil {
		t.Fatal(err)
	}
	if _, err := chain.Process(read(0.5, "A", 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := chain.Process(read(0.7, "B", 0)); err != nil {
		t.Fatal(err)
	}
	out, err := chain.Advance(at(1))
	if err != nil {
		t.Fatal(err)
	}
	// smooth emits A,B at t=1; count's epoch closing at t=1 must see them.
	if len(out) != 1 || out[0].Values[0] != Int(2) {
		t.Fatalf("cascade out = %v, want one row counting 2 tags", out)
	}
}

func TestChainEmptyIsIdentity(t *testing.T) {
	c := NewChain()
	if err := c.Open(rfidSchema); err != nil {
		t.Fatal(err)
	}
	if !c.Schema().Equal(rfidSchema) {
		t.Error("empty chain schema")
	}
	out, _ := c.Process(read(0.1, "A", 0))
	if len(out) != 1 {
		t.Errorf("empty chain out = %v", out)
	}
}

func TestChainOpenError(t *testing.T) {
	c := NewChain(NewFilter(NewCol("missing")))
	if err := c.Open(rfidSchema); err == nil {
		t.Error("chain must surface member Open errors")
	}
}

func TestChainProcessStopsOnError(t *testing.T) {
	div := NewProject(NamedExpr{Name: "bad", Expr: NewBinary(OpDiv, NewConst(Int(1)), NewCol("shelf"))})
	c := NewChain(div)
	if err := c.Open(rfidSchema); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Process(read(0.1, "A", 0)); err == nil {
		t.Error("division by zero must propagate through chain")
	}
}

func TestChainSchemaComposition(t *testing.T) {
	c := NewChain(
		NewFilter(NewBinary(OpEq, NewCol("shelf"), NewConst(Int(0)))),
		NewProject(NamedExpr{Name: "tag", Expr: NewCol("tag_id")}),
	)
	if err := c.Open(rfidSchema); err != nil {
		t.Fatal(err)
	}
	if c.Schema().String() != "(tag string)" {
		t.Errorf("chain schema = %s", c.Schema())
	}
}

func TestChainCloseCascades(t *testing.T) {
	w := &WindowAgg{
		GroupBy: []NamedExpr{{Name: "tag_id", Expr: NewCol("tag_id")}},
		Aggs:    []AggSpec{{Name: "n", Func: AggCount}},
		Range:   time.Minute, Slide: time.Minute,
	}
	c := NewChain(w, NewProject(NamedExpr{Name: "tag_id", Expr: NewCol("tag_id")}))
	if err := c.Open(rfidSchema); err != nil {
		t.Fatal(err)
	}
	c.Process(read(0.5, "A", 0))
	c.Process(read(0.7, "B", 0))
	// No punctuation ever arrives: Close alone must flush the pending
	// window through the downstream projection.
	out, err := c.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Errorf("Close must flush pending window through downstream ops: %v", out)
	}
}

func TestWindowFirstPunctuationEmitsPartialWindow(t *testing.T) {
	w := &WindowAgg{
		GroupBy: []NamedExpr{{Name: "tag_id", Expr: NewCol("tag_id")}},
		Aggs:    []AggSpec{{Name: "n", Func: AggCount}},
		Range:   time.Minute, Slide: time.Minute,
	}
	if err := w.Open(rfidSchema); err != nil {
		t.Fatal(err)
	}
	w.Process(read(0.5, "A", 0))
	out, err := w.Advance(at(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Values[1] != Int(1) {
		t.Errorf("first punctuation should close a window over prior data: %v", out)
	}
}
