package stream

import (
	"fmt"
	"strings"
)

// ParseKind parses a lower-case kind name as used in CQL type names and
// config files.
func ParseKind(name string) (Kind, error) {
	switch strings.ToLower(name) {
	case "string":
		return KindString, nil
	case "int":
		return KindInt, nil
	case "float":
		return KindFloat, nil
	case "bool":
		return KindBool, nil
	case "time":
		return KindTime, nil
	default:
		return KindNull, fmt.Errorf("stream: unknown kind %q", name)
	}
}

// ParseSchemaSpec parses the compact "name:kind,name:kind" schema syntax
// shared by the espclean flags and the espd tenant specs.
func ParseSchemaSpec(spec string) (*Schema, error) {
	var fields []Field
	for _, part := range strings.Split(spec, ",") {
		nk := strings.SplitN(strings.TrimSpace(part), ":", 2)
		if len(nk) != 2 {
			return nil, fmt.Errorf("stream: bad schema entry %q (want name:kind)", part)
		}
		kind, err := ParseKind(nk[1])
		if err != nil {
			return nil, fmt.Errorf("stream: schema entry %q: %w", part, err)
		}
		fields = append(fields, Field{Name: nk[0], Kind: kind})
	}
	return NewSchema(fields...)
}
