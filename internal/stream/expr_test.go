package stream

import (
	"strings"
	"testing"
	"time"
)

var exprTestSchema = MustSchema(
	Field{Name: "temp", Kind: KindFloat},
	Field{Name: "mote", Kind: KindInt},
	Field{Name: "room", Kind: KindString},
	Field{Name: "ok", Kind: KindBool},
)

func exprTuple(temp float64, mote int64, room string, ok bool) Tuple {
	return NewTuple(time.Unix(0, 0), Float(temp), Int(mote), String(room), Bool(ok))
}

func mustBind(t *testing.T, e Expr, s *Schema) Kind {
	t.Helper()
	k, err := e.Bind(s)
	if err != nil {
		t.Fatalf("Bind(%s): %v", e, err)
	}
	return k
}

func mustEval(t *testing.T, e Expr, tup Tuple) Value {
	t.Helper()
	v, err := e.Eval(tup)
	if err != nil {
		t.Fatalf("Eval(%s): %v", e, err)
	}
	return v
}

func TestColBindAndEval(t *testing.T) {
	c := NewCol("temp")
	if k := mustBind(t, c, exprTestSchema); k != KindFloat {
		t.Errorf("kind = %v", k)
	}
	if v := mustEval(t, c, exprTuple(21.5, 1, "lab", true)); v != Float(21.5) {
		t.Errorf("value = %v", v)
	}
	if _, err := NewCol("nope").Bind(exprTestSchema); err == nil {
		t.Error("unknown column: want bind error")
	}
	if _, err := NewCol("temp").Eval(exprTuple(1, 1, "x", true)); err == nil {
		t.Error("eval before bind: want error")
	}
}

func TestBinaryArithmeticTyping(t *testing.T) {
	// int + int stays int; float contaminates.
	e := NewBinary(OpAdd, NewCol("mote"), NewConst(Int(1)))
	if k := mustBind(t, e, exprTestSchema); k != KindInt {
		t.Errorf("int+int kind = %v", k)
	}
	e2 := NewBinary(OpMul, NewCol("temp"), NewCol("mote"))
	if k := mustBind(t, e2, exprTestSchema); k != KindFloat {
		t.Errorf("float*int kind = %v", k)
	}
	if _, err := NewBinary(OpAdd, NewCol("room"), NewConst(Int(1))).Bind(exprTestSchema); err == nil {
		t.Error("string + int should fail to bind")
	}
}

func TestComparisonAndPredicate(t *testing.T) {
	// temp < 50 — the paper's Query 4 Point filter.
	e := NewBinary(OpLt, NewCol("temp"), NewConst(Float(50)))
	mustBind(t, e, exprTestSchema)
	if v := mustEval(t, e, exprTuple(21.5, 1, "lab", true)); !v.Truthy() {
		t.Error("21.5 < 50 should be true")
	}
	if v := mustEval(t, e, exprTuple(103, 1, "lab", true)); v.Truthy() {
		t.Error("103 < 50 should be false")
	}
}

func TestThreeValuedLogic(t *testing.T) {
	null := NewConst(Null())
	tru := NewConst(Bool(true))
	fls := NewConst(Bool(false))
	cases := []struct {
		e    Expr
		want Value
	}{
		{NewBinary(OpAnd, tru, tru), Bool(true)},
		{NewBinary(OpAnd, tru, fls), Bool(false)},
		{NewBinary(OpAnd, fls, null), Bool(false)}, // short-circuit
		{NewBinary(OpAnd, null, fls), Bool(false)},
		{NewBinary(OpAnd, null, tru), Null()},
		{NewBinary(OpOr, fls, fls), Bool(false)},
		{NewBinary(OpOr, tru, null), Bool(true)}, // short-circuit
		{NewBinary(OpOr, null, tru), Bool(true)},
		{NewBinary(OpOr, null, fls), Null()},
		{NewNot(null), Null()},
		{NewNot(tru), Bool(false)},
	}
	for _, tc := range cases {
		mustBind(t, tc.e, exprTestSchema)
		got := mustEval(t, tc.e, exprTuple(0, 0, "", false))
		if got != tc.want {
			t.Errorf("%s = %v, want %v", tc.e, got, tc.want)
		}
	}
}

func TestComparisonNullPropagation(t *testing.T) {
	e := NewBinary(OpEq, NewConst(Null()), NewConst(Int(1)))
	mustBind(t, e, exprTestSchema)
	if got := mustEval(t, e, exprTuple(0, 0, "", false)); !got.IsNull() {
		t.Errorf("NULL = 1 evaluated to %v, want NULL", got)
	}
}

func TestNegAndNot(t *testing.T) {
	n := NewNeg(NewCol("mote"))
	mustBind(t, n, exprTestSchema)
	if v := mustEval(t, n, exprTuple(0, 7, "", false)); v != Int(-7) {
		t.Errorf("-mote = %v", v)
	}
	if _, err := NewNeg(NewCol("room")).Bind(exprTestSchema); err == nil {
		t.Error("-string should fail to bind")
	}
	if _, err := NewNot(NewCol("mote")).Bind(exprTestSchema); err == nil {
		t.Error("NOT int should fail to bind")
	}
}

func TestIsNull(t *testing.T) {
	e := &IsNullExpr{X: NewCol("room")}
	mustBind(t, e, exprTestSchema)
	withNull := NewTuple(time.Unix(0, 0), Float(1), Int(1), Null(), Bool(true))
	if v := mustEval(t, e, withNull); !v.Truthy() {
		t.Error("NULL IS NULL should be true")
	}
	if v := mustEval(t, e, exprTuple(1, 1, "lab", true)); v.Truthy() {
		t.Error("'lab' IS NULL should be false")
	}
	neg := &IsNullExpr{X: NewCol("room"), Negate: true}
	mustBind(t, neg, exprTestSchema)
	if v := mustEval(t, neg, exprTuple(1, 1, "lab", true)); !v.Truthy() {
		t.Error("'lab' IS NOT NULL should be true")
	}
}

func TestScalarFunctions(t *testing.T) {
	abs := NewCall("abs", NewNeg(NewCol("mote")))
	if k := mustBind(t, abs, exprTestSchema); k != KindInt {
		t.Errorf("abs(int) kind = %v", k)
	}
	if v := mustEval(t, abs, exprTuple(0, 5, "", false)); v != Int(5) {
		t.Errorf("abs(-5) = %v", v)
	}
	sqrt := NewCall("sqrt", NewConst(Float(9)))
	mustBind(t, sqrt, exprTestSchema)
	if v := mustEval(t, sqrt, exprTuple(0, 0, "", false)); v != Float(3) {
		t.Errorf("sqrt(9) = %v", v)
	}
	coalesce := NewCall("coalesce", NewConst(Null()), NewConst(Int(4)))
	mustBind(t, coalesce, exprTestSchema)
	if v := mustEval(t, coalesce, exprTuple(0, 0, "", false)); v != Int(4) {
		t.Errorf("coalesce(NULL,4) = %v", v)
	}
}

func TestScalarFunctionErrors(t *testing.T) {
	if _, err := NewCall("no_such_fn").Bind(exprTestSchema); err == nil {
		t.Error("unknown function: want bind error")
	}
	if _, err := NewCall("abs").Bind(exprTestSchema); err == nil {
		t.Error("abs() arity: want bind error")
	}
	if _, err := NewCall("abs", NewCol("room")).Bind(exprTestSchema); err == nil {
		t.Error("abs(string): want bind error")
	}
}

func TestRegisterScalarFunc(t *testing.T) {
	RegisterScalarFunc(&ScalarFunc{
		Name: "test_double", MinArgs: 1, MaxArgs: 1,
		Result: func(args []Kind) (Kind, error) { return KindFloat, nil },
		Call: func(args []Value) (Value, error) {
			if args[0].IsNull() {
				return Null(), nil
			}
			return Float(2 * args[0].AsFloat()), nil
		},
	})
	e := NewCall("TEST_DOUBLE", NewCol("temp"))
	mustBind(t, e, exprTestSchema)
	if v := mustEval(t, e, exprTuple(10, 0, "", false)); v != Float(20) {
		t.Errorf("test_double(10) = %v", v)
	}
}

func TestExprString(t *testing.T) {
	e := NewBinary(OpAnd,
		NewBinary(OpGt, NewCol("temp"), NewConst(Int(50))),
		NewNot(NewCol("ok")))
	s := e.String()
	for _, want := range []string{"temp", ">", "50", "AND", "NOT", "ok"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
	if got := NewConst(String("hi")).String(); got != "'hi'" {
		t.Errorf("string const rendered %q", got)
	}
}
