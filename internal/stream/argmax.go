package stream

import (
	"fmt"
	"sort"
	"time"
)

// ArgMax resolves contention between groups: within each punctuation epoch,
// for every distinct partition key (e.g. tag_id) it emits only the tuple
// whose Score is maximal, attributing the key to the "winning" choice
// column values (e.g. spatial_granule).
//
// This operator is the planner's rewrite target for the paper's Query 3
//
//	HAVING count(*) >= ALL (SELECT count(*) ... WHERE same tag GROUP BY spatial_granule)
//
// and implements the Arbitrate stage's de-duplication: a tag read by two
// shelves' readers is attributed to the shelf that read it the most. Ties
// are broken by the Tie comparator; the paper (§4.3.1) breaks ties toward
// the weaker antenna as a crude calibration.
type ArgMax struct {
	// PartitionBy identifies the contended entity (tag_id).
	PartitionBy []NamedExpr
	// ChooseBy identifies the competing claimant (spatial_granule).
	ChooseBy []NamedExpr
	// Score is the quantity maximised (count of reads).
	Score NamedExpr
	// Tie returns true when candidate a is preferred over b given equal
	// scores. If nil, the candidate with lexicographically smaller
	// ChooseBy values wins, which keeps output deterministic.
	Tie func(a, b Tuple) bool
	// EmitAllTies, when set, emits every candidate achieving the maximal
	// score instead of a single winner — the literal `>= ALL` semantics of
	// Query 3 before tie-breaking calibration is applied.
	EmitAllTies bool

	in, out *Schema
	nChoose int
	best    map[GroupKey][]candidate
	order   []GroupKey // insertion order of partitions, for determinism

	partFns    []EvalFunc
	chooseFns  []EvalFunc
	scoreFn    EvalFunc
	partBuf    []Value
	chooseBuf  []Value
	rowScratch []Value
}

type candidate struct {
	score  Value
	choose []Value
	out    []Value
}

// Open implements Operator.
func (a *ArgMax) Open(in *Schema) error {
	a.in = in
	if len(a.PartitionBy) == 0 {
		return fmt.Errorf("stream: argmax: PartitionBy must not be empty")
	}
	if len(a.ChooseBy) == 0 {
		return fmt.Errorf("stream: argmax: ChooseBy must not be empty")
	}
	fields := make([]Field, 0, len(a.ChooseBy)+len(a.PartitionBy)+1)
	a.chooseFns = make([]EvalFunc, len(a.ChooseBy))
	for i, ne := range a.ChooseBy {
		k, err := ne.Expr.Bind(in)
		if err != nil {
			return fmt.Errorf("stream: argmax choose %q: %w", ne.Name, err)
		}
		fields = append(fields, Field{Name: ne.Name, Kind: k})
		a.chooseFns[i] = CompileExpr(ne.Expr)
	}
	a.partFns = make([]EvalFunc, len(a.PartitionBy))
	for i, ne := range a.PartitionBy {
		k, err := ne.Expr.Bind(in)
		if err != nil {
			return fmt.Errorf("stream: argmax partition %q: %w", ne.Name, err)
		}
		fields = append(fields, Field{Name: ne.Name, Kind: k})
		a.partFns[i] = CompileExpr(ne.Expr)
	}
	k, err := a.Score.Expr.Bind(in)
	if err != nil {
		return fmt.Errorf("stream: argmax score %q: %w", a.Score.Name, err)
	}
	if !kindNumericOrNull(k) {
		return fmt.Errorf("stream: argmax score %q: kind %s, want numeric", a.Score.Name, k)
	}
	fields = append(fields, Field{Name: a.Score.Name, Kind: k})
	a.scoreFn = CompileExpr(a.Score.Expr)
	out, err := NewSchema(fields...)
	if err != nil {
		return fmt.Errorf("stream: argmax: %w", err)
	}
	a.out = out
	a.nChoose = len(a.ChooseBy)
	a.best = make(map[GroupKey][]candidate)
	return nil
}

// Schema implements Operator.
func (a *ArgMax) Schema() *Schema { return a.out }

// Process implements Operator. Partition, choose, and score expressions
// are evaluated into reused scratch buffers; a candidate's value slice is
// only allocated when it is actually retained or tie-compared.
func (a *ArgMax) Process(t Tuple) ([]Tuple, error) {
	a.partBuf = a.partBuf[:0]
	for i, ne := range a.PartitionBy {
		v, err := a.partFns[i](t)
		if err != nil {
			return nil, fmt.Errorf("stream: argmax partition %q: %w", ne.Name, err)
		}
		a.partBuf = append(a.partBuf, v)
	}
	a.chooseBuf = a.chooseBuf[:0]
	for i, ne := range a.ChooseBy {
		v, err := a.chooseFns[i](t)
		if err != nil {
			return nil, fmt.Errorf("stream: argmax choose %q: %w", ne.Name, err)
		}
		a.chooseBuf = append(a.chooseBuf, v)
	}
	score, err := a.scoreFn(t)
	if err != nil {
		return nil, fmt.Errorf("stream: argmax score %q: %w", a.Score.Name, err)
	}
	if score.IsNull() {
		return nil, nil // a NULL score never wins
	}

	key := MakeGroupKey(a.partBuf...)
	cur, seen := a.best[key]
	if !seen {
		a.order = append(a.order, key)
		a.best[key] = []candidate{a.newCandidate(score)}
		return nil, nil
	}
	c, err := score.Compare(cur[0].score)
	if err != nil {
		return nil, fmt.Errorf("stream: argmax: %w", err)
	}
	switch {
	case c > 0:
		a.best[key] = append(cur[:0], a.newCandidate(score))
	case c == 0:
		if a.EmitAllTies {
			a.best[key] = append(cur, a.newCandidate(score))
		} else if cand := a.newCandidate(score); a.prefer(cand, cur[0]) {
			cur[0] = cand
		}
	}
	return nil, nil
}

// newCandidate clones the scratch buffers into an owned candidate. The
// choose slice aliases the output slice's prefix, saving an allocation.
func (a *ArgMax) newCandidate(score Value) candidate {
	out := make([]Value, 0, a.out.Len())
	out = append(out, a.chooseBuf...)
	out = append(out, a.partBuf...)
	out = append(out, score)
	return candidate{score: score, choose: out[:a.nChoose:a.nChoose], out: out}
}

// prefer applies the tie-break between two equal-score candidates.
func (a *ArgMax) prefer(x, y candidate) bool {
	if a.Tie != nil {
		return a.Tie(Tuple{Values: x.out}, Tuple{Values: y.out})
	}
	return lessValues(x.choose, y.choose)
}

// Advance implements Operator.
func (a *ArgMax) Advance(now time.Time) ([]Tuple, error) {
	if len(a.best) == 0 {
		return nil, nil
	}
	out := make([]Tuple, 0, len(a.best))
	for _, key := range a.order {
		cands := a.best[key]
		if a.EmitAllTies {
			sort.Slice(cands, func(i, j int) bool { return lessValues(cands[i].choose, cands[j].choose) })
		}
		for _, c := range cands {
			out = append(out, Tuple{Ts: now, Values: c.out})
		}
	}
	a.best = make(map[GroupKey][]candidate)
	a.order = a.order[:0]
	return out, nil
}

// Close implements Operator.
func (a *ArgMax) Close() ([]Tuple, error) {
	// Remaining candidates are flushed with their partition's last
	// observed semantics; use a zero time marker replaced by callers if
	// needed. In practice the runner always punctuates before Close.
	if len(a.best) == 0 {
		return nil, nil
	}
	return a.Advance(time.Time{})
}

// Distinct suppresses duplicate tuples (by the On expressions, or whole
// tuple if empty) within each punctuation epoch.
type Distinct struct {
	On []NamedExpr

	in      *Schema
	seen    map[GroupKey]struct{}
	fns     []EvalFunc
	vals    []Value
	scratch []Value
	keep    []bool
	obatch  *Batch
}

// Open implements Operator.
func (d *Distinct) Open(in *Schema) error {
	d.in = in
	if len(d.On) == 0 {
		for _, f := range in.Fields() {
			d.On = append(d.On, NamedExpr{Name: f.Name, Expr: NewCol(f.Name)})
		}
	}
	d.fns = make([]EvalFunc, len(d.On))
	for i, ne := range d.On {
		if _, err := ne.Expr.Bind(in); err != nil {
			return fmt.Errorf("stream: distinct %q: %w", ne.Name, err)
		}
		d.fns[i] = CompileExpr(ne.Expr)
	}
	d.seen = make(map[GroupKey]struct{})
	return nil
}

// Schema implements Operator.
func (d *Distinct) Schema() *Schema { return d.in }

// Process implements Operator.
func (d *Distinct) Process(t Tuple) ([]Tuple, error) {
	d.vals = d.vals[:0]
	for i, fn := range d.fns {
		v, err := fn(t)
		if err != nil {
			return nil, fmt.Errorf("stream: distinct %q: %w", d.On[i].Name, err)
		}
		d.vals = append(d.vals, v)
	}
	key := MakeGroupKey(d.vals...)
	if _, dup := d.seen[key]; dup {
		return nil, nil
	}
	d.seen[key] = struct{}{}
	return []Tuple{t}, nil
}

// Advance implements Operator.
func (d *Distinct) Advance(time.Time) ([]Tuple, error) {
	clear(d.seen)
	return nil, nil
}

// Close implements Operator.
func (d *Distinct) Close() ([]Tuple, error) { return nil, nil }
