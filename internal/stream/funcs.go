package stream

import (
	"fmt"
	"math"
)

// Additional built-in scalar functions: the numeric conversions and
// clamps that receptor calibration and unit conversion need (the paper's
// Point-stage "corrections, transformation" — e.g. raw ADC counts to
// degrees Celsius).
func init() {
	unary := func(name string, f func(float64) float64) {
		RegisterScalarFunc(&ScalarFunc{
			Name: name, MinArgs: 1, MaxArgs: 1,
			Result: func(args []Kind) (Kind, error) {
				if !kindNumericOrNull(args[0]) {
					return KindNull, fmt.Errorf("stream: %s(%s): argument must be numeric", name, args[0])
				}
				return KindFloat, nil
			},
			Call: func(args []Value) (Value, error) {
				if args[0].IsNull() {
					return Null(), nil
				}
				return Float(f(args[0].AsFloat())), nil
			},
		})
	}
	unary("round", math.Round)
	unary("floor", math.Floor)
	unary("ceil", math.Ceil)

	extremum := func(name string, better func(cmp int) bool) {
		RegisterScalarFunc(&ScalarFunc{
			Name: name, MinArgs: 2, MaxArgs: -1,
			Result: func(args []Kind) (Kind, error) {
				out := KindNull
				for _, k := range args {
					if k == KindNull {
						continue
					}
					switch {
					case out == KindNull:
						out = k
					case out == k:
					case out.Numeric() && k.Numeric():
						out = KindFloat
					default:
						return KindNull, fmt.Errorf("stream: %s: mixed kinds %s and %s", name, out, k)
					}
				}
				return out, nil
			},
			Call: func(args []Value) (Value, error) {
				// SQL semantics: NULL if any argument is NULL.
				best := Null()
				for _, v := range args {
					if v.IsNull() {
						return Null(), nil
					}
					if best.IsNull() {
						best = v
						continue
					}
					c, err := v.Compare(best)
					if err != nil {
						return Null(), err
					}
					if better(c) {
						best = v
					}
				}
				return best, nil
			},
		})
	}
	extremum("least", func(c int) bool { return c < 0 })
	extremum("greatest", func(c int) bool { return c > 0 })

	RegisterScalarFunc(&ScalarFunc{
		Name: "clamp", MinArgs: 3, MaxArgs: 3,
		Result: func(args []Kind) (Kind, error) {
			for _, k := range args {
				if !kindNumericOrNull(k) {
					return KindNull, fmt.Errorf("stream: clamp(%s): arguments must be numeric", k)
				}
			}
			return KindFloat, nil
		},
		Call: func(args []Value) (Value, error) {
			for _, v := range args {
				if v.IsNull() {
					return Null(), nil
				}
			}
			x, lo, hi := args[0].AsFloat(), args[1].AsFloat(), args[2].AsFloat()
			if lo > hi {
				return Null(), fmt.Errorf("stream: clamp: lo %g > hi %g", lo, hi)
			}
			return Float(math.Min(math.Max(x, lo), hi)), nil
		},
	})
}
