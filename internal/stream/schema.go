package stream

import (
	"fmt"
	"strings"
	"time"
)

// Field is one named, typed column of a schema.
type Field struct {
	Name string
	Kind Kind
}

// Schema describes the columns of a stream. Schemas are immutable after
// construction; operators share pointers to them freely.
type Schema struct {
	fields []Field
	index  map[string]int
}

// NewSchema builds a schema from the given fields. Field names are
// case-insensitive and must be unique.
func NewSchema(fields ...Field) (*Schema, error) {
	s := &Schema{
		fields: append([]Field(nil), fields...),
		index:  make(map[string]int, len(fields)),
	}
	for i, f := range fields {
		key := strings.ToLower(f.Name)
		if key == "" {
			return nil, fmt.Errorf("stream: schema field %d has empty name", i)
		}
		if _, dup := s.index[key]; dup {
			return nil, fmt.Errorf("stream: duplicate schema field %q", f.Name)
		}
		s.index[key] = i
	}
	return s, nil
}

// MustSchema is NewSchema that panics on error, for static schemas.
func MustSchema(fields ...Field) *Schema {
	s, err := NewSchema(fields...)
	if err != nil {
		panic(err)
	}
	return s
}

// Len returns the number of fields.
func (s *Schema) Len() int { return len(s.fields) }

// Field returns the i-th field.
func (s *Schema) Field(i int) Field { return s.fields[i] }

// Fields returns a copy of the field list.
func (s *Schema) Fields() []Field { return append([]Field(nil), s.fields...) }

// Index returns the position of the named field (case-insensitive) and
// whether it exists.
func (s *Schema) Index(name string) (int, bool) {
	i, ok := s.index[strings.ToLower(name)]
	return i, ok
}

// MustIndex is Index that panics when the field is missing.
func (s *Schema) MustIndex(name string) int {
	i, ok := s.Index(name)
	if !ok {
		panic(fmt.Sprintf("stream: schema has no field %q (have %s)", name, s))
	}
	return i
}

// Equal reports whether two schemas have identical field names (modulo
// case) and kinds in the same order.
func (s *Schema) Equal(o *Schema) bool {
	if s == o {
		return true
	}
	if s == nil || o == nil || len(s.fields) != len(o.fields) {
		return false
	}
	for i, f := range s.fields {
		g := o.fields[i]
		if !strings.EqualFold(f.Name, g.Name) || f.Kind != g.Kind {
			return false
		}
	}
	return true
}

// Concat returns a new schema with o's fields appended to s's. Duplicate
// names are an error.
func (s *Schema) Concat(o *Schema) (*Schema, error) {
	return NewSchema(append(s.Fields(), o.Fields()...)...)
}

// String renders the schema as "(name kind, ...)".
func (s *Schema) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, f := range s.fields {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s %s", f.Name, f.Kind)
	}
	b.WriteByte(')')
	return b.String()
}

// Tuple is one timestamped element of a stream. Ts is the tuple's logical
// time (the epoch at which the receptor produced it); Values are positional
// per the owning stream's schema.
type Tuple struct {
	Ts     time.Time
	Values []Value
}

// NewTuple constructs a tuple.
func NewTuple(ts time.Time, values ...Value) Tuple {
	return Tuple{Ts: ts, Values: values}
}

// Clone returns a deep copy of the tuple (values are immutable; only the
// slice header needs copying).
func (t Tuple) Clone() Tuple {
	return Tuple{Ts: t.Ts, Values: append([]Value(nil), t.Values...)}
}

// String renders the tuple for debugging: "ts|v1,v2,...".
func (t Tuple) String() string {
	var b strings.Builder
	b.WriteString(t.Ts.Format("15:04:05.000"))
	b.WriteByte('|')
	for i, v := range t.Values {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(v.String())
	}
	return b.String()
}

// CheckTuple validates that a tuple matches a schema: same arity and each
// value NULL or of the field's kind (ints are accepted where floats are
// declared).
func CheckTuple(s *Schema, t Tuple) error {
	if len(t.Values) != s.Len() {
		return fmt.Errorf("stream: tuple arity %d != schema arity %d %s", len(t.Values), s.Len(), s)
	}
	for i, v := range t.Values {
		f := s.Field(i)
		if v.IsNull() || v.Kind() == f.Kind {
			continue
		}
		if f.Kind == KindFloat && v.Kind() == KindInt {
			continue
		}
		return fmt.Errorf("stream: field %q: value kind %s != schema kind %s", f.Name, v.Kind(), f.Kind)
	}
	return nil
}

// GroupKey is a comparable composite key built from up to four values,
// used for GROUP BY and DISTINCT. Grouping on more than four expressions
// falls back to a string encoding.
type GroupKey struct {
	n          int
	a, b, c, d Value
	rest       string
}

// MakeGroupKey builds a comparable key from the given values.
func MakeGroupKey(vals ...Value) GroupKey {
	k := GroupKey{n: len(vals)}
	switch {
	case len(vals) > 3:
		k.a, k.b, k.c = vals[0], vals[1], vals[2]
		if len(vals) == 4 {
			k.d = vals[3]
			return k
		}
		var sb strings.Builder
		for _, v := range vals[3:] {
			sb.WriteString(v.Kind().String())
			sb.WriteByte(':')
			sb.WriteString(v.String())
			sb.WriteByte('\x00')
		}
		k.rest = sb.String()
	case len(vals) == 3:
		k.a, k.b, k.c = vals[0], vals[1], vals[2]
	case len(vals) == 2:
		k.a, k.b = vals[0], vals[1]
	case len(vals) == 1:
		k.a = vals[0]
	}
	return k
}
