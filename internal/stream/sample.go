package stream

import (
	"fmt"
	"math/rand"
	"time"
)

// Sample passes a subset of tuples through — load shedding for the Point
// stage, which the paper notes "may also be used to improve performance
// through early elimination of data" (§3.2). Two modes:
//
//   - EveryN > 0: deterministic systematic sampling (every N-th tuple,
//     starting with the first).
//   - Fraction in (0, 1): Bernoulli sampling with a seeded generator, so
//     runs are reproducible.
//
// Exactly one mode must be configured.
type Sample struct {
	EveryN   int
	Fraction float64
	Seed     int64

	in     *Schema
	count  int64
	rng    *rand.Rand
	keep   []bool
	obatch *Batch
}

// Open implements Operator.
func (s *Sample) Open(in *Schema) error {
	switch {
	case s.EveryN > 0 && s.Fraction != 0:
		return fmt.Errorf("stream: sample: set EveryN or Fraction, not both")
	case s.EveryN > 0:
	case s.Fraction > 0 && s.Fraction < 1:
		s.rng = rand.New(rand.NewSource(s.Seed))
	default:
		return fmt.Errorf("stream: sample: need EveryN > 0 or Fraction in (0,1)")
	}
	s.in = in
	return nil
}

// Schema implements Operator.
func (s *Sample) Schema() *Schema { return s.in }

// Process implements Operator.
func (s *Sample) Process(t Tuple) ([]Tuple, error) {
	if s.EveryN > 0 {
		keep := s.count%int64(s.EveryN) == 0
		s.count++
		if keep {
			return []Tuple{t}, nil
		}
		return nil, nil
	}
	if s.rng.Float64() < s.Fraction {
		return []Tuple{t}, nil
	}
	return nil, nil
}

// Advance implements Operator.
func (s *Sample) Advance(time.Time) ([]Tuple, error) { return nil, nil }

// Close implements Operator.
func (s *Sample) Close() ([]Tuple, error) { return nil, nil }
