package stream

import (
	"fmt"
	"time"
)

// Column is one typed column of a Batch: values are stored unboxed in the
// slice matching the column's established kind, with NULLs tracked in a
// validity bitmap. A column's kind is dynamic — it is fixed by the first
// non-NULL value appended, not by the schema — so an int-valued column
// under a float-declared field stays columnar.
type Column struct {
	// Kind is the value kind of the non-NULL entries; KindNull until the
	// first non-NULL value is appended.
	Kind   Kind
	Bools  []bool
	Ints   []int64
	Floats []float64
	Strs   []string
	Times  []time.Time
	// valid is the validity bitmap (bit i set = row i non-NULL). nil means
	// every row so far is valid.
	valid []uint64
	n     int
}

func (c *Column) reset() {
	c.Kind = KindNull
	c.Bools = c.Bools[:0]
	c.Ints = c.Ints[:0]
	c.Floats = c.Floats[:0]
	c.Strs = c.Strs[:0]
	c.Times = c.Times[:0]
	c.valid = c.valid[:0]
	c.n = 0
}

// markNull records validity for the next row (index c.n before the typed
// append). The bitmap is materialized lazily on the first NULL.
func (c *Column) mark(isNull bool) {
	if c.valid == nil {
		if !isNull {
			c.n++
			return
		}
		words := c.n/64 + 1
		c.valid = append(c.valid[:0], make([]uint64, words)...)
		for i := 0; i < c.n; i++ {
			c.valid[i/64] |= 1 << (uint(i) % 64)
		}
	}
	for len(c.valid) <= c.n/64 {
		c.valid = append(c.valid, 0)
	}
	if !isNull {
		c.valid[c.n/64] |= 1 << (uint(c.n) % 64)
	}
	c.n++
}

// noNulls reports that every row appended so far is non-NULL (no
// validity bitmap was ever materialized) — the precondition for kernels
// that read the typed slice directly.
func (c *Column) noNulls() bool { return c.valid == nil && c.Kind != KindNull }

// IsNull reports whether row i of the column is NULL.
func (c *Column) IsNull(i int) bool {
	if c.valid == nil {
		return c.Kind == KindNull
	}
	return c.valid[i/64]&(1<<(uint(i)%64)) == 0
}

// append adds v to the column; it reports false when v's kind conflicts
// with the column's established kind (the batch must then be abandoned
// and the tuple path used instead).
func (c *Column) append(v Value) bool {
	if v.kind == KindNull {
		if c.Kind == KindNull && c.valid == nil {
			// all-NULL column so far: no typed storage needed
			c.n++
			return true
		}
		c.mark(true)
		c.appendZero()
		return true
	}
	if c.Kind == KindNull {
		if c.n > 0 && c.valid == nil {
			// first rows were the all-NULL fast path: build the bitmap
			n := c.n
			c.n = 0
			for i := 0; i < n; i++ {
				c.mark(true)
			}
		}
		c.Kind = v.kind
		for i := 0; i < c.n; i++ {
			c.appendZero()
		}
	} else if c.Kind != v.kind {
		return false
	}
	c.mark(false)
	switch v.kind {
	case KindBool:
		c.Bools = append(c.Bools, v.i != 0)
	case KindInt:
		c.Ints = append(c.Ints, v.i)
	case KindFloat:
		c.Floats = append(c.Floats, v.f)
	case KindString:
		c.Strs = append(c.Strs, v.s)
	case KindTime:
		c.Times = append(c.Times, v.t)
	}
	return true
}

func (c *Column) appendZero() {
	switch c.Kind {
	case KindBool:
		c.Bools = append(c.Bools, false)
	case KindInt:
		c.Ints = append(c.Ints, 0)
	case KindFloat:
		c.Floats = append(c.Floats, 0)
	case KindString:
		c.Strs = append(c.Strs, "")
	case KindTime:
		c.Times = append(c.Times, time.Time{})
	}
}

// Value reboxes row i of the column.
func (c *Column) Value(i int) Value {
	if c.IsNull(i) {
		return Value{}
	}
	switch c.Kind {
	case KindBool:
		v := Value{kind: KindBool}
		if c.Bools[i] {
			v.i = 1
		}
		return v
	case KindInt:
		return Value{kind: KindInt, i: c.Ints[i]}
	case KindFloat:
		return Value{kind: KindFloat, f: c.Floats[i]}
	case KindString:
		return Value{kind: KindString, s: c.Strs[i]}
	case KindTime:
		return Value{kind: KindTime, t: c.Times[i]}
	}
	return Value{}
}

// Batch is a column-oriented run of tuples sharing one schema: per-column
// typed slices plus a shared timestamp column. Operators exchange batches
// on the hot path and fall back to the tuple representation whenever a
// value's dynamic kind breaks column homogeneity.
//
// A batch returned by an operator is owned by that operator and is only
// valid until its next invocation; consumers must copy (CopyRow, Tuples)
// anything they retain.
type Batch struct {
	schema *Schema
	ts     []time.Time
	cols   []Column
	n      int
}

// NewBatch returns an empty batch for the given schema.
func NewBatch(s *Schema) *Batch {
	b := &Batch{}
	b.Reset(s)
	return b
}

// Reset clears the batch for reuse under the given schema, retaining the
// column storage.
func (b *Batch) Reset(s *Schema) {
	b.schema = s
	b.ts = b.ts[:0]
	if cap(b.cols) < s.Len() {
		b.cols = make([]Column, s.Len())
	} else {
		b.cols = b.cols[:s.Len()]
	}
	for i := range b.cols {
		b.cols[i].reset()
	}
	b.n = 0
}

// Schema reports the batch's schema.
func (b *Batch) Schema() *Schema { return b.schema }

// Len reports the number of rows.
func (b *Batch) Len() int { return b.n }

// RowTs reports row i's timestamp.
func (b *Batch) RowTs(i int) time.Time { return b.ts[i] }

// Col returns the i-th column for kernel-style access.
func (b *Batch) Col(i int) *Column { return &b.cols[i] }

// Append adds one tuple as a row. It reports false — leaving the batch
// unusable until the next Reset — when the tuple's arity doesn't match or
// a value's kind conflicts with its column's established kind.
func (b *Batch) Append(t Tuple) bool {
	return b.AppendPrefixed(nil, t)
}

// AppendPrefixed adds a row formed by prefix followed by the tuple's
// values (the processor's annotation columns ride in prefix without an
// intermediate tuple allocation). The append is atomic: on a kind
// conflict it returns false with the batch unmodified, so callers can
// fall back to the tuple path mid-batch.
func (b *Batch) AppendPrefixed(prefix []Value, t Tuple) bool {
	if len(prefix)+len(t.Values) != len(b.cols) {
		return false
	}
	for i, v := range prefix {
		if !b.cols[i].kindOK(v) {
			return false
		}
	}
	off := len(prefix)
	for i, v := range t.Values {
		if !b.cols[off+i].kindOK(v) {
			return false
		}
	}
	for i, v := range prefix {
		b.cols[i].append(v)
	}
	for i, v := range t.Values {
		b.cols[off+i].append(v)
	}
	b.ts = append(b.ts, t.Ts)
	b.n++
	return true
}

// kindOK reports whether v can be appended without breaking column
// homogeneity.
func (c *Column) kindOK(v Value) bool {
	return v.kind == KindNull || c.Kind == KindNull || c.Kind == v.kind
}

// appendFast appends a non-NULL v of the column's established kind with
// no validity bitmap in play; it reports false to route the slow cases
// (NULLs, kind establishment, bitmap maintenance) to append.
func (c *Column) appendFast(v Value) bool {
	if v.kind != c.Kind || c.valid != nil {
		return false
	}
	switch v.kind {
	case KindBool:
		c.Bools = append(c.Bools, v.i != 0)
	case KindInt:
		c.Ints = append(c.Ints, v.i)
	case KindFloat:
		c.Floats = append(c.Floats, v.f)
	case KindString:
		c.Strs = append(c.Strs, v.s)
	case KindTime:
		c.Times = append(c.Times, v.t)
	default:
		return false
	}
	c.n++
	return true
}

// AppendRun appends every tuple as a row under one shared prefix — the
// leg node's whole-epoch fill. Kind compatibility is verified up front
// (the constant prefix once, then each value column simulating kind
// establishment in row order), so on false the batch is unmodified and
// the caller can fall back to the tuple path. The fill itself runs
// column-major.
func (b *Batch) AppendRun(prefix []Value, ts []Tuple) bool {
	if len(ts) == 0 {
		return true
	}
	off := len(prefix)
	for i := range ts {
		if off+len(ts[i].Values) != len(b.cols) {
			return false
		}
	}
	for j := range prefix {
		if !b.cols[j].kindOK(prefix[j]) {
			return false
		}
	}
	for j := off; j < len(b.cols); j++ {
		ekind := b.cols[j].Kind
		for i := range ts {
			k := ts[i].Values[j-off].kind
			if k == KindNull {
				continue
			}
			if ekind == KindNull {
				ekind = k
			} else if ekind != k {
				return false
			}
		}
	}
	n := len(ts)
	for j := range prefix {
		c := &b.cols[j]
		for i := 0; i < n; i++ {
			if !c.appendFast(prefix[j]) {
				c.append(prefix[j])
			}
		}
	}
	for j := off; j < len(b.cols); j++ {
		c := &b.cols[j]
		for i := range ts {
			v := ts[i].Values[j-off]
			if !c.appendFast(v) {
				c.append(v)
			}
		}
	}
	for i := range ts {
		b.ts = append(b.ts, ts[i].Ts)
	}
	b.n += n
	return true
}

// AppendValues adds a row from a timestamp and value slice. Same failure
// contract as Append.
func (b *Batch) AppendValues(ts time.Time, vals []Value) bool {
	return b.AppendPrefixed(vals, Tuple{Ts: ts})
}

// AppendFrom copies row i of src (which must have the same arity) into b.
func (b *Batch) AppendFrom(src *Batch, i int) bool {
	if len(src.cols) != len(b.cols) {
		return false
	}
	for j := range src.cols {
		if !b.cols[j].append(src.cols[j].Value(i)) {
			return false
		}
	}
	b.ts = append(b.ts, src.ts[i])
	b.n++
	return true
}

// Value reboxes the value at (row, col).
func (b *Batch) Value(row, col int) Value { return b.cols[col].Value(row) }

// CopyRow appends row i's values to buf and returns it — the scratch-
// tuple bridge by which row-wise operators consume a batch without
// allocating.
func (b *Batch) CopyRow(i int, buf []Value) []Value {
	for j := range b.cols {
		buf = append(buf, b.cols[j].Value(i))
	}
	return buf
}

// Tuples materializes the batch as freshly allocated tuples, safe to
// retain.
func (b *Batch) Tuples() []Tuple {
	out := make([]Tuple, b.n)
	vals := make([]Value, 0, b.n*len(b.cols))
	for i := 0; i < b.n; i++ {
		start := len(vals)
		vals = b.CopyRow(i, vals)
		out[i] = Tuple{Ts: b.ts[i], Values: vals[start:len(vals):len(vals)]}
	}
	return out
}

// BuildBatch packs tuples into a fresh batch over the given schema; ok is
// false when the rows are not column-homogeneous (callers then keep the
// tuple path).
func BuildBatch(s *Schema, tuples []Tuple) (*Batch, bool) {
	b := NewBatch(s)
	for _, t := range tuples {
		if !b.Append(t) {
			return nil, false
		}
	}
	return b, true
}

// String renders a compact description for debugging.
func (b *Batch) String() string {
	return fmt.Sprintf("batch(%d rows, %d cols)", b.n, len(b.cols))
}
