package stream

import (
	"fmt"
	"math"
	"sort"
)

// AggFunc enumerates the built-in aggregate functions.
type AggFunc uint8

// Aggregate functions supported in windowed GROUP BY queries.
const (
	// AggCount counts rows (count(*)) or non-NULL argument values.
	AggCount AggFunc = iota
	// AggSum sums numeric argument values.
	AggSum
	// AggAvg averages numeric argument values.
	AggAvg
	// AggMin takes the minimum argument value.
	AggMin
	// AggMax takes the maximum argument value.
	AggMax
	// AggStdev computes the population standard deviation, as used by the
	// paper's Merge-stage outlier detection (Query 5).
	AggStdev
	// AggMedian computes the median — the robust alternative to the
	// avg±stdev rejection, immune to a single fail-dirty device in any
	// group of three or more.
	AggMedian
	// AggPercentile computes the AggSpec.Param quantile (nearest-rank);
	// median is percentile with Param 0.5.
	AggPercentile
)

// String returns the CQL name of the aggregate.
func (f AggFunc) String() string {
	switch f {
	case AggCount:
		return "count"
	case AggSum:
		return "sum"
	case AggAvg:
		return "avg"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	case AggStdev:
		return "stdev"
	case AggMedian:
		return "median"
	case AggPercentile:
		return "percentile"
	default:
		return fmt.Sprintf("agg(%d)", uint8(f))
	}
}

// LookupAggFunc maps a CQL function name to an AggFunc.
func LookupAggFunc(name string) (AggFunc, bool) {
	switch name {
	case "count":
		return AggCount, true
	case "sum":
		return AggSum, true
	case "avg":
		return AggAvg, true
	case "min":
		return AggMin, true
	case "max":
		return AggMax, true
	case "stdev", "stddev":
		return AggStdev, true
	case "median":
		return AggMedian, true
	case "percentile":
		return AggPercentile, true
	}
	return 0, false
}

// AggSpec describes one aggregate in a SELECT list.
type AggSpec struct {
	Name     string // output column name
	Func     AggFunc
	Arg      Expr // nil means count(*)
	Distinct bool
	// Param parameterises AggPercentile: the quantile in (0, 1).
	Param float64
}

// holistic reports whether the aggregate must buffer its input values.
func (a AggSpec) holistic() bool {
	return (a.Func == AggMedian || a.Func == AggPercentile) && !a.Distinct
}

// quantile returns the aggregate's target quantile.
func (a AggSpec) quantile() float64 {
	if a.Func == AggMedian {
		return 0.5
	}
	return a.Param
}

func (a AggSpec) String() string {
	arg := "*"
	if a.Arg != nil {
		arg = a.Arg.String()
	}
	if a.Distinct {
		return fmt.Sprintf("%s(distinct %s)", a.Func, arg)
	}
	return fmt.Sprintf("%s(%s)", a.Func, arg)
}

// resultKind computes the output kind of the aggregate given its bound
// argument kind (KindNull for count(*)).
func (a AggSpec) resultKind(argKind Kind) (Kind, error) {
	switch a.Func {
	case AggCount:
		return KindInt, nil
	case AggSum:
		if !kindNumericOrNull(argKind) {
			return KindNull, fmt.Errorf("stream: sum(%s): argument must be numeric", argKind)
		}
		if argKind == KindInt {
			return KindInt, nil
		}
		return KindFloat, nil
	case AggAvg, AggStdev, AggMedian, AggPercentile:
		if !kindNumericOrNull(argKind) {
			return KindNull, fmt.Errorf("stream: %s(%s): argument must be numeric", a.Func, argKind)
		}
		if a.Func == AggPercentile && (a.quantile() <= 0 || a.quantile() >= 1) {
			return KindNull, fmt.Errorf("stream: percentile parameter %v out of (0,1)", a.quantile())
		}
		return KindFloat, nil
	case AggMin, AggMax:
		return argKind, nil
	}
	return KindNull, fmt.Errorf("stream: unknown aggregate %v", a.Func)
}

// accum is a mergeable partial aggregate for one (group, pane) cell.
// Window results are produced by merging the accums of the panes that the
// window spans, which makes sliding-window aggregation O(panes) instead of
// O(tuples) per emission.
type accum struct {
	n        int64   // non-NULL observations (rows for count(*))
	sum      float64 // running sum (numeric aggregates)
	sumsq    float64 // running sum of squares (stdev)
	isum     int64   // integer sum (integer-typed sum)
	min, max Value
	distinct map[Value]int64 // value -> multiplicity, for DISTINCT
	vals     []float64       // buffered values, for holistic aggregates
	holistic bool
}

func newAccum(spec AggSpec) *accum {
	a := &accum{min: Null(), max: Null(), holistic: spec.holistic()}
	if spec.Distinct {
		a.distinct = make(map[Value]int64)
	}
	return a
}

// add folds one observation into the accumulator. v is Null only for
// count(*) (which counts every row).
func (a *accum) add(v Value, countStar bool) {
	if countStar {
		a.n++
		return
	}
	if v.IsNull() {
		return
	}
	a.n++
	if a.distinct != nil {
		a.distinct[v]++
	}
	if v.Kind().Numeric() {
		f := v.AsFloat()
		a.sum += f
		a.sumsq += f * f
		if v.Kind() == KindInt {
			a.isum += v.AsInt()
		}
		if a.holistic {
			a.vals = append(a.vals, f)
		}
	}
	if a.min.IsNull() {
		a.min, a.max = v, v
		return
	}
	if c, err := v.Compare(a.min); err == nil && c < 0 {
		a.min = v
	}
	if c, err := v.Compare(a.max); err == nil && c > 0 {
		a.max = v
	}
}

// merge folds another accumulator into a.
func (a *accum) merge(b *accum) {
	a.n += b.n
	a.sum += b.sum
	a.sumsq += b.sumsq
	a.isum += b.isum
	if a.min.IsNull() {
		a.min, a.max = b.min, b.max
	} else if !b.min.IsNull() {
		if c, err := b.min.Compare(a.min); err == nil && c < 0 {
			a.min = b.min
		}
		if c, err := b.max.Compare(a.max); err == nil && c > 0 {
			a.max = b.max
		}
	}
	if a.distinct != nil && b.distinct != nil {
		for v, n := range b.distinct {
			a.distinct[v] += n
		}
	}
	if a.holistic {
		a.vals = append(a.vals, b.vals...)
	}
}

// result finalises the accumulator into the aggregate's output value.
// Empty groups yield NULL for all aggregates except count, which yields 0.
func (a *accum) result(spec AggSpec, argKind Kind) Value {
	if spec.Distinct {
		switch spec.Func {
		case AggCount:
			return Int(int64(len(a.distinct)))
		case AggSum, AggAvg, AggStdev:
			var sum, sumsq float64
			var isum int64
			var n int64
			for v := range a.distinct {
				f := v.AsFloat()
				sum += f
				sumsq += f * f
				if v.Kind() == KindInt {
					isum += v.AsInt()
				}
				n++
			}
			return finishNumeric(spec, argKind, n, sum, sumsq, isum)
		case AggMedian, AggPercentile:
			vals := make([]float64, 0, len(a.distinct))
			for v := range a.distinct {
				vals = append(vals, v.AsFloat())
			}
			return quantileValue(vals, spec.quantile())
		}
		// min/max are unaffected by DISTINCT.
	}
	switch spec.Func {
	case AggCount:
		return Int(a.n)
	case AggMin:
		return a.min
	case AggMax:
		return a.max
	case AggMedian, AggPercentile:
		return quantileValue(append([]float64(nil), a.vals...), spec.quantile())
	default:
		return finishNumeric(spec, argKind, a.n, a.sum, a.sumsq, a.isum)
	}
}

// quantileValue computes the nearest-rank quantile, consuming vals.
func quantileValue(vals []float64, q float64) Value {
	if len(vals) == 0 {
		return Null()
	}
	sort.Float64s(vals)
	rank := int(math.Ceil(q * float64(len(vals))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(vals) {
		rank = len(vals)
	}
	return Float(vals[rank-1])
}

func finishNumeric(spec AggSpec, argKind Kind, n int64, sum, sumsq float64, isum int64) Value {
	if n == 0 {
		return Null()
	}
	switch spec.Func {
	case AggSum:
		if argKind == KindInt {
			return Int(isum)
		}
		return Float(sum)
	case AggAvg:
		return Float(sum / float64(n))
	case AggStdev:
		mean := sum / float64(n)
		variance := sumsq/float64(n) - mean*mean
		if variance < 0 { // numeric noise
			variance = 0
		}
		return Float(math.Sqrt(variance))
	}
	return Null()
}
