package stream

import (
	"fmt"
	"math"
	"sort"
)

// AggFunc enumerates the built-in aggregate functions.
type AggFunc uint8

// Aggregate functions supported in windowed GROUP BY queries.
const (
	// AggCount counts rows (count(*)) or non-NULL argument values.
	AggCount AggFunc = iota
	// AggSum sums numeric argument values.
	AggSum
	// AggAvg averages numeric argument values.
	AggAvg
	// AggMin takes the minimum argument value.
	AggMin
	// AggMax takes the maximum argument value.
	AggMax
	// AggStdev computes the population standard deviation, as used by the
	// paper's Merge-stage outlier detection (Query 5).
	AggStdev
	// AggMedian computes the median — the robust alternative to the
	// avg±stdev rejection, immune to a single fail-dirty device in any
	// group of three or more.
	AggMedian
	// AggPercentile computes the AggSpec.Param quantile (nearest-rank);
	// median is percentile with Param 0.5.
	AggPercentile
)

// String returns the CQL name of the aggregate.
func (f AggFunc) String() string {
	switch f {
	case AggCount:
		return "count"
	case AggSum:
		return "sum"
	case AggAvg:
		return "avg"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	case AggStdev:
		return "stdev"
	case AggMedian:
		return "median"
	case AggPercentile:
		return "percentile"
	default:
		return fmt.Sprintf("agg(%d)", uint8(f))
	}
}

// LookupAggFunc maps a CQL function name to an AggFunc.
func LookupAggFunc(name string) (AggFunc, bool) {
	switch name {
	case "count":
		return AggCount, true
	case "sum":
		return AggSum, true
	case "avg":
		return AggAvg, true
	case "min":
		return AggMin, true
	case "max":
		return AggMax, true
	case "stdev", "stddev":
		return AggStdev, true
	case "median":
		return AggMedian, true
	case "percentile":
		return AggPercentile, true
	}
	return 0, false
}

// AggSpec describes one aggregate in a SELECT list.
type AggSpec struct {
	Name     string // output column name
	Func     AggFunc
	Arg      Expr // nil means count(*)
	Distinct bool
	// Param parameterises AggPercentile: the quantile in (0, 1).
	Param float64
}

// holistic reports whether the aggregate must buffer its input values.
func (a AggSpec) holistic() bool {
	return (a.Func == AggMedian || a.Func == AggPercentile) && !a.Distinct
}

// quantile returns the aggregate's target quantile.
func (a AggSpec) quantile() float64 {
	if a.Func == AggMedian {
		return 0.5
	}
	return a.Param
}

func (a AggSpec) String() string {
	arg := "*"
	if a.Arg != nil {
		arg = a.Arg.String()
	}
	if a.Distinct {
		return fmt.Sprintf("%s(distinct %s)", a.Func, arg)
	}
	return fmt.Sprintf("%s(%s)", a.Func, arg)
}

// resultKind computes the output kind of the aggregate given its bound
// argument kind (KindNull for count(*)).
func (a AggSpec) resultKind(argKind Kind) (Kind, error) {
	switch a.Func {
	case AggCount:
		return KindInt, nil
	case AggSum:
		if !kindNumericOrNull(argKind) {
			return KindNull, fmt.Errorf("stream: sum(%s): argument must be numeric", argKind)
		}
		if argKind == KindInt {
			return KindInt, nil
		}
		return KindFloat, nil
	case AggAvg, AggStdev, AggMedian, AggPercentile:
		if !kindNumericOrNull(argKind) {
			return KindNull, fmt.Errorf("stream: %s(%s): argument must be numeric", a.Func, argKind)
		}
		if a.Func == AggPercentile && (a.quantile() <= 0 || a.quantile() >= 1) {
			return KindNull, fmt.Errorf("stream: percentile parameter %v out of (0,1)", a.quantile())
		}
		return KindFloat, nil
	case AggMin, AggMax:
		return argKind, nil
	}
	return KindNull, fmt.Errorf("stream: unknown aggregate %v", a.Func)
}

// moments is the mergeable first/second-moment state behind avg and
// stdev. Deviations are accumulated against a shift anchored at the
// minimum value seen so far, which serves two purposes:
//
//   - Numerical stability: the textbook sumsq/n − mean² finish
//     catastrophically cancels when the mean dwarfs the spread (e.g.
//     unix-timestamp-scale readings), silently clamping the variance to
//     zero. Deviations from the minimum stay on the scale of the data's
//     spread, so no cancellation occurs.
//   - Order canonicality: re-anchoring to the running minimum makes the
//     accumulated state a function of the value multiset, not of arrival
//     or pane-merge order, so the pane-merged and naively re-aggregated
//     window paths finish bit-identically whenever the underlying float
//     arithmetic is exact.
//
// Merging stays O(1): the higher-shifted side is rebased with the closed
// forms Σ(d+e) = Σd + n·e and Σ(d+e)² = Σd² + 2eΣd + n·e².
type moments struct {
	n     int64   // numeric observations folded in
	shift float64 // anchor: minimum value seen so far
	sumd  float64 // Σ (x − shift)
	sumd2 float64 // Σ (x − shift)²
}

func (m *moments) add(f float64) {
	if m.n == 0 {
		m.shift = f
	} else if f < m.shift {
		m.rebase(f)
	}
	d := f - m.shift
	m.sumd += d
	m.sumd2 += d * d
	m.n++
}

// rebase re-anchors the accumulated deviations to a lower shift s.
func (m *moments) rebase(s float64) {
	e := m.shift - s
	m.sumd2 += 2*e*m.sumd + float64(m.n)*e*e
	m.sumd += float64(m.n) * e
	m.shift = s
}

// merge folds b into m. b is passed by value: rebasing the copy leaves
// the caller's accumulator untouched.
func (m *moments) merge(b moments) {
	if b.n == 0 {
		return
	}
	if m.n == 0 {
		*m = b
		return
	}
	if b.shift < m.shift {
		m.rebase(b.shift)
	} else if b.shift > m.shift {
		b.rebase(m.shift)
	}
	m.sumd += b.sumd
	m.sumd2 += b.sumd2
	m.n += b.n
}

// mean returns the arithmetic mean; only valid for n > 0.
func (m *moments) mean() float64 { return m.shift + m.sumd/float64(m.n) }

// variance returns the population variance; only valid for n > 0. The
// clamp absorbs the last-ulp negative residue the subtraction can leave
// on constant inputs.
func (m *moments) variance() float64 {
	md := m.sumd / float64(m.n)
	v := m.sumd2/float64(m.n) - md*md
	if v < 0 {
		v = 0
	}
	return v
}

// accum is a mergeable partial aggregate for one (group, pane) cell.
// Window results are produced by merging the accums of the panes that the
// window spans, which makes sliding-window aggregation O(panes) instead of
// O(tuples) per emission.
type accum struct {
	n        int64   // non-NULL observations (rows for count(*))
	sum      float64 // running sum (integer/float sum)
	isum     int64   // integer sum (integer-typed sum)
	m        moments // shifted moments (avg, stdev)
	min, max Value
	distinct map[Value]int64 // value -> multiplicity, for DISTINCT
	vals     []float64       // buffered values, for holistic aggregates
	holistic bool
	// Per-observation maintenance is gated on what the aggregate's result
	// actually reads: an avg cell skips the min/max comparisons, a min
	// cell skips the moment updates, and so on. The untracked state stays
	// zero/NULL, which merge and result treat as empty.
	trackSum, trackMoments, trackMinMax bool
}

// mkAccum initialises an accumulator by value — cells hold accums inline
// so one cell costs one allocation regardless of aggregate count.
func mkAccum(spec AggSpec) accum {
	a := accum{min: Null(), max: Null(), holistic: spec.holistic()}
	switch spec.Func {
	case AggSum:
		a.trackSum = true
	case AggAvg, AggStdev:
		a.trackMoments = true
	case AggMin, AggMax:
		a.trackMinMax = true
	}
	if spec.Distinct {
		a.distinct = make(map[Value]int64)
	}
	return a
}

func newAccum(spec AggSpec) *accum {
	a := mkAccum(spec)
	return &a
}

// add folds one observation into the accumulator. v is Null only for
// count(*) (which counts every row).
func (a *accum) add(v Value, countStar bool) {
	if countStar {
		a.n++
		return
	}
	if v.IsNull() {
		return
	}
	a.n++
	if a.distinct != nil {
		a.distinct[v]++
	}
	if v.Kind().Numeric() {
		if a.trackSum {
			a.sum += v.AsFloat()
			if v.Kind() == KindInt {
				a.isum += v.AsInt()
			}
		}
		if a.trackMoments {
			a.m.add(v.AsFloat())
		}
		if a.holistic {
			a.vals = append(a.vals, v.AsFloat())
		}
	}
	if !a.trackMinMax {
		return
	}
	if a.min.IsNull() {
		a.min, a.max = v, v
		return
	}
	if c, err := v.Compare(a.min); err == nil && c < 0 {
		a.min = v
	}
	if c, err := v.Compare(a.max); err == nil && c > 0 {
		a.max = v
	}
}

// addFloat folds one non-NULL float observation without boxing it — the
// columnar kernel path, valid only for non-DISTINCT accumulators that do
// not track min/max (those need the Value form; the batch kernel gate
// checks). Identical to add(Float(f), false) for the eligible specs.
func (a *accum) addFloat(f float64) {
	a.n++
	if a.trackSum {
		a.sum += f
	}
	if a.trackMoments {
		a.m.add(f)
	}
	if a.holistic {
		a.vals = append(a.vals, f)
	}
}

// merge folds another accumulator into a.
func (a *accum) merge(b *accum) {
	a.n += b.n
	a.sum += b.sum
	a.isum += b.isum
	a.m.merge(b.m)
	if a.min.IsNull() {
		a.min, a.max = b.min, b.max
	} else if !b.min.IsNull() {
		if c, err := b.min.Compare(a.min); err == nil && c < 0 {
			a.min = b.min
		}
		if c, err := b.max.Compare(a.max); err == nil && c > 0 {
			a.max = b.max
		}
	}
	if a.distinct != nil && b.distinct != nil {
		for v, n := range b.distinct {
			a.distinct[v] += n
		}
	}
	if a.holistic {
		a.vals = append(a.vals, b.vals...)
	}
}

// result finalises the accumulator into the aggregate's output value.
// Empty groups yield NULL for all aggregates except count, which yields 0.
func (a *accum) result(spec AggSpec, argKind Kind) Value {
	if spec.Distinct {
		switch spec.Func {
		case AggCount:
			return Int(int64(len(a.distinct)))
		case AggSum, AggAvg, AggStdev:
			// Fold in sorted order: map iteration order is random, and
			// float sums are order-dependent, so sorting is what makes
			// DISTINCT results reproducible run to run.
			var sum float64
			var isum int64
			var m moments
			for _, v := range sortedDistinct(a.distinct) {
				f := v.AsFloat()
				sum += f
				m.add(f)
				if v.Kind() == KindInt {
					isum += v.AsInt()
				}
			}
			return finishNumeric(spec, argKind, m.n, sum, isum, m)
		case AggMedian, AggPercentile:
			vals := make([]float64, 0, len(a.distinct))
			for v := range a.distinct {
				vals = append(vals, v.AsFloat())
			}
			return quantileValue(vals, spec.quantile())
		}
		// min/max are unaffected by DISTINCT.
	}
	switch spec.Func {
	case AggCount:
		return Int(a.n)
	case AggMin:
		return a.min
	case AggMax:
		return a.max
	case AggMedian, AggPercentile:
		return quantileValue(append([]float64(nil), a.vals...), spec.quantile())
	default:
		return finishNumeric(spec, argKind, a.n, a.sum, a.isum, a.m)
	}
}

// sortedDistinct returns the distinct values in a deterministic total
// order (Compare where defined, string rendering otherwise).
func sortedDistinct(distinct map[Value]int64) []Value {
	vals := make([]Value, 0, len(distinct))
	for v := range distinct {
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool { return lessValue(vals[i], vals[j]) })
	return vals
}

// quantileValue computes the nearest-rank quantile, consuming vals.
func quantileValue(vals []float64, q float64) Value {
	if len(vals) == 0 {
		return Null()
	}
	sort.Float64s(vals)
	rank := int(math.Ceil(q * float64(len(vals))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(vals) {
		rank = len(vals)
	}
	return Float(vals[rank-1])
}

func finishNumeric(spec AggSpec, argKind Kind, n int64, sum float64, isum int64, m moments) Value {
	if n == 0 {
		return Null()
	}
	switch spec.Func {
	case AggSum:
		if argKind == KindInt {
			return Int(isum)
		}
		return Float(sum)
	case AggAvg, AggStdev:
		if m.n == 0 { // non-NULL but non-numeric observations only
			return Null()
		}
		if spec.Func == AggAvg {
			return Float(m.mean())
		}
		return Float(math.Sqrt(m.variance()))
	}
	return Null()
}
