package stream

import (
	"fmt"
	"time"
)

// Operator is a push-based, punctuation-driven streaming operator.
//
// The execution contract, enforced by Chain and by the ESP processor:
//
//  1. Open is called exactly once with the input schema before any tuples.
//  2. Process is called for each input tuple; emitted tuples flow
//     downstream immediately.
//  3. Advance(now) is a punctuation: it promises every future input tuple
//     has Ts > now. Windowed operators use it to close windows ending at
//     or before now and emit their results (with Ts = the window end).
//     Punctuation times are strictly increasing.
//  4. Close flushes any remaining state at end of stream.
//
// This is the Fjord-style execution model the paper's ESP Processor uses:
// sensors push tuples, and the processor injects heartbeat punctuation at
// epoch boundaries so results are deterministic regardless of arrival
// interleaving.
type Operator interface {
	// Open binds the operator to its input schema and fixes the output
	// schema, which Schema reports afterwards.
	Open(in *Schema) error
	// Schema reports the output schema. Only valid after Open.
	Schema() *Schema
	// Process consumes one tuple and returns any tuples produced.
	Process(t Tuple) ([]Tuple, error)
	// Advance handles punctuation and returns tuples released by it.
	Advance(now time.Time) ([]Tuple, error)
	// Close ends the stream and returns any final tuples.
	Close() ([]Tuple, error)
}

// Filter drops tuples for which Pred is not true (NULL drops, as in SQL
// WHERE). Filter is stateless and passes punctuation through.
type Filter struct {
	Pred Expr
	out  *Schema

	pred    EvalFunc
	scratch []Value
	keep    []bool
	obatch  *Batch
}

// NewFilter returns a filter operator with the given predicate.
func NewFilter(pred Expr) *Filter { return &Filter{Pred: pred} }

// Open implements Operator.
func (f *Filter) Open(in *Schema) error {
	k, err := f.Pred.Bind(in)
	if err != nil {
		return fmt.Errorf("stream: filter: %w", err)
	}
	if k != KindBool && k != KindNull {
		return fmt.Errorf("stream: filter: predicate has kind %s, want bool", k)
	}
	f.pred = CompileExpr(f.Pred)
	f.out = in
	return nil
}

// Schema implements Operator.
func (f *Filter) Schema() *Schema { return f.out }

// Process implements Operator.
func (f *Filter) Process(t Tuple) ([]Tuple, error) {
	v, err := f.pred(t)
	if err != nil {
		return nil, fmt.Errorf("stream: filter: %w", err)
	}
	if v.Truthy() {
		return []Tuple{t}, nil
	}
	return nil, nil
}

// Advance implements Operator.
func (f *Filter) Advance(time.Time) ([]Tuple, error) { return nil, nil }

// Close implements Operator.
func (f *Filter) Close() ([]Tuple, error) { return nil, nil }

// NamedExpr pairs an output column name with the expression producing it.
type NamedExpr struct {
	Name string
	Expr Expr
}

// Project evaluates a list of expressions per input tuple (SELECT list
// without aggregation).
type Project struct {
	Exprs []NamedExpr
	out   *Schema

	fns     []EvalFunc
	scratch []Value
	rowbuf  []Value
	obatch  *Batch
}

// NewProject returns a projection operator.
func NewProject(exprs ...NamedExpr) *Project { return &Project{Exprs: exprs} }

// Open implements Operator.
func (p *Project) Open(in *Schema) error {
	fields := make([]Field, len(p.Exprs))
	p.fns = make([]EvalFunc, len(p.Exprs))
	for i, ne := range p.Exprs {
		k, err := ne.Expr.Bind(in)
		if err != nil {
			return fmt.Errorf("stream: project %q: %w", ne.Name, err)
		}
		fields[i] = Field{Name: ne.Name, Kind: k}
		p.fns[i] = CompileExpr(ne.Expr)
	}
	out, err := NewSchema(fields...)
	if err != nil {
		return fmt.Errorf("stream: project: %w", err)
	}
	p.out = out
	return nil
}

// Schema implements Operator.
func (p *Project) Schema() *Schema { return p.out }

// Process implements Operator.
func (p *Project) Process(t Tuple) ([]Tuple, error) {
	vals := make([]Value, len(p.Exprs))
	for i, fn := range p.fns {
		v, err := fn(t)
		if err != nil {
			return nil, fmt.Errorf("stream: project %q: %w", p.Exprs[i].Name, err)
		}
		vals[i] = v
	}
	return []Tuple{{Ts: t.Ts, Values: vals}}, nil
}

// Advance implements Operator.
func (p *Project) Advance(time.Time) ([]Tuple, error) { return nil, nil }

// Close implements Operator.
func (p *Project) Close() ([]Tuple, error) { return nil, nil }

// MapFunc adapts an arbitrary Go function into a stateless operator — the
// paper's "arbitrary code" stage implementation path. The function may
// return zero or more tuples per input; Out is the declared output schema
// (nil means pass-through of the input schema).
type MapFunc struct {
	Out *Schema
	Fn  func(t Tuple) ([]Tuple, error)
	in  *Schema
}

// Open implements Operator.
func (m *MapFunc) Open(in *Schema) error {
	m.in = in
	if m.Out == nil {
		m.Out = in
	}
	if m.Fn == nil {
		return fmt.Errorf("stream: MapFunc with nil Fn")
	}
	return nil
}

// Schema implements Operator.
func (m *MapFunc) Schema() *Schema { return m.Out }

// Process implements Operator.
func (m *MapFunc) Process(t Tuple) ([]Tuple, error) { return m.Fn(t) }

// Advance implements Operator.
func (m *MapFunc) Advance(time.Time) ([]Tuple, error) { return nil, nil }

// Close implements Operator.
func (m *MapFunc) Close() ([]Tuple, error) { return nil, nil }

// Chain composes operators into a linear pipeline that itself satisfies
// Operator. Punctuation is cascaded correctly: tuples released by an
// upstream operator's Advance are processed by downstream operators
// before those operators see the same punctuation, so boundary tuples
// (Ts = now) land in the windows that close at now.
type Chain struct {
	Ops []Operator
	in  *Schema
	// degraded latches whether the last ProcessBatch left the columnar
	// representation anywhere inside (see BatchDegradeReporter).
	degraded bool
}

// NewChain composes the given operators in order. An empty chain is the
// identity.
func NewChain(ops ...Operator) *Chain { return &Chain{Ops: ops} }

// Open implements Operator.
func (c *Chain) Open(in *Schema) error {
	c.in = in
	cur := in
	for i, op := range c.Ops {
		if err := op.Open(cur); err != nil {
			return fmt.Errorf("stream: chain op %d: %w", i, err)
		}
		cur = op.Schema()
	}
	return nil
}

// Schema implements Operator.
func (c *Chain) Schema() *Schema {
	if len(c.Ops) == 0 {
		return c.in
	}
	return c.Ops[len(c.Ops)-1].Schema()
}

// Process implements Operator.
func (c *Chain) Process(t Tuple) ([]Tuple, error) {
	return c.feed(0, []Tuple{t})
}

// feed pushes tuples through operators i..end and returns the pipeline
// output.
func (c *Chain) feed(i int, tuples []Tuple) ([]Tuple, error) {
	cur := tuples
	for j := i; j < len(c.Ops); j++ {
		if len(cur) == 0 {
			return nil, nil
		}
		var next []Tuple
		for _, t := range cur {
			out, err := c.Ops[j].Process(t)
			if err != nil {
				return nil, err
			}
			// Adopt the first operator output instead of copying it — the
			// operator handed over ownership, and the single-output case
			// then completes without an append allocation.
			if next == nil {
				next = out
			} else {
				next = append(next, out...)
			}
		}
		cur = next
	}
	return cur, nil
}

// Advance implements Operator.
func (c *Chain) Advance(now time.Time) ([]Tuple, error) {
	var result []Tuple
	for i, op := range c.Ops {
		released, err := op.Advance(now)
		if err != nil {
			return nil, err
		}
		out, err := c.feed(i+1, released)
		if err != nil {
			return nil, err
		}
		if result == nil {
			result = out
		} else {
			result = append(result, out...)
		}
	}
	return result, nil
}

// WindowTelemetry implements WindowTelemetrySource by summing over the
// chain's window operators.
func (c *Chain) WindowTelemetry() (panes, lateDrops int64) {
	for _, op := range c.Ops {
		if src, ok := op.(WindowTelemetrySource); ok {
			p, d := src.WindowTelemetry()
			panes += p
			lateDrops += d
		}
	}
	return panes, lateDrops
}

// Close implements Operator.
func (c *Chain) Close() ([]Tuple, error) {
	var result []Tuple
	for i, op := range c.Ops {
		released, err := op.Close()
		if err != nil {
			return nil, err
		}
		out, err := c.feed(i+1, released)
		if err != nil {
			return nil, err
		}
		result = append(result, out...)
	}
	return result, nil
}
