package stream

import (
	"fmt"
	"sort"
	"time"
)

// SelfJoin joins each tuple of a windowed stream with the aggregate row of
// its own group over the same window — the execution strategy for the
// paper's Query 5 (Merge-stage outlier detection), which compares each
// temperature reading against the window's per-granule avg ± stdev:
//
//	SELECT s.*, a.<aggs> FROM input s [Range By 'd'],
//	     (SELECT <groups>, <aggs> FROM input [Range By 'd'] GROUP BY <groups>) a
//	WHERE a.<groups> = s.<groups>
//
// At each window boundary b the operator computes the subquery aggregates
// over the window (b-Range, b], then emits one combined tuple per buffered
// raw tuple, timestamped b. Residual WHERE predicates and outer
// aggregation are applied downstream (the combined tuples form one epoch,
// so the outer aggregate uses a NOW window).
type SelfJoin struct {
	// Range is the window length; Slide the emission period (zero Range
	// means NOW, i.e. Range = Slide).
	Range, Slide time.Duration
	// RawPrefix and AggPrefix qualify the two sides' columns in the
	// output schema (e.g. "s." and "a."). They may be empty only if the
	// names don't clash.
	RawPrefix, AggPrefix string
	// GroupBy are the join/group expressions, evaluated on the raw schema.
	GroupBy []NamedExpr
	// Aggs are the subquery's aggregate columns.
	Aggs []AggSpec

	in, out  *Schema
	argKinds []Kind
	started  bool
	origin   time.Time
	nextEmit time.Time
	buffer   []Tuple
}

// Open implements Operator.
func (s *SelfJoin) Open(in *Schema) error {
	if s.Slide <= 0 {
		return fmt.Errorf("stream: selfjoin: slide must be positive")
	}
	if s.Range == 0 {
		s.Range = s.Slide
	}
	if s.Range < 0 {
		return fmt.Errorf("stream: selfjoin: negative range %v", s.Range)
	}
	s.in = in
	var fields []Field
	for _, f := range in.Fields() {
		fields = append(fields, Field{Name: s.RawPrefix + f.Name, Kind: f.Kind})
	}
	for _, g := range s.GroupBy {
		k, err := g.Expr.Bind(in)
		if err != nil {
			return fmt.Errorf("stream: selfjoin group %q: %w", g.Name, err)
		}
		fields = append(fields, Field{Name: s.AggPrefix + g.Name, Kind: k})
	}
	s.argKinds = make([]Kind, len(s.Aggs))
	for i, a := range s.Aggs {
		argKind := KindNull
		if a.Arg != nil {
			k, err := a.Arg.Bind(in)
			if err != nil {
				return fmt.Errorf("stream: selfjoin agg %s: %w", a, err)
			}
			argKind = k
		} else if a.Func != AggCount {
			return fmt.Errorf("stream: selfjoin agg %s: only count may omit its argument", a)
		}
		s.argKinds[i] = argKind
		rk, err := a.resultKind(argKind)
		if err != nil {
			return err
		}
		fields = append(fields, Field{Name: s.AggPrefix + a.Name, Kind: rk})
	}
	out, err := NewSchema(fields...)
	if err != nil {
		return fmt.Errorf("stream: selfjoin: %w (set distinct prefixes)", err)
	}
	s.out = out
	return nil
}

// Schema implements Operator.
func (s *SelfJoin) Schema() *Schema { return s.out }

// Process implements Operator.
func (s *SelfJoin) Process(t Tuple) ([]Tuple, error) {
	s.buffer = append(s.buffer, t)
	return nil, nil
}

// Advance implements Operator.
func (s *SelfJoin) Advance(now time.Time) ([]Tuple, error) {
	if !s.started {
		s.started = true
		s.origin = now
		s.nextEmit = now
	}
	var out []Tuple
	for !s.nextEmit.After(now) {
		emitted, err := s.emit(s.nextEmit)
		if err != nil {
			return nil, err
		}
		out = append(out, emitted...)
		s.nextEmit = s.nextEmit.Add(s.Slide)
	}
	return out, nil
}

// Close implements Operator.
func (s *SelfJoin) Close() ([]Tuple, error) {
	if len(s.buffer) == 0 {
		return nil, nil
	}
	if !s.started {
		s.nextEmit = s.buffer[len(s.buffer)-1].Ts
		s.started = true
	}
	return s.emit(s.nextEmit)
}

func (s *SelfJoin) emit(b time.Time) ([]Tuple, error) {
	lo := b.Add(-s.Range)
	live := s.buffer[:0]
	for _, t := range s.buffer {
		if t.Ts.After(lo) {
			live = append(live, t)
		}
	}
	s.buffer = live
	type entry struct {
		tuple  Tuple
		key    GroupKey
		groups []Value
	}
	var window []entry
	cells := make(map[GroupKey]*paneCell)
	for _, t := range s.buffer {
		if t.Ts.After(b) {
			continue
		}
		groups := make([]Value, len(s.GroupBy))
		for i, g := range s.GroupBy {
			v, err := g.Expr.Eval(t)
			if err != nil {
				return nil, fmt.Errorf("stream: selfjoin group %q: %w", g.Name, err)
			}
			groups[i] = v
		}
		key := MakeGroupKey(groups...)
		cell := cells[key]
		if cell == nil {
			cell = &paneCell{groupVals: groups, accums: make([]accum, len(s.Aggs))}
			for i, a := range s.Aggs {
				cell.accums[i] = mkAccum(a)
			}
			cells[key] = cell
		}
		for i, a := range s.Aggs {
			if a.Arg == nil {
				cell.accums[i].add(Null(), true)
				continue
			}
			v, err := a.Arg.Eval(t)
			if err != nil {
				return nil, fmt.Errorf("stream: selfjoin agg %s: %w", a, err)
			}
			cell.accums[i].add(v, false)
		}
		window = append(window, entry{tuple: t, key: key, groups: groups})
	}
	if len(window) == 0 {
		return nil, nil
	}
	sort.SliceStable(window, func(i, j int) bool {
		if !window[i].tuple.Ts.Equal(window[j].tuple.Ts) {
			return window[i].tuple.Ts.Before(window[j].tuple.Ts)
		}
		return lessValues(window[i].tuple.Values, window[j].tuple.Values)
	})
	out := make([]Tuple, 0, len(window))
	for _, e := range window {
		cell := cells[e.key]
		vals := make([]Value, 0, s.out.Len())
		vals = append(vals, e.tuple.Values...)
		vals = append(vals, e.groups...)
		for i, a := range s.Aggs {
			vals = append(vals, cell.accums[i].result(a, s.argKinds[i]))
		}
		out = append(out, Tuple{Ts: b, Values: vals})
	}
	return out, nil
}
