package stream

import (
	"testing"
)

func TestInListBasics(t *testing.T) {
	e := &InList{
		X:    NewCol("tag_id"),
		List: []Expr{NewConst(String("A")), NewConst(String("B"))},
	}
	if k := mustBindStream(t, e, rfidSchema); k != KindBool {
		t.Errorf("kind = %v", k)
	}
	hit, _ := e.Eval(read(0.1, "A", 0))
	miss, _ := e.Eval(read(0.2, "Z", 0))
	if !hit.Truthy() || miss.Truthy() {
		t.Errorf("IN: hit=%v miss=%v", hit, miss)
	}
}

func TestInListNegate(t *testing.T) {
	e := &InList{
		X:      NewCol("shelf"),
		List:   []Expr{NewConst(Int(0)), NewConst(Int(1))},
		Negate: true,
	}
	mustBindStream(t, e, rfidSchema)
	keep, _ := e.Eval(read(0.1, "A", 3))
	drop, _ := e.Eval(read(0.2, "A", 0))
	if !keep.Truthy() || drop.Truthy() {
		t.Errorf("NOT IN: keep=%v drop=%v", keep, drop)
	}
}

func TestInListNullSemantics(t *testing.T) {
	// NULL IN (...) is NULL.
	e := &InList{X: NewCol("tag_id"), List: []Expr{NewConst(String("A"))}}
	mustBindStream(t, e, rfidSchema)
	v, _ := e.Eval(NewTuple(at(0.1), Null(), Int(0)))
	if !v.IsNull() {
		t.Errorf("NULL IN (...) = %v", v)
	}
	// x IN (no match, NULL) is NULL; a match still wins over a NULL.
	e2 := &InList{X: NewCol("tag_id"), List: []Expr{NewConst(Null()), NewConst(String("Z"))}}
	mustBindStream(t, e2, rfidSchema)
	v, _ = e2.Eval(read(0.1, "A", 0))
	if !v.IsNull() {
		t.Errorf("A IN (NULL, Z) = %v, want NULL", v)
	}
	e3 := &InList{X: NewCol("tag_id"), List: []Expr{NewConst(Null()), NewConst(String("A"))}}
	mustBindStream(t, e3, rfidSchema)
	v, _ = e3.Eval(read(0.1, "A", 0))
	if !v.Truthy() {
		t.Errorf("A IN (NULL, A) = %v, want true", v)
	}
}

func TestInListErrors(t *testing.T) {
	empty := &InList{X: NewCol("tag_id")}
	if _, err := empty.Bind(rfidSchema); err == nil {
		t.Error("empty IN list: want bind error")
	}
	bad := &InList{X: NewCol("nope"), List: []Expr{NewConst(Int(1))}}
	if _, err := bad.Bind(rfidSchema); err == nil {
		t.Error("unknown column: want bind error")
	}
}

func TestInListString(t *testing.T) {
	e := &InList{X: NewCol("x"), List: []Expr{NewConst(Int(1)), NewConst(Int(2))}, Negate: true}
	if got := e.String(); got != "(x NOT IN (1, 2))" {
		t.Errorf("String = %q", got)
	}
}

func mustBindStream(t *testing.T, e Expr, s *Schema) Kind {
	t.Helper()
	k, err := e.Bind(s)
	if err != nil {
		t.Fatalf("Bind: %v", err)
	}
	return k
}
