package stream

import (
	"testing"
	"time"
)

func TestGraphSingleLeg(t *testing.T) {
	g := NewGraph()
	if err := g.AddLeg("rfid", rfidSchema, NewChain(
		NewFilter(NewBinary(OpEq, NewCol("shelf"), NewConst(Int(0)))),
	)); err != nil {
		t.Fatal(err)
	}
	if err := g.Open(); err != nil {
		t.Fatal(err)
	}
	out, err := g.Push("rfid", read(0.1, "A", 0))
	if err != nil || len(out) != 1 {
		t.Fatalf("push: %v, %v", out, err)
	}
	out, err = g.Push("rfid", read(0.2, "A", 1))
	if err != nil || len(out) != 0 {
		t.Fatalf("filtered push: %v, %v", out, err)
	}
	if _, err := g.Push("nope", read(0.3, "A", 0)); err == nil {
		t.Error("unknown input: want error")
	}
}

func TestGraphUnionViaSharedLeg(t *testing.T) {
	// Two readers in one proximity group share one Smooth chain — the
	// Merge-stage union of the digital home deployment.
	g := NewGraph()
	count := &WindowAgg{
		GroupBy: []NamedExpr{{Name: "tag_id", Expr: NewCol("tag_id")}},
		Aggs:    []AggSpec{{Name: "n", Func: AggCount}},
		Range:   2 * time.Second, Slide: time.Second,
	}
	if err := g.AddLeg("reader0", rfidSchema, NewChain(count)); err != nil {
		t.Fatal(err)
	}
	if err := g.ShareLeg("reader1", "reader0"); err != nil {
		t.Fatal(err)
	}
	if err := g.Open(); err != nil {
		t.Fatal(err)
	}
	g.Push("reader0", read(0.1, "A", 0))
	g.Push("reader1", read(0.2, "A", 1))
	out, err := g.Advance(at(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Values[1] != Int(2) {
		t.Fatalf("union count = %v, want A:2", out)
	}
}

func TestGraphShareLegErrors(t *testing.T) {
	g := NewGraph()
	g.AddLeg("a", rfidSchema, nil)
	if err := g.ShareLeg("b", "missing"); err == nil {
		t.Error("share of unknown leg: want error")
	}
	if err := g.ShareLeg("a", "a"); err == nil {
		t.Error("duplicate leg name: want error")
	}
	if err := g.AddLeg("a", rfidSchema, nil); err == nil {
		t.Error("duplicate AddLeg: want error")
	}
}

func TestGraphCombinerVoting(t *testing.T) {
	// Three vote inputs, absent ones default to 0; threshold 2 — the
	// Query 6 person-detector shape.
	voteSchema := MustSchema(Field{Name: "cnt", Kind: KindInt})
	g := NewGraph()
	for _, name := range []string{"rfid", "sensors", "motion"} {
		if err := g.AddLeg(name, voteSchema, nil); err != nil {
			t.Fatal(err)
		}
	}
	comb := &EpochCombiner{Inputs: []CombineInput{
		{Prefix: "rfid.", Default: []Value{Int(0)}},
		{Prefix: "sensors.", Default: []Value{Int(0)}},
		{Prefix: "motion.", Default: []Value{Int(0)}},
	}}
	if err := g.SetCombiner(comb, "rfid", "sensors", "motion"); err != nil {
		t.Fatal(err)
	}
	sum := NewBinary(OpAdd, NewBinary(OpAdd, NewCol("rfid.cnt"), NewCol("sensors.cnt")), NewCol("motion.cnt"))
	g.SetPost(NewChain(
		NewFilter(NewBinary(OpGe, sum, NewConst(Int(2)))),
		NewProject(NamedExpr{Name: "votes", Expr: sum}),
	))
	if err := g.Open(); err != nil {
		t.Fatal(err)
	}
	vote := func(name string, sec float64) {
		t.Helper()
		if _, err := g.Push(name, NewTuple(at(sec), Int(1))); err != nil {
			t.Fatal(err)
		}
	}
	// Epoch 1: two votes -> person detected.
	vote("rfid", 0.2)
	vote("motion", 0.8)
	out, err := g.Advance(at(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Values[0] != Int(2) {
		t.Fatalf("epoch1 = %v, want 2 votes", out)
	}
	// Epoch 2: one vote -> below threshold.
	vote("sensors", 1.5)
	out, _ = g.Advance(at(2))
	if len(out) != 0 {
		t.Errorf("epoch2 = %v, want nothing", out)
	}
	// Epoch 3: silence -> no combined tuple at all.
	out, _ = g.Advance(at(3))
	if len(out) != 0 {
		t.Errorf("silent epoch emitted %v", out)
	}
}

func TestGraphCombinerNullDefaults(t *testing.T) {
	s := MustSchema(Field{Name: "v", Kind: KindInt})
	g := NewGraph()
	g.AddLeg("a", s, nil)
	g.AddLeg("b", s, nil)
	comb := &EpochCombiner{Inputs: []CombineInput{{Prefix: "a."}, {Prefix: "b."}}}
	if err := g.SetCombiner(comb, "a", "b"); err != nil {
		t.Fatal(err)
	}
	if err := g.Open(); err != nil {
		t.Fatal(err)
	}
	g.Push("a", NewTuple(at(0.5), Int(7)))
	out, err := g.Advance(at(1))
	if err != nil || len(out) != 1 {
		t.Fatalf("out=%v err=%v", out, err)
	}
	if out[0].Values[0] != Int(7) || !out[0].Values[1].IsNull() {
		t.Errorf("combined = %v, want (7, NULL)", out[0])
	}
}

func TestGraphCombinerLastTupleWins(t *testing.T) {
	s := MustSchema(Field{Name: "v", Kind: KindInt})
	g := NewGraph()
	g.AddLeg("a", s, nil)
	comb := &EpochCombiner{Inputs: []CombineInput{{}}}
	if err := g.SetCombiner(comb, "a"); err != nil {
		t.Fatal(err)
	}
	if err := g.Open(); err != nil {
		t.Fatal(err)
	}
	g.Push("a", NewTuple(at(0.2), Int(1)))
	g.Push("a", NewTuple(at(0.8), Int(2)))
	out, _ := g.Advance(at(1))
	if len(out) != 1 || out[0].Values[0] != Int(2) {
		t.Errorf("combined = %v, want last value 2", out)
	}
}

func TestGraphOpenErrors(t *testing.T) {
	if err := NewGraph().Open(); err == nil {
		t.Error("graph with no legs: want error")
	}
	g := NewGraph()
	g.AddLeg("a", rfidSchema, NewChain(NewFilter(NewCol("missing"))))
	if err := g.Open(); err == nil {
		t.Error("leg open failure must surface")
	}
	g2 := NewGraph()
	g2.AddLeg("a", rfidSchema, nil)
	if err := g2.Open(); err != nil {
		t.Fatal(err)
	}
	if err := g2.Open(); err == nil {
		t.Error("double Open: want error")
	}
}

func TestGraphCombinerPrefixCollision(t *testing.T) {
	s := MustSchema(Field{Name: "v", Kind: KindInt})
	g := NewGraph()
	g.AddLeg("a", s, nil)
	g.AddLeg("b", s, nil)
	comb := &EpochCombiner{Inputs: []CombineInput{{}, {}}} // both unprefixed "v"
	if err := g.SetCombiner(comb, "a", "b"); err != nil {
		t.Fatal(err)
	}
	if err := g.Open(); err == nil {
		t.Error("colliding combined schema: want error")
	}
}

func TestGraphCloseFlushesCombiner(t *testing.T) {
	s := MustSchema(Field{Name: "v", Kind: KindInt})
	g := NewGraph()
	g.AddLeg("a", s, nil)
	g.AddLeg("b", s, nil)
	comb := &EpochCombiner{Inputs: []CombineInput{
		{Prefix: "a.", Default: []Value{Int(0)}},
		{Prefix: "b.", Default: []Value{Int(0)}},
	}}
	if err := g.SetCombiner(comb, "a", "b"); err != nil {
		t.Fatal(err)
	}
	if err := g.Open(); err != nil {
		t.Fatal(err)
	}
	g.Push("a", NewTuple(at(0.5), Int(7)))
	out, err := g.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Values[0] != Int(7) || out[0].Values[1] != Int(0) {
		t.Errorf("Close flushed %v, want combined (7, 0)", out)
	}
}

func TestGraphCloseFlushesWindows(t *testing.T) {
	g := NewGraph()
	w := &WindowAgg{
		GroupBy: []NamedExpr{{Name: "tag_id", Expr: NewCol("tag_id")}},
		Aggs:    []AggSpec{{Name: "n", Func: AggCount}},
		Range:   time.Minute, Slide: time.Minute,
	}
	g.AddLeg("rfid", rfidSchema, NewChain(w))
	if err := g.Open(); err != nil {
		t.Fatal(err)
	}
	g.Push("rfid", read(0.5, "A", 0))
	out, err := g.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Values[1] != Int(1) {
		t.Errorf("Close = %v, want the pending window flushed", out)
	}
}

func TestSortTuples(t *testing.T) {
	ts := []Tuple{
		NewTuple(at(2), String("b")),
		NewTuple(at(1), String("z")),
		NewTuple(at(1), String("a")),
	}
	SortTuples(ts)
	if !ts[0].Ts.Equal(at(1)) || ts[0].Values[0] != String("a") {
		t.Errorf("sorted[0] = %v", ts[0])
	}
	if ts[1].Values[0] != String("z") || !ts[2].Ts.Equal(at(2)) {
		t.Errorf("sorted = %v", ts)
	}
}

func TestSelfJoinOutlierDetection(t *testing.T) {
	// Query 5 shape: join readings with their granule's avg/stdev, filter
	// to within one stdev, average the survivors.
	moteSchema := MustSchema(
		Field{Name: "granule", Kind: KindInt},
		Field{Name: "temp", Kind: KindFloat},
	)
	sj := &SelfJoin{
		Range: time.Second, Slide: time.Second,
		RawPrefix: "s.", AggPrefix: "a.",
		GroupBy: []NamedExpr{{Name: "granule", Expr: NewCol("granule")}},
		Aggs: []AggSpec{
			{Name: "avg", Func: AggAvg, Arg: NewCol("temp")},
			{Name: "stdev", Func: AggStdev, Arg: NewCol("temp")},
		},
	}
	within := NewBinary(OpAnd,
		NewBinary(OpLe, NewCol("s.temp"), NewBinary(OpAdd, NewCol("a.avg"), NewCol("a.stdev"))),
		NewBinary(OpGe, NewCol("s.temp"), NewBinary(OpSub, NewCol("a.avg"), NewCol("a.stdev"))),
	)
	outer := &WindowAgg{
		GroupBy: []NamedExpr{{Name: "granule", Expr: NewCol("s.granule")}},
		Aggs:    []AggSpec{{Name: "avg_temp", Func: AggAvg, Arg: NewCol("s.temp")}},
		Slide:   time.Second, // NOW window over the joined epoch
	}
	chain := NewChain(sj, NewFilter(within), outer)
	if err := chain.Open(moteSchema); err != nil {
		t.Fatal(err)
	}
	// Two healthy motes at ~20, one fail-dirty at 100.
	for i, temp := range []float64{20, 21, 100} {
		if _, err := chain.Process(NewTuple(at(0.1*float64(i+1)), Int(1), Float(temp))); err != nil {
			t.Fatal(err)
		}
	}
	out, err := chain.Advance(at(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Fatalf("out = %v", out)
	}
	got := out[0].Values[1].AsFloat()
	if !almostEqual(got, 20.5) {
		t.Errorf("outlier-filtered avg = %v, want 20.5 (100C mote excluded)", got)
	}
}

func TestSelfJoinSchemaAndErrors(t *testing.T) {
	moteSchema := MustSchema(
		Field{Name: "granule", Kind: KindInt},
		Field{Name: "temp", Kind: KindFloat},
	)
	sj := &SelfJoin{
		Range: time.Second, Slide: time.Second,
		RawPrefix: "s.", AggPrefix: "a.",
		GroupBy: []NamedExpr{{Name: "granule", Expr: NewCol("granule")}},
		Aggs:    []AggSpec{{Name: "avg", Func: AggAvg, Arg: NewCol("temp")}},
	}
	if err := sj.Open(moteSchema); err != nil {
		t.Fatal(err)
	}
	want := "(s.granule int, s.temp float, a.granule int, a.avg float)"
	if got := sj.Schema().String(); got != want {
		t.Errorf("schema = %s, want %s", got, want)
	}
	// Colliding prefixes.
	bad := &SelfJoin{
		Range: time.Second, Slide: time.Second,
		GroupBy: []NamedExpr{{Name: "granule", Expr: NewCol("granule")}},
		Aggs:    []AggSpec{{Name: "temp", Func: AggAvg, Arg: NewCol("temp")}},
	}
	if err := bad.Open(moteSchema); err == nil {
		t.Error("colliding names without prefixes: want error")
	}
	if err := (&SelfJoin{}).Open(moteSchema); err == nil {
		t.Error("zero slide: want error")
	}
}

func TestSelfJoinEviction(t *testing.T) {
	moteSchema := MustSchema(
		Field{Name: "granule", Kind: KindInt},
		Field{Name: "temp", Kind: KindFloat},
	)
	sj := &SelfJoin{
		Range: time.Second, Slide: time.Second,
		RawPrefix: "s.", AggPrefix: "a.",
		GroupBy: []NamedExpr{{Name: "granule", Expr: NewCol("granule")}},
		Aggs:    []AggSpec{{Name: "n", Func: AggCount}},
	}
	if err := sj.Open(moteSchema); err != nil {
		t.Fatal(err)
	}
	sj.Process(NewTuple(at(0.5), Int(1), Float(20)))
	out, _ := sj.Advance(at(1))
	if len(out) != 1 {
		t.Fatalf("epoch1 = %v", out)
	}
	// Next epoch: old tuple evicted, nothing buffered -> nothing emitted.
	out, _ = sj.Advance(at(2))
	if len(out) != 0 {
		t.Errorf("evicted tuple re-emitted: %v", out)
	}
}

func TestSelfJoinCloseWithoutPunctuation(t *testing.T) {
	moteSchema := MustSchema(
		Field{Name: "granule", Kind: KindInt},
		Field{Name: "temp", Kind: KindFloat},
	)
	sj := &SelfJoin{
		Range: time.Second, Slide: time.Second,
		RawPrefix: "s.", AggPrefix: "a.",
		GroupBy: []NamedExpr{{Name: "granule", Expr: NewCol("granule")}},
		Aggs:    []AggSpec{{Name: "n", Func: AggCount}},
	}
	if err := sj.Open(moteSchema); err != nil {
		t.Fatal(err)
	}
	sj.Process(NewTuple(at(0.5), Int(1), Float(20)))
	out, err := sj.Close()
	if err != nil || len(out) != 1 {
		t.Errorf("Close = %v, %v; want the buffered tuple joined", out, err)
	}
}
