package stream

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func medianWindow(aggs ...AggSpec) *WindowAgg {
	return &WindowAgg{Aggs: aggs, Range: time.Second, Slide: time.Second}
}

func runSingleWindow(t *testing.T, w *WindowAgg, vals []float64) Tuple {
	t.Helper()
	s := MustSchema(Field{Name: "v", Kind: KindFloat})
	if err := w.Open(s); err != nil {
		t.Fatal(err)
	}
	for i, v := range vals {
		tu := NewTuple(at(0.01*float64(i+1)), Float(v))
		if _, err := w.Process(tu); err != nil {
			t.Fatal(err)
		}
	}
	out, err := w.Advance(at(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Fatalf("out = %v", out)
	}
	return out[0]
}

func TestMedianAggregate(t *testing.T) {
	w := medianWindow(AggSpec{Name: "m", Func: AggMedian, Arg: NewCol("v")})
	row := runSingleWindow(t, w, []float64{22, 100, 21})
	if got := row.Values[0].AsFloat(); got != 22 {
		t.Errorf("median(21,22,100) = %v, want 22 (outlier-immune)", got)
	}
}

func TestMedianEvenCount(t *testing.T) {
	// Nearest-rank: median of 4 values is the 2nd.
	w := medianWindow(AggSpec{Name: "m", Func: AggMedian, Arg: NewCol("v")})
	row := runSingleWindow(t, w, []float64{1, 2, 3, 4})
	if got := row.Values[0].AsFloat(); got != 2 {
		t.Errorf("median(1..4) = %v, want nearest-rank 2", got)
	}
}

func TestPercentileAggregate(t *testing.T) {
	w := medianWindow(AggSpec{Name: "p", Func: AggPercentile, Arg: NewCol("v"), Param: 0.9})
	vals := make([]float64, 10)
	for i := range vals {
		vals[i] = float64(i + 1) // 1..10
	}
	row := runSingleWindow(t, w, vals)
	if got := row.Values[0].AsFloat(); got != 9 {
		t.Errorf("p90(1..10) = %v, want 9", got)
	}
}

func TestMedianDistinct(t *testing.T) {
	w := medianWindow(AggSpec{Name: "m", Func: AggMedian, Arg: NewCol("v"), Distinct: true})
	// Duplicated outlier: distinct median ignores multiplicity.
	row := runSingleWindow(t, w, []float64{100, 100, 100, 1, 2})
	if got := row.Values[0].AsFloat(); got != 2 {
		t.Errorf("distinct median = %v, want 2 (of {1,2,100})", got)
	}
}

func TestPercentileValidation(t *testing.T) {
	s := MustSchema(Field{Name: "v", Kind: KindFloat})
	for _, p := range []float64{0, 1, -0.5, 2} {
		w := medianWindow(AggSpec{Name: "p", Func: AggPercentile, Arg: NewCol("v"), Param: p})
		if err := w.Open(s); err == nil {
			t.Errorf("percentile param %v: want Open error", p)
		}
	}
	// Median over a string column is rejected.
	w := &WindowAgg{
		Aggs:  []AggSpec{{Name: "m", Func: AggMedian, Arg: NewCol("tag_id")}},
		Range: time.Second, Slide: time.Second,
	}
	if err := w.Open(rfidSchema); err == nil {
		t.Error("median(string): want Open error")
	}
}

// TestQuickMedianPanesMatchNaive extends the pane/naive equivalence
// property to the holistic aggregates, which merge by concatenation.
func TestQuickMedianPanesMatchNaive(t *testing.T) {
	s := MustSchema(Field{Name: "v", Kind: KindFloat})
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rangeDur := time.Duration(1+r.Intn(4)) * time.Second
		var tuples []Tuple
		sec := 0.0
		for i := 0; i < r.Intn(80); i++ {
			sec += r.Float64() * 0.5
			tuples = append(tuples, NewTuple(at(sec), Float(float64(r.Intn(50)))))
		}
		mk := func(naive bool) *WindowAgg {
			return &WindowAgg{
				Aggs: []AggSpec{
					{Name: "m", Func: AggMedian, Arg: NewCol("v")},
					{Name: "p", Func: AggPercentile, Arg: NewCol("v"), Param: 0.75},
				},
				Range: rangeDur,
				Slide: time.Second,
				Naive: naive,
			}
		}
		run := func(w *WindowAgg) []Tuple {
			if err := w.Open(s); err != nil {
				t.Fatal(err)
			}
			var out []Tuple
			i := 0
			for now := 1; now <= 12; now++ {
				bound := at(float64(now))
				for i < len(tuples) && !tuples[i].Ts.After(bound) {
					w.Process(tuples[i])
					i++
				}
				got, err := w.Advance(bound)
				if err != nil {
					t.Fatal(err)
				}
				out = append(out, got...)
			}
			return out
		}
		a := run(mk(false))
		b := run(mk(true))
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			for j := range a[i].Values {
				if a[i].Values[j] != b[i].Values[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestQuickMedianMatchesSort checks the nearest-rank definition directly.
func TestQuickMedianMatchesSort(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(30)
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = float64(r.Intn(100))
		}
		w := medianWindow(AggSpec{Name: "m", Func: AggMedian, Arg: NewCol("v")})
		s := MustSchema(Field{Name: "v", Kind: KindFloat})
		if err := w.Open(s); err != nil {
			return false
		}
		for i, v := range vals {
			w.Process(NewTuple(at(0.001*float64(i+1)), Float(v)))
		}
		out, err := w.Advance(at(1))
		if err != nil || len(out) != 1 {
			return false
		}
		sorted := append([]float64(nil), vals...)
		sort.Float64s(sorted)
		want := sorted[(n+1)/2-1] // ceil(n/2)-th, 1-indexed
		return out[0].Values[0].AsFloat() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}
