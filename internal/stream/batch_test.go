package stream

import (
	"fmt"
	"testing"
)

var batchTestSchema = MustSchema(
	Field{Name: "temp", Kind: KindFloat},
	Field{Name: "id", Kind: KindString},
)

func batchRow(sec float64, temp float64, id string) Tuple {
	return NewTuple(at(sec), Float(temp), String(id))
}

func TestBatchAppendAndValue(t *testing.T) {
	b := NewBatch(batchTestSchema)
	rows := []Tuple{
		batchRow(1, 20.5, "m0"),
		batchRow(2, 21.5, "m1"),
		batchRow(3, 22.5, "m0"),
	}
	for _, r := range rows {
		if !b.Append(r) {
			t.Fatalf("Append(%v) = false", r)
		}
	}
	if b.Len() != len(rows) {
		t.Fatalf("Len = %d, want %d", b.Len(), len(rows))
	}
	for i, r := range rows {
		if !b.RowTs(i).Equal(r.Ts) {
			t.Errorf("row %d ts = %v, want %v", i, b.RowTs(i), r.Ts)
		}
		for j, want := range r.Values {
			if got := b.Value(i, j); got != want {
				t.Errorf("value (%d,%d) = %v, want %v", i, j, got, want)
			}
		}
	}
	if c := b.Col(0); c.Kind != KindFloat || !c.noNulls() {
		t.Errorf("col 0: kind %v noNulls %v, want float/true", c.Kind, c.noNulls())
	}
}

func TestBatchValidityBitmap(t *testing.T) {
	b := NewBatch(batchTestSchema)
	// NULL before the kind is established, then values, then NULL again:
	// exercises the lazy bitmap materialization both ways.
	rows := []Tuple{
		NewTuple(at(1), Null(), String("m0")),
		batchRow(2, 21.5, "m1"),
		NewTuple(at(3), Null(), Null()),
		batchRow(4, 23.5, "m3"),
	}
	for _, r := range rows {
		if !b.Append(r) {
			t.Fatalf("Append(%v) = false", r)
		}
	}
	for i, r := range rows {
		for j, want := range r.Values {
			if got := b.Col(j).IsNull(i); got != want.IsNull() {
				t.Errorf("IsNull(%d,%d) = %v, want %v", i, j, got, want.IsNull())
			}
			if got := b.Value(i, j); got != want {
				t.Errorf("value (%d,%d) = %v, want %v", i, j, got, want)
			}
		}
	}
	if b.Col(0).noNulls() {
		t.Error("col 0 noNulls() = true after NULL rows")
	}
}

func TestBatchAppendPrefixedAtomic(t *testing.T) {
	wide := MustSchema(
		Field{Name: "src", Kind: KindString},
		Field{Name: "temp", Kind: KindFloat},
	)
	b := NewBatch(wide)
	prefix := []Value{String("leg0")}
	if !b.AppendPrefixed(prefix, NewTuple(at(1), Float(20))) {
		t.Fatal("first AppendPrefixed = false")
	}
	// Kind conflict in the tuple part must reject the row and leave the
	// batch untouched.
	if b.AppendPrefixed(prefix, NewTuple(at(2), String("oops"))) {
		t.Fatal("conflicting AppendPrefixed = true")
	}
	if b.Len() != 1 {
		t.Fatalf("Len = %d after rejected append, want 1", b.Len())
	}
	// Arity mismatch likewise.
	if b.AppendPrefixed(prefix, NewTuple(at(2), Float(21), Float(22))) {
		t.Fatal("wrong-arity AppendPrefixed = true")
	}
	// The batch must still accept compatible rows.
	if !b.AppendPrefixed(prefix, NewTuple(at(3), Float(22))) {
		t.Fatal("append after rejection = false")
	}
	if b.Len() != 2 || b.Value(1, 1) != Float(22) {
		t.Fatalf("batch corrupted after rejection: len %d row1 %v", b.Len(), b.Value(1, 1))
	}
}

func TestBatchAppendRun(t *testing.T) {
	wide := MustSchema(
		Field{Name: "src", Kind: KindString},
		Field{Name: "temp", Kind: KindFloat},
	)
	b := NewBatch(wide)
	prefix := []Value{String("leg0")}
	run := []Tuple{
		NewTuple(at(1), Null()), // kind established mid-run
		NewTuple(at(2), Float(21)),
		NewTuple(at(3), Float(22)),
	}
	if !b.AppendRun(prefix, run) {
		t.Fatal("AppendRun = false")
	}
	if b.Len() != 3 {
		t.Fatalf("Len = %d, want 3", b.Len())
	}
	for i, r := range run {
		if got := b.Value(i, 0); got != prefix[0] {
			t.Errorf("row %d prefix = %v", i, got)
		}
		if got := b.Value(i, 1); got != r.Values[0] {
			t.Errorf("row %d value = %v, want %v", i, got, r.Values[0])
		}
	}
	// A second run lands behind the first.
	if !b.AppendRun(prefix, []Tuple{NewTuple(at(4), Float(23))}) {
		t.Fatal("second AppendRun = false")
	}
	if b.Len() != 4 || b.Value(3, 1) != Float(23) {
		t.Fatalf("second run misplaced: len %d last %v", b.Len(), b.Value(3, 1))
	}
}

func TestBatchAppendRunAtomic(t *testing.T) {
	b := NewBatch(batchTestSchema)
	if !b.Append(batchRow(1, 20, "m0")) {
		t.Fatal("seed Append = false")
	}
	// A run whose later row conflicts (string into the float column) must
	// be rejected wholesale with the batch unmodified — including runs
	// whose conflict is internal (null, float, then string).
	bad := [][]Tuple{
		{NewTuple(at(2), Float(21), String("m1")), NewTuple(at(3), String("oops"), String("m2"))},
		{NewTuple(at(2), Null(), String("m1")), NewTuple(at(3), Float(21), String("m2")), NewTuple(at(4), Bool(true), String("m3"))},
		{NewTuple(at(2), Float(21), String("m1"), String("extra"))},
	}
	for _, run := range bad {
		if b.AppendRun(nil, run) {
			t.Fatalf("AppendRun(%v) = true, want rejection", run)
		}
		if b.Len() != 1 || b.Value(0, 0) != Float(20) {
			t.Fatalf("batch modified by rejected run: len %d", b.Len())
		}
	}
	if !b.AppendRun(nil, []Tuple{batchRow(2, 21, "m1")}) {
		t.Fatal("valid AppendRun after rejections = false")
	}
	if b.Len() != 2 {
		t.Fatalf("Len = %d, want 2", b.Len())
	}
}

func TestBatchTuplesRoundtrip(t *testing.T) {
	rows := []Tuple{
		batchRow(1, 20.5, "m0"),
		NewTuple(at(2), Null(), String("m1")),
		batchRow(3, 22.5, "m2"),
	}
	b, ok := BuildBatch(batchTestSchema, rows)
	if !ok {
		t.Fatal("BuildBatch = false")
	}
	got := b.Tuples()
	if len(got) != len(rows) {
		t.Fatalf("Tuples() len = %d, want %d", len(got), len(rows))
	}
	for i := range rows {
		if !got[i].Ts.Equal(rows[i].Ts) {
			t.Errorf("tuple %d ts = %v", i, got[i].Ts)
		}
		for j := range rows[i].Values {
			if got[i].Values[j] != rows[i].Values[j] {
				t.Errorf("tuple %d value %d = %v, want %v", i, j, got[i].Values[j], rows[i].Values[j])
			}
		}
	}
}

// BenchmarkBatchVsTuple measures one epoch of rows fed through Process
// versus ProcessBatch — the columnar speedup EXPERIMENTS.md records. The
// chain pair covers the row-shim operators (Filter+Project, where the
// win is allocation elimination); the window pair covers the windowed
// aggregation kernel (absorbBatch's unboxed float path, where the win is
// wall time too).
func BenchmarkBatchVsTuple(b *testing.B) {
	const rowsPerEpoch = 64
	rows := make([]Tuple, rowsPerEpoch)
	for i := range rows {
		rows[i] = batchRow(float64(i), 18+float64(i%12), fmt.Sprintf("m%02d", i%8))
	}

	mkChain := func() *Chain {
		c := NewChain(
			NewFilter(NewBinary(OpLt, NewCol("temp"), NewConst(Float(28)))),
			NewProject(
				NamedExpr{Name: "temp", Expr: NewCol("temp")},
				NamedExpr{Name: "hot", Expr: NewBinary(OpGt, NewCol("temp"), NewConst(Float(24)))},
			),
		)
		if err := c.Open(batchTestSchema); err != nil {
			b.Fatal(err)
		}
		return c
	}
	b.Run("chain/tuple", func(b *testing.B) {
		c := mkChain()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, r := range rows {
				if _, err := c.Process(r); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("chain/batch", func(b *testing.B) {
		c := mkChain()
		in := NewBatch(batchTestSchema)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			in.Reset(batchTestSchema)
			if !in.AppendRun(nil, rows) {
				b.Fatal("AppendRun = false")
			}
			if _, _, err := c.ProcessBatch(in); err != nil {
				b.Fatal(err)
			}
		}
	})

	mkWindow := func() *WindowAgg {
		w := &WindowAgg{
			GroupBy: []NamedExpr{{Name: "id", Expr: NewCol("id")}},
			Aggs: []AggSpec{
				{Name: "avg_temp", Func: AggAvg, Arg: NewCol("temp")},
				{Name: "n", Func: AggCount},
			},
			Range: 30 * 60 * 1e9,
			Slide: 5 * 60 * 1e9,
		}
		if err := w.Open(batchTestSchema); err != nil {
			b.Fatal(err)
		}
		if _, err := w.Advance(at(0)); err != nil {
			b.Fatal(err)
		}
		return w
	}
	b.Run("window/tuple", func(b *testing.B) {
		w := mkWindow()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, r := range rows {
				if _, err := w.Process(r); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("window/batch", func(b *testing.B) {
		w := mkWindow()
		in := NewBatch(batchTestSchema)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			in.Reset(batchTestSchema)
			if !in.AppendRun(nil, rows) {
				b.Fatal("AppendRun = false")
			}
			if _, _, err := w.ProcessBatch(in); err != nil {
				b.Fatal(err)
			}
		}
	})
}
