package stream

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestValueZeroIsNull(t *testing.T) {
	var v Value
	if !v.IsNull() || v.Kind() != KindNull {
		t.Fatalf("zero Value = %v, want NULL", v)
	}
}

func TestValueAccessors(t *testing.T) {
	if got := Bool(true).AsBool(); !got {
		t.Errorf("Bool(true).AsBool() = false")
	}
	if got := Int(-7).AsInt(); got != -7 {
		t.Errorf("Int(-7).AsInt() = %d", got)
	}
	if got := Float(2.5).AsFloat(); got != 2.5 {
		t.Errorf("Float(2.5).AsFloat() = %g", got)
	}
	if got := Int(3).AsFloat(); got != 3 {
		t.Errorf("Int(3).AsFloat() = %g, want int->float promotion", got)
	}
	if got := String("x").AsString(); got != "x" {
		t.Errorf("String(x).AsString() = %q", got)
	}
	ts := time.Date(2006, 4, 3, 0, 0, 0, 0, time.UTC)
	if got := Time(ts).AsTime(); !got.Equal(ts) {
		t.Errorf("Time().AsTime() = %v", got)
	}
}

func TestValueAccessorPanics(t *testing.T) {
	cases := []func(){
		func() { Int(1).AsBool() },
		func() { Bool(true).AsInt() },
		func() { String("x").AsFloat() },
		func() { Int(1).AsString() },
		func() { Int(1).AsTime() },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestValueTruthy(t *testing.T) {
	if !Bool(true).Truthy() {
		t.Error("Bool(true) not truthy")
	}
	for _, v := range []Value{Bool(false), Null(), Int(1), String("true")} {
		if v.Truthy() {
			t.Errorf("%v should not be truthy", v)
		}
	}
}

func TestValueCompare(t *testing.T) {
	tests := []struct {
		a, b Value
		want int
	}{
		{Int(1), Int(2), -1},
		{Int(2), Int(2), 0},
		{Int(3), Int(2), 1},
		{Int(1), Float(1.5), -1},
		{Float(2.0), Int(2), 0},
		{String("a"), String("b"), -1},
		{Bool(false), Bool(true), -1},
		{Time(time.Unix(1, 0)), Time(time.Unix(2, 0)), -1},
	}
	for _, tc := range tests {
		got, err := tc.a.Compare(tc.b)
		if err != nil {
			t.Errorf("Compare(%v,%v): %v", tc.a, tc.b, err)
			continue
		}
		if got != tc.want {
			t.Errorf("Compare(%v,%v) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestValueCompareErrors(t *testing.T) {
	bad := [][2]Value{
		{Null(), Int(1)},
		{Int(1), Null()},
		{Int(1), String("1")},
		{Bool(true), Int(1)},
		{Time(time.Unix(0, 0)), Int(0)},
	}
	for _, p := range bad {
		if _, err := p[0].Compare(p[1]); err == nil {
			t.Errorf("Compare(%v,%v): want error", p[0], p[1])
		}
	}
}

func TestValueEqualNullSemantics(t *testing.T) {
	if Null().Equal(Null()) {
		t.Error("NULL must not Equal NULL")
	}
	if Null().Equal(Int(0)) || Int(0).Equal(Null()) {
		t.Error("NULL must not Equal anything")
	}
	if !Int(2).Equal(Float(2)) {
		t.Error("2 should Equal 2.0")
	}
}

func TestValueArithmetic(t *testing.T) {
	check := func(got Value, err error, want Value) {
		t.Helper()
		if err != nil {
			t.Fatalf("unexpected error: %v", err)
		}
		if got != want {
			t.Fatalf("got %v (%s), want %v (%s)", got, got.Kind(), want, want.Kind())
		}
	}
	v, err := Int(2).Add(Int(3))
	check(v, err, Int(5))
	v, err = Int(2).Add(Float(0.5))
	check(v, err, Float(2.5))
	v, err = Int(7).Div(Int(2))
	check(v, err, Int(3)) // integer division
	v, err = Float(7).Div(Int(2))
	check(v, err, Float(3.5))
	v, err = Int(2).Mul(Int(-4))
	check(v, err, Int(-8))
	v, err = Int(2).Sub(Int(5))
	check(v, err, Int(-3))

	if _, err := Int(1).Div(Int(0)); err == nil {
		t.Error("integer division by zero: want error")
	}
	v, err = Float(1).Div(Float(0))
	if err != nil || !math.IsInf(v.AsFloat(), 1) {
		t.Errorf("float 1/0 = %v, %v; want +Inf", v, err)
	}
	if _, err := String("a").Add(Int(1)); err == nil {
		t.Error("string + int: want error")
	}
}

func TestValueArithmeticNullPropagation(t *testing.T) {
	ops := []func(Value, Value) (Value, error){
		Value.Add, Value.Sub, Value.Mul, Value.Div,
	}
	for i, op := range ops {
		v, err := op(Null(), Int(1))
		if err != nil || !v.IsNull() {
			t.Errorf("op %d: NULL op 1 = %v, %v; want NULL", i, v, err)
		}
		v, err = op(Int(1), Null())
		if err != nil || !v.IsNull() {
			t.Errorf("op %d: 1 op NULL = %v, %v; want NULL", i, v, err)
		}
	}
	v, err := Null().Neg()
	if err != nil || !v.IsNull() {
		t.Errorf("-NULL = %v, %v; want NULL", v, err)
	}
}

func TestValueNeg(t *testing.T) {
	v, err := Int(4).Neg()
	if err != nil || v != Int(-4) {
		t.Errorf("-4 = %v, %v", v, err)
	}
	v, err = Float(1.5).Neg()
	if err != nil || v != Float(-1.5) {
		t.Errorf("-1.5 = %v, %v", v, err)
	}
	if _, err := String("x").Neg(); err == nil {
		t.Error("-string: want error")
	}
}

// randomValue draws a random non-NULL value; kinds weighted to exercise
// numeric coercion.
func randomValue(r *rand.Rand) Value {
	switch r.Intn(5) {
	case 0:
		return Bool(r.Intn(2) == 0)
	case 1:
		return Int(int64(r.Intn(2001) - 1000))
	case 2:
		return Float(float64(r.Intn(2001)-1000) / 8)
	case 3:
		return String(string(rune('a' + r.Intn(26))))
	default:
		return Time(time.Unix(int64(r.Intn(100000)), 0).UTC())
	}
}

func TestQuickParseStringRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		v := randomValue(r)
		parsed, err := ParseValue(v.Kind(), v.String())
		if err != nil {
			return false
		}
		return parsed == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickCompareAntisymmetry(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomValue(r), randomValue(r)
		ab, err1 := a.Compare(b)
		ba, err2 := b.Compare(a)
		if (err1 == nil) != (err2 == nil) {
			return false // comparability must be symmetric
		}
		if err1 != nil {
			return true
		}
		return ab == -ba
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestQuickCompareTransitivityViaSort(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		// Same-kind values to guarantee comparability.
		kinds := []func() Value{
			func() Value { return Int(int64(r.Intn(100))) },
			func() Value { return Float(float64(r.Intn(100)) / 4) },
			func() Value { return String(string(rune('a' + r.Intn(26)))) },
		}
		gen := kinds[r.Intn(len(kinds))]
		vals := make([]Value, 20)
		for i := range vals {
			vals[i] = gen()
		}
		// lessValues must give a consistent total order: sorted sequence
		// must be pairwise non-decreasing.
		for i := 0; i < len(vals); i++ {
			for j := i + 1; j < len(vals); j++ {
				if lessValues([]Value{vals[j]}, []Value{vals[i]}) {
					vals[i], vals[j] = vals[j], vals[i]
				}
			}
		}
		for i := 1; i < len(vals); i++ {
			c, err := vals[i-1].Compare(vals[i])
			if err != nil || c > 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestParseValueErrors(t *testing.T) {
	cases := []struct {
		k Kind
		s string
	}{
		{KindInt, "abc"},
		{KindFloat, "--1"},
		{KindBool, "maybe"},
		{KindTime, "not-a-time"},
	}
	for _, tc := range cases {
		if _, err := ParseValue(tc.k, tc.s); err == nil {
			t.Errorf("ParseValue(%v, %q): want error", tc.k, tc.s)
		}
	}
}

func TestKindString(t *testing.T) {
	want := map[Kind]string{
		KindNull: "null", KindBool: "bool", KindInt: "int",
		KindFloat: "float", KindString: "string", KindTime: "time",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), s)
		}
	}
}

func TestAlmostEqual(t *testing.T) {
	if !almostEqual(1, 1+1e-12) {
		t.Error("1 ~ 1+1e-12 should hold")
	}
	if almostEqual(1, 1.01) {
		t.Error("1 !~ 1.01")
	}
}
