package stream

import (
	"fmt"
	"strings"
)

// When is one branch of a CaseExpr.
type When struct {
	Cond Expr // boolean in searched form; compared to the operand otherwise
	Then Expr
}

// CaseExpr implements SQL CASE in both forms:
//
//	CASE WHEN c1 THEN v1 WHEN c2 THEN v2 ELSE v3 END        (Operand nil)
//	CASE x WHEN a THEN v1 WHEN b THEN v2 ELSE v3 END        (Operand set)
//
// A missing ELSE yields NULL. Branch result kinds must agree up to
// numeric promotion (int branches promote to float if any branch is
// float).
type CaseExpr struct {
	Operand Expr
	Whens   []When
	Else    Expr

	kind    Kind
	promote bool // promote int results to float
}

// Bind implements Expr.
func (c *CaseExpr) Bind(s *Schema) (Kind, error) {
	if len(c.Whens) == 0 {
		return KindNull, fmt.Errorf("stream: CASE with no WHEN branches")
	}
	if c.Operand != nil {
		if _, err := c.Operand.Bind(s); err != nil {
			return KindNull, err
		}
	}
	for i, w := range c.Whens {
		k, err := w.Cond.Bind(s)
		if err != nil {
			return KindNull, err
		}
		if c.Operand == nil && k != KindBool && k != KindNull {
			return KindNull, fmt.Errorf("stream: CASE WHEN %d: condition has kind %s, want bool", i, k)
		}
	}
	// Result kind: the join of all branch kinds.
	result := KindNull
	sawFloat, sawInt := false, false
	consider := func(k Kind) error {
		switch {
		case k == KindNull:
			return nil
		case k == KindFloat:
			sawFloat = true
		case k == KindInt:
			sawInt = true
		default:
			if result != KindNull && result != k {
				return fmt.Errorf("stream: CASE branches have kinds %s and %s", result, k)
			}
			result = k
		}
		return nil
	}
	for _, w := range c.Whens {
		k, err := w.Then.Bind(s)
		if err != nil {
			return KindNull, err
		}
		if err := consider(k); err != nil {
			return KindNull, err
		}
	}
	if c.Else != nil {
		k, err := c.Else.Bind(s)
		if err != nil {
			return KindNull, err
		}
		if err := consider(k); err != nil {
			return KindNull, err
		}
	}
	if sawFloat || sawInt {
		if result != KindNull {
			return KindNull, fmt.Errorf("stream: CASE mixes numeric and %s branches", result)
		}
		if sawFloat {
			c.promote = sawInt
			c.kind = KindFloat
		} else {
			c.kind = KindInt
		}
		return c.kind, nil
	}
	c.kind = result
	return c.kind, nil
}

// Eval implements Expr.
func (c *CaseExpr) Eval(t Tuple) (Value, error) {
	var operand Value
	if c.Operand != nil {
		v, err := c.Operand.Eval(t)
		if err != nil {
			return Null(), err
		}
		operand = v
	}
	for _, w := range c.Whens {
		v, err := w.Cond.Eval(t)
		if err != nil {
			return Null(), err
		}
		var matched bool
		if c.Operand == nil {
			matched = v.Truthy()
		} else if !operand.IsNull() && !v.IsNull() {
			cv, err := operand.Compare(v)
			matched = err == nil && cv == 0
		}
		if matched {
			return c.result(w.Then, t)
		}
	}
	if c.Else == nil {
		return Null(), nil
	}
	return c.result(c.Else, t)
}

func (c *CaseExpr) result(e Expr, t Tuple) (Value, error) {
	v, err := e.Eval(t)
	if err != nil || v.IsNull() {
		return v, err
	}
	if c.promote && v.Kind() == KindInt {
		return Float(v.AsFloat()), nil
	}
	return v, nil
}

func (c *CaseExpr) String() string {
	var sb strings.Builder
	sb.WriteString("CASE")
	if c.Operand != nil {
		sb.WriteString(" " + c.Operand.String())
	}
	for _, w := range c.Whens {
		fmt.Fprintf(&sb, " WHEN %s THEN %s", w.Cond, w.Then)
	}
	if c.Else != nil {
		sb.WriteString(" ELSE " + c.Else.String())
	}
	sb.WriteString(" END")
	return sb.String()
}
