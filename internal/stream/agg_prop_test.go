package stream

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

// TestStdevLargeMagnitude is the regression test for the catastrophic
// cancellation the old sumsq/n − mean² finish suffered on values whose
// mean dwarfs their spread (unix-timestamp-scale readings): squares near
// 1e18 are representable only to ~128 absolute, so a true variance of
// 2/3 drowned in rounding noise and was silently clamped to 0. The
// shifted-moment accumulator must recover it to full precision.
func TestStdevLargeMagnitude(t *testing.T) {
	want := math.Sqrt(2.0 / 3.0) // population stdev of {x, x+1, x+2}
	for _, naive := range []bool{false, true} {
		w := &WindowAgg{
			Aggs:  []AggSpec{{Name: "sd", Func: AggStdev, Arg: NewCol("shelf")}},
			Range: 3 * time.Second, Slide: 3 * time.Second,
			Naive: naive,
		}
		sch := MustSchema(Field{Name: "shelf", Kind: KindFloat})
		if err := w.Open(sch); err != nil {
			t.Fatal(err)
		}
		if _, err := w.Advance(at(0)); err != nil {
			t.Fatal(err)
		}
		for i, sec := range []float64{0.5, 1.5, 2.5} {
			if _, err := w.Process(NewTuple(at(sec), Float(1e9+float64(i)))); err != nil {
				t.Fatal(err)
			}
		}
		out, err := w.Advance(at(3))
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != 1 {
			t.Fatalf("naive=%v: got %d rows, want 1", naive, len(out))
		}
		got := out[0].Values[0].AsFloat()
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("naive=%v: stdev = %v, want %v (±1e-9)", naive, got, want)
		}
	}
}

// foldAccum builds an accumulator over vals for the given spec.
func foldAccum(spec AggSpec, vals []Value) *accum {
	a := newAccum(spec)
	for _, v := range vals {
		a.add(v, spec.Arg == nil && spec.Func == AggCount)
	}
	return a
}

// propSpecs are the aggregates whose merge algebra the property tests
// exercise (holistic aggregates buffer values and are trivially exact).
func propSpecs() []AggSpec {
	return []AggSpec{
		{Name: "n", Func: AggCount, Arg: NewCol("v")},
		{Name: "s", Func: AggSum, Arg: NewCol("v")},
		{Name: "a", Func: AggAvg, Arg: NewCol("v")},
		{Name: "sd", Func: AggStdev, Arg: NewCol("v")},
		{Name: "mn", Func: AggMin, Arg: NewCol("v")},
		{Name: "mx", Func: AggMax, Arg: NewCol("v")},
	}
}

// genPropValues draws integer-valued floats (occasionally NULL, and in
// half the cases offset to timestamp scale) — inputs on which every
// accumulator operation is exact in float64, so the algebraic laws can
// be asserted bit for bit.
func genPropValues(r *rand.Rand, n int) []Value {
	offset := 0.0
	if r.Intn(2) == 0 {
		offset = 1e9
	}
	vals := make([]Value, n)
	for i := range vals {
		if r.Intn(10) == 0 {
			vals[i] = Null()
			continue
		}
		vals[i] = Float(offset + float64(r.Intn(200)-100))
	}
	return vals
}

// TestAccumMergeAssociativeCommutative asserts the merge algebra the
// pane optimization depends on: folding a value multiset through any
// split and any merge order must finish identically to a single
// accumulator fed sequentially.
func TestAccumMergeAssociativeCommutative(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		vals := genPropValues(r, 3+r.Intn(40))
		i, j := len(vals)/3, 2*len(vals)/3
		for _, spec := range propSpecs() {
			whole := foldAccum(spec, vals).result(spec, KindFloat)

			// (a ∪ b) ∪ c
			ab := foldAccum(spec, vals[:i])
			ab.merge(foldAccum(spec, vals[i:j]))
			ab.merge(foldAccum(spec, vals[j:]))

			// a ∪ (b ∪ c)
			bc := foldAccum(spec, vals[i:j])
			bc.merge(foldAccum(spec, vals[j:]))
			a := foldAccum(spec, vals[:i])
			a.merge(bc)

			// c ∪ (b ∪ a): commuted order
			ba := foldAccum(spec, vals[i:j])
			ba.merge(foldAccum(spec, vals[:i]))
			c := foldAccum(spec, vals[j:])
			c.merge(ba)

			for _, got := range []*accum{ab, a, c} {
				if v := got.result(spec, KindFloat); v != whole {
					t.Logf("seed %d, %s: merged %v, sequential %v", seed, spec, v, whole)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestDistinctSplitMatchesSingle asserts that DISTINCT aggregates over
// value sets split across panes (merged multiplicity maps) finish
// identically to the single-pane fold — including the float aggregates,
// whose DISTINCT folds iterate values in sorted order precisely so the
// result cannot depend on map iteration order.
func TestDistinctSplitMatchesSingle(t *testing.T) {
	specs := []AggSpec{
		{Name: "n", Func: AggCount, Arg: NewCol("v"), Distinct: true},
		{Name: "s", Func: AggSum, Arg: NewCol("v"), Distinct: true},
		{Name: "a", Func: AggAvg, Arg: NewCol("v"), Distinct: true},
		{Name: "sd", Func: AggStdev, Arg: NewCol("v"), Distinct: true},
		{Name: "md", Func: AggMedian, Arg: NewCol("v"), Distinct: true},
		{Name: "p", Func: AggPercentile, Arg: NewCol("v"), Distinct: true, Param: 0.9},
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		// A narrow domain guarantees duplicates across the split point.
		vals := make([]Value, 5+r.Intn(30))
		for i := range vals {
			vals[i] = Float(1e9 + float64(r.Intn(8)))
		}
		i := r.Intn(len(vals))
		for _, spec := range specs {
			whole := foldAccum(spec, vals).result(spec, KindFloat)
			split := foldAccum(spec, vals[:i])
			split.merge(foldAccum(spec, vals[i:]))
			if v := split.result(spec, KindFloat); v != whole {
				t.Logf("seed %d, %s: split %v, single %v", seed, spec, v, whole)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestQuantileValueBounds pins the nearest-rank quantile at its edges:
// q=0 clamps to the minimum, q=1 selects the maximum, and a single
// element answers every quantile.
func TestQuantileValueBounds(t *testing.T) {
	cases := []struct {
		name string
		vals []float64
		q    float64
		want Value
	}{
		{"q0-min", []float64{3, 1, 2}, 0, Float(1)},
		{"q1-max", []float64{3, 1, 2}, 1, Float(3)},
		{"median-odd", []float64{3, 1, 2}, 0.5, Float(2)},
		{"single-q0", []float64{7}, 0, Float(7)},
		{"single-q1", []float64{7}, 1, Float(7)},
		{"single-mid", []float64{7}, 0.5, Float(7)},
		{"empty", nil, 0.5, Null()},
	}
	for _, c := range cases {
		if got := quantileValue(append([]float64(nil), c.vals...), c.q); got != c.want {
			t.Errorf("%s: quantileValue(%v, %v) = %v, want %v", c.name, c.vals, c.q, got, c.want)
		}
	}
}

// TestWindowLateEdgeBoundary audits the late-arrival drop condition at
// the exact b−Range edge: pane semantics are (b−Range, b], so a tuple
// timestamped exactly at the left edge of the earliest unemitted window
// belongs to no live window and must be dropped (and counted), while a
// tuple just inside the edge must survive and aggregate — in both modes.
func TestWindowLateEdgeBoundary(t *testing.T) {
	for _, naive := range []bool{false, true} {
		w := &WindowAgg{
			Aggs:  []AggSpec{{Name: "n", Func: AggCount}},
			Range: 4 * time.Second, Slide: 2 * time.Second,
			Naive: naive,
		}
		if err := w.Open(rfidSchema); err != nil {
			t.Fatal(err)
		}
		if _, err := w.Advance(at(0)); err != nil {
			t.Fatal(err)
		}
		if _, err := w.Advance(at(6)); err != nil {
			t.Fatal(err)
		}
		// nextEmit is now 8s; the earliest unemitted window is (4s, 8s].
		if _, err := w.Process(read(4, "edge", 0)); err != nil {
			t.Fatal(err)
		}
		if w.Dropped != 1 {
			t.Errorf("naive=%v: tuple at exact edge b−Range: Dropped = %d, want 1", naive, w.Dropped)
		}
		if _, err := w.Process(read(4.5, "in", 0)); err != nil {
			t.Fatal(err)
		}
		if w.Dropped != 1 {
			t.Errorf("naive=%v: tuple inside window dropped (Dropped = %d)", naive, w.Dropped)
		}
		out, err := w.Advance(at(8))
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != 1 || out[0].Values[0] != Int(1) {
			t.Errorf("naive=%v: window (4s, 8s] = %v, want one row counting only the in-window tuple", naive, out)
		}
	}
}
