package stream

import (
	"fmt"
	"time"
)

// Table is a static relation: the paper's "static table joins (e.g., for
// inventory lookups)" and the expected-tag-ID relation of the digital-home
// Point stage are Tables.
type Table struct {
	schema *Schema
	rows   []Tuple
}

// NewTable builds a table, validating every row against the schema.
func NewTable(schema *Schema, rows []Tuple) (*Table, error) {
	for i, r := range rows {
		if err := CheckTuple(schema, r); err != nil {
			return nil, fmt.Errorf("stream: table row %d: %w", i, err)
		}
	}
	return &Table{schema: schema, rows: rows}, nil
}

// MustTable is NewTable that panics on error.
func MustTable(schema *Schema, rows []Tuple) *Table {
	t, err := NewTable(schema, rows)
	if err != nil {
		panic(err)
	}
	return t
}

// Schema returns the table's schema.
func (t *Table) Schema() *Schema { return t.schema }

// Len returns the number of rows.
func (t *Table) Len() int { return len(t.rows) }

// Rows returns the backing rows (not a copy; callers must not mutate).
func (t *Table) Rows() []Tuple { return t.rows }

// JoinMode selects the join semantics of JoinStatic.
type JoinMode uint8

const (
	// JoinInner emits stream⋈table rows (stream columns then table
	// columns) for every match.
	JoinInner JoinMode = iota
	// JoinSemi passes a stream tuple through unchanged if it has at least
	// one match.
	JoinSemi
	// JoinAnti passes a stream tuple through unchanged if it has no match.
	JoinAnti
)

func (m JoinMode) String() string {
	switch m {
	case JoinInner:
		return "inner"
	case JoinSemi:
		return "semi"
	case JoinAnti:
		return "anti"
	default:
		return fmt.Sprintf("join(%d)", uint8(m))
	}
}

// JoinStatic equi-joins the stream with a static Table on one column pair.
// The table side is indexed once at Open; per-tuple lookup is O(matches).
type JoinStatic struct {
	Table     *Table
	StreamCol string
	TableCol  string
	Mode      JoinMode

	in, out  *Schema
	streamIx int
	index    map[Value][]int
}

// Open implements Operator.
func (j *JoinStatic) Open(in *Schema) error {
	j.in = in
	ix, ok := in.Index(j.StreamCol)
	if !ok {
		return fmt.Errorf("stream: join: unknown stream column %q in %s", j.StreamCol, in)
	}
	j.streamIx = ix
	tix, ok := j.Table.schema.Index(j.TableCol)
	if !ok {
		return fmt.Errorf("stream: join: unknown table column %q in %s", j.TableCol, j.Table.schema)
	}
	j.index = make(map[Value][]int, j.Table.Len())
	for i, r := range j.Table.rows {
		k := r.Values[tix]
		if k.IsNull() {
			continue // NULL never joins
		}
		k = normalizeJoinKey(k)
		j.index[k] = append(j.index[k], i)
	}
	switch j.Mode {
	case JoinInner:
		out, err := in.Concat(j.Table.schema)
		if err != nil {
			return fmt.Errorf("stream: join: %w (alias overlapping columns)", err)
		}
		j.out = out
	case JoinSemi, JoinAnti:
		j.out = in
	default:
		return fmt.Errorf("stream: join: unknown mode %v", j.Mode)
	}
	return nil
}

// normalizeJoinKey promotes ints to floats so int/float key pairs match,
// mirroring Value.Compare's numeric coercion.
func normalizeJoinKey(v Value) Value {
	if v.Kind() == KindInt {
		return Float(v.AsFloat())
	}
	return v
}

// Schema implements Operator.
func (j *JoinStatic) Schema() *Schema { return j.out }

// Process implements Operator.
func (j *JoinStatic) Process(t Tuple) ([]Tuple, error) {
	k := t.Values[j.streamIx]
	var matches []int
	if !k.IsNull() {
		matches = j.index[normalizeJoinKey(k)]
	}
	switch j.Mode {
	case JoinSemi:
		if len(matches) > 0 {
			return []Tuple{t}, nil
		}
		return nil, nil
	case JoinAnti:
		if len(matches) == 0 {
			return []Tuple{t}, nil
		}
		return nil, nil
	}
	if len(matches) == 0 {
		return nil, nil
	}
	out := make([]Tuple, 0, len(matches))
	for _, ri := range matches {
		row := j.Table.rows[ri]
		vals := make([]Value, 0, len(t.Values)+len(row.Values))
		vals = append(vals, t.Values...)
		vals = append(vals, row.Values...)
		out = append(out, Tuple{Ts: t.Ts, Values: vals})
	}
	return out, nil
}

// Advance implements Operator.
func (j *JoinStatic) Advance(time.Time) ([]Tuple, error) { return nil, nil }

// Close implements Operator.
func (j *JoinStatic) Close() ([]Tuple, error) { return nil, nil }
