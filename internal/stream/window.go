package stream

import (
	"fmt"
	"sort"
	"sync/atomic"
	"time"
)

// WindowTelemetrySource exposes a window operator's live state for
// telemetry snapshots: the number of open panes and the count of late
// tuples dropped. Implementations must make both values safe to read
// from a goroutine other than the one processing tuples (the processor
// polls them via gauge functions while a run is in flight). Chain and
// Graph implement it by summing over their contained operators.
type WindowTelemetrySource interface {
	WindowTelemetry() (panes, lateDrops int64)
}

// WindowAgg is a sliding-window GROUP BY aggregation: the workhorse behind
// the paper's Smooth and Merge stages and behind every `[Range By 'd']`
// CQL query.
//
// Window semantics: boundaries lie at origin + k*Slide, where origin is the
// time of the first punctuation the operator receives. The window ending at
// boundary b covers tuples with Ts in (b-Range, b]; results are emitted with
// Ts = b. A Range of zero denotes the paper's `[Range By 'NOW']` window and
// is interpreted as "the current epoch", i.e. Range = Slide.
//
// Implementation: tuples are folded into per-pane partial aggregates (panes
// of size gcd(Range, Slide)); a window result merges the panes it spans, so
// sliding emission costs O(groups × panes) instead of O(tuples). Setting
// Naive re-aggregates the buffered tuples from scratch on each emission;
// the two modes are verified equivalent by property tests and compared by
// the BenchmarkAblationPanes benchmark.
type WindowAgg struct {
	GroupBy []NamedExpr
	Aggs    []AggSpec
	// Range is the window length (temporal granule); zero means NOW.
	Range time.Duration
	// Slide is the emission period. It must be positive.
	Slide time.Duration
	// Having, if non-nil, filters output rows; it is bound against the
	// output schema.
	Having Expr
	// EmitEmpty controls whether a boundary with no live groups emits a
	// row. It only applies to global aggregation (no GROUP BY), where SQL
	// semantics produce one row even over empty input.
	EmitEmpty bool
	// Naive selects the re-aggregating implementation (for ablation).
	Naive bool

	in, out  *Schema
	argKinds []Kind
	pane     time.Duration
	origin   time.Time
	started  bool
	nextEmit time.Time
	pending  []Tuple // tuples seen before the first punctuation
	panes    map[int64]map[GroupKey]*paneCell
	buffer   []Tuple // Naive mode: live tuples
	// Dropped counts late tuples discarded because every window that
	// could contain them (boundary ≥ nextEmit, covering (b−Range, b])
	// had already been emitted.
	Dropped int64
	// livePanes and lateDrops mirror len(panes) and Dropped atomically so
	// telemetry gauges can read them mid-run without racing the operator.
	livePanes atomic.Int64
	lateDrops atomic.Int64
}

// WindowTelemetry implements WindowTelemetrySource. In Naive mode the
// pane count is always zero (tuples are buffered whole, not paned).
func (w *WindowAgg) WindowTelemetry() (panes, lateDrops int64) {
	return w.livePanes.Load(), w.lateDrops.Load()
}

type paneCell struct {
	groupVals []Value
	accums    []*accum
}

// Open implements Operator.
func (w *WindowAgg) Open(in *Schema) error {
	if w.Slide <= 0 {
		return fmt.Errorf("stream: window: slide must be positive, got %v", w.Slide)
	}
	if w.Range < 0 {
		return fmt.Errorf("stream: window: negative range %v", w.Range)
	}
	if w.Range == 0 { // [Range By 'NOW']
		w.Range = w.Slide
	}
	w.pane = gcdDuration(w.Range, w.Slide)
	w.in = in

	fields := make([]Field, 0, len(w.GroupBy)+len(w.Aggs))
	for _, g := range w.GroupBy {
		k, err := g.Expr.Bind(in)
		if err != nil {
			return fmt.Errorf("stream: window group %q: %w", g.Name, err)
		}
		fields = append(fields, Field{Name: g.Name, Kind: k})
	}
	w.argKinds = make([]Kind, len(w.Aggs))
	for i, a := range w.Aggs {
		argKind := KindNull
		if a.Arg != nil {
			k, err := a.Arg.Bind(in)
			if err != nil {
				return fmt.Errorf("stream: window agg %s: %w", a, err)
			}
			argKind = k
		} else if a.Func != AggCount {
			return fmt.Errorf("stream: window agg %s: only count may omit its argument", a)
		}
		w.argKinds[i] = argKind
		rk, err := a.resultKind(argKind)
		if err != nil {
			return err
		}
		fields = append(fields, Field{Name: a.Name, Kind: rk})
	}
	out, err := NewSchema(fields...)
	if err != nil {
		return fmt.Errorf("stream: window: %w", err)
	}
	w.out = out
	if w.Having != nil {
		k, err := w.Having.Bind(out)
		if err != nil {
			return fmt.Errorf("stream: window having: %w", err)
		}
		if k != KindBool && k != KindNull {
			return fmt.Errorf("stream: window having: kind %s, want bool", k)
		}
	}
	w.panes = make(map[int64]map[GroupKey]*paneCell)
	return nil
}

// Schema implements Operator.
func (w *WindowAgg) Schema() *Schema { return w.out }

// Process implements Operator.
func (w *WindowAgg) Process(t Tuple) ([]Tuple, error) {
	if !w.started {
		w.pending = append(w.pending, t)
		return nil, nil
	}
	return nil, w.absorb(t)
}

func (w *WindowAgg) absorb(t Tuple) error {
	// Drop tuples at or before the left edge of the earliest unemitted
	// window (nextEmit−Range, nextEmit]: no window with boundary ≥
	// nextEmit can contain them. The edge itself is excluded — pane
	// semantics are (b−Range, b]. Both modes apply the same test so the
	// Dropped counter agrees between them.
	if !w.nextEmit.IsZero() && !t.Ts.After(w.nextEmit.Add(-w.Range)) {
		w.Dropped++
		w.lateDrops.Add(1)
		return nil
	}
	if w.Naive {
		w.buffer = append(w.buffer, t)
		return nil
	}
	j := w.paneIndex(t.Ts)
	cells := w.panes[j]
	if cells == nil {
		cells = make(map[GroupKey]*paneCell)
		w.panes[j] = cells
		w.livePanes.Add(1)
	}
	groupVals := make([]Value, len(w.GroupBy))
	for i, g := range w.GroupBy {
		v, err := g.Expr.Eval(t)
		if err != nil {
			return fmt.Errorf("stream: window group %q: %w", g.Name, err)
		}
		groupVals[i] = v
	}
	key := MakeGroupKey(groupVals...)
	cell := cells[key]
	if cell == nil {
		cell = &paneCell{groupVals: groupVals, accums: make([]*accum, len(w.Aggs))}
		for i, a := range w.Aggs {
			cell.accums[i] = newAccum(a)
		}
		cells[key] = cell
	}
	for i, a := range w.Aggs {
		if a.Arg == nil {
			cell.accums[i].add(Null(), true)
			continue
		}
		v, err := a.Arg.Eval(t)
		if err != nil {
			return fmt.Errorf("stream: window agg %s: %w", a, err)
		}
		cell.accums[i].add(v, false)
	}
	return nil
}

// paneIndex returns the index of the pane containing ts: pane j covers
// (origin+(j-1)*pane, origin+j*pane].
func (w *WindowAgg) paneIndex(ts time.Time) int64 {
	d := ts.Sub(w.origin)
	return ceilDiv(int64(d), int64(w.pane))
}

func ceilDiv(a, b int64) int64 {
	q := a / b
	if a%b > 0 {
		q++
	}
	return q
}

func gcdDuration(a, b time.Duration) time.Duration {
	x, y := int64(a), int64(b)
	for y != 0 {
		x, y = y, x%y
	}
	return time.Duration(x)
}

// Advance implements Operator.
func (w *WindowAgg) Advance(now time.Time) ([]Tuple, error) {
	if !w.started {
		w.started = true
		w.origin = now
		w.nextEmit = now
		for _, t := range w.pending {
			if err := w.absorb(t); err != nil {
				return nil, err
			}
		}
		w.pending = nil
	}
	var out []Tuple
	for !w.nextEmit.After(now) {
		emitted, err := w.emit(w.nextEmit)
		if err != nil {
			return nil, err
		}
		out = append(out, emitted...)
		w.nextEmit = w.nextEmit.Add(w.Slide)
	}
	return out, nil
}

// Close implements Operator.
func (w *WindowAgg) Close() ([]Tuple, error) {
	// Emit one final window at the next boundary so trailing tuples are
	// not lost when the stream ends between boundaries.
	if !w.started {
		// The stream ended before any punctuation: anchor the single
		// closing window at the last tuple's timestamp.
		if len(w.pending) == 0 {
			return nil, nil
		}
		w.started = true
		w.origin = w.pending[len(w.pending)-1].Ts
		w.nextEmit = w.origin
		for _, t := range w.pending {
			if err := w.absorb(t); err != nil {
				return nil, err
			}
		}
		w.pending = nil
	}
	// Prune state the final window (nextEmit−Range, nextEmit] cannot
	// observe before deciding whether anything is left to emit, so both
	// modes agree on whether the closing window fires: panes at or left
	// of the window's left edge, and buffered tuples at or before it.
	lo := w.nextEmit.Add(-w.Range)
	jLo := int64(lo.Sub(w.origin)) / int64(w.pane)
	for j := range w.panes {
		if j <= jLo {
			delete(w.panes, j)
			w.livePanes.Add(-1)
		}
	}
	live := w.buffer[:0]
	for _, t := range w.buffer {
		if t.Ts.After(lo) {
			live = append(live, t)
		}
	}
	w.buffer = live
	if len(w.panes) == 0 && len(w.buffer) == 0 {
		return nil, nil
	}
	return w.emit(w.nextEmit)
}

// emit produces the window result for boundary b.
func (w *WindowAgg) emit(b time.Time) ([]Tuple, error) {
	if w.Naive {
		return w.emitNaive(b)
	}
	jHi := int64(b.Sub(w.origin)) / int64(w.pane)
	jLo := int64(b.Add(-w.Range).Sub(w.origin)) / int64(w.pane) // exclusive

	merged := make(map[GroupKey]*paneCell)
	for j := jLo + 1; j <= jHi; j++ {
		for key, cell := range w.panes[j] {
			m := merged[key]
			if m == nil {
				m = &paneCell{groupVals: cell.groupVals, accums: make([]*accum, len(w.Aggs))}
				for i, a := range w.Aggs {
					m.accums[i] = newAccum(a)
				}
				merged[key] = m
			}
			for i := range w.Aggs {
				m.accums[i].merge(cell.accums[i])
			}
		}
	}
	// Evict panes at or before jLo: every later window starts after them.
	for j := range w.panes {
		if j <= jLo {
			delete(w.panes, j)
			w.livePanes.Add(-1)
		}
	}
	return w.finish(b, merged)
}

func (w *WindowAgg) emitNaive(b time.Time) ([]Tuple, error) {
	lo := b.Add(-w.Range)
	live := w.buffer[:0]
	for _, t := range w.buffer {
		if t.Ts.After(lo) {
			live = append(live, t)
		}
	}
	w.buffer = live

	merged := make(map[GroupKey]*paneCell)
	for _, t := range w.buffer {
		if t.Ts.After(b) {
			continue
		}
		groupVals := make([]Value, len(w.GroupBy))
		for i, g := range w.GroupBy {
			v, err := g.Expr.Eval(t)
			if err != nil {
				return nil, err
			}
			groupVals[i] = v
		}
		key := MakeGroupKey(groupVals...)
		cell := merged[key]
		if cell == nil {
			cell = &paneCell{groupVals: groupVals, accums: make([]*accum, len(w.Aggs))}
			for i, a := range w.Aggs {
				cell.accums[i] = newAccum(a)
			}
			merged[key] = cell
		}
		for i, a := range w.Aggs {
			if a.Arg == nil {
				cell.accums[i].add(Null(), true)
				continue
			}
			v, err := a.Arg.Eval(t)
			if err != nil {
				return nil, err
			}
			cell.accums[i].add(v, false)
		}
	}
	return w.finish(b, merged)
}

// finish converts merged group cells into output tuples, sorted by group
// values for determinism, and applies HAVING.
func (w *WindowAgg) finish(b time.Time, merged map[GroupKey]*paneCell) ([]Tuple, error) {
	if len(merged) == 0 {
		if len(w.GroupBy) == 0 && w.EmitEmpty {
			empty := &paneCell{accums: make([]*accum, len(w.Aggs))}
			for i, a := range w.Aggs {
				empty.accums[i] = newAccum(a)
			}
			merged[MakeGroupKey()] = empty
		} else {
			return nil, nil
		}
	}
	cells := make([]*paneCell, 0, len(merged))
	for _, c := range merged {
		cells = append(cells, c)
	}
	sort.Slice(cells, func(i, j int) bool { return lessValues(cells[i].groupVals, cells[j].groupVals) })

	out := make([]Tuple, 0, len(cells))
	for _, cell := range cells {
		vals := make([]Value, 0, len(w.GroupBy)+len(w.Aggs))
		vals = append(vals, cell.groupVals...)
		for i, a := range w.Aggs {
			vals = append(vals, cell.accums[i].result(a, w.argKinds[i]))
		}
		t := Tuple{Ts: b, Values: vals}
		if w.Having != nil {
			v, err := w.Having.Eval(t)
			if err != nil {
				return nil, fmt.Errorf("stream: window having: %w", err)
			}
			if !v.Truthy() {
				continue
			}
		}
		out = append(out, t)
	}
	return out, nil
}

// lessValues orders value slices lexicographically; NULLs sort first and
// incomparable pairs fall back to string order so the sort is total.
func lessValues(a, b []Value) bool {
	for i := range a {
		if i >= len(b) {
			return false
		}
		if lessValue(a[i], b[i]) {
			return true
		}
		if lessValue(b[i], a[i]) {
			return false
		}
	}
	return len(a) < len(b)
}

// lessValue totally orders two scalars: NULLs first, Compare where
// defined, string rendering as the fallback for incomparable pairs.
func lessValue(a, b Value) bool {
	switch {
	case a.IsNull():
		return !b.IsNull()
	case b.IsNull():
		return false
	}
	c, err := a.Compare(b)
	if err != nil {
		return a.String() < b.String()
	}
	return c < 0
}
