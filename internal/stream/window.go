package stream

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// WindowTelemetrySource exposes a window operator's live state for
// telemetry snapshots: the number of open panes and the count of late
// tuples dropped. Implementations must make both values safe to read
// from a goroutine other than the one processing tuples (the processor
// polls them via gauge functions while a run is in flight). Chain and
// Graph implement it by summing over their contained operators.
type WindowTelemetrySource interface {
	WindowTelemetry() (panes, lateDrops int64)
}

// WindowAgg is a sliding-window GROUP BY aggregation: the workhorse behind
// the paper's Smooth and Merge stages and behind every `[Range By 'd']`
// CQL query.
//
// Window semantics: boundaries lie at origin + k*Slide, where origin is the
// time of the first punctuation the operator receives. The window ending at
// boundary b covers tuples with Ts in (b-Range, b]; results are emitted with
// Ts = b. A Range of zero denotes the paper's `[Range By 'NOW']` window and
// is interpreted as "the current epoch", i.e. Range = Slide.
//
// Implementation: tuples are folded into per-pane partial aggregates (panes
// of size gcd(Range, Slide)); a window result merges the panes it spans, so
// sliding emission costs O(groups × panes) instead of O(tuples). Setting
// Naive re-aggregates the buffered tuples from scratch on each emission;
// the two modes are verified equivalent by property tests and compared by
// the BenchmarkAblationPanes benchmark.
type WindowAgg struct {
	GroupBy []NamedExpr
	Aggs    []AggSpec
	// Range is the window length (temporal granule); zero means NOW.
	Range time.Duration
	// Slide is the emission period. It must be positive.
	Slide time.Duration
	// Having, if non-nil, filters output rows; it is bound against the
	// output schema.
	Having Expr
	// Where, if non-nil, filters input rows before they touch any window
	// state — the optimizer's fusion target for a Filter immediately
	// preceding the aggregation. It is bound against the input schema and
	// applied before pre-punctuation buffering, so Close's origin anchor
	// (the last pending tuple's timestamp) matches the unfused plan.
	Where Expr
	// EmitEmpty controls whether a boundary with no live groups emits a
	// row. It only applies to global aggregation (no GROUP BY), where SQL
	// semantics produce one row even over empty input.
	EmitEmpty bool
	// Naive selects the re-aggregating implementation (for ablation).
	Naive bool

	in, out  *Schema
	argKinds []Kind
	pane     time.Duration
	origin   time.Time
	started  bool
	nextEmit time.Time
	pending  []Tuple // tuples seen before the first punctuation
	panes    map[int64]*cellStore
	buffer   []Tuple // Naive mode: live tuples

	groupFns   []EvalFunc
	argFns     []EvalFunc // nil entries for count(*)
	havingFn   EvalFunc
	whereFn    EvalFunc
	gscratch   []Value // reused per-tuple group-value buffer
	rowScratch []Value // reused batch-row buffer
	// Columnar fast path: when every GROUP BY expression and aggregate
	// argument is a bare column reference, rows of a Batch are absorbed
	// straight off the columns — no scratch tuple, no EvalFunc call.
	// groupCols/argCols hold the resolved column indexes (-1 for
	// count(*)); colsOK reports the precondition holds.
	groupCols []int
	argCols   []int
	colsOK    bool
	// aggFloatable[k] marks aggregate k eligible for the unboxed float
	// kernel (non-DISTINCT and not min/max); batchArgs is the per-call
	// scratch of resolved argument columns.
	aggFloatable []bool
	batchArgs    []batchArg
	// Recycling: evicted pane stores/cells and the per-emit merged store
	// go on free lists instead of to the garbage collector, so the
	// steady-state absorb/emit cycle allocates only output tuples. Every
	// pooled cell owns its groupVals backing (newCell always clones), so
	// reuse can never alias live group values.
	freeStores []*cellStore
	freeCells  []*paneCell
	// Dropped counts late tuples discarded because every window that
	// could contain them (boundary ≥ nextEmit, covering (b−Range, b])
	// had already been emitted.
	Dropped int64
	// livePanes and lateDrops mirror len(panes) and Dropped atomically so
	// telemetry gauges can read them mid-run without racing the operator.
	livePanes atomic.Int64
	lateDrops atomic.Int64
}

// WindowTelemetry implements WindowTelemetrySource. In Naive mode the
// pane count is always zero (tuples are buffered whole, not paned).
func (w *WindowAgg) WindowTelemetry() (panes, lateDrops int64) {
	return w.livePanes.Load(), w.lateDrops.Load()
}

type paneCell struct {
	groupVals []Value
	accums    []accum
}

// cellStore maps group values to pane cells, specialized by group arity:
// global aggregation (no GROUP BY) needs no map at all, grouping on one
// expression keys a map on the Value itself (far cheaper to hash than a
// composite GroupKey), and wider groupings keep the GroupKey map. Cells
// are also kept in insertion order so iteration is deterministic.
type cellStore struct {
	single *paneCell
	byOne  map[Value]*paneCell
	byKey  map[GroupKey]*paneCell
	cells  []*paneCell
}

func newCellStore(nGroups int) *cellStore {
	s := &cellStore{}
	switch nGroups {
	case 0:
	case 1:
		s.byOne = make(map[Value]*paneCell)
	default:
		s.byKey = make(map[GroupKey]*paneCell)
	}
	return s
}

func (s *cellStore) get(groupVals []Value) *paneCell {
	switch {
	case s.byOne != nil:
		return s.byOne[groupVals[0]]
	case s.byKey != nil:
		return s.byKey[MakeGroupKey(groupVals...)]
	default:
		return s.single
	}
}

func (s *cellStore) put(c *paneCell) {
	switch {
	case s.byOne != nil:
		s.byOne[c.groupVals[0]] = c
	case s.byKey != nil:
		s.byKey[MakeGroupKey(c.groupVals...)] = c
	default:
		s.single = c
	}
	s.cells = append(s.cells, c)
}

// reset empties a store for reuse, keeping its maps and cell slice
// capacity.
func (s *cellStore) reset() {
	s.single = nil
	clear(s.byOne)
	clear(s.byKey)
	s.cells = s.cells[:0]
}

// newCell returns a cell for the given (borrowed) group values, cloning
// them into owned storage. Recycled cells are reused when available.
func (w *WindowAgg) newCell(groupVals []Value) *paneCell {
	if n := len(w.freeCells); n > 0 {
		cell := w.freeCells[n-1]
		w.freeCells = w.freeCells[:n-1]
		cell.groupVals = append(cell.groupVals[:0], groupVals...)
		for i, a := range w.Aggs {
			cell.accums[i] = mkAccum(a)
		}
		return cell
	}
	cell := &paneCell{
		groupVals: append([]Value(nil), groupVals...),
		accums:    make([]accum, len(w.Aggs)),
	}
	for i, a := range w.Aggs {
		cell.accums[i] = mkAccum(a)
	}
	return cell
}

// takeStore returns an empty cellStore for this operator's group arity,
// reusing a recycled one when available.
func (w *WindowAgg) takeStore() *cellStore {
	if n := len(w.freeStores); n > 0 {
		s := w.freeStores[n-1]
		w.freeStores = w.freeStores[:n-1]
		return s
	}
	return newCellStore(len(w.GroupBy))
}

// recycleStore moves a store and its cells to the free lists. Callers
// must be done reading the cells' state (evicted panes, a finished merge
// scratch); output tuples are safe because finish copies every value.
func (w *WindowAgg) recycleStore(s *cellStore) {
	w.freeCells = append(w.freeCells, s.cells...)
	s.reset()
	w.freeStores = append(w.freeStores, s)
}

// Open implements Operator.
func (w *WindowAgg) Open(in *Schema) error {
	if w.Slide <= 0 {
		return fmt.Errorf("stream: window: slide must be positive, got %v", w.Slide)
	}
	if w.Range < 0 {
		return fmt.Errorf("stream: window: negative range %v", w.Range)
	}
	if w.Range == 0 { // [Range By 'NOW']
		w.Range = w.Slide
	}
	w.pane = gcdDuration(w.Range, w.Slide)
	w.in = in

	if w.Where != nil {
		// Bind and report errors exactly as the standalone Filter the
		// optimizer fused away would have, so diagnostics are unchanged.
		k, err := w.Where.Bind(in)
		if err != nil {
			return fmt.Errorf("stream: filter: %w", err)
		}
		if k != KindBool && k != KindNull {
			return fmt.Errorf("stream: filter: predicate has kind %s, want bool", k)
		}
		w.whereFn = CompileExpr(w.Where)
	}

	fields := make([]Field, 0, len(w.GroupBy)+len(w.Aggs))
	w.groupFns = make([]EvalFunc, len(w.GroupBy))
	w.groupCols = make([]int, len(w.GroupBy))
	w.colsOK = true
	for i, g := range w.GroupBy {
		k, err := g.Expr.Bind(in)
		if err != nil {
			return fmt.Errorf("stream: window group %q: %w", g.Name, err)
		}
		fields = append(fields, Field{Name: g.Name, Kind: k})
		w.groupFns[i] = CompileExpr(g.Expr)
		if c, ok := g.Expr.(*Col); ok {
			w.groupCols[i] = c.idx
		} else {
			w.colsOK = false
		}
	}
	w.argKinds = make([]Kind, len(w.Aggs))
	w.argFns = make([]EvalFunc, len(w.Aggs))
	w.argCols = make([]int, len(w.Aggs))
	w.aggFloatable = make([]bool, len(w.Aggs))
	for i, a := range w.Aggs {
		argKind := KindNull
		w.argCols[i] = -1
		w.aggFloatable[i] = !a.Distinct && a.Func != AggMin && a.Func != AggMax
		if a.Arg != nil {
			k, err := a.Arg.Bind(in)
			if err != nil {
				return fmt.Errorf("stream: window agg %s: %w", a, err)
			}
			argKind = k
			w.argFns[i] = CompileExpr(a.Arg)
			if c, ok := a.Arg.(*Col); ok {
				w.argCols[i] = c.idx
			} else {
				w.colsOK = false
			}
		} else if a.Func != AggCount {
			return fmt.Errorf("stream: window agg %s: only count may omit its argument", a)
		}
		w.argKinds[i] = argKind
		rk, err := a.resultKind(argKind)
		if err != nil {
			return err
		}
		fields = append(fields, Field{Name: a.Name, Kind: rk})
	}
	out, err := NewSchema(fields...)
	if err != nil {
		return fmt.Errorf("stream: window: %w", err)
	}
	w.out = out
	if w.Having != nil {
		k, err := w.Having.Bind(out)
		if err != nil {
			return fmt.Errorf("stream: window having: %w", err)
		}
		if k != KindBool && k != KindNull {
			return fmt.Errorf("stream: window having: kind %s, want bool", k)
		}
		w.havingFn = CompileExpr(w.Having)
	}
	w.panes = make(map[int64]*cellStore)
	return nil
}

// Schema implements Operator.
func (w *WindowAgg) Schema() *Schema { return w.out }

// Process implements Operator.
func (w *WindowAgg) Process(t Tuple) ([]Tuple, error) {
	if w.whereFn != nil {
		v, err := w.whereFn(t)
		if err != nil {
			return nil, fmt.Errorf("stream: filter: %w", err)
		}
		if !v.Truthy() {
			return nil, nil
		}
	}
	if !w.started {
		w.pending = append(w.pending, t)
		return nil, nil
	}
	return nil, w.absorb(t)
}

func (w *WindowAgg) absorb(t Tuple) error {
	// Drop tuples at or before the left edge of the earliest unemitted
	// window (nextEmit−Range, nextEmit]: no window with boundary ≥
	// nextEmit can contain them. The edge itself is excluded — pane
	// semantics are (b−Range, b]. Both modes apply the same test so the
	// Dropped counter agrees between them.
	if !w.nextEmit.IsZero() && !t.Ts.After(w.nextEmit.Add(-w.Range)) {
		w.Dropped++
		w.lateDrops.Add(1)
		return nil
	}
	if w.Naive {
		w.buffer = append(w.buffer, t)
		return nil
	}
	j := w.paneIndex(t.Ts)
	cells := w.panes[j]
	if cells == nil {
		cells = w.takeStore()
		w.panes[j] = cells
		w.livePanes.Add(1)
	}
	w.gscratch = w.gscratch[:0]
	for i, g := range w.GroupBy {
		v, err := w.groupFns[i](t)
		if err != nil {
			return fmt.Errorf("stream: window group %q: %w", g.Name, err)
		}
		w.gscratch = append(w.gscratch, v)
	}
	cell := cells.get(w.gscratch)
	if cell == nil {
		cell = w.newCell(w.gscratch)
		cells.put(cell)
	}
	for i, a := range w.Aggs {
		if a.Arg == nil {
			cell.accums[i].add(Null(), true)
			continue
		}
		v, err := w.argFns[i](t)
		if err != nil {
			return fmt.Errorf("stream: window agg %s: %w", a, err)
		}
		cell.accums[i].add(v, false)
	}
	return nil
}

// absorbBatch folds every row of a batch into the pane accumulators
// straight off the columns — the columnar analogue of absorb, valid only
// when colsOK (bare-column groups/args), the operator is started, no
// WHERE is fused, and the mode is not Naive. Per row it performs the same
// late-drop test, pane lookup, group lookup, and accumulator updates as
// absorb, so the two paths are observationally identical.
func (w *WindowAgg) absorbBatch(b *Batch) error {
	n := b.Len()
	var lateEdge time.Time
	checkLate := !w.nextEmit.IsZero()
	if checkLate {
		lateEdge = w.nextEmit.Add(-w.Range)
	}
	global := len(w.GroupBy) == 0
	// Resolve each aggregate's argument column once per batch; fast marks
	// the unboxed float kernel (float column, no NULLs, eligible spec).
	if cap(w.batchArgs) < len(w.Aggs) {
		w.batchArgs = make([]batchArg, len(w.Aggs))
	}
	args := w.batchArgs[:len(w.Aggs)]
	for k := range w.Aggs {
		if ci := w.argCols[k]; ci >= 0 {
			c := b.Col(ci)
			args[k] = batchArg{col: c, fast: w.aggFloatable[k] && c.Kind == KindFloat && c.noNulls()}
		} else {
			args[k] = batchArg{}
		}
	}
	lastJ := int64(math.MinInt64)
	var cells *cellStore
	var cell *paneCell // cached across rows for global aggregation only
	for i := 0; i < n; i++ {
		ts := b.RowTs(i)
		if checkLate && !ts.After(lateEdge) {
			w.Dropped++
			w.lateDrops.Add(1)
			continue
		}
		if j := w.paneIndex(ts); j != lastJ {
			lastJ = j
			cells = w.panes[j]
			if cells == nil {
				cells = w.takeStore()
				w.panes[j] = cells
				w.livePanes.Add(1)
			}
			cell = nil
		}
		if global {
			if cell == nil {
				cell = cells.single
				if cell == nil {
					cell = w.newCell(nil)
					cells.put(cell)
				}
			}
		} else {
			w.gscratch = w.gscratch[:0]
			for _, ci := range w.groupCols {
				w.gscratch = append(w.gscratch, b.Col(ci).Value(i))
			}
			c := cells.get(w.gscratch)
			if c == nil {
				c = w.newCell(w.gscratch)
				cells.put(c)
			}
			cell = c
		}
		for k := range args {
			a := &args[k]
			if a.col == nil {
				cell.accums[k].add(Null(), true)
				continue
			}
			if a.fast {
				cell.accums[k].addFloat(a.col.Floats[i])
				continue
			}
			cell.accums[k].add(a.col.Value(i), false)
		}
	}
	return nil
}

// batchArg is absorbBatch's resolved view of one aggregate argument.
type batchArg struct {
	col  *Column // nil for count(*)
	fast bool    // unboxed float kernel applies
}

// paneIndex returns the index of the pane containing ts: pane j covers
// (origin+(j-1)*pane, origin+j*pane].
func (w *WindowAgg) paneIndex(ts time.Time) int64 {
	d := ts.Sub(w.origin)
	return ceilDiv(int64(d), int64(w.pane))
}

func ceilDiv(a, b int64) int64 {
	q := a / b
	if a%b > 0 {
		q++
	}
	return q
}

func gcdDuration(a, b time.Duration) time.Duration {
	x, y := int64(a), int64(b)
	for y != 0 {
		x, y = y, x%y
	}
	return time.Duration(x)
}

// Advance implements Operator.
func (w *WindowAgg) Advance(now time.Time) ([]Tuple, error) {
	if !w.started {
		w.started = true
		w.origin = now
		w.nextEmit = now
		for _, t := range w.pending {
			if err := w.absorb(t); err != nil {
				return nil, err
			}
		}
		w.pending = nil
	}
	var out []Tuple
	for !w.nextEmit.After(now) {
		emitted, err := w.emit(w.nextEmit)
		if err != nil {
			return nil, err
		}
		if out == nil {
			out = emitted
		} else {
			out = append(out, emitted...)
		}
		w.nextEmit = w.nextEmit.Add(w.Slide)
	}
	return out, nil
}

// Close implements Operator.
func (w *WindowAgg) Close() ([]Tuple, error) {
	// Emit one final window at the next boundary so trailing tuples are
	// not lost when the stream ends between boundaries.
	if !w.started {
		// The stream ended before any punctuation: anchor the single
		// closing window at the last tuple's timestamp.
		if len(w.pending) == 0 {
			return nil, nil
		}
		w.started = true
		w.origin = w.pending[len(w.pending)-1].Ts
		w.nextEmit = w.origin
		for _, t := range w.pending {
			if err := w.absorb(t); err != nil {
				return nil, err
			}
		}
		w.pending = nil
	}
	// Prune state the final window (nextEmit−Range, nextEmit] cannot
	// observe before deciding whether anything is left to emit, so both
	// modes agree on whether the closing window fires: panes at or left
	// of the window's left edge, and buffered tuples at or before it.
	lo := w.nextEmit.Add(-w.Range)
	jLo := int64(lo.Sub(w.origin)) / int64(w.pane)
	for j, st := range w.panes {
		if j <= jLo {
			delete(w.panes, j)
			w.livePanes.Add(-1)
			w.recycleStore(st)
		}
	}
	live := w.buffer[:0]
	for _, t := range w.buffer {
		if t.Ts.After(lo) {
			live = append(live, t)
		}
	}
	w.buffer = live
	if len(w.panes) == 0 && len(w.buffer) == 0 {
		return nil, nil
	}
	return w.emit(w.nextEmit)
}

// emit produces the window result for boundary b.
func (w *WindowAgg) emit(b time.Time) ([]Tuple, error) {
	if w.Naive {
		return w.emitNaive(b)
	}
	jHi := int64(b.Sub(w.origin)) / int64(w.pane)
	jLo := int64(b.Add(-w.Range).Sub(w.origin)) / int64(w.pane) // exclusive

	merged := w.takeStore()
	for j := jLo + 1; j <= jHi; j++ {
		st := w.panes[j]
		if st == nil {
			continue
		}
		for _, cell := range st.cells {
			m := merged.get(cell.groupVals)
			if m == nil {
				m = w.newCell(cell.groupVals)
				merged.put(m)
			}
			for i := range w.Aggs {
				m.accums[i].merge(&cell.accums[i])
			}
		}
	}
	// Evict panes at or before jLo: every later window starts after them.
	for j, st := range w.panes {
		if j <= jLo {
			delete(w.panes, j)
			w.livePanes.Add(-1)
			w.recycleStore(st)
		}
	}
	out, err := w.finish(b, merged)
	w.recycleStore(merged)
	return out, err
}

func (w *WindowAgg) emitNaive(b time.Time) ([]Tuple, error) {
	lo := b.Add(-w.Range)
	live := w.buffer[:0]
	for _, t := range w.buffer {
		if t.Ts.After(lo) {
			live = append(live, t)
		}
	}
	w.buffer = live

	merged := w.takeStore()
	for _, t := range w.buffer {
		if t.Ts.After(b) {
			continue
		}
		w.gscratch = w.gscratch[:0]
		for i := range w.GroupBy {
			v, err := w.groupFns[i](t)
			if err != nil {
				return nil, err
			}
			w.gscratch = append(w.gscratch, v)
		}
		cell := merged.get(w.gscratch)
		if cell == nil {
			cell = w.newCell(w.gscratch)
			merged.put(cell)
		}
		for i, a := range w.Aggs {
			if a.Arg == nil {
				cell.accums[i].add(Null(), true)
				continue
			}
			v, err := w.argFns[i](t)
			if err != nil {
				return nil, err
			}
			cell.accums[i].add(v, false)
		}
	}
	out, err := w.finish(b, merged)
	w.recycleStore(merged)
	return out, err
}

// finish converts merged group cells into output tuples, sorted by group
// values for determinism, and applies HAVING.
func (w *WindowAgg) finish(b time.Time, merged *cellStore) ([]Tuple, error) {
	cells := merged.cells
	if len(cells) == 0 {
		if len(w.GroupBy) == 0 && w.EmitEmpty {
			empty := &paneCell{accums: make([]accum, len(w.Aggs))}
			for i, a := range w.Aggs {
				empty.accums[i] = mkAccum(a)
			}
			cells = []*paneCell{empty}
		} else {
			return nil, nil
		}
	}
	sort.Slice(cells, func(i, j int) bool { return lessValues(cells[i].groupVals, cells[j].groupVals) })

	out := make([]Tuple, 0, len(cells))
	for _, cell := range cells {
		vals := make([]Value, 0, len(w.GroupBy)+len(w.Aggs))
		vals = append(vals, cell.groupVals...)
		for i, a := range w.Aggs {
			vals = append(vals, cell.accums[i].result(a, w.argKinds[i]))
		}
		t := Tuple{Ts: b, Values: vals}
		if w.havingFn != nil {
			v, err := w.havingFn(t)
			if err != nil {
				return nil, fmt.Errorf("stream: window having: %w", err)
			}
			if !v.Truthy() {
				continue
			}
		}
		out = append(out, t)
	}
	return out, nil
}

// lessValues orders value slices lexicographically; NULLs sort first and
// incomparable pairs fall back to string order so the sort is total.
func lessValues(a, b []Value) bool {
	for i := range a {
		if i >= len(b) {
			return false
		}
		if lessValue(a[i], b[i]) {
			return true
		}
		if lessValue(b[i], a[i]) {
			return false
		}
	}
	return len(a) < len(b)
}

// lessValue totally orders two scalars: NULLs first, Compare where
// defined, string rendering as the fallback for incomparable pairs.
func lessValue(a, b Value) bool {
	switch {
	case a.IsNull():
		return !b.IsNull()
	case b.IsNull():
		return false
	}
	c, err := a.Compare(b)
	if err != nil {
		return a.String() < b.String()
	}
	return c < 0
}
