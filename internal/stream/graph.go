package stream

import (
	"fmt"
	"sort"
	"time"
)

// Graph is a multi-input executable plan: named input legs, each a Chain,
// optionally fanned into an EpochCombiner whose output runs through a
// final post chain. The CQL planner produces Graphs; the ESP processor
// executes them.
//
// Single-input queries have one leg and no combiner. Union semantics (the
// paper's Merge stage unioning a proximity group's streams, or Arbitrate
// running "over the union of the streams produced by Query 2") are
// expressed by registering several input names onto the same leg chain.
type Graph struct {
	legs     map[string]*graphLeg
	legOrder []string
	combiner *EpochCombiner
	post     *Chain
	opened   bool
	// degraded latches whether the last PushBatch left the columnar
	// representation anywhere inside (see BatchDegradeReporter).
	degraded bool
}

type graphLeg struct {
	chain *Chain
	in    *Schema
	// combineIdx is the combiner input this leg feeds (-1 = direct).
	combineIdx int
	// shared marks chains registered under several names so Advance and
	// Close visit them once.
	primary bool
}

// NewGraph returns an empty graph; add legs with AddLeg/ShareLeg, then
// optionally SetCombiner and SetPost, then Open.
func NewGraph() *Graph {
	return &Graph{legs: make(map[string]*graphLeg)}
}

// AddLeg registers an input stream by name with its schema and per-leg
// chain (nil chain = identity).
func (g *Graph) AddLeg(name string, in *Schema, chain *Chain) error {
	if _, dup := g.legs[name]; dup {
		return fmt.Errorf("stream: graph: duplicate leg %q", name)
	}
	if chain == nil {
		chain = NewChain()
	}
	g.legs[name] = &graphLeg{chain: chain, in: in, combineIdx: -1, primary: true}
	g.legOrder = append(g.legOrder, name)
	return nil
}

// ShareLeg registers an additional input name onto an existing leg's
// chain (union semantics). The schemas must match.
func (g *Graph) ShareLeg(name, existing string) error {
	leg, ok := g.legs[existing]
	if !ok {
		return fmt.Errorf("stream: graph: ShareLeg: unknown leg %q", existing)
	}
	if _, dup := g.legs[name]; dup {
		return fmt.Errorf("stream: graph: duplicate leg %q", name)
	}
	g.legs[name] = &graphLeg{chain: leg.chain, in: leg.in, combineIdx: leg.combineIdx, primary: false}
	g.legOrder = append(g.legOrder, name)
	return nil
}

// SetCombiner installs an epoch combiner fed by the given legs in order.
func (g *Graph) SetCombiner(c *EpochCombiner, legNames ...string) error {
	if len(legNames) != len(c.Inputs) {
		return fmt.Errorf("stream: graph: combiner has %d inputs, %d legs given", len(c.Inputs), len(legNames))
	}
	for i, n := range legNames {
		leg, ok := g.legs[n]
		if !ok {
			return fmt.Errorf("stream: graph: SetCombiner: unknown leg %q", n)
		}
		leg.combineIdx = i
	}
	g.combiner = c
	return nil
}

// SetPost installs the chain applied after the legs (and combiner, if any).
func (g *Graph) SetPost(post *Chain) { g.post = post }

// Open binds every chain and the combiner.
func (g *Graph) Open() error {
	if g.opened {
		return fmt.Errorf("stream: graph: Open called twice")
	}
	var combinedIn *Schema
	for _, name := range g.legOrder {
		leg := g.legs[name]
		if !leg.primary {
			continue
		}
		if err := leg.chain.Open(leg.in); err != nil {
			return fmt.Errorf("stream: graph leg %q: %w", name, err)
		}
		if leg.combineIdx >= 0 {
			if err := g.combiner.bindInput(leg.combineIdx, leg.chain.Schema()); err != nil {
				return fmt.Errorf("stream: graph leg %q: %w", name, err)
			}
		} else {
			combinedIn = leg.chain.Schema()
		}
	}
	if g.combiner != nil {
		out, err := g.combiner.open()
		if err != nil {
			return err
		}
		combinedIn = out
	}
	if g.post == nil {
		g.post = NewChain()
	}
	if combinedIn == nil {
		return fmt.Errorf("stream: graph has no legs")
	}
	if err := g.post.Open(combinedIn); err != nil {
		return fmt.Errorf("stream: graph post: %w", err)
	}
	g.opened = true
	return nil
}

// Schema reports the output schema. Only valid after Open.
func (g *Graph) Schema() *Schema { return g.post.Schema() }

// InputSchema reports the expected schema of the named input leg.
func (g *Graph) InputSchema(name string) (*Schema, bool) {
	leg, ok := g.legs[name]
	if !ok {
		return nil, false
	}
	return leg.in, true
}

// Inputs lists the input leg names in registration order.
func (g *Graph) Inputs() []string { return append([]string(nil), g.legOrder...) }

// Push feeds one tuple into the named input leg and returns any output
// tuples that flow all the way through.
func (g *Graph) Push(input string, t Tuple) ([]Tuple, error) {
	leg, ok := g.legs[input]
	if !ok {
		return nil, fmt.Errorf("stream: graph: unknown input %q", input)
	}
	out, err := leg.chain.Process(t)
	if err != nil {
		return nil, err
	}
	return g.route(leg, out)
}

func (g *Graph) route(leg *graphLeg, tuples []Tuple) ([]Tuple, error) {
	if len(tuples) == 0 {
		return nil, nil
	}
	if leg.combineIdx >= 0 {
		for _, t := range tuples {
			g.combiner.push(leg.combineIdx, t)
		}
		return nil, nil
	}
	var result []Tuple
	for _, t := range tuples {
		out, err := g.post.Process(t)
		if err != nil {
			return nil, err
		}
		if result == nil {
			result = out
		} else {
			result = append(result, out...)
		}
	}
	return result, nil
}

// Advance punctuates every leg, then the combiner, then the post chain.
func (g *Graph) Advance(now time.Time) ([]Tuple, error) {
	var result []Tuple
	for _, name := range g.legOrder {
		leg := g.legs[name]
		if !leg.primary {
			continue
		}
		released, err := leg.chain.Advance(now)
		if err != nil {
			return nil, err
		}
		out, err := g.route(leg, released)
		if err != nil {
			return nil, err
		}
		if result == nil {
			result = out
		} else {
			result = append(result, out...)
		}
	}
	if g.combiner != nil {
		combined, err := g.combiner.advance(now)
		if err != nil {
			return nil, err
		}
		for _, t := range combined {
			out, err := g.post.Process(t)
			if err != nil {
				return nil, err
			}
			result = append(result, out...)
		}
	}
	out, err := g.post.Advance(now)
	if err != nil {
		return nil, err
	}
	if result == nil {
		return out, nil
	}
	return append(result, out...), nil
}

// WindowTelemetry implements WindowTelemetrySource by summing over the
// graph's leg chains and post chain.
func (g *Graph) WindowTelemetry() (panes, lateDrops int64) {
	for _, name := range g.legOrder {
		leg := g.legs[name]
		if !leg.primary {
			continue
		}
		p, d := leg.chain.WindowTelemetry()
		panes += p
		lateDrops += d
	}
	if g.post != nil {
		p, d := g.post.WindowTelemetry()
		panes += p
		lateDrops += d
	}
	return panes, lateDrops
}

// Close flushes all legs, the combiner, and the post chain.
func (g *Graph) Close() ([]Tuple, error) {
	var result []Tuple
	for _, name := range g.legOrder {
		leg := g.legs[name]
		if !leg.primary {
			continue
		}
		released, err := leg.chain.Close()
		if err != nil {
			return nil, err
		}
		out, err := g.route(leg, released)
		if err != nil {
			return nil, err
		}
		if result == nil {
			result = out
		} else {
			result = append(result, out...)
		}
	}
	if g.combiner != nil {
		combined, err := g.combiner.advance(time.Time{})
		if err != nil {
			return nil, err
		}
		for _, t := range combined {
			out, err := g.post.Process(t)
			if err != nil {
				return nil, err
			}
			result = append(result, out...)
		}
	}
	out, err := g.post.Close()
	if err != nil {
		return nil, err
	}
	return append(result, out...), nil
}

// CombineInput describes one input of an EpochCombiner.
type CombineInput struct {
	// Prefix qualifies the input's field names in the combined schema
	// (e.g. "rfid_count."); may be empty if names don't clash.
	Prefix string
	// Default supplies the input's values for epochs in which it produced
	// no tuple. nil means the input contributes NULLs when absent.
	Default []Value

	schema *Schema
}

// EpochCombiner joins the latest tuple per input within each punctuation
// epoch into one wide tuple — the execution strategy for the paper's
// Virtualize-stage Query 6, where per-receptor-type vote subqueries are
// combined and thresholded once per epoch. If an input emitted several
// tuples in the epoch, the last one wins.
type EpochCombiner struct {
	Inputs []CombineInput

	out     *Schema
	current [][]Value // latest values per input this epoch (nil = absent)
	seen    bool      // any input produced a tuple this epoch
}

// bindInput records the schema of input i (called by Graph.Open).
func (c *EpochCombiner) bindInput(i int, s *Schema) error {
	if i < 0 || i >= len(c.Inputs) {
		return fmt.Errorf("stream: combiner: input %d out of range", i)
	}
	c.Inputs[i].schema = s
	if d := c.Inputs[i].Default; d != nil && len(d) != s.Len() {
		return fmt.Errorf("stream: combiner input %d: default arity %d != schema arity %d", i, len(d), s.Len())
	}
	return nil
}

// open builds the combined output schema.
func (c *EpochCombiner) open() (*Schema, error) {
	var fields []Field
	for i, in := range c.Inputs {
		if in.schema == nil {
			return nil, fmt.Errorf("stream: combiner input %d has no schema (leg not bound)", i)
		}
		for _, f := range in.schema.Fields() {
			fields = append(fields, Field{Name: in.Prefix + f.Name, Kind: f.Kind})
		}
	}
	out, err := NewSchema(fields...)
	if err != nil {
		return nil, fmt.Errorf("stream: combiner: %w (set distinct Prefixes)", err)
	}
	c.out = out
	c.current = make([][]Value, len(c.Inputs))
	return out, nil
}

func (c *EpochCombiner) push(i int, t Tuple) {
	c.current[i] = t.Values
	c.seen = true
}

// advance emits the combined tuple for the closing epoch and resets.
// Epochs in which no input produced anything emit nothing.
func (c *EpochCombiner) advance(now time.Time) ([]Tuple, error) {
	if !c.seen {
		return nil, nil
	}
	vals := make([]Value, 0, c.out.Len())
	for i, in := range c.Inputs {
		cur := c.current[i]
		switch {
		case cur != nil:
			vals = append(vals, cur...)
		case in.Default != nil:
			vals = append(vals, in.Default...)
		default:
			for range in.schema.Fields() {
				vals = append(vals, Null())
			}
		}
		c.current[i] = nil
	}
	c.seen = false
	return []Tuple{{Ts: now, Values: vals}}, nil
}

// sortTuples orders tuples by timestamp then values; used by tests and
// deterministic trace output.
func sortTuples(ts []Tuple) {
	sort.SliceStable(ts, func(i, j int) bool {
		if !ts[i].Ts.Equal(ts[j].Ts) {
			return ts[i].Ts.Before(ts[j].Ts)
		}
		return lessValues(ts[i].Values, ts[j].Values)
	})
}

// SortTuples orders tuples by timestamp then values, in place.
func SortTuples(ts []Tuple) { sortTuples(ts) }
