package stream

import "fmt"

// EvalFunc is a compiled expression evaluator: the closure form of
// Expr.Eval with column offsets, constants, and operator kernels resolved
// at compile time instead of re-discovered on every call.
type EvalFunc func(t Tuple) (Value, error)

// CompileExpr compiles a bound expression into a closure evaluator.
// It must be called after a successful Bind against the schema the
// returned function will be evaluated over.
//
// The compiled function is semantically identical to e.Eval — same
// values, same NULL propagation, same error messages — which the oracle
// differentials and FuzzCompileExpr verify. Subtrees whose operands are
// all constants are folded to their value at compile time (unless folding
// would raise an error, in which case evaluation is deferred so the error
// surfaces at the same point it would have under tree walking).
//
// A compiled function borrows no state from the tuple it is given, but it
// may reuse internal scratch buffers across calls, so a single compiled
// function must not be invoked concurrently from multiple goroutines.
func CompileExpr(e Expr) EvalFunc {
	fn, _ := compileNode(e)
	return fn
}

// constFunc wraps a fixed value as an EvalFunc.
func constFunc(v Value) EvalFunc {
	return func(Tuple) (Value, error) { return v, nil }
}

// compileNode compiles e and reports whether the result is a constant
// (same value for every tuple, no error).
func compileNode(e Expr) (EvalFunc, bool) {
	fn, maybeConst := compileTree(e)
	if !maybeConst {
		return fn, false
	}
	// All inputs are constants: evaluate once now. If evaluation errors,
	// keep the closure so the error is raised per-call exactly as the
	// tree-walking evaluator would.
	v, err := fn(Tuple{})
	if err != nil {
		return fn, false
	}
	return constFunc(v), true
}

// compileTree builds the evaluator for one node. The returned bool is
// true when every operand is constant (the node is fold-eligible).
func compileTree(e Expr) (EvalFunc, bool) {
	switch e := e.(type) {
	case *Const:
		return constFunc(e.Val), true

	case *Col:
		if e.idx < 0 {
			return e.Eval, false
		}
		idx, name := e.idx, e.Name
		return func(t Tuple) (Value, error) {
			if idx >= len(t.Values) {
				return Null(), fmt.Errorf("stream: column %q index %d out of range for tuple arity %d", name, idx, len(t.Values))
			}
			return t.Values[idx], nil
		}, false

	case *Binary:
		return compileBinary(e)

	case *Not:
		xf, xc := compileNode(e.X)
		return func(t Tuple) (Value, error) {
			v, err := xf(t)
			if err != nil || v.IsNull() {
				return Null(), err
			}
			return Bool(!v.AsBool()), nil
		}, xc

	case *Neg:
		xf, xc := compileNode(e.X)
		return func(t Tuple) (Value, error) {
			v, err := xf(t)
			if err != nil {
				return Null(), err
			}
			return v.Neg()
		}, xc

	case *IsNullExpr:
		xf, xc := compileNode(e.X)
		negate := e.Negate
		return func(t Tuple) (Value, error) {
			v, err := xf(t)
			if err != nil {
				return Null(), err
			}
			return Bool(v.IsNull() != negate), nil
		}, xc

	case *InList:
		return compileInList(e)

	case *Call:
		return compileCall(e)

	default:
		// CaseExpr and any externally defined Expr fall back to the tree
		// walker; they are not on the measured hot paths.
		return e.Eval, false
	}
}

func compileBinary(e *Binary) (EvalFunc, bool) {
	lf, lc := compileNode(e.L)
	rf, rc := compileNode(e.R)
	bothConst := lc && rc

	switch e.Op {
	case OpAnd:
		return func(t Tuple) (Value, error) {
			l, err := lf(t)
			if err != nil {
				return Null(), err
			}
			if !l.IsNull() && !l.AsBool() {
				return Bool(false), nil
			}
			r, err := rf(t)
			if err != nil {
				return Null(), err
			}
			switch {
			case !r.IsNull() && !r.AsBool():
				return Bool(false), nil
			case l.IsNull() || r.IsNull():
				return Null(), nil
			default:
				return Bool(true), nil
			}
		}, bothConst
	case OpOr:
		return func(t Tuple) (Value, error) {
			l, err := lf(t)
			if err != nil {
				return Null(), err
			}
			if !l.IsNull() && l.AsBool() {
				return Bool(true), nil
			}
			r, err := rf(t)
			if err != nil {
				return Null(), err
			}
			switch {
			case !r.IsNull() && r.AsBool():
				return Bool(true), nil
			case l.IsNull() || r.IsNull():
				return Null(), nil
			default:
				return Bool(false), nil
			}
		}, bothConst

	case OpAdd:
		return func(t Tuple) (Value, error) {
			l, err := lf(t)
			if err != nil {
				return Null(), err
			}
			r, err := rf(t)
			if err != nil {
				return Null(), err
			}
			if l.kind == KindFloat && r.kind == KindFloat {
				return Value{kind: KindFloat, f: l.f + r.f}, nil
			}
			if l.kind == KindInt && r.kind == KindInt {
				return Value{kind: KindInt, i: l.i + r.i}, nil
			}
			return l.Add(r)
		}, bothConst
	case OpSub:
		return func(t Tuple) (Value, error) {
			l, err := lf(t)
			if err != nil {
				return Null(), err
			}
			r, err := rf(t)
			if err != nil {
				return Null(), err
			}
			if l.kind == KindFloat && r.kind == KindFloat {
				return Value{kind: KindFloat, f: l.f - r.f}, nil
			}
			if l.kind == KindInt && r.kind == KindInt {
				return Value{kind: KindInt, i: l.i - r.i}, nil
			}
			return l.Sub(r)
		}, bothConst
	case OpMul:
		return func(t Tuple) (Value, error) {
			l, err := lf(t)
			if err != nil {
				return Null(), err
			}
			r, err := rf(t)
			if err != nil {
				return Null(), err
			}
			if l.kind == KindFloat && r.kind == KindFloat {
				return Value{kind: KindFloat, f: l.f * r.f}, nil
			}
			if l.kind == KindInt && r.kind == KindInt {
				return Value{kind: KindInt, i: l.i * r.i}, nil
			}
			return l.Mul(r)
		}, bothConst
	case OpDiv:
		return func(t Tuple) (Value, error) {
			l, err := lf(t)
			if err != nil {
				return Null(), err
			}
			r, err := rf(t)
			if err != nil {
				return Null(), err
			}
			if l.kind == KindFloat && r.kind == KindFloat {
				return Value{kind: KindFloat, f: l.f / r.f}, nil
			}
			return l.Div(r)
		}, bothConst

	case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
		op := e.Op
		return func(t Tuple) (Value, error) {
			l, err := lf(t)
			if err != nil {
				return Null(), err
			}
			r, err := rf(t)
			if err != nil {
				return Null(), err
			}
			if l.kind == KindNull || r.kind == KindNull {
				return Null(), nil
			}
			var c int
			switch {
			case l.kind == KindFloat && r.kind == KindFloat:
				c = cmpFloat(l.f, r.f)
			case l.kind == KindInt && r.kind == KindInt:
				c = cmpInt(l.i, r.i)
			case l.kind == KindString && r.kind == KindString:
				switch {
				case l.s < r.s:
					c = -1
				case l.s > r.s:
					c = 1
				}
			default:
				c, err = l.Compare(r)
				if err != nil {
					return Null(), err
				}
			}
			switch op {
			case OpEq:
				return Bool(c == 0), nil
			case OpNe:
				return Bool(c != 0), nil
			case OpLt:
				return Bool(c < 0), nil
			case OpLe:
				return Bool(c <= 0), nil
			case OpGt:
				return Bool(c > 0), nil
			default:
				return Bool(c >= 0), nil
			}
		}, bothConst
	}
	return e.Eval, false
}

func compileInList(e *InList) (EvalFunc, bool) {
	xf, allConst := compileNode(e.X)
	elems := make([]EvalFunc, len(e.List))
	for i, el := range e.List {
		fn, c := compileNode(el)
		elems[i] = fn
		allConst = allConst && c
	}
	negate := e.Negate
	return func(t Tuple) (Value, error) {
		x, err := xf(t)
		if err != nil {
			return Null(), err
		}
		if x.IsNull() {
			return Null(), nil
		}
		sawNull := false
		for _, el := range elems {
			v, err := el(t)
			if err != nil {
				return Null(), err
			}
			if v.IsNull() {
				sawNull = true
				continue
			}
			if c, err := x.Compare(v); err == nil && c == 0 {
				return Bool(!negate), nil
			}
		}
		if sawNull {
			return Null(), nil
		}
		return Bool(negate), nil
	}, allConst
}

func compileCall(e *Call) (EvalFunc, bool) {
	if e.fn == nil {
		return e.Eval, false
	}
	args := make([]EvalFunc, len(e.Args))
	for i, a := range e.Args {
		args[i], _ = compileNode(a)
	}
	call := e.fn.Call
	// Scalar functions are never folded: the registry is extensible and
	// registered implementations are not required to be pure.
	scratch := make([]Value, len(args))
	return func(t Tuple) (Value, error) {
		for i, a := range args {
			v, err := a(t)
			if err != nil {
				return Null(), err
			}
			scratch[i] = v
		}
		return call(scratch)
	}, false
}
