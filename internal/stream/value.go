// Package stream implements the data model and streaming operator algebra
// that underpin ESP: typed values, schemas, timestamped tuples, an
// expression engine, and punctuation-driven windowed operators in the style
// of Fjords (Madden & Franklin, ICDE 2002).
//
// The package is deliberately self-contained — it is the "stream query
// processor" substrate the ESP paper assumes, built from scratch on the
// standard library.
package stream

import (
	"fmt"
	"math"
	"strconv"
	"time"
)

// Kind enumerates the dynamic types a Value can hold.
type Kind uint8

const (
	// KindNull is the type of the SQL NULL value and the zero Value.
	KindNull Kind = iota
	// KindBool holds true/false.
	KindBool
	// KindInt holds a 64-bit signed integer.
	KindInt
	// KindFloat holds a 64-bit IEEE float.
	KindFloat
	// KindString holds an immutable string.
	KindString
	// KindTime holds an absolute timestamp.
	KindTime
)

// String returns the lower-case name of the kind as used in CQL type names.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindBool:
		return "bool"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	case KindTime:
		return "time"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Numeric reports whether values of this kind participate in arithmetic.
func (k Kind) Numeric() bool { return k == KindInt || k == KindFloat }

// Value is a dynamically typed scalar. The zero Value is NULL.
//
// Value is comparable (it contains no slices or maps), so it can be used
// directly as a map key for grouping and duplicate elimination.
type Value struct {
	kind Kind
	i    int64 // int storage; bool stored as 0/1
	f    float64
	s    string
	t    time.Time
}

// Null returns the NULL value.
func Null() Value { return Value{} }

// Bool returns a boolean value.
func Bool(b bool) Value {
	v := Value{kind: KindBool}
	if b {
		v.i = 1
	}
	return v
}

// Int returns an integer value.
func Int(i int64) Value { return Value{kind: KindInt, i: i} }

// Float returns a floating-point value.
func Float(f float64) Value { return Value{kind: KindFloat, f: f} }

// String returns a string value.
func String(s string) Value { return Value{kind: KindString, s: s} }

// Time returns a timestamp value.
func Time(t time.Time) Value { return Value{kind: KindTime, t: t} }

// Kind reports the dynamic type of v.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether v is NULL.
func (v Value) IsNull() bool { return v.kind == KindNull }

// AsBool returns the boolean held by v. It panics unless v is a bool.
func (v Value) AsBool() bool {
	if v.kind != KindBool {
		panic("stream: AsBool on " + v.kind.String())
	}
	return v.i != 0
}

// AsInt returns the integer held by v. It panics unless v is an int.
func (v Value) AsInt() int64 {
	if v.kind != KindInt {
		panic("stream: AsInt on " + v.kind.String())
	}
	return v.i
}

// AsFloat returns the numeric content of v as a float64, converting ints.
// It panics unless v is numeric.
func (v Value) AsFloat() float64 {
	switch v.kind {
	case KindFloat:
		return v.f
	case KindInt:
		return float64(v.i)
	default:
		panic("stream: AsFloat on " + v.kind.String())
	}
}

// AsString returns the string held by v. It panics unless v is a string.
func (v Value) AsString() string {
	if v.kind != KindString {
		panic("stream: AsString on " + v.kind.String())
	}
	return v.s
}

// AsTime returns the timestamp held by v. It panics unless v is a time.
func (v Value) AsTime() time.Time {
	if v.kind != KindTime {
		panic("stream: AsTime on " + v.kind.String())
	}
	return v.t
}

// Truthy reports whether v counts as true in a WHERE/HAVING context:
// a true bool. NULL and every non-bool value are not truthy.
func (v Value) Truthy() bool { return v.kind == KindBool && v.i != 0 }

// Equal reports whether two values are equal. NULL equals nothing,
// including NULL (SQL semantics); use v == w for raw structural equality.
func (v Value) Equal(w Value) bool {
	if v.kind == KindNull || w.kind == KindNull {
		return false
	}
	c, err := v.Compare(w)
	return err == nil && c == 0
}

// Compare orders two non-NULL values of compatible kinds:
// -1 if v < w, 0 if equal, +1 if v > w. Ints and floats compare
// numerically with each other. Comparing NULL or incompatible kinds
// returns an error.
func (v Value) Compare(w Value) (int, error) {
	if v.kind == KindNull || w.kind == KindNull {
		return 0, fmt.Errorf("stream: cannot compare NULL")
	}
	if v.kind.Numeric() && w.kind.Numeric() {
		if v.kind == KindInt && w.kind == KindInt {
			return cmpInt(v.i, w.i), nil
		}
		return cmpFloat(v.AsFloat(), w.AsFloat()), nil
	}
	if v.kind != w.kind {
		return 0, fmt.Errorf("stream: cannot compare %s with %s", v.kind, w.kind)
	}
	switch v.kind {
	case KindBool:
		return cmpInt(v.i, w.i), nil
	case KindString:
		switch {
		case v.s < w.s:
			return -1, nil
		case v.s > w.s:
			return 1, nil
		}
		return 0, nil
	case KindTime:
		switch {
		case v.t.Before(w.t):
			return -1, nil
		case v.t.After(w.t):
			return 1, nil
		}
		return 0, nil
	}
	return 0, fmt.Errorf("stream: cannot compare %s", v.kind)
}

func cmpInt(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

func cmpFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

// String renders the value for display and CSV encoding.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "NULL"
	case KindBool:
		if v.i != 0 {
			return "true"
		}
		return "false"
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindString:
		return v.s
	case KindTime:
		return v.t.Format(time.RFC3339Nano)
	default:
		return fmt.Sprintf("value(kind=%d)", uint8(v.kind))
	}
}

// ParseValue parses s as a value of kind k (inverse of String for
// non-NULL values).
func ParseValue(k Kind, s string) (Value, error) {
	switch k {
	case KindNull:
		return Null(), nil
	case KindBool:
		b, err := strconv.ParseBool(s)
		if err != nil {
			return Null(), fmt.Errorf("stream: parse bool %q: %w", s, err)
		}
		return Bool(b), nil
	case KindInt:
		i, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return Null(), fmt.Errorf("stream: parse int %q: %w", s, err)
		}
		return Int(i), nil
	case KindFloat:
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return Null(), fmt.Errorf("stream: parse float %q: %w", s, err)
		}
		return Float(f), nil
	case KindString:
		return String(s), nil
	case KindTime:
		t, err := time.Parse(time.RFC3339Nano, s)
		if err != nil {
			return Null(), fmt.Errorf("stream: parse time %q: %w", s, err)
		}
		return Time(t), nil
	default:
		return Null(), fmt.Errorf("stream: parse: unknown kind %v", k)
	}
}

// coerceNumeric promotes a pair of numeric values to a common kind for
// arithmetic: int op int stays int, anything else becomes float.
func coerceNumeric(a, b Value) (Value, Value, bool) {
	if !a.kind.Numeric() || !b.kind.Numeric() {
		return a, b, false
	}
	if a.kind == KindInt && b.kind == KindInt {
		return a, b, true
	}
	return Float(a.AsFloat()), Float(b.AsFloat()), true
}

// Add returns v + w with SQL NULL propagation.
func (v Value) Add(w Value) (Value, error) { return arith(v, w, "+") }

// Sub returns v - w with SQL NULL propagation.
func (v Value) Sub(w Value) (Value, error) { return arith(v, w, "-") }

// Mul returns v * w with SQL NULL propagation.
func (v Value) Mul(w Value) (Value, error) { return arith(v, w, "*") }

// Div returns v / w with SQL NULL propagation. Integer division by zero
// is an error; float division follows IEEE rules.
func (v Value) Div(w Value) (Value, error) { return arith(v, w, "/") }

func arith(v, w Value, op string) (Value, error) {
	if v.IsNull() || w.IsNull() {
		return Null(), nil
	}
	a, b, ok := coerceNumeric(v, w)
	if !ok {
		return Null(), fmt.Errorf("stream: %s %s %s: non-numeric operand", v.kind, op, w.kind)
	}
	if a.kind == KindInt {
		switch op {
		case "+":
			return Int(a.i + b.i), nil
		case "-":
			return Int(a.i - b.i), nil
		case "*":
			return Int(a.i * b.i), nil
		case "/":
			if b.i == 0 {
				return Null(), fmt.Errorf("stream: integer division by zero")
			}
			return Int(a.i / b.i), nil
		}
	}
	switch op {
	case "+":
		return Float(a.f + b.f), nil
	case "-":
		return Float(a.f - b.f), nil
	case "*":
		return Float(a.f * b.f), nil
	case "/":
		return Float(a.f / b.f), nil
	}
	return Null(), fmt.Errorf("stream: unknown arithmetic op %q", op)
}

// Neg returns -v for numeric v, with NULL propagation.
func (v Value) Neg() (Value, error) {
	switch v.kind {
	case KindNull:
		return Null(), nil
	case KindInt:
		return Int(-v.i), nil
	case KindFloat:
		return Float(-v.f), nil
	default:
		return Null(), fmt.Errorf("stream: -%s: non-numeric operand", v.kind)
	}
}

// almostEqual is used by tests and aggregate verification.
func almostEqual(a, b float64) bool {
	if a == b {
		return true
	}
	const eps = 1e-9
	return math.Abs(a-b) <= eps*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}
