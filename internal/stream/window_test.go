package stream

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

var rfidSchema = MustSchema(
	Field{Name: "tag_id", Kind: KindString},
	Field{Name: "shelf", Kind: KindInt},
)

func at(sec float64) time.Time {
	return time.Unix(0, int64(sec*float64(time.Second))).UTC()
}

func read(sec float64, tag string, shelf int64) Tuple {
	return NewTuple(at(sec), String(tag), Int(shelf))
}

// drive pushes tuples through op, punctuating at every multiple of epoch in
// (0, end], and returns all output.
func drive(t *testing.T, op Operator, in *Schema, tuples []Tuple, epoch, end time.Duration) []Tuple {
	t.Helper()
	if err := op.Open(in); err != nil {
		t.Fatalf("Open: %v", err)
	}
	var out []Tuple
	i := 0
	for now := epoch; now <= end; now += epoch {
		bound := at(now.Seconds())
		for i < len(tuples) && !tuples[i].Ts.After(bound) {
			got, err := op.Process(tuples[i])
			if err != nil {
				t.Fatalf("Process: %v", err)
			}
			out = append(out, got...)
			i++
		}
		got, err := op.Advance(bound)
		if err != nil {
			t.Fatalf("Advance: %v", err)
		}
		out = append(out, got...)
	}
	got, err := op.Close()
	if err != nil {
		t.Fatalf("Close: %v", err)
	}
	return append(out, got...)
}

// TestWindowCountPerTag mirrors the paper's Query 2 (Smooth): counting
// reads per tag in a sliding window.
func TestWindowCountPerTag(t *testing.T) {
	w := &WindowAgg{
		GroupBy: []NamedExpr{{Name: "tag_id", Expr: NewCol("tag_id")}},
		Aggs:    []AggSpec{{Name: "n", Func: AggCount}},
		Range:   5 * time.Second,
		Slide:   time.Second,
	}
	// Tag A read at 0.5s, 1.5s, 2.5s; tag B only at 1.5s.
	tuples := []Tuple{
		read(0.5, "A", 0),
		read(1.5, "A", 0), read(1.5, "B", 0),
		read(2.5, "A", 0),
	}
	out := drive(t, w, rfidSchema, tuples, time.Second, 10*time.Second)

	// Window ending at 3s must report A:3, B:1.
	var at3 []Tuple
	for _, o := range out {
		if o.Ts.Equal(at(3)) {
			at3 = append(at3, o)
		}
	}
	if len(at3) != 2 {
		t.Fatalf("at t=3s got %d rows (%v), want 2", len(at3), at3)
	}
	if at3[0].Values[0] != String("A") || at3[0].Values[1] != Int(3) {
		t.Errorf("row A = %v", at3[0])
	}
	if at3[1].Values[0] != String("B") || at3[1].Values[1] != Int(1) {
		t.Errorf("row B = %v", at3[1])
	}
	// After the window passes (ts > 5s + last read at 2.5 => from boundary
	// 8s onward) nothing should be emitted.
	for _, o := range out {
		if o.Ts.After(at(7.5)) {
			t.Errorf("stale emission at %v: %v", o.Ts, o)
		}
	}
}

func TestWindowCountDistinct(t *testing.T) {
	// Query 1 shape: count(distinct tag_id) per shelf.
	w := &WindowAgg{
		GroupBy: []NamedExpr{{Name: "shelf", Expr: NewCol("shelf")}},
		Aggs:    []AggSpec{{Name: "cnt", Func: AggCount, Arg: NewCol("tag_id"), Distinct: true}},
		Range:   2 * time.Second,
		Slide:   time.Second,
	}
	tuples := []Tuple{
		read(0.2, "A", 0), read(0.4, "A", 0), read(0.6, "B", 0),
		read(0.8, "C", 1),
	}
	out := drive(t, w, rfidSchema, tuples, time.Second, 2*time.Second)
	var rows []Tuple
	for _, o := range out {
		if o.Ts.Equal(at(1)) {
			rows = append(rows, o)
		}
	}
	if len(rows) != 2 {
		t.Fatalf("rows at t=1: %v", rows)
	}
	if rows[0].Values[0] != Int(0) || rows[0].Values[1] != Int(2) {
		t.Errorf("shelf 0 = %v, want distinct count 2", rows[0])
	}
	if rows[1].Values[0] != Int(1) || rows[1].Values[1] != Int(1) {
		t.Errorf("shelf 1 = %v, want distinct count 1", rows[1])
	}
}

func TestWindowNowSemantics(t *testing.T) {
	// Range 0 (NOW) = one epoch.
	w := &WindowAgg{
		GroupBy: []NamedExpr{{Name: "shelf", Expr: NewCol("shelf")}},
		Aggs:    []AggSpec{{Name: "n", Func: AggCount}},
		Slide:   time.Second,
	}
	tuples := []Tuple{read(0.5, "A", 0), read(1.5, "A", 0)}
	out := drive(t, w, rfidSchema, tuples, time.Second, 3*time.Second)
	// Each read should appear in exactly one epoch's count.
	var total int64
	for _, o := range out {
		total += o.Values[1].AsInt()
	}
	if total != 2 {
		t.Errorf("NOW windows double- or under-counted: total=%d, out=%v", total, out)
	}
}

func TestWindowAggregates(t *testing.T) {
	s := MustSchema(Field{Name: "v", Kind: KindFloat})
	w := &WindowAgg{
		Aggs: []AggSpec{
			{Name: "n", Func: AggCount},
			{Name: "sum", Func: AggSum, Arg: NewCol("v")},
			{Name: "avg", Func: AggAvg, Arg: NewCol("v")},
			{Name: "mn", Func: AggMin, Arg: NewCol("v")},
			{Name: "mx", Func: AggMax, Arg: NewCol("v")},
			{Name: "sd", Func: AggStdev, Arg: NewCol("v")},
		},
		Range: 10 * time.Second,
		Slide: 10 * time.Second,
	}
	var tuples []Tuple
	for i, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		tuples = append(tuples, NewTuple(at(float64(i)+0.5), Float(v)))
	}
	out := drive(t, w, s, tuples, 10*time.Second, 10*time.Second)
	if len(out) != 1 {
		t.Fatalf("out = %v", out)
	}
	row := out[0]
	if row.Values[0] != Int(8) {
		t.Errorf("count = %v", row.Values[0])
	}
	if row.Values[1] != Float(40) {
		t.Errorf("sum = %v", row.Values[1])
	}
	if row.Values[2] != Float(5) {
		t.Errorf("avg = %v", row.Values[2])
	}
	if row.Values[3] != Float(2) || row.Values[4] != Float(9) {
		t.Errorf("min/max = %v/%v", row.Values[3], row.Values[4])
	}
	if !almostEqual(row.Values[5].AsFloat(), 2) { // classic stdev example
		t.Errorf("stdev = %v, want 2", row.Values[5])
	}
}

func TestWindowIntSumStaysInt(t *testing.T) {
	s := MustSchema(Field{Name: "v", Kind: KindInt})
	w := &WindowAgg{
		Aggs:  []AggSpec{{Name: "s", Func: AggSum, Arg: NewCol("v")}},
		Range: time.Second, Slide: time.Second,
	}
	out := drive(t, w, s, []Tuple{NewTuple(at(0.5), Int(2)), NewTuple(at(0.6), Int(3))}, time.Second, time.Second)
	if len(out) != 1 || out[0].Values[0] != Int(5) {
		t.Fatalf("int sum = %v", out)
	}
}

func TestWindowNullsIgnoredByAggs(t *testing.T) {
	s := MustSchema(Field{Name: "v", Kind: KindFloat})
	w := &WindowAgg{
		Aggs: []AggSpec{
			{Name: "n", Func: AggCount, Arg: NewCol("v")},
			{Name: "star", Func: AggCount},
			{Name: "avg", Func: AggAvg, Arg: NewCol("v")},
		},
		Range: time.Second, Slide: time.Second,
	}
	tuples := []Tuple{
		NewTuple(at(0.2), Float(10)),
		NewTuple(at(0.4), Null()),
		NewTuple(at(0.6), Float(20)),
	}
	out := drive(t, w, s, tuples, time.Second, time.Second)
	if len(out) != 1 {
		t.Fatalf("out = %v", out)
	}
	if out[0].Values[0] != Int(2) {
		t.Errorf("count(v) = %v, want 2 (NULL ignored)", out[0].Values[0])
	}
	if out[0].Values[1] != Int(3) {
		t.Errorf("count(*) = %v, want 3", out[0].Values[1])
	}
	if out[0].Values[2] != Float(15) {
		t.Errorf("avg = %v, want 15", out[0].Values[2])
	}
}

func TestWindowHaving(t *testing.T) {
	w := &WindowAgg{
		GroupBy: []NamedExpr{{Name: "tag_id", Expr: NewCol("tag_id")}},
		Aggs:    []AggSpec{{Name: "n", Func: AggCount}},
		Range:   time.Second, Slide: time.Second,
		Having: NewBinary(OpGe, NewCol("n"), NewConst(Int(2))),
	}
	tuples := []Tuple{read(0.1, "A", 0), read(0.2, "A", 0), read(0.3, "B", 0)}
	out := drive(t, w, rfidSchema, tuples, time.Second, time.Second)
	if len(out) != 1 || out[0].Values[0] != String("A") {
		t.Fatalf("HAVING kept %v, want only A", out)
	}
}

func TestWindowEmitEmptyGlobal(t *testing.T) {
	s := MustSchema(Field{Name: "v", Kind: KindFloat})
	w := &WindowAgg{
		Aggs:  []AggSpec{{Name: "n", Func: AggCount}},
		Range: time.Second, Slide: time.Second,
		EmitEmpty: true,
	}
	out := drive(t, w, s, nil, time.Second, 2*time.Second)
	if len(out) != 2 {
		t.Fatalf("out = %v, want a row per boundary", out)
	}
	for _, o := range out {
		if o.Values[0] != Int(0) {
			t.Errorf("empty-window count = %v", o.Values[0])
		}
	}
}

func TestWindowOpenErrors(t *testing.T) {
	cases := []*WindowAgg{
		{Slide: 0},
		{Slide: time.Second, Range: -time.Second},
		{Slide: time.Second, Aggs: []AggSpec{{Name: "s", Func: AggSum}}},                        // sum w/o arg
		{Slide: time.Second, Aggs: []AggSpec{{Name: "s", Func: AggSum, Arg: NewCol("tag_id")}}}, // sum(string)
		{Slide: time.Second, GroupBy: []NamedExpr{{Name: "x", Expr: NewCol("nope")}}},
	}
	for i, w := range cases {
		if err := w.Open(rfidSchema); err == nil {
			t.Errorf("case %d: want Open error", i)
		}
	}
}

func TestWindowLateTupleDropped(t *testing.T) {
	w := &WindowAgg{
		GroupBy: []NamedExpr{{Name: "tag_id", Expr: NewCol("tag_id")}},
		Aggs:    []AggSpec{{Name: "n", Func: AggCount}},
		Range:   time.Second, Slide: time.Second,
	}
	if err := w.Open(rfidSchema); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Advance(at(0)); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Advance(at(10)); err != nil {
		t.Fatal(err)
	}
	// A tuple from t=2 arrives after punctuation reached t=10; its windows
	// have all closed.
	if _, err := w.Process(read(2, "A", 0)); err != nil {
		t.Fatal(err)
	}
	if w.Dropped != 1 {
		t.Errorf("Dropped = %d, want 1", w.Dropped)
	}
	out, err := w.Advance(at(11))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Errorf("late tuple leaked into output: %v", out)
	}
}

// TestQuickPanesMatchNaive is the central window correctness property:
// the pane-merging implementation must agree exactly with from-scratch
// re-aggregation for random streams, window shapes, and epochs.
func TestQuickPanesMatchNaive(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rangeSec := 1 + r.Intn(8)
		slideSec := 1 + r.Intn(4)
		mk := func(naive bool) *WindowAgg {
			return &WindowAgg{
				GroupBy: []NamedExpr{{Name: "shelf", Expr: NewCol("shelf")}},
				Aggs: []AggSpec{
					{Name: "n", Func: AggCount},
					{Name: "d", Func: AggCount, Arg: NewCol("tag_id"), Distinct: true},
					{Name: "mn", Func: AggMin, Arg: NewCol("tag_id")},
					{Name: "mx", Func: AggMax, Arg: NewCol("tag_id")},
				},
				Range: time.Duration(rangeSec) * time.Second,
				Slide: time.Duration(slideSec) * time.Second,
				Naive: naive,
			}
		}
		var tuples []Tuple
		n := r.Intn(120)
		sec := 0.0
		for i := 0; i < n; i++ {
			sec += r.Float64() * 0.8
			tag := string(rune('A' + r.Intn(6)))
			tuples = append(tuples, read(sec, tag, int64(r.Intn(3))))
		}
		run := func(w *WindowAgg) []Tuple {
			if err := w.Open(rfidSchema); err != nil {
				t.Fatal(err)
			}
			var out []Tuple
			i := 0
			for now := time.Second; now <= 30*time.Second; now += time.Second {
				bound := at(now.Seconds())
				for i < len(tuples) && !tuples[i].Ts.After(bound) {
					got, err := w.Process(tuples[i])
					if err != nil {
						t.Fatal(err)
					}
					out = append(out, got...)
					i++
				}
				got, err := w.Advance(bound)
				if err != nil {
					t.Fatal(err)
				}
				out = append(out, got...)
			}
			return out
		}
		a, b := run(mk(false)), run(mk(true))
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if !a[i].Ts.Equal(b[i].Ts) || len(a[i].Values) != len(b[i].Values) {
				return false
			}
			for j := range a[i].Values {
				if a[i].Values[j] != b[i].Values[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestGCDDuration(t *testing.T) {
	cases := []struct{ a, b, want time.Duration }{
		{5 * time.Second, time.Second, time.Second},
		{5 * time.Second, 2 * time.Second, time.Second},
		{6 * time.Second, 4 * time.Second, 2 * time.Second},
		{time.Second, time.Second, time.Second},
		{1500 * time.Millisecond, time.Second, 500 * time.Millisecond},
	}
	for _, tc := range cases {
		if got := gcdDuration(tc.a, tc.b); got != tc.want {
			t.Errorf("gcd(%v,%v) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestCeilDiv(t *testing.T) {
	cases := []struct{ a, b, want int64 }{
		{4, 2, 2}, {5, 2, 3}, {0, 2, 0}, {-1, 2, 0}, {-2, 2, -1}, {-3, 2, -1},
	}
	for _, tc := range cases {
		if got := ceilDiv(tc.a, tc.b); got != tc.want {
			t.Errorf("ceilDiv(%d,%d) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}
