package stream

import (
	"testing"
)

func TestSampleEveryN(t *testing.T) {
	s := &Sample{EveryN: 3}
	if err := s.Open(rfidSchema); err != nil {
		t.Fatal(err)
	}
	kept := 0
	for i := 0; i < 9; i++ {
		out, err := s.Process(read(float64(i), "A", 0))
		if err != nil {
			t.Fatal(err)
		}
		kept += len(out)
	}
	if kept != 3 {
		t.Errorf("kept %d of 9, want 3", kept)
	}
	// The first tuple is always kept.
	s2 := &Sample{EveryN: 5}
	s2.Open(rfidSchema)
	out, _ := s2.Process(read(0, "A", 0))
	if len(out) != 1 {
		t.Error("first tuple dropped")
	}
}

func TestSampleFraction(t *testing.T) {
	s := &Sample{Fraction: 0.25, Seed: 7}
	if err := s.Open(rfidSchema); err != nil {
		t.Fatal(err)
	}
	kept := 0
	const n = 10000
	for i := 0; i < n; i++ {
		out, _ := s.Process(read(float64(i), "A", 0))
		kept += len(out)
	}
	frac := float64(kept) / n
	if frac < 0.22 || frac > 0.28 {
		t.Errorf("kept fraction = %v, want ~0.25", frac)
	}
}

func TestSampleDeterministic(t *testing.T) {
	runSample := func() int {
		s := &Sample{Fraction: 0.5, Seed: 11}
		s.Open(rfidSchema)
		kept := 0
		for i := 0; i < 100; i++ {
			out, _ := s.Process(read(float64(i), "A", 0))
			kept += len(out)
		}
		return kept
	}
	if runSample() != runSample() {
		t.Error("seeded sampling not reproducible")
	}
}

func TestSampleValidation(t *testing.T) {
	cases := []*Sample{
		{},                         // neither mode
		{EveryN: 2, Fraction: 0.5}, // both
		{Fraction: 1.5},            // out of range
		{Fraction: -0.1},           // out of range
		{EveryN: -1},               // negative
	}
	for i, s := range cases {
		if err := s.Open(rfidSchema); err == nil {
			t.Errorf("case %d: want Open error", i)
		}
	}
}

func TestSamplePreservesSchema(t *testing.T) {
	s := &Sample{EveryN: 1}
	if err := s.Open(rfidSchema); err != nil {
		t.Fatal(err)
	}
	if !s.Schema().Equal(rfidSchema) {
		t.Error("sample changed the schema")
	}
}
