package stream

import (
	"fmt"
	"math"
	"strings"
)

// Expr is a scalar expression evaluated against one tuple of a known
// schema. Expressions are bound to a schema with Bind before evaluation;
// binding resolves column names to positions once so that evaluation on
// the hot path does no lookups.
type Expr interface {
	// Bind resolves column references against the schema and returns the
	// result kind of the expression.
	Bind(s *Schema) (Kind, error)
	// Eval computes the expression over one tuple. Eval must only be
	// called after a successful Bind.
	Eval(t Tuple) (Value, error)
	// String renders the expression in CQL-ish syntax.
	String() string
}

// Col references a column by name.
type Col struct {
	Name string
	idx  int
	kind Kind
}

// NewCol returns a column reference expression.
func NewCol(name string) *Col { return &Col{Name: name, idx: -1} }

// Bind implements Expr.
func (c *Col) Bind(s *Schema) (Kind, error) {
	i, ok := s.Index(c.Name)
	if !ok {
		return KindNull, fmt.Errorf("stream: unknown column %q in %s", c.Name, s)
	}
	c.idx = i
	c.kind = s.Field(i).Kind
	return c.kind, nil
}

// Eval implements Expr.
func (c *Col) Eval(t Tuple) (Value, error) {
	if c.idx < 0 {
		return Null(), fmt.Errorf("stream: column %q evaluated before Bind", c.Name)
	}
	if c.idx >= len(t.Values) {
		return Null(), fmt.Errorf("stream: column %q index %d out of range for tuple arity %d", c.Name, c.idx, len(t.Values))
	}
	return t.Values[c.idx], nil
}

func (c *Col) String() string { return c.Name }

// Const is a literal value.
type Const struct{ Val Value }

// NewConst returns a literal expression.
func NewConst(v Value) *Const { return &Const{Val: v} }

// Bind implements Expr.
func (c *Const) Bind(*Schema) (Kind, error) { return c.Val.Kind(), nil }

// Eval implements Expr.
func (c *Const) Eval(Tuple) (Value, error) { return c.Val, nil }

func (c *Const) String() string {
	if c.Val.Kind() == KindString {
		return "'" + c.Val.AsString() + "'"
	}
	return c.Val.String()
}

// BinOp enumerates binary operators.
type BinOp uint8

// Binary operators, in rough precedence order.
const (
	OpAdd BinOp = iota
	OpSub
	OpMul
	OpDiv
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAnd
	OpOr
)

func (op BinOp) String() string {
	switch op {
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpDiv:
		return "/"
	case OpEq:
		return "="
	case OpNe:
		return "<>"
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	case OpAnd:
		return "AND"
	case OpOr:
		return "OR"
	default:
		return fmt.Sprintf("op(%d)", uint8(op))
	}
}

// Binary applies a binary operator to two subexpressions.
type Binary struct {
	Op   BinOp
	L, R Expr
}

// NewBinary returns a binary expression.
func NewBinary(op BinOp, l, r Expr) *Binary { return &Binary{Op: op, L: l, R: r} }

// Bind implements Expr.
func (b *Binary) Bind(s *Schema) (Kind, error) {
	lk, err := b.L.Bind(s)
	if err != nil {
		return KindNull, err
	}
	rk, err := b.R.Bind(s)
	if err != nil {
		return KindNull, err
	}
	switch b.Op {
	case OpAdd, OpSub, OpMul, OpDiv:
		if !kindNumericOrNull(lk) || !kindNumericOrNull(rk) {
			return KindNull, fmt.Errorf("stream: %s %s %s: operands must be numeric", lk, b.Op, rk)
		}
		if lk == KindInt && rk == KindInt {
			return KindInt, nil
		}
		return KindFloat, nil
	case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
		return KindBool, nil
	case OpAnd, OpOr:
		if (lk != KindBool && lk != KindNull) || (rk != KindBool && rk != KindNull) {
			return KindNull, fmt.Errorf("stream: %s %s %s: operands must be boolean", lk, b.Op, rk)
		}
		return KindBool, nil
	}
	return KindNull, fmt.Errorf("stream: unknown binary op %v", b.Op)
}

func kindNumericOrNull(k Kind) bool { return k.Numeric() || k == KindNull }

// Eval implements Expr.
func (b *Binary) Eval(t Tuple) (Value, error) {
	// Short-circuit booleans first (three-valued logic).
	if b.Op == OpAnd || b.Op == OpOr {
		return b.evalLogical(t)
	}
	l, err := b.L.Eval(t)
	if err != nil {
		return Null(), err
	}
	r, err := b.R.Eval(t)
	if err != nil {
		return Null(), err
	}
	switch b.Op {
	case OpAdd:
		return l.Add(r)
	case OpSub:
		return l.Sub(r)
	case OpMul:
		return l.Mul(r)
	case OpDiv:
		return l.Div(r)
	}
	// Comparison with NULL propagation.
	if l.IsNull() || r.IsNull() {
		return Null(), nil
	}
	c, err := l.Compare(r)
	if err != nil {
		return Null(), err
	}
	switch b.Op {
	case OpEq:
		return Bool(c == 0), nil
	case OpNe:
		return Bool(c != 0), nil
	case OpLt:
		return Bool(c < 0), nil
	case OpLe:
		return Bool(c <= 0), nil
	case OpGt:
		return Bool(c > 0), nil
	case OpGe:
		return Bool(c >= 0), nil
	}
	return Null(), fmt.Errorf("stream: unknown binary op %v", b.Op)
}

// evalLogical implements SQL three-valued AND/OR with short-circuiting.
func (b *Binary) evalLogical(t Tuple) (Value, error) {
	l, err := b.L.Eval(t)
	if err != nil {
		return Null(), err
	}
	if b.Op == OpAnd {
		if !l.IsNull() && !l.AsBool() {
			return Bool(false), nil
		}
	} else {
		if !l.IsNull() && l.AsBool() {
			return Bool(true), nil
		}
	}
	r, err := b.R.Eval(t)
	if err != nil {
		return Null(), err
	}
	if b.Op == OpAnd {
		switch {
		case !r.IsNull() && !r.AsBool():
			return Bool(false), nil
		case l.IsNull() || r.IsNull():
			return Null(), nil
		default:
			return Bool(true), nil
		}
	}
	switch {
	case !r.IsNull() && r.AsBool():
		return Bool(true), nil
	case l.IsNull() || r.IsNull():
		return Null(), nil
	default:
		return Bool(false), nil
	}
}

func (b *Binary) String() string {
	return fmt.Sprintf("(%s %s %s)", b.L, b.Op, b.R)
}

// Not negates a boolean subexpression with NULL propagation.
type Not struct{ X Expr }

// NewNot returns NOT x.
func NewNot(x Expr) *Not { return &Not{X: x} }

// Bind implements Expr.
func (n *Not) Bind(s *Schema) (Kind, error) {
	k, err := n.X.Bind(s)
	if err != nil {
		return KindNull, err
	}
	if k != KindBool && k != KindNull {
		return KindNull, fmt.Errorf("stream: NOT %s: operand must be boolean", k)
	}
	return KindBool, nil
}

// Eval implements Expr.
func (n *Not) Eval(t Tuple) (Value, error) {
	v, err := n.X.Eval(t)
	if err != nil || v.IsNull() {
		return Null(), err
	}
	return Bool(!v.AsBool()), nil
}

func (n *Not) String() string { return fmt.Sprintf("(NOT %s)", n.X) }

// Neg arithmetically negates a numeric subexpression.
type Neg struct{ X Expr }

// NewNeg returns -x.
func NewNeg(x Expr) *Neg { return &Neg{X: x} }

// Bind implements Expr.
func (n *Neg) Bind(s *Schema) (Kind, error) {
	k, err := n.X.Bind(s)
	if err != nil {
		return KindNull, err
	}
	if !kindNumericOrNull(k) {
		return KindNull, fmt.Errorf("stream: -%s: operand must be numeric", k)
	}
	return k, nil
}

// Eval implements Expr.
func (n *Neg) Eval(t Tuple) (Value, error) {
	v, err := n.X.Eval(t)
	if err != nil {
		return Null(), err
	}
	return v.Neg()
}

func (n *Neg) String() string { return fmt.Sprintf("(-%s)", n.X) }

// IsNullExpr tests x IS [NOT] NULL.
type IsNullExpr struct {
	X      Expr
	Negate bool
}

// Bind implements Expr.
func (e *IsNullExpr) Bind(s *Schema) (Kind, error) {
	if _, err := e.X.Bind(s); err != nil {
		return KindNull, err
	}
	return KindBool, nil
}

// Eval implements Expr.
func (e *IsNullExpr) Eval(t Tuple) (Value, error) {
	v, err := e.X.Eval(t)
	if err != nil {
		return Null(), err
	}
	return Bool(v.IsNull() != e.Negate), nil
}

func (e *IsNullExpr) String() string {
	if e.Negate {
		return fmt.Sprintf("(%s IS NOT NULL)", e.X)
	}
	return fmt.Sprintf("(%s IS NULL)", e.X)
}

// InList tests x IN (e1, e2, ...) with SQL three-valued semantics:
// true if any element equals x, NULL if no element matches but one of
// the comparisons was NULL, false otherwise. Negate gives NOT IN.
type InList struct {
	X      Expr
	List   []Expr
	Negate bool
}

// Bind implements Expr.
func (e *InList) Bind(s *Schema) (Kind, error) {
	if len(e.List) == 0 {
		return KindNull, fmt.Errorf("stream: IN with empty list")
	}
	if _, err := e.X.Bind(s); err != nil {
		return KindNull, err
	}
	for _, el := range e.List {
		if _, err := el.Bind(s); err != nil {
			return KindNull, err
		}
	}
	return KindBool, nil
}

// Eval implements Expr.
func (e *InList) Eval(t Tuple) (Value, error) {
	x, err := e.X.Eval(t)
	if err != nil {
		return Null(), err
	}
	if x.IsNull() {
		return Null(), nil
	}
	sawNull := false
	for _, el := range e.List {
		v, err := el.Eval(t)
		if err != nil {
			return Null(), err
		}
		if v.IsNull() {
			sawNull = true
			continue
		}
		if c, err := x.Compare(v); err == nil && c == 0 {
			return Bool(!e.Negate), nil
		}
	}
	if sawNull {
		return Null(), nil
	}
	return Bool(e.Negate), nil
}

func (e *InList) String() string {
	parts := make([]string, len(e.List))
	for i, el := range e.List {
		parts[i] = el.String()
	}
	op := "IN"
	if e.Negate {
		op = "NOT IN"
	}
	return fmt.Sprintf("(%s %s (%s))", e.X, op, strings.Join(parts, ", "))
}

// ScalarFunc is the signature of registered scalar functions.
type ScalarFunc struct {
	Name string
	// MinArgs/MaxArgs bound the accepted arity (MaxArgs<0 = variadic).
	MinArgs, MaxArgs int
	// Result computes the output kind from argument kinds.
	Result func(args []Kind) (Kind, error)
	// Call evaluates the function.
	Call func(args []Value) (Value, error)
}

// scalarFuncs is the built-in scalar function registry.
var scalarFuncs = map[string]*ScalarFunc{}

// RegisterScalarFunc adds a scalar function to the registry. It is intended
// to be called from init functions or before any queries are planned; it is
// not safe for concurrent use with evaluation.
func RegisterScalarFunc(f *ScalarFunc) {
	scalarFuncs[strings.ToLower(f.Name)] = f
}

// LookupScalarFunc retrieves a registered function by name.
func LookupScalarFunc(name string) (*ScalarFunc, bool) {
	f, ok := scalarFuncs[strings.ToLower(name)]
	return f, ok
}

func init() {
	RegisterScalarFunc(&ScalarFunc{
		Name: "abs", MinArgs: 1, MaxArgs: 1,
		Result: func(args []Kind) (Kind, error) { return numericResult("abs", args[0]) },
		Call: func(args []Value) (Value, error) {
			v := args[0]
			if v.IsNull() {
				return Null(), nil
			}
			if v.Kind() == KindInt {
				i := v.AsInt()
				if i < 0 {
					i = -i
				}
				return Int(i), nil
			}
			return Float(math.Abs(v.AsFloat())), nil
		},
	})
	RegisterScalarFunc(&ScalarFunc{
		Name: "sqrt", MinArgs: 1, MaxArgs: 1,
		Result: func(args []Kind) (Kind, error) {
			if _, err := numericResult("sqrt", args[0]); err != nil {
				return KindNull, err
			}
			return KindFloat, nil
		},
		Call: func(args []Value) (Value, error) {
			if args[0].IsNull() {
				return Null(), nil
			}
			return Float(math.Sqrt(args[0].AsFloat())), nil
		},
	})
	RegisterScalarFunc(&ScalarFunc{
		Name: "coalesce", MinArgs: 1, MaxArgs: -1,
		Result: func(args []Kind) (Kind, error) {
			for _, k := range args {
				if k != KindNull {
					return k, nil
				}
			}
			return KindNull, nil
		},
		Call: func(args []Value) (Value, error) {
			for _, v := range args {
				if !v.IsNull() {
					return v, nil
				}
			}
			return Null(), nil
		},
	})
}

func numericResult(fn string, k Kind) (Kind, error) {
	if !kindNumericOrNull(k) {
		return KindNull, fmt.Errorf("stream: %s(%s): argument must be numeric", fn, k)
	}
	if k == KindNull {
		return KindFloat, nil
	}
	return k, nil
}

// Call invokes a registered scalar function.
type Call struct {
	Func string
	Args []Expr
	fn   *ScalarFunc
}

// NewCall returns a scalar function call expression.
func NewCall(name string, args ...Expr) *Call { return &Call{Func: name, Args: args} }

// Bind implements Expr.
func (c *Call) Bind(s *Schema) (Kind, error) {
	fn, ok := LookupScalarFunc(c.Func)
	if !ok {
		return KindNull, fmt.Errorf("stream: unknown function %q", c.Func)
	}
	if len(c.Args) < fn.MinArgs || (fn.MaxArgs >= 0 && len(c.Args) > fn.MaxArgs) {
		return KindNull, fmt.Errorf("stream: %s: got %d args", c.Func, len(c.Args))
	}
	kinds := make([]Kind, len(c.Args))
	for i, a := range c.Args {
		k, err := a.Bind(s)
		if err != nil {
			return KindNull, err
		}
		kinds[i] = k
	}
	c.fn = fn
	return fn.Result(kinds)
}

// Eval implements Expr.
func (c *Call) Eval(t Tuple) (Value, error) {
	if c.fn == nil {
		return Null(), fmt.Errorf("stream: function %q evaluated before Bind", c.Func)
	}
	args := make([]Value, len(c.Args))
	for i, a := range c.Args {
		v, err := a.Eval(t)
		if err != nil {
			return Null(), err
		}
		args[i] = v
	}
	return c.fn.Call(args)
}

func (c *Call) String() string {
	parts := make([]string, len(c.Args))
	for i, a := range c.Args {
		parts[i] = a.String()
	}
	return fmt.Sprintf("%s(%s)", c.Func, strings.Join(parts, ", "))
}
