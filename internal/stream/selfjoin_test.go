package stream

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

// TestQuickSelfJoinMatchesReference verifies SelfJoin against a direct
// re-computation: at every boundary, each in-window tuple must appear
// exactly once, joined with its group's window aggregates.
func TestQuickSelfJoinMatchesReference(t *testing.T) {
	schema := MustSchema(
		Field{Name: "granule", Kind: KindInt},
		Field{Name: "temp", Kind: KindFloat},
	)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rangeSec := 1 + r.Intn(5)
		sj := &SelfJoin{
			Range:     time.Duration(rangeSec) * time.Second,
			Slide:     time.Second,
			RawPrefix: "s.", AggPrefix: "a.",
			GroupBy: []NamedExpr{{Name: "granule", Expr: NewCol("granule")}},
			Aggs: []AggSpec{
				{Name: "n", Func: AggCount},
				{Name: "avg", Func: AggAvg, Arg: NewCol("temp")},
			},
		}
		if err := sj.Open(schema); err != nil {
			t.Fatal(err)
		}
		type reading struct {
			ts      time.Time
			granule int64
			temp    float64
		}
		var readings []reading
		sec := 0.0
		n := r.Intn(60)
		for i := 0; i < n; i++ {
			sec += r.Float64()
			readings = append(readings, reading{
				ts:      at(sec),
				granule: int64(r.Intn(3)),
				temp:    float64(r.Intn(40)),
			})
		}
		i := 0
		for now := 1; now <= 15; now++ {
			bound := at(float64(now))
			for i < len(readings) && !readings[i].ts.After(bound) {
				if _, err := sj.Process(NewTuple(readings[i].ts, Int(readings[i].granule), Float(readings[i].temp))); err != nil {
					t.Fatal(err)
				}
				i++
			}
			out, err := sj.Advance(bound)
			if err != nil {
				t.Fatal(err)
			}
			// Reference: window (bound-range, bound].
			lo := bound.Add(-time.Duration(rangeSec) * time.Second)
			var window []reading
			sums := map[int64]float64{}
			counts := map[int64]int{}
			for _, rd := range readings[:i] {
				if rd.ts.After(lo) && !rd.ts.After(bound) {
					window = append(window, rd)
					sums[rd.granule] += rd.temp
					counts[rd.granule]++
				}
			}
			if len(out) != len(window) {
				return false
			}
			// Each output row: (s.granule, s.temp, a.granule, a.n, a.avg).
			used := make([]bool, len(window))
			for _, row := range out {
				g := row.Values[0].AsInt()
				temp := row.Values[1].AsFloat()
				found := false
				for j, rd := range window {
					if !used[j] && rd.granule == g && rd.temp == temp {
						used[j] = true
						found = true
						break
					}
				}
				if !found {
					return false
				}
				if row.Values[2].AsInt() != g {
					return false
				}
				if row.Values[3].AsInt() != int64(counts[g]) {
					return false
				}
				wantAvg := sums[g] / float64(counts[g])
				if math.Abs(row.Values[4].AsFloat()-wantAvg) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestSelfJoinNowWindow checks the [Range By 'NOW'] normalization.
func TestSelfJoinNowWindow(t *testing.T) {
	schema := MustSchema(
		Field{Name: "granule", Kind: KindInt},
		Field{Name: "temp", Kind: KindFloat},
	)
	sj := &SelfJoin{
		Slide:     time.Second, // Range 0 => NOW => one epoch
		RawPrefix: "s.", AggPrefix: "a.",
		GroupBy: []NamedExpr{{Name: "granule", Expr: NewCol("granule")}},
		Aggs:    []AggSpec{{Name: "n", Func: AggCount}},
	}
	if err := sj.Open(schema); err != nil {
		t.Fatal(err)
	}
	sj.Process(NewTuple(at(0.5), Int(1), Float(20)))
	out, _ := sj.Advance(at(1))
	if len(out) != 1 {
		t.Fatalf("epoch 1 = %v", out)
	}
	// Next epoch: the tuple has left the NOW window.
	out, _ = sj.Advance(at(2))
	if len(out) != 0 {
		t.Errorf("NOW window retained a stale tuple: %v", out)
	}
}
