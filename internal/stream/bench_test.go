package stream

import (
	"fmt"
	"testing"
	"time"
)

func BenchmarkFilterThroughput(b *testing.B) {
	f := NewFilter(NewBinary(OpEq, NewCol("shelf"), NewConst(Int(0))))
	if err := f.Open(rfidSchema); err != nil {
		b.Fatal(err)
	}
	t := read(0.1, "A", 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.Process(t); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWindowAggProcess(b *testing.B) {
	w := &WindowAgg{
		GroupBy: []NamedExpr{{Name: "tag_id", Expr: NewCol("tag_id")}},
		Aggs:    []AggSpec{{Name: "n", Func: AggCount}},
		Range:   5 * time.Second,
		Slide:   time.Second,
	}
	if err := w.Open(rfidSchema); err != nil {
		b.Fatal(err)
	}
	if _, err := w.Advance(at(0)); err != nil {
		b.Fatal(err)
	}
	tags := make([]Tuple, 16)
	for i := range tags {
		tags[i] = read(0.5, fmt.Sprintf("tag%d", i), 0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := tags[i%len(tags)]
		t.Ts = at(float64(i) * 0.001)
		if _, err := w.Process(t); err != nil {
			b.Fatal(err)
		}
		if i%1000 == 999 {
			if _, err := w.Advance(at(float64(i) * 0.001)); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkArgMaxEpoch(b *testing.B) {
	a := &ArgMax{
		PartitionBy: []NamedExpr{{Name: "tag_id", Expr: NewCol("tag_id")}},
		ChooseBy:    []NamedExpr{{Name: "spatial_granule", Expr: NewCol("spatial_granule")}},
		Score:       NamedExpr{Name: "n", Expr: NewCol("n")},
	}
	schema := MustSchema(
		Field{Name: "spatial_granule", Kind: KindInt},
		Field{Name: "tag_id", Kind: KindString},
		Field{Name: "n", Kind: KindInt},
	)
	if err := a.Open(schema); err != nil {
		b.Fatal(err)
	}
	candidates := make([]Tuple, 50)
	for i := range candidates {
		candidates[i] = NewTuple(at(0.5),
			Int(int64(i%2)), String(fmt.Sprintf("tag%d", i/2)), Int(int64(i)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, c := range candidates {
			if _, err := a.Process(c); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := a.Advance(at(float64(i + 1))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkJoinStaticLookup(b *testing.B) {
	rows := make([]Tuple, 1000)
	for i := range rows {
		rows[i] = NewTuple(time.Time{}, String(fmt.Sprintf("tag%d", i)))
	}
	table := MustTable(MustSchema(Field{Name: "expected_tag", Kind: KindString}), rows)
	j := &JoinStatic{Table: table, StreamCol: "tag_id", TableCol: "expected_tag", Mode: JoinSemi}
	if err := j.Open(rfidSchema); err != nil {
		b.Fatal(err)
	}
	t := read(0.1, "tag500", 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := j.Process(t); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGroupKey(b *testing.B) {
	vals := []Value{Int(7), String("shelf0"), String("tag42")}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = MakeGroupKey(vals...)
	}
}
