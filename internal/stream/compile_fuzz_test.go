package stream

import (
	"math"
	"testing"
	"time"
)

// FuzzCompileExpr cross-checks the compiled evaluator against the
// tree-walking one: the fuzz input drives a small expression generator
// plus a row of input values, and CompileExpr's closure must agree with
// Expr.Eval on the value, the NULL-ness, and the error for every
// generated (expression, tuple) pair — the contract CompileExpr's doc
// comment promises.
func FuzzCompileExpr(f *testing.F) {
	f.Add([]byte{0, 0})
	f.Add([]byte{2, 0, 1, 3, 0, 0, 1, 4, 9})
	f.Add([]byte{2, 8, 1, 2, 7, 1, 2, 3})
	f.Add([]byte{6, 2, 0, 1, 1, 3, 1, 4, 250, 251})
	f.Add([]byte{7, 5, 0, 0, 0, 1, 1, 2, 1, 3, 16, 32, 64})
	f.Add([]byte{5, 1, 3, 0, 2, 4, 0, 3, 0, 4, 128})
	f.Add([]byte{2, 11, 1, 3, 200, 1, 3, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		g := &exprGen{data: data}
		e := g.expr(0)
		if _, err := e.Bind(fuzzSchema); err != nil {
			t.Skip()
		}
		compiled := CompileExpr(e)
		for range [3]int{} {
			tu := g.tuple()
			wantV, wantErr := e.Eval(tu)
			gotV, gotErr := compiled(tu)
			if (wantErr == nil) != (gotErr == nil) {
				t.Fatalf("expr %s on %v: tree err %v, compiled err %v", e, tu.Values, wantErr, gotErr)
			}
			if wantErr != nil {
				if wantErr.Error() != gotErr.Error() {
					t.Fatalf("expr %s on %v: tree err %q, compiled err %q", e, tu.Values, wantErr, gotErr)
				}
				continue
			}
			if !fuzzValueEq(wantV, gotV) {
				t.Fatalf("expr %s on %v: tree %v, compiled %v", e, tu.Values, wantV, gotV)
			}
		}
	})
}

var fuzzSchema = MustSchema(
	Field{Name: "b", Kind: KindBool},
	Field{Name: "i", Kind: KindInt},
	Field{Name: "f", Kind: KindFloat},
	Field{Name: "s", Kind: KindString},
	Field{Name: "t", Kind: KindTime},
)

var fuzzCols = []string{"b", "i", "f", "s", "t"}

// fuzzValueEq is exact equality except that two float NaNs agree (NaN
// compares unequal to itself, but both evaluators producing NaN is
// agreement).
func fuzzValueEq(a, b Value) bool {
	if a.Kind() != b.Kind() {
		return false
	}
	if a.Kind() == KindFloat {
		af, bf := a.AsFloat(), b.AsFloat()
		return af == bf || (math.IsNaN(af) && math.IsNaN(bf))
	}
	return a == b
}

// exprGen consumes fuzz bytes as a little construction program: each
// byte picks a node type, an operator, a constant, or a column. Running
// out of bytes degrades to zeros, which terminate every production.
type exprGen struct {
	data []byte
	pos  int
}

func (g *exprGen) next() byte {
	if g.pos >= len(g.data) {
		return 0
	}
	b := g.data[g.pos]
	g.pos++
	return b
}

const maxExprDepth = 5

func (g *exprGen) expr(depth int) Expr {
	b := g.next()
	if depth >= maxExprDepth {
		b %= 2 // leaves only
	}
	switch b % 9 {
	case 0: // column
		return NewCol(fuzzCols[int(g.next())%len(fuzzCols)])
	case 1: // constant
		return NewConst(g.value())
	case 2: // binary
		op := BinOp(int(g.next()) % (int(OpOr) + 1))
		return NewBinary(op, g.expr(depth+1), g.expr(depth+1))
	case 3:
		return NewNot(g.expr(depth + 1))
	case 4:
		return NewNeg(g.expr(depth + 1))
	case 5:
		return &IsNullExpr{X: g.expr(depth + 1), Negate: g.next()%2 == 1}
	case 6:
		n := 1 + int(g.next())%3
		list := make([]Expr, n)
		for i := range list {
			list[i] = g.expr(depth + 1)
		}
		return &InList{X: g.expr(depth + 1), List: list, Negate: g.next()%2 == 1}
	case 7:
		switch g.next() % 3 {
		case 0:
			name := []string{"round", "floor", "ceil"}[int(g.next())%3]
			return NewCall(name, g.expr(depth+1))
		case 1:
			name := []string{"least", "greatest"}[int(g.next())%2]
			return NewCall(name, g.expr(depth+1), g.expr(depth+1))
		default:
			return NewCall("clamp", g.expr(depth+1), g.expr(depth+1), g.expr(depth+1))
		}
	default: // CASE — exercises the compiler's tree-walk fallback
		c := &CaseExpr{}
		if g.next()%2 == 1 {
			c.Operand = g.expr(depth + 1)
		}
		for i, n := 0, 1+int(g.next())%2; i < n; i++ {
			c.Whens = append(c.Whens, When{Cond: g.expr(depth + 1), Then: g.expr(depth + 1)})
		}
		if g.next()%2 == 1 {
			c.Else = g.expr(depth + 1)
		}
		return c
	}
}

func (g *exprGen) value() Value {
	switch g.next() % 6 {
	case 0:
		return Null()
	case 1:
		return Bool(g.next()%2 == 1)
	case 2:
		return Int(int64(g.next()) - 128)
	case 3:
		// A byte-derived float, occasionally special.
		switch b := g.next(); b {
		case 250:
			return Float(math.NaN())
		case 251:
			return Float(math.Inf(1))
		default:
			return Float(float64(b)/8 - 15)
		}
	case 4:
		return String(string(rune('a' + g.next()%4)))
	default:
		return Time(time.Unix(int64(g.next()), 0).UTC())
	}
}

// tuple builds one row matching fuzzSchema's kinds (with NULLs mixed
// in), so Bind-time kind checks hold at evaluation time too.
func (g *exprGen) tuple() Tuple {
	vals := make([]Value, len(fuzzCols))
	for i := range vals {
		if g.next()%4 == 0 {
			vals[i] = Null()
			continue
		}
		switch i {
		case 0:
			vals[i] = Bool(g.next()%2 == 1)
		case 1:
			vals[i] = Int(int64(g.next()) - 128)
		case 2:
			vals[i] = Float(float64(g.next())/4 - 31)
		case 3:
			vals[i] = String(string(rune('a' + g.next()%4)))
		default:
			vals[i] = Time(time.Unix(int64(g.next()), 0).UTC())
		}
	}
	return Tuple{Ts: time.Unix(0, 0).UTC(), Values: vals}
}
