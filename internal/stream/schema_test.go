package stream

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestSchemaBasics(t *testing.T) {
	s := MustSchema(
		Field{Name: "tag_id", Kind: KindString},
		Field{Name: "shelf", Kind: KindInt},
	)
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	if i, ok := s.Index("TAG_ID"); !ok || i != 0 {
		t.Errorf("Index(TAG_ID) = %d, %v; want case-insensitive hit at 0", i, ok)
	}
	if _, ok := s.Index("missing"); ok {
		t.Error("Index(missing) should miss")
	}
	if got := s.MustIndex("shelf"); got != 1 {
		t.Errorf("MustIndex(shelf) = %d", got)
	}
	if s.String() != "(tag_id string, shelf int)" {
		t.Errorf("String() = %q", s.String())
	}
}

func TestSchemaErrors(t *testing.T) {
	if _, err := NewSchema(Field{Name: "a", Kind: KindInt}, Field{Name: "A", Kind: KindInt}); err == nil {
		t.Error("duplicate name (case-insensitive): want error")
	}
	if _, err := NewSchema(Field{Name: "", Kind: KindInt}); err == nil {
		t.Error("empty name: want error")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("MustIndex on missing field: want panic")
			}
		}()
		MustSchema(Field{Name: "a", Kind: KindInt}).MustIndex("b")
	}()
}

func TestSchemaEqualAndConcat(t *testing.T) {
	a := MustSchema(Field{Name: "x", Kind: KindInt})
	b := MustSchema(Field{Name: "X", Kind: KindInt})
	c := MustSchema(Field{Name: "x", Kind: KindFloat})
	if !a.Equal(b) {
		t.Error("schemas differing only in case should be Equal")
	}
	if a.Equal(c) {
		t.Error("schemas with different kinds should not be Equal")
	}
	d := MustSchema(Field{Name: "y", Kind: KindString})
	cat, err := a.Concat(d)
	if err != nil {
		t.Fatal(err)
	}
	if cat.Len() != 2 || cat.MustIndex("y") != 1 {
		t.Errorf("Concat = %s", cat)
	}
	if _, err := a.Concat(b); err == nil {
		t.Error("Concat with duplicate name: want error")
	}
}

func TestCheckTuple(t *testing.T) {
	s := MustSchema(
		Field{Name: "temp", Kind: KindFloat},
		Field{Name: "mote", Kind: KindInt},
	)
	ok := NewTuple(time.Unix(0, 0), Float(21.5), Int(3))
	if err := CheckTuple(s, ok); err != nil {
		t.Errorf("valid tuple rejected: %v", err)
	}
	// Int accepted where float declared.
	if err := CheckTuple(s, NewTuple(time.Unix(0, 0), Int(21), Int(3))); err != nil {
		t.Errorf("int-for-float rejected: %v", err)
	}
	// NULL accepted anywhere.
	if err := CheckTuple(s, NewTuple(time.Unix(0, 0), Null(), Null())); err != nil {
		t.Errorf("NULLs rejected: %v", err)
	}
	if err := CheckTuple(s, NewTuple(time.Unix(0, 0), Float(1))); err == nil {
		t.Error("arity mismatch: want error")
	}
	if err := CheckTuple(s, NewTuple(time.Unix(0, 0), String("hot"), Int(3))); err == nil {
		t.Error("kind mismatch: want error")
	}
}

func TestTupleCloneIndependence(t *testing.T) {
	orig := NewTuple(time.Unix(5, 0), Int(1), Int(2))
	cp := orig.Clone()
	cp.Values[0] = Int(99)
	if orig.Values[0] != Int(1) {
		t.Error("Clone shares value storage")
	}
}

func TestGroupKeyEquality(t *testing.T) {
	a := MakeGroupKey(Int(1), String("x"))
	b := MakeGroupKey(Int(1), String("x"))
	c := MakeGroupKey(Int(1), String("y"))
	if a != b {
		t.Error("identical values must give identical keys")
	}
	if a == c {
		t.Error("different values must give different keys")
	}
	// Arity participates in the key.
	if MakeGroupKey(Int(1)) == MakeGroupKey(Int(1), Null()) {
		t.Error("keys of different arity must differ")
	}
}

func TestQuickGroupKeyInjective(t *testing.T) {
	// For random value slices, key equality must coincide with structural
	// (Go ==) equality of the slices, across arities 0..6 (exercising the
	// >4-field string fallback).
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(7)
		a := make([]Value, n)
		b := make([]Value, n)
		for i := range a {
			a[i] = randomValue(r)
			if r.Intn(2) == 0 {
				b[i] = a[i]
			} else {
				b[i] = randomValue(r)
			}
		}
		same := true
		for i := range a {
			if a[i] != b[i] {
				same = false
				break
			}
		}
		return (MakeGroupKey(a...) == MakeGroupKey(b...)) == same
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
