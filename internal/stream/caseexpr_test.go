package stream

import (
	"testing"
)

var caseSchema = MustSchema(
	Field{Name: "status", Kind: KindString},
	Field{Name: "raw", Kind: KindInt},
)

func caseTuple(status string, raw int64) Tuple {
	return NewTuple(at(0), String(status), Int(raw))
}

func TestSearchedCase(t *testing.T) {
	// Sensor status decoding: a classic Point-stage transform.
	c := &CaseExpr{
		Whens: []When{
			{Cond: NewBinary(OpEq, NewCol("status"), NewConst(String("ok"))), Then: NewCol("raw")},
			{Cond: NewBinary(OpEq, NewCol("status"), NewConst(String("stale"))), Then: NewConst(Int(-1))},
		},
		Else: NewConst(Int(-2)),
	}
	k, err := c.Bind(caseSchema)
	if err != nil || k != KindInt {
		t.Fatalf("bind = %v, %v", k, err)
	}
	if v, _ := c.Eval(caseTuple("ok", 42)); v != Int(42) {
		t.Errorf("ok branch = %v", v)
	}
	if v, _ := c.Eval(caseTuple("stale", 42)); v != Int(-1) {
		t.Errorf("stale branch = %v", v)
	}
	if v, _ := c.Eval(caseTuple("??", 42)); v != Int(-2) {
		t.Errorf("else branch = %v", v)
	}
}

func TestOperandCase(t *testing.T) {
	c := &CaseExpr{
		Operand: NewCol("status"),
		Whens: []When{
			{Cond: NewConst(String("on")), Then: NewConst(Int(1))},
			{Cond: NewConst(String("off")), Then: NewConst(Int(0))},
		},
	}
	if _, err := c.Bind(caseSchema); err != nil {
		t.Fatal(err)
	}
	if v, _ := c.Eval(caseTuple("on", 0)); v != Int(1) {
		t.Errorf("on = %v", v)
	}
	if v, _ := c.Eval(caseTuple("dim", 0)); !v.IsNull() {
		t.Errorf("no ELSE should yield NULL, got %v", v)
	}
	// NULL operand matches nothing.
	if v, _ := c.Eval(NewTuple(at(0), Null(), Int(0))); !v.IsNull() {
		t.Errorf("NULL operand = %v", v)
	}
}

func TestCaseNumericPromotion(t *testing.T) {
	c := &CaseExpr{
		Whens: []When{
			{Cond: NewBinary(OpGt, NewCol("raw"), NewConst(Int(10))), Then: NewConst(Float(1.5))},
		},
		Else: NewConst(Int(2)),
	}
	k, err := c.Bind(caseSchema)
	if err != nil || k != KindFloat {
		t.Fatalf("bind = %v, %v", k, err)
	}
	if v, _ := c.Eval(caseTuple("x", 5)); v != Float(2) {
		t.Errorf("promoted else = %v (%s)", v, v.Kind())
	}
}

func TestCaseBindErrors(t *testing.T) {
	cases := []*CaseExpr{
		{}, // no whens
		{Whens: []When{{Cond: NewCol("raw"), Then: NewConst(Int(1))}}},                                // non-bool cond in searched form
		{Whens: []When{{Cond: NewConst(Bool(true)), Then: NewCol("status")}}, Else: NewConst(Int(1))}, // string vs int branches
	}
	for i, c := range cases {
		if _, err := c.Bind(caseSchema); err == nil {
			t.Errorf("case %d: want bind error", i)
		}
	}
}

func TestCaseFirstMatchWins(t *testing.T) {
	c := &CaseExpr{
		Whens: []When{
			{Cond: NewBinary(OpGt, NewCol("raw"), NewConst(Int(0))), Then: NewConst(String("pos"))},
			{Cond: NewBinary(OpGt, NewCol("raw"), NewConst(Int(10))), Then: NewConst(String("big"))},
		},
	}
	if _, err := c.Bind(caseSchema); err != nil {
		t.Fatal(err)
	}
	if v, _ := c.Eval(caseTuple("x", 50)); v != String("pos") {
		t.Errorf("first match = %v", v)
	}
}

func TestScalarCalibrationFunctions(t *testing.T) {
	evalConst := func(e Expr) Value {
		t.Helper()
		if _, err := e.Bind(caseSchema); err != nil {
			t.Fatal(err)
		}
		v, err := e.Eval(caseTuple("x", 0))
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	if v := evalConst(NewCall("round", NewConst(Float(2.5)))); v != Float(3) {
		t.Errorf("round(2.5) = %v", v)
	}
	if v := evalConst(NewCall("floor", NewConst(Float(2.9)))); v != Float(2) {
		t.Errorf("floor(2.9) = %v", v)
	}
	if v := evalConst(NewCall("ceil", NewConst(Float(2.1)))); v != Float(3) {
		t.Errorf("ceil(2.1) = %v", v)
	}
	if v := evalConst(NewCall("least", NewConst(Int(3)), NewConst(Int(1)), NewConst(Int(2)))); v != Int(1) {
		t.Errorf("least = %v", v)
	}
	if v := evalConst(NewCall("greatest", NewConst(Float(3)), NewConst(Int(5)))); v != Int(5) {
		t.Errorf("greatest = %v", v)
	}
	if v := evalConst(NewCall("greatest", NewConst(Int(1)), NewConst(Null()))); !v.IsNull() {
		t.Errorf("greatest with NULL = %v", v)
	}
	if v := evalConst(NewCall("clamp", NewConst(Float(120)), NewConst(Int(0)), NewConst(Int(100)))); v != Float(100) {
		t.Errorf("clamp = %v", v)
	}
	bad := NewCall("clamp", NewConst(Int(1)), NewConst(Int(10)), NewConst(Int(0)))
	if _, err := bad.Bind(caseSchema); err != nil {
		t.Fatal(err)
	}
	if _, err := bad.Eval(caseTuple("x", 0)); err == nil {
		t.Error("clamp with lo>hi: want eval error")
	}
}
