package stream

import (
	"testing"
	"time"
)

var expectedTags = MustTable(
	MustSchema(Field{Name: "expected_tag", Kind: KindString}),
	[]Tuple{
		NewTuple(time.Time{}, String("A")),
		NewTuple(time.Time{}, String("B")),
	},
)

func TestTableValidation(t *testing.T) {
	s := MustSchema(Field{Name: "x", Kind: KindInt})
	if _, err := NewTable(s, []Tuple{NewTuple(time.Time{}, String("no"))}); err == nil {
		t.Error("kind-mismatched row: want error")
	}
	if _, err := NewTable(s, []Tuple{NewTuple(time.Time{})}); err == nil {
		t.Error("arity-mismatched row: want error")
	}
	tb, err := NewTable(s, []Tuple{NewTuple(time.Time{}, Int(1))})
	if err != nil || tb.Len() != 1 {
		t.Errorf("valid table rejected: %v", err)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("MustTable on bad rows: want panic")
			}
		}()
		MustTable(s, []Tuple{NewTuple(time.Time{}, String("no"))})
	}()
}

// TestJoinSemiExpectedTags mirrors the digital-home Point stage: filter
// RFID readings through a static relation of expected tag IDs.
func TestJoinSemiExpectedTags(t *testing.T) {
	j := &JoinStatic{Table: expectedTags, StreamCol: "tag_id", TableCol: "expected_tag", Mode: JoinSemi}
	if err := j.Open(rfidSchema); err != nil {
		t.Fatal(err)
	}
	if !j.Schema().Equal(rfidSchema) {
		t.Errorf("semi-join must preserve the stream schema, got %s", j.Schema())
	}
	keep, _ := j.Process(read(0.1, "A", 0))
	drop, _ := j.Process(read(0.2, "Z", 0)) // errant tag
	if len(keep) != 1 || len(drop) != 0 {
		t.Errorf("semi join: keep=%v drop=%v", keep, drop)
	}
}

func TestJoinAnti(t *testing.T) {
	j := &JoinStatic{Table: expectedTags, StreamCol: "tag_id", TableCol: "expected_tag", Mode: JoinAnti}
	if err := j.Open(rfidSchema); err != nil {
		t.Fatal(err)
	}
	keep, _ := j.Process(read(0.1, "Z", 0))
	drop, _ := j.Process(read(0.2, "A", 0))
	if len(keep) != 1 || len(drop) != 0 {
		t.Errorf("anti join: keep=%v drop=%v", keep, drop)
	}
}

func TestJoinInnerInventoryLookup(t *testing.T) {
	inventory := MustTable(
		MustSchema(
			Field{Name: "inv_tag", Kind: KindString},
			Field{Name: "product", Kind: KindString},
		),
		[]Tuple{
			NewTuple(time.Time{}, String("A"), String("soap")),
			NewTuple(time.Time{}, String("A"), String("soap-dup")), // multi-match
		},
	)
	j := &JoinStatic{Table: inventory, StreamCol: "tag_id", TableCol: "inv_tag", Mode: JoinInner}
	if err := j.Open(rfidSchema); err != nil {
		t.Fatal(err)
	}
	if j.Schema().Len() != 4 {
		t.Errorf("inner join schema = %s", j.Schema())
	}
	out, _ := j.Process(read(0.1, "A", 0))
	if len(out) != 2 {
		t.Fatalf("multi-match inner join: %v", out)
	}
	if out[0].Values[3] != String("soap") {
		t.Errorf("joined row = %v", out[0])
	}
	miss, _ := j.Process(read(0.2, "Z", 0))
	if len(miss) != 0 {
		t.Errorf("inner join non-match should drop, got %v", miss)
	}
}

func TestJoinNullNeverMatches(t *testing.T) {
	j := &JoinStatic{Table: expectedTags, StreamCol: "tag_id", TableCol: "expected_tag", Mode: JoinSemi}
	if err := j.Open(rfidSchema); err != nil {
		t.Fatal(err)
	}
	out, _ := j.Process(NewTuple(at(0.1), Null(), Int(0)))
	if len(out) != 0 {
		t.Error("NULL key must not join")
	}
	// Anti-join: NULL has no match, so it passes (SQL NOT IN would differ,
	// but our anti-join is match-based).
	ja := &JoinStatic{Table: expectedTags, StreamCol: "tag_id", TableCol: "expected_tag", Mode: JoinAnti}
	if err := ja.Open(rfidSchema); err != nil {
		t.Fatal(err)
	}
	out, _ = ja.Process(NewTuple(at(0.1), Null(), Int(0)))
	if len(out) != 1 {
		t.Error("NULL key should pass anti-join")
	}
}

func TestJoinNumericKeyCoercion(t *testing.T) {
	ints := MustTable(
		MustSchema(Field{Name: "k", Kind: KindInt}),
		[]Tuple{NewTuple(time.Time{}, Int(5))},
	)
	s := MustSchema(Field{Name: "v", Kind: KindFloat})
	j := &JoinStatic{Table: ints, StreamCol: "v", TableCol: "k", Mode: JoinSemi}
	if err := j.Open(s); err != nil {
		t.Fatal(err)
	}
	out, _ := j.Process(NewTuple(at(0.1), Float(5.0)))
	if len(out) != 1 {
		t.Error("float 5.0 should join int 5")
	}
}

func TestJoinOpenErrors(t *testing.T) {
	j := &JoinStatic{Table: expectedTags, StreamCol: "nope", TableCol: "expected_tag"}
	if err := j.Open(rfidSchema); err == nil {
		t.Error("unknown stream column: want error")
	}
	j2 := &JoinStatic{Table: expectedTags, StreamCol: "tag_id", TableCol: "nope"}
	if err := j2.Open(rfidSchema); err == nil {
		t.Error("unknown table column: want error")
	}
	// Inner join with overlapping names must error.
	overlap := MustTable(MustSchema(Field{Name: "tag_id", Kind: KindString}), nil)
	j3 := &JoinStatic{Table: overlap, StreamCol: "tag_id", TableCol: "tag_id", Mode: JoinInner}
	if err := j3.Open(rfidSchema); err == nil {
		t.Error("overlapping output columns: want error")
	}
}
