package stream

import (
	"fmt"
	"time"
)

// BatchOperator is implemented by operators that can consume a columnar
// Batch at a time. ProcessBatch is the batch analogue of Process: it
// returns the rows produced either still columnar (outB) or materialized
// as tuples (outT) — never both. (nil, nil, nil) means the batch was
// absorbed (or fully filtered).
//
// The returned batch may be owned by the operator (or may be the input
// batch when every row passes through unchanged) and is only valid until
// the operator's next invocation. Punctuation (Advance/Close) always uses
// the tuple path.
type BatchOperator interface {
	Operator
	ProcessBatch(b *Batch) (outB *Batch, outT []Tuple, err error)
}

// BatchDegradeReporter is implemented by composite batch operators
// (Chain, Graph) that may leave the columnar representation internally
// without it being visible in their return values — e.g. a chain whose
// middle operator degrades to tuples and whose final window absorbs
// them, returning (nil, nil, nil). LastBatchDegraded reports whether the
// most recent ProcessBatch/PushBatch invocation degraded anywhere
// inside. It is what lets the executor count batch_fallbacks exactly
// once per columnar delivery, with no blind spots and no double counts.
type BatchDegradeReporter interface {
	LastBatchDegraded() bool
}

// ProcessBatchOp pushes a batch through any operator: the columnar path
// when op implements BatchOperator, otherwise row-at-a-time via Process
// with the rows materialized once.
func ProcessBatchOp(op Operator, b *Batch) (*Batch, []Tuple, error) {
	if bo, ok := op.(BatchOperator); ok {
		return bo.ProcessBatch(b)
	}
	var out []Tuple
	for _, t := range b.Tuples() {
		got, err := op.Process(t)
		if err != nil {
			return nil, nil, err
		}
		out = append(out, got...)
	}
	return nil, out, nil
}

// LastBatchDegraded implements BatchDegradeReporter.
func (c *Chain) LastBatchDegraded() bool { return c.degraded }

// ProcessBatch implements BatchOperator for Chain: the batch stays
// columnar through consecutive batch-capable operators and degrades to
// the tuple path at the first operator that isn't. Degradation is
// latched in c.degraded even when the tuple tail is absorbed and the
// call returns (nil, nil, nil).
func (c *Chain) ProcessBatch(b *Batch) (*Batch, []Tuple, error) {
	c.degraded = false
	cur := b
	for j, op := range c.Ops {
		if cur == nil || cur.Len() == 0 {
			return nil, nil, nil
		}
		bop, ok := op.(BatchOperator)
		if !ok {
			c.degraded = true
			out, err := c.feed(j, cur.Tuples())
			return nil, out, err
		}
		nb, nt, err := bop.ProcessBatch(cur)
		if err != nil {
			return nil, nil, err
		}
		if nt != nil {
			c.degraded = true
			out, err := c.feed(j+1, nt)
			return nil, out, err
		}
		if r, ok := op.(BatchDegradeReporter); ok && r.LastBatchDegraded() {
			c.degraded = true
		}
		cur = nb
	}
	if cur != nil && cur.Len() == 0 {
		return nil, nil, nil
	}
	if cur == b && len(c.Ops) == 0 {
		return cur, nil, nil
	}
	return cur, nil, nil
}

// ProcessBatch implements BatchOperator for Filter. When every row passes
// the input batch is returned unchanged (zero copies); otherwise the
// surviving rows are compacted into a reused output batch.
func (f *Filter) ProcessBatch(b *Batch) (*Batch, []Tuple, error) {
	n := b.Len()
	f.keep = append(f.keep[:0], make([]bool, n)...)
	kept := 0
	for i := 0; i < n; i++ {
		f.scratch = b.CopyRow(i, f.scratch[:0])
		v, err := f.pred(Tuple{Ts: b.RowTs(i), Values: f.scratch})
		if err != nil {
			return nil, nil, fmt.Errorf("stream: filter: %w", err)
		}
		if v.Truthy() {
			f.keep[i] = true
			kept++
		}
	}
	if kept == n {
		return b, nil, nil
	}
	if kept == 0 {
		return nil, nil, nil
	}
	if f.obatch == nil {
		f.obatch = NewBatch(f.out)
	} else {
		f.obatch.Reset(f.out)
	}
	for i := 0; i < n; i++ {
		if f.keep[i] {
			f.obatch.AppendFrom(b, i)
		}
	}
	return f.obatch, nil, nil
}

// ProcessBatch implements BatchOperator for Project. Rows whose computed
// values break column homogeneity flip the whole batch to materialized
// tuples mid-flight (rare: mixed int/float arithmetic results).
func (p *Project) ProcessBatch(b *Batch) (*Batch, []Tuple, error) {
	if p.obatch == nil {
		p.obatch = NewBatch(p.out)
	} else {
		p.obatch.Reset(p.out)
	}
	n := b.Len()
	var fallback []Tuple
	for i := 0; i < n; i++ {
		p.scratch = b.CopyRow(i, p.scratch[:0])
		t := Tuple{Ts: b.RowTs(i), Values: p.scratch}
		p.rowbuf = p.rowbuf[:0]
		for j, fn := range p.fns {
			v, err := fn(t)
			if err != nil {
				return nil, nil, fmt.Errorf("stream: project %q: %w", p.Exprs[j].Name, err)
			}
			p.rowbuf = append(p.rowbuf, v)
		}
		if fallback == nil {
			if p.obatch.AppendValues(t.Ts, p.rowbuf) {
				continue
			}
			fallback = p.obatch.Tuples()
		}
		fallback = append(fallback, Tuple{Ts: t.Ts, Values: append([]Value(nil), p.rowbuf...)})
	}
	if fallback != nil {
		return nil, fallback, nil
	}
	return p.obatch, nil, nil
}

// ProcessBatch implements BatchOperator for Sample, preserving the
// per-row counter/PRNG call order of the tuple path.
func (s *Sample) ProcessBatch(b *Batch) (*Batch, []Tuple, error) {
	n := b.Len()
	s.keep = append(s.keep[:0], make([]bool, n)...)
	kept := 0
	for i := 0; i < n; i++ {
		if s.EveryN > 0 {
			if s.count%int64(s.EveryN) == 0 {
				s.keep[i] = true
				kept++
			}
			s.count++
		} else if s.rng.Float64() < s.Fraction {
			s.keep[i] = true
			kept++
		}
	}
	return compactKept(b, s.keep, kept, &s.obatch, s.in)
}

// ProcessBatch implements BatchOperator for Distinct.
func (d *Distinct) ProcessBatch(b *Batch) (*Batch, []Tuple, error) {
	n := b.Len()
	d.keep = append(d.keep[:0], make([]bool, n)...)
	kept := 0
	for i := 0; i < n; i++ {
		d.scratch = b.CopyRow(i, d.scratch[:0])
		t := Tuple{Ts: b.RowTs(i), Values: d.scratch}
		d.vals = d.vals[:0]
		for j, fn := range d.fns {
			v, err := fn(t)
			if err != nil {
				return nil, nil, fmt.Errorf("stream: distinct %q: %w", d.On[j].Name, err)
			}
			d.vals = append(d.vals, v)
		}
		key := MakeGroupKey(d.vals...)
		if _, dup := d.seen[key]; dup {
			continue
		}
		d.seen[key] = struct{}{}
		d.keep[i] = true
		kept++
	}
	return compactKept(b, d.keep, kept, &d.obatch, d.in)
}

// compactKept returns b unchanged when all rows are kept, nil when none
// are, and otherwise compacts the kept rows into *obatch (allocating it
// on first use).
func compactKept(b *Batch, keep []bool, kept int, obatch **Batch, schema *Schema) (*Batch, []Tuple, error) {
	switch kept {
	case b.Len():
		return b, nil, nil
	case 0:
		return nil, nil, nil
	}
	if *obatch == nil {
		*obatch = NewBatch(schema)
	} else {
		(*obatch).Reset(schema)
	}
	for i := 0; i < b.Len(); i++ {
		if keep[i] {
			(*obatch).AppendFrom(b, i)
		}
	}
	return *obatch, nil, nil
}

// ProcessBatch implements BatchOperator for WindowAgg: rows are absorbed
// into pane accumulators straight off the columns via a reused scratch
// row. Rows that must be retained (pre-punctuation pending, Naive-mode
// buffering) get owned copies.
func (w *WindowAgg) ProcessBatch(b *Batch) (*Batch, []Tuple, error) {
	if w.colsOK && w.started && !w.Naive && w.whereFn == nil {
		return nil, nil, w.absorbBatch(b)
	}
	n := b.Len()
	for i := 0; i < n; i++ {
		w.rowScratch = b.CopyRow(i, w.rowScratch[:0])
		t := Tuple{Ts: b.RowTs(i), Values: w.rowScratch}
		if w.whereFn != nil {
			v, err := w.whereFn(t)
			if err != nil {
				return nil, nil, fmt.Errorf("stream: filter: %w", err)
			}
			if !v.Truthy() {
				continue
			}
		}
		if !w.started || w.Naive {
			t.Values = append([]Value(nil), w.rowScratch...)
			if !w.started {
				w.pending = append(w.pending, t)
				continue
			}
		}
		if err := w.absorb(t); err != nil {
			return nil, nil, err
		}
	}
	return nil, nil, nil
}

// ProcessBatch implements BatchOperator for ArgMax. Process never retains
// the tuple itself (only evaluated values, which are copied), so a reused
// scratch row is safe.
func (a *ArgMax) ProcessBatch(b *Batch) (*Batch, []Tuple, error) {
	n := b.Len()
	for i := 0; i < n; i++ {
		a.rowScratch = b.CopyRow(i, a.rowScratch[:0])
		if _, err := a.Process(Tuple{Ts: b.RowTs(i), Values: a.rowScratch}); err != nil {
			return nil, nil, err
		}
	}
	return nil, nil, nil
}

// LastBatchDegraded implements BatchDegradeReporter.
func (g *Graph) LastBatchDegraded() bool { return g.degraded }

// PushBatch feeds a batch into the named input leg, keeping it columnar
// as far as the operators allow. Output follows the BatchOperator
// contract; tuples routed into an epoch combiner are retained, so they
// are materialized as owned copies. Internal degradation — the leg chain
// or post chain leaving the columnar representation, even when the
// tuples are then absorbed — is latched for LastBatchDegraded. Pushing
// a columnar batch into a combiner leg materializes rows by design
// (combiners retain punctuation-scoped tuples) and does not count.
func (g *Graph) PushBatch(input string, b *Batch) (*Batch, []Tuple, error) {
	g.degraded = false
	leg, ok := g.legs[input]
	if !ok {
		return nil, nil, fmt.Errorf("stream: graph: unknown input %q", input)
	}
	nb, nt, err := leg.chain.ProcessBatch(b)
	if leg.chain.LastBatchDegraded() {
		g.degraded = true
	}
	if err != nil {
		return nil, nil, err
	}
	if nt != nil {
		out, err := g.route(leg, nt)
		return nil, out, err
	}
	if nb == nil || nb.Len() == 0 {
		return nil, nil, nil
	}
	if leg.combineIdx >= 0 {
		for _, t := range nb.Tuples() {
			g.combiner.push(leg.combineIdx, t)
		}
		return nil, nil, nil
	}
	if len(g.post.Ops) == 0 {
		return nb, nil, nil
	}
	ob, ot, err := g.post.ProcessBatch(nb)
	if g.post.LastBatchDegraded() {
		g.degraded = true
	}
	return ob, ot, err
}

// FusedFilterProject is the optimizer's fusion of an adjacent Filter and
// Project pair into one operator: the predicate runs first and the
// projection is only computed for surviving rows, saving an operator hop
// and the intermediate row hand-off (Semantic-Overlap catalog: selection
// and projection commute with composition).
type FusedFilterProject struct {
	Pred  Expr
	Exprs []NamedExpr

	out     *Schema
	pred    EvalFunc
	fns     []EvalFunc
	scratch []Value
	rowbuf  []Value
	obatch  *Batch
}

// Open implements Operator. Error messages match the unfused operators so
// planning diagnostics are unchanged by the rewrite.
func (fp *FusedFilterProject) Open(in *Schema) error {
	k, err := fp.Pred.Bind(in)
	if err != nil {
		return fmt.Errorf("stream: filter: %w", err)
	}
	if k != KindBool && k != KindNull {
		return fmt.Errorf("stream: filter: predicate has kind %s, want bool", k)
	}
	fp.pred = CompileExpr(fp.Pred)
	fields := make([]Field, len(fp.Exprs))
	fp.fns = make([]EvalFunc, len(fp.Exprs))
	for i, ne := range fp.Exprs {
		k, err := ne.Expr.Bind(in)
		if err != nil {
			return fmt.Errorf("stream: project %q: %w", ne.Name, err)
		}
		fields[i] = Field{Name: ne.Name, Kind: k}
		fp.fns[i] = CompileExpr(ne.Expr)
	}
	out, err := NewSchema(fields...)
	if err != nil {
		return fmt.Errorf("stream: project: %w", err)
	}
	fp.out = out
	return nil
}

// Schema implements Operator.
func (fp *FusedFilterProject) Schema() *Schema { return fp.out }

// Process implements Operator.
func (fp *FusedFilterProject) Process(t Tuple) ([]Tuple, error) {
	v, err := fp.pred(t)
	if err != nil {
		return nil, fmt.Errorf("stream: filter: %w", err)
	}
	if !v.Truthy() {
		return nil, nil
	}
	vals := make([]Value, len(fp.Exprs))
	for i, fn := range fp.fns {
		v, err := fn(t)
		if err != nil {
			return nil, fmt.Errorf("stream: project %q: %w", fp.Exprs[i].Name, err)
		}
		vals[i] = v
	}
	return []Tuple{{Ts: t.Ts, Values: vals}}, nil
}

// ProcessBatch implements BatchOperator.
func (fp *FusedFilterProject) ProcessBatch(b *Batch) (*Batch, []Tuple, error) {
	if fp.obatch == nil {
		fp.obatch = NewBatch(fp.out)
	} else {
		fp.obatch.Reset(fp.out)
	}
	n := b.Len()
	var fallback []Tuple
	for i := 0; i < n; i++ {
		fp.scratch = b.CopyRow(i, fp.scratch[:0])
		t := Tuple{Ts: b.RowTs(i), Values: fp.scratch}
		v, err := fp.pred(t)
		if err != nil {
			return nil, nil, fmt.Errorf("stream: filter: %w", err)
		}
		if !v.Truthy() {
			continue
		}
		fp.rowbuf = fp.rowbuf[:0]
		for j, fn := range fp.fns {
			v, err := fn(t)
			if err != nil {
				return nil, nil, fmt.Errorf("stream: project %q: %w", fp.Exprs[j].Name, err)
			}
			fp.rowbuf = append(fp.rowbuf, v)
		}
		if fallback == nil {
			if fp.obatch.AppendValues(t.Ts, fp.rowbuf) {
				continue
			}
			fallback = fp.obatch.Tuples()
		}
		fallback = append(fallback, Tuple{Ts: t.Ts, Values: append([]Value(nil), fp.rowbuf...)})
	}
	if fallback != nil {
		return nil, fallback, nil
	}
	if fp.obatch.Len() == 0 {
		return nil, nil, nil
	}
	return fp.obatch, nil, nil
}

// Advance implements Operator.
func (fp *FusedFilterProject) Advance(time.Time) ([]Tuple, error) { return nil, nil }

// Close implements Operator.
func (fp *FusedFilterProject) Close() ([]Tuple, error) { return nil, nil }
