package stream

// Expression-rewrite helpers used by the CQL plan optimizer. They live in
// this package because they need structural knowledge of every Expr node;
// keeping the type switches next to the node definitions means a new node
// type fails conservatively (rewrites refuse) instead of silently
// mis-rewriting.

// ColName reports the referenced column when e is a bare column
// reference.
func ColName(e Expr) (string, bool) {
	if c, ok := e.(*Col); ok {
		return c.Name, true
	}
	return "", false
}

// ExprColumns accumulates into cols every column name referenced by e.
// It returns false — and the accumulated set must be discarded — when the
// expression contains a node type it does not understand, so callers
// treat unknown expressions as referencing everything.
func ExprColumns(e Expr, cols map[string]struct{}) bool {
	switch x := e.(type) {
	case *Col:
		cols[x.Name] = struct{}{}
		return true
	case *Const:
		return true
	case *Binary:
		return ExprColumns(x.L, cols) && ExprColumns(x.R, cols)
	case *Not:
		return ExprColumns(x.X, cols)
	case *Neg:
		return ExprColumns(x.X, cols)
	case *IsNullExpr:
		return ExprColumns(x.X, cols)
	case *InList:
		if !ExprColumns(x.X, cols) {
			return false
		}
		for _, el := range x.List {
			if !ExprColumns(el, cols) {
				return false
			}
		}
		return true
	case *Call:
		for _, a := range x.Args {
			if !ExprColumns(a, cols) {
				return false
			}
		}
		return true
	case *CaseExpr:
		if x.Operand != nil && !ExprColumns(x.Operand, cols) {
			return false
		}
		for _, w := range x.Whens {
			if !ExprColumns(w.Cond, cols) || !ExprColumns(w.Then, cols) {
				return false
			}
		}
		if x.Else != nil && !ExprColumns(x.Else, cols) {
			return false
		}
		return true
	}
	return false
}

// ExprPure reports whether evaluating e can be reordered freely: no node
// that can fail at runtime for data-dependent reasons (division, function
// calls, CASE lowering) and no node type unknown to this package.
// Rewrites that change how often or on which rows an expression runs
// (pushdown, swap, collapse) must only fire on pure expressions, so an
// optimized plan can never surface an evaluation error the unoptimized
// plan would not have hit.
func ExprPure(e Expr) bool {
	switch x := e.(type) {
	case *Col, *Const:
		return true
	case *Binary:
		if x.Op == OpDiv {
			return false
		}
		return ExprPure(x.L) && ExprPure(x.R)
	case *Not:
		return ExprPure(x.X)
	case *Neg:
		return ExprPure(x.X)
	case *IsNullExpr:
		return ExprPure(x.X)
	case *InList:
		if !ExprPure(x.X) {
			return false
		}
		for _, el := range x.List {
			if !ExprPure(el) {
				return false
			}
		}
		return true
	}
	return false
}

// ExprTotal reports whether evaluating e can never return an error at
// all, under any input. It is far stricter than ExprPure (comparisons and
// arithmetic are excluded because Value.Compare/Add can reject operand
// kinds) and guards rewrites that merge two predicates into one, where
// even an error the original plan would also hit could surface in a
// different order.
func ExprTotal(e Expr) bool {
	switch x := e.(type) {
	case *Col, *Const:
		return true
	case *Not:
		return ExprTotal(x.X)
	case *IsNullExpr:
		return ExprTotal(x.X)
	case *Binary:
		if x.Op != OpAnd && x.Op != OpOr {
			return false
		}
		return ExprTotal(x.L) && ExprTotal(x.R)
	}
	return false
}

// SubstituteCols returns a copy of e in which every column reference
// named n with repl(n) = (r, true) is replaced by r. Replacement
// subexpressions are shared, not cloned — callers must ensure they are
// (re)bound against the same schema everywhere they appear. Nodes along
// rewritten paths are freshly allocated, so the input expression is never
// mutated. The second result is false when e contains a node type this
// package cannot walk; the caller must then abandon the rewrite.
func SubstituteCols(e Expr, repl func(name string) (Expr, bool)) (Expr, bool) {
	switch x := e.(type) {
	case *Col:
		if r, ok := repl(x.Name); ok {
			return r, true
		}
		return NewCol(x.Name), true
	case *Const:
		return NewConst(x.Val), true
	case *Binary:
		l, ok := SubstituteCols(x.L, repl)
		if !ok {
			return nil, false
		}
		r, ok := SubstituteCols(x.R, repl)
		if !ok {
			return nil, false
		}
		return NewBinary(x.Op, l, r), true
	case *Not:
		in, ok := SubstituteCols(x.X, repl)
		if !ok {
			return nil, false
		}
		return NewNot(in), true
	case *Neg:
		in, ok := SubstituteCols(x.X, repl)
		if !ok {
			return nil, false
		}
		return NewNeg(in), true
	case *IsNullExpr:
		in, ok := SubstituteCols(x.X, repl)
		if !ok {
			return nil, false
		}
		return &IsNullExpr{X: in, Negate: x.Negate}, true
	case *InList:
		in, ok := SubstituteCols(x.X, repl)
		if !ok {
			return nil, false
		}
		list := make([]Expr, len(x.List))
		for i, el := range x.List {
			el2, ok := SubstituteCols(el, repl)
			if !ok {
				return nil, false
			}
			list[i] = el2
		}
		return &InList{X: in, List: list, Negate: x.Negate}, true
	case *Call:
		args := make([]Expr, len(x.Args))
		for i, a := range x.Args {
			a2, ok := SubstituteCols(a, repl)
			if !ok {
				return nil, false
			}
			args[i] = a2
		}
		return NewCall(x.Func, args...), true
	case *CaseExpr:
		out := &CaseExpr{Whens: make([]When, len(x.Whens))}
		if x.Operand != nil {
			op, ok := SubstituteCols(x.Operand, repl)
			if !ok {
				return nil, false
			}
			out.Operand = op
		}
		for i, w := range x.Whens {
			cond, ok := SubstituteCols(w.Cond, repl)
			if !ok {
				return nil, false
			}
			then, ok := SubstituteCols(w.Then, repl)
			if !ok {
				return nil, false
			}
			out.Whens[i] = When{Cond: cond, Then: then}
		}
		if x.Else != nil {
			el, ok := SubstituteCols(x.Else, repl)
			if !ok {
				return nil, false
			}
			out.Else = el
		}
		return out, true
	}
	return nil, false
}
