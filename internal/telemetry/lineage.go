package telemetry

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Lineage is the sampled tuple-lineage recorder: a seeded, deterministic
// sampler tags roughly 1/N input readings, and the runtime records an
// epoch-stamped span per pipeline stage (Point → Smooth → Merge →
// Arbitrate → Virtualize) for each tagged reading, showing what every
// stage did to the reading's epoch cohort — the debugging view "what
// happened to this reading on its way through the pipeline".
//
// Sampling is a pure function of (seed, receptor ID, timestamp,
// batch position), so two runs over the same trace tag the same
// readings — lineage dumps are reproducible and diffable.
//
// Completed traces live in a bounded ring (newest win); Traces and
// DumpJSON snapshot it safely while a run is recording.
type Lineage struct {
	sampleN uint64
	seed    uint64

	mu     sync.Mutex
	cap    int
	nextID int64
	ring   []Trace
	start  int // index of the oldest trace in ring when full
}

// DefaultLineageCap bounds the completed-trace ring.
const DefaultLineageCap = 256

// NewLineage returns a recorder sampling ~1/sampleN readings
// (sampleN <= 1 samples everything) with the given seed.
func NewLineage(sampleN int, seed int64) *Lineage {
	if sampleN < 1 {
		sampleN = 1
	}
	return &Lineage{
		sampleN: uint64(sampleN),
		seed:    uint64(seed),
		cap:     DefaultLineageCap,
	}
}

// SetCap bounds the completed-trace ring (minimum 1).
func (l *Lineage) SetCap(n int) {
	if n < 1 {
		n = 1
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.cap = n
	if len(l.ring) > n {
		// Keep the newest n traces.
		trimmed := make([]Trace, 0, n)
		for i := 0; i < n; i++ {
			trimmed = append(trimmed, l.at(len(l.ring)-n+i))
		}
		l.ring, l.start = trimmed, 0
	}
}

// at reads the i-th oldest trace. Caller holds l.mu.
func (l *Lineage) at(i int) Trace {
	return l.ring[(l.start+i)%len(l.ring)]
}

// SampleN reports the sampling divisor.
func (l *Lineage) SampleN() int {
	if l == nil {
		return 0
	}
	return int(l.sampleN)
}

// Sample reports whether the reading identified by (receptor, ts, seq)
// is tagged for lineage. Deterministic per seed; allocation-free.
func (l *Lineage) Sample(receptorID string, ts time.Time, seq int) bool {
	if l == nil {
		return false
	}
	if l.sampleN <= 1 {
		return true
	}
	// FNV-1a over the seed, receptor ID, timestamp, and batch position.
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= (v >> (8 * i)) & 0xff
			h *= prime64
		}
	}
	mix(l.seed)
	for i := 0; i < len(receptorID); i++ {
		h ^= uint64(receptorID[i])
		h *= prime64
	}
	mix(uint64(ts.UnixNano()))
	mix(uint64(seq))
	return h%l.sampleN == 0
}

// Span is one pipeline stage's epoch-stamped record within a trace:
// how many tuples the stage saw and released for the tagged reading's
// epoch cohort, and the decision that implies.
type Span struct {
	// Stage is "Point", "Smooth", "Merge", "Arbitrate", or "Virtualize".
	Stage string `json:"stage"`
	// Epoch is the punctuation time of the epoch the span covers.
	Epoch time.Time `json:"epoch"`
	// In and Out count the stage's input and released tuples over the
	// epoch, for the tagged reading's receptor type.
	In  int64 `json:"tuples_in"`
	Out int64 `json:"tuples_out"`
	// Decision classifies the stage's effect: "pass" (all through),
	// "transform" (released a different number than it saw, windowed
	// aggregation or expansion), "merge" (many in, fewer out), "drop"
	// (saw input, released nothing), "idle" (no input this epoch), or
	// "pass-through" (stage not configured for this type).
	Decision string `json:"decision"`
	// Note carries stage-specific detail (operator description etc.).
	Note string `json:"note,omitempty"`
}

// Trace is one sampled reading's journey: identity, the epoch it was
// injected in, and one span per pipeline stage in execution order.
type Trace struct {
	ID       int64     `json:"id"`
	Receptor string    `json:"receptor"`
	Type     string    `json:"type"`
	Ts       time.Time `json:"ts"`
	Epoch    time.Time `json:"epoch"`
	Value    string    `json:"value"`
	Spans    []Span    `json:"spans"`
}

// Record stores a completed trace in the ring, assigning and returning
// its ID.
func (l *Lineage) Record(t Trace) int64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.nextID++
	t.ID = l.nextID
	if len(l.ring) < l.cap {
		l.ring = append(l.ring, t)
	} else {
		l.ring[l.start] = t
		l.start = (l.start + 1) % len(l.ring)
	}
	return t.ID
}

// Traces snapshots the completed traces, oldest first.
func (l *Lineage) Traces() []Trace {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Trace, len(l.ring))
	for i := range l.ring {
		out[i] = l.at(i)
	}
	return out
}

// Len reports the number of completed traces currently held.
func (l *Lineage) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.ring)
}

// DumpJSON writes the completed traces as an indented JSON array —
// the lineage dump format served at /lineage and emitted by
// `espclean -lineage`.
func (l *Lineage) DumpJSON(w io.Writer) error {
	traces := l.Traces()
	if traces == nil {
		traces = []Trace{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(traces)
}

// Decide classifies a stage's epoch effect for a lineage span. The
// configured flag reports whether the deployment actually installs the
// stage for the reading's type.
func Decide(configured bool, in, out int64) string {
	switch {
	case !configured:
		return "pass-through"
	case in == 0 && out == 0:
		return "idle"
	case out == 0:
		return "drop"
	case out == in:
		return "pass"
	case out < in:
		return "merge"
	default:
		return "transform"
	}
}
