package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Tracer is the cross-process request tracer: a deterministic sampler
// mints trace IDs on the client, the wire protocol carries them as
// optional trailing frame fields, and every process along the path
// (client publish → server apply → WAL fsync → pipeline step →
// subscriber delivery) records SpanRecords into a bounded ring under
// the same ID — the serving-layer extension of the in-process lineage
// recorder (DESIGN.md §12).
//
// The disabled path is free: Sample on a nil or disabled tracer is one
// nil/atomic check with no allocations (asserted by
// TestTracerDisabledZeroAlloc), and Record drops zero-ID spans before
// taking any lock.
type Tracer struct {
	enabled atomic.Bool
	sampleN uint64
	seed    uint64
	ctr     atomic.Uint64

	mu    sync.Mutex
	cap   int
	ring  []SpanRecord
	start int // index of the oldest span when the ring is full
}

// DefaultTraceCap bounds the span ring.
const DefaultTraceCap = 4096

// NewTracer returns an enabled tracer minting one trace per ~sampleN
// Sample calls (sampleN <= 1 traces every call). The seed perturbs the
// minted IDs so concurrent tracers (e.g. client and server side of a
// bench leg) never collide.
func NewTracer(sampleN int, seed int64) *Tracer {
	if sampleN < 1 {
		sampleN = 1
	}
	t := &Tracer{sampleN: uint64(sampleN), seed: uint64(seed), cap: DefaultTraceCap}
	t.enabled.Store(true)
	return t
}

// SetEnabled flips the tracer gate. Disabled tracers never sample and
// never record.
func (t *Tracer) SetEnabled(on bool) {
	if t == nil {
		return
	}
	t.enabled.Store(on)
}

// Enabled reports the gate. Nil tracers are disabled.
func (t *Tracer) Enabled() bool { return t != nil && t.enabled.Load() }

// SampleN reports the sampling divisor (0 for a nil tracer).
func (t *Tracer) SampleN() int {
	if t == nil {
		return 0
	}
	return int(t.sampleN)
}

// SetCap bounds the span ring (minimum 1).
func (t *Tracer) SetCap(n int) {
	if t == nil {
		return
	}
	if n < 1 {
		n = 1
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.cap = n
	if len(t.ring) > n {
		trimmed := make([]SpanRecord, 0, n)
		for i := len(t.ring) - n; i < len(t.ring); i++ {
			trimmed = append(trimmed, t.ring[(t.start+i)%len(t.ring)])
		}
		t.ring, t.start = trimmed, 0
	}
}

// Sample decides whether the next request is traced, minting its trace
// ID when it is. The decision is a counter modulus (every sampleN'th
// call traces) and the ID is a seeded mix of the counter — nonzero by
// construction, so a zero TraceID on the wire always means "untraced".
// Allocation-free on every path; nil-safe.
func (t *Tracer) Sample() (TraceID, bool) {
	if t == nil || !t.enabled.Load() {
		return 0, false
	}
	n := t.ctr.Add(1)
	if n%t.sampleN != 0 {
		return 0, false
	}
	id := mix64(n ^ t.seed ^ 0x9e3779b97f4a7c15)
	if id == 0 {
		id = 1
	}
	return TraceID(id), true
}

// mix64 is SplitMix64's finalizer: a cheap, well-distributed 64-bit
// permutation (no allocation, no global state).
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// TraceID is a 64-bit trace identity, rendered as fixed-width hex in
// JSON (the form logs and the /traces surface show).
type TraceID uint64

// String formats the ID the way ops surfaces and slow-epoch log events
// show it.
func (id TraceID) String() string { return fmt.Sprintf("%016x", uint64(id)) }

// MarshalJSON renders the ID as a hex string.
func (id TraceID) MarshalJSON() ([]byte, error) {
	return json.Marshal(id.String())
}

// UnmarshalJSON accepts the hex-string form (and a bare number, for
// hand-written fixtures).
func (id *TraceID) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		_, serr := fmt.Sscanf(s, "%x", (*uint64)(id))
		return serr
	}
	return json.Unmarshal(b, (*uint64)(id))
}

// SpanRecord is one process-local segment of a traced request's path.
// Spans sharing a TraceID across the client's and the server's rings
// are one end-to-end trace.
type SpanRecord struct {
	TraceID TraceID   `json:"trace_id"`
	Name    string    `json:"name"`             // "client.publish", "server.apply", "wal.fsync", ...
	Tenant  string    `json:"tenant,omitempty"` // tenant the span ran under
	Detail  string    `json:"detail,omitempty"` // receptor ID, stream name, stage note
	Epoch   int64     `json:"epoch,omitempty"`  // punctuation boundary (UnixNano) the span belongs to
	Start   time.Time `json:"start"`
	DurNs   int64     `json:"dur_ns"`
	In      int64     `json:"in,omitempty"`  // tuples entering the span
	Out     int64     `json:"out,omitempty"` // tuples leaving the span
}

// Record stores one span. Zero-ID spans (untraced requests) are
// dropped before any locking; nil-safe.
func (t *Tracer) Record(s SpanRecord) {
	if t == nil || s.TraceID == 0 || !t.enabled.Load() {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.ring) < t.cap {
		t.ring = append(t.ring, s)
	} else {
		t.ring[t.start] = s
		t.start = (t.start + 1) % len(t.ring)
	}
}

// Len reports how many spans the ring holds.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.ring)
}

// Spans snapshots the ring, oldest first.
func (t *Tracer) Spans() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanRecord, len(t.ring))
	for i := range t.ring {
		out[i] = t.ring[(t.start+i)%len(t.ring)]
	}
	return out
}

// ByTrace groups the ring's spans by trace ID, preserving record order
// within each trace — the /traces surface's shape.
func (t *Tracer) ByTrace() map[TraceID][]SpanRecord {
	spans := t.Spans()
	out := make(map[TraceID][]SpanRecord)
	for _, s := range spans {
		out[s.TraceID] = append(out[s.TraceID], s)
	}
	return out
}

// DumpJSON writes the recorded spans as an indented JSON array (oldest
// first) — the /traces response body.
func (t *Tracer) DumpJSON(w io.Writer) error {
	spans := t.Spans()
	if spans == nil {
		spans = []SpanRecord{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(spans)
}
