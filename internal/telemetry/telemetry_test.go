package telemetry

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a.b")
	c.Add(3)
	c.Add(4)
	if got := c.Load(); got != 7 {
		t.Fatalf("counter = %d, want 7", got)
	}
	if r.Counter("a.b") != c {
		t.Fatal("Counter not idempotent per name")
	}
	g := r.Gauge("g")
	g.Set(9)
	g.Add(-2)
	if got := g.Load(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
	r.GaugeFunc("fn", func() int64 { return 42 })

	s := r.Snapshot()
	if s.Counters["a.b"] != 7 || s.Gauges["g"] != 7 || s.Gauges["fn"] != 42 {
		t.Fatalf("snapshot = %+v", s)
	}
	if s.Enabled {
		t.Fatal("new registry should be disabled")
	}
	r.SetEnabled(true)
	if !r.Enabled() || !r.Snapshot().Enabled {
		t.Fatal("SetEnabled(true) not reflected")
	}
}

func TestNilHandlesAreSafe(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var r *Registry
	var l *Lineage
	c.Add(1)
	g.Set(1)
	h.Observe(time.Second)
	if c.Load() != 0 || g.Load() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil handles must read as zero")
	}
	if r.Enabled() {
		t.Fatal("nil registry must be disabled")
	}
	if l.Sample("x", time.Time{}, 0) || l.SampleN() != 0 || l.Len() != 0 {
		t.Fatal("nil lineage must never sample")
	}
	if hs := h.Snapshot(); hs.Count != 0 {
		t.Fatal("nil histogram snapshot must be zero")
	}
}

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat")
	// 90 fast observations (~1µs), 9 medium (~1ms), 1 slow (~100ms).
	for i := 0; i < 90; i++ {
		h.Observe(time.Microsecond)
	}
	for i := 0; i < 9; i++ {
		h.Observe(time.Millisecond)
	}
	h.Observe(100 * time.Millisecond)

	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d, want 100", s.Count)
	}
	if s.Max != int64(100*time.Millisecond) {
		t.Fatalf("max = %d", s.Max)
	}
	// Log buckets bound quantiles within a factor of two.
	if s.P50 < int64(time.Microsecond) || s.P50 > int64(2*time.Microsecond) {
		t.Errorf("p50 = %v", time.Duration(s.P50))
	}
	if s.P90 < int64(time.Microsecond) || s.P90 > int64(2*time.Microsecond) {
		t.Errorf("p90 = %v (90th of 100 is still the fast bucket)", time.Duration(s.P90))
	}
	if s.P99 < int64(time.Millisecond) || s.P99 > int64(2*time.Millisecond) {
		t.Errorf("p99 = %v", time.Duration(s.P99))
	}
	if got := s.Mean(); got <= 0 {
		t.Errorf("mean = %v", got)
	}
	// Negative observations clamp instead of corrupting buckets.
	h.Observe(-time.Second)
	if h.Snapshot().Count != 101 {
		t.Error("negative observation not recorded")
	}
}

func TestSnapshotConcurrentWithRecording(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hot")
	h := r.Histogram("lat")
	done := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
					c.Add(1)
					h.Observe(time.Microsecond)
				}
			}
		}()
	}
	for i := 0; i < 200; i++ {
		s := r.Snapshot()
		if s.Counters["hot"] < 0 || s.Histograms["lat"].Count < 0 {
			t.Error("negative value in concurrent snapshot")
		}
		// Metric registration concurrent with snapshots must be safe too.
		r.Counter("late").Add(1)
	}
	close(done)
	wg.Wait()
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("node.leg rfid r0@shelf0.tuples_in").Add(5)
	r.Gauge("receptor.r0.channel_occupancy").Set(3)
	r.Histogram("poll.r0.latency").Observe(time.Millisecond)

	var b strings.Builder
	if err := r.WritePrometheus(&b, "esp_"); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE esp_node_leg_rfid_r0_shelf0_tuples_in_total counter",
		"esp_node_leg_rfid_r0_shelf0_tuples_in_total 5",
		"esp_receptor_r0_channel_occupancy 3",
		"esp_poll_r0_latency{quantile=\"0.5\"}",
		"esp_poll_r0_latency_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestExpvarString(t *testing.T) {
	r := NewRegistry()
	r.Counter("x").Add(1)
	if s := r.String(); !strings.Contains(s, "\"x\":1") {
		t.Fatalf("expvar String = %s", s)
	}
	// Re-publishing under the same name must not panic and must rebind.
	PublishExpvar("esp-test", r)
	r2 := NewRegistry()
	r2.Counter("y").Add(2)
	PublishExpvar("esp-test", r2)
}

func TestAllocFreeRecording(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hot")
	h := r.Histogram("lat")
	var nilC *Counter
	var nilH *Histogram
	allocs := testing.AllocsPerRun(1000, func() {
		c.Add(1)
		h.Observe(time.Microsecond)
		nilC.Add(1)
		nilH.Observe(time.Microsecond)
	})
	if allocs != 0 {
		t.Fatalf("recording allocates %v times per op, want 0", allocs)
	}
}
