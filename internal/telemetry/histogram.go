package telemetry

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// histBuckets is the number of power-of-two latency buckets. Bucket i
// (i ≥ 1) covers [2^(i-1), 2^i) nanoseconds; bucket 0 holds zero (and
// negative, which are clamped) observations. 2^39 ns ≈ 9 minutes, far
// beyond any stage or poll latency worth bucketing precisely — larger
// observations land in the last bucket and are still exact in Sum/Max.
const histBuckets = 40

// Histogram is a log-bucketed latency histogram: fixed memory, atomic
// recording, and p50/p90/p99/max estimation from the bucket counts.
// Observe costs four uncontended atomic operations and never allocates.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// Observe records one latency sample. Nil-safe no-op.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	h.count.Add(1)
	h.sum.Add(ns)
	h.buckets[bucketOf(ns)].Add(1)
	for {
		cur := h.max.Load()
		if ns <= cur || h.max.CompareAndSwap(cur, ns) {
			return
		}
	}
}

// bucketOf maps a non-negative nanosecond latency to its bucket index.
func bucketOf(ns int64) int {
	b := bits.Len64(uint64(ns)) // 0 for 0, k for [2^(k-1), 2^k)
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// bucketUpper is the exclusive upper bound of bucket i in nanoseconds.
func bucketUpper(i int) int64 {
	if i <= 0 {
		return 0
	}
	return int64(1) << uint(i)
}

// Count reports the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum reports the summed latency in nanoseconds.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// HistogramSnapshot is a point-in-time digest of a histogram. Latency
// fields are nanoseconds; quantiles are upper-bound estimates from the
// log buckets (within a factor of two of the true value, clamped to the
// observed maximum).
type HistogramSnapshot struct {
	Count int64 `json:"count"`
	Sum   int64 `json:"sum_ns"`
	Max   int64 `json:"max_ns"`
	P50   int64 `json:"p50_ns"`
	P90   int64 `json:"p90_ns"`
	P99   int64 `json:"p99_ns"`
}

// Mean reports the average observation as a duration (0 when empty).
func (s HistogramSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return time.Duration(s.Sum / s.Count)
}

// Snapshot digests the histogram atomically. Counts recorded while the
// snapshot runs may or may not be included (same point-in-time contract
// as the rest of the registry).
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	var counts [histBuckets]int64
	var total int64
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	s := HistogramSnapshot{
		Count: total,
		Sum:   h.sum.Load(),
		Max:   h.max.Load(),
	}
	s.P50 = quantile(counts[:], total, 0.50, s.Max)
	s.P90 = quantile(counts[:], total, 0.90, s.Max)
	s.P99 = quantile(counts[:], total, 0.99, s.Max)
	return s
}

// quantile estimates the q-quantile as the upper bound of the bucket
// holding the target rank, clamped to the observed max.
func quantile(counts []int64, total int64, q float64, max int64) int64 {
	if total == 0 {
		return 0
	}
	rank := int64(q * float64(total))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, c := range counts {
		cum += c
		if cum >= rank {
			ub := bucketUpper(i)
			if ub > max && max > 0 {
				return max
			}
			return ub
		}
	}
	return max
}
