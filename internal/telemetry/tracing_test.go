package telemetry

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestTracerSampleDeterministic(t *testing.T) {
	a := NewTracer(4, 7)
	b := NewTracer(4, 7)
	var idsA, idsB []TraceID
	for i := 0; i < 64; i++ {
		if id, ok := a.Sample(); ok {
			idsA = append(idsA, id)
		}
		if id, ok := b.Sample(); ok {
			idsB = append(idsB, id)
		}
	}
	if len(idsA) != 16 {
		t.Fatalf("sampleN=4 over 64 calls minted %d traces, want 16", len(idsA))
	}
	for i := range idsA {
		if idsA[i] != idsB[i] {
			t.Fatalf("same (sampleN, seed) minted different IDs: %v vs %v", idsA[i], idsB[i])
		}
		if idsA[i] == 0 {
			t.Fatal("minted trace ID must be nonzero")
		}
	}
	// A different seed mints different IDs for the same positions.
	c := NewTracer(4, 8)
	for i := 0; i < 4; i++ {
		c.Sample()
	}
	if id, ok := c.Sample(); ok && len(idsA) > 0 && id == idsA[0] {
		t.Fatal("different seeds minted the same trace ID")
	}
}

func TestTracerRingAndGrouping(t *testing.T) {
	tr := NewTracer(1, 1)
	tr.SetCap(4)
	for i := 0; i < 6; i++ {
		id, ok := tr.Sample()
		if !ok {
			t.Fatal("sampleN=1 must sample every call")
		}
		tr.Record(SpanRecord{TraceID: id, Name: "client.publish", Start: time.Unix(0, int64(i))})
	}
	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("ring holds %d spans, want cap 4", len(spans))
	}
	// Oldest first: the two earliest records were evicted.
	if spans[0].Start.UnixNano() != 2 || spans[3].Start.UnixNano() != 5 {
		t.Fatalf("ring order wrong: %+v", spans)
	}
	by := tr.ByTrace()
	if len(by) != 4 {
		t.Fatalf("ByTrace groups = %d, want 4 distinct traces", len(by))
	}

	// Zero-ID spans (untraced requests) must be dropped.
	tr.Record(SpanRecord{TraceID: 0, Name: "noise"})
	if tr.Len() != 4 {
		t.Fatal("zero-ID span was recorded")
	}
}

func TestTracerDisabledZeroAlloc(t *testing.T) {
	var nilT *Tracer
	off := NewTracer(1, 1)
	off.SetEnabled(false)
	allocs := testing.AllocsPerRun(1000, func() {
		if _, ok := nilT.Sample(); ok {
			t.Error("nil tracer sampled")
		}
		if _, ok := off.Sample(); ok {
			t.Error("disabled tracer sampled")
		}
		nilT.Record(SpanRecord{TraceID: 1})
		off.Record(SpanRecord{TraceID: 1})
	})
	if allocs != 0 {
		t.Fatalf("disabled tracing path allocates %v times per op, want 0", allocs)
	}
	if off.Len() != 0 {
		t.Fatal("disabled tracer recorded a span")
	}
}

func TestTraceIDJSON(t *testing.T) {
	s := SpanRecord{TraceID: 0xdeadbeef, Name: "wal.fsync", DurNs: 5}
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"trace_id":"00000000deadbeef"`) {
		t.Fatalf("trace ID not hex in JSON: %s", b)
	}
	var back SpanRecord
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.TraceID != s.TraceID {
		t.Fatalf("trace ID round trip: %v vs %v", back.TraceID, s.TraceID)
	}
}

func TestTracerDumpJSON(t *testing.T) {
	tr := NewTracer(1, 3)
	id, _ := tr.Sample()
	tr.Record(SpanRecord{TraceID: id, Name: "server.apply", Tenant: "lab", In: 3})
	var b strings.Builder
	if err := tr.DumpJSON(&b); err != nil {
		t.Fatal(err)
	}
	var spans []SpanRecord
	if err := json.Unmarshal([]byte(b.String()), &spans); err != nil {
		t.Fatalf("dump not valid JSON: %v\n%s", err, b.String())
	}
	if len(spans) != 1 || spans[0].Name != "server.apply" || spans[0].TraceID != id {
		t.Fatalf("dump = %+v", spans)
	}
}
