package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestServeEndpoints(t *testing.T) {
	r := NewRegistry()
	r.SetEnabled(true)
	r.Counter("node.output rfid.tuples_in").Add(11)
	r.Histogram("node.output rfid.advance").Observe(time.Millisecond)
	l := NewLineage(1, 0)
	l.Record(Trace{Receptor: "r0", Type: "rfid", Spans: []Span{
		{Stage: "Point", Decision: "pass"},
		{Stage: "Smooth", Decision: "merge"},
		{Stage: "Merge", Decision: "pass-through"},
		{Stage: "Arbitrate", Decision: "pass"},
		{Stage: "Virtualize", Decision: "pass-through"},
	}})

	srv, err := Serve(":0", ServerConfig{Registry: r, Lineage: l, ExpvarName: "esp-http-test"})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get(srv.URL() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	if out := get("/metrics"); !strings.Contains(out, "esp_node_output_rfid_tuples_in 11") {
		t.Errorf("/metrics missing counter:\n%s", out)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(get("/metrics.json")), &snap); err != nil {
		t.Fatalf("/metrics.json not valid JSON: %v", err)
	}
	if snap.Counters["node.output rfid.tuples_in"] != 11 || !snap.Enabled {
		t.Errorf("/metrics.json snapshot = %+v", snap)
	}
	if out := get("/debug/vars"); !strings.Contains(out, "esp-http-test") {
		t.Errorf("/debug/vars missing published registry:\n%.300s", out)
	}
	var traces []Trace
	if err := json.Unmarshal([]byte(get("/lineage")), &traces); err != nil {
		t.Fatalf("/lineage not valid JSON: %v", err)
	}
	if len(traces) != 1 || len(traces[0].Spans) != 5 {
		t.Errorf("/lineage = %+v", traces)
	}
	if out := get("/debug/pprof/cmdline"); len(out) == 0 {
		t.Error("/debug/pprof/cmdline empty")
	}
	if out := get("/"); !strings.Contains(out, "/metrics") {
		t.Errorf("index = %q", out)
	}
}
