package telemetry

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestServeEndpoints(t *testing.T) {
	r := NewRegistry()
	r.SetEnabled(true)
	r.Counter("node.output rfid.tuples_in").Add(11)
	r.Histogram("node.output rfid.advance").Observe(time.Millisecond)
	l := NewLineage(1, 0)
	l.Record(Trace{Receptor: "r0", Type: "rfid", Spans: []Span{
		{Stage: "Point", Decision: "pass"},
		{Stage: "Smooth", Decision: "merge"},
		{Stage: "Merge", Decision: "pass-through"},
		{Stage: "Arbitrate", Decision: "pass"},
		{Stage: "Virtualize", Decision: "pass-through"},
	}})

	srv, err := Serve(":0", ServerConfig{Registry: r, Lineage: l, ExpvarName: "esp-http-test"})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get(srv.URL() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	if out := get("/metrics"); !strings.Contains(out, "esp_node_output_rfid_tuples_in_total 11") {
		t.Errorf("/metrics missing counter:\n%s", out)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(get("/metrics.json")), &snap); err != nil {
		t.Fatalf("/metrics.json not valid JSON: %v", err)
	}
	if snap.Counters["node.output rfid.tuples_in"] != 11 || !snap.Enabled {
		t.Errorf("/metrics.json snapshot = %+v", snap)
	}
	if out := get("/debug/vars"); !strings.Contains(out, "esp-http-test") {
		t.Errorf("/debug/vars missing published registry:\n%.300s", out)
	}
	var traces []Trace
	if err := json.Unmarshal([]byte(get("/lineage")), &traces); err != nil {
		t.Fatalf("/lineage not valid JSON: %v", err)
	}
	if len(traces) != 1 || len(traces[0].Spans) != 5 {
		t.Errorf("/lineage = %+v", traces)
	}
	if out := get("/debug/pprof/cmdline"); len(out) == 0 {
		t.Error("/debug/pprof/cmdline empty")
	}
	if out := get("/"); !strings.Contains(out, "/metrics") {
		t.Errorf("index = %q", out)
	}
}

// TestShutdownCompletesInflightScrape pins the graceful-stop contract a
// draining daemon relies on: a scrape already being served when Shutdown
// is called runs to completion with a full body, and Shutdown does not
// return until it has.
func TestShutdownCompletesInflightScrape(t *testing.T) {
	r := NewRegistry()
	r.SetEnabled(true)
	r.Counter("drain.test").Add(7)
	// A GaugeFunc that blocks mid-scrape: the /metrics handler calls it
	// while rendering, so parking inside it holds a request in flight at
	// a deterministic point.
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	r.GaugeFunc("drain.block", func() int64 {
		once.Do(func() {
			close(entered)
			<-release
		})
		return 1
	})

	srv, err := Serve(":0", ServerConfig{Registry: r, ExpvarName: "esp-shutdown-test"})
	if err != nil {
		t.Fatal(err)
	}

	body := make(chan string, 1)
	scrapeErr := make(chan error, 1)
	go func() {
		resp, err := http.Get(srv.URL() + "/metrics")
		if err != nil {
			scrapeErr <- err
			return
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			scrapeErr <- err
			return
		}
		body <- string(b)
	}()

	<-entered // the scrape is now mid-handler
	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		done <- srv.Shutdown(ctx)
	}()

	// Shutdown must wait for the in-flight request, not race past it.
	select {
	case err := <-done:
		t.Fatalf("Shutdown returned (%v) while a scrape was in flight", err)
	case <-time.After(50 * time.Millisecond):
	}
	close(release)

	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Shutdown: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Shutdown did not return after the scrape completed")
	}
	select {
	case got := <-body:
		if !strings.Contains(got, "esp_drain_test_total 7") {
			t.Errorf("in-flight scrape body truncated:\n%s", got)
		}
	case err := <-scrapeErr:
		t.Fatalf("in-flight scrape failed: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("in-flight scrape never completed")
	}

	// The listener is closed: new scrapes must be refused.
	if _, err := http.Get(srv.URL() + "/metrics"); err == nil {
		t.Error("scrape accepted after Shutdown")
	}
}

// TestMetricsMultiRegistry covers the per-tenant exposition path: extra
// registries render into the same /metrics page under their own prefix
// and into /metrics.json keyed by name.
func TestMetricsMultiRegistry(t *testing.T) {
	base := NewRegistry()
	base.SetEnabled(true)
	base.Counter("server.conns").Add(3)
	t0 := NewRegistry()
	t0.SetEnabled(true)
	t0.Counter("poll.tuples").Add(42)

	srv, err := Serve(":0", ServerConfig{
		Registry:   base,
		ExpvarName: "esp-multi-test",
		More: func() []NamedRegistry {
			return []NamedRegistry{{Name: "tenant-0", Registry: t0}}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get(srv.URL() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}

	out := get("/metrics")
	if !strings.Contains(out, "esp_server_conns_total 3") {
		t.Errorf("/metrics missing base counter:\n%s", out)
	}
	if !strings.Contains(out, "esp_tenant_0_poll_tuples_total 42") {
		t.Errorf("/metrics missing tenant counter:\n%s", out)
	}
	var multi map[string]Snapshot
	if err := json.Unmarshal([]byte(get("/metrics.json")), &multi); err != nil {
		t.Fatalf("/metrics.json not valid JSON: %v", err)
	}
	if multi[""].Counters["server.conns"] != 3 || multi["tenant-0"].Counters["poll.tuples"] != 42 {
		t.Errorf("/metrics.json = %+v", multi)
	}
}
