package telemetry

import (
	"context"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestRegistrationConformance is the table test behind the exposition
// contract: invalid names and cross-kind duplicates are wiring bugs and
// panic at registration time; same-kind re-registration stays legal
// (handles are idempotent per name, GaugeFunc replaces).
func TestRegistrationConformance(t *testing.T) {
	cases := []struct {
		name      string
		setup     func(r *Registry)
		register  func(r *Registry)
		wantPanic string // substring of the panic message, "" = no panic
	}{
		{
			name:     "empty name",
			register: func(r *Registry) { r.Counter("") },

			wantPanic: "empty metric name",
		},
		{
			name:      "control character",
			register:  func(r *Registry) { r.Gauge("bad\nname") },
			wantPanic: "control characters",
		},
		{
			name:      "DEL character",
			register:  func(r *Registry) { r.Histogram("bad\x7fname") },
			wantPanic: "control characters",
		},
		{
			name:      "counter redeclared as gauge",
			setup:     func(r *Registry) { r.Counter("x") },
			register:  func(r *Registry) { r.Gauge("x") },
			wantPanic: `metric "x" already registered as a counter, re-registered as a gauge`,
		},
		{
			name:      "gauge redeclared as histogram",
			setup:     func(r *Registry) { r.Gauge("x") },
			register:  func(r *Registry) { r.Histogram("x") },
			wantPanic: `already registered as a gauge, re-registered as a histogram`,
		},
		{
			name:      "histogram redeclared as gauge-func",
			setup:     func(r *Registry) { r.Histogram("x") },
			register:  func(r *Registry) { r.GaugeFunc("x", func() int64 { return 0 }) },
			wantPanic: `already registered as a histogram, re-registered as a gauge-func`,
		},
		{
			name:      "gauge-func redeclared as counter",
			setup:     func(r *Registry) { r.GaugeFunc("x", func() int64 { return 0 }) },
			register:  func(r *Registry) { r.Counter("x") },
			wantPanic: `already registered as a gauge-func, re-registered as a counter`,
		},
		{
			name:     "same-kind counter is idempotent",
			setup:    func(r *Registry) { r.Counter("x").Add(1) },
			register: func(r *Registry) { r.Counter("x").Add(1) },
		},
		{
			name:     "gauge-func replacement is legal",
			setup:    func(r *Registry) { r.GaugeFunc("x", func() int64 { return 1 }) },
			register: func(r *Registry) { r.GaugeFunc("x", func() int64 { return 2 }) },
		},
		{
			name:     "spaces and @ are legal (sanitized at exposition)",
			register: func(r *Registry) { r.Counter("node.leg rfid r0@shelf0.tuples_in") },
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := NewRegistry()
			if tc.setup != nil {
				tc.setup(r)
			}
			defer func() {
				rec := recover()
				if tc.wantPanic == "" {
					if rec != nil {
						t.Fatalf("unexpected panic: %v", rec)
					}
					return
				}
				msg, _ := rec.(string)
				if rec == nil || !strings.Contains(msg, tc.wantPanic) {
					t.Fatalf("panic = %v, want substring %q", rec, tc.wantPanic)
				}
			}()
			tc.register(r)
		})
	}
}

// TestPrometheusHelpAndTotal pins the text-format details: counters gain
// the conventional _total suffix, HELP lines are emitted for described
// metrics with backslash/newline escaped, undescribed metrics get none.
func TestPrometheusHelpAndTotal(t *testing.T) {
	r := NewRegistry()
	r.Counter("wal.commits").Add(2)
	r.Describe("wal.commits", "epochs committed\nwith a \\ backslash")
	r.Gauge("backlog").Set(5)
	r.Describe("backlog", "frames queued")
	r.Histogram("fsync").Observe(time.Millisecond)

	var b strings.Builder
	if err := r.WritePrometheus(&b, "esp_"); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`# HELP esp_wal_commits_total epochs committed\nwith a \\ backslash`,
		"# TYPE esp_wal_commits_total counter",
		"esp_wal_commits_total 2",
		"# HELP esp_backlog frames queued",
		"esp_backlog 5",
		"esp_fsync_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "# HELP esp_fsync") {
		t.Errorf("HELP emitted for undescribed metric:\n%s", out)
	}
	if strings.Contains(out, "esp_wal_commits 2") {
		t.Errorf("counter emitted without _total suffix:\n%s", out)
	}
	// A raw newline anywhere in the body would corrupt the format; the
	// escaped help must keep the output at one line per sample/comment.
	for _, line := range strings.Split(strings.TrimSuffix(out, "\n"), "\n") {
		if line == "" {
			t.Errorf("blank line in exposition output:\n%s", out)
		}
	}
}

// TestScrapeRacesShutdown hammers the exposition endpoint from several
// goroutines while Shutdown runs — under -race this pins that scrape
// rendering, snapshotting, and graceful stop share no unsynchronized
// state. Scrape errors are expected once the listener closes; data races
// are not.
func TestScrapeRacesShutdown(t *testing.T) {
	r := NewRegistry()
	r.SetEnabled(true)
	c := r.Counter("race.hot")
	h := r.Histogram("race.lat")
	tr := NewTracer(1, 1)

	srv, err := Serve(":0", ServerConfig{Registry: r, Tracer: tr, ExpvarName: "esp-race-test"})
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				c.Add(1)
				h.Observe(time.Microsecond)
				if id, ok := tr.Sample(); ok {
					tr.Record(SpanRecord{TraceID: id, Name: "race.span"})
				}
				// Scrapes race the shutdown; failures after the listener
				// closes are the expected outcome, not a bug.
				if resp, err := http.Get(srv.URL() + "/metrics"); err == nil {
					_, _ = io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
		}()
	}

	time.Sleep(10 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	close(stop)
	wg.Wait()
}

// TestHistogramSnapshotDuringObserve drives Snapshot from one goroutine
// while four others Observe — the -race companion to the quantile math:
// every snapshot must be internally sane (count never regresses, sum and
// max nonnegative) with no synchronization beyond the atomics.
func TestHistogramSnapshotDuringObserve(t *testing.T) {
	h := &Histogram{}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			d := time.Duration(w+1) * time.Microsecond
			for {
				select {
				case <-stop:
					return
				default:
					h.Observe(d)
				}
			}
		}(w)
	}
	var last int64
	for i := 0; i < 500; i++ {
		s := h.Snapshot()
		if s.Count < last {
			t.Fatalf("count regressed: %d -> %d", last, s.Count)
		}
		last = s.Count
		if s.Sum < 0 || s.Max < 0 {
			t.Fatalf("negative sum/max in concurrent snapshot: %+v", s)
		}
	}
	close(stop)
	wg.Wait()
}
