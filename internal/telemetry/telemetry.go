// Package telemetry is ESP's unified runtime instrumentation layer: a
// process-wide named registry of atomic counters, gauges, and
// log-bucketed latency histograms, designed so the hot path pays nothing
// when extended telemetry is disabled and a handful of uncontended
// atomic operations when it is on.
//
// Design rules (see DESIGN.md §7):
//
//   - Metric handles (*Counter, *Gauge, *Histogram) are resolved by name
//     once, at wiring time; recording through a handle is an atomic add
//     with zero allocations. The registry map is never touched on the
//     hot path.
//   - Every handle method is nil-safe: a component that was never
//     instrumented records into a nil handle, which is a no-op. This
//     lets optional instrumentation be wired without branching at every
//     call site.
//   - Snapshot is safe to call from any goroutine concurrently with
//     recording; it reads each metric atomically (the snapshot is
//     point-in-time per metric, not across metrics — same contract as
//     Processor.NodeStats).
//   - The Enabled flag gates *extra* work (latency timing, lineage
//     sampling, structured log events); basic counters stay live so the
//     long-standing NodeStats / EnableStats / HealthStats snapshots keep
//     working without opt-in.
package telemetry

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter. Nil-safe no-op and allocation-free.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Load reads the counter atomically. Nil counters read as 0.
func (c *Counter) Load() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value.
type Gauge struct {
	v atomic.Int64
}

// Set stores the gauge value. Nil-safe no-op.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add adjusts the gauge by n. Nil-safe no-op.
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Load reads the gauge atomically. Nil gauges read as 0.
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Registry is a named collection of metrics. The zero value is not
// usable; construct with NewRegistry. Metric names are free-form dotted
// paths ("node.leg rfid r0@shelf0.tuples_in"); exposition layers
// sanitise them per format.
//
// Registration is strict: an empty name, a name with control
// characters, or a name already registered under a different metric
// kind panics — both are wiring bugs (two components colliding on a
// name would silently share or shadow state), and registration happens
// at wiring time where a panic is an immediate, debuggable failure.
type Registry struct {
	enabled atomic.Bool

	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	gaugeFns map[string]func() int64
	hists    map[string]*Histogram
	kinds    map[string]metricKind
	help     map[string]string
}

// metricKind discriminates the namespaces sharing one registry.
type metricKind uint8

const (
	kindCounter metricKind = iota + 1
	kindGauge
	kindGaugeFunc
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindGaugeFunc:
		return "gauge-func"
	case kindHistogram:
		return "histogram"
	}
	return "unknown"
}

// NewRegistry returns an empty registry with extended telemetry
// disabled.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		gaugeFns: make(map[string]func() int64),
		hists:    make(map[string]*Histogram),
		kinds:    make(map[string]metricKind),
		help:     make(map[string]string),
	}
}

// checkNameLocked validates a registration. Caller holds r.mu.
func (r *Registry) checkNameLocked(name string, kind metricKind) {
	if name == "" {
		panic("telemetry: empty metric name")
	}
	for i := 0; i < len(name); i++ {
		if name[i] < 0x20 || name[i] == 0x7f {
			panic(fmt.Sprintf("telemetry: metric name %q contains control characters", name))
		}
	}
	if have, ok := r.kinds[name]; ok && have != kind {
		panic(fmt.Sprintf("telemetry: metric %q already registered as a %s, re-registered as a %s", name, have, kind))
	}
	r.kinds[name] = kind
}

// Describe attaches a one-line help string to a metric name, emitted as
// the Prometheus # HELP line (with backslashes and newlines escaped per
// the exposition format). Describing before or after registering the
// metric both work; the last description wins.
func (r *Registry) Describe(name, help string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.help[name] = help
}

// Help reports a metric's description ("" when none was given).
func (r *Registry) Help(name string) string {
	if r == nil {
		return ""
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.help[name]
}

// SetEnabled flips the extended-telemetry gate (latency timing, stage
// accounting, lineage sampling). Basic counters record regardless.
func (r *Registry) SetEnabled(on bool) {
	if r == nil {
		return
	}
	r.enabled.Store(on)
}

// Enabled reports the gate. Nil registries are disabled — the check is a
// single atomic load, cheap enough for per-event call sites.
func (r *Registry) Enabled() bool {
	return r != nil && r.enabled.Load()
}

// Counter returns the named counter, creating it on first use. Resolve
// once and keep the handle; do not call on a hot path.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		r.checkNameLocked(name, kindCounter)
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		r.checkNameLocked(name, kindGauge)
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// GaugeFunc registers a callback gauge, polled at snapshot time. The
// callback must be safe to invoke from any goroutine (read atomics or
// take its own locks). Re-registering a name replaces the callback.
func (r *Registry) GaugeFunc(name string, fn func() int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkNameLocked(name, kindGaugeFunc)
	r.gaugeFns[name] = fn
}

// Histogram returns the named latency histogram, creating it on first
// use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		r.checkNameLocked(name, kindHistogram)
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Snapshot is a point-in-time view of every metric in a registry.
type Snapshot struct {
	Enabled    bool                         `json:"enabled"`
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot reads every metric atomically. Safe to call concurrently
// with recording and with metric registration.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	// Copy the handle maps under the read lock, then read values outside
	// it so gauge callbacks never run while holding the registry lock.
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	fns := make(map[string]func() int64, len(r.gaugeFns))
	for k, v := range r.gaugeFns {
		fns[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.RUnlock()

	s := Snapshot{
		Enabled:    r.Enabled(),
		Counters:   make(map[string]int64, len(counters)),
		Gauges:     make(map[string]int64, len(gauges)+len(fns)),
		Histograms: make(map[string]HistogramSnapshot, len(hists)),
	}
	for k, c := range counters {
		s.Counters[k] = c.Load()
	}
	for k, g := range gauges {
		s.Gauges[k] = g.Load()
	}
	for k, fn := range fns {
		s.Gauges[k] = fn()
	}
	for k, h := range hists {
		s.Histograms[k] = h.Snapshot()
	}
	return s
}

// WriteJSON renders the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// String implements expvar.Var: the registry renders as its snapshot's
// JSON, so a published registry appears inline in /debug/vars.
func (r *Registry) String() string {
	b, err := json.Marshal(r.Snapshot())
	if err != nil {
		return "{}"
	}
	return string(b)
}

// expvar.Publish panics on duplicate names, and tests (or successive
// processors) legitimately publish under the same name; indirect
// through a proxy that rebinds to the latest registry instead.
var (
	expvarMu        sync.Mutex
	expvarPublished = make(map[string]*expvarProxy)
)

type expvarProxy struct {
	reg atomic.Pointer[Registry]
}

func (p *expvarProxy) String() string {
	r := p.reg.Load()
	if r == nil {
		return "{}"
	}
	return r.String()
}

// PublishExpvar exposes the registry under /debug/vars as name.
// Publishing a second registry under the same name rebinds the
// existing expvar entry rather than panicking.
func PublishExpvar(name string, r *Registry) {
	expvarMu.Lock()
	defer expvarMu.Unlock()
	p, ok := expvarPublished[name]
	if !ok {
		p = &expvarProxy{}
		expvarPublished[name] = p
		expvar.Publish(name, p)
	}
	p.reg.Store(r)
}

// WritePrometheus renders every metric in the Prometheus text exposition
// format: counters under their conventional `_total` suffix, gauges
// bare, histograms as summaries with quantile-labelled rows plus
// _sum/_count/_max, each with its # HELP line (escaped per the format)
// when one was described. Names are emitted in sorted order so the
// output is diffable.
func (r *Registry) WritePrometheus(w io.Writer, prefix string) error {
	s := r.Snapshot()
	var b strings.Builder
	help := func(name, promName string) {
		if h := r.Help(name); h != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", promName, escapePromHelp(h))
		}
	}

	names := make([]string, 0, len(s.Counters))
	for k := range s.Counters {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		n := prefix + sanitizeProm(k) + "_total"
		help(k, n)
		fmt.Fprintf(&b, "# TYPE %s counter\n%s %d\n", n, n, s.Counters[k])
	}

	names = names[:0]
	for k := range s.Gauges {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		n := prefix + sanitizeProm(k)
		help(k, n)
		fmt.Fprintf(&b, "# TYPE %s gauge\n%s %d\n", n, n, s.Gauges[k])
	}

	names = names[:0]
	for k := range s.Histograms {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		h := s.Histograms[k]
		n := prefix + sanitizeProm(k)
		help(k, n)
		fmt.Fprintf(&b, "# TYPE %s summary\n", n)
		fmt.Fprintf(&b, "%s{quantile=\"0.5\"} %d\n", n, h.P50)
		fmt.Fprintf(&b, "%s{quantile=\"0.9\"} %d\n", n, h.P90)
		fmt.Fprintf(&b, "%s{quantile=\"0.99\"} %d\n", n, h.P99)
		fmt.Fprintf(&b, "%s_sum %d\n", n, h.Sum)
		fmt.Fprintf(&b, "%s_count %d\n", n, h.Count)
		fmt.Fprintf(&b, "%s_max %d\n", n, h.Max)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// escapePromHelp escapes a HELP string per the text exposition format:
// backslash and newline are the only characters that need escaping.
func escapePromHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// sanitizeProm maps a free-form dotted metric name onto the Prometheus
// name charset [a-zA-Z0-9_:].
func sanitizeProm(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
			b.WriteRune(r)
		case r >= '0' && r <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}
