package telemetry

import (
	"context"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
)

// NamedRegistry labels a secondary registry exposed alongside the main
// one — e.g. one per tenant in a multi-tenant server. The name becomes a
// metric-name prefix segment, so it is sanitized for Prometheus.
type NamedRegistry struct {
	Name     string
	Registry *Registry
}

// ServerConfig bundles what the exposition endpoint serves.
type ServerConfig struct {
	// Registry is the metric source (required).
	Registry *Registry
	// Lineage, when non-nil, is dumped at /lineage.
	Lineage *Lineage
	// ExpvarName is the name the registry is published under in
	// /debug/vars (default "esp").
	ExpvarName string
	// More, when non-nil, is called per scrape and its registries are
	// appended to /metrics (prefix esp_<name>_) and /metrics.json (one
	// JSON object keyed by name). It lets a multi-tenant server surface
	// per-tenant registries through the one exposition endpoint while
	// tenants come and go.
	More func() []NamedRegistry
	// Tracer, when non-nil, is dumped at /traces (recent cross-process
	// spans, oldest first).
	Tracer *Tracer
	// Mounts are extra handlers mounted verbatim (path → handler) —
	// the hook a daemon uses to add its ops surfaces (/healthz,
	// /statusz) to the one exposition endpoint. Paths already served by
	// the standard mux above are rejected at Handler time by the mux
	// itself (duplicate registration panics), so keep them distinct.
	Mounts map[string]http.Handler
}

// Handler builds the exposition mux:
//
//	/metrics       Prometheus text format
//	/metrics.json  full snapshot as JSON
//	/lineage       sampled tuple-lineage dump (JSON array)
//	/debug/vars    expvar JSON (registry published as ExpvarName)
//	/debug/pprof/  stdlib profiling endpoints
//	/              plain-text index of the above
func Handler(cfg ServerConfig) http.Handler {
	name := cfg.ExpvarName
	if name == "" {
		name = "esp"
	}
	PublishExpvar(name, cfg.Registry)

	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = cfg.Registry.WritePrometheus(w, "esp_")
		if cfg.More == nil {
			return
		}
		for _, nr := range cfg.More() {
			if nr.Registry == nil {
				continue
			}
			_ = nr.Registry.WritePrometheus(w, "esp_"+sanitizeProm(nr.Name)+"_")
		}
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		if cfg.More == nil {
			_ = cfg.Registry.Snapshot().WriteJSON(w)
			return
		}
		// One object: the main registry under "", secondaries by name.
		fmt.Fprint(w, `{"":`)
		_ = cfg.Registry.Snapshot().WriteJSON(w)
		for _, nr := range cfg.More() {
			if nr.Registry == nil {
				continue
			}
			fmt.Fprintf(w, ",%q:", nr.Name)
			_ = nr.Registry.Snapshot().WriteJSON(w)
		}
		fmt.Fprint(w, "}")
	})
	mux.HandleFunc("/lineage", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		if cfg.Lineage == nil {
			fmt.Fprintln(w, "[]")
			return
		}
		_ = cfg.Lineage.DumpJSON(w)
	})
	mux.HandleFunc("/traces", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		if cfg.Tracer == nil {
			fmt.Fprintln(w, "[]")
			return
		}
		_ = cfg.Tracer.DumpJSON(w)
	})
	for path, h := range cfg.Mounts {
		mux.Handle(path, h)
	}
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ESP runtime telemetry")
		fmt.Fprintln(w, "  /metrics       Prometheus text")
		fmt.Fprintln(w, "  /metrics.json  snapshot JSON")
		fmt.Fprintln(w, "  /lineage       sampled tuple lineage")
		fmt.Fprintln(w, "  /traces        cross-process trace spans")
		fmt.Fprintln(w, "  /debug/vars    expvar JSON")
		fmt.Fprintln(w, "  /debug/pprof/  profiling")
		paths := make([]string, 0, len(cfg.Mounts))
		for p := range cfg.Mounts {
			paths = append(paths, p)
		}
		sort.Strings(paths)
		for _, p := range paths {
			fmt.Fprintf(w, "  %s\n", p)
		}
	})
	return mux
}

// Server is a live exposition endpoint. Shutdown drains it gracefully;
// Close releases the listener immediately.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Addr reports the bound address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// URL reports the base URL of the endpoint.
func (s *Server) URL() string { return "http://" + s.Addr() }

// Close shuts the endpoint down immediately, aborting in-flight scrapes.
func (s *Server) Close() error { return s.srv.Close() }

// Shutdown stops the endpoint gracefully: the listener closes at once so
// no new scrape is accepted, and in-flight requests run to completion
// (or until ctx expires, whichever is first). A daemon's drain sequence
// calls this last, after pipelines have flushed, so a scrape racing the
// shutdown still observes the final counter state instead of a reset
// connection.
func (s *Server) Shutdown(ctx context.Context) error { return s.srv.Shutdown(ctx) }

// Serve binds addr (e.g. ":9090" or ":0") and serves the exposition
// handler in a background goroutine until Shutdown or Close.
func Serve(addr string, cfg ServerConfig) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: Handler(cfg)}
	go func() { _ = srv.Serve(ln) }()
	return &Server{ln: ln, srv: srv}, nil
}
