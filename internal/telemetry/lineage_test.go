package telemetry

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

func TestLineageSamplingDeterministic(t *testing.T) {
	l1 := NewLineage(8, 42)
	l2 := NewLineage(8, 42)
	l3 := NewLineage(8, 7) // different seed

	base := time.Unix(0, 0).UTC()
	var hits, diff int
	for i := 0; i < 4096; i++ {
		ts := base.Add(time.Duration(i) * time.Millisecond)
		a := l1.Sample("mote03", ts, i%16)
		b := l2.Sample("mote03", ts, i%16)
		if a != b {
			t.Fatalf("same seed diverged at %d", i)
		}
		if a {
			hits++
		}
		if a != l3.Sample("mote03", ts, i%16) {
			diff++
		}
	}
	// ~1/8 of 4096 = 512; allow wide slack, but it must be a sample.
	if hits < 256 || hits > 1024 {
		t.Fatalf("sampled %d of 4096 at 1/8, outside [256,1024]", hits)
	}
	if diff == 0 {
		t.Fatal("different seeds produced identical sampling")
	}
	if !NewLineage(1, 0).Sample("x", base, 0) {
		t.Fatal("sampleN=1 must sample everything")
	}
	if NewLineage(0, 0).SampleN() != 1 {
		t.Fatal("sampleN<1 must clamp to 1")
	}
}

func TestLineageRingAndDump(t *testing.T) {
	l := NewLineage(1, 0)
	l.SetCap(3)
	base := time.Unix(100, 0).UTC()
	for i := 0; i < 5; i++ {
		l.Record(Trace{
			Receptor: "r0",
			Type:     "rfid",
			Epoch:    base,
			Spans: []Span{
				{Stage: "Point", Epoch: base, In: 2, Out: 1, Decision: "merge"},
			},
		})
	}
	traces := l.Traces()
	if len(traces) != 3 {
		t.Fatalf("ring holds %d traces, want 3", len(traces))
	}
	// Newest three survive, oldest first.
	if traces[0].ID != 3 || traces[2].ID != 5 {
		t.Fatalf("ring IDs = %d..%d, want 3..5", traces[0].ID, traces[2].ID)
	}

	var buf bytes.Buffer
	if err := l.DumpJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded []Trace
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("dump is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(decoded) != 3 || decoded[1].Spans[0].Stage != "Point" {
		t.Fatalf("decoded dump = %+v", decoded)
	}
}

func TestDecide(t *testing.T) {
	cases := []struct {
		configured bool
		in, out    int64
		want       string
	}{
		{false, 5, 5, "pass-through"},
		{true, 0, 0, "idle"},
		{true, 4, 0, "drop"},
		{true, 4, 4, "pass"},
		{true, 4, 1, "merge"},
		{true, 1, 3, "transform"},
	}
	for _, c := range cases {
		if got := Decide(c.configured, c.in, c.out); got != c.want {
			t.Errorf("Decide(%v,%d,%d) = %q, want %q", c.configured, c.in, c.out, got, c.want)
		}
	}
}
