// Package receptor defines the physical-device abstraction ESP cleans
// data from: a Receptor produces a timestamped tuple stream, and a Groups
// registry organises receptors into the paper's proximity groups — sets
// of same-type devices monitoring one spatial granule.
package receptor

import (
	"fmt"
	"sort"
	"time"

	"esp/internal/stream"
)

// Type classifies receptor hardware. The pipeline treats types opaquely;
// they matter for proximity grouping (groups are same-type) and for the
// Virtualize stage, which crosses types.
type Type string

// Receptor types used by the paper's three deployments.
const (
	TypeRFID   Type = "rfid"
	TypeMote   Type = "mote"
	TypeMotion Type = "motion"
)

// Receptor is a physical device producing readings. Implementations are
// pull-driven: the ESP processor polls each receptor once per epoch.
type Receptor interface {
	// ID uniquely identifies the device.
	ID() string
	// Type reports the device class.
	Type() Type
	// Schema describes the tuples Poll returns.
	Schema() *stream.Schema
	// Poll advances the device to now and returns the readings it
	// reports for the epoch ending at now. Polls must be called with
	// strictly increasing times.
	Poll(now time.Time) []stream.Tuple
}

// Actuatable is implemented by receptors whose sampling rate ESP can
// adjust — the paper's §5.3.1 receptor actuation: "ideally, ESP should be
// able to actuate the sensors to increase the number of readings within a
// temporal granule such that it can effectively smooth with a window the
// same size as the temporal granule".
type Actuatable interface {
	Receptor
	// SetSampleInterval asks the device to sample every d (0 restores
	// one sample per poll). Takes effect from the next Poll.
	SetSampleInterval(d time.Duration)
	// SampleInterval reports the current setting.
	SampleInterval() time.Duration
}

// Group is a proximity group: same-type receptors monitoring one spatial
// granule.
type Group struct {
	// Name identifies the group and doubles as the spatial granule value
	// ESP attaches to the group's readings.
	Name string
	// Type is the receptor type all members share.
	Type Type
	// Members lists member receptor IDs.
	Members []string
}

// Groups is the proximity-group registry: the deployment-time description
// of which devices watch which spatial granule. Relationships may be
// one-to-many, many-to-one, or many-to-many; the registry hides them from
// the application (paper §3.1.2).
type Groups struct {
	byName   map[string]*Group
	byMember map[string][]string // receptor ID -> group names
}

// NewGroups returns an empty registry.
func NewGroups() *Groups {
	return &Groups{
		byName:   make(map[string]*Group),
		byMember: make(map[string][]string),
	}
}

// Add registers a proximity group. Group names must be unique; a receptor
// may belong to several groups (many-to-many granule relationships).
func (g *Groups) Add(group Group) error {
	if group.Name == "" {
		return fmt.Errorf("receptor: group with empty name")
	}
	if _, dup := g.byName[group.Name]; dup {
		return fmt.Errorf("receptor: duplicate group %q", group.Name)
	}
	if len(group.Members) == 0 {
		return fmt.Errorf("receptor: group %q has no members", group.Name)
	}
	seen := make(map[string]bool, len(group.Members))
	for _, m := range group.Members {
		if m == "" {
			return fmt.Errorf("receptor: group %q has an empty member ID", group.Name)
		}
		if seen[m] {
			return fmt.Errorf("receptor: group %q lists member %q twice", group.Name, m)
		}
		seen[m] = true
	}
	cp := group
	cp.Members = append([]string(nil), group.Members...)
	g.byName[group.Name] = &cp
	for _, m := range cp.Members {
		g.byMember[m] = append(g.byMember[m], group.Name)
	}
	return nil
}

// MustAdd is Add that panics on error, for static deployments.
func (g *Groups) MustAdd(group Group) {
	if err := g.Add(group); err != nil {
		panic(err)
	}
}

// Group looks up a group by name.
func (g *Groups) Group(name string) (*Group, bool) {
	gr, ok := g.byName[name]
	return gr, ok
}

// Of returns the names of the groups a receptor belongs to, sorted.
func (g *Groups) Of(receptorID string) []string {
	names := append([]string(nil), g.byMember[receptorID]...)
	sort.Strings(names)
	return names
}

// Names lists all group names, sorted.
func (g *Groups) Names() []string {
	names := make([]string, 0, len(g.byName))
	for n := range g.byName {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// OfType lists the names of groups of the given type, sorted.
func (g *Groups) OfType(t Type) []string {
	var names []string
	for n, gr := range g.byName {
		if gr.Type == t {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names
}
