package receptor

import (
	"time"

	"esp/internal/stream"
)

// Replay is a receptor that replays a pre-recorded (or pre-generated)
// trace: each Poll returns the queued tuples whose timestamps have
// arrived. It is the trace-replay substrate experiment harnesses use to
// evaluate pipelines against known ground truth, and what a user would
// use to run ESP over a logged deployment trace.
type Replay struct {
	id     string
	typ    Type
	schema *stream.Schema
	queue  []stream.Tuple
	pos    int
}

// NewReplay builds a replay receptor over tuples sorted by timestamp.
func NewReplay(id string, typ Type, schema *stream.Schema, tuples []stream.Tuple) *Replay {
	return &Replay{id: id, typ: typ, schema: schema, queue: tuples}
}

// ID implements Receptor.
func (r *Replay) ID() string { return r.id }

// Type implements Receptor.
func (r *Replay) Type() Type { return r.typ }

// Schema implements Receptor.
func (r *Replay) Schema() *stream.Schema { return r.schema }

// Poll implements Receptor: it returns the queued tuples with Ts <= now.
func (r *Replay) Poll(now time.Time) []stream.Tuple {
	start := r.pos
	for r.pos < len(r.queue) && !r.queue[r.pos].Ts.After(now) {
		r.pos++
	}
	if r.pos == start {
		return nil
	}
	return r.queue[start:r.pos]
}

// Remaining reports how many tuples have not yet been polled.
func (r *Replay) Remaining() int { return len(r.queue) - r.pos }
