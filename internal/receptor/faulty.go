package receptor

import (
	"fmt"
	"math/rand"
	"time"

	"esp/internal/stream"
)

// FaultKind classifies an injected receptor fault. The taxonomy follows
// the failure modes the paper's deployments actually exhibit — RFID
// readers silently dropping reads, motes dying as batteries drain,
// fail-dirty sensors reporting stuck values — plus the runtime-level
// failures (hangs, crashes) a supervised poller must survive.
type FaultKind int

const (
	// FaultDrop discards each affected tuple with probability P — silent
	// reader misses.
	FaultDrop FaultKind = iota
	// FaultDuplicate re-emits each affected tuple with probability P —
	// link-layer retransmission duplicates.
	FaultDuplicate
	// FaultDelay withholds affected tuples until Delay has elapsed past
	// their timestamp, releasing them after fresher readings — network
	// delay and reordering.
	FaultDelay
	// FaultStuck overwrites Field with Value in affected tuples — a
	// fail-dirty sensor pinned to one reading.
	FaultStuck
	// FaultSlowPoll makes Poll block for Sleep before answering — a
	// wedged device driver. Combined with a supervised poller deadline
	// this is the "hang" failure mode.
	FaultSlowPoll
	// FaultPanic makes Poll panic while the fault is active — a crashing
	// driver that recovers when the window ends.
	FaultPanic
	// FaultDie makes Poll panic forever once From is reached — permanent
	// device death (the window's Until is ignored).
	FaultDie
)

// String names the kind for schedules and reports.
func (k FaultKind) String() string {
	switch k {
	case FaultDrop:
		return "drop"
	case FaultDuplicate:
		return "duplicate"
	case FaultDelay:
		return "delay"
	case FaultStuck:
		return "stuck"
	case FaultSlowPoll:
		return "slow-poll"
	case FaultPanic:
		return "panic"
	case FaultDie:
		return "die"
	default:
		return fmt.Sprintf("fault(%d)", int(k))
	}
}

// Fault is one scheduled fault. Data faults (drop, duplicate, delay,
// stuck) gate on each tuple's timestamp, so their effect is a pure
// function of the tuple stream — independent of how polls batch it (the
// property the oracle's drop-commute check relies on). Liveness faults
// (slow-poll, panic, die) gate on the poll time itself.
type Fault struct {
	Kind FaultKind
	// From and Until bound the active window: active when From <= t <
	// Until. A zero Until means "forever". FaultDie ignores Until.
	From, Until time.Time
	// P is the per-tuple probability for drop/duplicate; values <= 0 or
	// >= 1 mean "every tuple".
	P float64
	// Field and Value configure FaultStuck.
	Field string
	Value stream.Value
	// Delay configures FaultDelay: a tuple with timestamp ts is withheld
	// until a poll with now >= ts+Delay.
	Delay time.Duration
	// Sleep configures FaultSlowPoll.
	Sleep time.Duration
}

// active reports whether the fault window covers t.
func (f *Fault) active(t time.Time) bool {
	if t.Before(f.From) {
		return false
	}
	return f.Until.IsZero() || t.Before(f.Until)
}

// hits reports whether the fault fires for a tuple at ts, consuming one
// RNG draw per in-window tuple for the probabilistic kinds. Keeping the
// draw discipline identical between online injection and offline
// ThinTrace is what makes drops commute with batching.
func (f *Fault) hits(rng *rand.Rand, ts time.Time) bool {
	if !f.active(ts) {
		return false
	}
	if f.P <= 0 || f.P >= 1 {
		return true
	}
	return rng.Float64() < f.P
}

// Sleeper abstracts blocking, so a chaos harness can substitute a
// virtual clock for time.Sleep and keep slow-poll faults deterministic.
type Sleeper func(d time.Duration)

// Faulty wraps a Receptor with a seeded, schedule-driven fault injector.
// The same (seed, schedule) pair always produces the same faults, so
// chaos runs are reproducible. Each fault draws from its own RNG stream
// (derived from the seed and the fault's position in the schedule), so
// adding a fault never perturbs another fault's decisions.
type Faulty struct {
	inner  Receptor
	faults []Fault
	rngs   []*rand.Rand
	// SleepFn implements FaultSlowPoll blocking; defaults to time.Sleep.
	SleepFn Sleeper

	held []heldTuple // FaultDelay backlog, in hold order
	dead bool        // FaultDie tripped
}

// heldTuple is one delayed tuple with its release time.
type heldTuple struct {
	t  stream.Tuple
	at time.Time
}

// NewFaulty wraps inner with the given fault schedule.
func NewFaulty(inner Receptor, seed int64, faults ...Fault) *Faulty {
	f := &Faulty{inner: inner, faults: faults, SleepFn: time.Sleep}
	for i := range faults {
		f.rngs = append(f.rngs, rand.New(rand.NewSource(seed+int64(i)*1000003)))
	}
	return f
}

// ID implements Receptor.
func (f *Faulty) ID() string { return f.inner.ID() }

// Type implements Receptor.
func (f *Faulty) Type() Type { return f.inner.Type() }

// Schema implements Receptor.
func (f *Faulty) Schema() *stream.Schema { return f.inner.Schema() }

// Inner returns the wrapped receptor.
func (f *Faulty) Inner() Receptor { return f.inner }

// Poll implements Receptor: liveness faults first (die, panic, slow),
// then the inner poll, then the data faults applied tuple by tuple in
// schedule order, then release of any due delayed tuples.
func (f *Faulty) Poll(now time.Time) []stream.Tuple {
	for i := range f.faults {
		ft := &f.faults[i]
		switch ft.Kind {
		case FaultDie:
			if f.dead || !now.Before(ft.From) {
				f.dead = true
				panic(fmt.Sprintf("receptor %s: injected permanent death", f.inner.ID()))
			}
		case FaultPanic:
			if ft.active(now) {
				panic(fmt.Sprintf("receptor %s: injected panic", f.inner.ID()))
			}
		case FaultSlowPoll:
			if ft.active(now) && ft.Sleep > 0 {
				f.SleepFn(ft.Sleep)
			}
		}
	}
	out := f.applyDataFaults(f.inner.Poll(now))
	// Release delayed tuples that have aged past their hold time. They
	// are appended after the fresh readings, so downstream sees them out
	// of timestamp order — the reordering the fault models.
	if len(f.held) > 0 {
		keep := f.held[:0]
		for _, h := range f.held {
			if !h.at.After(now) {
				out = append(out, h.t)
				continue
			}
			keep = append(keep, h)
		}
		f.held = keep
	}
	return out
}

// applyDataFaults runs each polled tuple through the schedule's data
// faults in schedule order. A tuple dropped by an earlier fault consumes
// no draws from later faults (mirrored exactly by ThinTrace).
func (f *Faulty) applyDataFaults(in []stream.Tuple) []stream.Tuple {
	if len(in) == 0 {
		return nil
	}
	var out []stream.Tuple
	for _, t := range in {
		tuples := []stream.Tuple{t}
		for i := range f.faults {
			ft := &f.faults[i]
			tuples = f.applyOne(ft, f.rngs[i], tuples)
			if len(tuples) == 0 {
				break
			}
		}
		for _, t := range tuples {
			if d, held := f.delayFor(t.Ts); held {
				f.held = append(f.held, heldTuple{t: t, at: t.Ts.Add(d)})
				continue
			}
			out = append(out, t)
		}
	}
	return out
}

// applyOne applies one data fault to the expansion of a single input
// tuple.
func (f *Faulty) applyOne(ft *Fault, rng *rand.Rand, ts []stream.Tuple) []stream.Tuple {
	switch ft.Kind {
	case FaultDrop:
		out := ts[:0]
		for _, t := range ts {
			if ft.hits(rng, t.Ts) {
				continue
			}
			out = append(out, t)
		}
		return out
	case FaultDuplicate:
		var out []stream.Tuple
		for _, t := range ts {
			out = append(out, t)
			if ft.hits(rng, t.Ts) {
				out = append(out, t)
			}
		}
		return out
	case FaultStuck:
		ix, ok := f.inner.Schema().Index(ft.Field)
		if !ok {
			return ts
		}
		for i, t := range ts {
			if !ft.active(t.Ts) {
				continue
			}
			cp := t.Clone()
			cp.Values[ix] = ft.Value
			ts[i] = cp
		}
		return ts
	default:
		return ts
	}
}

// delayFor reports the hold duration a delay fault imposes on a tuple
// with timestamp ts (held==false when no delay fault covers it).
func (f *Faulty) delayFor(ts time.Time) (time.Duration, bool) {
	for i := range f.faults {
		ft := &f.faults[i]
		if ft.Kind == FaultDelay && ft.active(ts) && ft.Delay > 0 {
			return ft.Delay, true
		}
	}
	return 0, false
}

// Pending reports how many delayed tuples await release.
func (f *Faulty) Pending() int { return len(f.held) }

// ThinTrace applies a drop-only fault schedule offline to a recorded
// trace: the returned slice holds exactly the tuples a Faulty with the
// same (seed, faults) would let through, regardless of how polls batch
// the trace. Non-drop kinds are rejected — only pure drops commute with
// cleaning this way. The oracle's chaos differential check replays
// deployments on thinned traces and demands byte-identical output.
func ThinTrace(trace []stream.Tuple, seed int64, faults ...Fault) ([]stream.Tuple, error) {
	for _, ft := range faults {
		if ft.Kind != FaultDrop {
			return nil, fmt.Errorf("receptor: ThinTrace supports drop faults only, got %s", ft.Kind)
		}
	}
	rngs := make([]*rand.Rand, len(faults))
	for i := range faults {
		rngs[i] = rand.New(rand.NewSource(seed + int64(i)*1000003))
	}
	var out []stream.Tuple
	for _, t := range trace {
		dropped := false
		for i := range faults {
			if faults[i].hits(rngs[i], t.Ts) {
				dropped = true
				break // later faults see no tuple, draw nothing
			}
		}
		if !dropped {
			out = append(out, t)
		}
	}
	return out, nil
}
