package receptor

import (
	"reflect"
	"testing"
)

func TestGroupsAddAndLookup(t *testing.T) {
	g := NewGroups()
	if err := g.Add(Group{Name: "shelf0", Type: TypeRFID, Members: []string{"reader0"}}); err != nil {
		t.Fatal(err)
	}
	if err := g.Add(Group{Name: "shelf1", Type: TypeRFID, Members: []string{"reader1"}}); err != nil {
		t.Fatal(err)
	}
	gr, ok := g.Group("shelf0")
	if !ok || gr.Members[0] != "reader0" {
		t.Errorf("Group(shelf0) = %v, %v", gr, ok)
	}
	if _, ok := g.Group("nope"); ok {
		t.Error("lookup of missing group succeeded")
	}
	if got := g.Names(); !reflect.DeepEqual(got, []string{"shelf0", "shelf1"}) {
		t.Errorf("Names = %v", got)
	}
}

func TestGroupsErrors(t *testing.T) {
	g := NewGroups()
	if err := g.Add(Group{Name: "", Members: []string{"x"}}); err == nil {
		t.Error("empty name: want error")
	}
	if err := g.Add(Group{Name: "a", Members: nil}); err == nil {
		t.Error("no members: want error")
	}
	if err := g.Add(Group{Name: "a", Members: []string{"x", "x"}}); err == nil {
		t.Error("duplicate member: want error")
	}
	g.MustAdd(Group{Name: "a", Members: []string{"x"}})
	if err := g.Add(Group{Name: "a", Members: []string{"y"}}); err == nil {
		t.Error("duplicate group: want error")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("MustAdd on dup: want panic")
			}
		}()
		g.MustAdd(Group{Name: "a", Members: []string{"z"}})
	}()
}

func TestGroupsManyToMany(t *testing.T) {
	// A receptor may watch several granules (paper §3.1.2).
	g := NewGroups()
	g.MustAdd(Group{Name: "roomA", Type: TypeMote, Members: []string{"m1", "m2"}})
	g.MustAdd(Group{Name: "roomB", Type: TypeMote, Members: []string{"m2", "m3"}})
	if got := g.Of("m2"); !reflect.DeepEqual(got, []string{"roomA", "roomB"}) {
		t.Errorf("Of(m2) = %v", got)
	}
	if got := g.Of("m1"); !reflect.DeepEqual(got, []string{"roomA"}) {
		t.Errorf("Of(m1) = %v", got)
	}
	if got := g.Of("unknown"); len(got) != 0 {
		t.Errorf("Of(unknown) = %v", got)
	}
}

func TestGroupsOfType(t *testing.T) {
	g := NewGroups()
	g.MustAdd(Group{Name: "shelf0", Type: TypeRFID, Members: []string{"r0"}})
	g.MustAdd(Group{Name: "room", Type: TypeMote, Members: []string{"m0"}})
	g.MustAdd(Group{Name: "hall", Type: TypeMotion, Members: []string{"x0"}})
	if got := g.OfType(TypeRFID); !reflect.DeepEqual(got, []string{"shelf0"}) {
		t.Errorf("OfType(rfid) = %v", got)
	}
	if got := g.OfType(TypeMote); !reflect.DeepEqual(got, []string{"room"}) {
		t.Errorf("OfType(mote) = %v", got)
	}
}

func TestGroupsMemberIsolation(t *testing.T) {
	// Mutating the caller's slice after Add must not affect the registry.
	members := []string{"r0"}
	g := NewGroups()
	g.MustAdd(Group{Name: "s", Type: TypeRFID, Members: members})
	members[0] = "hacked"
	gr, _ := g.Group("s")
	if gr.Members[0] != "r0" {
		t.Error("registry shares caller's member slice")
	}
}
