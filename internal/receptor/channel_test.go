package receptor

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"esp/internal/stream"
)

var chanSchema = stream.MustSchema(stream.Field{Name: "v", Kind: stream.KindInt})

func chanTuple(sec int) stream.Tuple {
	return stream.NewTuple(time.Unix(int64(sec), 0).UTC(), stream.Int(int64(sec)))
}

// TestChannelShrinkWhileBacklogged pins the SetCap shrink accounting:
// every evicted tuple counts in Dropped exactly once, the survivors are
// the newest, and a shrink that evicts nothing counts nothing.
func TestChannelShrinkWhileBacklogged(t *testing.T) {
	cases := []struct {
		name        string
		publish     int // tuples published before the shrink
		shrinkTo    int // SetCap argument
		wantDropped int64
		wantPending int
		wantOldest  int // value of the first surviving tuple (publish second)
	}{
		{name: "shrink-below-backlog", publish: 10, shrinkTo: 3, wantDropped: 7, wantPending: 3, wantOldest: 8},
		{name: "shrink-to-one", publish: 5, shrinkTo: 1, wantDropped: 4, wantPending: 1, wantOldest: 5},
		{name: "shrink-to-backlog", publish: 4, shrinkTo: 4, wantDropped: 0, wantPending: 4, wantOldest: 1},
		{name: "shrink-above-backlog", publish: 3, shrinkTo: 8, wantDropped: 0, wantPending: 3, wantOldest: 1},
		{name: "restore-default", publish: 6, shrinkTo: 0, wantDropped: 0, wantPending: 6, wantOldest: 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := NewChannel("ch", TypeMote, chanSchema)
			for i := 1; i <= tc.publish; i++ {
				c.Publish(chanTuple(i))
			}
			c.SetCap(tc.shrinkTo)
			if got := c.Dropped(); got != tc.wantDropped {
				t.Errorf("Dropped = %d, want %d", got, tc.wantDropped)
			}
			if got := c.Pending(); got != tc.wantPending {
				t.Errorf("Pending = %d, want %d", got, tc.wantPending)
			}
			// A second identical shrink must not re-count the same
			// evictions, and draining must return only survivors.
			c.SetCap(tc.shrinkTo)
			if got := c.Dropped(); got != tc.wantDropped {
				t.Errorf("Dropped after repeated shrink = %d, want %d", got, tc.wantDropped)
			}
			out := c.Poll(time.Unix(1<<20, 0).UTC())
			if len(out) != tc.wantPending {
				t.Fatalf("Poll returned %d tuples, want %d", len(out), tc.wantPending)
			}
			if tc.wantPending > 0 && out[0].Values[0].AsInt() != int64(tc.wantOldest) {
				t.Errorf("oldest survivor = %d, want %d", out[0].Values[0].AsInt(), tc.wantOldest)
			}
			// Published = dropped + delivered: nothing lost, nothing
			// counted twice.
			if int64(tc.publish) != tc.wantDropped+int64(len(out)) {
				t.Errorf("accounting leak: published %d, dropped %d, delivered %d", tc.publish, tc.wantDropped, len(out))
			}
		})
	}
}

// TestChannelSaturatedAccounting drives a channel far past its bound and
// checks the global invariant published == dropped + delivered, which
// catches both under- and double-counting across the eviction and
// compaction paths.
func TestChannelSaturatedAccounting(t *testing.T) {
	c := NewChannel("ch", TypeMote, chanSchema)
	c.SetCap(7)
	const total = 1000
	delivered := 0
	for i := 1; i <= total; i++ {
		c.Publish(chanTuple(i))
		if i%97 == 0 {
			delivered += len(c.Poll(time.Unix(int64(i), 0).UTC()))
		}
	}
	delivered += len(c.Poll(time.Unix(total, 0).UTC()))
	if got := c.Dropped() + int64(delivered); got != total {
		t.Fatalf("published %d, dropped %d + delivered %d = %d", total, c.Dropped(), delivered, got)
	}
	if c.Pending() != 0 {
		t.Fatalf("pending %d after full drain", c.Pending())
	}
}

// TestChannelPublishAll covers the batched ingest path used by the
// serving layer, including a batch larger than the bound.
func TestChannelPublishAll(t *testing.T) {
	c := NewChannel("ch", TypeMote, chanSchema)
	c.SetCap(3)
	batch := make([]stream.Tuple, 8)
	for i := range batch {
		batch[i] = chanTuple(i + 1)
	}
	c.PublishAll(batch)
	if c.Dropped() != 5 || c.Pending() != 3 {
		t.Fatalf("Dropped = %d, Pending = %d", c.Dropped(), c.Pending())
	}
	out := c.Poll(time.Unix(100, 0).UTC())
	if len(out) != 3 || out[0].Values[0].AsInt() != 6 {
		t.Fatalf("survivors = %v", out)
	}
}

// TestChannelConcurrentPublishSetCap exercises Publish, PublishAll,
// SetCap shrink/grow, Poll, and the stat accessors concurrently; run
// under -race this pins the lock discipline, and the final accounting
// invariant holds regardless of interleaving.
func TestChannelConcurrentPublishSetCap(t *testing.T) {
	c := NewChannel("ch", TypeMote, chanSchema)
	const (
		publishers  = 4
		perPub      = 500
		capFlippers = 2
	)
	var pubs, churn sync.WaitGroup
	var delivered int64
	var deliveredMu sync.Mutex
	stop := make(chan struct{})

	for p := 0; p < publishers; p++ {
		pubs.Add(1)
		go func() {
			defer pubs.Done()
			for i := 0; i < perPub; i++ {
				if i%10 == 0 {
					c.PublishAll([]stream.Tuple{chanTuple(i), chanTuple(i)})
				} else {
					c.Publish(chanTuple(i))
				}
			}
		}()
	}
	for f := 0; f < capFlippers; f++ {
		churn.Add(1)
		go func(f int) {
			defer churn.Done()
			caps := []int{5, 64, 1, 1024, 16}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				c.SetCap(caps[(i+f)%len(caps)])
				_ = c.Pending()
				_ = c.Cap()
			}
		}(f)
	}
	churn.Add(1)
	go func() {
		defer churn.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			n := len(c.Poll(time.Unix(1<<30, 0).UTC()))
			deliveredMu.Lock()
			delivered += int64(n)
			deliveredMu.Unlock()
		}
	}()

	pubs.Wait()
	close(stop)
	churn.Wait()
	final := delivered + int64(len(c.Poll(time.Unix(1<<30, 0).UTC())))

	// Each publisher enqueues perPub + perPub/10 extra tuples (the
	// PublishAll pairs add one extra each).
	total := int64(publishers * (perPub + perPub/10))
	if got := c.Dropped() + final; got != total {
		t.Fatalf("published %d, dropped %d + delivered %d = %d", total, c.Dropped(), final, got)
	}
}

func BenchmarkChannelSaturatedPublish(b *testing.B) {
	c := NewChannel("ch", TypeMote, chanSchema)
	c.SetCap(1024)
	t0 := chanTuple(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Publish(t0)
	}
	_ = fmt.Sprintf("%d", c.Dropped())
}
