package receptor

import (
	"sync"
	"sync/atomic"
	"time"

	"esp/internal/stream"
)

// DefaultChannelCap is the buffer bound a new Channel starts with —
// generous enough that a healthy parent polling once per epoch never
// hits it, small enough that a stalled or quarantined parent cannot run
// the process out of memory.
const DefaultChannelCap = 1 << 16

// Channel is a receptor fed programmatically: upstream code publishes
// tuples and a downstream processor polls them out. It is the glue for
// hierarchical composition — the paper's ESP instances run "at the edge
// of the HiFi network", and a higher-level node consumes their cleaned
// outputs as if they were devices. Wire an edge processor's OnType sink
// to Publish and hand the Channel to the parent deployment. It is also
// the ingestion buffer of the espd serving layer: one Channel per
// connected receptor, with SetCap as the per-tenant quota knob.
//
// The internal buffer is bounded (SetCap; DefaultChannelCap initially):
// when a parent polls slower than children publish, the oldest unpolled
// tuples are dropped first — matching real receptor behaviour, where a
// reader's FIFO overwrites stale readings — and counted in Dropped.
// Every evicted tuple is counted exactly once, whether it was evicted by
// a Publish at the bound or by a SetCap shrink below the current
// backlog, and eviction is O(1) amortized: the buffer advances a head
// index instead of shifting, so a saturated channel does not pay a
// per-publish copy of the whole backlog.
//
// Publish is safe for concurrent use; Poll drains every published tuple
// whose timestamp has arrived.
type Channel struct {
	id     string
	typ    Type
	schema *stream.Schema

	mu sync.Mutex
	// The live backlog is buf[head:]; evicted and polled slots are
	// cleared so the backing array never pins tuple memory the channel
	// no longer owns.
	buf     []stream.Tuple
	head    int
	cap     int
	dropped atomic.Int64
}

// NewChannel builds an empty channel receptor with the default buffer
// bound.
func NewChannel(id string, typ Type, schema *stream.Schema) *Channel {
	return &Channel{id: id, typ: typ, schema: schema, cap: DefaultChannelCap}
}

// ID implements Receptor.
func (c *Channel) ID() string { return c.id }

// Type implements Receptor.
func (c *Channel) Type() Type { return c.typ }

// Schema implements Receptor.
func (c *Channel) Schema() *stream.Schema { return c.schema }

// SetCap bounds the unpolled buffer to n tuples (n <= 0 restores the
// default). Shrinking below the current backlog drops the oldest tuples
// immediately, counting each exactly once in Dropped.
func (c *Channel) SetCap(n int) {
	if n <= 0 {
		n = DefaultChannelCap
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.cap = n
	c.evictLocked()
}

// Cap reports the buffer bound.
func (c *Channel) Cap() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cap
}

// Dropped reports how many published tuples were evicted unpolled. Safe
// from any goroutine.
func (c *Channel) Dropped() int64 { return c.dropped.Load() }

// Publish enqueues one tuple for the next Poll, evicting the oldest
// buffered tuple when the bound is reached.
func (c *Channel) Publish(t stream.Tuple) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.buf = append(c.buf, t)
	c.evictLocked()
}

// PublishAll enqueues a batch under one lock acquisition — the serving
// layer's frame-ingest path, where a publish frame carries an epoch's
// readings at once.
func (c *Channel) PublishAll(ts []stream.Tuple) {
	if len(ts) == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.buf = append(c.buf, ts...)
	c.evictLocked()
}

// evictLocked enforces the bound by advancing the head index past the
// oldest tuples (publish order). Evicted slots are cleared immediately —
// Dropped is the single accounting point, so an eviction is never
// observable twice (not in Pending, not in a later Poll, not re-counted
// by a subsequent shrink).
func (c *Channel) evictLocked() {
	if over := len(c.buf) - c.head - c.cap; over > 0 {
		c.dropped.Add(int64(over))
		clear(c.buf[c.head : c.head+over])
		c.head += over
	}
	// Compact once the dead prefix dominates, so the backing array stays
	// proportional to the backlog rather than growing with total traffic.
	if c.head > len(c.buf)/2 && c.head >= 64 {
		n := copy(c.buf, c.buf[c.head:])
		clear(c.buf[n:])
		c.buf = c.buf[:n]
		c.head = 0
	}
}

// Poll implements Receptor: it drains the tuples published so far whose
// Ts is at or before now, preserving publish order.
func (c *Channel) Poll(now time.Time) []stream.Tuple {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out, keep []stream.Tuple
	for _, t := range c.buf[c.head:] {
		if t.Ts.After(now) {
			keep = append(keep, t)
			continue
		}
		out = append(out, t)
	}
	clear(c.buf[c.head:])
	c.buf = keep
	c.head = 0
	return out
}

// Pending reports how many published tuples await polling.
func (c *Channel) Pending() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.buf) - c.head
}
