package receptor

import (
	"sync"
	"time"

	"esp/internal/stream"
)

// Channel is a receptor fed programmatically: upstream code publishes
// tuples and a downstream processor polls them out. It is the glue for
// hierarchical composition — the paper's ESP instances run "at the edge
// of the HiFi network", and a higher-level node consumes their cleaned
// outputs as if they were devices. Wire an edge processor's OnType sink
// to Publish and hand the Channel to the parent deployment.
//
// Publish is safe for concurrent use; Poll drains every published tuple
// whose timestamp has arrived.
type Channel struct {
	id     string
	typ    Type
	schema *stream.Schema

	mu  sync.Mutex
	buf []stream.Tuple
}

// NewChannel builds an empty channel receptor.
func NewChannel(id string, typ Type, schema *stream.Schema) *Channel {
	return &Channel{id: id, typ: typ, schema: schema}
}

// ID implements Receptor.
func (c *Channel) ID() string { return c.id }

// Type implements Receptor.
func (c *Channel) Type() Type { return c.typ }

// Schema implements Receptor.
func (c *Channel) Schema() *stream.Schema { return c.schema }

// Publish enqueues one tuple for the next Poll.
func (c *Channel) Publish(t stream.Tuple) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.buf = append(c.buf, t)
}

// Poll implements Receptor: it drains the tuples published so far whose
// Ts is at or before now, preserving publish order.
func (c *Channel) Poll(now time.Time) []stream.Tuple {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out, keep []stream.Tuple
	for _, t := range c.buf {
		if t.Ts.After(now) {
			keep = append(keep, t)
			continue
		}
		out = append(out, t)
	}
	c.buf = keep
	return out
}

// Pending reports how many published tuples await polling.
func (c *Channel) Pending() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.buf)
}
