package receptor

import (
	"sync"
	"sync/atomic"
	"time"

	"esp/internal/stream"
)

// DefaultChannelCap is the buffer bound a new Channel starts with —
// generous enough that a healthy parent polling once per epoch never
// hits it, small enough that a stalled or quarantined parent cannot run
// the process out of memory.
const DefaultChannelCap = 1 << 16

// Channel is a receptor fed programmatically: upstream code publishes
// tuples and a downstream processor polls them out. It is the glue for
// hierarchical composition — the paper's ESP instances run "at the edge
// of the HiFi network", and a higher-level node consumes their cleaned
// outputs as if they were devices. Wire an edge processor's OnType sink
// to Publish and hand the Channel to the parent deployment.
//
// The internal buffer is bounded (SetCap; DefaultChannelCap initially):
// when a parent polls slower than children publish, the oldest unpolled
// tuples are dropped first — matching real receptor behaviour, where a
// reader's FIFO overwrites stale readings — and counted in Dropped.
//
// Publish is safe for concurrent use; Poll drains every published tuple
// whose timestamp has arrived.
type Channel struct {
	id     string
	typ    Type
	schema *stream.Schema

	mu      sync.Mutex
	buf     []stream.Tuple
	cap     int
	dropped atomic.Int64
}

// NewChannel builds an empty channel receptor with the default buffer
// bound.
func NewChannel(id string, typ Type, schema *stream.Schema) *Channel {
	return &Channel{id: id, typ: typ, schema: schema, cap: DefaultChannelCap}
}

// ID implements Receptor.
func (c *Channel) ID() string { return c.id }

// Type implements Receptor.
func (c *Channel) Type() Type { return c.typ }

// Schema implements Receptor.
func (c *Channel) Schema() *stream.Schema { return c.schema }

// SetCap bounds the unpolled buffer to n tuples (n <= 0 restores the
// default). Shrinking below the current backlog drops the oldest tuples
// immediately.
func (c *Channel) SetCap(n int) {
	if n <= 0 {
		n = DefaultChannelCap
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.cap = n
	c.evictLocked()
}

// Cap reports the buffer bound.
func (c *Channel) Cap() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cap
}

// Dropped reports how many published tuples were evicted unpolled. Safe
// from any goroutine.
func (c *Channel) Dropped() int64 { return c.dropped.Load() }

// Publish enqueues one tuple for the next Poll, evicting the oldest
// buffered tuple when the bound is reached.
func (c *Channel) Publish(t stream.Tuple) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.buf = append(c.buf, t)
	c.evictLocked()
}

// evictLocked enforces the bound, dropping from the front (oldest
// publish order).
func (c *Channel) evictLocked() {
	if over := len(c.buf) - c.cap; over > 0 {
		c.dropped.Add(int64(over))
		c.buf = append(c.buf[:0], c.buf[over:]...)
	}
}

// Poll implements Receptor: it drains the tuples published so far whose
// Ts is at or before now, preserving publish order.
func (c *Channel) Poll(now time.Time) []stream.Tuple {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out, keep []stream.Tuple
	for _, t := range c.buf {
		if t.Ts.After(now) {
			keep = append(keep, t)
			continue
		}
		out = append(out, t)
	}
	c.buf = keep
	return out
}

// Pending reports how many published tuples await polling.
func (c *Channel) Pending() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.buf)
}
