package receptor

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"esp/internal/stream"
)

var faultySchema = stream.MustSchema(stream.Field{Name: "temp", Kind: stream.KindFloat})

// mkTrace builds one tuple per second starting at t0+1s.
func mkTrace(n int) []stream.Tuple {
	t0 := time.Unix(0, 0).UTC()
	out := make([]stream.Tuple, n)
	for i := range out {
		out[i] = stream.NewTuple(t0.Add(time.Duration(i+1)*time.Second), stream.Float(float64(20+i)))
	}
	return out
}

// pollAll drives a receptor over epochs-many 1s polls and concatenates
// the batches.
func pollAll(r Receptor, epochs int) []stream.Tuple {
	t0 := time.Unix(0, 0).UTC()
	var out []stream.Tuple
	for k := 1; k <= epochs; k++ {
		out = append(out, r.Poll(t0.Add(time.Duration(k)*time.Second))...)
	}
	return out
}

func TestFaultyDropDeterministicAndThinTraceCommutes(t *testing.T) {
	trace := mkTrace(40)
	t0 := time.Unix(0, 0).UTC()
	drop := Fault{Kind: FaultDrop, P: 0.4, From: t0.Add(5 * time.Second), Until: t0.Add(30 * time.Second)}

	run := func(batch int) []stream.Tuple {
		f := NewFaulty(NewReplay("r0", TypeMote, faultySchema, trace), 7, drop)
		var out []stream.Tuple
		for k := batch; k <= 40; k += batch {
			out = append(out, f.Poll(t0.Add(time.Duration(k)*time.Second))...)
		}
		return out
	}
	oneByOne := run(1)
	batched := run(4)
	if !reflect.DeepEqual(oneByOne, batched) {
		t.Fatalf("drop decisions depend on poll batching: %d vs %d tuples", len(oneByOne), len(batched))
	}
	thin, err := ThinTrace(trace, 7, drop)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(oneByOne, thin) {
		t.Fatalf("ThinTrace disagrees with online drops: %d vs %d tuples", len(thin), len(oneByOne))
	}
	if len(thin) == len(trace) || len(thin) == 0 {
		t.Fatalf("drop fault had no visible effect: kept %d of %d", len(thin), len(trace))
	}
	// Outside the window nothing is dropped.
	for _, tu := range trace[:4] {
		if !containsTs(thin, tu.Ts) {
			t.Fatalf("tuple at %v outside fault window was dropped", tu.Ts)
		}
	}
}

func containsTs(ts []stream.Tuple, at time.Time) bool {
	for _, t := range ts {
		if t.Ts.Equal(at) {
			return true
		}
	}
	return false
}

func TestThinTraceRejectsNonDrop(t *testing.T) {
	if _, err := ThinTrace(mkTrace(3), 1, Fault{Kind: FaultPanic}); err == nil {
		t.Fatal("ThinTrace accepted a panic fault")
	}
}

func TestFaultyDuplicateAndStuck(t *testing.T) {
	trace := mkTrace(10)
	t0 := time.Unix(0, 0).UTC()
	f := NewFaulty(NewReplay("r0", TypeMote, faultySchema, trace), 3,
		Fault{Kind: FaultDuplicate, P: 1, From: t0.Add(3 * time.Second), Until: t0.Add(6 * time.Second)},
		Fault{Kind: FaultStuck, Field: "temp", Value: stream.Float(99), From: t0.Add(8 * time.Second)},
	)
	got := pollAll(f, 10)
	// Tuples at 3,4,5s duplicate (P=1): 10 + 3 tuples total.
	if len(got) != 13 {
		t.Fatalf("got %d tuples, want 13", len(got))
	}
	for _, tu := range got {
		v := tu.Values[0].AsFloat()
		if !tu.Ts.Before(t0.Add(8 * time.Second)) {
			if v != 99 {
				t.Fatalf("tuple at %v not stuck: %v", tu.Ts, v)
			}
		} else if v == 99 {
			t.Fatalf("tuple at %v stuck outside window", tu.Ts)
		}
	}
}

func TestFaultyDelayReorders(t *testing.T) {
	trace := mkTrace(10)
	t0 := time.Unix(0, 0).UTC()
	f := NewFaulty(NewReplay("r0", TypeMote, faultySchema, trace), 3,
		Fault{Kind: FaultDelay, Delay: 3 * time.Second, From: t0.Add(2 * time.Second), Until: t0.Add(5 * time.Second)})
	got := pollAll(f, 20)
	if len(got) != len(trace) {
		t.Fatalf("delay lost tuples: %d vs %d", len(got), len(trace))
	}
	// Tuples at 2,3,4s are released 3s late, after fresher readings.
	order := make([]int, len(got))
	for i, tu := range got {
		order[i] = int(tu.Ts.Sub(t0) / time.Second)
	}
	want := []int{1, 3, 4, 2, 5, 6, 3, 7, 4, 8, 9, 10}
	_ = want // release order depends on hold arithmetic; assert reordering only
	sorted := true
	for i := 1; i < len(order); i++ {
		if order[i] < order[i-1] {
			sorted = false
		}
	}
	if sorted {
		t.Fatalf("delay fault did not reorder the stream: %v", order)
	}
}

func TestFaultyPanicWindowAndDie(t *testing.T) {
	trace := mkTrace(10)
	t0 := time.Unix(0, 0).UTC()
	f := NewFaulty(NewReplay("r0", TypeMote, faultySchema, trace), 3,
		Fault{Kind: FaultPanic, From: t0.Add(3 * time.Second), Until: t0.Add(5 * time.Second)})
	mustPanic := func(at time.Duration, want bool) {
		t.Helper()
		panicked := false
		func() {
			defer func() {
				if r := recover(); r != nil {
					panicked = true
					if !strings.Contains(r.(string), "r0") {
						t.Fatalf("panic message lacks receptor ID: %v", r)
					}
				}
			}()
			f.Poll(t0.Add(at))
		}()
		if panicked != want {
			t.Fatalf("Poll at +%v: panicked=%v, want %v", at, panicked, want)
		}
	}
	mustPanic(1*time.Second, false)
	mustPanic(3*time.Second, true)
	mustPanic(4*time.Second, true)
	mustPanic(5*time.Second, false) // window closed: recovered

	d := NewFaulty(NewReplay("r1", TypeMote, faultySchema, mkTrace(10)), 3,
		Fault{Kind: FaultDie, From: t0.Add(3 * time.Second), Until: t0.Add(4 * time.Second)})
	d.Poll(t0.Add(1 * time.Second))
	for _, at := range []time.Duration{3 * time.Second, 9 * time.Second} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("FaultDie did not panic at +%v", at)
				}
			}()
			d.Poll(t0.Add(at))
		}()
	}
}

func TestFaultySlowPollUsesSleeper(t *testing.T) {
	t0 := time.Unix(0, 0).UTC()
	f := NewFaulty(NewReplay("r0", TypeMote, faultySchema, mkTrace(5)), 3,
		Fault{Kind: FaultSlowPoll, Sleep: 42 * time.Millisecond, From: t0.Add(2 * time.Second), Until: t0.Add(4 * time.Second)})
	var slept []time.Duration
	f.SleepFn = func(d time.Duration) { slept = append(slept, d) }
	pollAll(f, 5)
	if len(slept) != 2 || slept[0] != 42*time.Millisecond {
		t.Fatalf("slow-poll slept %v, want two 42ms sleeps", slept)
	}
}

func TestChannelBoundDropsOldest(t *testing.T) {
	c := NewChannel("ch0", TypeMote, faultySchema)
	if c.Cap() != DefaultChannelCap {
		t.Fatalf("default cap = %d", c.Cap())
	}
	c.SetCap(3)
	t0 := time.Unix(0, 0).UTC()
	for i := 1; i <= 5; i++ {
		c.Publish(stream.NewTuple(t0.Add(time.Duration(i)*time.Second), stream.Float(float64(i))))
	}
	if got := c.Dropped(); got != 2 {
		t.Fatalf("Dropped = %d, want 2", got)
	}
	out := c.Poll(t0.Add(10 * time.Second))
	if len(out) != 3 || out[0].Values[0].AsFloat() != 3 {
		t.Fatalf("oldest-drop violated: %v", out)
	}
	// Shrinking below backlog evicts immediately.
	for i := 1; i <= 3; i++ {
		c.Publish(stream.NewTuple(t0.Add(time.Duration(i)*time.Minute), stream.Float(float64(i))))
	}
	c.SetCap(1)
	if c.Pending() != 1 {
		t.Fatalf("SetCap did not evict: pending %d", c.Pending())
	}
	if c.Dropped() != 4 {
		t.Fatalf("Dropped = %d, want 4", c.Dropped())
	}
	c.SetCap(0)
	if c.Cap() != DefaultChannelCap {
		t.Fatalf("SetCap(0) should restore default, got %d", c.Cap())
	}
}
