package server

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"esp/internal/stream"
	"esp/internal/wire"
)

// testSpec is a two-reader RFID shelf deployment: Point filters bad
// checksums, Smooth counts per tag over 5 s, Arbitrate picks the
// majority shelf — the paper's running example, served.
func testSpec(extra string) []byte {
	return []byte(`{
	  "deployment": {
	    "epoch": "1s",
	    "groups": {
	      "shelf0": {"type": "rfid", "members": ["reader0"]},
	      "shelf1": {"type": "rfid", "members": ["reader1"]}
	    },
	    "pipelines": {
	      "rfid": {
	        "point": "SELECT tag_id FROM point_input WHERE checksum_ok = TRUE",
	        "smooth": "SELECT tag_id, count(*) AS n FROM smooth_input [Range By '5 sec'] GROUP BY tag_id",
	        "arbitrate": "SELECT spatial_granule, tag_id FROM arb ai1 [Range By 'NOW'] GROUP BY spatial_granule, tag_id HAVING sum(n) >= ALL(SELECT sum(n) FROM arb ai2 [Range By 'NOW'] WHERE ai1.tag_id = ai2.tag_id GROUP BY spatial_granule)"
	      }
	    }
	  },
	  "receptors": [
	    {"id": "reader0", "type": "rfid", "schema": "tag_id:string,checksum_ok:bool"},
	    {"id": "reader1", "type": "rfid", "schema": "tag_id:string,checksum_ok:bool"}
	  ]` + extra + `
	}`)
}

func at(sec float64) time.Time {
	return time.Unix(0, int64(sec*float64(time.Second))).UTC()
}

func read(sec float64, tag string, ok bool) stream.Tuple {
	return stream.Tuple{Ts: at(sec), Values: []stream.Value{stream.String(tag), stream.Bool(ok)}}
}

// startServer brings up a TCP server (and optionally metrics) for one
// test, with Shutdown on cleanup.
func startServer(t *testing.T, metrics bool) *Server {
	t.Helper()
	cfg := Config{Addr: "127.0.0.1:0"}
	if metrics {
		cfg.MetricsAddr = "127.0.0.1:0"
	}
	s, err := Listen(cfg)
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve() //nolint:errcheck
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return s
}

func dial(t *testing.T, s *Server) *Client {
	t.Helper()
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestServerLifecycle(t *testing.T) {
	s := startServer(t, false)
	ctl := dial(t, s)
	if err := ctl.Create("acme", testSpec("")); err != nil {
		t.Fatal(err)
	}

	// Subscribe on a second connection before any data flows.
	subc := dial(t, s)
	if err := subc.Subscribe("acme", "rfid"); err != nil {
		t.Fatal(err)
	}

	// Tag X is read twice at shelf0, once at shelf1: arbitration should
	// place it on shelf0.
	if _, err := ctl.Publish("reader0", []stream.Tuple{read(0.2, "X", true), read(0.4, "X", true)}); err != nil {
		t.Fatal(err)
	}
	if _, err := ctl.Publish("reader1", []stream.Tuple{read(0.3, "X", true), read(0.6, "bad", false)}); err != nil {
		t.Fatal(err)
	}
	if err := ctl.Advance(at(1)); err != nil {
		t.Fatal(err)
	}

	d, _, done, err := subc.Next()
	if err != nil || done {
		t.Fatalf("Next: %v (done=%v)", err, done)
	}
	if d.Stream != "rfid" || d.Epoch != at(1).UnixNano() {
		t.Fatalf("data = %+v", d)
	}
	if len(d.Tuples) != 1 || d.Tuples[0].Values[0] != stream.String("shelf0") {
		t.Fatalf("tuples = %v, want X arbitrated to shelf0", d.Tuples)
	}

	st, err := ctl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Tenant != "acme" || st.TuplesIn != 4 || st.Epochs != 1 || st.Subscribers != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestServerJSONPublish(t *testing.T) {
	s := startServer(t, false)
	bin := dial(t, s)
	if err := bin.Create("bin", testSpec("")); err != nil {
		t.Fatal(err)
	}
	jsn := dial(t, s)
	if err := jsn.Create("jsn", testSpec("")); err != nil {
		t.Fatal(err)
	}
	jsn.SetJSON(true)

	in := []stream.Tuple{read(0.2, "X", true), read(0.7, "Y", true)}
	run := func(c *Client, tenant string) wire.Data {
		sub := dial(t, s)
		if err := sub.Subscribe(tenant, "rfid"); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Publish("reader0", in); err != nil {
			t.Fatal(err)
		}
		if err := c.Advance(at(1)); err != nil {
			t.Fatal(err)
		}
		d, _, done, err := sub.Next()
		if err != nil || done {
			t.Fatalf("Next: %v (done=%v)", err, done)
		}
		return d
	}
	db, dj := run(bin, "bin"), run(jsn, "jsn")

	// The JSON fallback must be semantically identical to binary framing:
	// identical canonical re-encodings.
	fb, fj := NewFingerprint(), NewFingerprint()
	fb.Add(db)
	fj.Add(dj)
	if fb.Sum() != fj.Sum() {
		t.Errorf("JSON publish diverged from binary: %v vs %v", fj, fb)
	}
}

func TestServerQuotas(t *testing.T) {
	s := startServer(t, false)
	c := dial(t, s)
	spec := testSpec(`, "quota": {"channel_cap": 2, "max_publish_tuples": 4, "max_subscribers": 1}`)
	if err := c.Create("q", spec); err != nil {
		t.Fatal(err)
	}

	// Oversized publish frame: rejected outright.
	big := []stream.Tuple{read(0.1, "a", true), read(0.2, "b", true), read(0.3, "c", true), read(0.4, "d", true), read(0.5, "e", true)}
	if _, err := c.Publish("reader0", big); err == nil || !strings.Contains(err.Error(), "quota") {
		t.Fatalf("oversized publish: err = %v, want quota error", err)
	}

	// Within the frame quota but over the channel cap: oldest readings
	// evicted, reported in the ack.
	ack, err := c.Publish("reader0", big[:4])
	if err != nil {
		t.Fatal(err)
	}
	if ack.Cap != 2 || ack.Pending != 2 || ack.Dropped != 2 {
		t.Errorf("ack = %+v, want cap=2 pending=2 dropped=2", ack)
	}

	// Subscriber quota.
	s1 := dial(t, s)
	if err := s1.Subscribe("q", "rfid"); err != nil {
		t.Fatal(err)
	}
	s2 := dial(t, s)
	if err := s2.Subscribe("q", "rfid"); err == nil || !strings.Contains(err.Error(), "quota") {
		t.Fatalf("second subscriber: err = %v, want quota error", err)
	}

	// Unknown receptor and unknown tenant are errors, not disconnects.
	if _, err := c.Publish("nope", big[:1]); err == nil {
		t.Error("publish to unknown receptor: want error")
	}
	if err := dial(t, s).Hello("ghost", "pub"); err == nil {
		t.Error("hello to unknown tenant: want error")
	}
	// The control connection survived all of the above.
	if _, err := c.Stats(); err != nil {
		t.Errorf("stats after errors: %v", err)
	}
}

// TestServerGracefulDrain is the no-lost-epochs check: readings are
// published but NOT advanced past, then the server shuts down. The
// drain must commit the in-flight epochs, deliver them to the live
// subscriber, and only then close the connection with a Drain frame
// carrying the final committed epoch.
func TestServerGracefulDrain(t *testing.T) {
	s := startServer(t, false)
	c := dial(t, s)
	if err := c.Create("drainy", testSpec("")); err != nil {
		t.Fatal(err)
	}
	sub := dial(t, s)
	if err := sub.Subscribe("drainy", "rfid"); err != nil {
		t.Fatal(err)
	}

	// Epoch 1 committed normally; epochs 2 and 3 left in flight.
	if _, err := c.Publish("reader0", []stream.Tuple{read(0.2, "X", true)}); err != nil {
		t.Fatal(err)
	}
	if err := c.Advance(at(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Publish("reader0", []stream.Tuple{read(1.2, "X", true), read(2.4, "Y", true)}); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	var epochs []int64
	var final int64
	for {
		d, f, done, err := sub.Next()
		if err != nil {
			t.Fatalf("Next: %v (epochs so far %v)", err, epochs)
		}
		if done {
			final = f
			break
		}
		epochs = append(epochs, d.Epoch)
	}
	want := []int64{at(1).UnixNano(), at(2).UnixNano(), at(3).UnixNano()}
	if len(epochs) != len(want) {
		t.Fatalf("epochs = %v, want %v", epochs, want)
	}
	for i := range want {
		if epochs[i] != want[i] {
			t.Fatalf("epochs = %v, want %v", epochs, want)
		}
	}
	if final != at(3).UnixNano() {
		t.Errorf("final epoch = %d, want %d", final, at(3).UnixNano())
	}
}

// TestServerOracleDifferential drives the identical spec and workload
// through an in-process Engine and through the TCP server, and demands
// byte-identical output — the serving layer must add framing, not
// semantics.
func TestServerOracleDifferential(t *testing.T) {
	type pub struct {
		rec string
		ts  []stream.Tuple
	}
	type step struct {
		pubs []pub
		now  time.Time
	}
	var script []step
	for e := 0; e < 20; e++ {
		base := float64(e)
		script = append(script, step{
			pubs: []pub{
				{"reader0", []stream.Tuple{
					read(base+0.1, fmt.Sprintf("tag%d", e%3), true),
					read(base+0.3, "tag0", true),
					read(base+0.5, "junk", false),
				}},
				{"reader1", []stream.Tuple{
					read(base+0.2, fmt.Sprintf("tag%d", e%3), e%2 == 0),
				}},
			},
			now: at(base + 1),
		})
	}

	// Oracle: in-process Engine, no sockets.
	eng := NewEngine(0)
	ten, err := eng.Create("oracle", testSpec(""))
	if err != nil {
		t.Fatal(err)
	}
	osub, err := ten.Subscribe("rfid")
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range script {
		for _, p := range st.pubs {
			if _, err := ten.Publish(p.rec, p.ts); err != nil {
				t.Fatal(err)
			}
		}
		if err := ten.Advance(st.now); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.DrainAll(); err != nil {
		t.Fatal(err)
	}
	want := NewFingerprint()
	for d := range osub.C() {
		want.Add(d)
	}

	// Candidate: the same workload through TCP.
	s := startServer(t, false)
	c := dial(t, s)
	if err := c.Create("served", testSpec("")); err != nil {
		t.Fatal(err)
	}
	sub := dial(t, s)
	if err := sub.Subscribe("served", "rfid"); err != nil {
		t.Fatal(err)
	}
	for _, st := range script {
		for _, p := range st.pubs {
			if _, err := c.Publish(p.rec, p.ts); err != nil {
				t.Fatal(err)
			}
		}
		if err := c.Advance(st.now); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	got := NewFingerprint()
	for {
		d, _, done, err := sub.Next()
		if err != nil {
			t.Fatal(err)
		}
		if done {
			break
		}
		got.Add(d)
	}

	if want.Frames() == 0 || want.Tuples() == 0 {
		t.Fatalf("oracle produced no output: %v", want)
	}
	if got.Sum() != want.Sum() || got.Frames() != want.Frames() || got.Tuples() != want.Tuples() {
		t.Errorf("served output %v != in-process oracle %v", got, want)
	}
}

func TestServerAlterReplacesPipeline(t *testing.T) {
	eng := NewEngine(0)
	if _, err := eng.Create("t", testSpec("")); err != nil {
		t.Fatal(err)
	}
	t1, _ := eng.Tenant("t")
	// Resubmitting the spec drains the old pipeline and swaps in a new one.
	if _, err := eng.Create("t", testSpec("")); err != nil {
		t.Fatal(err)
	}
	t2, _ := eng.Tenant("t")
	if t1 == t2 {
		t.Fatal("alter did not replace the tenant")
	}
	if _, err := t1.Publish("reader0", []stream.Tuple{read(0.1, "X", true)}); err != nil {
		t.Error("old tenant's channels should still accept (frozen) publishes after drain")
	}
	if err := t1.Advance(at(1)); err == nil {
		t.Error("old tenant should refuse Advance after drain")
	}
	if _, err := t2.Publish("reader0", []stream.Tuple{read(0.1, "X", true)}); err != nil {
		t.Errorf("new tenant publish: %v", err)
	}
}

func TestServerTenantLimit(t *testing.T) {
	eng := NewEngine(1)
	if _, err := eng.Create("a", testSpec("")); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Create("b", testSpec("")); err == nil || !strings.Contains(err.Error(), "limit") {
		t.Fatalf("err = %v, want tenant limit", err)
	}
	// Alter of an existing tenant is allowed at the limit.
	if _, err := eng.Create("a", testSpec("")); err != nil {
		t.Fatal(err)
	}
}

func TestServerMetricsExposeTenants(t *testing.T) {
	s := startServer(t, true)
	c := dial(t, s)
	if err := c.Create("metered", testSpec("")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Publish("reader0", []stream.Tuple{read(0.2, "X", true)}); err != nil {
		t.Fatal(err)
	}
	if err := c.Advance(at(1)); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(s.MetricsURL() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	for _, want := range []string{
		"esp_server_conns_total",
		"esp_server_tenants 1",
		"esp_tenant_metered_serve_tuples_in_total 1",
		"esp_tenant_metered_serve_epochs_total 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q\n%s", want, text)
		}
	}
}

func TestSpecErrors(t *testing.T) {
	cases := []struct {
		name string
		spec string
	}{
		{"bad json", `{`},
		{"no deployment", `{"receptors": [{"id": "r", "type": "rfid", "schema": "a:int"}]}`},
		{"no receptors", `{"deployment": {"epoch": "1s", "groups": {"g": {"type": "rfid", "members": ["r"]}}}}`},
		{"receptor missing schema", `{"deployment": {"epoch": "1s", "groups": {"g": {"type": "rfid", "members": ["r"]}}},
			"receptors": [{"id": "r", "type": "rfid"}]}`},
		{"duplicate receptor", `{"deployment": {"epoch": "1s", "groups": {"g": {"type": "rfid", "members": ["r"]}}},
			"receptors": [{"id": "r", "type": "rfid", "schema": "a:int"}, {"id": "r", "type": "rfid", "schema": "a:int"}]}`},
		{"bad schema kind", `{"deployment": {"epoch": "1s", "groups": {"g": {"type": "rfid", "members": ["r"]}}},
			"receptors": [{"id": "r", "type": "rfid", "schema": "a:blob"}]}`},
		{"bad start", `{"deployment": {"epoch": "1s", "groups": {"g": {"type": "rfid", "members": ["r"]}}},
			"receptors": [{"id": "r", "type": "rfid", "schema": "a:int"}], "start": "yesterday"}`},
	}
	for _, tc := range cases {
		if _, err := parseSpec([]byte(tc.spec)); err == nil {
			t.Errorf("%s: want error", tc.name)
		}
	}
	eng := NewEngine(0)
	if _, err := eng.Create("", testSpec("")); err == nil {
		t.Error("empty tenant name: want error")
	}
}
