package server

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"esp/internal/stream"
	"esp/internal/wire"
)

// Clock abstracts the resilient client's view of time so retry and
// backoff behavior is deterministic under test: a fake clock records
// the sleeps instead of taking them.
type Clock interface {
	Now() time.Time
	Sleep(d time.Duration)
}

type realClock struct{}

func (realClock) Now() time.Time        { return time.Now() }
func (realClock) Sleep(d time.Duration) { time.Sleep(d) }

// RetryPolicy bounds the resilient client's reconnect behavior. Zero
// values mean the default.
type RetryPolicy struct {
	// MaxAttempts bounds connection attempts per call (default 8); the
	// call fails with the last transport error after that.
	MaxAttempts int
	// BaseBackoff is the first retry delay (default 50ms); successive
	// delays double up to MaxBackoff (default 2s).
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// Seed seeds the backoff jitter — each delay is scaled by a factor
	// in [0.5, 1.0) — so two clients never reconnect in lockstep, yet a
	// fixed seed replays the exact delay sequence.
	Seed int64
	// CallTimeout bounds one request/reply round trip (default 10s); a
	// call that exceeds it is treated as a transport fault and retried
	// on a fresh connection.
	CallTimeout time.Duration
	// ReadTimeout bounds one Next wait (0 = wait forever). Set it when
	// a stalled link must be detected between epochs — a half-open
	// subscriber socket delivers nothing and times out instead of
	// hanging.
	ReadTimeout time.Duration
	// Clock supplies time (default: the real clock).
	Clock Clock
}

func (p RetryPolicy) maxAttempts() int {
	if p.MaxAttempts > 0 {
		return p.MaxAttempts
	}
	return 8
}

func (p RetryPolicy) base() time.Duration {
	if p.BaseBackoff > 0 {
		return p.BaseBackoff
	}
	return 50 * time.Millisecond
}

func (p RetryPolicy) backoffCap() time.Duration {
	if p.MaxBackoff > 0 {
		return p.MaxBackoff
	}
	return 2 * time.Second
}

func (p RetryPolicy) clock() Clock {
	if p.Clock != nil {
		return p.Clock
	}
	return realClock{}
}

// ResilientClient is a Client that survives its connection: transport
// faults are retried on a fresh connection with capped exponential
// backoff, and the session protocol makes the retries exactly-once —
// publishes are replayed under their original seq (the server dedups),
// advances are idempotent, and a subscriber resumes from its last
// delivered epoch. Not safe for concurrent use, like Client.
type ResilientClient struct {
	addr    string
	tenant  string
	session string
	pol     RetryPolicy
	clk     Clock
	rng     *rand.Rand

	c   *Client // live connection, nil while down
	seq uint64  // session seq: strictly increasing across publishes and advances

	// Subscriber state (set by Subscribe; drives resume on reconnect).
	stream        string
	subscribed    bool
	lastDelivered int64

	reconnects int64
}

// DialResilient connects to an espd address under a resumable session
// identity. The session name is the client's identity across
// reconnects: pick one stable name per logical publisher. An empty
// session is allowed for subscribe-only clients (resume then rides on
// the subscribe cursor alone).
func DialResilient(addr, tenant, session string, pol RetryPolicy) (*ResilientClient, error) {
	r := &ResilientClient{
		addr:    addr,
		tenant:  tenant,
		session: session,
		pol:     pol,
		clk:     pol.clock(),
		rng:     rand.New(rand.NewSource(pol.Seed)),
	}
	if err := r.withRetry("connect", func() error { return nil }); err != nil {
		return nil, err
	}
	return r, nil
}

// Close closes the live connection, if any.
func (r *ResilientClient) Close() error {
	if r.c == nil {
		return nil
	}
	err := r.c.Close()
	r.c = nil
	return err
}

// Reconnects reports how many times the client has replaced a dead
// connection.
func (r *ResilientClient) Reconnects() int64 { return r.reconnects }

// LastDelivered reports the subscriber resume cursor: the epoch of the
// last Data frame Next returned.
func (r *ResilientClient) LastDelivered() int64 { return r.lastDelivered }

// connect establishes a fresh connection and replays the session
// handshake (and the subscription, when this client is a subscriber).
func (r *ResilientClient) connect() error {
	c, err := Dial(r.addr)
	if err != nil {
		return err
	}
	r.armDeadline(c)
	if r.session != "" {
		ack, err := c.HelloSession(r.tenant, "pub", r.session, r.lastDelivered)
		if err != nil {
			return err // HelloSession closed the conn
		}
		if ack.Seq > r.seq {
			// The server knows more of this session than we do (a
			// predecessor process wrote under the same name): continue
			// above its high-water mark instead of colliding with it.
			r.seq = ack.Seq
		}
	} else if err := c.Hello(r.tenant, "sub"); err != nil {
		return err // Hello closed the conn
	}
	if r.subscribed {
		if _, err := c.SubscribeFrom(r.tenant, r.stream, r.cursor()); err != nil {
			c.Close()
			return err
		}
		c.subscribedConn = true
	}
	r.clearDeadline(c)
	r.c = c
	return nil
}

// drop discards a connection the transport gave up on.
func (r *ResilientClient) drop() {
	if r.c != nil {
		r.c.Close()
		r.c = nil
	}
}

// backoff sleeps before retry attempt k (1-based): base doubling per
// attempt, capped, scaled by seeded jitter in [0.5, 1.0).
func (r *ResilientClient) backoff(attempt int) {
	d := r.pol.base() << (attempt - 1)
	if cap := r.pol.backoffCap(); d <= 0 || d > cap {
		d = cap
	}
	jitter := 0.5 + 0.5*r.rng.Float64()
	r.clk.Sleep(time.Duration(float64(d) * jitter))
}

func (r *ResilientClient) callTimeout() time.Duration {
	if r.pol.CallTimeout > 0 {
		return r.pol.CallTimeout
	}
	return 10 * time.Second
}

func (r *ResilientClient) armDeadline(c *Client)   { _ = c.SetDeadline(r.clk.Now().Add(r.callTimeout())) }
func (r *ResilientClient) clearDeadline(c *Client) { _ = c.SetDeadline(time.Time{}) }

// withRetry runs op against a live connection, reconnecting (with
// backoff) on transport faults until it succeeds or attempts run out.
// Protocol errors from the server are returned immediately: the server
// answered, so resending the same frame would get the same answer.
func (r *ResilientClient) withRetry(what string, op func() error) error {
	var lastErr error
	for attempt := 0; attempt < r.pol.maxAttempts(); attempt++ {
		if attempt > 0 {
			r.backoff(attempt)
		}
		if r.c == nil {
			if err := r.connect(); err != nil {
				var se *ServerError
				if errors.As(err, &se) {
					return err
				}
				lastErr = err
				continue
			}
			if attempt > 0 {
				r.reconnects++
			}
		}
		err := op()
		if err == nil {
			return nil
		}
		var se *ServerError
		if errors.As(err, &se) {
			return err
		}
		lastErr = err
		r.drop()
	}
	return fmt.Errorf("server: %s: giving up after %d attempts: %w", what, r.pol.maxAttempts(), lastErr)
}

// Publish delivers readings for one receptor, surviving connection
// loss: the frame is replayed under the same seq until a live server
// acks it, and the server's session dedup guarantees at most one
// application no matter how many replays it took.
func (r *ResilientClient) Publish(receptorID string, ts []stream.Tuple) (wire.Ack, error) {
	r.seq++
	seq := r.seq
	var ack wire.Ack
	err := r.withRetry(fmt.Sprintf("publish seq %d", seq), func() error {
		r.armDeadline(r.c)
		a, err := r.c.PublishSeq(receptorID, seq, ts)
		r.clearDeadline(r.c)
		if err == nil {
			ack = a
		}
		return err
	})
	return ack, err
}

// Advance commits epoch boundaries up to now, surviving connection
// loss (replayed advances are idempotent server-side).
func (r *ResilientClient) Advance(now time.Time) error {
	r.seq++
	seq := r.seq
	return r.withRetry(fmt.Sprintf("advance seq %d", seq), func() error {
		r.armDeadline(r.c)
		err := r.c.AdvanceSeq(seq, now)
		r.clearDeadline(r.c)
		return err
	})
}

// Stats fetches the tenant's stats snapshot, surviving connection loss.
func (r *ResilientClient) Stats() (Stats, error) {
	var st Stats
	err := r.withRetry("stats", func() error {
		r.armDeadline(r.c)
		s, err := r.c.Stats()
		r.clearDeadline(r.c)
		if err == nil {
			st = s
		}
		return err
	})
	return st, err
}

// cursor is the resume position for a reconnecting subscriber: the
// last delivered epoch, or the from-genesis sentinel when the
// subscription attached at genesis and nothing has been delivered yet
// (0 on the wire would mean "live only" and open a gap).
func (r *ResilientClient) cursor() int64 {
	if r.lastDelivered == 0 {
		return -1
	}
	return r.lastDelivered
}

// Subscribe attaches the client to a tenant output stream. After this
// the connection is server-push: consume with Next. On every reconnect
// the subscription is resumed from the last delivered epoch (or the
// attach point, if nothing was delivered yet), so the frame sequence
// Next returns is gapless and duplicate-free across any number of
// connection deaths.
func (r *ResilientClient) Subscribe(streamName string) error {
	first := !r.subscribed
	r.stream = streamName
	r.subscribed = true
	return r.withRetry("subscribe", func() error {
		if r.c != nil && !r.c.subscribedConn {
			// The live connection predates the subscription: replay it.
			// The first attempt is a plain attach (live from here); any
			// retry after that resumes, because an attach whose ack was
			// lost may have taken effect server-side.
			from := int64(0)
			if !first {
				from = r.cursor()
			}
			first = false
			r.armDeadline(r.c)
			attached, err := r.c.SubscribeFrom(r.tenant, r.stream, from)
			r.clearDeadline(r.c)
			if err != nil {
				return err
			}
			if from == 0 && attached > r.lastDelivered {
				// Live-only attach mid-stream: the contract starts at the
				// attach epoch, so resume later from there, not genesis.
				r.lastDelivered = attached
			}
		}
		r.c.subscribedConn = true
		return nil
	})
}

// Next reads the next Data frame on a subscribed client, reconnecting
// and resuming through faults. done reports a graceful end of stream.
func (r *ResilientClient) Next() (d wire.Data, final int64, done bool, err error) {
	err = r.withRetry("next", func() error {
		if r.pol.ReadTimeout > 0 {
			_ = r.c.SetReadDeadline(r.clk.Now().Add(r.pol.ReadTimeout))
		}
		for {
			nd, nfinal, ndone, nerr := r.c.Next()
			if nerr != nil {
				return nerr
			}
			if ndone {
				final, done = nfinal, true
				return nil
			}
			if nd.Epoch <= r.lastDelivered {
				continue // duplicate from a resume race; drop silently
			}
			r.lastDelivered = nd.Epoch
			d = nd
			return nil
		}
	})
	return d, final, done, err
}
