package server

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"esp/internal/core"
	"esp/internal/receptor"
	"esp/internal/stream"
	"esp/internal/telemetry"
	"esp/internal/wal"
	"esp/internal/wire"
)

// VirtualizeStream is the subscribe name of the cross-type Virtualize
// output (type streams subscribe under their type name).
const VirtualizeStream = "virtualize"

// Tenant hosts one deployment: a core.Processor, its receptor channels,
// an epoch clock driven by Advance frames, and the tenant's
// subscribers. A single actor goroutine owns the processor — publishes
// go straight to the (thread-safe) channels, but every Step and every
// subscriber mutation is serialized through the mailbox, which is what
// makes a tenant's output deterministic no matter how many connections
// feed it.
type Tenant struct {
	name  string
	epoch time.Duration
	proc  *core.Processor
	chans map[string]*receptor.Channel
	quota Quota
	reg   *telemetry.Registry

	cmds chan func()
	quit chan struct{} // closed by the drain command; tells loop to exit
	done chan struct{} // closed when loop has exited

	// jl, when non-nil, is the tenant's write-ahead log: publishes are
	// journalled before they are acked, and every committed epoch ends
	// with a fsynced barrier. recovered carries what Open found in an
	// existing journal (nil when the tenant started fresh).
	jl        *wal.Log
	recovered *wal.Recovery

	// Actor-owned state (touched only inside mailbox commands).
	last      time.Time                 // latest committed epoch boundary
	pending   map[string][]stream.Tuple // per-stream output buffered during a Step
	subs      []*subscriber
	drained   bool
	replaying bool // inside boot replay: suppress re-journalling

	// Retention ring for subscriber resume (actor-owned): the last
	// resumeHorizon() output-bearing epochs' Data frames, plus the
	// newest epoch evicted from it (resumes from at or before
	// evictedThrough must go to the archive instead).
	retained       []retainedEpoch
	evictedThrough int64

	// Publisher session table, guarded by its own lock (publishes
	// bypass the actor).
	sessMu   sync.Mutex
	sessions map[string]*session

	// Telemetry counters (atomic; readable from any goroutine).
	tuplesIn   *telemetry.Counter
	framesIn   *telemetry.Counter
	epochs     *telemetry.Counter
	dataOut    *telemetry.Counter
	subKicked  *telemetry.Counter
	reconnects *telemetry.Counter
	resumes    *telemetry.Counter
	dedupDrops *telemetry.Counter
	idleKills  *telemetry.Counter
}

// subscriber is one attached output consumer. Its channel is bounded: a
// consumer that stops reading is kicked (closed with lost=true) rather
// than allowed to stall the tenant's epoch clock.
type subscriber struct {
	stream string
	ch     chan wire.Data
	final  int64 // set before ch is closed on drain: last committed epoch
	lost   bool  // kicked for falling behind
}

// newTenant compiles a spec and starts the tenant actor. The tenant's
// registry is the processor's own, extended with the serve_* counters,
// so one exposition block carries both pipeline and serving telemetry.
//
// walDir, when non-empty, is this tenant's log directory: the journal
// in it is scanned (truncating any torn or uncommitted tail), its
// committed epochs are replayed through the fresh processor before the
// actor starts — rebuilding window state exactly, by the
// replay-commute property the oracle proves — and the log stays open
// for the tenant's own journalling.
func newTenant(name string, ps *parsedSpec, walDir string, walNoSync bool) (*Tenant, error) {
	proc, err := core.NewProcessor(ps.dep)
	if err != nil {
		return nil, err
	}
	proc.EnableTelemetry()
	t := &Tenant{
		name:    name,
		epoch:   ps.dep.Epoch,
		proc:    proc,
		chans:   ps.chans,
		quota:   ps.quota,
		reg:     proc.Telemetry(),
		cmds:    make(chan func()),
		quit:    make(chan struct{}),
		done:    make(chan struct{}),
		last:     ps.start,
		pending:  make(map[string][]stream.Tuple),
		sessions: make(map[string]*session),
	}
	t.tuplesIn = t.reg.Counter("serve_tuples_in")
	t.framesIn = t.reg.Counter("serve_publish_frames")
	t.epochs = t.reg.Counter("serve_epochs")
	t.dataOut = t.reg.Counter("serve_data_frames")
	t.subKicked = t.reg.Counter("serve_subscribers_kicked")
	t.reconnects = t.reg.Counter("serve_reconnects")
	t.resumes = t.reg.Counter("serve_resumes")
	t.dedupDrops = t.reg.Counter("serve_dedup_drops")
	t.idleKills = t.reg.Counter("conn_idle_kills")
	t.reg.GaugeFunc("serve_backlog", func() int64 {
		var n int64
		for _, ch := range t.chans {
			n += int64(ch.Pending())
		}
		return n
	})

	// Deterministic sink registration order: sorted type names, then
	// virtualize. Sinks run inside Step (actor goroutine), appending to
	// the per-stream buffers the actor flushes after the Step returns.
	seen := make(map[string]bool)
	var types []string
	for _, gn := range ps.dep.Groups.Names() {
		g, _ := ps.dep.Groups.Group(gn)
		if tn := string(g.Type); !seen[tn] {
			seen[tn] = true
			types = append(types, tn)
		}
	}
	sort.Strings(types)
	for _, tn := range types {
		tn := tn
		proc.OnType(receptor.Type(tn), func(tu stream.Tuple) {
			t.pending[tn] = append(t.pending[tn], tu)
		})
	}
	if ps.dep.Virtualize != nil {
		proc.OnVirtualize(func(tu stream.Tuple) {
			t.pending[VirtualizeStream] = append(t.pending[VirtualizeStream], tu)
		})
	}

	if walDir != "" {
		jl, rec, err := wal.Open(wal.Options{Dir: walDir, Source: name, Registry: t.reg, NoSync: walNoSync})
		if err != nil {
			return nil, fmt.Errorf("server: tenant %q: wal: %w", name, err)
		}
		t.jl = jl
		if !rec.Empty() {
			t.recovered = rec
			if err := t.replay(rec); err != nil {
				jl.Crash() // leave the catalog uncompleted; the journal is untouched
				return nil, err
			}
		}
	}

	go t.loop()
	return t, nil
}

// replay drives the recovered history through the processor before the
// actor starts (no concurrency yet, so the actor-owned state is safe
// to touch directly). Publishes go to the same channels in journal
// order and every barrier commits through the same stepLocked path, so
// the rebuilt state is byte-identical to the pre-crash run's — only
// re-journalling and the fsync are suppressed, and with no subscribers
// attached yet nothing is delivered twice.
func (t *Tenant) replay(rec *wal.Recovery) error {
	replayedEpochs := t.reg.Counter("wal_replayed_epochs")
	replayedTuples := t.reg.Counter("wal_replayed_tuples")
	t.replaying = true
	defer func() { t.replaying = false }()
	for _, ep := range rec.Epochs {
		for _, p := range ep.Publishes {
			ch, ok := t.chans[p.Receptor]
			if !ok {
				return fmt.Errorf("server: tenant %q: journal names unknown receptor %q (spec drift?)", t.name, p.Receptor)
			}
			ch.PublishAll(p.Tuples)
			replayedTuples.Add(int64(len(p.Tuples)))
		}
		if err := t.stepLocked(ep.Boundary); err != nil {
			return fmt.Errorf("server: tenant %q: replay: %w", t.name, err)
		}
		replayedEpochs.Add(1)
	}
	return nil
}

// Recovered reports what boot recovery replayed (nil when the tenant
// started fresh or journalling is off).
func (t *Tenant) Recovered() *wal.Recovery { return t.recovered }

func (t *Tenant) loop() {
	defer close(t.done)
	for {
		// quit is closed synchronously by the drain command (below, on
		// this goroutine), so this check deterministically stops the
		// loop before any command that raced with the drain can run.
		select {
		case <-t.quit:
			return
		default:
		}
		select {
		case fn := <-t.cmds:
			fn()
		case <-t.quit:
			return
		}
	}
}

// do runs fn on the actor goroutine and waits for it. The mailbox is
// never closed — after drain the loop has exited (done is closed) and
// senders fall through to the error arm; a command that slipped in just
// before the drain is rejected by the drained check on the actor.
func (t *Tenant) do(fn func() error) error {
	drainedErr := fmt.Errorf("server: tenant %q is drained", t.name)
	errc := make(chan error, 1)
	select {
	case t.cmds <- func() {
		if t.drained {
			errc <- drainedErr
			return
		}
		errc <- fn()
	}:
		// A successful send means the loop received the closure and will
		// run it before it can exit.
		return <-errc
	case <-t.done:
		return drainedErr
	}
}

// Name reports the tenant name.
func (t *Tenant) Name() string { return t.name }

// Epoch reports the tenant's punctuation period.
func (t *Tenant) Epoch() time.Duration { return t.epoch }

// Registry exposes the tenant's telemetry registry (the processor's own
// registry plus the serve_* counters) for exposition.
func (t *Tenant) Registry() *telemetry.Registry { return t.reg }

// Publish appends readings to one receptor channel and reports the
// channel's backpressure state. It does not pass through the actor —
// channels are thread-safe and eviction at the cap bounds memory — so
// publishers on many connections never serialize behind a Step.
func (t *Tenant) Publish(rec string, ts []stream.Tuple) (wire.Ack, error) {
	ch, ok := t.chans[rec]
	if !ok {
		return wire.Ack{}, fmt.Errorf("server: tenant %q has no receptor %q", t.name, rec)
	}
	if max := t.quota.maxPublishTuples(); len(ts) > max {
		return wire.Ack{}, fmt.Errorf("server: publish of %d tuples exceeds tenant quota %d", len(ts), max)
	}
	if t.jl != nil {
		// Journal before ack. The channel publish runs under the log's
		// lock so journal order and channel order agree even with
		// concurrent publishers — what makes replay byte-identical.
		// The record is durable at the next commit barrier; a crash
		// before then loses it, which is the documented contract:
		// clients re-send everything after the last committed epoch.
		if err := t.jl.Journal(rec, ts, func() { ch.PublishAll(ts) }); err != nil {
			return wire.Ack{}, fmt.Errorf("server: tenant %q: journal: %w", t.name, err)
		}
	} else {
		ch.PublishAll(ts)
	}
	t.framesIn.Add(1)
	t.tuplesIn.Add(int64(len(ts)))
	return wire.Ack{
		Pending: int64(ch.Pending()),
		Cap:     int64(ch.Cap()),
		Dropped: ch.Dropped(),
	}, nil
}

// Advance commits every epoch boundary in (last, now]: for each one the
// processor polls the channels and steps the pipeline, and the
// boundary's output is flushed to subscribers before the next boundary
// runs. Advance returns after the last boundary has committed — it is
// the client-visible epoch barrier.
func (t *Tenant) Advance(now time.Time) error {
	return t.do(func() error { return t.advanceLocked(now.UTC()) })
}

// advanceLocked runs on the actor goroutine.
func (t *Tenant) advanceLocked(now time.Time) error {
	for b := t.last.Add(t.epoch); !b.After(now); b = b.Add(t.epoch) {
		if err := t.stepLocked(b); err != nil {
			return err
		}
	}
	return nil
}

// stepLocked commits one epoch boundary and flushes its output. With a
// WAL attached the barrier is made durable (archive the epoch's
// output, append the journal barrier, fsync) before subscribers see
// the epoch — an advance ack therefore guarantees the epoch survives
// a crash. During boot replay the barrier already exists on disk, so
// only lost archive records are regenerated.
func (t *Tenant) stepLocked(b time.Time) error {
	if err := t.proc.Step(b); err != nil {
		return fmt.Errorf("server: tenant %q: %w", t.name, err)
	}
	t.last = b
	t.epochs.Add(1)
	if t.jl != nil {
		var err error
		if t.replaying {
			err = t.jl.ReplayCommit(b, t.pending)
		} else {
			err = t.jl.Commit(b, t.pending)
		}
		if err != nil {
			return fmt.Errorf("server: tenant %q: wal: %w", t.name, err)
		}
	}
	t.flushLocked(b)
	return nil
}

// flushLocked hands the epoch's buffered output to the subscribers and
// appends it to the retention ring. Each stream's frame is built once
// and shared — subscribers, the ring, and resume backlogs all read the
// same immutable Data value.
func (t *Tenant) flushLocked(b time.Time) {
	if len(t.pending) == 0 {
		return
	}
	epoch := b.UnixNano()
	var names []string
	for name, out := range t.pending {
		if len(out) > 0 {
			names = append(names, name)
		}
	}
	if len(names) == 0 {
		return
	}
	sort.Strings(names)
	frames := make(map[string]wire.Data, len(names))
	ordered := make([]wire.Data, 0, len(names))
	for _, name := range names {
		d := wire.Data{Stream: name, Epoch: epoch, Tuples: append([]stream.Tuple(nil), t.pending[name]...)}
		frames[name] = d
		ordered = append(ordered, d)
	}
	t.retainLocked(epoch, ordered)
	keep := t.subs[:0]
	for _, sub := range t.subs {
		d, ok := frames[sub.stream]
		if !ok {
			keep = append(keep, sub)
			continue
		}
		select {
		case sub.ch <- d:
			t.dataOut.Add(1)
			keep = append(keep, sub)
		default:
			// The consumer is a full buffer behind: kick it rather than
			// stall the tenant's epoch clock.
			sub.lost = true
			close(sub.ch)
			t.subKicked.Add(1)
		}
	}
	t.subs = keep
	for k := range t.pending {
		t.pending[k] = t.pending[k][:0]
	}
}

// Subscribe attaches a consumer to one of the tenant's output streams
// (a receptor type name, or VirtualizeStream). The returned channel
// delivers one Data frame per committed epoch with output; it is closed
// after drain (Final reports the final committed epoch) or when the
// consumer is kicked for falling behind (Lost).
func (t *Tenant) Subscribe(streamName string) (*Subscription, error) {
	sub, _, err := t.ResumeSubscribe(streamName, 0)
	return sub, err
}

// Unsubscribe detaches a subscriber (consumer-initiated close).
func (t *Tenant) unsubscribe(target *subscriber) {
	_ = t.do(func() error {
		for i, sub := range t.subs {
			if sub == target {
				t.subs = append(t.subs[:i], t.subs[i+1:]...)
				close(sub.ch)
				return nil
			}
		}
		return nil
	})
}

// Drain gracefully stops the tenant: every reading already published is
// committed (the clock advances past the newest pending timestamp), the
// final epoch is flushed, subscribers are closed with the final epoch
// recorded, and the actor exits. No committed epoch is lost: drain runs
// through the same mailbox as Advance, so it cannot overtake an epoch
// in flight. Idempotent.
func (t *Tenant) Drain() error {
	var err error
	t.drainOnce(func() {
		err = t.drainLocked()
	})
	return err
}

// drainOnce runs fn on the actor and stops the loop, exactly once.
func (t *Tenant) drainOnce(fn func()) {
	done := make(chan struct{})
	select {
	case t.cmds <- func() {
		defer close(done)
		if !t.drained {
			t.drained = true
			fn()
			close(t.quit)
		}
	}:
		<-done
		<-t.done
	case <-t.done:
	}
}

// maxDrainEpochs bounds how many boundaries a drain will commit while
// chasing pending readings, so a hostile far-future timestamp cannot
// spin the drain forever. Readings beyond the bound are abandoned
// (still counted in the channels' Pending at exit).
const maxDrainEpochs = 4096

// drainLocked flushes all in-flight readings on the actor goroutine:
// boundaries are committed one epoch at a time until every published
// reading has been polled (Poll is timestamp-gated, so each boundary
// consumes everything at or before it).
func (t *Tenant) drainLocked() error {
	for i := 0; i < maxDrainEpochs; i++ {
		pending := 0
		for _, ch := range t.chans {
			pending += ch.Pending()
		}
		if pending == 0 {
			break
		}
		if err := t.stepLocked(t.last.Add(t.epoch)); err != nil {
			return err
		}
	}
	var err error
	if t.jl != nil {
		// Clean shutdown: sync both files and stamp the catalog
		// completed, so the next boot knows no recovery is needed.
		err = t.jl.Close()
	}
	final := t.last.UnixNano()
	for _, sub := range t.subs {
		sub.final = final
		close(sub.ch)
	}
	t.subs = nil
	return err
}

// Crash abandons the tenant the way a process kill would: the actor
// stops without draining, subscribers close without a final epoch, and
// the WAL drops its userspace buffers without flushing — on disk,
// exactly the committed (fsynced) epochs survive. Test support for the
// crash-recovery harnesses; a real process kill is strictly harsher
// only in ways the torn-write battery covers by mutating the files.
func (t *Tenant) Crash() {
	t.drainOnce(func() {
		if t.jl != nil {
			t.jl.Crash()
		}
		for _, sub := range t.subs {
			sub.lost = true
			close(sub.ch)
		}
		t.subs = nil
	})
}

// Last reports the latest committed epoch boundary.
func (t *Tenant) Last() time.Time {
	var last time.Time
	err := t.do(func() error { last = t.last; return nil })
	if err != nil {
		return t.last // drained: actor state is frozen and safe to read
	}
	return last
}

// Subscription is a consumer handle on one tenant output stream.
type Subscription struct {
	t        *Tenant
	sub      *subscriber
	attached int64
}

// Attached reports the epoch committed last at the instant the
// subscriber attached: frames delivered on C are strictly after it.
func (s *Subscription) Attached() int64 { return s.attached }

// C is the frame channel; closed on drain or when kicked.
func (s *Subscription) C() <-chan wire.Data { return s.sub.ch }

// Final reports the final committed epoch (valid once C is closed by a
// drain).
func (s *Subscription) Final() int64 { return s.sub.final }

// Lost reports whether the subscriber was kicked for falling behind.
func (s *Subscription) Lost() bool { return s.sub.lost }

// Close detaches the subscription.
func (s *Subscription) Close() { s.t.unsubscribe(s.sub) }

// Stats is a tenant stats snapshot (JSON for the stats frame).
type Stats struct {
	Tenant      string `json:"tenant"`
	Epoch       string `json:"epoch"`
	LastEpoch   int64  `json:"last_epoch"`
	TuplesIn    int64  `json:"tuples_in"`
	Frames      int64  `json:"publish_frames"`
	Epochs      int64  `json:"epochs"`
	DataFrames  int64  `json:"data_frames"`
	Subscribers int    `json:"subscribers"`
	Backlog     int    `json:"backlog"`
	Dropped     int64  `json:"dropped"`
	Reconnects  int64  `json:"reconnects,omitempty"`
	Resumes     int64  `json:"resumes,omitempty"`
	DedupDrops  int64  `json:"dedup_drops,omitempty"`
	IdleKills   int64  `json:"idle_kills,omitempty"`
}

// Stats snapshots the tenant's counters.
func (t *Tenant) Stats() Stats {
	st := Stats{
		Tenant:     t.name,
		Epoch:      t.epoch.String(),
		TuplesIn:   t.tuplesIn.Load(),
		Frames:     t.framesIn.Load(),
		Epochs:     t.epochs.Load(),
		DataFrames: t.dataOut.Load(),
		Reconnects: t.reconnects.Load(),
		Resumes:    t.resumes.Load(),
		DedupDrops: t.dedupDrops.Load(),
		IdleKills:  t.idleKills.Load(),
	}
	for _, ch := range t.chans {
		st.Backlog += ch.Pending()
		st.Dropped += ch.Dropped()
	}
	_ = t.do(func() error {
		st.LastEpoch = t.last.UnixNano()
		st.Subscribers = len(t.subs)
		return nil
	})
	return st
}
